package distflow

// Benchmark harness: one benchmark per experiment table (E1..E10, see
// DESIGN.md §3 for the claim each reproduces) plus micro-benchmarks of
// the hot operations. The experiment benchmarks regenerate their table
// at Quick scale per iteration and surface the headline measurement via
// b.ReportMetric; `go run ./cmd/bench` prints the same tables at full
// scale for EXPERIMENTS.md.

import (
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"distflow/internal/capprox"
	"distflow/internal/experiments"
	"distflow/internal/graph"
	"distflow/internal/numutil"
	"distflow/internal/seqflow"
	"distflow/internal/sherman"
	"distflow/internal/vtree"
)

// reportLastColumn reruns an experiment and reports the numeric value of
// the named column in the last row as the benchmark's custom metric.
func benchExperiment(b *testing.B, run func(experiments.Scale) (*experiments.Table, error), col, unit string) {
	b.Helper()
	var metric float64
	for i := 0; i < b.N; i++ {
		tab, err := run(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		idx := -1
		for j, c := range tab.Columns {
			if c == col {
				idx = j
			}
		}
		if idx < 0 {
			b.Fatalf("column %q missing", col)
		}
		last := tab.Rows[len(tab.Rows)-1]
		v, err := strconv.ParseFloat(last[idx], 64)
		if err != nil {
			b.Fatalf("cell %q: %v", last[idx], err)
		}
		metric = v
	}
	b.ReportMetric(metric, unit)
}

func BenchmarkE1_RoundsVsN(b *testing.B) {
	benchExperiment(b, experiments.E1RoundsVsN, "this-work", "rounds")
}

func BenchmarkE2_LSSTStretch(b *testing.B) {
	benchExperiment(b, experiments.E2LSSTStretch, "avg-stretch", "stretch")
}

func BenchmarkE3_Sparsifier(b *testing.B) {
	benchExperiment(b, experiments.E3Sparsifier, "cut-distortion", "distortion")
}

func BenchmarkE4_CongestionApprox(b *testing.B) {
	benchExperiment(b, experiments.E4CongestionApprox, "worst opt/|Rb|", "distortion")
}

func BenchmarkE5_ApproxQuality(b *testing.B) {
	benchExperiment(b, experiments.E5ApproxQuality, "OPT/value", "ratio")
}

func BenchmarkE6_TreeDecomposition(b *testing.B) {
	benchExperiment(b, experiments.E6TreeDecomposition, "components", "components")
}

func BenchmarkE7_GradientIterations(b *testing.B) {
	benchExperiment(b, experiments.E7GradientIterations, "iterations", "iterations")
}

func BenchmarkE8_ResidualRouting(b *testing.B) {
	benchExperiment(b, experiments.E8ResidualRouting, "route-rounds", "rounds")
}

func BenchmarkE9_ClusterSimulation(b *testing.B) {
	benchExperiment(b, experiments.E9ClusterSimulation, "charge/round", "rounds")
}

func BenchmarkE10_Spanner(b *testing.B) {
	benchExperiment(b, experiments.E10Spanner, "stretch", "stretch")
}

// --- micro-benchmarks of the hot paths ---

func benchGraph(n int) *graph.Graph {
	rng := rand.New(rand.NewSource(3))
	return graph.CapUniform(graph.GNP(n, 6.0/float64(n), rng), 16, rng)
}

func BenchmarkApproximatorBuild(b *testing.B) {
	g := benchGraph(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := capprox.Build(g, capprox.Config{Trees: 4}, rand.New(rand.NewSource(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApplyR(b *testing.B) {
	g := benchGraph(512)
	apx, err := capprox.Build(g, capprox.Config{}, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	demand := graph.STDemand(g.N(), 0, g.N()-1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apx.ApplyR(demand)
	}
}

func BenchmarkGradientIteration(b *testing.B) {
	// One AlmostRoute call at fixed eps: the unit of Theorem 1.1's
	// eps^-3 term.
	g := benchGraph(128)
	apx, err := capprox.Build(g, capprox.Config{ExactCuts: true}, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	demand := graph.STDemand(g.N(), 0, g.N()-1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sherman.AlmostRoute(g, apx, demand, 0.5, sherman.Config{}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDinicExact(b *testing.B) {
	g := benchGraph(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seqflow.MaxFlow(g, 0, g.N()-1)
	}
}

func BenchmarkSubtreeSums(b *testing.B) {
	parent := make([]int, 1<<14)
	parent[0] = -1
	rng := rand.New(rand.NewSource(5))
	for v := 1; v < len(parent); v++ {
		parent[v] = rng.Intn(v)
	}
	t, err := vtree.New(0, parent, nil)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, t.N())
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.SubtreeSums(x)
	}
}

func BenchmarkSoftMaxGrad(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	y := make([]float64, 4096)
	for i := range y {
		y[i] = rng.NormFloat64() * 20
	}
	grad := make([]float64, len(y))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		numutil.SoftMaxGrad(y, grad)
	}
}

// --- parallel solver core: sequential vs parallel on a ≥10k-edge graph ---

var parallelBench struct {
	sync.Once
	r     *Router
	pairs []STPair
}

// parallelBenchSetup builds one large router shared by the
// parallel-core benchmarks (construction is itself benchmarked
// separately; here we benchmark the serving path).
func parallelBenchSetup(b *testing.B) (*Router, []STPair) {
	b.Helper()
	if testing.Short() {
		b.Skip("large-graph benchmark skipped in short mode")
	}
	parallelBench.Do(func() {
		rng := rand.New(rand.NewSource(3))
		gg := graph.CapUniform(graph.GNP(2500, 8.0/2500, rng), 64, rng)
		G := NewGraph(gg.N())
		for _, e := range gg.Edges() {
			G.AddEdge(e.U, e.V, e.Cap)
		}
		r, err := NewRouter(G, Options{Epsilon: 0.5, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		parallelBench.r = r
		for _, p := range [][2]int{{0, 2499}, {17, 1203}, {400, 2301}, {991, 1507}} {
			parallelBench.pairs = append(parallelBench.pairs, STPair{S: p[0], T: p[1]})
		}
	})
	if parallelBench.r == nil {
		b.Skip("router construction failed in an earlier benchmark")
	}
	return parallelBench.r, parallelBench.pairs
}

// BenchmarkMaxFlowSequential pins the solver core to one worker: the
// baseline the parallel speedup is measured against.
func BenchmarkMaxFlowSequential(b *testing.B) {
	r, pairs := parallelBenchSetup(b)
	defer SetParallelism(SetParallelism(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pairs {
			if _, err := r.MaxFlow(p.S, p.T); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkMaxFlowParallel runs the same queries through the batch API
// with the full worker pool. At GOMAXPROCS ≥ 4 this should beat
// BenchmarkMaxFlowSequential by ≥1.5× (compare ns/op, or run
// `go run ./cmd/bench -flow` for a self-contained comparison); results
// are bit-identical to the sequential path by construction.
func BenchmarkMaxFlowParallel(b *testing.B) {
	r, pairs := parallelBenchSetup(b)
	if runtime.GOMAXPROCS(0) < 2 {
		b.Logf("GOMAXPROCS=1: parallel path degenerates to sequential on this machine")
	}
	defer SetParallelism(SetParallelism(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.MaxFlowBatch(pairs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxFlowEndToEnd(b *testing.B) {
	g := NewGraph(64)
	rng := rand.New(rand.NewSource(9))
	for v := 1; v < 64; v++ {
		g.AddEdge(v, rng.Intn(v), 1+rng.Int63n(15))
	}
	for k := 0; k < 96; k++ {
		u, v := rng.Intn(64), rng.Intn(64)
		if u != v {
			g.AddEdge(u, v, 1+rng.Int63n(15))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MaxFlow(g, 0, 63, Options{Epsilon: 0.5, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}
