package distflow_test

import (
	"fmt"

	"distflow"
)

// The basic flow computation: a path network whose bottleneck edge
// determines the maximum flow.
func ExampleMaxFlow() {
	g := distflow.NewGraph(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 3)
	g.AddEdge(2, 3, 7)

	res, err := distflow.MaxFlow(g, 0, 3, distflow.Options{Epsilon: 0.1, Seed: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	exact, _ := distflow.ExactMaxFlow(g, 0, 3)
	fmt.Printf("within guarantee: %v\n", res.Value <= float64(exact) && res.Value >= float64(exact)/1.1)
	// Output:
	// within guarantee: true
}

// A Router amortizes the congestion-approximator construction across
// many queries, including multi-source demand routing.
func ExampleRouter_RouteDemand() {
	g := distflow.NewGraph(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 3, 2)
	g.AddEdge(0, 2, 2)
	g.AddEdge(2, 3, 2)

	r, err := distflow.NewRouter(g, distflow.Options{Seed: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// One unit from each of 0 and 1 to node 3.
	b := []float64{1, 1, 0, -2}
	_, congestion, err := r.RouteDemand(b, 0.1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	lb := r.CongestionLowerBound(b)
	fmt.Printf("achieved within 1.2x of the certified bound: %v\n", congestion <= 1.2*lb+1e-9)
	// Output:
	// achieved within 1.2x of the certified bound: true
}
