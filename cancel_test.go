package distflow

// Cancellation and deadline-degradation tests (DESIGN.md §11): aborted
// queries return the context's error without touching router state,
// deadline-expired queries degrade to feasible best-effort answers with
// a measured certificate, cancelled batch members leave their coalesced
// survivors bit-identical, and a cancelled update publishes nothing —
// including its effect on the deterministic resample-seed stream.

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"distflow/internal/faultinject"
	"distflow/internal/par"
)

// TestMaxFlowCtxCancelled pins the abort contract: a cancelled context
// surfaces as context.Canceled (never a degraded result), and the
// router serves the identical answer afterwards.
func TestMaxFlowCtxCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := randomConnectedGraph(40, rng)
	r, err := NewRouter(g, Options{Seed: 2, DisableWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	s, tt := activePair(g)
	ref, err := r.MaxFlow(s, tt)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res, err := r.MaxFlowCtx(ctx, s, tt); !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("cancelled query returned (%+v, %v), want (nil, context.Canceled)", res, err)
	}
	if _, _, err := r.RouteDemandCtx(ctx, unitDemand(g.N(), s, tt), 0.5); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RouteDemand returned %v, want context.Canceled", err)
	}
	if _, err := r.UpdateCapacitiesCtx(ctx, []CapEdit{{Edge: 0, Cap: g.g.Cap(0) + 1}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled UpdateCapacities returned %v, want context.Canceled", err)
	}

	// The aborted calls left nothing behind: the reference query repeats
	// bit-identically.
	res, err := r.MaxFlow(s, tt)
	if err != nil || res.Value != ref.Value || res.Iterations != ref.Iterations {
		t.Fatalf("query after cancellations drifted: %v, value %v→%v", err, ref.Value, res.Value)
	}
}

func unitDemand(n, s, t int) []float64 {
	b := make([]float64, n)
	b[s], b[t] = 1, -1
	return b
}

// TestMaxFlowCtxDeadlineDegraded submits a query whose deadline is
// already unreachable: the solve must stop at its first poll and
// return the spanning-tree iterate as a flagged best-effort answer —
// feasible, exactly conserving, with a truthful measured certificate —
// instead of an error.
func TestMaxFlowCtxDeadlineDegraded(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	g := randomConnectedGraph(60, rng)
	r, err := NewRouter(g, Options{Seed: 2, DisableWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	s, tt := activePair(g)

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	res, err := r.MaxFlowCtx(ctx, s, tt)
	if err != nil {
		t.Fatalf("deadline-expired query errored (%v), want degraded answer", err)
	}
	if !res.Degraded {
		t.Fatal("deadline-expired query not flagged Degraded")
	}
	if res.Value <= 0 {
		t.Fatalf("degraded value = %v, want > 0", res.Value)
	}
	if res.CertBound < 1 {
		t.Fatalf("CertBound = %v, want ≥ 1 (it bounds OPT/Value)", res.CertBound)
	}
	// Feasibility: |f_e| ≤ cap_e.
	for e, fe := range res.Flow {
		if math.Abs(fe) > float64(g.g.Cap(e))+1e-9 {
			t.Fatalf("degraded flow violates capacity on edge %d: %v > %d", e, fe, g.g.Cap(e))
		}
	}
	// Exact conservation: divergence is res.Value at s, -res.Value at t,
	// 0 elsewhere.
	div := g.g.Divergence(res.Flow)
	for v := range div {
		want := 0.0
		if v == s {
			want = res.Value
		} else if v == tt {
			want = -res.Value
		}
		if math.Abs(div[v]-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("degraded flow not conserving at %d: div=%v want %v", v, div[v], want)
		}
	}
	// The certificate is honest: the exact max flow really is ≤
	// Value × CertBound.
	exact, _ := ExactMaxFlow(g, s, tt)
	if float64(exact) > res.Value*res.CertBound*(1+1e-9) {
		t.Fatalf("certificate violated: exact %d > value %v × bound %v", exact, res.Value, res.CertBound)
	}
	// A degraded answer must not poison any warm cache (this router has
	// none; the flag documents the contract for ones that do).
	full, err := r.MaxFlow(s, tt)
	if err != nil || full.Degraded {
		t.Fatalf("follow-up query: %v degraded=%v", err, full != nil && full.Degraded)
	}
	if full.Value < res.Value-1e-9 {
		t.Fatalf("full solve (%v) worse than degraded iterate (%v)", full.Value, res.Value)
	}
}

// TestRouteDemandCtxDeadlineDegrades: the demand-routing path degrades
// silently — the returned flow still meets the demand exactly and the
// reported congestion is the measured congestion of that flow.
func TestRouteDemandCtxDeadlineDegrades(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	g := randomConnectedGraph(50, rng)
	r, err := NewRouter(g, Options{Seed: 2, DisableWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	s, tt := activePair(g)
	b := unitDemand(g.N(), s, tt)

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	flow, cong, err := r.RouteDemandCtx(ctx, b, 0.5)
	if err != nil {
		t.Fatalf("deadline-expired routing errored: %v", err)
	}
	if cong <= 0 {
		t.Fatalf("congestion = %v, want > 0", cong)
	}
	div := g.g.Divergence(flow)
	for v := range div {
		if math.Abs(div[v]-b[v]) > 1e-9 {
			t.Fatalf("degraded routing misses demand at %d: %v want %v", v, div[v], b[v])
		}
	}
	if got := g.g.MaxCongestion(flow); math.Abs(got-cong) > 1e-12*(1+cong) {
		t.Fatalf("reported congestion %v ≠ measured %v", cong, got)
	}
}

// TestCancelMidBatchSurvivorsBitIdentical: cancelling one member of a
// batch must not perturb the other members at any worker count — their
// flows stay bit-identical to the same batch run without the
// cancellation.
func TestCancelMidBatchSurvivorsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	g := randomConnectedGraph(50, rng)
	r, err := NewRouter(g, Options{Seed: 2, DisableWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	pairs := []STPair{{S: 0, T: n - 1}, {S: 1, T: n - 2}, {S: 2, T: n - 3}, {S: 3, T: n - 4}}

	// Reference: the full batch, no cancellations.
	ref, err := r.MaxFlowBatch(pairs)
	if err != nil {
		t.Fatal(err)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 3, 16} {
		prev := par.SetWorkers(workers)
		ctxs := make([]context.Context, len(pairs))
		for i := range ctxs {
			ctxs[i] = context.Background()
		}
		ctxs[1] = cancelled
		results, errs := r.maxFlowBatchCtxs(ctxs, pairs)
		par.SetWorkers(prev)

		if !errors.Is(errs[1], context.Canceled) || results[1] != nil {
			t.Fatalf("workers=%d: cancelled member got (%v, %v), want (nil, Canceled)", workers, results[1], errs[1])
		}
		for i := range pairs {
			if i == 1 {
				continue
			}
			if errs[i] != nil {
				t.Fatalf("workers=%d: survivor %d errored: %v", workers, i, errs[i])
			}
			if results[i].Value != ref[i].Value || results[i].Iterations != ref[i].Iterations {
				t.Fatalf("workers=%d: survivor %d perturbed: value %v→%v, iters %d→%d",
					workers, i, ref[i].Value, results[i].Value, ref[i].Iterations, results[i].Iterations)
			}
			for e := range results[i].Flow {
				if results[i].Flow[e] != ref[i].Flow[e] {
					t.Fatalf("workers=%d: survivor %d flow differs at edge %d", workers, i, e)
				}
			}
		}
	}
}

// TestCancelMidUpdatePublishesNothing injects a context cancellation at
// the exact point the topology batch is fully applied to the private
// fork, and asserts total atomicity: nothing publishes, the epoch and
// seed stream are untouched, and a replay of the identical batch lands
// bit-identically to a twin router that never saw the cancellation —
// i.e. the aborted attempt did not consume resample seeds.
func TestCancelMidUpdatePublishesNothing(t *testing.T) {
	build := func() (*Graph, *Router) {
		rng := rand.New(rand.NewSource(35))
		g := randomConnectedGraph(40, rng)
		r, err := NewRouter(g, Options{Seed: 2, DisableWarmStart: true})
		if err != nil {
			t.Fatal(err)
		}
		return g, r
	}
	g, r := build()
	gTwin, rTwin := build()
	if gTwin.N() != g.N() {
		t.Fatal("twin construction diverged")
	}
	batch := []TopoEdit{
		AddEdgeEdit(0, g.N()-1, 7),
		AddVertexEdit(Link{To: 1, Cap: 3}, Link{To: 2, Cap: 5}),
	}

	seq0, n0 := r.EpochSeq(), g.N()
	ctx, cancel := context.WithCancel(context.Background())
	disarm := faultinject.Arm(topoResampleSite, faultinject.Fault{Call: cancel})
	_, uerr := r.UpdateTopologyCtx(ctx, batch)
	disarm()
	if !errors.Is(uerr, context.Canceled) {
		t.Fatalf("cancelled update returned %v, want context.Canceled", uerr)
	}
	if r.EpochSeq() != seq0 || g.N() != n0 {
		t.Fatalf("cancelled update published: epoch %d→%d, n %d→%d", seq0, r.EpochSeq(), n0, g.N())
	}

	// Replay on the cancelled router; run the same batch on the twin.
	if _, err := r.UpdateTopology(batch); err != nil {
		t.Fatalf("replay after cancelled update: %v", err)
	}
	if _, err := rTwin.UpdateTopology(batch); err != nil {
		t.Fatalf("twin update: %v", err)
	}
	if r.Alpha() != rTwin.Alpha() {
		t.Fatalf("replayed alpha %v ≠ twin alpha %v — the aborted attempt moved the seed stream", r.Alpha(), rTwin.Alpha())
	}
	s, tt := activePair(g)
	a, err := r.MaxFlow(s, tt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rTwin.MaxFlow(s, tt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value || a.Iterations != b.Iterations {
		t.Fatalf("replayed router drifted from twin: value %v vs %v, iters %d vs %d",
			a.Value, b.Value, a.Iterations, b.Iterations)
	}
}

// TestRollingRefresh pins Options.RollingRefreshK: every K-th effective
// topology batch resamples exactly one tree round-robin, the refresh is
// deterministic (twin routers agree), and K=0 keeps the legacy
// behavior (no refresh).
func TestRollingRefresh(t *testing.T) {
	build := func(k int, seed int64) (*Graph, *Router) {
		rng := rand.New(rand.NewSource(36))
		g := randomConnectedGraph(40, rng)
		r, err := NewRouter(g, Options{Seed: seed, DisableWarmStart: true, RollingRefreshK: k})
		if err != nil {
			t.Fatal(err)
		}
		return g, r
	}
	g, r := build(2, 2)
	_, rTwin := build(2, 2)
	_, rOff := build(0, 2)

	urng := rand.New(rand.NewSource(37))
	refreshed := make([]int, 0, 4)
	for i := 0; i < 4; i++ {
		u, v := urng.Intn(g.N()), urng.Intn(g.N())
		if u == v {
			v = (u + 1) % g.N()
		}
		batch := []TopoEdit{AddEdgeEdit(u, v, 1+urng.Int63n(9))}
		ur, err := r.UpdateTopology(batch)
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		refreshed = append(refreshed, ur.RefreshedTrees)
		if _, err := rTwin.UpdateTopology(batch); err != nil {
			t.Fatalf("twin update %d: %v", i, err)
		}
		urOff, err := rOff.UpdateTopology(batch)
		if err != nil {
			t.Fatalf("off update %d: %v", i, err)
		}
		if urOff.RefreshedTrees != 0 {
			t.Fatalf("K=0 refreshed a tree on batch %d", i)
		}
	}
	want := []int{0, 1, 0, 1} // K=2: batches 2 and 4 refresh
	for i := range want {
		if refreshed[i] != want[i] {
			t.Fatalf("RefreshedTrees per batch = %v, want %v", refreshed, want)
		}
	}
	if r.Alpha() != rTwin.Alpha() {
		t.Fatalf("rolling refresh nondeterministic: alpha %v vs twin %v", r.Alpha(), rTwin.Alpha())
	}
	s, tt := activePair(g)
	a, err := r.MaxFlow(s, tt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rTwin.MaxFlow(s, tt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value || a.Iterations != b.Iterations {
		t.Fatalf("refreshed routers drifted: value %v vs %v", a.Value, b.Value)
	}
}
