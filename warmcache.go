package distflow

// The Router's query warm-start cache: an LRU of recent demand
// signatures → converged flow vectors. A hit starts the gradient
// descent near-converged instead of from zero, which collapses the
// iteration count of repeated and clustered queries (DESIGN.md §5).
//
// Correctness never depends on the cache: a cached vector only biases
// the initial iterate of a solve that still runs to its own (1+ε)
// termination test, so even a colliding or stale entry costs iterations
// rather than accuracy. Determinism story (DESIGN.md §5): cache-hit
// results satisfy the same guarantee but are generally not bit-identical
// to cold-started ones; batch queries read and write the cache outside
// the parallel region, in index order, so batch results remain a pure
// function of (router state, query list) at every worker count.

import (
	"container/list"
	"encoding/binary"
	"hash/fnv"
	"math"
	"strconv"
	"sync"
)

// defaultWarmCacheSize is the per-Router entry cap when
// Options.WarmCacheSize is 0. An entry holds one []float64 of length M,
// so the default bounds cache memory at 64·M floats.
const defaultWarmCacheSize = 64

type warmCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type warmEntry struct {
	key  string
	flow []float64
}

func newWarmCache(capacity int) *warmCache {
	return &warmCache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// get returns the cached flow for key (nil on miss) and marks the entry
// most-recently used. The returned slice is shared: callers must treat
// it as read-only (the solver copies it into its workspace).
func (c *warmCache) get(key string) []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*warmEntry).flow
}

// put stores flow under key (the caller passes ownership; it must not
// mutate the slice afterwards), evicting the least-recently-used entry
// beyond capacity.
func (c *warmCache) put(key string, flow []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*warmEntry).flow = flow
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&warmEntry{key: key, flow: flow})
	for c.order.Len() > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*warmEntry).key)
	}
}

// clear drops every entry (capacity updates invalidate cached flows).
func (c *warmCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*list.Element)
	c.order = list.New()
}

// len reports the current entry count (tests).
func (c *warmCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// stKey is the cache key of a max-flow query.
func stKey(s, t int) string {
	return "f:" + strconv.Itoa(s) + ":" + strconv.Itoa(t)
}

// demandKey fingerprints a demand vector and accuracy with FNV-1a over
// the raw float bits. A collision is harmless — the colliding entry is
// merely a bad warm start — so 64 bits are plenty.
func demandKey(b []float64, eps float64) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range b {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(eps))
	h.Write(buf[:])
	return "d:" + strconv.FormatUint(h.Sum64(), 16)
}
