package distflow

// Epoch-snapshot (MVCC) router core (DESIGN.md §9). The Router's
// mutable state is one pointer to an immutable epoch: the graph, the
// congestion approximator, the solver, and the warm-start cache that
// together answer queries. Queries pin the published epoch with a
// refcount and run entirely against it; updates fork a private copy,
// apply the batch there, and atomically publish the result. The old
// epoch is retired at publish and freed (left to the GC) once its last
// draining query releases it. Two properties fall out for free:
//
//   - Queries never race updates: nothing a query reads is ever
//     written after publish, so MaxFlow/RouteDemand/the batch methods
//     may run concurrently with UpdateCapacities/UpdateTopology.
//   - Updates are atomic: an error anywhere past planning (a failed
//     resample or rebuild) discards the private epoch and leaves the
//     published one untouched — there is no half-mutated router state
//     to observe, and replaying the same batch is safe.
//
// Writers are serialized by Router.mu; the publish itself is one
// atomic pointer swap, so readers never block.

import (
	"fmt"
	"sync/atomic"

	"distflow/internal/capprox"
	"distflow/internal/graph"
	"distflow/internal/shard"
	"distflow/internal/sherman"
)

// epoch is one immutable published router state. Every field is frozen
// at publish time: the graph's CSR is compacted (no lazy rebuilds left
// for a query to trigger), the approximator is never written again
// (updates write a clone), and the warm cache — the one mutable member
// — is scoped to this epoch alone and internally locked, so a cached
// flow can never warm-start a query against a different epoch's graph.
type epoch struct {
	// seq numbers epochs from 1 (NewRouter); each published update
	// increments it.
	seq    uint64
	g      *graph.Graph
	apx    *capprox.Approximator
	solver *sherman.Solver
	cache  *warmCache // nil when Options.DisableWarmStart
	// eng is the sharded execution engine (nil unless Options.Shards >
	// 0). It holds shard goroutines for the epoch's lifetime and is
	// closed when the epoch drains.
	eng  *shard.Engine
	opts Options

	// refs counts the publish pin (1, dropped at retirement) plus every
	// in-flight query pinned to this epoch.
	refs atomic.Int64
	// retired flips when a newer epoch replaces this one; the epoch is
	// drained when retired and refs reaches 0.
	retired atomic.Bool
	// drainedOnce makes the drained-accounting fire exactly once even if
	// a late acquire transiently revives the refcount.
	drainedOnce atomic.Bool
	// freed points at the owning Router's drained-epoch counter.
	freed *atomic.Int64
}

// bootstrap builds and installs the first epoch (seq 1) of a freshly
// constructed Router: the only pointer store besides publish, kept
// here so every write to the guarded pointer lives in this file
// (enforced by the epochsafe analyzer, DESIGN.md §12).
func (r *Router) bootstrap(g *graph.Graph, apx *capprox.Approximator, opts Options) {
	ep := &epoch{seq: 1, g: g, apx: apx, solver: sherman.NewSolver(g, apx), opts: opts, freed: &r.epochsFreed}
	if !opts.DisableWarmStart {
		ep.cache = newWarmCache(warmCacheCap(opts))
	}
	ep.attachEngine()
	ep.refs.Store(1) // the publish pin
	r.cur.Store(ep)
}

// attachEngine builds the epoch's sharded execution engine when
// opts.Shards asks for one, and points the solver at it. Called once
// per epoch, before the epoch is published (the engine partitions the
// frozen graph and trees).
func (ep *epoch) attachEngine() {
	p := ep.opts.Shards
	if p <= 0 {
		return
	}
	eng, err := shard.NewEngine(ep.g, ep.apx.Trees, ep.apx.Scale, p)
	if err != nil {
		// Options.Shards is range-validated at the API boundary
		// (NewRouter, SetShards); reaching this is a programming bug.
		panic(fmt.Sprintf("distflow: engine construction: %v", err))
	}
	ep.eng = eng
	ep.solver.SetEngine(eng)
}

// acquire pins the currently published epoch for one query (or one
// batch) and returns it. The pin keeps the epoch's drained accounting
// honest; memory safety never depends on it — a retired epoch stays
// valid for as long as anyone holds the pointer (the GC owns
// reclamation), so a reader that loads the pointer just before a
// publish simply runs against the snapshot it saw.
func (r *Router) acquire() *epoch {
	ep := r.cur.Load()
	ep.refs.Add(1)
	return ep
}

// release drops one query pin. The last release of a retired epoch
// marks it drained: from that point nothing references it but the
// caller's dying pointer, and the GC reclaims the whole snapshot.
func (ep *epoch) release() {
	if ep.refs.Add(-1) == 0 && ep.retired.Load() {
		if ep.drainedOnce.CompareAndSwap(false, true) {
			if ep.eng != nil {
				// No query pins this epoch anymore, so the engine is
				// idle; stop its shard goroutines.
				ep.eng.Close()
			}
			ep.freed.Add(1)
		}
	}
}

// fork returns the next epoch as a private deep copy of the published
// one: same graph and approximator state, nothing shared that any
// update path writes. The caller (who must hold r.mu) applies the
// batch to the fork and either publishes it or drops it on the floor —
// discarding a fork is how a failed resample/rebuild stays atomic.
// The solver and cache are deliberately absent until publish: both are
// rebuilt fresh there, exactly as the in-place update paths always
// reset them.
func (r *Router) fork() *epoch {
	cur := r.cur.Load()
	next := &epoch{
		seq:   cur.seq + 1,
		g:     cur.g.Clone(),
		apx:   cur.apx.Clone(),
		opts:  cur.opts,
		freed: &r.epochsFreed,
	}
	next.refs.Store(1) // the publish pin
	return next
}

// publish finishes the fork and atomically installs it as the current
// epoch, retiring the old one. Everything that must not happen lazily
// under concurrent readers happens here, on the writer: the graph's
// CSR is compacted (folding overlay arcs and tombstones so every
// adjacency accessor is read-only afterwards), the solver is built,
// and a fresh epoch-scoped warm cache is created. The user's Graph
// wrapper is re-pointed so it keeps observing the latest state, as its
// documentation promises. Callers hold r.mu; publish cannot fail.
func (r *Router) publish(next *epoch) {
	next.g.Compact()
	next.solver = sherman.NewSolver(next.g, next.apx)
	next.attachEngine()
	if !r.opts.DisableWarmStart {
		next.cache = newWarmCache(warmCacheCap(r.opts))
	}
	old := r.cur.Swap(next)
	r.userG.g = next.g
	old.retired.Store(true)
	r.epochsRetired.Add(1)
	old.release() // drop the publish pin; drains when the last query ends
}

// warmCacheCap resolves Options.WarmCacheSize to the effective entry
// cap.
func warmCacheCap(opts Options) int {
	if opts.WarmCacheSize > 0 {
		return opts.WarmCacheSize
	}
	return defaultWarmCacheSize
}

// EpochSeq returns the sequence number of the currently published
// epoch: 1 after NewRouter, +1 per effective update batch. Serving
// layers expose it as a cheap "did the world change" cursor.
func (r *Router) EpochSeq() uint64 { return r.cur.Load().seq }

// EpochsRetired reports how many epochs have been replaced by a
// published update over the router's lifetime. Together with
// EpochsDrained it exposes snapshot turnover: Retired − Drained is the
// number of old epochs still pinned by in-flight queries, which should
// hover near zero on a healthy server (the /stats endpoint surfaces
// both).
func (r *Router) EpochsRetired() int64 { return r.epochsRetired.Load() }

// EpochsDrained reports how many retired epochs have fully drained —
// their last in-flight query released them and the snapshot became
// garbage (tests assert retirement actually releases snapshots).
func (r *Router) EpochsDrained() int64 { return r.epochsFreed.Load() }

// epochsDrained is the historical internal alias of EpochsDrained.
func (r *Router) epochsDrained() int64 { return r.EpochsDrained() }

// curEpoch returns the published epoch without pinning it — for tests
// and writer-side code that inspect the current state, not for query
// paths (those must acquire/release).
func (r *Router) curEpoch() *epoch { return r.cur.Load() }

// SetShards republishes the current epoch with a p-shard execution
// engine (p = 0 returns to single-address-space execution). Unlike an
// update publish this shares the graph and approximator with the
// retiring epoch — both are frozen, and the engine only ever reads
// them — so re-sharding costs one partition + schedule build, not a
// graph clone or tree resample. Flow results are bit-identical across
// every p (internal/shard's determinism contract); the bench P-sweep
// relies on both properties. In-flight queries finish on the epoch
// (and engine) they pinned.
func (r *Router) SetShards(p int) error {
	if p < 0 || p > 64 {
		return fmt.Errorf("distflow: shards must be in [0, 64], got %d", p)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.cur.Load()
	if cur.opts.Shards == p {
		return nil
	}
	r.opts.Shards = p
	next := &epoch{
		seq:   cur.seq + 1,
		g:     cur.g,
		apx:   cur.apx,
		opts:  cur.opts,
		freed: &r.epochsFreed,
	}
	next.opts.Shards = p
	next.refs.Store(1) // the publish pin
	r.publish(next)
	return nil
}

// Close retires the published epoch without a replacement, releasing
// its resources — in particular the sharded engine's goroutines —
// once in-flight queries drain. Only needed when Options.Shards (or
// SetShards) enabled sharding; a closed Router must not serve further
// queries or updates.
func (r *Router) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	ep := r.cur.Load()
	if ep.retired.Load() {
		return
	}
	ep.retired.Store(true)
	r.epochsRetired.Add(1)
	ep.release() // drop the publish pin; drains when the last query ends
}
