# Developer entry points. Tool versions are pinned here (and mirrored
# in .github/workflows/ci.yml) rather than as go.mod tool dependencies:
# the development container has no module proxy access, so x/vuln and
# x/tools cannot be vendored — cmd/distflowlint is stdlib-only for the
# same reason, and govulncheck is fetched only where the network exists
# (CI, developer machines) at the pinned version below.

GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: all build vet lint test test-race vuln

all: build lint test

build:
	go build ./...

vet:
	go vet ./...

# The repository's invariant analyzers (DESIGN.md §12). Clean output
# and exit 0 are a merge requirement; intentional violations carry a
# reasoned //distflow:allow annotation.
lint: vet
	go run ./cmd/distflowlint ./...

test:
	go test ./...

test-race:
	go test -race ./...

# Needs network access to fetch the pinned scanner.
vuln:
	go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)
	govulncheck ./...
