module distflow

go 1.24.0
