package distflow

// Property and fuzz tests pinning the solver's contracts on arbitrary
// small graphs: MaxFlow stays within (1+ε) of the exact Dinic optimum,
// and RouteDemand always returns an exactly-conserving flow whose
// reported congestion matches the flow it returns.

import (
	"math"
	"math/rand"
	"testing"
)

// fuzzGraph decodes a connected multigraph from raw fuzz bytes: the
// first byte picks n, a spanning chain guarantees connectivity, and
// every remaining byte triple adds one extra edge.
func fuzzGraph(data []byte) *Graph {
	if len(data) == 0 {
		return nil
	}
	n := 2 + int(data[0])%10
	data = data[1:]
	g := NewGraph(n)
	for v := 1; v < n; v++ {
		capacity := int64(1)
		parent := v - 1
		if len(data) >= 2 {
			capacity += int64(data[0]) % 9
			parent = int(data[1]) % v
			data = data[2:]
		}
		g.AddEdge(v, parent, capacity)
	}
	for len(data) >= 3 {
		u := int(data[0]) % n
		v := int(data[1]) % n
		capacity := 1 + int64(data[2])%9
		data = data[3:]
		if u != v {
			g.AddEdge(u, v, capacity)
		}
	}
	return g
}

func FuzzMaxFlow(f *testing.F) {
	f.Add([]byte{4, 3, 5, 7, 0, 2, 9, 1, 3, 4})
	f.Add([]byte{9, 1, 1, 1, 1, 1, 1, 1, 1, 5, 7, 3, 2, 6, 8})
	f.Add([]byte{2, 8})
	f.Add([]byte{11, 200, 250, 3, 17, 90, 41, 5, 5, 5, 12, 13, 14})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := fuzzGraph(data)
		if g == nil {
			return
		}
		const eps = 0.3
		exact, _ := ExactMaxFlow(g, 0, g.N()-1)
		res, err := MaxFlow(g, 0, g.N()-1, Options{Epsilon: eps, Seed: 1})
		if err != nil {
			t.Fatalf("MaxFlow failed on n=%d m=%d: %v", g.N(), g.M(), err)
		}
		if res.Value > float64(exact)*1.0001 {
			t.Fatalf("approximate value %v exceeds exact maximum %d", res.Value, exact)
		}
		// The implementation composes two (1+eps) stages; hold it to the
		// compound bound with a little slack for the residual routing.
		if res.Value < float64(exact)/((1+eps)*(1+eps))-1e-9 {
			t.Fatalf("approximate value %v below (1+ε)² bound of exact %d", res.Value, exact)
		}
		// The returned flow must be feasible and realize the value.
		for e, fe := range res.Flow {
			_, _, capacity := g.EdgeEndpoints(e)
			if math.Abs(fe) > float64(capacity)*(1+1e-9) {
				t.Fatalf("edge %d overloaded: |%v| > %d", e, fe, capacity)
			}
		}
		div := divergence(g, res.Flow)
		for v := 1; v < g.N()-1; v++ {
			if math.Abs(div[v]) > 1e-6*math.Max(1, res.Value) {
				t.Fatalf("conservation broken at internal vertex %d: %v", v, div[v])
			}
		}
		if math.Abs(div[0]-res.Value) > 1e-6*math.Max(1, res.Value) {
			t.Fatalf("source outflow %v does not match value %v", div[0], res.Value)
		}
	})
}

// FuzzShardEquivalence pins the sharded engine's determinism contract
// on arbitrary small graphs: a router with Options.Shards set returns
// bit-identical values and flow vectors to the single-address-space
// path, on topologies the generator never curated (multi-edges, tiny
// n, skewed capacities — including graphs far smaller than one
// partition chunk, where most shards own nothing).
func FuzzShardEquivalence(f *testing.F) {
	f.Add([]byte{4, 3, 5, 7, 0, 2, 9, 1, 3, 4}, uint8(2))
	f.Add([]byte{9, 1, 1, 1, 1, 1, 1, 1, 1, 5, 7, 3, 2, 6, 8}, uint8(4))
	f.Add([]byte{2, 8}, uint8(8))
	f.Add([]byte{11, 200, 250, 3, 17, 90, 41, 5, 5, 5, 12, 13, 14}, uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, shards uint8) {
		g := fuzzGraph(data)
		if g == nil {
			return
		}
		p := 1 + int(shards)%8
		opts := Options{Epsilon: 0.3, Seed: 1, DisableWarmStart: true}
		want, err := MaxFlow(g, 0, g.N()-1, opts)
		if err != nil {
			t.Fatalf("unsharded MaxFlow failed on n=%d m=%d: %v", g.N(), g.M(), err)
		}
		opts.Shards = p
		res, err := MaxFlow(fuzzGraph(data), 0, g.N()-1, opts)
		if err != nil {
			t.Fatalf("sharded (P=%d) MaxFlow failed on n=%d m=%d: %v", p, g.N(), g.M(), err)
		}
		if math.Float64bits(res.Value) != math.Float64bits(want.Value) {
			t.Fatalf("P=%d: value %v, want %v (bitwise)", p, res.Value, want.Value)
		}
		for e := range want.Flow {
			if math.Float64bits(res.Flow[e]) != math.Float64bits(want.Flow[e]) {
				t.Fatalf("P=%d: flow[%d] = %v, want %v (bitwise)", p, e, res.Flow[e], want.Flow[e])
			}
		}
	})
}

// RouteDemand must always return a flow that meets the demand exactly
// and report the congestion of exactly that flow.
func TestRouteDemandConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		n := 8 + rng.Intn(20)
		g := NewGraph(n)
		for v := 1; v < n; v++ {
			g.AddEdge(v, rng.Intn(v), 1+rng.Int63n(9))
		}
		for k := 0; k < n/2; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, 1+rng.Int63n(9))
			}
		}
		r, err := NewRouter(g, Options{Seed: int64(trial + 1)})
		if err != nil {
			t.Fatal(err)
		}
		// Random multi-source demand summing to zero.
		b := make([]float64, n)
		for i := 0; i < 3; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			amount := rng.Float64() * 4
			b[u] += amount
			b[v] -= amount
		}
		flow, cong, err := r.RouteDemand(b, 0.4)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		div := divergence(g, flow)
		for v := range b {
			if math.Abs(div[v]-b[v]) > 1e-6 {
				t.Fatalf("trial %d: conservation broken at %d: %v vs %v", trial, v, div[v], b[v])
			}
		}
		// Reported congestion is the congestion of the returned flow.
		recomputed := 0.0
		for e, fe := range flow {
			_, _, capacity := g.EdgeEndpoints(e)
			if c := math.Abs(fe) / float64(capacity); c > recomputed {
				recomputed = c
			}
		}
		if recomputed != cong {
			t.Fatalf("trial %d: reported congestion %v, flow has %v", trial, cong, recomputed)
		}
		// And it respects the certified lower bound.
		if lb := r.CongestionLowerBound(b); lb > cong*1.0001 {
			t.Fatalf("trial %d: lower bound %v exceeds achieved congestion %v", trial, lb, cong)
		}
	}
}
