// Package distflow is a Go implementation of near-optimal distributed
// maximum flow, reproducing "Near-Optimal Distributed Maximum Flow"
// (Ghaffari, Karrenbauer, Kuhn, Lenzen, Patt-Shamir; PODC 2015).
//
// The library computes (1+ε)-approximate maximum s-t flows and
// min-congestion routings of arbitrary demand vectors on undirected
// capacitated graphs, using the paper's machinery: a congestion
// approximator sampled from a recursively constructed distribution of
// virtual trees (Räcke/Madry j-trees over low average-stretch spanning
// trees), driven by Sherman's gradient descent. Alongside the solver,
// the package reports the CONGEST-model round cost of every phase, as
// measured/accounted by the underlying simulator (see DESIGN.md).
//
// Quick start:
//
//	g := distflow.NewGraph(4)
//	g.AddEdge(0, 1, 5)
//	g.AddEdge(1, 2, 3)
//	g.AddEdge(2, 3, 7)
//	res, err := distflow.MaxFlow(g, 0, 3, distflow.Options{Epsilon: 0.1})
//	// res.Value ≈ 3, res.Flow holds a feasible flow.
package distflow

import (
	"fmt"
	"math/rand"

	"distflow/internal/capprox"
	"distflow/internal/graph"
	"distflow/internal/par"
	"distflow/internal/seqflow"
	"distflow/internal/sherman"
)

// SetParallelism sets the number of workers the solver core uses for
// its parallel operators and batch queries, returning the previous
// value. n <= 0 resets to runtime.GOMAXPROCS(0), the default. Solver
// results never depend on this value — the parallel reductions combine
// partials in an order fixed by the problem size alone (see DESIGN.md
// §4) — so it only trades latency for CPU.
func SetParallelism(n int) int { return par.SetWorkers(n) }

// Graph is an undirected capacitated multigraph under construction.
// Vertices are 0..n-1; parallel edges are allowed; capacities are
// positive integers (the paper's poly(n)-bounded regime).
type Graph struct {
	g *graph.Graph
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph { return &Graph{g: graph.New(n)} }

// AddEdge adds an undirected edge u—v with the given capacity and
// returns its edge index. Flow values reported for this edge are signed
// positive in the u→v direction.
func (G *Graph) AddEdge(u, v int, capacity int64) int {
	return G.g.AddEdge(u, v, capacity)
}

// N returns the number of vertices.
func (G *Graph) N() int { return G.g.N() }

// M returns the number of edges.
func (G *Graph) M() int { return G.g.M() }

// EdgeEndpoints returns the endpoints and capacity of edge e.
func (G *Graph) EdgeEndpoints(e int) (u, v int, capacity int64) {
	ed := G.g.Edge(e)
	return ed.U, ed.V, ed.Cap
}

// Options configures the solver. The zero value uses the paper's
// defaults: ε = 0.5, ⌈log₂ n⌉+1 sampled virtual trees, measured-α
// gradient steps with adaptive fallback.
type Options struct {
	// Epsilon is the approximation target in (0,1); default 0.5.
	Epsilon float64
	// Seed makes runs reproducible; default 1.
	Seed int64
	// Trees overrides the number of sampled virtual trees (0 = log n).
	Trees int
	// PaperScaling uses the virtual tree capacities for the congestion
	// approximator rows, exactly as the distributed algorithm does
	// (default false = exact cut capacities, which are also computable
	// distributedly and give tighter rows; see DESIGN.md ablations).
	PaperScaling bool
	// Alpha overrides the approximator quality parameter α (0 = use the
	// measured distortion with adaptive restarts).
	Alpha float64
	// MaxIters bounds gradient iterations per AlmostRoute call
	// (0 = the paper's O(α²ε⁻³ log n) with engineering constants).
	MaxIters int
}

// Result is the outcome of a max-flow computation.
type Result struct {
	// Value is the flow value; Value ≥ maxflow/(1+ε) up to lower-order
	// terms, and never exceeds the exact maximum.
	Value float64
	// Flow is the per-edge signed flow realizing Value (capacity
	// feasible, exactly conserving).
	Flow []float64
	// Alpha is the measured congestion-approximator distortion.
	Alpha float64
	// Iterations counts gradient steps across the computation.
	Iterations int
	// Rounds is the total charged CONGEST rounds (approximator
	// construction plus flow computation).
	Rounds int64
	// RoundsByPhase breaks Rounds down by algorithm phase.
	RoundsByPhase map[string]int64
}

// MaxFlow computes a (1+ε)-approximate maximum s-t flow. The graph must
// be connected.
func MaxFlow(G *Graph, s, t int, opts Options) (*Result, error) {
	r, err := NewRouter(G, opts)
	if err != nil {
		return nil, err
	}
	return r.MaxFlow(s, t)
}

// ExactMaxFlow computes the exact maximum flow value and an optimal
// integral flow with the sequential Dinic solver (the ground-truth
// reference; not a distributed algorithm).
func ExactMaxFlow(G *Graph, s, t int) (value int64, flow []int64) {
	res := seqflow.MaxFlow(G.g, s, t)
	return res.Value, res.Flow
}

// Router holds a congestion approximator built once for a graph and
// reusable across many flow and routing queries.
//
// A Router is safe for concurrent use: after NewRouter returns, the
// graph and the approximator are never mutated, and every query works
// on its own solver workspace with its own round ledger. Any number of
// goroutines may call MaxFlow / RouteDemand on one shared Router, and
// the batch methods amortize the approximator across many simultaneous
// queries on the internal worker pool.
type Router struct {
	g    *graph.Graph
	apx  *capprox.Approximator
	opts Options
}

// NewRouter samples the congestion approximator for G (the expensive,
// query-independent part of the algorithm: Theorem 8.10).
func NewRouter(G *Graph, opts Options) (*Router, error) {
	if !G.g.Connected() {
		return nil, fmt.Errorf("distflow: graph must be connected")
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	cfg := capprox.Config{
		Trees:     opts.Trees,
		ExactCuts: !opts.PaperScaling,
	}
	apx, err := capprox.Build(G.g, cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, fmt.Errorf("distflow: %w", err)
	}
	return &Router{g: G.g, apx: apx, opts: opts}, nil
}

// Alpha returns the measured per-tree cut distortion of the sampled
// congestion approximator.
func (r *Router) Alpha() float64 { return r.apx.Alpha }

// ConstructionRounds returns the CONGEST rounds charged to build the
// congestion approximator.
func (r *Router) ConstructionRounds() int64 { return r.apx.Ledger.Total() }

func (r *Router) shermanConfig() sherman.Config {
	return sherman.Config{
		Epsilon:  r.opts.Epsilon,
		Alpha:    r.opts.Alpha,
		MaxIters: r.opts.MaxIters,
	}
}

// MaxFlow computes a (1+ε)-approximate maximum s-t flow using the
// router's approximator.
func (r *Router) MaxFlow(s, t int) (*Result, error) {
	fr, err := sherman.MaxFlow(r.g, r.apx, s, t, r.shermanConfig())
	if err != nil {
		return nil, fmt.Errorf("distflow: %w", err)
	}
	byPhase := map[string]int64{}
	total := int64(0)
	for _, src := range []interface {
		Total() int64
	}{r.apx.Ledger, fr.Ledger} {
		total += src.Total()
	}
	for _, name := range []string{"lsst", "treeflow", "skeleton", "sample", "sparsify", "core-publish"} {
		if v := r.apx.Ledger.Phase(name); v > 0 {
			byPhase[name] = v
		}
	}
	for _, name := range []string{"gradient", "residual-tree-routing"} {
		if v := fr.Ledger.Phase(name); v > 0 {
			byPhase[name] = v
		}
	}
	return &Result{
		Value:         fr.Value,
		Flow:          fr.Flow,
		Alpha:         r.apx.Alpha,
		Iterations:    fr.Iterations,
		Rounds:        total,
		RoundsByPhase: byPhase,
	}, nil
}

// RouteDemand computes a flow approximately routing an arbitrary demand
// vector b (b[v] > 0 injects supply at v; Σb must be 0) with
// near-minimal maximum congestion. The returned flow meets b exactly
// (residuals are routed on a spanning tree); congestion is its maximum
// |f_e|/cap_e.
func (r *Router) RouteDemand(b []float64, eps float64) (flow []float64, congestion float64, err error) {
	if len(b) != r.g.N() {
		return nil, 0, fmt.Errorf("distflow: demand length %d, want %d", len(b), r.g.N())
	}
	if !graph.IsFeasibleDemand(b, 1e-6) {
		return nil, 0, fmt.Errorf("distflow: demand does not sum to zero")
	}
	if eps == 0 {
		eps = 0.5
	}
	cfg := r.shermanConfig()
	rr, err := sherman.AlmostRoute(r.g, r.apx, b, eps, cfg, nil)
	if err != nil {
		return nil, 0, fmt.Errorf("distflow: %w", err)
	}
	// Restore exact conservation via spanning-tree routing (Lemma 9.1).
	div := r.g.Divergence(rr.Flow)
	resid := make([]float64, len(b))
	for v := range resid {
		resid[v] = b[v] - div[v]
	}
	fTree, err := sherman.RouteOnMaxWeightST(r.g, resid)
	if err != nil {
		return nil, 0, fmt.Errorf("distflow: %w", err)
	}
	out := make([]float64, r.g.M())
	for e := range out {
		out[e] = rr.Flow[e] + fTree[e]
	}
	return out, r.g.MaxCongestion(out), nil
}

// CongestionLowerBound returns ‖Rb‖∞, a certified lower bound on the
// congestion any routing of b must incur (with the default exact-cut
// scaling this is a true cut-based bound).
func (r *Router) CongestionLowerBound(b []float64) float64 {
	return r.apx.NormRb(b)
}

// STPair names one s-t max-flow query of a batch.
type STPair struct {
	S, T int
}

// MaxFlowBatch computes a (1+ε)-approximate maximum flow for every
// pair, running the queries concurrently on the internal worker pool
// while sharing the router's congestion approximator. results[i]
// corresponds to pairs[i] and carries its own isolated round ledger.
// Every query is deterministic, so the batch results are identical to
// issuing the same queries one at a time.
//
// On error, the first failing query's error (by index order) is
// returned together with the partial results; failed entries are nil.
func (r *Router) MaxFlowBatch(pairs []STPair) ([]*Result, error) {
	results := make([]*Result, len(pairs))
	errs := make([]error, len(pairs))
	par.Do(len(pairs), func(i int) {
		results[i], errs[i] = r.MaxFlow(pairs[i].S, pairs[i].T)
	})
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("distflow: batch query %d (%d→%d): %w", i, pairs[i].S, pairs[i].T, err)
		}
	}
	return results, nil
}

// Routing is the outcome of one demand-routing query of a batch.
type Routing struct {
	// Flow meets the queried demand exactly (per-edge signed flow).
	Flow []float64
	// Congestion is max_e |Flow_e|/cap_e.
	Congestion float64
}

// RouteDemandBatch routes every demand vector concurrently on the
// internal worker pool, sharing the router's congestion approximator.
// results[i] corresponds to demands[i]. Like MaxFlowBatch, batch
// results are identical to sequential one-at-a-time calls; on error the
// first failing query's error is returned with the partial results.
func (r *Router) RouteDemandBatch(demands [][]float64, eps float64) ([]*Routing, error) {
	results := make([]*Routing, len(demands))
	errs := make([]error, len(demands))
	par.Do(len(demands), func(i int) {
		flow, cong, err := r.RouteDemand(demands[i], eps)
		if err != nil {
			errs[i] = err
			return
		}
		results[i] = &Routing{Flow: flow, Congestion: cong}
	})
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("distflow: batch demand %d: %w", i, err)
		}
	}
	return results, nil
}
