// Package distflow is a Go implementation of near-optimal distributed
// maximum flow, reproducing "Near-Optimal Distributed Maximum Flow"
// (Ghaffari, Karrenbauer, Kuhn, Lenzen, Patt-Shamir; PODC 2015).
//
// The library computes (1+ε)-approximate maximum s-t flows and
// min-congestion routings of arbitrary demand vectors on undirected
// capacitated graphs, using the paper's machinery: a congestion
// approximator sampled from a recursively constructed distribution of
// virtual trees (Räcke/Madry j-trees over low average-stretch spanning
// trees), driven by Sherman's gradient descent. Alongside the solver,
// the package reports the CONGEST-model round cost of every phase, as
// measured/accounted by the underlying simulator (see DESIGN.md).
//
// Quick start:
//
//	g := distflow.NewGraph(4)
//	g.AddEdge(0, 1, 5)
//	g.AddEdge(1, 2, 3)
//	g.AddEdge(2, 3, 7)
//	res, err := distflow.MaxFlow(g, 0, 3, distflow.Options{Epsilon: 0.1})
//	// res.Value ≈ 3, res.Flow holds a feasible flow.
package distflow

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"distflow/internal/capprox"
	"distflow/internal/congest"
	"distflow/internal/graph"
	"distflow/internal/jtree"
	"distflow/internal/lsst"
	"distflow/internal/par"
	"distflow/internal/seqflow"
	"distflow/internal/sherman"
)

// SetParallelism sets the number of workers the solver core uses for
// its parallel operators and batch queries, returning the previous
// value. n <= 0 resets to runtime.GOMAXPROCS(0), the default. Solver
// results never depend on this value — the parallel reductions combine
// partials in an order fixed by the problem size alone (see DESIGN.md
// §4) — so it only trades latency for CPU.
func SetParallelism(n int) int { return par.SetWorkers(n) }

// Graph is an undirected capacitated multigraph under construction.
// Vertices are 0..n-1; parallel edges are allowed; capacities are
// positive integers (the paper's poly(n)-bounded regime).
type Graph struct {
	g *graph.Graph
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph { return &Graph{g: graph.New(n)} }

// AddEdge adds an undirected edge u—v with the given capacity and
// returns its edge index. Flow values reported for this edge are signed
// positive in the u→v direction.
func (G *Graph) AddEdge(u, v int, capacity int64) int {
	return G.g.AddEdge(u, v, capacity)
}

// N returns the number of vertices.
func (G *Graph) N() int { return G.g.N() }

// M returns the number of edges.
func (G *Graph) M() int { return G.g.M() }

// EdgeEndpoints returns the endpoints and capacity of edge e (capacity
// 0 for an edge deleted by Router.UpdateTopology).
func (G *Graph) EdgeEndpoints(e int) (u, v int, capacity int64) {
	ed := G.g.Edge(e)
	return ed.U, ed.V, ed.Cap
}

// ActiveN returns the number of live vertices (N minus the vertices
// removed by Router.UpdateTopology).
func (G *Graph) ActiveN() int { return G.g.ActiveN() }

// LiveM returns the number of live edges (M minus the edges deleted by
// Router.UpdateTopology).
func (G *Graph) LiveM() int { return G.g.LiveM() }

// Removed reports whether vertex v was removed by Router.UpdateTopology.
func (G *Graph) Removed(v int) bool { return G.g.Removed(v) }

// DeadEdge reports whether edge e was deleted by Router.UpdateTopology.
func (G *Graph) DeadEdge(e int) bool { return G.g.Dead(e) }

// Options configures the solver. The zero value uses the paper's
// defaults: ε = 0.5, ⌈log₂ n⌉+1 sampled virtual trees, measured-α
// gradient steps with adaptive fallback.
type Options struct {
	// Epsilon is the approximation target in (0,1); default 0.5.
	Epsilon float64
	// Seed makes runs reproducible; default 1.
	Seed int64
	// Trees overrides the number of sampled virtual trees (0 = log n).
	Trees int
	// PaperScaling uses the virtual tree capacities for the congestion
	// approximator rows, exactly as the distributed algorithm does
	// (default false = exact cut capacities, which are also computable
	// distributedly and give tighter rows; see DESIGN.md ablations).
	PaperScaling bool
	// Alpha overrides the approximator quality parameter α (0 = use the
	// measured distortion with adaptive restarts).
	Alpha float64
	// MaxIters bounds gradient iterations per fixed-α descent; each
	// ε-continuation level and adaptive-α restart of a query gets a
	// fresh budget (0 = the paper's O(α²ε⁻³ log n) with engineering
	// constants).
	MaxIters int
	// DisableAcceleration restores the plain backtracking gradient step
	// instead of the default safeguarded accelerated stepper
	// (DESIGN.md §5).
	DisableAcceleration bool
	// DisableContinuation turns off the ε-continuation schedule
	// (DESIGN.md §5).
	DisableContinuation bool
	// DisableWarmStart turns off the Router's query warm-start cache.
	// With the cache on (the default), repeated and similar queries
	// start near-converged and finish in a fraction of the iterations;
	// their results satisfy the same (1+ε) guarantee but are generally
	// not bit-identical to cold-started runs (DESIGN.md §5). Disable it
	// when results must be a pure function of the query alone.
	DisableWarmStart bool
	// WarmCacheSize caps the warm-start cache entries (0 = 64). Each
	// entry stores one flow vector of length M.
	WarmCacheSize int
	// AlphaRebuildFactor bounds the distortion degradation
	// UpdateCapacities tolerates before falling back to a full
	// congestion-approximator rebuild: an update that leaves the
	// measured α above AlphaRebuildFactor × the α of the last full
	// build triggers the rebuild (0 = 8). Values < 1 rebuild on every
	// update.
	AlphaRebuildFactor float64
	// UpdateDirtyFraction tunes UpdateCapacities' per-tree dirty-path
	// refresh: a sampled tree whose summed edit-path length exceeds
	// this fraction of n+m falls back to the full TreeFlow re-sweep
	// (0 = 0.25; negative disables the dirty path entirely — every
	// update re-sweeps every tree, the bit-identical slow path used as
	// the property-test oracle and the bench baseline).
	UpdateDirtyFraction float64
	// HeapRace selects the legacy binary-heap SplitGraph race inside the
	// spanning-tree construction instead of the default bucket queue
	// (lsst.RaceOrderVersion 1 vs 2). Measurement-only: the two resolve
	// equal-priority race ties in different orders, so sampled trees —
	// and hence flows — differ between the settings (each is
	// individually deterministic). The scale ladder uses this for its
	// race A/B phase breakdown.
	HeapRace bool
	// CutShiftResample tunes UpdateTopology's structural-degradation
	// detector: a sampled tree one of whose pre-existing cuts a
	// topology batch multiplies or divides by more than this factor is
	// individually resampled — its topology was drawn for a cut
	// landscape that no longer exists, a staleness the measured α
	// cannot see (DESIGN.md §8). 0 = 3; negative disables the detector
	// (trees then resample only on α degradation; the query-path
	// quality escalation still catches under-serving).
	CutShiftResample float64
	// Shards distributes the per-iteration solver operators across this
	// many shard goroutines exchanging typed messages under a
	// synchronous round barrier (internal/shard, DESIGN.md §13), and
	// reports measured rounds/messages/bytes on results and ledgers.
	// Flow values and vectors are bit-identical to the
	// single-address-space path at every shard and worker count; what
	// changes is the execution substrate and the measured-complexity
	// telemetry. 0 (the default) disables sharding; the valid range is
	// [0, 64]. Routers with Shards > 0 hold goroutines until Close.
	Shards int
	// RollingRefreshK enables rolling tree refresh under sustained
	// churn: every K-th effective UpdateTopology batch additionally
	// resamples one tree, round-robin over the tree indices, so after
	// trees×K batches every sample has been refreshed even when none
	// individually tripped the degradation detectors. The refresh seeds
	// come from a stream disjoint from the degradation-resample stream,
	// both pure functions of (Options.Seed, batch sequence), so replay
	// determinism is preserved. 0 (the default) disables the refresh —
	// existing churn baselines are unaffected unless opted in.
	RollingRefreshK int
}

// Result is the outcome of a max-flow computation.
type Result struct {
	// Value is the flow value; Value ≥ maxflow/(1+ε) up to lower-order
	// terms, and never exceeds the exact maximum.
	Value float64
	// Flow is the per-edge signed flow realizing Value (capacity
	// feasible, exactly conserving).
	Flow []float64
	// Alpha is the measured congestion-approximator distortion.
	Alpha float64
	// AlphaUsed is the α the gradient descent settled on (≥ the starting
	// value when adaptive stall-restarts fired).
	AlphaUsed float64
	// Iterations counts gradient steps across the computation.
	Iterations int
	// Restarts counts potential-monotonicity restarts of the accelerated
	// stepper's momentum sequence (DESIGN.md §5).
	Restarts int
	// Escalations counts quality escalations: re-solves at a boosted α
	// after the measured residual certificate caught the congestion
	// approximator under-serving this query (DESIGN.md §8; 0 on
	// healthy queries).
	Escalations int
	// WarmStarted reports whether this query started from a warm-cache
	// hit rather than the zero flow.
	WarmStarted bool
	// Degraded reports a best-effort answer: the query's context hit its
	// deadline before the solve met its residual certificate, so Flow is
	// the current iterate — still capacity-feasible and exactly
	// conserving, but with the (1+ε) guarantee replaced by the measured
	// CertBound. Degraded results are timing-dependent: they are never
	// written to the warm cache, and two identical degraded queries need
	// not return identical flows.
	Degraded bool
	// CertBound is the measured quality certificate: Value ≥
	// OPT/CertBound, from the approximator's cut lower bound ‖Rb‖∞ ≤
	// congestion of any routing (a true cut bound under the default
	// exact-cut scaling; an estimate under Options.PaperScaling).
	// Healthy queries sit near 1+ε; degraded answers report however far
	// the iterate got.
	CertBound float64
	// Rounds is the total charged CONGEST rounds (approximator
	// construction plus flow computation).
	Rounds int64
	// RoundsByPhase breaks Rounds down by algorithm phase.
	RoundsByPhase map[string]int64
	// MeasuredRounds is the subset of Rounds executed as actual engine
	// supersteps rather than charged analytically — 0 unless
	// Options.Shards enabled the sharded engine (DESIGN.md §13).
	MeasuredRounds int64
	// Messages and Bytes are the measured cross-shard message and
	// payload-byte totals of the computation — 0 unless Options.Shards
	// enabled the sharded engine, which counts every nonempty
	// inter-shard payload it ships (DESIGN.md §13).
	Messages int64
	Bytes    int64
}

// MaxFlow computes a (1+ε)-approximate maximum s-t flow. The graph must
// be connected.
func MaxFlow(G *Graph, s, t int, opts Options) (*Result, error) {
	r, err := NewRouter(G, opts)
	if err != nil {
		return nil, err
	}
	// One-shot router: release the epoch (and, with Options.Shards, the
	// engine goroutines) once the query finishes.
	defer r.Close()
	return r.MaxFlow(s, t)
}

// ExactMaxFlow computes the exact maximum flow value and an optimal
// integral flow with the sequential Dinic solver (the ground-truth
// reference; not a distributed algorithm).
func ExactMaxFlow(G *Graph, s, t int) (value int64, flow []int64) {
	res := seqflow.MaxFlow(G.g, s, t)
	return res.Value, res.Flow
}

// Router holds a congestion approximator built once for a graph and
// reusable across many flow and routing queries.
//
// Concurrency contract: a Router is safe for fully concurrent use.
// Queries (MaxFlow, RouteDemand, the batch methods, and the read-only
// accessors) may run from any number of goroutines, concurrently with
// each other AND with the mutating operations UpdateCapacities and
// UpdateTopology. Internally the router is MVCC: each query pins the
// immutable published epoch — graph, approximator, solver, and an
// epoch-scoped warm cache — while an update applies its batch to a
// private copy and atomically publishes the result (DESIGN.md §9).
// A query therefore sees either the whole update or none of it, never
// a partial state; queries already in flight when an update publishes
// complete against their original snapshot. Updates serialize against
// each other on an internal mutex. The one thing left to the caller is
// the Graph wrapper passed to NewRouter: it tracks the latest epoch
// and must not be read concurrently with an update.
//
// Unless Options.DisableWarmStart is set, each epoch keeps an LRU
// cache of recent query results and warm-starts repeated queries from
// them (see Options.DisableWarmStart for the determinism trade-off);
// every effective update starts the new epoch with an empty cache, so
// a cached flow never warm-starts a query against different state.
type Router struct {
	// cur is the published epoch; queries pin it via acquire/release
	// (epoch.go). Never nil after NewRouter.
	cur atomic.Pointer[epoch]
	// mu serializes the update paths (fork → apply → publish).
	mu sync.Mutex
	// userG is the caller's Graph wrapper, re-pointed at each publish so
	// it keeps observing the latest epoch's graph.
	userG *Graph
	opts  Options
	// buildAlpha is the measured distortion of the last full build —
	// the reference the UpdateCapacities/UpdateTopology rebuild
	// fallbacks compare against. Guarded by mu.
	buildAlpha float64
	// topoSeq counts published UpdateTopology batches; the per-tree
	// resample seeds are a pure function of (Options.Seed, topoSeq), so
	// replaying the same batch history reproduces the same trees.
	// Guarded by mu; a discarded (failed) batch does not advance it.
	topoSeq int64
	// epochsRetired counts epochs replaced by a publish; epochsFreed
	// counts retired epochs whose last query drained. retired − freed is
	// the number of old snapshots still pinned by in-flight queries.
	epochsRetired atomic.Int64
	epochsFreed   atomic.Int64
}

// NewRouter samples the congestion approximator for G (the expensive,
// query-independent part of the algorithm: Theorem 8.10).
func NewRouter(G *Graph, opts Options) (*Router, error) {
	return NewRouterCtx(context.Background(), G, opts)
}

// NewRouterCtx is NewRouter under a context: a done context (cancelled
// or past its deadline) aborts the approximator build with the
// context's error at tree-level granularity. An aborted construction
// publishes nothing.
func NewRouterCtx(ctx context.Context, G *Graph, opts Options) (*Router, error) {
	if _, err := sherman.NormalizeEps(opts.Epsilon); err != nil {
		return nil, fmt.Errorf("distflow: Options.Epsilon: %w", err)
	}
	if opts.Shards < 0 || opts.Shards > 64 {
		return nil, fmt.Errorf("distflow: Options.Shards must be in [0, 64], got %d", opts.Shards)
	}
	if !G.g.Connected() {
		return nil, fmt.Errorf("distflow: graph must be connected")
	}
	apx, err := capprox.BuildCtx(ctx, G.g, capproxConfig(opts), rand.New(rand.NewSource(normalizeSeed(opts.Seed))))
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("distflow: %w", err)
	}
	r := &Router{userG: G, opts: opts, buildAlpha: apx.Alpha}
	r.bootstrap(G.g, apx, opts)
	return r, nil
}

// Alpha returns the measured per-tree cut distortion of the sampled
// congestion approximator (of the currently published epoch).
func (r *Router) Alpha() float64 { return r.curEpoch().apx.Alpha }

// Trees returns the number of sampled virtual trees in the router's
// congestion approximator.
func (r *Router) Trees() int { return len(r.curEpoch().apx.Trees) }

// BuildBreakdown reports the cost of each congestion-approximator
// construction phase of NewRouter (or of the rebuild fallback of
// UpdateCapacities). Tree-parallel phases (sampling, sparsifier, cut
// capacities) are summed per-tree durations (CPU seconds — above wall
// clock on multicore); AlphaSeconds and TotalSeconds are wall clock.
type BuildBreakdown struct {
	// SampleSeconds is the tree-sampling time across all j-tree levels
	// (includes SparsifySeconds).
	SampleSeconds float64 `json:"sample_seconds"`
	// SparsifySeconds is the cluster-sparsification share of sampling.
	SparsifySeconds float64 `json:"sparsify_seconds"`
	// RaceSeconds is the SplitGraph-race share of sampling.
	RaceSeconds float64 `json:"race_seconds"`
	// CutCapSeconds is the exact subtree-cut capacity phase (one
	// TreeFlow sweep per tree).
	CutCapSeconds float64 `json:"cutcap_seconds"`
	// AlphaSeconds is the distortion measurement phase (sequential).
	AlphaSeconds float64 `json:"alpha_seconds"`
	// TotalSeconds is the wall clock of the whole build.
	TotalSeconds float64 `json:"total_seconds"`
}

// BuildBreakdown returns the per-phase timing of the router's
// congestion-approximator build.
func (r *Router) BuildBreakdown() BuildBreakdown {
	s := r.curEpoch().apx.Stats
	return BuildBreakdown{
		SampleSeconds:   s.SampleSeconds,
		SparsifySeconds: s.SparsifySeconds,
		RaceSeconds:     s.RaceSeconds,
		CutCapSeconds:   s.CutCapSeconds,
		AlphaSeconds:    s.AlphaSeconds,
		TotalSeconds:    s.TotalSeconds,
	}
}

// ConstructionRounds returns the CONGEST rounds charged to build the
// congestion approximator.
func (r *Router) ConstructionRounds() int64 { return r.curEpoch().apx.Ledger.Total() }

// capproxConfig maps solver options to the approximator configuration
// (one definition shared by NewRouter and the UpdateCapacities rebuild
// fallback).
func capproxConfig(opts Options) capprox.Config {
	return capprox.Config{
		Trees:               opts.Trees,
		ExactCuts:           !opts.PaperScaling,
		UpdateDirtyFraction: opts.UpdateDirtyFraction,
		CutShiftResample:    opts.CutShiftResample,
		Step:                jtree.Config{LSST: lsst.Config{HeapRace: opts.HeapRace}},
	}
}

// CapEdit is one capacity edit applied by UpdateCapacities.
//
// Batches are coalesced before anything is applied: when a batch names
// the same edge more than once the last edit wins (earlier edits to
// that edge are never observable), and edits equal to the edge's
// current capacity are dropped as no-ops. A batch that is empty after
// coalescing — including a nil or empty slice — leaves the router
// completely untouched: no tree re-sweep, no solver rebuild, and the
// warm-start cache survives.
type CapEdit struct {
	// Edge is the edge index returned by AddEdge.
	Edge int
	// Cap is the new capacity. It must be positive: model a failed
	// link with a small positive capacity so the graph stays connected
	// (the solver's standing requirement).
	Cap int64
}

// UpdateResult reports what an UpdateCapacities call did.
type UpdateResult struct {
	// Rebuilt is true when the α-degradation fallback discarded the
	// incremental refresh and re-sampled the approximator from scratch.
	Rebuilt bool
	// Alpha is the measured congestion-approximator distortion after
	// the update (or rebuild).
	Alpha float64
	// Edits is the effective edit count after coalescing (0 for a
	// no-op batch, which leaves the router untouched).
	Edits int
	// DirtyTrees and SweptTrees count the sampled trees the incremental
	// refresh patched along dirty paths vs re-swept in full (both 0 for
	// a no-op batch; on Rebuilt they describe the discarded incremental
	// attempt).
	DirtyTrees, SweptTrees int
	// ResampledTrees counts the trees UpdateTopology individually
	// resampled because the batch degraded them past
	// Options.AlphaRebuildFactor (always 0 for UpdateCapacities, whose
	// fallback is the full rebuild).
	ResampledTrees int
	// RefreshedTrees counts the trees this batch resampled under the
	// Options.RollingRefreshK round-robin refresh (0 or 1 per batch;
	// always 0 when the option is off or the batch rebuilt in full).
	RefreshedTrees int
	// AddedVertices and AddedEdges report the ids UpdateTopology
	// assigned, in batch order (vertex link edges follow their vertex).
	AddedVertices, AddedEdges []int
}

// UpdateCapacities applies capacity edits to the router's graph (in
// place — the Graph passed to NewRouter observes them) and refreshes
// the congestion approximator incrementally instead of rebuilding it.
// The batch is first coalesced (last edit per edge wins, edits equal to
// the current capacity dropped — see CapEdit); a batch that coalesces
// to nothing returns immediately without touching the router, so no-op
// churn costs nothing and the warm cache survives it. Otherwise the
// sampled tree topologies are kept and each tree is refreshed along the
// dirty paths only: a capacity edit on edge (u,v) changes exactly the
// subtree cuts on the tree path u→LCA(u,v)→v (Lemma 8.3), so cut and
// virtual capacities are patched along those paths in O(edits × depth),
// falling back to the full per-tree TreeFlow re-sweep past
// Options.UpdateDirtyFraction; the distortion α is re-measured from
// maintained per-tree maxima. When the refreshed α exceeds
// Options.AlphaRebuildFactor × the α of the last full build, the
// incremental result is judged too distorted and a full deterministic
// rebuild (same seed) runs instead; UpdateResult.Rebuilt reports which
// path was taken.
//
// On any effective (non-no-op) update a new epoch is published with a
// fresh solver and an empty warm-start cache, so subsequent queries are
// a pure function of the updated router state — the same answers a
// freshly built router of the same α would give up to the (1+ε)
// guarantee, at a fraction of the cost for small edit batches.
//
// UpdateCapacities may run concurrently with queries (they complete
// against the epoch they started on) and is atomic: on any error —
// including a rebuild failure past the point edits were applied — the
// private epoch is discarded and the router keeps serving the
// pre-update state unchanged.
func (r *Router) UpdateCapacities(edits []CapEdit) (*UpdateResult, error) {
	return r.UpdateCapacitiesCtx(context.Background(), edits)
}

// UpdateCapacitiesCtx is UpdateCapacities under a context. A done
// context — cancelled or past its deadline; updates do not degrade —
// aborts the update with the context's error and the same atomicity as
// any other failure: the private epoch fork is discarded whole and the
// router keeps serving the pre-update state bit-identically, so
// retrying the same batch with a fresh context is always safe.
func (r *Router) UpdateCapacitiesCtx(ctx context.Context, edits []CapEdit) (*UpdateResult, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cur := r.curEpoch()
	for _, ed := range edits {
		if ed.Edge < 0 || ed.Edge >= cur.g.M() {
			return nil, fmt.Errorf("distflow: capacity edit names edge %d (m=%d)", ed.Edge, cur.g.M())
		}
		if ed.Cap <= 0 {
			return nil, fmt.Errorf("distflow: capacity edit for edge %d has non-positive capacity %d", ed.Edge, ed.Cap)
		}
		if cur.g.Dead(ed.Edge) {
			return nil, fmt.Errorf("distflow: capacity edit names deleted edge %d (topology edits cannot be undone by SetCap)", ed.Edge)
		}
	}
	// Coalesce: last write per edge wins, then no-ops (edits equal to
	// the edge's current capacity) drop out.
	final := make(map[int]int64, len(edits))
	for _, ed := range edits {
		final[ed.Edge] = ed.Cap
	}
	effective := make([]int, 0, len(final))
	for e, c := range final {
		if cur.g.Cap(e) != c {
			effective = append(effective, e)
		}
	}
	if len(effective) == 0 {
		// Nothing changes: the published epoch — solver state, warm
		// cache and all — survives untouched.
		return &UpdateResult{Alpha: cur.apx.Alpha}, nil
	}
	// Apply in ascending edge order (map iteration is randomized; the
	// refresh must be a pure function of the router state and batch) —
	// on the private fork, never on the published epoch.
	next := r.fork()
	sort.Ints(effective)
	deltas := make([]capprox.CapDelta, len(effective))
	for i, e := range effective {
		ed := next.g.Edge(e)
		deltas[i] = capprox.CapDelta{U: ed.U, V: ed.V, Diff: float64(final[e]) - float64(ed.Cap)}
		next.g.SetCap(e, final[e])
	}
	dirty, swept := next.apx.UpdateCapacities(next.g, capproxConfig(r.opts), deltas)
	out := &UpdateResult{Alpha: next.apx.Alpha, Edits: len(effective), DirtyTrees: dirty, SweptTrees: swept}
	factor := r.opts.AlphaRebuildFactor
	if factor == 0 {
		factor = 8
	}
	rebuilt := false
	if next.apx.Alpha > factor*r.buildAlpha {
		apx, err := capprox.BuildCtx(ctx, next.g, capproxConfig(r.opts), rand.New(rand.NewSource(r.seed())))
		if err != nil {
			// Atomic failure: drop the fork; the published epoch never
			// saw the edits.
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("distflow: rebuild after capacity update: %w", err)
		}
		next.apx = apx
		rebuilt = true
		out.Rebuilt = true
		out.Alpha = apx.Alpha
	}
	if err := ctx.Err(); err != nil {
		// Final pre-publish check: a caller that abandoned the update
		// must never have it appear later. Dropping the fork here — with
		// every writer-side field untouched — is exactly the
		// failed-rebuild path, so replaying the batch is safe.
		return nil, err
	}
	if rebuilt {
		r.buildAlpha = next.apx.Alpha
	}
	r.publish(next)
	return out, nil
}

func (ep *epoch) shermanConfig() sherman.Config {
	return sherman.Config{
		Epsilon:             ep.opts.Epsilon,
		Alpha:               ep.opts.Alpha,
		MaxIters:            ep.opts.MaxIters,
		DisableAcceleration: ep.opts.DisableAcceleration,
		DisableContinuation: ep.opts.DisableContinuation,
	}
}

// MaxFlow computes a (1+ε)-approximate maximum s-t flow using the
// router's approximator, warm-starting from the cache when the same
// pair was queried recently.
func (r *Router) MaxFlow(s, t int) (*Result, error) {
	return r.MaxFlowCtx(context.Background(), s, t)
}

// MaxFlowCtx is MaxFlow under a context. Cancelling the context aborts
// the query with the context's error within one descent-iteration
// granule; the router state is untouched (queries never mutate it). A
// deadline expiry instead degrades gracefully: the solve stops where it
// is and returns its current iterate as a feasible, exactly conserving
// best-effort flow flagged Result.Degraded, carrying the measured
// Result.CertBound. Degraded answers are never written to the warm
// cache, so they cannot perturb later queries.
//
// Retryability: an error with errors.Is(err, context.Canceled) or
// context.DeadlineExceeded reflects the caller's context, not router
// state — the same query retried with a fresh context is expected to
// succeed. All other errors are validation errors and will repeat.
func (r *Router) MaxFlowCtx(ctx context.Context, s, t int) (*Result, error) {
	ep := r.acquire()
	defer ep.release()
	var warm []float64
	if ep.cache != nil {
		warm = ep.cache.get(stKey(s, t))
	}
	res, routing, err := ep.maxFlowWarm(ctx, s, t, warm)
	if err != nil {
		return nil, err
	}
	if ep.cache != nil && !res.Degraded {
		ep.cache.put(stKey(s, t), routing)
	}
	return res, nil
}

// maxFlowWarm runs one warm-started max-flow query against this epoch
// without touching the cache. It additionally returns the unnormalized
// routing of the unit s-t demand — the vector a future query of the
// same pair warm-starts from (nil for degraded answers: a
// timing-dependent iterate must never seed future queries).
func (ep *epoch) maxFlowWarm(ctx context.Context, s, t int, warm []float64) (*Result, []float64, error) {
	if s >= 0 && s < ep.g.N() && ep.g.Removed(s) {
		return nil, nil, fmt.Errorf("distflow: source %d was removed", s)
	}
	if t >= 0 && t < ep.g.N() && ep.g.Removed(t) {
		return nil, nil, fmt.Errorf("distflow: sink %d was removed", t)
	}
	fr, err := ep.solver.MaxFlowCtx(ctx, s, t, ep.shermanConfig(), warm)
	if err != nil {
		if ctx.Err() != nil {
			return nil, nil, ctx.Err()
		}
		return nil, nil, fmt.Errorf("distflow: %w", err)
	}
	// Enumerate the ledgers' actual phases rather than whitelisting
	// names: a hardcoded list silently stops summing to Rounds the
	// moment a new phase is charged (as "update-treeflow" once did).
	byPhase := map[string]int64{}
	total := int64(0)
	measured, msgs, bytes := int64(0), int64(0), int64(0)
	for _, led := range []*congest.Ledger{ep.apx.Ledger, fr.Ledger} {
		total += led.Total()
		measured += led.Measured()
		msgs += led.Messages()
		bytes += led.Bytes()
		for _, name := range led.PhaseNames() {
			if v := led.Phase(name); v > 0 {
				byPhase[name] += v
			}
		}
	}
	// The cacheable routing vector is only materialized when there is a
	// cache to hold it (queries with DisableWarmStart skip the pass) and
	// the answer is not degraded (a deadline-shaped iterate must never
	// warm-start a future query).
	var routing []float64
	if ep.cache != nil && !fr.Degraded {
		routing = make([]float64, len(fr.Flow))
		for e, fe := range fr.Flow {
			routing[e] = fe * fr.Congestion
		}
	}
	return &Result{
		Value:          fr.Value,
		Flow:           fr.Flow,
		Alpha:          ep.apx.Alpha,
		AlphaUsed:      fr.AlphaUsed,
		Iterations:     fr.Iterations,
		Restarts:       fr.Restarts,
		Escalations:    fr.Escalations,
		WarmStarted:    warm != nil,
		Degraded:       fr.Degraded,
		CertBound:      fr.CertBound,
		Rounds:         total,
		RoundsByPhase:  byPhase,
		MeasuredRounds: measured,
		Messages:       msgs,
		Bytes:          bytes,
	}, routing, nil
}

// RouteDemand computes a flow approximately routing an arbitrary demand
// vector b (b[v] > 0 injects supply at v; Σb must be 0) with
// near-minimal maximum congestion. The returned flow meets b exactly
// (residuals are routed on a spanning tree); congestion is its maximum
// |f_e|/cap_e.
func (r *Router) RouteDemand(b []float64, eps float64) (flow []float64, congestion float64, err error) {
	return r.RouteDemandCtx(context.Background(), b, eps)
}

// RouteDemandCtx is RouteDemand under a context. Cancellation aborts
// with the context's error within one descent-iteration granule. A
// deadline expiry degrades gracefully: the returned flow still meets b
// exactly (the residual of the current iterate is tree-routed), only
// its congestion is whatever the truncated descent reached — the
// reported congestion is always the measured value of the returned
// flow, so the answer remains honest. Deadline-degraded routings are
// never cached.
func (r *Router) RouteDemandCtx(ctx context.Context, b []float64, eps float64) (flow []float64, congestion float64, err error) {
	eps, err = normalizeEps(eps)
	if err != nil {
		return nil, 0, err
	}
	ep := r.acquire()
	defer ep.release()
	key := ""
	var warm []float64
	if ep.cache != nil {
		key = demandKey(b, eps)
		warm = ep.cache.get(key)
	}
	flow, congestion, degraded, err := ep.routeDemandWarm(ctx, b, eps, warm)
	if err == nil && !degraded && ep.cache != nil {
		ep.cache.put(key, append([]float64(nil), flow...))
	}
	return flow, congestion, err
}

// normalizeEps maps the zero value to the documented default accuracy
// and rejects values outside (0,1) — including NaN — with a clear
// error at the API boundary. Every query path — and the warm-cache key
// derivation — must go through this one definition so cached entries
// always correspond to the accuracy the solve actually uses; it
// delegates to sherman.NormalizeEps, the single definition the solver
// core itself uses, so the default cannot desync between the layers.
func normalizeEps(eps float64) (float64, error) {
	out, err := sherman.NormalizeEps(eps)
	if err != nil {
		return 0, fmt.Errorf("distflow: %w", err)
	}
	return out, nil
}

// routeDemandWarm runs one warm-started demand query against this
// epoch without touching the cache. eps is already normalized. degraded
// reports a deadline-truncated descent (the flow still meets b exactly;
// callers must not cache it).
func (ep *epoch) routeDemandWarm(ctx context.Context, b []float64, eps float64, warm []float64) (flow []float64, congestion float64, degraded bool, err error) {
	if len(b) != ep.g.N() {
		return nil, 0, false, fmt.Errorf("distflow: demand length %d, want %d", len(b), ep.g.N())
	}
	if !graph.IsFeasibleDemand(b, 1e-6) {
		return nil, 0, false, fmt.Errorf("distflow: demand does not sum to zero")
	}
	if ep.g.RemovedN() > 0 {
		for v, bv := range b {
			if bv != 0 && ep.g.Removed(v) {
				return nil, 0, false, fmt.Errorf("distflow: demand %v at removed vertex %d", bv, v)
			}
		}
	}
	cfg := ep.shermanConfig()
	rr, err := ep.solver.AlmostRouteCtx(ctx, b, eps, cfg, nil, warm)
	if err != nil {
		if ctx.Err() != nil {
			return nil, 0, false, ctx.Err()
		}
		return nil, 0, false, fmt.Errorf("distflow: %w", err)
	}
	// Restore exact conservation via spanning-tree routing (Lemma 9.1).
	div := ep.g.Divergence(rr.Flow)
	resid := make([]float64, len(b))
	for v := range resid {
		resid[v] = b[v] - div[v]
	}
	fTree, err := ep.solver.RouteResidualOnST(resid)
	if err != nil {
		return nil, 0, false, fmt.Errorf("distflow: %w", err)
	}
	out := make([]float64, ep.g.M())
	for e := range out {
		out[e] = rr.Flow[e] + fTree[e]
	}
	return out, ep.g.MaxCongestion(out), rr.Degraded, nil
}

// CongestionLowerBound returns ‖Rb‖∞, a certified lower bound on the
// congestion any routing of b must incur (with the default exact-cut
// scaling this is a true cut-based bound).
func (r *Router) CongestionLowerBound(b []float64) float64 {
	ep := r.acquire()
	defer ep.release()
	return ep.apx.NormRb(b)
}

// STPair names one s-t max-flow query of a batch.
type STPair struct {
	S, T int
}

// MaxFlowBatch computes a (1+ε)-approximate maximum flow for every
// pair, running the queries concurrently on the internal worker pool
// while sharing the router's congestion approximator. results[i]
// corresponds to pairs[i] and carries its own isolated round ledger.
// The whole batch runs against one epoch snapshot: an update published
// mid-batch is not observed by any of its queries.
//
// Warm-cache interaction is deterministic: lookups happen before the
// parallel region and insertions after it, both in index order, so for
// a fixed router state the batch results are bit-identical at every
// worker count. (Issuing the same queries one at a time instead mutates
// the cache between queries; disable the cache for strict
// batch-vs-sequential equivalence.)
//
// On error, the first failing query's error (by index order) is
// returned together with the partial results; failed entries are nil.
func (r *Router) MaxFlowBatch(pairs []STPair) ([]*Result, error) {
	return r.MaxFlowBatchCtx(context.Background(), pairs)
}

// MaxFlowBatchCtx is MaxFlowBatch under one context governing the whole
// batch: cancellation aborts every member with the context's error; a
// deadline degrades each member to its best-effort iterate (see
// MaxFlowCtx). For per-member contexts — where one member's abort must
// not disturb the others — see maxFlowBatchCtxs (the serving layer's
// entry point).
func (r *Router) MaxFlowBatchCtx(ctx context.Context, pairs []STPair) ([]*Result, error) {
	ctxs := make([]context.Context, len(pairs))
	for i := range ctxs {
		ctxs[i] = ctx
	}
	results, errs := r.maxFlowBatchCtxs(ctxs, pairs)
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("distflow: batch query %d (%d→%d): %w", i, pairs[i].S, pairs[i].T, err)
		}
	}
	return results, nil
}

// maxFlowBatchCtxs runs one epoch-snapshot batch with an independent
// context per member. A cancelled member fails alone with its context's
// error and cannot perturb the others: each member's solve observes
// only its own context, warm-cache reads all happen before the parallel
// region against the pre-batch cache state, and writes happen after it
// in index order with failed and degraded entries skipped — so the
// surviving members' results are bit-identical to the same batch run
// without the cancellation.
func (r *Router) maxFlowBatchCtxs(ctxs []context.Context, pairs []STPair) ([]*Result, []error) {
	ep := r.acquire()
	defer ep.release()
	results := make([]*Result, len(pairs))
	routings := make([][]float64, len(pairs))
	warms := make([][]float64, len(pairs))
	errs := make([]error, len(pairs))
	if ep.cache != nil {
		for i, p := range pairs {
			warms[i] = ep.cache.get(stKey(p.S, p.T))
		}
	}
	par.Do(len(pairs), func(i int) {
		results[i], routings[i], errs[i] = ep.maxFlowWarm(ctxs[i], pairs[i].S, pairs[i].T, warms[i])
	})
	if ep.cache != nil {
		for i, p := range pairs {
			if errs[i] == nil && !results[i].Degraded {
				ep.cache.put(stKey(p.S, p.T), routings[i])
			}
		}
	}
	return results, errs
}

// Routing is the outcome of one demand-routing query of a batch.
type Routing struct {
	// Flow meets the queried demand exactly (per-edge signed flow).
	Flow []float64
	// Congestion is max_e |Flow_e|/cap_e.
	Congestion float64
}

// RouteDemandBatch routes every demand vector concurrently on the
// internal worker pool, sharing the router's congestion approximator.
// results[i] corresponds to demands[i]. Warm-cache reads and writes
// bracket the parallel region in index order exactly as in
// MaxFlowBatch, so batch results are bit-identical at every worker
// count for a fixed router state. On error the first failing query's
// error is returned with the partial results.
func (r *Router) RouteDemandBatch(demands [][]float64, eps float64) ([]*Routing, error) {
	eps, err := normalizeEps(eps)
	if err != nil {
		return nil, err
	}
	ep := r.acquire()
	defer ep.release()
	results := make([]*Routing, len(demands))
	warms := make([][]float64, len(demands))
	keys := make([]string, len(demands))
	errs := make([]error, len(demands))
	if ep.cache != nil {
		for i, b := range demands {
			keys[i] = demandKey(b, eps)
			warms[i] = ep.cache.get(keys[i])
		}
	}
	par.Do(len(demands), func(i int) {
		flow, cong, _, err := ep.routeDemandWarm(context.Background(), demands[i], eps, warms[i])
		if err != nil {
			errs[i] = err
			return
		}
		results[i] = &Routing{Flow: flow, Congestion: cong}
	})
	if ep.cache != nil {
		for i := range demands {
			if errs[i] == nil {
				ep.cache.put(keys[i], append([]float64(nil), results[i].Flow...))
			}
		}
	}
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("distflow: batch demand %d: %w", i, err)
		}
	}
	return results, nil
}
