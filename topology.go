package distflow

// Dynamic topology churn: Router.UpdateTopology applies batched edge
// inserts/deletes and vertex adds/removes to a live router without
// rebuilding the congestion approximator (DESIGN.md §8). Structural
// edits ride the same Lemma 8.3 dirty-path machinery as capacity edits;
// only trees whose measured distortion degrades past the rebuild
// threshold are individually resampled.

import (
	"context"
	"fmt"
	"math/rand"

	"distflow/internal/capprox"
	"distflow/internal/faultinject"
	"distflow/internal/graph"
)

// TopoOp selects the kind of one TopoEdit.
type TopoOp uint8

const (
	// TopoAddEdge inserts an undirected edge U—V with capacity Cap.
	TopoAddEdge TopoOp = iota
	// TopoDeleteEdge tombstones the edge with index Edge. Its id stays
	// allocated (flow vectors keep their length); deleting an already
	// deleted edge is elided as a no-op.
	TopoDeleteEdge
	// TopoAddVertex appends a new vertex with the initial Links. The new
	// vertex's id is the graph's vertex count at the time the edit
	// applies (ids grow densely in batch order; UpdateResult.AddedVertices
	// reports them). At least one link is required — an isolated vertex
	// would disconnect the graph.
	TopoAddVertex
	// TopoRemoveVertex removes vertex Vertex: all its live incident
	// edges are tombstoned and the id is permanently retired (never
	// reused). Removing an already removed vertex is elided.
	TopoRemoveVertex
)

// Link is one initial edge of a TopoAddVertex edit: the new vertex is
// connected to To with capacity Cap. The heaviest link's target (ties:
// earliest) serves as the vertex's deterministic anchor in every
// sampled tree — the tree then routes the leaf's flow along its
// dominant edge, which keeps the grafted family a faithful cut sketch.
type Link struct {
	To  int
	Cap int64
}

// anchorOf picks the tree anchor of an added vertex: the heaviest
// link's target, earliest on ties.
func anchorOf(links []Link) int {
	best := 0
	for i := 1; i < len(links); i++ {
		if links[i].Cap > links[best].Cap {
			best = i
		}
	}
	return links[best].To
}

// TopoEdit is one structural edit of an UpdateTopology batch. Exactly
// the fields of its Op are read; constructors below fill them.
type TopoEdit struct {
	Op TopoOp
	// TopoAddEdge:
	U, V int
	Cap  int64
	// TopoDeleteEdge:
	Edge int
	// TopoRemoveVertex:
	Vertex int
	// TopoAddVertex:
	Links []Link
}

// AddEdgeEdit inserts an edge u—v with the given capacity. u and v may
// name vertices added earlier in the same batch.
func AddEdgeEdit(u, v int, capacity int64) TopoEdit {
	return TopoEdit{Op: TopoAddEdge, U: u, V: v, Cap: capacity}
}

// DeleteEdgeEdit tombstones edge e (an index returned by AddEdge or
// reported in UpdateResult.AddedEdges).
func DeleteEdgeEdit(e int) TopoEdit { return TopoEdit{Op: TopoDeleteEdge, Edge: e} }

// AddVertexEdit appends a vertex linked by the given edges.
func AddVertexEdit(links ...Link) TopoEdit { return TopoEdit{Op: TopoAddVertex, Links: links} }

// RemoveVertexEdit removes vertex v and all its live edges.
func RemoveVertexEdit(v int) TopoEdit { return TopoEdit{Op: TopoRemoveVertex, Vertex: v} }

// UpdateTopology applies a batch of structural edits to the router's
// graph (in place — the Graph passed to NewRouter observes them) and
// refreshes the congestion approximator incrementally instead of
// rebuilding it.
//
// Semantics, in order:
//
//   - Edits apply sequentially. Vertex ids are assigned densely in
//     batch order (N, N+1, …); edge ids likewise (M, M+1, …); both are
//     reported in the UpdateResult. Later edits may reference earlier
//     ones' vertices.
//   - The batch is elided where it says nothing new: deleting a dead
//     edge, deleting the same edge twice, removing a removed vertex.
//     A batch that elides to nothing returns immediately without
//     touching the router — no tree work, no solver reset, the warm
//     cache survives.
//   - The whole batch is validated first, including a connectivity
//     pre-flight of the resulting active graph; on a validation error
//     nothing is applied. Errors past planning are atomic too: the
//     batch is applied to a private epoch, so an internal
//     resample/rebuild failure (possible only if the tree sampler
//     itself fails) discards that epoch and the router keeps serving
//     the pre-update state bit-identically — replaying the same batch
//     is safe.
//
// The sampled tree topologies are kept and patched: new vertices enter
// each tree as leaves under a deterministic anchor, inserted edges bump
// the cut capacities along the existing tree path between their
// endpoints, deleted edges subtract theirs (the Lemma 8.3 identity —
// exact cut capacities stay bit-identical to a full re-sweep), and α is
// re-measured from the maintained per-tree extrema. Trees whose
// distortion degrades past Options.AlphaRebuildFactor × the last full
// build's α are individually resampled on the active subgraph
// (UpdateResult.ResampledTrees); only if the re-measured α still
// exceeds the bound afterwards does a full deterministic rebuild run
// (UpdateResult.Rebuilt).
//
// On any effective batch a new epoch is published with a fresh solver
// and an empty warm-start cache. UpdateTopology may run concurrently
// with queries (they complete against the epoch they started on); see
// the Router godoc for the full concurrency contract.
func (r *Router) UpdateTopology(edits []TopoEdit) (*UpdateResult, error) {
	return r.UpdateTopologyCtx(context.Background(), edits)
}

// UpdateTopologyCtx is UpdateTopology under a context. A done context —
// cancelled or past its deadline; updates do not degrade — aborts the
// update with the context's error and full atomicity: the private epoch
// fork is discarded whole, nothing publishes, and the topology sequence
// number does not advance, so the resample-seed stream is untouched and
// replaying the identical batch (with a fresh context) reproduces
// exactly the trees the uncancelled update would have produced.
func (r *Router) UpdateTopologyCtx(ctx context.Context, edits []TopoEdit) (*UpdateResult, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cur := r.curEpoch()
	eff, err := planTopology(cur.g, edits)
	if err != nil {
		return nil, err
	}
	if len(eff) == 0 {
		// Nothing changes: the published epoch — solver state, warm
		// cache and all — survives untouched.
		return &UpdateResult{Alpha: cur.apx.Alpha}, nil
	}

	// Apply the batch to a private epoch fork, accumulating the
	// approximator's delta view. The published epoch is never written:
	// any failure below just drops the fork.
	next := r.fork()
	var delta capprox.TopoDelta
	out := &UpdateResult{Edits: len(eff)}
	for _, ed := range eff {
		switch ed.Op {
		case TopoAddEdge:
			e := next.g.AddEdge(ed.U, ed.V, ed.Cap)
			out.AddedEdges = append(out.AddedEdges, e)
			delta.Deltas = append(delta.Deltas, capprox.CapDelta{U: ed.U, V: ed.V, Diff: float64(ed.Cap)})
		case TopoDeleteEdge:
			de := next.g.Edge(ed.Edge)
			next.g.DeleteEdge(ed.Edge)
			delta.Deltas = append(delta.Deltas, capprox.CapDelta{U: de.U, V: de.V, Diff: -float64(de.Cap)})
		case TopoAddVertex:
			w := next.g.AddVertex()
			out.AddedVertices = append(out.AddedVertices, w)
			delta.NewVertices = append(delta.NewVertices, capprox.NewVertex{ID: w, Anchor: anchorOf(ed.Links)})
			for _, l := range ed.Links {
				e := next.g.AddEdge(w, l.To, l.Cap)
				out.AddedEdges = append(out.AddedEdges, e)
				delta.Deltas = append(delta.Deltas, capprox.CapDelta{U: w, V: l.To, Diff: float64(l.Cap)})
			}
		case TopoRemoveVertex:
			// Capture capacities before the tombstones land: each killed
			// edge is an ordinary delete delta.
			next.g.ForEachArc(ed.Vertex, func(a graph.Arc) {
				de := next.g.Edge(a.E)
				delta.Deltas = append(delta.Deltas, capprox.CapDelta{U: de.U, V: de.V, Diff: -float64(de.Cap)})
			})
			next.g.RemoveVertex(ed.Vertex)
			delta.Removed = append(delta.Removed, ed.Vertex)
		}
	}
	cfg := capproxConfig(r.opts)
	dirty, swept, shifted := next.apx.UpdateTopology(next.g, cfg, delta)
	out.DirtyTrees, out.SweptTrees = dirty, swept
	// Injection point for chaos tests and the -serve bench: the batch is
	// fully applied to the fork, exactly the state a ResampleTrees/Build
	// failure surfaces in. A fault armed here (error or Call-that-
	// cancels) exercises the atomic-discard path below.
	if err := faultinject.Hit(topoResampleSite); err != nil {
		return nil, fmt.Errorf("distflow: resample after topology update: %w", err)
	}
	if err := ctx.Err(); err != nil {
		// The caller abandoned the update mid-apply: drop the fork, keep
		// the seed stream unmoved.
		return nil, err
	}

	// Patch-vs-resample rule: individually resample the trees the batch
	// degraded — by measured α past the rebuild threshold, or by the
	// cut-shift detector (a reshaped cut landscape the frozen sample no
	// longer sketches) — with seeds drawn from the router's
	// deterministic resample stream (a pure function of the option seed
	// and the batch sequence number; a failed batch does not advance
	// the stream, so replaying it reproduces the same trees).
	factor := r.opts.AlphaRebuildFactor
	if factor == 0 {
		factor = 8
	}
	if degraded := mergeSorted(next.apx.DegradedTrees(factor*r.buildAlpha), shifted); len(degraded) > 0 {
		seeds := make([]int64, len(degraded))
		rng := rand.New(rand.NewSource(r.seed()*1_000_003 + r.topoSeq))
		for i := range seeds {
			seeds[i] = rng.Int63()
		}
		if err := next.apx.ResampleTreesCtx(ctx, next.g, cfg, degraded, seeds); err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("distflow: resample after topology update: %w", err)
		}
		out.ResampledTrees = len(degraded)
	}
	out.Alpha = next.apx.Alpha
	// Resampling is honest: if α is still past the bound the graph
	// itself degraded — fall back to the full deterministic rebuild and
	// adopt its α as the new reference.
	rebuilt := false
	if next.apx.Alpha > factor*r.buildAlpha {
		apx, err := capprox.BuildCtx(ctx, next.g, cfg, rand.New(rand.NewSource(r.seed())))
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("distflow: rebuild after topology update: %w", err)
		}
		next.apx = apx
		rebuilt = true
		out.Rebuilt = true
		out.Alpha = apx.Alpha
	}
	// Rolling tree refresh: every K-th effective batch resamples one
	// tree round-robin, so sustained churn cannot let every sample age
	// in place below the degradation detectors. The refresh seed stream
	// uses a salt disjoint from the degradation-resample stream and is a
	// pure function of (seed, topoSeq), preserving replay determinism.
	// A full rebuild IS a refresh of everything, so the two never stack.
	if k := r.opts.RollingRefreshK; k > 0 && !rebuilt {
		batchNo := r.topoSeq + 1 // 1-based index this batch gets on publish
		if trees := len(next.apx.Trees); trees > 0 && batchNo%int64(k) == 0 {
			idx := int((batchNo/int64(k) - 1) % int64(trees))
			rng := rand.New(rand.NewSource(r.seed()*7_368_787 + r.topoSeq))
			if err := next.apx.ResampleTreesCtx(ctx, next.g, cfg, []int{idx}, []int64{rng.Int63()}); err != nil {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				return nil, fmt.Errorf("distflow: rolling refresh after topology update: %w", err)
			}
			out.RefreshedTrees = 1
			out.Alpha = next.apx.Alpha
		}
	}
	if err := ctx.Err(); err != nil {
		// Final pre-publish check: nothing writer-side has been touched
		// yet, so dropping the fork leaves the router bit-identical.
		return nil, err
	}
	// Nothing can fail past this point: commit the writer-side state and
	// publish atomically.
	if rebuilt {
		r.buildAlpha = next.apx.Alpha
	}
	r.topoSeq++
	r.publish(next)
	return out, nil
}

// topoResampleSite is the faultinject site UpdateTopology passes after
// a batch is fully applied to its private epoch fork — the exact point
// a ResampleTrees/Build failure surfaces in. Chaos tests and the -serve
// bench arm it to exercise (and count) the atomic-discard path.
const topoResampleSite = "distflow/topology/resample"

// planTopology validates the batch against a lightweight simulation of
// the graph and returns the effective (non-elided) edits in application
// order. Nothing is mutated; any error leaves the router untouched.
func planTopology(g *graph.Graph, edits []TopoEdit) ([]TopoEdit, error) {
	if len(edits) == 0 {
		return nil, nil
	}
	// Simulated state: vertex count, removal marks, edge list.
	type simEdge struct {
		u, v int
		dead bool
	}
	simN := g.N()
	sim := make([]simEdge, g.M(), g.M()+len(edits))
	for e := 0; e < g.M(); e++ {
		ed := g.Edge(e)
		sim[e] = simEdge{u: ed.U, v: ed.V, dead: g.Dead(e)}
	}
	removed := make([]bool, simN, simN+len(edits))
	anyRemoved := g.RemovedN() > 0
	for v := 0; v < simN; v++ {
		if anyRemoved && g.Removed(v) {
			removed[v] = true
		}
	}
	vertexOK := func(v int) error {
		if v < 0 || v >= simN {
			return fmt.Errorf("vertex %d out of range (n=%d)", v, simN)
		}
		if removed[v] {
			return fmt.Errorf("vertex %d is removed", v)
		}
		return nil
	}
	// simDead treats a removed endpoint as an implicit tombstone, so
	// vertex removals need no per-edge marking sweep.
	simDead := func(e simEdge) bool {
		return e.dead || removed[e.u] || removed[e.v]
	}
	eff := make([]TopoEdit, 0, len(edits))
	for i, ed := range edits {
		switch ed.Op {
		case TopoAddEdge:
			if ed.U == ed.V {
				return nil, fmt.Errorf("distflow: topology edit %d: self-loop at %d", i, ed.U)
			}
			if err := vertexOK(ed.U); err != nil {
				return nil, fmt.Errorf("distflow: topology edit %d: %v", i, err)
			}
			if err := vertexOK(ed.V); err != nil {
				return nil, fmt.Errorf("distflow: topology edit %d: %v", i, err)
			}
			if ed.Cap <= 0 {
				return nil, fmt.Errorf("distflow: topology edit %d: non-positive capacity %d", i, ed.Cap)
			}
			sim = append(sim, simEdge{u: ed.U, v: ed.V})
			eff = append(eff, ed)
		case TopoDeleteEdge:
			if ed.Edge < 0 || ed.Edge >= len(sim) {
				return nil, fmt.Errorf("distflow: topology edit %d: edge %d out of range (m=%d)", i, ed.Edge, len(sim))
			}
			if simDead(sim[ed.Edge]) {
				// Elide: already deleted — explicitly, or implicitly by
				// an earlier removal of an endpoint in this batch.
				continue
			}
			sim[ed.Edge].dead = true
			eff = append(eff, ed)
		case TopoAddVertex:
			if len(ed.Links) == 0 {
				return nil, fmt.Errorf("distflow: topology edit %d: vertex added without links would disconnect the graph", i)
			}
			w := simN
			for j, l := range ed.Links {
				if err := vertexOK(l.To); err != nil {
					return nil, fmt.Errorf("distflow: topology edit %d link %d: %v", i, j, err)
				}
				if l.Cap <= 0 {
					return nil, fmt.Errorf("distflow: topology edit %d link %d: non-positive capacity %d", i, j, l.Cap)
				}
			}
			simN++
			removed = append(removed, false)
			for _, l := range ed.Links {
				sim = append(sim, simEdge{u: w, v: l.To})
			}
			eff = append(eff, ed)
		case TopoRemoveVertex:
			if ed.Vertex < 0 || ed.Vertex >= simN {
				return nil, fmt.Errorf("distflow: topology edit %d: vertex %d out of range (n=%d)", i, ed.Vertex, simN)
			}
			if removed[ed.Vertex] {
				continue // elide: already removed
			}
			// The vertex's incident edges die implicitly: simDead below
			// treats a removed endpoint as a tombstone, so later delete
			// edits elide and the DSU sweep skips them — no O(M) scan
			// per removal.
			removed[ed.Vertex] = true
			eff = append(eff, ed)
		default:
			return nil, fmt.Errorf("distflow: topology edit %d: unknown op %d", i, ed.Op)
		}
	}
	if len(eff) == 0 {
		return nil, nil
	}
	// Connectivity pre-flight on the simulated active graph: the solver's
	// standing requirement must survive the batch.
	active := 0
	root := -1
	for v := 0; v < simN; v++ {
		if !removed[v] {
			active++
			if root < 0 {
				root = v
			}
		}
	}
	if active < 2 {
		return nil, fmt.Errorf("distflow: topology batch leaves %d active vertices (need ≥ 2)", active)
	}
	parent := make([]int, simN)
	for v := range parent {
		parent[v] = v
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	comps := active
	for _, e := range sim {
		if simDead(e) {
			continue
		}
		ru, rv := find(e.u), find(e.v)
		if ru != rv {
			parent[ru] = rv
			comps--
		}
	}
	if comps != 1 {
		return nil, fmt.Errorf("distflow: topology batch would disconnect the active graph (%d components)", comps)
	}
	return eff, nil
}

// mergeSorted unions two ascending int slices, ascending and deduped.
func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j == len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i == len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// normalizeSeed maps the zero value to the documented default seed.
// Every seed consumer — NewRouter, the rebuild fallbacks, the resample
// stream — must go through this one definition so the determinism
// contract (same Options.Seed ⇒ same trees) has a single source of
// truth.
func normalizeSeed(s int64) int64 {
	if s == 0 {
		return 1
	}
	return s
}

// seed returns the router's normalized option seed.
func (r *Router) seed() int64 { return normalizeSeed(r.opts.Seed) }
