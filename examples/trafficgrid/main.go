// Trafficgrid: a road-network scenario. An 8×8 street grid with
// heterogeneous road capacities; we ask how much traffic can move
// between opposite corners, and how the answer degrades as rush-hour
// closures remove streets. One Router (the expensive congestion
// approximator) is built per road map; flow queries against it are
// cheap, which is exactly how the paper's algorithm splits its work.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"distflow"
)

const side = 8

func buildGrid(rng *rand.Rand, closed map[[2]int]bool) *distflow.Graph {
	g := distflow.NewGraph(side * side)
	add := func(u, v int) {
		if closed[[2]int{u, v}] {
			return
		}
		// Avenues (multiples of 3) are wider than side streets.
		capacity := int64(2 + rng.Intn(4))
		if u%3 == 0 || v%3 == 0 {
			capacity += 4
		}
		g.AddEdge(u, v, capacity)
	}
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			v := y*side + x
			if x+1 < side {
				add(v, v+1)
			}
			if y+1 < side {
				add(v, v+side)
			}
		}
	}
	return g
}

func main() {
	const seed = 42
	src, dst := 0, side*side-1

	fmt.Println("== morning: full road network")
	g := buildGrid(rand.New(rand.NewSource(seed)), nil)
	r, err := distflow.NewRouter(g, distflow.Options{Epsilon: 0.2, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	res, err := r.MaxFlow(src, dst)
	if err != nil {
		log.Fatal(err)
	}
	exact, _ := distflow.ExactMaxFlow(g, src, dst)
	fmt.Printf("corner-to-corner throughput: %.2f (exact %d, ratio %.3f)\n",
		res.Value, exact, float64(exact)/res.Value)
	fmt.Printf("router construction rounds: %d, query rounds: %d\n",
		r.ConstructionRounds(), res.Rounds-r.ConstructionRounds())

	// Several origin-destination queries against the same router.
	fmt.Println("\n== OD matrix against the same router")
	for _, od := range [][2]int{{0, 63}, {7, 56}, {0, 7}, {28, 35}} {
		q, err := r.MaxFlow(od[0], od[1])
		if err != nil {
			log.Fatal(err)
		}
		ex, _ := distflow.ExactMaxFlow(g, od[0], od[1])
		fmt.Printf("  %2d -> %2d: throughput %6.2f (exact %3d)\n", od[0], od[1], q.Value, ex)
	}

	fmt.Println("\n== evening: a six-block stretch of row 3-4 crossings closed")
	closed := map[[2]int]bool{
		{24, 32}: true, {25, 33}: true, {26, 34}: true,
		{27, 35}: true, {28, 36}: true, {29, 37}: true,
	}
	g2 := buildGrid(rand.New(rand.NewSource(seed)), closed)
	res2, err := distflow.MaxFlow(g2, src, dst, distflow.Options{Epsilon: 0.2, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	exact2, _ := distflow.ExactMaxFlow(g2, src, dst)
	fmt.Printf("throughput after closures: %.2f (exact %d)\n", res2.Value, exact2)
	fmt.Printf("capacity lost to closures: %.1f%%\n", 100*(1-res2.Value/res.Value))
}
