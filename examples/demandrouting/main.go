// Demandrouting: the congestion-minimization primitive underneath the
// max-flow algorithm, used directly (§2's problem (1)). A content
// network must ship data from two origin servers to three edge caches
// simultaneously; we route the multi-source demand vector with
// near-minimal maximum link congestion and compare against the
// certified lower bound from the congestion approximator.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"distflow"
)

func main() {
	// A 6×6 mesh with heterogeneous link capacities.
	const side = 6
	rng := rand.New(rand.NewSource(9))
	g := distflow.NewGraph(side * side)
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			v := y*side + x
			if x+1 < side {
				g.AddEdge(v, v+1, 2+rng.Int63n(8))
			}
			if y+1 < side {
				g.AddEdge(v, v+side, 2+rng.Int63n(8))
			}
		}
	}

	r, err := distflow.NewRouter(g, distflow.Options{Seed: 4})
	if err != nil {
		log.Fatal(err)
	}

	// Origins at the top corners push 6 units each; caches at the bottom
	// pull 4 apiece.
	b := make([]float64, g.N())
	b[0], b[side-1] = 6, 6
	b[30], b[32], b[35] = -4, -4, -4

	flow, congestion, err := r.RouteDemand(b, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	lb := r.CongestionLowerBound(b)
	fmt.Printf("multi-source demand routed.\n")
	fmt.Printf("achieved max link congestion: %.3f\n", congestion)
	fmt.Printf("certified lower bound (any routing): %.3f\n", lb)
	fmt.Printf("optimality gap factor: %.2f\n", congestion/lb)

	// The five hottest links.
	type hot struct {
		e    int
		util float64
	}
	var hots []hot
	for e := 0; e < g.M(); e++ {
		_, _, c := g.EdgeEndpoints(e)
		u := flow[e]
		if u < 0 {
			u = -u
		}
		hots = append(hots, hot{e: e, util: u / float64(c)})
	}
	for i := 0; i < len(hots); i++ {
		for j := i + 1; j < len(hots); j++ {
			if hots[j].util > hots[i].util {
				hots[i], hots[j] = hots[j], hots[i]
			}
		}
	}
	fmt.Println("\nhottest links:")
	for _, h := range hots[:5] {
		u, v, c := g.EdgeEndpoints(h.e)
		fmt.Printf("  %2d-%2d (cap %2d): %.0f%% utilized\n", u, v, c, 100*h.util)
	}

	// Doubling demand doubles congestion (linearity sanity check users
	// rely on for capacity planning).
	for v := range b {
		b[v] *= 2
	}
	_, cong2, err := r.RouteDemand(b, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncongestion at 2x demand: %.3f (%.2fx)\n", cong2, cong2/congestion)
}
