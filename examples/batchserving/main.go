// Command batchserving demonstrates the concurrent serving path: build
// one Router (the expensive, query-independent congestion
// approximator), then serve many max-flow queries at once through the
// batch API. With the warm cache disabled, batch results are
// bit-identical to one-at-a-time sequential calls — the parallel core
// only changes latency, never answers (DESIGN.md §4). With the cache on
// (the default), repeated queries are served from their own converged
// flows in zero gradient iterations (DESIGN.md §5).
package main

import (
	"fmt"
	"math/rand"
	"time"

	"distflow"
)

func main() {
	// A random sparse network.
	const n = 400
	rng := rand.New(rand.NewSource(7))
	g := distflow.NewGraph(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, rng.Intn(v), 1+rng.Int63n(31))
	}
	for k := 0; k < 2*n; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, 1+rng.Int63n(31))
		}
	}

	// DisableWarmStart pins the strict mode: every query is a pure
	// function of (graph, seed, s, t), so the sequential replay below
	// matches the batch bit for bit.
	start := time.Now()
	r, err := distflow.NewRouter(g, distflow.Options{Epsilon: 0.5, Seed: 1, DisableWarmStart: true})
	if err != nil {
		panic(err)
	}
	fmt.Printf("router built once in %v (n=%d m=%d, %d CONGEST rounds)\n",
		time.Since(start).Round(time.Millisecond), g.N(), g.M(), r.ConstructionRounds())

	// A batch of simultaneous queries, served concurrently on the
	// worker pool while sharing the approximator.
	pairs := []distflow.STPair{
		{S: 0, T: n - 1},
		{S: 17, T: 230},
		{S: 42, T: 399},
		{S: 5, T: 250},
	}
	start = time.Now()
	batch, err := r.MaxFlowBatch(pairs)
	if err != nil {
		panic(err)
	}
	fmt.Printf("batch of %d queries served in %v\n", len(pairs), time.Since(start).Round(time.Millisecond))
	for i, res := range batch {
		fmt.Printf("  %3d→%-3d  value %8.3f  (%d gradient iterations, %d rounds)\n",
			pairs[i].S, pairs[i].T, res.Value, res.Iterations, res.Rounds)
	}

	// The same queries one at a time give the same answers, bit for bit.
	for i, p := range pairs {
		res, err := r.MaxFlow(p.S, p.T)
		if err != nil {
			panic(err)
		}
		if res.Value != batch[i].Value {
			panic("batch result differs from sequential")
		}
	}
	fmt.Println("sequential replay matches batch bit-for-bit")

	// Default mode: the warm cache serves repeated queries from their
	// converged flows — the second round costs zero gradient iterations.
	warm, err := distflow.NewRouter(g, distflow.Options{Epsilon: 0.5, Seed: 1})
	if err != nil {
		panic(err)
	}
	if _, err := warm.MaxFlowBatch(pairs); err != nil {
		panic(err)
	}
	start = time.Now()
	repeat, err := warm.MaxFlowBatch(pairs)
	if err != nil {
		panic(err)
	}
	iters := 0
	for _, res := range repeat {
		iters += res.Iterations
	}
	fmt.Printf("warm-cache repeat of the batch: %d gradient iterations in %v\n",
		iters, time.Since(start).Round(time.Microsecond))
}
