// Linkfailure: capacity planning for a datacenter-style topology. Two
// dense pods joined by a thin spine (a barbell graph — the worst case
// for cut-based routing). We estimate the pod-to-pod throughput, then
// sweep single-link failures on the spine and rank them by impact,
// using the congestion lower bound as a cheap certificate before
// running full flow computations on the worst offenders.
package main

import (
	"fmt"
	"log"
	"sort"

	"distflow"
)

// buildBarbell returns two k-cliques joined by `spine` parallel paths of
// the given capacities, plus the list of spine edge indices.
func buildBarbell(k int, spineCaps []int64) (*distflow.Graph, []int) {
	n := 2*k + len(spineCaps)*1
	_ = n
	g := distflow.NewGraph(2*k + len(spineCaps))
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			g.AddEdge(u, v, 8)
		}
	}
	off := k + len(spineCaps)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			g.AddEdge(off+u, off+v, 8)
		}
	}
	var spine []int
	for i, c := range spineCaps {
		mid := k + i
		spine = append(spine, g.AddEdge(i%k, mid, c))
		g.AddEdge(mid, off+(i%k), c)
	}
	return g, spine
}

func main() {
	spineCaps := []int64{6, 4, 3, 2}
	g, spine := buildBarbell(6, spineCaps)
	s, t := 0, g.N()-1

	res, err := distflow.MaxFlow(g, s, t, distflow.Options{Epsilon: 0.2, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	exact, _ := distflow.ExactMaxFlow(g, s, t)
	fmt.Printf("pod-to-pod throughput: %.2f (exact %d)\n", res.Value, exact)

	// Rank spine links by how much demand crosses them in the solution.
	type link struct {
		e    int
		load float64
	}
	var links []link
	for _, e := range spine {
		load := res.Flow[e]
		if load < 0 {
			load = -load
		}
		links = append(links, link{e: e, load: load})
	}
	sort.Slice(links, func(i, j int) bool { return links[i].load > links[j].load })
	fmt.Println("\nspine links by carried flow:")
	for _, l := range links {
		u, v, c := g.EdgeEndpoints(l.e)
		fmt.Printf("  link %d-%d (cap %d): %.2f\n", u, v, c, l.load)
	}

	// What-if: fail each spine link and recompute.
	fmt.Println("\nsingle-link failure sweep:")
	for i := range spineCaps {
		gg, failedSpine := buildBarbellWithout(6, spineCaps, i)
		_ = failedSpine
		rr, err := distflow.MaxFlow(gg, s, gg.N()-1, distflow.Options{Epsilon: 0.2, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  fail spine path %d (cap %d): throughput %.2f (Δ %.2f)\n",
			i, spineCaps[i], rr.Value, res.Value-rr.Value)
	}
}

// buildBarbellWithout rebuilds the topology with spine path `skip`
// removed (vertex count kept stable by leaving its midpoint attached
// with a capacity-1 stub so the graph stays connected).
func buildBarbellWithout(k int, spineCaps []int64, skip int) (*distflow.Graph, []int) {
	g := distflow.NewGraph(2*k + len(spineCaps))
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			g.AddEdge(u, v, 8)
		}
	}
	off := k + len(spineCaps)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			g.AddEdge(off+u, off+v, 8)
		}
	}
	var spine []int
	for i, c := range spineCaps {
		mid := k + i
		if i == skip {
			// Midpoint stays connected but carries no real capacity.
			g.AddEdge(i%k, mid, 1)
			continue
		}
		spine = append(spine, g.AddEdge(i%k, mid, c))
		g.AddEdge(mid, off+(i%k), c)
	}
	return g, spine
}
