// Linkfailure: capacity planning for a datacenter-style topology. Two
// dense pods joined by a thin spine (a barbell graph — the worst case
// for cut-based routing). We estimate the pod-to-pod throughput, sweep
// single-link failures on the spine and rank them by impact, then
// sweep whole-node failures — a spine router vanishing with all its
// links, and coming back as new hardware — via Router.UpdateTopology.
//
// The failure sweep uses Router.UpdateCapacities: instead of rebuilding
// the congestion approximator for every what-if (the old approach),
// each scenario demotes one spine link to capacity 1, re-queries the
// same router, and restores the link — the sampled tree topologies
// survive, and a single-edge edit touches only the tree paths between
// its endpoints (the dirty-path refresh, O(depth) per tree, falling
// back to a full re-sweep only for huge batches). The example prints
// the measured rebuild-vs-update timings side by side, and finishes
// with a batch that coalesces to nothing — duplicate edits are merged
// last-wins and no-ops dropped, so the router (warm cache included) is
// left completely untouched, for free.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"distflow"
)

// buildBarbell returns two k-cliques joined by `spine` parallel paths of
// the given capacities, plus the list of spine edge indices.
func buildBarbell(k int, spineCaps []int64) (*distflow.Graph, []int) {
	g := distflow.NewGraph(2*k + len(spineCaps))
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			g.AddEdge(u, v, 8)
		}
	}
	off := k + len(spineCaps)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			g.AddEdge(off+u, off+v, 8)
		}
	}
	var spine []int
	for i, c := range spineCaps {
		mid := k + i
		spine = append(spine, g.AddEdge(i%k, mid, c))
		g.AddEdge(mid, off+(i%k), c)
	}
	return g, spine
}

func main() {
	spineCaps := []int64{6, 4, 3, 2}
	g, spine := buildBarbell(6, spineCaps)
	s, t := 0, g.N()-1
	opts := distflow.Options{Epsilon: 0.2, Seed: 3}

	buildStart := time.Now()
	router, err := distflow.NewRouter(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	buildSeconds := time.Since(buildStart).Seconds()

	res, err := router.MaxFlow(s, t)
	if err != nil {
		log.Fatal(err)
	}
	exact, _ := distflow.ExactMaxFlow(g, s, t)
	fmt.Printf("pod-to-pod throughput: %.2f (exact %d; router built in %.0fms)\n",
		res.Value, exact, 1000*buildSeconds)

	// Rank spine links by how much demand crosses them in the solution.
	type link struct {
		e    int
		load float64
	}
	var links []link
	for _, e := range spine {
		load := res.Flow[e]
		if load < 0 {
			load = -load
		}
		links = append(links, link{e: e, load: load})
	}
	sort.Slice(links, func(i, j int) bool { return links[i].load > links[j].load })
	fmt.Println("\nspine links by carried flow:")
	for _, l := range links {
		u, v, c := g.EdgeEndpoints(l.e)
		fmt.Printf("  link %d-%d (cap %d): %.2f\n", u, v, c, l.load)
	}

	// What-if: fail each spine link in turn via an incremental capacity
	// update on the SAME router (demote to capacity 1 so the graph stays
	// connected), then restore it before the next scenario.
	fmt.Println("\nsingle-link failure sweep (incremental updates):")
	var updateSeconds float64
	for i, e := range spine {
		start := time.Now()
		if _, err := router.UpdateCapacities([]distflow.CapEdit{{Edge: e, Cap: 1}}); err != nil {
			log.Fatal(err)
		}
		updateSeconds += time.Since(start).Seconds()
		rr, err := router.MaxFlow(s, t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  fail spine path %d (cap %d): throughput %.2f (Δ %.2f)\n",
			i, spineCaps[i], rr.Value, res.Value-rr.Value)
		start = time.Now()
		if _, err := router.UpdateCapacities([]distflow.CapEdit{{Edge: e, Cap: spineCaps[i]}}); err != nil {
			log.Fatal(err)
		}
		updateSeconds += time.Since(start).Seconds()
	}
	perUpdate := updateSeconds / float64(2*len(spine))
	fmt.Printf("\nrebuild vs update: full router build %.1fms; capacity update %.2fms/edit (%.0fx faster)\n",
		1000*buildSeconds, 1000*perUpdate, buildSeconds/perUpdate)

	// No-op churn is free: a batch that fails and restores the same link
	// coalesces (last write per edge wins, writes equal to the current
	// capacity drop out) to an empty batch, which returns without
	// re-sweeping a single tree — the warm cache survives, so the repeat
	// query below starts from the converged flow this one caches.
	if _, err := router.MaxFlow(s, t); err != nil {
		log.Fatal(err)
	}
	e := spine[0]
	start := time.Now()
	ur, err := router.UpdateCapacities([]distflow.CapEdit{
		{Edge: e, Cap: 1}, {Edge: e, Cap: spineCaps[0]},
	})
	if err != nil {
		log.Fatal(err)
	}
	noopSeconds := time.Since(start).Seconds()
	rr, err := router.MaxFlow(s, t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fail+restore batch coalesced to %d edits in %.4fms; repeat query warm-started: %v\n",
		ur.Edits, 1000*noopSeconds, rr.WarmStarted)

	// Node failure/recovery sweep: each spine *router* (the midpoint
	// vertex of one spine path) fails outright — it disappears with
	// both its links — and is then replaced by new hardware: a fresh
	// vertex id wired to the same pod endpoints. Both directions are
	// single UpdateTopology batches on the SAME router; the sampled
	// trees are patched (the failed node stays behind as an inert
	// Steiner point, the replacement enters as a leaf under its
	// heaviest link), and only trees the churn measurably degrades are
	// individually resampled.
	fmt.Println("\nspine-node failure/recovery sweep (topology updates):")
	k := 6
	off := k + len(spineCaps) // first pod-B vertex
	var topoSeconds float64
	for i := range spineCaps {
		mid := k + i // original midpoint of spine path i; replaced ids follow
		podA, podB := i%k, off+(i%k)
		start := time.Now()
		ur, err := router.UpdateTopology([]distflow.TopoEdit{
			distflow.RemoveVertexEdit(mid),
		})
		if err != nil {
			log.Fatal(err)
		}
		topoSeconds += time.Since(start).Seconds()
		down, err := router.MaxFlow(s, t)
		if err != nil {
			log.Fatal(err)
		}
		start = time.Now()
		rec, err := router.UpdateTopology([]distflow.TopoEdit{
			distflow.AddVertexEdit(
				distflow.Link{To: podA, Cap: spineCaps[i]},
				distflow.Link{To: podB, Cap: spineCaps[i]},
			),
		})
		if err != nil {
			log.Fatal(err)
		}
		topoSeconds += time.Since(start).Seconds()
		up, err := router.MaxFlow(s, t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  node %d down: %.2f (Δ %.2f, resampled %d trees) | replaced by id %d: %.2f\n",
			mid, down.Value, res.Value-down.Value, ur.ResampledTrees+rec.ResampledTrees,
			rec.AddedVertices[0], up.Value)
	}
	fmt.Printf("\nnode churn: %.2fms/topology batch vs %.1fms full rebuild (%.0fx faster)\n",
		1000*topoSeconds/float64(2*len(spineCaps)), 1000*buildSeconds,
		buildSeconds/(topoSeconds/float64(2*len(spineCaps))))
}
