// Quickstart: build a small capacitated network, compute an approximate
// maximum flow, and inspect the result — the minimal tour of the
// distflow public API.
package main

import (
	"fmt"
	"log"

	"distflow"
)

func main() {
	// A diamond network with a bottleneck:
	//
	//        1
	//      /   \        capacities: 0-1:4, 1-3:2,
	//     0     3                    0-2:3, 2-3:3,
	//      \   /                     1-2:1
	//        2
	g := distflow.NewGraph(4)
	g.AddEdge(0, 1, 4)
	g.AddEdge(1, 3, 2)
	g.AddEdge(0, 2, 3)
	g.AddEdge(2, 3, 3)
	g.AddEdge(1, 2, 1)

	res, err := distflow.MaxFlow(g, 0, 3, distflow.Options{Epsilon: 0.1, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("approximate max flow 0 -> 3: %.3f\n", res.Value)
	fmt.Printf("congestion-approximator distortion alpha: %.2f\n", res.Alpha)
	fmt.Printf("gradient iterations: %d, charged CONGEST rounds: %d\n", res.Iterations, res.Rounds)
	fmt.Println("per-edge flow (signed in the u->v direction):")
	for e := 0; e < g.M(); e++ {
		u, v, c := g.EdgeEndpoints(e)
		fmt.Printf("  edge %d-%d (cap %d): %+.3f\n", u, v, c, res.Flow[e])
	}

	exact, _ := distflow.ExactMaxFlow(g, 0, 3)
	fmt.Printf("exact max flow (sequential reference): %d\n", exact)
	fmt.Printf("approximation ratio: %.4f\n", float64(exact)/res.Value)
}
