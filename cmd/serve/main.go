// Command serve runs a long-lived max-flow serving daemon on top of
// the epoch-snapshot Router (DESIGN.md §9): an HTTP JSON front-end
// with admission control and a scheduler that coalesces concurrent
// repeat (s,t) queries into warm-cache-aware batch solves. Topology
// and capacity updates apply while queries keep being served — each
// update publishes a new epoch; in-flight queries finish against the
// epoch they started on.
//
// The daemon serves a synthetic benchmark graph described by the same
// flags cmd/bench uses (swap in a real topology by constructing the
// graph where the generator is called):
//
//	serve -addr :8080 -n 2500 -deg 8 -cap 64 -seed 3 -eps 0.5
//
// Endpoints:
//
//	POST /maxflow   {"s": 0, "t": 17}
//	  → {"value":..., "iterations":..., "warm_started":..., "epoch":...}
//	    503 + {"error":...} when admission control sheds the query.
//	POST /update/capacities  {"edits": [{"edge": 3, "cap": 9}, ...]}
//	POST /update/topology    {"edits": [
//	      {"op": "add_edge", "u": 1, "v": 2, "cap": 5},
//	      {"op": "delete_edge", "edge": 7},
//	      {"op": "add_vertex", "links": [{"to": 4, "cap": 2}]},
//	      {"op": "remove_vertex", "vertex": 9}]}
//	  → the UpdateResult (α, edit counts, resample/rebuild flags,
//	    assigned vertex/edge ids).
//	GET  /stats
//	  → server counters (queries, coalesced, batches, rejected),
//	    the published epoch sequence number, and the router's α.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"time"

	"distflow"
	"distflow/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		n           = flag.Int("n", 2500, "vertex count of the served graph")
		deg         = flag.Float64("deg", 8, "expected average degree")
		maxCap      = flag.Int64("cap", 64, "maximum edge capacity")
		seed        = flag.Int64("seed", 3, "graph/router PRNG seed")
		epsilon     = flag.Float64("eps", 0.5, "approximation target")
		maxInFlight = flag.Int("max-inflight", 0, "admission control: concurrent admitted queries (0 = default)")
		maxBatch    = flag.Int("max-batch", 0, "scheduler: distinct pairs per batch solve (0 = default)")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	gg := graph.CapUniform(graph.GNP(*n, *deg/float64(*n), rng), *maxCap, rng)
	G := distflow.NewGraph(gg.N())
	for _, e := range gg.Edges() {
		G.AddEdge(e.U, e.V, e.Cap)
	}
	fmt.Printf("serve: building router (n=%d m=%d)...\n", G.N(), G.M())
	start := time.Now()
	r, err := distflow.NewRouter(G, distflow.Options{Epsilon: *epsilon, Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Printf("serve: router ready in %v (alpha=%.3f, %d trees)\n", time.Since(start).Round(time.Millisecond), r.Alpha(), r.Trees())
	srv := distflow.NewServer(r, distflow.ServeOptions{MaxInFlight: *maxInFlight, MaxBatch: *maxBatch})

	mux := http.NewServeMux()
	mux.HandleFunc("POST /maxflow", func(w http.ResponseWriter, req *http.Request) {
		var q struct{ S, T int }
		if err := json.NewDecoder(req.Body).Decode(&q); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		res, err := srv.MaxFlow(q.S, q.T)
		if err != nil {
			code := http.StatusUnprocessableEntity
			if errors.Is(err, distflow.ErrOverloaded) {
				code = http.StatusServiceUnavailable
			}
			writeErr(w, code, err)
			return
		}
		writeJSON(w, map[string]any{
			"value":        res.Value,
			"iterations":   res.Iterations,
			"warm_started": res.WarmStarted,
			"alpha":        res.Alpha,
			"rounds":       res.Rounds,
			"epoch":        r.EpochSeq(),
		})
	})
	mux.HandleFunc("POST /update/capacities", func(w http.ResponseWriter, req *http.Request) {
		var body struct {
			Edits []struct {
				Edge int   `json:"edge"`
				Cap  int64 `json:"cap"`
			} `json:"edits"`
		}
		if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		edits := make([]distflow.CapEdit, len(body.Edits))
		for i, e := range body.Edits {
			edits[i] = distflow.CapEdit{Edge: e.Edge, Cap: e.Cap}
		}
		ur, err := srv.UpdateCapacities(edits)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeUpdate(w, ur, r.EpochSeq())
	})
	mux.HandleFunc("POST /update/topology", func(w http.ResponseWriter, req *http.Request) {
		var body struct {
			Edits []topoEditJSON `json:"edits"`
		}
		if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		edits := make([]distflow.TopoEdit, len(body.Edits))
		for i, e := range body.Edits {
			ed, err := e.toEdit()
			if err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("edit %d: %w", i, err))
				return
			}
			edits[i] = ed
		}
		ur, err := srv.UpdateTopology(edits)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeUpdate(w, ur, r.EpochSeq())
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, req *http.Request) {
		st := srv.Stats()
		writeJSON(w, map[string]any{
			"queries":   st.Queries,
			"coalesced": st.Coalesced,
			"batches":   st.Batches,
			"rejected":  st.Rejected,
			"epoch":     st.EpochSeq,
			"alpha":     r.Alpha(),
			"n":         G.ActiveN(),
			"live_m":    G.LiveM(),
		})
	})

	fmt.Printf("serve: listening on %s\n", *addr)
	return http.ListenAndServe(*addr, mux)
}

// topoEditJSON is the wire form of one TopoEdit.
type topoEditJSON struct {
	Op     string `json:"op"`
	U      int    `json:"u"`
	V      int    `json:"v"`
	Cap    int64  `json:"cap"`
	Edge   int    `json:"edge"`
	Vertex int    `json:"vertex"`
	Links  []struct {
		To  int   `json:"to"`
		Cap int64 `json:"cap"`
	} `json:"links"`
}

func (e topoEditJSON) toEdit() (distflow.TopoEdit, error) {
	switch e.Op {
	case "add_edge":
		return distflow.AddEdgeEdit(e.U, e.V, e.Cap), nil
	case "delete_edge":
		return distflow.DeleteEdgeEdit(e.Edge), nil
	case "add_vertex":
		links := make([]distflow.Link, len(e.Links))
		for i, l := range e.Links {
			links[i] = distflow.Link{To: l.To, Cap: l.Cap}
		}
		return distflow.AddVertexEdit(links...), nil
	case "remove_vertex":
		return distflow.RemoveVertexEdit(e.Vertex), nil
	default:
		return distflow.TopoEdit{}, fmt.Errorf("unknown op %q", e.Op)
	}
}

func writeUpdate(w http.ResponseWriter, ur *distflow.UpdateResult, epoch uint64) {
	writeJSON(w, map[string]any{
		"alpha":           ur.Alpha,
		"edits":           ur.Edits,
		"rebuilt":         ur.Rebuilt,
		"dirty_trees":     ur.DirtyTrees,
		"swept_trees":     ur.SweptTrees,
		"resampled_trees": ur.ResampledTrees,
		"added_vertices":  ur.AddedVertices,
		"added_edges":     ur.AddedEdges,
		"epoch":           epoch,
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
