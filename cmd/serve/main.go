// Command serve runs a long-lived max-flow serving daemon on top of
// the epoch-snapshot Router (DESIGN.md §9, failure contract §11): an
// HTTP JSON front-end with admission control, per-query deadlines with
// graceful degradation, and a scheduler that coalesces concurrent
// repeat (s,t) queries into warm-cache-aware batch solves. Topology
// and capacity updates apply while queries keep being served — each
// update publishes a new epoch; in-flight queries finish against the
// epoch they started on.
//
// The daemon serves a synthetic benchmark graph described by the same
// flags cmd/bench uses (swap in a real topology by constructing the
// graph where the generator is called):
//
//	serve -addr :8080 -n 2500 -deg 8 -cap 64 -seed 3 -eps 0.5 -deadline 750ms
//
// Endpoints:
//
//	POST /maxflow   {"s": 0, "t": 17}
//	  → {"value":..., "iterations":..., "warm_started":...,
//	     "degraded":..., "cert_bound":..., "epoch":...}
//	    A query whose deadline (the X-Deadline-Ms request header, else
//	    -deadline) expires mid-solve returns its best-effort iterate
//	    with "degraded": true and the measured "cert_bound" (value ≥
//	    opt/cert_bound). 503 + Retry-After when admission control or
//	    shutdown draining sheds the query; 504 when the deadline was
//	    too tight to return even a degraded iterate.
//	POST /update/capacities  {"edits": [{"edge": 3, "cap": 9}, ...]}
//	POST /update/topology    {"edits": [
//	      {"op": "add_edge", "u": 1, "v": 2, "cap": 5},
//	      {"op": "delete_edge", "edge": 7},
//	      {"op": "add_vertex", "links": [{"to": 4, "cap": 2}]},
//	      {"op": "remove_vertex", "vertex": 9}]}
//	  → the UpdateResult (α, edit counts, resample/rebuild flags,
//	    assigned vertex/edge ids). An update aborted by client
//	    disconnect publishes nothing (the router discards the fork).
//	GET  /stats
//	  → server counters (queries, coalesced, batches, per-cause
//	    rejections, degraded answers, recovered panics, epoch
//	    retirement), the published epoch sequence number, and α.
//	GET  /healthz
//	  → 200 "ok" while serving, 503 "draining" once shutdown began —
//	    load balancers stop routing here while in-flight queries drain.
//
// Shutdown: SIGINT/SIGTERM flips the server to draining (new queries
// get 503 + Retry-After, /healthz fails), then http.Server.Shutdown
// waits up to -drain-timeout for in-flight queries to finish before
// the process exits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"distflow"
	"distflow/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		n            = flag.Int("n", 2500, "vertex count of the served graph")
		deg          = flag.Float64("deg", 8, "expected average degree")
		maxCap       = flag.Int64("cap", 64, "maximum edge capacity")
		seed         = flag.Int64("seed", 3, "graph/router PRNG seed")
		epsilon      = flag.Float64("eps", 0.5, "approximation target")
		maxInFlight  = flag.Int("max-inflight", 0, "admission control: concurrent admitted queries (0 = default)")
		maxBatch     = flag.Int("max-batch", 0, "scheduler: distinct pairs per batch solve (0 = default)")
		deadline     = flag.Duration("deadline", 0, "default per-query deadline; expired solves return degraded best-effort answers (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "shutdown: how long to wait for in-flight queries")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	gg := graph.CapUniform(graph.GNP(*n, *deg/float64(*n), rng), *maxCap, rng)
	G := distflow.NewGraph(gg.N())
	for _, e := range gg.Edges() {
		G.AddEdge(e.U, e.V, e.Cap)
	}
	fmt.Printf("serve: building router (n=%d m=%d)...\n", G.N(), G.M())
	start := time.Now()
	r, err := distflow.NewRouter(G, distflow.Options{Epsilon: *epsilon, Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Printf("serve: router ready in %v (alpha=%.3f, %d trees)\n", time.Since(start).Round(time.Millisecond), r.Alpha(), r.Trees())
	srv := distflow.NewServer(r, distflow.ServeOptions{
		MaxInFlight:     *maxInFlight,
		MaxBatch:        *maxBatch,
		DefaultDeadline: *deadline,
	})

	mux := http.NewServeMux()
	mux.HandleFunc("POST /maxflow", func(w http.ResponseWriter, req *http.Request) {
		var q struct{ S, T int }
		if err := json.NewDecoder(req.Body).Decode(&q); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		// Per-query deadline: the X-Deadline-Ms header overrides the
		// -deadline default; the request context also carries client
		// disconnects, so an abandoned request cancels its submission.
		ctx := req.Context()
		if ms := req.Header.Get("X-Deadline-Ms"); ms != "" {
			v, err := strconv.ParseInt(ms, 10, 64)
			if err != nil || v <= 0 {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("bad X-Deadline-Ms %q", ms))
				return
			}
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(v)*time.Millisecond)
			defer cancel()
		}
		res, err := srv.MaxFlowCtx(ctx, q.S, q.T)
		if err != nil {
			switch {
			case errors.Is(err, distflow.ErrOverloaded), errors.Is(err, distflow.ErrDraining):
				w.Header().Set("Retry-After", "1")
				writeErr(w, http.StatusServiceUnavailable, err)
			case errors.Is(err, context.DeadlineExceeded):
				writeErr(w, http.StatusGatewayTimeout, err)
			case errors.Is(err, context.Canceled):
				// Client went away; the status is for logs only.
				writeErr(w, 499, err)
			default:
				writeErr(w, http.StatusUnprocessableEntity, err)
			}
			return
		}
		writeJSON(w, map[string]any{
			"value":        res.Value,
			"iterations":   res.Iterations,
			"warm_started": res.WarmStarted,
			"degraded":     res.Degraded,
			"cert_bound":   res.CertBound,
			"alpha":        res.Alpha,
			"rounds":       res.Rounds,
			"epoch":        r.EpochSeq(),
		})
	})
	mux.HandleFunc("POST /update/capacities", func(w http.ResponseWriter, req *http.Request) {
		var body struct {
			Edits []struct {
				Edge int   `json:"edge"`
				Cap  int64 `json:"cap"`
			} `json:"edits"`
		}
		if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		edits := make([]distflow.CapEdit, len(body.Edits))
		for i, e := range body.Edits {
			edits[i] = distflow.CapEdit{Edge: e.Edge, Cap: e.Cap}
		}
		ur, err := srv.UpdateCapacitiesCtx(req.Context(), edits)
		if err != nil {
			writeUpdateErr(w, err)
			return
		}
		writeUpdate(w, ur, r.EpochSeq())
	})
	mux.HandleFunc("POST /update/topology", func(w http.ResponseWriter, req *http.Request) {
		var body struct {
			Edits []topoEditJSON `json:"edits"`
		}
		if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		edits := make([]distflow.TopoEdit, len(body.Edits))
		for i, e := range body.Edits {
			ed, err := e.toEdit()
			if err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("edit %d: %w", i, err))
				return
			}
			edits[i] = ed
		}
		ur, err := srv.UpdateTopologyCtx(req.Context(), edits)
		if err != nil {
			writeUpdateErr(w, err)
			return
		}
		writeUpdate(w, ur, r.EpochSeq())
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, req *http.Request) {
		st := srv.Stats()
		writeJSON(w, map[string]any{
			"queries":             st.Queries,
			"coalesced":           st.Coalesced,
			"batches":             st.Batches,
			"rejected":            st.Rejected,
			"rejected_overload":   st.RejectedOverload,
			"rejected_draining":   st.RejectedDraining,
			"rejected_deadline":   st.RejectedDeadline,
			"rejected_validation": st.RejectedValidation,
			"rejected_panic":      st.RejectedPanic,
			"canceled":            st.Canceled,
			"degraded":            st.Degraded,
			"panics":              st.Panics,
			"draining":            st.Draining,
			"epoch":               st.EpochSeq,
			"epochs_retired":      st.EpochsRetired,
			"epochs_drained":      st.EpochsDrained,
			"alpha":               r.Alpha(),
			"n":                   G.ActiveN(),
			"live_m":              G.LiveM(),
		})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		if srv.Draining() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})

	hs := &http.Server{Addr: *addr, Handler: mux}
	// Graceful shutdown: on SIGINT/SIGTERM flip to draining (new
	// submissions shed with 503 + Retry-After, /healthz fails so load
	// balancers stop routing), then let Shutdown drain in-flight
	// requests up to -drain-timeout.
	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	serveErr := make(chan error, 1)
	go func() {
		fmt.Printf("serve: listening on %s\n", *addr)
		serveErr <- hs.ListenAndServe()
	}()
	select {
	case err := <-serveErr:
		return err
	case <-sigCtx.Done():
	}
	fmt.Println("serve: draining...")
	srv.SetDraining(true)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Println("serve: drained, bye")
	return nil
}

// topoEditJSON is the wire form of one TopoEdit.
type topoEditJSON struct {
	Op     string `json:"op"`
	U      int    `json:"u"`
	V      int    `json:"v"`
	Cap    int64  `json:"cap"`
	Edge   int    `json:"edge"`
	Vertex int    `json:"vertex"`
	Links  []struct {
		To  int   `json:"to"`
		Cap int64 `json:"cap"`
	} `json:"links"`
}

func (e topoEditJSON) toEdit() (distflow.TopoEdit, error) {
	switch e.Op {
	case "add_edge":
		return distflow.AddEdgeEdit(e.U, e.V, e.Cap), nil
	case "delete_edge":
		return distflow.DeleteEdgeEdit(e.Edge), nil
	case "add_vertex":
		links := make([]distflow.Link, len(e.Links))
		for i, l := range e.Links {
			links[i] = distflow.Link{To: l.To, Cap: l.Cap}
		}
		return distflow.AddVertexEdit(links...), nil
	case "remove_vertex":
		return distflow.RemoveVertexEdit(e.Vertex), nil
	default:
		return distflow.TopoEdit{}, fmt.Errorf("unknown op %q", e.Op)
	}
}

func writeUpdate(w http.ResponseWriter, ur *distflow.UpdateResult, epoch uint64) {
	writeJSON(w, map[string]any{
		"alpha":           ur.Alpha,
		"edits":           ur.Edits,
		"rebuilt":         ur.Rebuilt,
		"dirty_trees":     ur.DirtyTrees,
		"swept_trees":     ur.SweptTrees,
		"resampled_trees": ur.ResampledTrees,
		"refreshed_trees": ur.RefreshedTrees,
		"added_vertices":  ur.AddedVertices,
		"added_edges":     ur.AddedEdges,
		"epoch":           epoch,
	})
}

// writeUpdateErr maps an update failure to its HTTP shape: an aborted
// context (client disconnect mid-update) means the router discarded the
// fork — nothing published, safe to retry verbatim.
func writeUpdateErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.Canceled):
		writeErr(w, 499, err)
	case errors.Is(err, context.DeadlineExceeded):
		writeErr(w, http.StatusGatewayTimeout, err)
	default:
		writeErr(w, http.StatusUnprocessableEntity, err)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
