// Command benchdiff compares a freshly produced bench JSON document
// against a committed baseline and fails on regressions of the gated
// fields — the CI bench-regression gate.
//
// Usage:
//
//	benchdiff -baseline BENCH_accel.json -fresh fresh-flow.json \
//	          -out diff-flow.json [-tolerance 0.25]
//
// The comparison is schema-aware: the document's mode ("flow" when
// absent — the schema-2 -flow layout predates the mode field, "build",
// "churn") selects which keys are gated and in which direction. Only
// hardware-independent fields are gated — iteration counts, value
// sums, α, tree counts, drift ratios — because the committed baselines
// were recorded on different hardware than the CI runner; wall-clock
// fields are reported in the diff but never fail the gate. A gated
// field regresses when the fresh value is worse than the baseline by
// more than the tolerance (relative, default 25%; value sums use a
// tight 1% both-ways band since they fingerprint results rather than
// measure cost).
//
// The diff document written to -out lists every gated comparison with
// its verdict plus the ungated informational fields, so a failing run
// uploads exactly the numbers needed to judge it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
)

// direction says which way a gated field may move freely.
type direction int

const (
	up   direction = iota // larger fresh value = regression
	both                  // any relative movement beyond tolerance = regression
)

// gate is one checked field of a mode's document.
type gate struct {
	key string
	dir direction
	// rel overrides the global tolerance when > 0; abs adds slack for
	// near-zero baselines.
	rel float64
	abs float64
}

// gatesByMode maps document mode → gated fields. Wall-clock seconds
// are deliberately absent (hardware-dependent); speedup ratios of the
// churn mode are gated downward via churn_max_value_err only — the
// ratio itself moves with runner core counts.
var gatesByMode = map[string][]gate{
	"flow": {
		{key: "iterations", dir: up},
		{key: "value_sum", dir: both, rel: 0.01},
		{key: "repeat_iterations", dir: up, abs: 8},
	},
	"build": {
		{key: "iterations", dir: up},
		{key: "alpha", dir: up},
		{key: "trees", dir: both, rel: 1e-9},
		{key: "value_sum", dir: both, rel: 0.01},
		{key: "update_max_value_err", dir: up, abs: 0.002},
	},
	"churn": {
		{key: "alpha", dir: up},
		{key: "value_sum_updated", dir: both, rel: 0.01},
		{key: "churn_max_value_err", dir: up, abs: 0.002},
		{key: "escalations", dir: up, abs: 4},
		{key: "resampled_trees_total", dir: up, abs: 26},
	},
	// The scale document is a flat per-rung map (keys suffixed _n{n}).
	// Wall-clock and memory keys are hardware-dependent and ungated —
	// race_speedup included, it is a wall-clock ratio. The gates are the
	// hardware-independent per-rung fingerprints of the rungs the
	// committed baseline climbs (n ≤ 10⁵); keys of rungs beyond the
	// fresh run's -scale-max-n are absent and reported as skipped.
	"scale": {
		{key: "m_n10000", dir: both, rel: 1e-9},
		{key: "m_n100000", dir: both, rel: 1e-9},
		{key: "alpha_n10000", dir: up},
		{key: "alpha_n100000", dir: up},
		{key: "trees_n10000", dir: both, rel: 1e-9},
		{key: "trees_n100000", dir: both, rel: 1e-9},
		{key: "value_sum_n10000", dir: both, rel: 0.01},
		{key: "iterations_n10000", dir: up},
	},
	// The shard document is a flat map like scale (per-rung `_n{n}`
	// keys, per-shard-count `_p{p}_n{n}` keys). Everything gated is
	// exactly reproducible on any hardware: the superstep count is a
	// function of the operator sequence and tree heights, and the
	// message/byte totals of the P-sweep are functions of (graph, P)
	// alone — the engine counts nonempty cross-shard payloads, never
	// timing. Wall-clock `seconds_p*` keys stay info-only. The committed
	// BENCH_shard.json climbs the n=10⁴ rung only, so the gates name
	// n10000 keys; the n=10⁵ evidence rows live in DESIGN.md §13.
	"shard": {
		{key: "m_n10000", dir: both, rel: 1e-9},
		{key: "value_sum_n10000", dir: both, rel: 0.01},
		{key: "iterations_n10000", dir: up},
		{key: "measured_rounds_n10000", dir: up},
		{key: "messages_p2_n10000", dir: up},
		{key: "messages_p4_n10000", dir: up},
		{key: "messages_p8_n10000", dir: up},
		{key: "bytes_p4_n10000", dir: up},
		{key: "bytes_p8_n10000", dir: up},
	},
	// qps and the latency quantiles of the serve document are wall-clock
	// metrics and deliberately ungated; the drift fingerprint and value
	// sums are pure functions of (seed, churn schedule) — the serve bench
	// disables the warm cache precisely so these stay gateable.
	// Of the schema-8 chaos fields only the two deterministic fault
	// counts are gated: the panic probe fires exactly once and the
	// injected resample schedule (Every=3 over a fixed batch count) drops
	// a fixed number of churn batches regardless of hardware. Deadline
	// hit rate, degraded counts, and certificate bounds are
	// timing-dependent and stay info-only.
	"serve": {
		{key: "alpha", dir: up},
		{key: "value_sum_served", dir: both, rel: 0.01},
		{key: "value_sum_rebuilt", dir: both, rel: 0.01},
		{key: "serve_max_value_err", dir: up, abs: 0.002},
		{key: "escalations", dir: up, abs: 4},
		{key: "serve_panics", dir: both, rel: 1e-9},
		{key: "serve_injected_update_failures", dir: both, rel: 1e-9},
	},
}

// comparison is one row of the diff document.
type comparison struct {
	Key       string  `json:"key"`
	Baseline  float64 `json:"baseline"`
	Fresh     float64 `json:"fresh"`
	DeltaRel  float64 `json:"delta_rel"`
	Tolerance float64 `json:"tolerance"`
	Gated     bool    `json:"gated"`
	OK        bool    `json:"ok"`
}

type diffDoc struct {
	Mode        string       `json:"mode"`
	Schema      float64      `json:"baseline_schema"`
	FreshSchema float64      `json:"fresh_schema"`
	Gates       []comparison `json:"gates"`
	Info        []comparison `json:"info"`
	Skipped     []string     `json:"skipped"`
	Failures    int          `json:"failures"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		basePath  = flag.String("baseline", "", "committed baseline JSON")
		freshPath = flag.String("fresh", "", "freshly produced JSON")
		outPath   = flag.String("out", "", "write the diff document here")
		tolerance = flag.Float64("tolerance", 0.25, "default relative regression tolerance for gated fields")
	)
	flag.Parse()
	if *basePath == "" || *freshPath == "" {
		return fmt.Errorf("need -baseline and -fresh")
	}
	base, err := load(*basePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		return fmt.Errorf("fresh: %w", err)
	}
	mode := docMode(base)
	if fm := docMode(fresh); fm != mode {
		return fmt.Errorf("mode mismatch: baseline %q vs fresh %q", mode, fm)
	}
	if err := sameConfig(base, fresh); err != nil {
		return err
	}
	gates, ok := gatesByMode[mode]
	if !ok {
		return fmt.Errorf("unknown document mode %q", mode)
	}

	doc := diffDoc{Mode: mode}
	doc.Schema, _ = num(base, "schema")
	doc.FreshSchema, _ = num(fresh, "schema")
	for _, g := range gates {
		bv, okB := num(base, g.key)
		fv, okF := num(fresh, g.key)
		if !okB || !okF {
			doc.Skipped = append(doc.Skipped, g.key)
			continue
		}
		tol := *tolerance
		if g.rel > 0 {
			tol = g.rel
		}
		slack := math.Max(tol*math.Abs(bv), g.abs)
		var pass bool
		switch g.dir {
		case up:
			pass = fv <= bv+slack
		default:
			pass = math.Abs(fv-bv) <= slack
		}
		rel := 0.0
		if bv != 0 {
			rel = (fv - bv) / math.Abs(bv)
		}
		doc.Gates = append(doc.Gates, comparison{
			Key: g.key, Baseline: bv, Fresh: fv, DeltaRel: rel, Tolerance: tol, Gated: true, OK: pass,
		})
		if !pass {
			doc.Failures++
		}
	}
	// Ungated informational rows: every shared scalar not already gated
	// (wall clocks, speedups, counters), for the uploaded artifact.
	gated := map[string]bool{}
	for _, g := range gates {
		gated[g.key] = true
	}
	// base is a decoded JSON map: walk its keys sorted so the info rows
	// of the uploaded artifact diff cleanly between CI runs.
	keys := make([]string, 0, len(base))
	for key := range base {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if gated[key] || key == "schema" {
			continue
		}
		bv, okB := toFloat(base[key])
		fv, okF := num(fresh, key)
		if !okB || !okF {
			continue
		}
		rel := 0.0
		if bv != 0 {
			rel = (fv - bv) / math.Abs(bv)
		}
		doc.Info = append(doc.Info, comparison{Key: key, Baseline: bv, Fresh: fv, DeltaRel: rel, OK: true})
	}

	for _, c := range doc.Gates {
		status := "ok"
		if !c.OK {
			status = "REGRESSION"
		}
		fmt.Printf("  %-28s %14.6f -> %14.6f (%+.1f%%, tol %.0f%%) %s\n",
			c.Key, c.Baseline, c.Fresh, 100*c.DeltaRel, 100*c.Tolerance, status)
	}
	for _, k := range doc.Skipped {
		fmt.Printf("  %-28s skipped (absent from baseline or fresh document)\n", k)
	}
	if *outPath != "" {
		out, err := json.MarshalIndent(&doc, "", "  ")
		if err != nil {
			return err
		}
		out = append(out, '\n')
		if err := os.WriteFile(*outPath, out, 0o644); err != nil {
			return err
		}
	}
	if doc.Failures > 0 {
		return fmt.Errorf("%d gated field(s) regressed beyond tolerance (mode %s)", doc.Failures, mode)
	}
	fmt.Printf("benchdiff: %s document within tolerance of %s\n", mode, *basePath)
	return nil
}

func load(path string) (map[string]any, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, err
	}
	if _, ok := doc["schema"]; !ok {
		return nil, fmt.Errorf("%s: no schema field — not a bench document", path)
	}
	return doc, nil
}

func docMode(doc map[string]any) string {
	if m, ok := doc["mode"].(string); ok {
		return m
	}
	// The schema-2 -flow layout predates the mode field.
	return "flow"
}

// sameConfig insists both documents ran the same workload — comparing
// different instance sizes or seeds would gate noise, not regressions.
func sameConfig(base, fresh map[string]any) error {
	bc, _ := base["config"].(map[string]any)
	fc, _ := fresh["config"].(map[string]any)
	if bc == nil || fc == nil {
		return fmt.Errorf("config block missing")
	}
	for _, key := range []string{"n", "degree", "max_cap", "seed", "queries", "epsilon"} {
		bv, okB := toFloat(bc[key])
		fv, okF := toFloat(fc[key])
		if !okB || !okF || bv != fv {
			return fmt.Errorf("config mismatch on %q: baseline %v vs fresh %v — run the bench at the baseline's config", key, bc[key], fc[key])
		}
	}
	return nil
}

func num(doc map[string]any, key string) (float64, bool) {
	return toFloat(doc[key])
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}
