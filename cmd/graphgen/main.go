// Command graphgen emits workload graphs in the text format consumed by
// cmd/maxflow.
//
// Usage:
//
//	graphgen -family grid -n 256 -maxcap 16 -seed 3 > grid.txt
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"distflow/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		family = flag.String("family", "grid", "one of: "+familyNames())
		n      = flag.Int("n", 100, "approximate vertex count")
		maxCap = flag.Int64("maxcap", 1, "uniform random capacities in [1,maxcap]")
		seed   = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))
	for _, fam := range graph.Families() {
		if fam.Name == *family {
			g := fam.Make(*n, rng)
			if *maxCap > 1 {
				graph.CapUniform(g, *maxCap, rng)
			}
			return graph.Write(os.Stdout, g)
		}
	}
	return fmt.Errorf("unknown family %q (want one of %s)", *family, familyNames())
}

func familyNames() string {
	var names []string
	for _, fam := range graph.Families() {
		names = append(names, fam.Name)
	}
	return strings.Join(names, ", ")
}
