// Command graphgen emits workload graphs in the text format consumed by
// cmd/maxflow.
//
// Usage:
//
//	graphgen -family grid -n 256 -maxcap 16 -seed 3 > grid.txt
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"distflow/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		family = flag.String("family", "grid", "one of: "+familyNames())
		n      = flag.Int("n", 100, "approximate vertex count")
		maxCap = flag.Int64("maxcap", 1, "uniform random capacities in [1,maxcap]")
		seed   = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	// The capacity sweep families default to maxcap 16; an explicit
	// -maxcap > 1 overrides it (matching the materializing path, which
	// re-draws capacities on top of the family's).
	famCap := *maxCap
	if famCap <= 1 {
		famCap = 16
	}
	// gnp and grid stream edge-at-a-time — at n=10⁶ the full edge list
	// never exists in memory, only the text stream. The remaining
	// families are small-n experiment topologies and materialize.
	switch *family {
	case "gnp":
		return graph.StreamGNP(os.Stdout, *n, 4.0/float64(*n), famCap, *seed)
	case "grid":
		side := 1
		for side*side < *n {
			side++
		}
		return graph.StreamGrid(os.Stdout, side, side, famCap, *seed)
	}
	rng := rand.New(rand.NewSource(*seed))
	for _, fam := range graph.Families() {
		if fam.Name == *family {
			g := fam.Make(*n, rng)
			if *maxCap > 1 {
				graph.CapUniform(g, *maxCap, rng)
			}
			return graph.Write(os.Stdout, g)
		}
	}
	return fmt.Errorf("unknown family %q (want one of %s)", *family, familyNames())
}

func familyNames() string {
	var names []string
	for _, fam := range graph.Families() {
		names = append(names, fam.Name)
	}
	return strings.Join(names, ", ")
}
