package main

// The -churn mode benchmarks dynamic topology churn on the serving
// router (DESIGN.md §8): a stream of batched structural edits — edge
// deletes and inserts, vertex adds with links, vertex removals —
// applied through Router.UpdateTopology, against the cost of rebuilding
// the router from scratch on the final graph. The JSON document
// (schema 5) records the per-batch update cost ladder
// (churn_update_seconds vs rebuild_seconds), the dirty/swept/resampled
// tree counters, the no-op elision cost, and the query drift between
// the incrementally updated router and a fresh rebuild on the same
// final graph. BENCH_churn.json in the repository root is the recorded
// n=2500 run; the -churn-ceiling flag turns the per-batch budget into a
// CI gate.

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"distflow"
	"distflow/internal/graph"
)

// ChurnBenchResult is the JSON document emitted by -churn -json.
type ChurnBenchResult struct {
	Schema     int             `json:"schema"`
	Mode       string          `json:"mode"`
	Config     FlowBenchConfig `json:"config"`
	GoMaxProcs int             `json:"go_max_procs"`
	NumCPU     int             `json:"num_cpu"`
	M          int             `json:"m"`

	// RouterBuildSeconds is the wall clock of the initial NewRouter.
	RouterBuildSeconds float64 `json:"router_build_seconds"`

	// Batches is the number of topology batches applied; the Ops fields
	// count the edits across all of them.
	Batches          int `json:"churn_batches"`
	OpsEdgeDeletes   int `json:"ops_edge_deletes"`
	OpsEdgeInserts   int `json:"ops_edge_inserts"`
	OpsVertexAdds    int `json:"ops_vertex_adds"`
	OpsVertexRemoves int `json:"ops_vertex_removes"`

	// ChurnUpdateSeconds is the mean wall clock of one UpdateTopology
	// batch; ChurnUpdateMaxSeconds the worst batch (resamples land
	// here).
	ChurnUpdateSeconds    float64 `json:"churn_update_seconds"`
	ChurnUpdateMaxSeconds float64 `json:"churn_update_max_seconds"`
	// NoopTopoSeconds is the cost of a batch that elides to nothing.
	NoopTopoSeconds float64 `json:"noop_topo_seconds"`
	// RebuildSeconds is one NewRouter call on the final churned graph.
	RebuildSeconds float64 `json:"rebuild_seconds"`
	// SpeedupVsRebuild = RebuildSeconds / ChurnUpdateSeconds.
	SpeedupVsRebuild float64 `json:"churn_speedup_vs_rebuild"`

	// Tree-work counters summed over all batches.
	DirtyTrees     int `json:"dirty_trees_total"`
	SweptTrees     int `json:"swept_trees_total"`
	ResampledTrees int `json:"resampled_trees_total"`
	Rebuilds       int `json:"rebuilds_total"`

	// Final graph shape.
	FinalN     int `json:"final_n"`
	FinalLiveM int `json:"final_live_m"`
	FinalM     int `json:"final_m"`

	// Serving comparison on the final graph: the same query workload on
	// the incrementally updated router vs a fresh rebuild. Both are
	// (1+ε)-approximate; ChurnMaxValueErr is the largest relative
	// per-query deviation (the ≤ 0.1% acceptance gate), Escalations the
	// quality escalations the updated router needed.
	ValueSumUpdated  float64 `json:"value_sum_updated"`
	ValueSumRebuilt  float64 `json:"value_sum_rebuilt"`
	ChurnMaxValueErr float64 `json:"churn_max_value_err"`
	Escalations      int     `json:"escalations"`
	Alpha            float64 `json:"alpha"`
}

// churnScript deterministically generates and applies the benchmark's
// topology batches, timing each one.
func runChurnBench(cfg FlowBenchConfig, jsonPath string, churnCeiling float64) error {
	if cfg.N < 16 {
		return fmt.Errorf("-churn needs -n >= 16")
	}
	if cfg.Workers != 0 {
		distflow.SetParallelism(cfg.Workers)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gg := graph.CapUniform(graph.GNP(cfg.N, cfg.Degree/float64(cfg.N), rng), cfg.MaxCap, rng)
	G := distflow.NewGraph(gg.N())
	for _, e := range gg.Edges() {
		G.AddEdge(e.U, e.V, e.Cap)
	}
	res := ChurnBenchResult{
		Schema:     benchSchema,
		Mode:       "churn",
		Config:     cfg,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		M:          G.M(),
	}
	fmt.Printf("churn bench: n=%d m=%d eps=%v workers=%d GOMAXPROCS=%d\n",
		G.N(), G.M(), cfg.Epsilon, cfg.Workers, res.GoMaxProcs)

	opts := distflow.Options{Epsilon: cfg.Epsilon, Seed: cfg.Seed, DisableWarmStart: true}
	start := time.Now()
	r, err := distflow.NewRouter(G, opts)
	if err != nil {
		return err
	}
	res.RouterBuildSeconds = time.Since(start).Seconds()
	fmt.Printf("  router build          %8.3fs (alpha=%.3f)\n", res.RouterBuildSeconds, r.Alpha())

	// The churn stream: 10 mixed batches drawn from a dedicated seed.
	// Deletions avoid bridges (checked against a DSU of the live graph);
	// inserts, vertex adds and removals target random live vertices.
	churnRng := rand.New(rand.NewSource(cfg.Seed + 3))
	res.Batches = 10
	var totalSec, maxSec float64
	for b := 0; b < res.Batches; b++ {
		batch := makeChurnBatch(G, churnRng, &res)
		start = time.Now()
		ur, err := r.UpdateTopology(batch)
		if err != nil {
			return fmt.Errorf("churn batch %d: %w", b, err)
		}
		sec := time.Since(start).Seconds()
		totalSec += sec
		if sec > maxSec {
			maxSec = sec
		}
		res.DirtyTrees += ur.DirtyTrees
		res.SweptTrees += ur.SweptTrees
		res.ResampledTrees += ur.ResampledTrees
		if ur.Rebuilt {
			res.Rebuilds++
		}
		if ur.ResampledTrees > 0 || ur.Rebuilt {
			fmt.Printf("  batch %2d: %6.2fms (%d edits, resampled %d trees%s)\n",
				b, 1000*sec, ur.Edits, ur.ResampledTrees, map[bool]string{true: ", REBUILT", false: ""}[ur.Rebuilt])
		}
	}
	res.ChurnUpdateSeconds = totalSec / float64(res.Batches)
	res.ChurnUpdateMaxSeconds = maxSec
	res.FinalN = G.N()
	res.FinalM = G.M()
	res.FinalLiveM = G.LiveM()
	res.Alpha = r.Alpha()
	fmt.Printf("  churn updates         %8.5fs/batch (max %.5fs; %d batches: -%d edges +%d edges +%d vertices -%d vertices)\n",
		res.ChurnUpdateSeconds, res.ChurnUpdateMaxSeconds, res.Batches,
		res.OpsEdgeDeletes, res.OpsEdgeInserts, res.OpsVertexAdds, res.OpsVertexRemoves)
	fmt.Printf("  tree work             dirty %d | swept %d | resampled %d | rebuilds %d\n",
		res.DirtyTrees, res.SweptTrees, res.ResampledTrees, res.Rebuilds)

	// No-op rung: deleting an already-dead edge elides to nothing.
	if dead := firstDeadEdge(G); dead >= 0 {
		start = time.Now()
		if _, err := r.UpdateTopology([]distflow.TopoEdit{distflow.DeleteEdgeEdit(dead)}); err != nil {
			return fmt.Errorf("no-op batch: %w", err)
		}
		res.NoopTopoSeconds = time.Since(start).Seconds()
	}

	// Rebuild rung: one fresh router on the final churned graph.
	start = time.Now()
	fresh, err := distflow.NewRouter(G, opts)
	if err != nil {
		return fmt.Errorf("rebuild on churned graph: %w", err)
	}
	res.RebuildSeconds = time.Since(start).Seconds()
	if res.ChurnUpdateSeconds > 0 {
		res.SpeedupVsRebuild = res.RebuildSeconds / res.ChurnUpdateSeconds
	}
	fmt.Printf("  ladder                churn %8.5fs/batch | rebuild %.3fs (%.0fx) | no-op %.6fs\n",
		res.ChurnUpdateSeconds, res.RebuildSeconds, res.SpeedupVsRebuild, res.NoopTopoSeconds)

	// Query drift: the -flow workload restricted to live vertices, on
	// the updated router vs the fresh rebuild.
	pairs := churnBenchPairs(G, cfg.Queries, cfg.Seed)
	for _, p := range pairs {
		a, err := r.MaxFlow(p.S, p.T)
		if err != nil {
			return fmt.Errorf("updated query %d-%d: %w", p.S, p.T, err)
		}
		b, err := fresh.MaxFlow(p.S, p.T)
		if err != nil {
			return fmt.Errorf("fresh query %d-%d: %w", p.S, p.T, err)
		}
		res.ValueSumUpdated += a.Value
		res.ValueSumRebuilt += b.Value
		res.Escalations += a.Escalations
		if b.Value != 0 {
			if d := math.Abs(a.Value-b.Value) / math.Abs(b.Value); d > res.ChurnMaxValueErr {
				res.ChurnMaxValueErr = d
			}
		}
	}
	fmt.Printf("  query drift           updated %.6f vs rebuilt %.6f (max %.3f%%, %d escalations)\n",
		res.ValueSumUpdated, res.ValueSumRebuilt, 100*res.ChurnMaxValueErr, res.Escalations)

	if jsonPath != "" {
		doc, err := json.MarshalIndent(&res, "", "  ")
		if err != nil {
			return err
		}
		doc = append(doc, '\n')
		if err := os.WriteFile(jsonPath, doc, 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", jsonPath)
	}
	if churnCeiling > 0 && res.ChurnUpdateSeconds > churnCeiling {
		return fmt.Errorf("churn update budget exceeded: %.5fs/batch > ceiling %.5fs",
			res.ChurnUpdateSeconds, churnCeiling)
	}
	return nil
}

// makeChurnBatch draws one mixed batch: 4 bridge-safe edge deletions, 4
// edge inserts, one vertex add with 3 links, and (every other batch)
// one bridge-safe vertex removal.
func makeChurnBatch(G *distflow.Graph, rng *rand.Rand, res *ChurnBenchResult) []distflow.TopoEdit {
	var batch []distflow.TopoEdit
	dropped := map[int]bool{}
	for tries := 0; tries < 40 && countOps(batch, distflow.TopoDeleteEdge) < 4; tries++ {
		e := rng.Intn(G.M())
		_, _, c := G.EdgeEndpoints(e)
		if c == 0 || dropped[e] {
			continue
		}
		dropped[e] = true
		if !liveConnectedWithout(G, dropped, -1) {
			delete(dropped, e)
			continue
		}
		batch = append(batch, distflow.DeleteEdgeEdit(e))
		res.OpsEdgeDeletes++
	}
	for i := 0; i < 4; i++ {
		u, v := rng.Intn(G.N()), rng.Intn(G.N())
		if u != v && !G.Removed(u) && !G.Removed(v) {
			batch = append(batch, distflow.AddEdgeEdit(u, v, 1+rng.Int63n(8)))
			res.OpsEdgeInserts++
		}
	}
	var links []distflow.Link
	seen := map[int]bool{}
	for len(links) < 3 {
		a := rng.Intn(G.N())
		if !G.Removed(a) && !seen[a] {
			seen[a] = true
			links = append(links, distflow.Link{To: a, Cap: 1 + rng.Int63n(8)})
		}
	}
	batch = append(batch, distflow.AddVertexEdit(links...))
	res.OpsVertexAdds++
	if res.OpsVertexAdds%2 == 0 {
		for tries := 0; tries < 20; tries++ {
			v := rng.Intn(G.N())
			if !G.Removed(v) && liveConnectedWithout(G, dropped, v) {
				batch = append(batch, distflow.RemoveVertexEdit(v))
				res.OpsVertexRemoves++
				break
			}
		}
	}
	return batch
}

func countOps(batch []distflow.TopoEdit, op distflow.TopoOp) int {
	n := 0
	for _, e := range batch {
		if e.Op == op {
			n++
		}
	}
	return n
}

// liveConnectedWithout checks connectivity of the live graph minus the
// given edges and vertex via a DSU sweep.
func liveConnectedWithout(G *distflow.Graph, dropEdges map[int]bool, dropVertex int) bool {
	n := G.N()
	parent := make([]int, n)
	for v := range parent {
		parent[v] = v
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	active := 0
	for v := 0; v < n; v++ {
		if !G.Removed(v) && v != dropVertex {
			active++
		}
	}
	comps := active
	for e := 0; e < G.M(); e++ {
		u, v, c := G.EdgeEndpoints(e)
		if c == 0 || dropEdges[e] || u == dropVertex || v == dropVertex {
			continue
		}
		if ru, rv := find(u), find(v); ru != rv {
			parent[ru] = rv
			comps--
		}
	}
	return comps == 1
}

func firstDeadEdge(G *distflow.Graph) int {
	for e := 0; e < G.M(); e++ {
		if G.DeadEdge(e) {
			return e
		}
	}
	return -1
}

// churnBenchPairs derives the drift workload deterministically from the
// seed, restricted to live vertices of the final graph.
func churnBenchPairs(G *distflow.Graph, queries int, seed int64) []distflow.STPair {
	rng := rand.New(rand.NewSource(seed + 1))
	pairs := make([]distflow.STPair, 0, queries)
	for len(pairs) < queries {
		s, t := rng.Intn(G.N()), rng.Intn(G.N())
		if s != t && !G.Removed(s) && !G.Removed(t) {
			pairs = append(pairs, distflow.STPair{S: s, T: t})
		}
	}
	return pairs
}
