// Command bench regenerates the experiment tables of EXPERIMENTS.md:
// one table per reproduced claim of the paper (DESIGN.md §3 maps claims
// to experiments).
//
// Usage:
//
//	bench            # all experiments at full scale
//	bench -exp e4    # one experiment
//	bench -quick     # reduced sizes (the configuration CI runs)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"distflow/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp   = flag.String("exp", "", "comma-separated experiment ids (e1..e10); empty = all")
		quick = flag.Bool("quick", false, "reduced instance sizes")
	)
	flag.Parse()
	scale := experiments.Full
	if *quick {
		scale = experiments.Quick
	}
	want := map[string]bool{}
	if *exp != "" {
		for _, id := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	ran := 0
	for _, r := range experiments.All() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		start := time.Now()
		tab, err := r.Run(scale)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		tab.Fprint(os.Stdout)
		fmt.Printf("   (%s regenerated in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matched %q", *exp)
	}
	return nil
}
