// Command bench regenerates the experiment tables of EXPERIMENTS.md:
// one table per reproduced claim of the paper (DESIGN.md §3 maps claims
// to experiments).
//
// Usage:
//
//	bench            # all experiments at full scale
//	bench -exp e4    # one experiment
//	bench -quick     # reduced sizes (the configuration CI runs)
//
// The -flow mode instead benchmarks the solver serving path (router
// construction, then sequential vs batched max-flow queries, a
// batch-determinism cross-check, and a warm-cache repeat pass) and can
// record the measurements as JSON (schema 2, versioned in flow.go):
//
//	bench -flow -n 2500 -queries 8 -json BENCH.json
//	bench -flow -workers 1          # pin the solver core to one worker
//	bench -flow -compare            # also run the plain-stepper baseline
//	                                # and record the iteration ratio
//	bench -flow -iter-ceiling 1900  # fail if the workload exceeds the
//	                                # gradient-iteration budget (CI)
//	bench -flow -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//
// The -build mode benchmarks the router construction path instead: one
// NewRouter call with its per-phase breakdown (tree sampling,
// sparsifier, cut capacities, α measurement), a serving fingerprint on
// the same query workload, and the capacity-update ladder — dirty-path
// update vs full per-tree re-sweep vs rebuild (schema 4, see build.go).
// The graph/query flags (-n, -deg, -cap, -seed, -queries, -eps,
// -workers, -json) are shared between -flow and -build:
//
//	bench -build -n 2500 -json BENCH_update.json
//	bench -build -build-ceiling 0.7   # fail when router_build_seconds
//	                                  # exceeds the budget (CI)
//	bench -build -update-ceiling 0.01 # fail when a single-edge dirty
//	                                  # update exceeds the budget (CI)
//
// The -churn mode benchmarks dynamic topology churn: batched
// edge/vertex inserts and deletes through Router.UpdateTopology against
// a full rebuild of the router on the final graph, plus the query drift
// between the two (schema 5, see churn.go). It shares the graph/query
// flags with -flow and -build:
//
//	bench -churn -n 2500 -json BENCH_churn.json
//	bench -churn -churn-ceiling 0.05  # fail when one topology batch
//	                                  # exceeds the budget (CI)
//
// The -serve mode benchmarks the concurrent serving front-end: a
// sustained closed-loop query load through distflow.Server (admission
// control + coalescing batch scheduler) with topology churn publishing
// epochs underneath, a chaos phase (deadline-bounded queries with
// cancellations, injected update failures, a recovered solver panic,
// an overload burst, and a goroutine-leak check), then the
// quiesced-vs-rebuilt query drift on the final graph (schema 8, see
// serve.go). It shares the graph/query flags with the other modes:
//
//	bench -serve -n 2500 -json BENCH_serve.json
//	bench -serve -serve-ceiling 2     # fail when the p99 query latency
//	                                  # exceeds the budget (CI)
//	bench -serve -serve-deadline 500ms -serve-deadline-ceiling 2
//	                                  # fail when the chaos p99 exceeds
//	                                  # 2 × the per-query deadline (CI)
//
// The -scale mode climbs the instance ladder n = 10⁴, 10⁵, 10⁶ and
// measures every pipeline phase — streamed generation, streamed load,
// router build — in wall time and memory (retained heap delta + peak,
// schema 7, see scale.go). It reuses -deg/-cap/-seed/-queries/-eps/
// -workers; -n is ignored (the ladder fixes the rungs):
//
//	bench -scale -scale-max-n 100000 -json BENCH_scale.json
//	bench -scale -scale-max-n 10000 -scale-mem-ceiling 1024
//	                                  # fail when peak heap exceeds the
//	                                  # budget in MB (CI smoke)
//
// The -shard mode measures the sharded execution engine
// (Options.Shards) on the ladder n = 10⁴, 10⁵: per rung it re-shards
// one router across P = 1, 2, 4, 8 via SetShards, verifies every sweep
// reproduces the unsharded value sum bit for bit, and records the
// measured supersteps, cross-shard messages, and payload bytes against
// the paper's Õ(√n + D) round reference (schema 9, see shard.go):
//
//	bench -shard -shard-max-n 10000 -queries 4 -json BENCH_shard.json
//
// The -flow mode additionally measures router-build parallelism (one
// build pinned to a single worker vs one at GOMAXPROCS workers);
// -parallel-floor gates the speedup on multicore CI runners:
//
//	bench -flow -n 2500 -parallel-floor 1.5 -json BENCH_parallel.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"distflow/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp   = flag.String("exp", "", "comma-separated experiment ids (e1..e10); empty = all")
		quick = flag.Bool("quick", false, "reduced instance sizes")

		flow          = flag.Bool("flow", false, "benchmark the solver serving path instead of the experiment tables")
		build         = flag.Bool("build", false, "benchmark the router construction path (per-phase breakdown + the dirty/full/rebuild update ladder)")
		churn         = flag.Bool("churn", false, "benchmark dynamic topology churn (batched UpdateTopology vs full rebuild)")
		serve         = flag.Bool("serve", false, "benchmark the concurrent serving front-end (sustained load + churn through distflow.Server)")
		scaleMode     = flag.Bool("scale", false, "benchmark the instance ladder n=10⁴..10⁶ (per-phase wall time + memory)")
		shardMode     = flag.Bool("shard", false, "benchmark the sharded execution engine: P=1,2,4,8 sweep with measured rounds/messages/bytes and bit-identity vs the unsharded baseline")
		shardMaxN     = flag.Int("shard-max-n", 100_000, "-shard: climb rungs up to this vertex count")
		scaleMaxN     = flag.Int("scale-max-n", 1_000_000, "-scale: climb rungs up to this vertex count")
		scaleMemCeil  = flag.Float64("scale-mem-ceiling", 0, "-scale: pin the soft memory limit to this many MB and fail when peak heap exceeds it (0 = off)")
		buildCeiling  = flag.Float64("build-ceiling", 0, "-build: fail when router_build_seconds exceeds this many seconds (0 = off)")
		updateCeiling = flag.Float64("update-ceiling", 0, "-build: fail when dirty_update_seconds (per single-edge edit) exceeds this many seconds (0 = off)")
		churnCeiling  = flag.Float64("churn-ceiling", 0, "-churn: fail when churn_update_seconds (per topology batch) exceeds this many seconds (0 = off)")
		serveCeiling  = flag.Float64("serve-ceiling", 0, "-serve: fail when serve_p99_seconds (query latency under load) exceeds this many seconds (0 = off)")
		serveDeadline = flag.Duration("serve-deadline", 750*time.Millisecond, "-serve: per-query deadline of the chaos phase (degraded answers past it)")
		serveDLCeil   = flag.Float64("serve-deadline-ceiling", 0, "-serve: fail when the chaos-phase p99 exceeds this multiple of -serve-deadline (0 = off)")
		flowN         = flag.Int("n", 2500, "-flow/-build: vertex count of the benchmark graph")
		flowDeg       = flag.Float64("deg", 8, "-flow/-build: expected average degree")
		flowCap       = flag.Int64("cap", 64, "-flow/-build: maximum edge capacity")
		flowSeed      = flag.Int64("seed", 3, "-flow/-build: graph/query PRNG seed")
		queries       = flag.Int("queries", 8, "-flow/-build: number of s-t queries")
		epsilon       = flag.Float64("eps", 0.5, "-flow/-build: approximation target")
		workers       = flag.Int("workers", 0, "-flow/-build: solver worker count (0 = GOMAXPROCS)")
		jsonOut       = flag.String("json", "", "-flow/-build: write measurements to this JSON file")
		compare       = flag.Bool("compare", false, "-flow: also run the plain-stepper baseline (no acceleration/continuation) and record the iteration ratio")
		iterCeiling   = flag.Int("iter-ceiling", 0, "-flow: fail when sequential gradient iterations exceed this budget (0 = off)")
		parallelFloor = flag.Float64("parallel-floor", 0, "-flow: fail when the workers=1 vs workers=GOMAXPROCS build speedup falls below this floor (0 = off; only meaningful on multicore)")
		cpuProfile    = flag.String("cpuprofile", "", "-flow: write a CPU profile to this file")
		memProfile    = flag.String("memprofile", "", "-flow: write a heap profile to this file")
	)
	flag.Parse()
	if *shardMode {
		return runShardBench(FlowBenchConfig{
			Degree:  *flowDeg,
			MaxCap:  *flowCap,
			Seed:    *flowSeed,
			Queries: *queries,
			Epsilon: *epsilon,
			Workers: *workers,
		}, *jsonOut, *shardMaxN)
	}
	if *scaleMode {
		return runScaleBench(FlowBenchConfig{
			Degree:  *flowDeg,
			MaxCap:  *flowCap,
			Seed:    *flowSeed,
			Queries: *queries,
			Epsilon: *epsilon,
			Workers: *workers,
		}, *jsonOut, *scaleMaxN, *scaleMemCeil)
	}
	if *serve {
		return runServeBench(FlowBenchConfig{
			N:       *flowN,
			Degree:  *flowDeg,
			MaxCap:  *flowCap,
			Seed:    *flowSeed,
			Queries: *queries,
			Epsilon: *epsilon,
			Workers: *workers,
		}, *jsonOut, *serveCeiling, *serveDeadline, *serveDLCeil)
	}
	if *churn {
		return runChurnBench(FlowBenchConfig{
			N:       *flowN,
			Degree:  *flowDeg,
			MaxCap:  *flowCap,
			Seed:    *flowSeed,
			Queries: *queries,
			Epsilon: *epsilon,
			Workers: *workers,
		}, *jsonOut, *churnCeiling)
	}
	if *build {
		return runBuildBench(FlowBenchConfig{
			N:       *flowN,
			Degree:  *flowDeg,
			MaxCap:  *flowCap,
			Seed:    *flowSeed,
			Queries: *queries,
			Epsilon: *epsilon,
			Workers: *workers,
		}, *jsonOut, *buildCeiling, *updateCeiling)
	}
	if *flow {
		return runFlowBench(FlowBenchConfig{
			N:       *flowN,
			Degree:  *flowDeg,
			MaxCap:  *flowCap,
			Seed:    *flowSeed,
			Queries: *queries,
			Epsilon: *epsilon,
			Workers: *workers,
		}, *jsonOut, FlowBenchFlags{
			Compare:       *compare,
			IterCeiling:   *iterCeiling,
			ParallelFloor: *parallelFloor,
			CPUProfile:    *cpuProfile,
			MemProfile:    *memProfile,
		})
	}
	scale := experiments.Full
	if *quick {
		scale = experiments.Quick
	}
	want := map[string]bool{}
	if *exp != "" {
		for _, id := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	ran := 0
	for _, r := range experiments.All() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		start := time.Now()
		tab, err := r.Run(scale)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		tab.Fprint(os.Stdout)
		fmt.Printf("   (%s regenerated in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matched %q", *exp)
	}
	return nil
}
