package main

// The -shard mode measures the sharded execution engine (Options.Shards,
// internal/shard) on the instance ladder n = 10⁴, 10⁵ (capped by
// -shard-max-n): one router per rung, re-sharded across P = 1, 2, 4, 8
// via Router.SetShards (a lightweight republish sharing the frozen graph
// and trees), with the same query workload issued at every P plus an
// unsharded baseline. Three numbers matter per (rung, P):
//
//   - measured_rounds: engine supersteps actually executed — every
//     barrier the shard goroutines crossed. The superstep schedule is a
//     function of the operator sequence and tree heights alone, so this
//     is identical at every P; the mode errors if it is not.
//   - messages / bytes: nonempty cross-shard payloads shipped and their
//     payload bytes. These grow with P (more boundary, more peers) and
//     are exactly reproducible, so benchdiff gates them.
//
// The rows are the repo's measured counterpart to the paper's
// Õ(√n + D) round bound: the mode reports measured_rounds / (√n + D)
// per rung (DESIGN.md §13 tabulates the recorded runs), with D the
// double-BFS diameter estimate of the rung's graph.
//
// Bit-identity is enforced, not assumed: the per-P query value sums are
// compared bitwise against the unsharded baseline and any mismatch
// fails the run — this is the acceptance check CI executes on every
// push (the shard-matrix job runs the equivalence tests; the
// bench-regression job runs this mode and gates the JSON).
//
// The JSON document (schema 9) is a flat map in the -scale style so
// cmd/benchdiff can gate individual cells: per-rung keys carry an
// `_n{n}` suffix, per-(P, rung) keys an `_p{p}_n{n}` suffix. The
// committed BENCH_shard.json is recorded at -shard-max-n 10000 with
// -queries 4 (the config CI reproduces); the n=10⁵ evidence run feeds
// the DESIGN.md §13 table. Query counts above the first rung drop to
// max(1, queries/4) — the sweep re-solves the workload 5× (baseline +
// four shard counts), and the big rung is there to scale the
// rounds-vs-√n ratio, not to multiply wall time.

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"distflow"
	"distflow/internal/graph"
)

// shardRungs is the full ladder; -shard-max-n trims it.
var shardRungs = []int{10_000, 100_000}

// shardSweepPs is the shard-count ladder swept at every rung.
var shardSweepPs = []int{1, 2, 4, 8}

func runShardBench(cfg FlowBenchConfig, jsonPath string, maxN int) error {
	if cfg.Queries < 1 {
		return fmt.Errorf("-shard needs -queries >= 1")
	}
	if cfg.Workers != 0 {
		distflow.SetParallelism(cfg.Workers)
	}
	rungs := make([]int, 0, len(shardRungs))
	for _, n := range shardRungs {
		if n <= maxN {
			rungs = append(rungs, n)
		}
	}
	if len(rungs) == 0 {
		return fmt.Errorf("-shard-max-n %d is below the smallest rung (%d)", maxN, shardRungs[0])
	}
	cfg.N = rungs[len(rungs)-1]
	doc := map[string]any{
		"schema":       benchSchema,
		"mode":         "shard",
		"config":       cfg,
		"go_max_procs": runtime.GOMAXPROCS(0),
		"num_cpu":      runtime.NumCPU(),
	}
	note := func(key string, n int, v float64) {
		doc[fmt.Sprintf("%s_n%d", key, n)] = v
	}
	noteP := func(key string, p, n int, v float64) {
		doc[fmt.Sprintf("%s_p%d_n%d", key, p, n)] = v
	}
	fmt.Printf("shard bench: rungs=%v P=%v deg=%v eps=%v workers=%d GOMAXPROCS=%d\n",
		rungs, shardSweepPs, cfg.Degree, cfg.Epsilon, cfg.Workers, runtime.GOMAXPROCS(0))

	for i, n := range rungs {
		rng := rand.New(rand.NewSource(cfg.Seed))
		gg := graph.CapUniform(graph.GNPSparse(n, cfg.Degree/float64(n), rng), cfg.MaxCap, rng)
		G := distflow.NewGraph(gg.N())
		for _, e := range gg.Edges() {
			G.AddEdge(e.U, e.V, e.Cap)
		}
		diameter := doubleSweepDiameter(gg)
		sqrtND := math.Sqrt(float64(n)) + float64(diameter)

		opts := distflow.Options{Epsilon: cfg.Epsilon, Seed: cfg.Seed, DisableWarmStart: true}
		start := time.Now()
		r, err := distflow.NewRouter(G, opts)
		if err != nil {
			return fmt.Errorf("n=%d build: %w", n, err)
		}
		buildSec := time.Since(start).Seconds()

		queries := cfg.Queries
		if i > 0 {
			queries = max(1, cfg.Queries/4)
		}
		pairs := flowBenchPairs(n, queries, cfg.Seed)

		// Unsharded baseline: the value sum every sharded sweep must
		// reproduce bit for bit.
		baseSum, baseIters := 0.0, 0
		start = time.Now()
		for _, pr := range pairs {
			fr, err := r.MaxFlow(pr.S, pr.T)
			if err != nil {
				return fmt.Errorf("n=%d baseline query %d-%d: %w", n, pr.S, pr.T, err)
			}
			baseSum += fr.Value
			baseIters += fr.Iterations
		}
		baseSec := time.Since(start).Seconds()
		fmt.Printf("  n=%-7d m=%-8d D≈%-3d build %7.2fs | baseline (P=0) %7.2fs (%d iterations, value sum %.6f)\n",
			n, G.M(), diameter, buildSec, baseSec, baseIters, baseSum)

		measuredRounds := int64(-1)
		for _, p := range shardSweepPs {
			if err := r.SetShards(p); err != nil {
				return fmt.Errorf("n=%d SetShards(%d): %w", n, p, err)
			}
			sum := 0.0
			var rounds, msgs, bytes int64
			start = time.Now()
			for _, pr := range pairs {
				fr, err := r.MaxFlow(pr.S, pr.T)
				if err != nil {
					return fmt.Errorf("n=%d P=%d query %d-%d: %w", n, p, pr.S, pr.T, err)
				}
				sum += fr.Value
				rounds += fr.MeasuredRounds
				msgs += fr.Messages
				bytes += fr.Bytes
			}
			sec := time.Since(start).Seconds()
			if math.Float64bits(sum) != math.Float64bits(baseSum) {
				return fmt.Errorf("n=%d P=%d: value sum %v is not bit-identical to the unsharded baseline %v",
					n, p, sum, baseSum)
			}
			if measuredRounds < 0 {
				measuredRounds = rounds
			} else if rounds != measuredRounds {
				return fmt.Errorf("n=%d P=%d: %d measured rounds, P=%d measured %d — the superstep schedule must be P-independent",
					n, p, rounds, shardSweepPs[0], measuredRounds)
			}
			noteP("measured_rounds", p, n, float64(rounds))
			noteP("messages", p, n, float64(msgs))
			noteP("bytes", p, n, float64(bytes))
			noteP("seconds", p, n, sec)
			fmt.Printf("    P=%d %7.2fs | rounds %-8d messages %-10d bytes %-12d (value sum bit-identical)\n",
				p, sec, rounds, msgs, bytes)
		}
		r.Close()

		note("m", n, float64(G.M()))
		note("diameter", n, float64(diameter))
		note("sqrt_n", n, math.Sqrt(float64(n)))
		note("queries", n, float64(queries))
		note("build_seconds", n, buildSec)
		note("baseline_seconds", n, baseSec)
		note("value_sum", n, baseSum)
		note("iterations", n, float64(baseIters))
		note("measured_rounds", n, float64(measuredRounds))
		note("rounds_over_sqrtn_d", n, float64(measuredRounds)/sqrtND)
		fmt.Printf("    measured rounds / (√n + D) = %.1f / %.1f = %.2f per workload (%d queries)\n",
			float64(measuredRounds), sqrtND, float64(measuredRounds)/sqrtND, queries)
	}

	if jsonPath != "" {
		out, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		out = append(out, '\n')
		if err := os.WriteFile(jsonPath, out, 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", jsonPath)
	}
	return nil
}

// doubleSweepDiameter estimates the graph diameter with the standard
// double-BFS sweep (BFS from vertex 0, then BFS from the farthest
// vertex found): a lower bound that is exact on trees and within a
// small factor on the expander-like benchmark graphs. The estimate
// feeds the Õ(√n + D) reference only; nothing downstream depends on it
// being tight.
func doubleSweepDiameter(g *graph.Graph) int {
	adj := make([][]int32, g.N())
	for _, e := range g.Edges() {
		adj[e.U] = append(adj[e.U], int32(e.V))
		adj[e.V] = append(adj[e.V], int32(e.U))
	}
	bfs := func(src int) (far, ecc int) {
		dist := make([]int32, len(adj))
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue := []int32{int32(src)}
		far = src
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range adj[v] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					if int(dist[w]) > ecc {
						ecc, far = int(dist[w]), int(w)
					}
					queue = append(queue, w)
				}
			}
		}
		return far, ecc
	}
	far, _ := bfs(0)
	_, ecc := bfs(far)
	return ecc
}
