package main

// The -build mode benchmarks the Router construction path (the
// congestion-approximator build of Theorem 8.10) on the same workload
// as -flow: one large random graph, followed by the query stream issued
// once to fingerprint the build (value_sum must stay put when the build
// gets faster). The JSON document (schema 4) records a per-phase build
// breakdown — tree sampling, sparsifier, TreeFlow/cut-cap, α
// measurement — so future build regressions are attributable, plus the
// single-edge capacity-update ladder: the dirty-path refresh vs the
// full per-tree re-sweep vs a full rebuild, and the no-op early-return
// cost.
//
// BENCH_build_pre.json in the repository root is the pre-CSR baseline,
// BENCH_build.json the CSR run (schema 3), and BENCH_update.json the
// dirty-path ladder (schema 4).

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"distflow"
	"distflow/internal/graph"
)

// BuildBenchResult is the JSON document emitted by -build -json.
type BuildBenchResult struct {
	Schema     int             `json:"schema"`
	Mode       string          `json:"mode"`
	Config     FlowBenchConfig `json:"config"`
	GoMaxProcs int             `json:"go_max_procs"`
	NumCPU     int             `json:"num_cpu"`
	M          int             `json:"m"`

	// RouterBuildSeconds is the wall clock of one NewRouter call.
	RouterBuildSeconds float64 `json:"router_build_seconds"`
	Alpha              float64 `json:"alpha"`
	Trees              int     `json:"trees"`
	// Phases is the per-phase breakdown of the build (per-tree phases
	// are summed per-tree durations, i.e. CPU seconds).
	Phases distflow.BuildBreakdown `json:"build_phases"`

	// Serving fingerprint: the -flow query workload issued once,
	// sequentially, against the built router (warm cache disabled).
	// A build change that alters results moves ValueSum.
	ValueSum   float64 `json:"value_sum"`
	Iterations int     `json:"iterations"`

	// Incremental update ladder (schema 4): the same single-edge
	// capacity edits applied via Router.UpdateCapacities down three
	// rungs — the dirty-path refresh (default), the full per-tree
	// TreeFlow re-sweep (Options.UpdateDirtyFraction < 0, the PR 3
	// behavior), and a full NewRouter rebuild of the edited graph.
	UpdateEdits int `json:"update_edits,omitempty"`
	// DirtyUpdateSeconds is the per-edit wall clock of the dirty-path
	// update (O(edits × depth) patching along the edited tree paths).
	DirtyUpdateSeconds float64 `json:"dirty_update_seconds,omitempty"`
	// FullUpdateSeconds is the per-edit wall clock with the dirty path
	// disabled: one full TreeFlow sweep per tree.
	FullUpdateSeconds float64 `json:"full_update_seconds,omitempty"`
	// RebuildSeconds is one NewRouter call on the edited graph.
	RebuildSeconds float64 `json:"rebuild_seconds,omitempty"`
	// NoopUpdateSeconds is the per-call cost of a batch that coalesces
	// to nothing (the early return: no sweep, no solver reset).
	NoopUpdateSeconds      float64 `json:"noop_update_seconds,omitempty"`
	UpdateSpeedupVsFull    float64 `json:"update_speedup_vs_full,omitempty"`
	UpdateSpeedupVsRebuild float64 `json:"update_speedup_vs_rebuild,omitempty"`
	// UpdateMaxValueErr is the largest relative deviation between the
	// updated router's query values and a freshly built router's on the
	// edited graph (both (1+ε)-approximate; the property test pins the
	// Dinic bound, this field just records the drift).
	UpdateMaxValueErr float64 `json:"update_max_value_err,omitempty"`
}

func runBuildBench(cfg FlowBenchConfig, jsonPath string, buildCeiling, updateCeiling float64) error {
	if cfg.N < 2 {
		return fmt.Errorf("-build needs -n >= 2")
	}
	if cfg.Workers != 0 {
		distflow.SetParallelism(cfg.Workers)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gg := graph.CapUniform(graph.GNP(cfg.N, cfg.Degree/float64(cfg.N), rng), cfg.MaxCap, rng)
	G := distflow.NewGraph(gg.N())
	for _, e := range gg.Edges() {
		G.AddEdge(e.U, e.V, e.Cap)
	}
	res := BuildBenchResult{
		Schema:     benchSchema,
		Mode:       "build",
		Config:     cfg,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		M:          G.M(),
	}
	fmt.Printf("build bench: n=%d m=%d eps=%v workers=%d GOMAXPROCS=%d\n",
		G.N(), G.M(), cfg.Epsilon, cfg.Workers, res.GoMaxProcs)

	opts := distflow.Options{Epsilon: cfg.Epsilon, Seed: cfg.Seed, DisableWarmStart: true}
	start := time.Now()
	r, err := distflow.NewRouter(G, opts)
	if err != nil {
		return err
	}
	res.RouterBuildSeconds = time.Since(start).Seconds()
	res.Alpha = r.Alpha()
	res.Trees = r.Trees()
	res.Phases = r.BuildBreakdown()
	fmt.Printf("  router build          %8.3fs (alpha=%.3f)\n", res.RouterBuildSeconds, res.Alpha)
	fmt.Printf("    tree sampling       %8.3fs (of which sparsifier %.3fs)\n",
		res.Phases.SampleSeconds, res.Phases.SparsifySeconds)
	fmt.Printf("    cut capacities      %8.3fs\n", res.Phases.CutCapSeconds)
	fmt.Printf("    alpha measurement   %8.3fs\n", res.Phases.AlphaSeconds)

	// Serving fingerprint on the -flow workload.
	pairs := flowBenchPairs(G.N(), cfg.Queries, cfg.Seed)
	for _, p := range pairs {
		fr, err := r.MaxFlow(p.S, p.T)
		if err != nil {
			return fmt.Errorf("fingerprint query %d-%d: %w", p.S, p.T, err)
		}
		res.ValueSum += fr.Value
		res.Iterations += fr.Iterations
	}
	fmt.Printf("  fingerprint           value sum %.6f (%d iterations)\n", res.ValueSum, res.Iterations)

	if err := runBuildBenchUpdate(r, G, cfg, opts, pairs, &res); err != nil {
		return err
	}

	if jsonPath != "" {
		doc, err := json.MarshalIndent(&res, "", "  ")
		if err != nil {
			return err
		}
		doc = append(doc, '\n')
		if err := os.WriteFile(jsonPath, doc, 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", jsonPath)
	}
	if buildCeiling > 0 && res.RouterBuildSeconds > buildCeiling {
		return fmt.Errorf("router build budget exceeded: %.3fs > ceiling %.3fs",
			res.RouterBuildSeconds, buildCeiling)
	}
	if updateCeiling > 0 && res.DirtyUpdateSeconds > updateCeiling {
		return fmt.Errorf("dirty update budget exceeded: %.5fs/edit > ceiling %.5fs",
			res.DirtyUpdateSeconds, updateCeiling)
	}
	return nil
}

// runBuildBenchUpdate measures the single-edge update ladder: the same
// seed-chosen halving edits applied one at a time through (1) the
// dirty-path refresh on the serving router, (2) the full per-tree
// re-sweep on an identically built router over a twin graph, and (3)
// one NewRouter on the final edited graph; plus the per-call cost of a
// no-op batch, a dirty-vs-full α bit-identity check, and a query
// cross-check of updated-vs-fresh values.
func runBuildBenchUpdate(r *distflow.Router, G *distflow.Graph, cfg FlowBenchConfig, opts distflow.Options, pairs []distflow.STPair, res *BuildBenchResult) error {
	// The edit script: halve seed-chosen edges, drawn as a prefix of a
	// seeded permutation so every pick is a distinct edge whose halving
	// actually changes the capacity — a repeat pick or a cap-1 edge
	// would coalesce to a no-op and deflate the timed averages the
	// -update-ceiling gate watches. Tiny or all-unit-capacity graphs
	// cap the script at what is available.
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	type edit struct {
		e   int
		cap int64
	}
	script := make([]edit, 0, 5)
	for _, e := range rng.Perm(G.M()) {
		if len(script) == cap(script) {
			break
		}
		_, _, c := G.EdgeEndpoints(e)
		if c <= 1 {
			continue
		}
		script = append(script, edit{e: e, cap: c / 2})
	}
	edits := len(script)
	if edits == 0 {
		return nil
	}

	// Twin graph + router for the full-sweep rung, built before any
	// edit lands on G.
	twin := distflow.NewGraph(G.N())
	for e := 0; e < G.M(); e++ {
		u, v, c := G.EdgeEndpoints(e)
		twin.AddEdge(u, v, c)
	}
	optsFull := opts
	optsFull.UpdateDirtyFraction = -1
	rFull, err := distflow.NewRouter(twin, optsFull)
	if err != nil {
		return fmt.Errorf("full-sweep twin router: %w", err)
	}

	var dirtyTotal, fullTotal float64
	for i, ed := range script {
		start := time.Now()
		ur, err := r.UpdateCapacities([]distflow.CapEdit{{Edge: ed.e, Cap: ed.cap}})
		if err != nil {
			return fmt.Errorf("dirty update %d (edge %d): %w", i, ed.e, err)
		}
		dirtyTotal += time.Since(start).Seconds()
		if ur.Rebuilt {
			fmt.Printf("  dirty update %d fell back to a rebuild (alpha %.3f)\n", i, ur.Alpha)
		} else if ur.SweptTrees > 0 {
			fmt.Printf("  dirty update %d re-swept %d/%d trees\n", i, ur.SweptTrees, ur.SweptTrees+ur.DirtyTrees)
		}
		start = time.Now()
		uf, err := rFull.UpdateCapacities([]distflow.CapEdit{{Edge: ed.e, Cap: ed.cap}})
		if err != nil {
			return fmt.Errorf("full update %d (edge %d): %w", i, ed.e, err)
		}
		fullTotal += time.Since(start).Seconds()
		if !ur.Rebuilt && !uf.Rebuilt && ur.Alpha != uf.Alpha {
			return fmt.Errorf("update %d: dirty-path alpha %v differs from full sweep %v",
				i, ur.Alpha, uf.Alpha)
		}
	}
	res.UpdateEdits = edits
	res.DirtyUpdateSeconds = dirtyTotal / float64(edits)
	res.FullUpdateSeconds = fullTotal / float64(edits)

	// No-op rung: a batch restating the current capacities must cost
	// nothing (early return, warm cache kept).
	last := script[edits-1]
	start := time.Now()
	if _, err := r.UpdateCapacities([]distflow.CapEdit{{Edge: last.e, Cap: last.cap}}); err != nil {
		return fmt.Errorf("no-op update: %w", err)
	}
	res.NoopUpdateSeconds = time.Since(start).Seconds()

	start = time.Now()
	fresh, err := distflow.NewRouter(G, opts)
	if err != nil {
		return fmt.Errorf("rebuild on edited graph: %w", err)
	}
	res.RebuildSeconds = time.Since(start).Seconds()
	if res.DirtyUpdateSeconds > 0 {
		res.UpdateSpeedupVsFull = res.FullUpdateSeconds / res.DirtyUpdateSeconds
		res.UpdateSpeedupVsRebuild = res.RebuildSeconds / res.DirtyUpdateSeconds
	}

	for _, p := range pairs {
		a, err := r.MaxFlow(p.S, p.T)
		if err != nil {
			return fmt.Errorf("updated query %d-%d: %w", p.S, p.T, err)
		}
		b, err := fresh.MaxFlow(p.S, p.T)
		if err != nil {
			return fmt.Errorf("fresh query %d-%d: %w", p.S, p.T, err)
		}
		if b.Value != 0 {
			if d := math.Abs(a.Value-b.Value) / math.Abs(b.Value); d > res.UpdateMaxValueErr {
				res.UpdateMaxValueErr = d
			}
		}
	}
	fmt.Printf("  update ladder         dirty %8.5fs/edit | full sweep %8.5fs/edit (%.0fx) | rebuild %.3fs (%.0fx)\n",
		res.DirtyUpdateSeconds, res.FullUpdateSeconds, res.UpdateSpeedupVsFull,
		res.RebuildSeconds, res.UpdateSpeedupVsRebuild)
	fmt.Printf("  no-op update          %8.6fs (early return; max value drift %.2f%%)\n",
		res.NoopUpdateSeconds, 100*res.UpdateMaxValueErr)
	return nil
}
