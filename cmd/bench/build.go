package main

// The -build mode benchmarks the Router construction path (the
// congestion-approximator build of Theorem 8.10) on the same workload
// as -flow: one large random graph, followed by the query stream issued
// once to fingerprint the build (value_sum must stay put when the build
// gets faster). The JSON document (schema 3) records a per-phase build
// breakdown — tree sampling, sparsifier, TreeFlow/cut-cap, α
// measurement — so future build regressions are attributable, plus the
// incremental-update benchmark: a single-edge Router.UpdateCapacities
// against a full rebuild.
//
// BENCH_build_pre.json in the repository root is the pre-CSR baseline;
// BENCH_build.json the optimized run.

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"distflow"
	"distflow/internal/graph"
)

// BuildBenchResult is the JSON document emitted by -build -json.
type BuildBenchResult struct {
	Schema     int             `json:"schema"`
	Mode       string          `json:"mode"`
	Config     FlowBenchConfig `json:"config"`
	GoMaxProcs int             `json:"go_max_procs"`
	NumCPU     int             `json:"num_cpu"`
	M          int             `json:"m"`

	// RouterBuildSeconds is the wall clock of one NewRouter call.
	RouterBuildSeconds float64 `json:"router_build_seconds"`
	Alpha              float64 `json:"alpha"`
	Trees              int     `json:"trees"`
	// Phases is the per-phase breakdown of the build (per-tree phases
	// are summed per-tree durations, i.e. CPU seconds).
	Phases distflow.BuildBreakdown `json:"build_phases"`

	// Serving fingerprint: the -flow query workload issued once,
	// sequentially, against the built router (warm cache disabled).
	// A build change that alters results moves ValueSum.
	ValueSum   float64 `json:"value_sum"`
	Iterations int     `json:"iterations"`

	// Incremental update benchmark: single-edge capacity edits applied
	// via Router.UpdateCapacities, against a full rebuild of the edited
	// graph. Zero until the update path exists.
	UpdateEdits            int     `json:"update_edits,omitempty"`
	UpdatePerEditSeconds   float64 `json:"update_per_edit_seconds,omitempty"`
	RebuildSeconds         float64 `json:"rebuild_seconds,omitempty"`
	UpdateSpeedupVsRebuild float64 `json:"update_speedup_vs_rebuild,omitempty"`
	// UpdateMaxValueErr is the largest relative deviation between the
	// updated router's query values and a freshly built router's on the
	// edited graph (both (1+ε)-approximate; the property test pins the
	// Dinic bound, this field just records the drift).
	UpdateMaxValueErr float64 `json:"update_max_value_err,omitempty"`
}

func runBuildBench(cfg FlowBenchConfig, jsonPath string, buildCeiling float64) error {
	if cfg.N < 2 {
		return fmt.Errorf("-build needs -n >= 2")
	}
	if cfg.Workers != 0 {
		distflow.SetParallelism(cfg.Workers)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gg := graph.CapUniform(graph.GNP(cfg.N, cfg.Degree/float64(cfg.N), rng), cfg.MaxCap, rng)
	G := distflow.NewGraph(gg.N())
	for _, e := range gg.Edges() {
		G.AddEdge(e.U, e.V, e.Cap)
	}
	res := BuildBenchResult{
		Schema:     benchSchema,
		Mode:       "build",
		Config:     cfg,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		M:          G.M(),
	}
	fmt.Printf("build bench: n=%d m=%d eps=%v workers=%d GOMAXPROCS=%d\n",
		G.N(), G.M(), cfg.Epsilon, cfg.Workers, res.GoMaxProcs)

	opts := distflow.Options{Epsilon: cfg.Epsilon, Seed: cfg.Seed, DisableWarmStart: true}
	start := time.Now()
	r, err := distflow.NewRouter(G, opts)
	if err != nil {
		return err
	}
	res.RouterBuildSeconds = time.Since(start).Seconds()
	res.Alpha = r.Alpha()
	res.Trees = r.Trees()
	res.Phases = r.BuildBreakdown()
	fmt.Printf("  router build          %8.3fs (alpha=%.3f)\n", res.RouterBuildSeconds, res.Alpha)
	fmt.Printf("    tree sampling       %8.3fs (of which sparsifier %.3fs)\n",
		res.Phases.SampleSeconds, res.Phases.SparsifySeconds)
	fmt.Printf("    cut capacities      %8.3fs\n", res.Phases.CutCapSeconds)
	fmt.Printf("    alpha measurement   %8.3fs\n", res.Phases.AlphaSeconds)

	// Serving fingerprint on the -flow workload.
	pairs := flowBenchPairs(G.N(), cfg.Queries, cfg.Seed)
	for _, p := range pairs {
		fr, err := r.MaxFlow(p.S, p.T)
		if err != nil {
			return fmt.Errorf("fingerprint query %d-%d: %w", p.S, p.T, err)
		}
		res.ValueSum += fr.Value
		res.Iterations += fr.Iterations
	}
	fmt.Printf("  fingerprint           value sum %.6f (%d iterations)\n", res.ValueSum, res.Iterations)

	if err := runBuildBenchUpdate(r, G, cfg, opts, pairs, &res); err != nil {
		return err
	}

	if jsonPath != "" {
		doc, err := json.MarshalIndent(&res, "", "  ")
		if err != nil {
			return err
		}
		doc = append(doc, '\n')
		if err := os.WriteFile(jsonPath, doc, 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", jsonPath)
	}
	if buildCeiling > 0 && res.RouterBuildSeconds > buildCeiling {
		return fmt.Errorf("router build budget exceeded: %.3fs > ceiling %.3fs",
			res.RouterBuildSeconds, buildCeiling)
	}
	return nil
}

// runBuildBenchUpdate measures single-edge Router.UpdateCapacities
// against a full rebuild on the edited graph: a handful of halving
// edits on seed-chosen edges, applied one at a time to the serving
// router, then one NewRouter on the final edited graph, then a query
// cross-check of updated-vs-fresh values.
func runBuildBenchUpdate(r *distflow.Router, G *distflow.Graph, cfg FlowBenchConfig, opts distflow.Options, pairs []distflow.STPair, res *BuildBenchResult) error {
	const edits = 5
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	var updateTotal float64
	for i := 0; i < edits; i++ {
		e := rng.Intn(G.M())
		_, _, c := G.EdgeEndpoints(e)
		newCap := c / 2
		if newCap < 1 {
			newCap = 1
		}
		start := time.Now()
		ur, err := r.UpdateCapacities([]distflow.CapEdit{{Edge: e, Cap: newCap}})
		if err != nil {
			return fmt.Errorf("update %d (edge %d): %w", i, e, err)
		}
		updateTotal += time.Since(start).Seconds()
		if ur.Rebuilt {
			fmt.Printf("  update %d fell back to a rebuild (alpha %.3f)\n", i, ur.Alpha)
		}
	}
	res.UpdateEdits = edits
	res.UpdatePerEditSeconds = updateTotal / edits

	start := time.Now()
	fresh, err := distflow.NewRouter(G, opts)
	if err != nil {
		return fmt.Errorf("rebuild on edited graph: %w", err)
	}
	res.RebuildSeconds = time.Since(start).Seconds()
	if res.UpdatePerEditSeconds > 0 {
		res.UpdateSpeedupVsRebuild = res.RebuildSeconds / res.UpdatePerEditSeconds
	}

	for _, p := range pairs {
		a, err := r.MaxFlow(p.S, p.T)
		if err != nil {
			return fmt.Errorf("updated query %d-%d: %w", p.S, p.T, err)
		}
		b, err := fresh.MaxFlow(p.S, p.T)
		if err != nil {
			return fmt.Errorf("fresh query %d-%d: %w", p.S, p.T, err)
		}
		if b.Value != 0 {
			if d := math.Abs(a.Value-b.Value) / math.Abs(b.Value); d > res.UpdateMaxValueErr {
				res.UpdateMaxValueErr = d
			}
		}
	}
	fmt.Printf("  incremental update    %8.5fs/edit vs rebuild %.3fs (%.0fx; max value drift %.2f%%)\n",
		res.UpdatePerEditSeconds, res.RebuildSeconds, res.UpdateSpeedupVsRebuild, 100*res.UpdateMaxValueErr)
	return nil
}
