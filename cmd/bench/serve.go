package main

// The -serve mode benchmarks the concurrent serving front-end
// (DESIGN.md §9): closed-loop workers drive max-flow queries through
// distflow.Server — admission control plus the coalescing batch
// scheduler — while topology churn batches publish new epochs
// underneath. The JSON document (schema 6) records throughput (qps)
// and latency quantiles (p50/p99) for the sustained-load phase — both
// hardware-dependent and info-only — plus the gated drift fingerprint:
// after the load quiesces, a fixed query workload on the served router
// vs a fresh rebuild on the same final graph (serve_max_value_err, the
// ≤ 0.1% acceptance gate).
//
// The bench disables the warm-start cache so the drift fingerprint is
// a pure function of (seed, churn schedule, final graph) — identical
// across worker counts and load timing. Coalescing does not depend on
// the cache: concurrent repeats of one (s,t) pair still share a single
// solve, which is what the coalesced/batch counters measure.
// BENCH_serve.json in the repository root is the recorded n=2500 run;
// the -serve-ceiling flag turns the p99 latency into a CI smoke gate.

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"distflow"
	"distflow/internal/graph"
)

// serveLoadWorkers is the closed-loop client count of the sustained
// load phase. Fixed (not GOMAXPROCS-derived) so the query schedule is
// comparable across runners; the solve parallelism underneath still
// scales with the machine.
const serveLoadWorkers = 8

// ServeBenchResult is the JSON document emitted by -serve -json.
type ServeBenchResult struct {
	Schema     int             `json:"schema"`
	Mode       string          `json:"mode"`
	Config     FlowBenchConfig `json:"config"`
	GoMaxProcs int             `json:"go_max_procs"`
	NumCPU     int             `json:"num_cpu"`
	M          int             `json:"m"`

	// RouterBuildSeconds is the wall clock of the initial NewRouter.
	RouterBuildSeconds float64 `json:"router_build_seconds"`

	// Sustained-load phase shape: closed-loop workers issuing
	// TotalQueries max-flow submissions, half of them drawn from a hot
	// pool of HotPairs pairs (the coalescing targets).
	LoadWorkers  int `json:"load_workers"`
	TotalQueries int `json:"serve_total_queries"`
	HotPairs     int `json:"serve_hot_pairs"`

	// Churn applied during the load: fixed batches through
	// Server.UpdateTopology, the same mixed batches the -churn mode
	// draws (edge deletes/inserts, vertex adds/removals).
	ChurnBatches     int `json:"churn_batches"`
	OpsEdgeDeletes   int `json:"ops_edge_deletes"`
	OpsEdgeInserts   int `json:"ops_edge_inserts"`
	OpsVertexAdds    int `json:"ops_vertex_adds"`
	OpsVertexRemoves int `json:"ops_vertex_removes"`

	// Throughput and latency of the load phase (wall clock,
	// hardware-dependent, never gated by benchdiff).
	LoadSeconds float64 `json:"serve_load_seconds"`
	QPS         float64 `json:"qps"`
	P50Seconds  float64 `json:"serve_p50_seconds"`
	P99Seconds  float64 `json:"serve_p99_seconds"`

	// Scheduler counters for the load phase.
	CoalescedQueries int64 `json:"serve_coalesced"`
	BatchSolves      int64 `json:"serve_batches"`
	RejectedQueries  int64 `json:"serve_rejected"`
	// QueryErrors counts load queries that failed because churn removed
	// their endpoint mid-load — expected under vertex churn, and the
	// only error class tolerated.
	QueryErrors int64  `json:"serve_query_errors"`
	FinalEpoch  uint64 `json:"serve_final_epoch"`

	// Final graph shape (deterministic: the churn schedule is a pure
	// function of the seed; the serving load never mutates the graph).
	FinalN     int `json:"final_n"`
	FinalLiveM int `json:"final_live_m"`
	FinalM     int `json:"final_m"`

	// Drift fingerprint after quiescing: the fixed query workload
	// through the (now idle) server vs a fresh rebuild on the final
	// graph. Both are (1+ε)-approximate; ServeMaxValueErr is the largest
	// relative per-query deviation (the ≤ 0.1% acceptance gate).
	ValueSumServed   float64 `json:"value_sum_served"`
	ValueSumRebuilt  float64 `json:"value_sum_rebuilt"`
	ServeMaxValueErr float64 `json:"serve_max_value_err"`
	Escalations      int     `json:"escalations"`
	Alpha            float64 `json:"alpha"`
}

func runServeBench(cfg FlowBenchConfig, jsonPath string, p99Ceiling float64) error {
	if cfg.N < 16 {
		return fmt.Errorf("-serve needs -n >= 16")
	}
	if cfg.Workers != 0 {
		distflow.SetParallelism(cfg.Workers)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gg := graph.CapUniform(graph.GNP(cfg.N, cfg.Degree/float64(cfg.N), rng), cfg.MaxCap, rng)
	G := distflow.NewGraph(gg.N())
	for _, e := range gg.Edges() {
		G.AddEdge(e.U, e.V, e.Cap)
	}
	res := ServeBenchResult{
		Schema:       benchSchema,
		Mode:         "serve",
		Config:       cfg,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		M:            G.M(),
		LoadWorkers:  serveLoadWorkers,
		TotalQueries: 12 * cfg.Queries,
		HotPairs:     cfg.Queries,
		// Same batch count and churn seed as the -churn mode, so the two
		// benches drive the router through an identical update sequence
		// and their drift fingerprints are directly comparable.
		ChurnBatches: 10,
	}
	fmt.Printf("serve bench: n=%d m=%d eps=%v workers=%d GOMAXPROCS=%d\n",
		G.N(), G.M(), cfg.Epsilon, cfg.Workers, res.GoMaxProcs)

	opts := distflow.Options{Epsilon: cfg.Epsilon, Seed: cfg.Seed, DisableWarmStart: true}
	start := time.Now()
	r, err := distflow.NewRouter(G, opts)
	if err != nil {
		return err
	}
	res.RouterBuildSeconds = time.Since(start).Seconds()
	fmt.Printf("  router build          %8.3fs (alpha=%.3f)\n", res.RouterBuildSeconds, r.Alpha())
	srv := distflow.NewServer(r, distflow.ServeOptions{})

	// Hot pairs: the coalescing targets every worker revisits.
	hot := churnBenchPairs(G, res.HotPairs, cfg.Seed+2)

	// Sustained load: closed-loop workers, fixed total query budget
	// handed out via a shared ticket counter, per-query latency
	// collected per worker and merged after the join.
	var (
		tickets   = make(chan struct{}, res.TotalQueries)
		latencies = make([][]float64, serveLoadWorkers)
		qErrs     = make([]int64, serveLoadWorkers)
		wg        sync.WaitGroup
	)
	for i := 0; i < res.TotalQueries; i++ {
		tickets <- struct{}{}
	}
	close(tickets)
	loadStart := time.Now()
	for w := 0; w < serveLoadWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(cfg.Seed + 100 + int64(w)))
			for range tickets {
				var p distflow.STPair
				if wrng.Intn(2) == 0 {
					p = hot[wrng.Intn(len(hot))]
				} else {
					p = distflow.STPair{S: wrng.Intn(cfg.N), T: wrng.Intn(cfg.N)}
					if p.S == p.T {
						p.T = (p.S + 1) % cfg.N
					}
				}
				qs := time.Now()
				_, err := srv.MaxFlow(p.S, p.T)
				latencies[w] = append(latencies[w], time.Since(qs).Seconds())
				if err != nil {
					// Vertex churn can invalidate a pair mid-load; that is
					// the serving reality this bench models, not a failure.
					qErrs[w]++
				}
			}
		}(w)
	}

	// Churn thread (this goroutine): the fixed batch schedule, spaced
	// across the load by the served-query counter. Timing does not
	// affect the final state — only the batch sequence does.
	churnRng := rand.New(rand.NewSource(cfg.Seed + 3))
	var churnOps ChurnBenchResult
	for b := 0; b < res.ChurnBatches; b++ {
		target := int64(res.TotalQueries * (b + 1) / (res.ChurnBatches + 1))
		for srv.Stats().Queries < target {
			time.Sleep(time.Millisecond)
		}
		batch := makeChurnBatch(G, churnRng, &churnOps)
		if _, err := srv.UpdateTopology(batch); err != nil {
			return fmt.Errorf("churn batch %d during load: %w", b, err)
		}
	}
	wg.Wait()
	res.LoadSeconds = time.Since(loadStart).Seconds()
	res.OpsEdgeDeletes = churnOps.OpsEdgeDeletes
	res.OpsEdgeInserts = churnOps.OpsEdgeInserts
	res.OpsVertexAdds = churnOps.OpsVertexAdds
	res.OpsVertexRemoves = churnOps.OpsVertexRemoves

	var all []float64
	for w := range latencies {
		all = append(all, latencies[w]...)
		res.QueryErrors += qErrs[w]
	}
	sort.Float64s(all)
	res.QPS = float64(res.TotalQueries) / res.LoadSeconds
	res.P50Seconds = quantile(all, 0.50)
	res.P99Seconds = quantile(all, 0.99)
	st := srv.Stats()
	res.CoalescedQueries = st.Coalesced
	res.BatchSolves = st.Batches
	res.RejectedQueries = st.Rejected
	res.FinalEpoch = st.EpochSeq
	res.FinalN = G.N()
	res.FinalM = G.M()
	res.FinalLiveM = G.LiveM()
	res.Alpha = r.Alpha()
	fmt.Printf("  sustained load        %d queries / %.3fs = %.1f qps (p50 %.1fms, p99 %.1fms)\n",
		res.TotalQueries, res.LoadSeconds, res.QPS, 1000*res.P50Seconds, 1000*res.P99Seconds)
	fmt.Printf("  scheduler             %d batches | %d coalesced | %d rejected | %d churn-invalidated | epoch %d\n",
		res.BatchSolves, res.CoalescedQueries, res.RejectedQueries, res.QueryErrors, res.FinalEpoch)

	// Drift: quiesced serving vs a fresh router on the final graph.
	fresh, err := distflow.NewRouter(G, opts)
	if err != nil {
		return fmt.Errorf("rebuild on churned graph: %w", err)
	}
	pairs := churnBenchPairs(G, cfg.Queries, cfg.Seed)
	for _, p := range pairs {
		a, err := srv.MaxFlow(p.S, p.T)
		if err != nil {
			return fmt.Errorf("served query %d-%d: %w", p.S, p.T, err)
		}
		b, err := fresh.MaxFlow(p.S, p.T)
		if err != nil {
			return fmt.Errorf("fresh query %d-%d: %w", p.S, p.T, err)
		}
		res.ValueSumServed += a.Value
		res.ValueSumRebuilt += b.Value
		res.Escalations += a.Escalations
		if b.Value != 0 {
			if d := math.Abs(a.Value-b.Value) / math.Abs(b.Value); d > res.ServeMaxValueErr {
				res.ServeMaxValueErr = d
			}
		}
	}
	fmt.Printf("  query drift           served %.6f vs rebuilt %.6f (max %.3f%%, %d escalations)\n",
		res.ValueSumServed, res.ValueSumRebuilt, 100*res.ServeMaxValueErr, res.Escalations)

	if jsonPath != "" {
		doc, err := json.MarshalIndent(&res, "", "  ")
		if err != nil {
			return err
		}
		doc = append(doc, '\n')
		if err := os.WriteFile(jsonPath, doc, 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", jsonPath)
	}
	if p99Ceiling > 0 && res.P99Seconds > p99Ceiling {
		return fmt.Errorf("serve latency budget exceeded: p99 %.3fs > ceiling %.3fs",
			res.P99Seconds, p99Ceiling)
	}
	return nil
}

// quantile returns the q-quantile of sorted (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
