package main

// The -serve mode benchmarks the concurrent serving front-end
// (DESIGN.md §9): closed-loop workers drive max-flow queries through
// distflow.Server — admission control plus the coalescing batch
// scheduler — while topology churn batches publish new epochs
// underneath. The JSON document (schema 8) records throughput (qps)
// and latency quantiles (p50/p99) for the sustained-load phase — both
// hardware-dependent and info-only — plus the gated drift fingerprint:
// after the load quiesces, a fixed query workload on the served router
// vs a fresh rebuild on the same final graph (serve_max_value_err, the
// ≤ 0.1% acceptance gate).
//
// Between load and drift sits the chaos phase (DESIGN.md §11,
// schema 8): deadline-bounded queries with caller cancellations, churn
// batches whose resamples fail on an injected deterministic schedule, a
// recovered solver panic, and an overload burst against a MaxInFlight=1
// server — all against the same router. The phase records the deadline
// hit rate, degraded-answer count and worst certificate bound, the
// per-cause rejection counters, and the two deterministic fault counts
// (serve_panics, serve_injected_update_failures — benchdiff-gated). It
// ends with a goroutine-settle check: leaked drain loops or parked
// waiters fail the bench.
//
// The bench disables the warm-start cache so the drift fingerprint is
// a pure function of (seed, churn schedule, final graph) — identical
// across worker counts and load timing. Coalescing does not depend on
// the cache: concurrent repeats of one (s,t) pair still share a single
// solve, which is what the coalesced/batch counters measure.
// BENCH_serve.json in the repository root is the recorded n=2500 run;
// the -serve-ceiling flag turns the p99 latency into a CI smoke gate.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"distflow"
	"distflow/internal/faultinject"
	"distflow/internal/graph"
)

// serveLoadWorkers is the closed-loop client count of the sustained
// load phase. Fixed (not GOMAXPROCS-derived) so the query schedule is
// comparable across runners; the solve parallelism underneath still
// scales with the machine.
const serveLoadWorkers = 8

// ServeBenchResult is the JSON document emitted by -serve -json.
type ServeBenchResult struct {
	Schema     int             `json:"schema"`
	Mode       string          `json:"mode"`
	Config     FlowBenchConfig `json:"config"`
	GoMaxProcs int             `json:"go_max_procs"`
	NumCPU     int             `json:"num_cpu"`
	M          int             `json:"m"`

	// RouterBuildSeconds is the wall clock of the initial NewRouter.
	RouterBuildSeconds float64 `json:"router_build_seconds"`

	// Sustained-load phase shape: closed-loop workers issuing
	// TotalQueries max-flow submissions, half of them drawn from a hot
	// pool of HotPairs pairs (the coalescing targets).
	LoadWorkers  int `json:"load_workers"`
	TotalQueries int `json:"serve_total_queries"`
	HotPairs     int `json:"serve_hot_pairs"`

	// Churn applied during the load: fixed batches through
	// Server.UpdateTopology, the same mixed batches the -churn mode
	// draws (edge deletes/inserts, vertex adds/removals).
	ChurnBatches     int `json:"churn_batches"`
	OpsEdgeDeletes   int `json:"ops_edge_deletes"`
	OpsEdgeInserts   int `json:"ops_edge_inserts"`
	OpsVertexAdds    int `json:"ops_vertex_adds"`
	OpsVertexRemoves int `json:"ops_vertex_removes"`

	// Throughput and latency of the load phase (wall clock,
	// hardware-dependent, never gated by benchdiff).
	LoadSeconds float64 `json:"serve_load_seconds"`
	QPS         float64 `json:"qps"`
	P50Seconds  float64 `json:"serve_p50_seconds"`
	P99Seconds  float64 `json:"serve_p99_seconds"`

	// Scheduler counters for the load phase.
	CoalescedQueries int64 `json:"serve_coalesced"`
	BatchSolves      int64 `json:"serve_batches"`
	RejectedQueries  int64 `json:"serve_rejected"`
	// QueryErrors counts load queries that failed because churn removed
	// their endpoint mid-load — expected under vertex churn, and the
	// only error class tolerated.
	QueryErrors int64  `json:"serve_query_errors"`
	FinalEpoch  uint64 `json:"serve_final_epoch"`

	// Chaos phase (schema 8). Deadline-bounded queries: hit rate and
	// chaos-phase latency are hardware-dependent (info-only, optionally
	// smoke-gated by -serve-deadline-ceiling); the two injected fault
	// counts are deterministic and benchdiff-gated.
	DeadlineSeconds float64 `json:"serve_deadline_seconds"`
	ChaosQueries    int     `json:"serve_chaos_queries"`
	ChaosSeconds    float64 `json:"serve_chaos_seconds"`
	ChaosP99Seconds float64 `json:"serve_chaos_p99_seconds"`
	// DeadlineHitRate is the fraction of deadline-bounded chaos queries
	// that delivered an answer (full or degraded) before their deadline.
	DeadlineHitRate float64 `json:"serve_deadline_hit_rate"`
	// Degraded answers delivered during chaos, and the worst measured
	// certificate bound among them (Result.CertBound: Value ≥
	// OPT/CertBound).
	DegradedAnswers      int64   `json:"serve_degraded"`
	DegradedMaxCertBound float64 `json:"serve_degraded_max_cert_bound"`
	// Per-cause rejection/abandon counters over the chaos phase.
	CanceledQueries  int64 `json:"serve_canceled"`
	RejectedOverload int64 `json:"serve_rejected_overload"`
	RejectedDeadline int64 `json:"serve_rejected_deadline"`
	// Panics counts recovered solve panics (deterministically 1: the
	// panic probe fires once, Limit=1). InjectedUpdateFailures counts
	// chaos churn batches dropped by the injected resample failure
	// (deterministic: Every=3 over ChaosChurnBatches hits).
	Panics                 int64 `json:"serve_panics"`
	ChaosChurnBatches      int   `json:"serve_chaos_churn_batches"`
	InjectedUpdateFailures int64 `json:"serve_injected_update_failures"`

	// Final graph shape (deterministic: the churn schedule is a pure
	// function of the seed; the serving load never mutates the graph).
	FinalN     int `json:"final_n"`
	FinalLiveM int `json:"final_live_m"`
	FinalM     int `json:"final_m"`

	// Drift fingerprint after quiescing: the fixed query workload
	// through the (now idle) server vs a fresh rebuild on the final
	// graph. Both are (1+ε)-approximate; ServeMaxValueErr is the largest
	// relative per-query deviation (the ≤ 0.1% acceptance gate).
	ValueSumServed   float64 `json:"value_sum_served"`
	ValueSumRebuilt  float64 `json:"value_sum_rebuilt"`
	ServeMaxValueErr float64 `json:"serve_max_value_err"`
	Escalations      int     `json:"escalations"`
	Alpha            float64 `json:"alpha"`
}

func runServeBench(cfg FlowBenchConfig, jsonPath string, p99Ceiling float64, deadline time.Duration, deadlineCeiling float64) error {
	if cfg.N < 16 {
		return fmt.Errorf("-serve needs -n >= 16")
	}
	if cfg.Workers != 0 {
		distflow.SetParallelism(cfg.Workers)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gg := graph.CapUniform(graph.GNP(cfg.N, cfg.Degree/float64(cfg.N), rng), cfg.MaxCap, rng)
	G := distflow.NewGraph(gg.N())
	for _, e := range gg.Edges() {
		G.AddEdge(e.U, e.V, e.Cap)
	}
	res := ServeBenchResult{
		Schema:       benchSchema,
		Mode:         "serve",
		Config:       cfg,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		M:            G.M(),
		LoadWorkers:  serveLoadWorkers,
		TotalQueries: 12 * cfg.Queries,
		HotPairs:     cfg.Queries,
		// Same batch count and churn seed as the -churn mode, so the two
		// benches drive the router through an identical update sequence
		// and their drift fingerprints are directly comparable.
		ChurnBatches: 10,
	}
	fmt.Printf("serve bench: n=%d m=%d eps=%v workers=%d GOMAXPROCS=%d\n",
		G.N(), G.M(), cfg.Epsilon, cfg.Workers, res.GoMaxProcs)

	opts := distflow.Options{Epsilon: cfg.Epsilon, Seed: cfg.Seed, DisableWarmStart: true}
	start := time.Now()
	r, err := distflow.NewRouter(G, opts)
	if err != nil {
		return err
	}
	res.RouterBuildSeconds = time.Since(start).Seconds()
	fmt.Printf("  router build          %8.3fs (alpha=%.3f)\n", res.RouterBuildSeconds, r.Alpha())
	srv := distflow.NewServer(r, distflow.ServeOptions{})

	// Hot pairs: the coalescing targets every worker revisits.
	hot := churnBenchPairs(G, res.HotPairs, cfg.Seed+2)

	// Sustained load: closed-loop workers, fixed total query budget
	// handed out via a shared ticket counter, per-query latency
	// collected per worker and merged after the join.
	var (
		tickets   = make(chan struct{}, res.TotalQueries)
		latencies = make([][]float64, serveLoadWorkers)
		qErrs     = make([]int64, serveLoadWorkers)
		wg        sync.WaitGroup
	)
	for i := 0; i < res.TotalQueries; i++ {
		tickets <- struct{}{}
	}
	close(tickets)
	loadStart := time.Now()
	for w := 0; w < serveLoadWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(cfg.Seed + 100 + int64(w)))
			for range tickets {
				var p distflow.STPair
				if wrng.Intn(2) == 0 {
					p = hot[wrng.Intn(len(hot))]
				} else {
					p = distflow.STPair{S: wrng.Intn(cfg.N), T: wrng.Intn(cfg.N)}
					if p.S == p.T {
						p.T = (p.S + 1) % cfg.N
					}
				}
				qs := time.Now()
				_, err := srv.MaxFlow(p.S, p.T)
				latencies[w] = append(latencies[w], time.Since(qs).Seconds())
				if err != nil {
					// Vertex churn can invalidate a pair mid-load; that is
					// the serving reality this bench models, not a failure.
					qErrs[w]++
				}
			}
		}(w)
	}

	// Churn thread (this goroutine): the fixed batch schedule, spaced
	// across the load by the served-query counter. Timing does not
	// affect the final state — only the batch sequence does.
	churnRng := rand.New(rand.NewSource(cfg.Seed + 3))
	var churnOps ChurnBenchResult
	for b := 0; b < res.ChurnBatches; b++ {
		target := int64(res.TotalQueries * (b + 1) / (res.ChurnBatches + 1))
		for srv.Stats().Queries < target {
			time.Sleep(time.Millisecond)
		}
		batch := makeChurnBatch(G, churnRng, &churnOps)
		if _, err := srv.UpdateTopology(batch); err != nil {
			return fmt.Errorf("churn batch %d during load: %w", b, err)
		}
	}
	wg.Wait()
	res.LoadSeconds = time.Since(loadStart).Seconds()
	res.OpsEdgeDeletes = churnOps.OpsEdgeDeletes
	res.OpsEdgeInserts = churnOps.OpsEdgeInserts
	res.OpsVertexAdds = churnOps.OpsVertexAdds
	res.OpsVertexRemoves = churnOps.OpsVertexRemoves

	var all []float64
	for w := range latencies {
		all = append(all, latencies[w]...)
		res.QueryErrors += qErrs[w]
	}
	sort.Float64s(all)
	res.QPS = float64(res.TotalQueries) / res.LoadSeconds
	res.P50Seconds = quantile(all, 0.50)
	res.P99Seconds = quantile(all, 0.99)
	st := srv.Stats()
	res.CoalescedQueries = st.Coalesced
	res.BatchSolves = st.Batches
	res.RejectedQueries = st.Rejected
	res.FinalEpoch = st.EpochSeq
	res.FinalN = G.N()
	res.FinalM = G.M()
	res.FinalLiveM = G.LiveM()
	res.Alpha = r.Alpha()
	fmt.Printf("  sustained load        %d queries / %.3fs = %.1f qps (p50 %.1fms, p99 %.1fms)\n",
		res.TotalQueries, res.LoadSeconds, res.QPS, 1000*res.P50Seconds, 1000*res.P99Seconds)
	fmt.Printf("  scheduler             %d batches | %d coalesced | %d rejected | %d churn-invalidated | epoch %d\n",
		res.BatchSolves, res.CoalescedQueries, res.RejectedQueries, res.QueryErrors, res.FinalEpoch)

	if err := runServeChaos(&res, cfg, srv, r, G, deadline, deadlineCeiling); err != nil {
		return err
	}

	// Drift: quiesced serving vs a fresh router on the final graph.
	fresh, err := distflow.NewRouter(G, opts)
	if err != nil {
		return fmt.Errorf("rebuild on churned graph: %w", err)
	}
	pairs := churnBenchPairs(G, cfg.Queries, cfg.Seed)
	for _, p := range pairs {
		a, err := srv.MaxFlow(p.S, p.T)
		if err != nil {
			return fmt.Errorf("served query %d-%d: %w", p.S, p.T, err)
		}
		b, err := fresh.MaxFlow(p.S, p.T)
		if err != nil {
			return fmt.Errorf("fresh query %d-%d: %w", p.S, p.T, err)
		}
		res.ValueSumServed += a.Value
		res.ValueSumRebuilt += b.Value
		res.Escalations += a.Escalations
		if b.Value != 0 {
			if d := math.Abs(a.Value-b.Value) / math.Abs(b.Value); d > res.ServeMaxValueErr {
				res.ServeMaxValueErr = d
			}
		}
	}
	fmt.Printf("  query drift           served %.6f vs rebuilt %.6f (max %.3f%%, %d escalations)\n",
		res.ValueSumServed, res.ValueSumRebuilt, 100*res.ServeMaxValueErr, res.Escalations)

	if jsonPath != "" {
		doc, err := json.MarshalIndent(&res, "", "  ")
		if err != nil {
			return err
		}
		doc = append(doc, '\n')
		if err := os.WriteFile(jsonPath, doc, 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", jsonPath)
	}
	if p99Ceiling > 0 && res.P99Seconds > p99Ceiling {
		return fmt.Errorf("serve latency budget exceeded: p99 %.3fs > ceiling %.3fs",
			res.P99Seconds, p99Ceiling)
	}
	return nil
}

// serveChaosChurnBatches is the fixed topology batch count of the
// chaos phase; with the resample fault armed at Every=3 the batches at
// hits 1 and 4 fail deterministically (2 injected failures).
const serveChaosChurnBatches = 6

// runServeChaos is the chaos phase between load and drift: it probes
// the panic boundary once, then runs deadline-bounded queries (with a
// deterministic fraction cancelled by their callers) concurrently with
// churn whose resamples fail on an injected schedule, bursts an
// overloaded server, and finally checks that every goroutine the phase
// started has exited. Faults are disarmed before returning so the
// drift phase measures the clean path.
func runServeChaos(res *ServeBenchResult, cfg FlowBenchConfig, srv *distflow.Server,
	r *distflow.Router, G *distflow.Graph, deadline time.Duration, deadlineCeiling float64) error {
	if deadline <= 0 {
		deadline = 750 * time.Millisecond
	}
	defer faultinject.Reset()
	res.DeadlineSeconds = deadline.Seconds()
	res.ChaosQueries = 16 * cfg.Queries
	res.ChaosChurnBatches = serveChaosChurnBatches
	st0 := srv.Stats()
	baseline := runtime.NumGoroutine()
	chaosStart := time.Now()

	// Panic probe: exactly one batch solve panics (Limit=1) and is
	// recovered at the server boundary; the query fails, serving
	// continues. Sequential, so the count is deterministic.
	probe := churnBenchPairs(G, 1, cfg.Seed+4)[0]
	disarmPanic := faultinject.Arm(distflow.FaultSiteServeSolve, faultinject.Fault{Panic: true, Limit: 1})
	if _, err := srv.MaxFlow(probe.S, probe.T); err == nil {
		disarmPanic()
		return fmt.Errorf("panic probe: injected panic did not fail the query")
	}
	disarmPanic()
	if _, err := srv.MaxFlow(probe.S, probe.T); err != nil {
		return fmt.Errorf("query after recovered panic: %w", err)
	}

	// Deadline-bounded load with caller cancellations: every 5th query
	// is abandoned at deadline/4.
	hot := churnBenchPairs(G, cfg.Queries, cfg.Seed+5)
	var (
		tickets   = make(chan int, res.ChaosQueries)
		wg        sync.WaitGroup
		delivered atomic.Int64
		degraded  atomic.Int64
		maxCert   = make([]float64, serveLoadWorkers)
		lats      = make([][]float64, serveLoadWorkers)
	)
	for i := 0; i < res.ChaosQueries; i++ {
		tickets <- i
	}
	close(tickets)
	for w := 0; w < serveLoadWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(cfg.Seed + 300 + int64(w)))
			for i := range tickets {
				p := hot[wrng.Intn(len(hot))]
				ctx, cancel := context.WithTimeout(context.Background(), deadline)
				var timer *time.Timer
				if i%5 == 4 {
					timer = time.AfterFunc(deadline/4, cancel)
				}
				qs := time.Now()
				qres, err := srv.MaxFlowCtx(ctx, p.S, p.T)
				lats[w] = append(lats[w], time.Since(qs).Seconds())
				cancel()
				if timer != nil {
					timer.Stop()
				}
				if err == nil {
					delivered.Add(1)
					if qres.Degraded {
						degraded.Add(1)
						if qres.CertBound > maxCert[w] {
							maxCert[w] = qres.CertBound
						}
					}
				}
			}
		}(w)
	}

	// Chaos churn (this goroutine), spaced across the chaos queries:
	// every third resample attempt fails by injection, exercising the
	// drop-the-fork path under live deadline queries.
	disarmTopo := faultinject.Arm(distflow.FaultSiteTopoResample, faultinject.Fault{Every: 3})
	churnRng := rand.New(rand.NewSource(cfg.Seed + 7))
	var chaosOps ChurnBenchResult
	for b := 0; b < res.ChaosChurnBatches; b++ {
		target := st0.Queries + int64(res.ChaosQueries*(b+1)/(res.ChaosChurnBatches+1))
		for srv.Stats().Queries < target {
			time.Sleep(time.Millisecond)
		}
		batch := makeChurnBatch(G, churnRng, &chaosOps)
		if _, err := srv.UpdateTopology(batch); err != nil {
			if !errors.Is(err, faultinject.ErrInjected) {
				disarmTopo()
				return fmt.Errorf("chaos churn batch %d: %w", b, err)
			}
			res.InjectedUpdateFailures++
		}
	}
	wg.Wait()
	disarmTopo()

	// Overload burst: a MaxInFlight=1 server on the same router, hit by
	// concurrent submissions — the surplus must shed fast with
	// ErrOverloaded, never queue. (The count is scheduling-dependent:
	// info-only.)
	srv2 := distflow.NewServer(r, distflow.ServeOptions{MaxInFlight: 1})
	var burstWG sync.WaitGroup
	for w := 0; w < serveLoadWorkers; w++ {
		burstWG.Add(1)
		go func() {
			defer burstWG.Done()
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			defer cancel()
			srv2.MaxFlowCtx(ctx, probe.S, probe.T) //nolint:errcheck — overload errors are the point
		}()
	}
	burstWG.Wait()
	res.ChaosSeconds = time.Since(chaosStart).Seconds()

	var all []float64
	for w := range lats {
		all = append(all, lats[w]...)
		if maxCert[w] > res.DegradedMaxCertBound {
			res.DegradedMaxCertBound = maxCert[w]
		}
	}
	sort.Float64s(all)
	res.ChaosP99Seconds = quantile(all, 0.99)
	res.DeadlineHitRate = float64(delivered.Load()) / float64(res.ChaosQueries)
	res.DegradedAnswers = degraded.Load()
	st1 := srv.Stats()
	st2 := srv2.Stats()
	res.CanceledQueries = st1.Canceled - st0.Canceled
	res.RejectedOverload = st1.RejectedOverload - st0.RejectedOverload + st2.RejectedOverload
	res.RejectedDeadline = st1.RejectedDeadline - st0.RejectedDeadline + st2.RejectedDeadline
	res.Panics = st1.Panics - st0.Panics + st2.Panics

	// Post-chaos graph is what the drift phase rebuilds against;
	// re-snapshot the final-shape fields the load phase recorded.
	res.FinalEpoch = st1.EpochSeq
	res.FinalN = G.N()
	res.FinalM = G.M()
	res.FinalLiveM = G.LiveM()
	res.Alpha = r.Alpha()

	// Settle: every goroutine the chaos phase started (drain loops,
	// abandoned waiters' deliveries, cancel timers) must exit — a leak
	// here is a hung query and fails the bench.
	settleBy := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(settleBy) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		return fmt.Errorf("goroutine leak after chaos phase: %d > baseline %d", n, baseline)
	}

	fmt.Printf("  chaos                 %d queries / %.3fs (p99 %.1fms, deadline %.0fms hit %.1f%%) | %d degraded (cert ≤ %.2f) | %d canceled\n",
		res.ChaosQueries, res.ChaosSeconds, 1000*res.ChaosP99Seconds, 1000*res.DeadlineSeconds,
		100*res.DeadlineHitRate, res.DegradedAnswers, res.DegradedMaxCertBound, res.CanceledQueries)
	fmt.Printf("  chaos faults          %d/%d churn batches dropped (injected) | %d panic recovered | %d overload-shed | %d deadline-rejected\n",
		res.InjectedUpdateFailures, res.ChaosChurnBatches, res.Panics, res.RejectedOverload, res.RejectedDeadline)

	if res.Panics != 1 {
		return fmt.Errorf("chaos panic count = %d, want exactly 1", res.Panics)
	}
	if want := int64((res.ChaosChurnBatches + 2) / 3); res.InjectedUpdateFailures != want {
		return fmt.Errorf("injected update failures = %d, want %d (Every=3 over %d batches)",
			res.InjectedUpdateFailures, want, res.ChaosChurnBatches)
	}
	if deadlineCeiling > 0 && res.ChaosP99Seconds > deadlineCeiling*deadline.Seconds() {
		return fmt.Errorf("chaos latency budget exceeded: p99 %.3fs > %.1f × deadline %.3fs",
			res.ChaosP99Seconds, deadlineCeiling, deadline.Seconds())
	}
	faultinject.Reset()
	return nil
}

// quantile returns the q-quantile of sorted (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
