package main

// The -scale mode climbs the instance ladder n = 10⁴, 10⁵, 10⁶ (capped
// by -scale-max-n) and measures every pipeline phase — streamed
// generation to disk, streamed load back, router build with its
// per-phase breakdown — in both wall time and memory. Memory is
// accounted two ways per phase: the retained HeapAlloc delta (GC before
// and after the phase, so the delta is what the phase keeps alive) and
// the transient peak (a 25 ms sampler plus the end-of-phase reading, so
// build-time scratch shows up even when it is freed before the phase
// ends). The ladder is what exposed the three PR-7 costs: the SplitGraph
// race heap (gated here via the heap-vs-bucket A/B rung), duplicated
// §8.1 multiplicity edges, and eager LCA tables.
//
// The JSON document (schema 7) is a flat map so cmd/benchdiff can gate
// individual rungs: per-rung keys carry an `_n{n}` suffix
// (alpha_n10000, build_seconds_n100000, ...). Rungs beyond -scale-max-n
// are absent, and benchdiff skips gates whose keys are absent — the
// committed BENCH_scale.json is recorded at -scale-max-n 100000 so CI
// compares like with like, while the n=10⁶ evidence run lives in
// BENCH_scale_1e6.json, ungated.
//
// Wall-clock and memory keys are never gated (hardware-dependent); the
// gated keys are the hardware-independent fingerprints: m, alpha,
// trees per rung, and value_sum/iterations at the smallest rung (the
// only rung cheap enough to query).
//
// -scale-mem-ceiling both gates the measured peak and pins the
// runtime's soft memory limit to the same value (see runScaleBench):
// the ladder showed the peak is set by the GC pacer doubling a lean
// live set, not by the live set itself, so the budget has to be handed
// to the pacer to be meaningful.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"time"

	"distflow"
	"distflow/internal/graph"
)

// scaleRungs is the full ladder; -scale-max-n trims it.
var scaleRungs = []int{10_000, 100_000, 1_000_000}

// scaleABMaxN caps the heap-vs-bucket race A/B: above this the heap
// rung would double an already long build for a ratio the 10⁵ rung
// measures just as well.
const scaleABMaxN = 100_000

// phaseCost is one phase's wall time and memory accounting.
type phaseCost struct {
	seconds float64
	// deltaMB is the retained HeapAlloc growth across the phase
	// (runtime.GC() runs before and after, so transient scratch is
	// excluded — this is what the phase keeps alive).
	deltaMB float64
	// peakMB is the highest HeapAlloc observed during the phase (25 ms
	// sampler + end-of-phase reading — transient scratch included).
	peakMB float64
}

// measurePhase runs fn under the time/memory instrumentation.
func measurePhase(fn func() error) (phaseCost, error) {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	peak := before.HeapAlloc
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
	}()
	start := time.Now()
	err := fn()
	sec := time.Since(start).Seconds()
	close(stop)
	<-done
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > peak {
		peak = after.HeapAlloc
	}
	runtime.GC()
	var retained runtime.MemStats
	runtime.ReadMemStats(&retained)
	return phaseCost{
		seconds: sec,
		deltaMB: (float64(retained.HeapAlloc) - float64(before.HeapAlloc)) / (1 << 20),
		peakMB:  float64(peak) / (1 << 20),
	}, err
}

func runScaleBench(cfg FlowBenchConfig, jsonPath string, maxN int, memCeilingMB float64) error {
	if cfg.Workers != 0 {
		distflow.SetParallelism(cfg.Workers)
	}
	if memCeilingMB > 0 {
		// The ceiling is enforced by the GC pacer, not just checked after
		// the fact. Under the default GOGC=100 the heap runs to 2× the
		// live set before a collection triggers, so a build whose pooled
		// scratch keeps ~4.7 GB live at n=10⁶ peaks near 9.4 GB while
		// retaining half that. Pinning the soft memory limit (GOMEMLIMIT)
		// to the ceiling makes the pacer collect at the budget instead of
		// at 2×live; the cost is extra GC cycles only in the window where
		// 2×live would exceed the ceiling.
		prev := debug.SetMemoryLimit(int64(memCeilingMB) * (1 << 20))
		defer debug.SetMemoryLimit(prev)
	}
	rungs := make([]int, 0, len(scaleRungs))
	for _, n := range scaleRungs {
		if n <= maxN {
			rungs = append(rungs, n)
		}
	}
	if len(rungs) == 0 {
		return fmt.Errorf("-scale-max-n %d is below the smallest rung (%d)", maxN, scaleRungs[0])
	}
	// The config block names the largest rung actually climbed, so
	// benchdiff's same-workload check distinguishes a max-n 10⁵ document
	// from a max-n 10⁶ one.
	cfg.N = rungs[len(rungs)-1]
	doc := map[string]any{
		"schema":       benchSchema,
		"mode":         "scale",
		"config":       cfg,
		"go_max_procs": runtime.GOMAXPROCS(0),
		"num_cpu":      runtime.NumCPU(),
	}
	fmt.Printf("scale bench: rungs=%v deg=%v eps=%v workers=%d GOMAXPROCS=%d\n",
		rungs, cfg.Degree, cfg.Epsilon, cfg.Workers, runtime.GOMAXPROCS(0))

	dir, err := os.MkdirTemp("", "distflow-scale")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	maxPeakMB := 0.0
	note := func(key string, n int, v float64) {
		doc[fmt.Sprintf("%s_n%d", key, n)] = v
	}
	for i, n := range rungs {
		path := filepath.Join(dir, fmt.Sprintf("g%d.txt", n))
		p := cfg.Degree / float64(n)

		// Phase 1: streamed generation straight to disk — the edge list
		// never materializes (graph.StreamGNP).
		gen, err := measurePhase(func() error {
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := graph.StreamGNP(f, n, p, cfg.MaxCap, cfg.Seed); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		})
		if err != nil {
			return fmt.Errorf("n=%d gen: %w", n, err)
		}

		// Phase 2: streamed load back plus the conversion into the
		// solver graph (the loaded graph, not the loader, should be the
		// retained cost here).
		var G *distflow.Graph
		var m int
		load, err := measurePhase(func() error {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			defer f.Close()
			gg, err := graph.Read(f)
			if err != nil {
				return err
			}
			m = gg.M()
			G = distflow.NewGraph(gg.N())
			for _, e := range gg.Edges() {
				G.AddEdge(e.U, e.V, e.Cap)
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("n=%d load: %w", n, err)
		}

		// Phase 3: the router build, with the per-phase breakdown
		// (sample/race/sparsify/cutcap/alpha) attributing the cost.
		opts := distflow.Options{Epsilon: cfg.Epsilon, Seed: cfg.Seed, DisableWarmStart: true}
		var r *distflow.Router
		build, err := measurePhase(func() error {
			var err error
			r, err = distflow.NewRouter(G, opts)
			return err
		})
		if err != nil {
			return fmt.Errorf("n=%d build: %w", n, err)
		}
		ph := r.BuildBreakdown()

		note("m", n, float64(m))
		note("gen_seconds", n, gen.seconds)
		note("gen_peak_mb", n, gen.peakMB)
		note("load_seconds", n, load.seconds)
		note("load_heap_mb", n, load.deltaMB)
		note("load_peak_mb", n, load.peakMB)
		note("build_seconds", n, build.seconds)
		note("build_heap_mb", n, build.deltaMB)
		note("build_peak_mb", n, build.peakMB)
		note("sample_seconds", n, ph.SampleSeconds)
		note("sparsify_seconds", n, ph.SparsifySeconds)
		note("race_seconds", n, ph.RaceSeconds)
		note("cutcap_seconds", n, ph.CutCapSeconds)
		note("alpha_seconds", n, ph.AlphaSeconds)
		note("alpha", n, r.Alpha())
		note("trees", n, float64(r.Trees()))
		for _, c := range []phaseCost{gen, load, build} {
			if c.peakMB > maxPeakMB {
				maxPeakMB = c.peakMB
			}
		}
		fmt.Printf("  n=%-8d m=%-9d gen %7.2fs | load %7.2fs (%7.1f MB) | build %8.2fs (peak %8.1f MB, alpha=%.3f, trees=%d)\n",
			n, m, gen.seconds, load.seconds, load.deltaMB, build.seconds, build.peakMB, r.Alpha(), r.Trees())
		fmt.Printf("    build phases: sample %.2fs (race %.2fs, sparsify %.2fs) | cutcap %.2fs | alpha %.2fs\n",
			ph.SampleSeconds, ph.RaceSeconds, ph.SparsifySeconds, ph.CutCapSeconds, ph.AlphaSeconds)

		// Heap-race A/B: rebuild with the version-1 heap order and
		// compare the race phase. Wall-clock ratio, so reported but
		// never gated.
		if n <= scaleABMaxN {
			optsHeap := opts
			optsHeap.HeapRace = true
			rh, err := distflow.NewRouter(G, optsHeap)
			if err != nil {
				return fmt.Errorf("n=%d heap-race build: %w", n, err)
			}
			heapRace := rh.BuildBreakdown().RaceSeconds
			note("race_heap_seconds", n, heapRace)
			if ph.RaceSeconds > 0 {
				note("race_speedup", n, heapRace/ph.RaceSeconds)
				fmt.Printf("    race A/B: bucket %.3fs vs heap %.3fs (%.2fx)\n",
					ph.RaceSeconds, heapRace, heapRace/ph.RaceSeconds)
			}
		}

		// Serving fingerprint at the smallest rung only — queries at 10⁵
		// and up would dwarf the build the ladder is here to measure.
		if i == 0 {
			valueSum := 0.0
			iters := 0
			for _, pr := range flowBenchPairs(G.N(), cfg.Queries, cfg.Seed) {
				fr, err := r.MaxFlow(pr.S, pr.T)
				if err != nil {
					return fmt.Errorf("n=%d fingerprint query %d-%d: %w", n, pr.S, pr.T, err)
				}
				valueSum += fr.Value
				iters += fr.Iterations
			}
			note("value_sum", n, valueSum)
			note("iterations", n, float64(iters))
			fmt.Printf("    fingerprint: value sum %.6f (%d iterations)\n", valueSum, iters)
		}

		// Drop the rung's graph and router before the next rung's GC
		// baseline.
		r, G = nil, nil
		_ = r
		_ = G
		if err := os.Remove(path); err != nil {
			return err
		}
	}
	doc["peak_heap_mb"] = maxPeakMB

	if jsonPath != "" {
		out, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		out = append(out, '\n')
		if err := os.WriteFile(jsonPath, out, 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", jsonPath)
	}
	if memCeilingMB > 0 && maxPeakMB > memCeilingMB {
		return fmt.Errorf("peak heap budget exceeded: %.1f MB > ceiling %.1f MB", maxPeakMB, memCeilingMB)
	}
	fmt.Printf("  peak heap across ladder: %.1f MB\n", maxPeakMB)
	return nil
}
