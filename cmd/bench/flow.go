package main

// The -flow mode benchmarks the end-to-end solver on a single large
// random graph: congestion-approximator construction, then a stream of
// max-flow queries issued one at a time (the sequential reference) and,
// when the batch API is enabled, the same queries through
// Router.MaxFlowBatch. Results can be written as JSON (-json) so that
// successive runs are diffable; BENCH_seed.json in the repository root
// is the pre-parallel-core baseline recorded with this command.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"distflow"
	"distflow/internal/graph"
)

// FlowBenchConfig parameterizes one -flow run.
type FlowBenchConfig struct {
	N       int     `json:"n"`
	Degree  float64 `json:"degree"`
	MaxCap  int64   `json:"max_cap"`
	Seed    int64   `json:"seed"`
	Queries int     `json:"queries"`
	Epsilon float64 `json:"epsilon"`
	Workers int     `json:"workers"`
}

// FlowBenchResult is the JSON document emitted by -flow -json.
type FlowBenchResult struct {
	Config     FlowBenchConfig `json:"config"`
	GoMaxProcs int             `json:"go_max_procs"`
	NumCPU     int             `json:"num_cpu"`
	M          int             `json:"m"`

	RouterBuildSeconds float64 `json:"router_build_seconds"`
	// SequentialSeconds is the wall time of issuing every query
	// one-at-a-time on a single goroutine.
	SequentialSeconds float64 `json:"sequential_seconds"`
	// BatchSeconds is the wall time of the same queries through
	// Router.MaxFlowBatch (0 when the run predates the batch API).
	BatchSeconds float64 `json:"batch_seconds,omitempty"`
	// SpeedupBatch = SequentialSeconds / BatchSeconds.
	SpeedupBatch float64 `json:"speedup_batch_vs_sequential,omitempty"`

	// ValueSum fingerprints the results: the sum of all query flow
	// values. Runs that must agree bit-for-bit can diff this field.
	ValueSum      float64 `json:"value_sum"`
	BatchValueSum float64 `json:"batch_value_sum,omitempty"`
	Iterations    int     `json:"iterations"`
}

func runFlowBench(cfg FlowBenchConfig, jsonPath string) error {
	if cfg.N < 2 {
		return fmt.Errorf("-flow needs -n >= 2 (no s-t pair exists on %d vertices)", cfg.N)
	}
	if cfg.Queries < 1 {
		return fmt.Errorf("-flow needs -queries >= 1")
	}
	if cfg.Workers != 0 {
		distflow.SetParallelism(cfg.Workers)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gg := graph.CapUniform(graph.GNP(cfg.N, cfg.Degree/float64(cfg.N), rng), cfg.MaxCap, rng)
	G := distflow.NewGraph(gg.N())
	for _, e := range gg.Edges() {
		G.AddEdge(e.U, e.V, e.Cap)
	}
	res := FlowBenchResult{
		Config:     cfg,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		M:          G.M(),
	}
	fmt.Printf("flow bench: n=%d m=%d queries=%d eps=%v workers=%d GOMAXPROCS=%d\n",
		G.N(), G.M(), cfg.Queries, cfg.Epsilon, cfg.Workers, res.GoMaxProcs)

	start := time.Now()
	r, err := distflow.NewRouter(G, distflow.Options{Epsilon: cfg.Epsilon, Seed: cfg.Seed})
	if err != nil {
		return err
	}
	res.RouterBuildSeconds = time.Since(start).Seconds()
	fmt.Printf("  router build          %8.3fs (alpha=%.3f)\n", res.RouterBuildSeconds, r.Alpha())

	pairs := flowBenchPairs(G.N(), cfg.Queries, cfg.Seed)

	start = time.Now()
	for _, p := range pairs {
		fr, err := r.MaxFlow(p.S, p.T)
		if err != nil {
			return fmt.Errorf("sequential query %d-%d: %w", p.S, p.T, err)
		}
		res.ValueSum += fr.Value
		res.Iterations += fr.Iterations
	}
	res.SequentialSeconds = time.Since(start).Seconds()
	fmt.Printf("  sequential queries    %8.3fs (%.3fs/query, value sum %.6f)\n",
		res.SequentialSeconds, res.SequentialSeconds/float64(len(pairs)), res.ValueSum)

	if err := runFlowBenchBatch(r, pairs, &res); err != nil {
		return err
	}

	if jsonPath != "" {
		doc, err := json.MarshalIndent(&res, "", "  ")
		if err != nil {
			return err
		}
		doc = append(doc, '\n')
		if err := os.WriteFile(jsonPath, doc, 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", jsonPath)
	}
	return nil
}

// runFlowBenchBatch issues the same queries through Router.MaxFlowBatch
// and cross-checks that the batch results match the sequential ones.
func runFlowBenchBatch(r *distflow.Router, pairs []distflow.STPair, res *FlowBenchResult) error {
	start := time.Now()
	batch, err := r.MaxFlowBatch(pairs)
	if err != nil {
		return fmt.Errorf("batch: %w", err)
	}
	res.BatchSeconds = time.Since(start).Seconds()
	for _, fr := range batch {
		res.BatchValueSum += fr.Value
	}
	if res.BatchSeconds > 0 {
		res.SpeedupBatch = res.SequentialSeconds / res.BatchSeconds
	}
	fmt.Printf("  batch queries         %8.3fs (%.2fx vs sequential, value sum %.6f)\n",
		res.BatchSeconds, res.SpeedupBatch, res.BatchValueSum)
	if res.BatchValueSum != res.ValueSum {
		return fmt.Errorf("batch value sum %v differs from sequential %v: batch results are not bit-identical",
			res.BatchValueSum, res.ValueSum)
	}
	return nil
}

// flowBenchPairs derives the query workload deterministically from the
// seed: distinct random s-t pairs.
func flowBenchPairs(n, queries int, seed int64) []distflow.STPair {
	rng := rand.New(rand.NewSource(seed + 1))
	pairs := make([]distflow.STPair, 0, queries)
	for len(pairs) < queries {
		s, t := rng.Intn(n), rng.Intn(n)
		if s != t {
			pairs = append(pairs, distflow.STPair{S: s, T: t})
		}
	}
	return pairs
}
