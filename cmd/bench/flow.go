package main

// The -flow mode benchmarks the end-to-end solver on a single large
// random graph: congestion-approximator construction, then a stream of
// max-flow queries issued one at a time (the sequential reference),
// the same queries through Router.MaxFlowBatch, and a warm-repeat pass
// that re-issues them against the Router's warm cache. Results can be
// written as JSON (-json) so that successive runs are diffable;
// BENCH_seed.json in the repository root is the pre-parallel-core
// baseline and BENCH_accel.json the accelerated-stepper run recorded
// with -compare.
//
// The schema of the JSON document is versioned here (benchSchema): v2
// fixes the config key order to the FlowBenchConfig struct order below
// (v1 files were recorded with inconsistent orders), adds per-query
// statistics, the warm-repeat pass, the -compare baseline block, and
// the batch worker-count determinism check. v3 adds the -build document
// (mode:"build", see build.go) with the per-phase construction
// breakdown and the incremental-update-vs-rebuild measurements; the
// -flow document is unchanged apart from the version bump. v4 replaces
// the -build document's single update measurement with the
// dirty-vs-full-vs-rebuild ladder (dirty_update_seconds /
// full_update_seconds / rebuild_seconds, see build.go); again the
// -flow document only bumps the version. v5 adds the -churn document
// (mode:"churn", see churn.go) with the batched topology-edit vs
// full-rebuild ladder (churn_update_seconds / rebuild_seconds), the
// resample/sweep counters, and the updated-vs-rebuilt query drift; the
// -flow and -build documents only bump the version. v6 adds the -serve
// document (mode:"serve", see serve.go) with the sustained-load
// throughput/latency block (qps, serve_p50_seconds, serve_p99_seconds),
// the scheduler counters (coalesced/batches/rejected), and the
// quiesced-vs-rebuilt drift (serve_max_value_err); the other documents
// only bump the version. v7 adds the -scale document (mode:"scale",
// see scale.go) — a flat map with per-rung `_n{n}` keys carrying the
// instance-ladder phase times, heap deltas/peaks, and per-rung
// fingerprints — AND changes the recorded distributions of every mode:
// the SplitGraph race switched from a binary heap to a bucket queue
// (lsst.RaceOrderVersion 2), which reorders pops among fully equal
// (time, source) keys, so all value_sum/alpha/iteration baselines were
// re-recorded at v7 (see DESIGN.md §10). v9 adds the -shard document
// (mode:"shard", see shard.go) — a flat map with per-rung `_n{n}` and
// per-shard-count `_p{p}_n{n}` keys carrying the measured supersteps,
// cross-shard messages, and payload bytes of the P = 1..8 sweep — and
// extends the -flow document with the parallel-build block
// (build_seconds_workers1 / build_seconds_workers_max /
// speedup_build_parallel, gated by -parallel-floor on multicore CI);
// the other documents only bump the version. (v8 was the -serve chaos
// block.)

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"distflow"
	"distflow/internal/graph"
)

// benchSchema is the single definition of the bench JSON schema
// version.
const benchSchema = 9

// FlowBenchConfig parameterizes one -flow run. The JSON key order of
// this struct IS the schema-2 config layout; do not reorder fields.
type FlowBenchConfig struct {
	N       int     `json:"n"`
	Degree  float64 `json:"degree"`
	MaxCap  int64   `json:"max_cap"`
	Seed    int64   `json:"seed"`
	Queries int     `json:"queries"`
	Epsilon float64 `json:"epsilon"`
	Workers int     `json:"workers"`
}

// QueryStat records one sequential query (schema 2: the
// hardware-independent per-query metrics next to wall clock).
type QueryStat struct {
	S          int     `json:"s"`
	T          int     `json:"t"`
	Value      float64 `json:"value"`
	Iterations int     `json:"iterations"`
	Restarts   int     `json:"restarts"`
	AlphaUsed  float64 `json:"alpha_used"`
	Seconds    float64 `json:"seconds"`
}

// CompareStats summarizes one solver configuration over the workload
// (-compare records the plain-stepper baseline in this shape).
type CompareStats struct {
	Iterations int     `json:"iterations"`
	Restarts   int     `json:"restarts"`
	ValueSum   float64 `json:"value_sum"`
	Seconds    float64 `json:"seconds"`
}

// FlowBenchResult is the JSON document emitted by -flow -json.
type FlowBenchResult struct {
	Schema     int             `json:"schema"`
	Config     FlowBenchConfig `json:"config"`
	GoMaxProcs int             `json:"go_max_procs"`
	NumCPU     int             `json:"num_cpu"`
	M          int             `json:"m"`

	RouterBuildSeconds float64 `json:"router_build_seconds"`
	// SequentialSeconds is the wall time of issuing every query
	// one-at-a-time on a single goroutine (warm cache disabled).
	SequentialSeconds float64 `json:"sequential_seconds"`
	// BatchSeconds is the wall time of the same queries through
	// Router.MaxFlowBatch.
	BatchSeconds float64 `json:"batch_seconds,omitempty"`
	// SpeedupBatch = SequentialSeconds / BatchSeconds.
	SpeedupBatch float64 `json:"speedup_batch_vs_sequential,omitempty"`

	// ValueSum fingerprints the results: the sum of all query flow
	// values. Runs that must agree bit-for-bit can diff this field.
	ValueSum      float64 `json:"value_sum"`
	BatchValueSum float64 `json:"batch_value_sum,omitempty"`
	// Iterations totals the gradient iterations of the sequential pass —
	// the hardware-independent cost metric.
	Iterations int `json:"iterations"`
	// Queries holds the per-query breakdown of the sequential pass.
	Queries []QueryStat `json:"queries"`

	// BatchDeterministic reports the cross-check that two batch runs on
	// fresh routers at different worker counts produced bit-identical
	// value sums.
	BatchDeterministic bool `json:"batch_bit_identical_across_workers"`

	// Warm-repeat pass: the same queries re-issued against a router
	// whose warm cache has just answered them.
	RepeatSeconds    float64 `json:"repeat_seconds,omitempty"`
	RepeatIterations int     `json:"repeat_iterations"`
	RepeatValueSum   float64 `json:"repeat_value_sum,omitempty"`

	// Baseline is the plain-stepper run of -compare (acceleration and
	// ε-continuation disabled), with IterationRatio =
	// Baseline.Iterations / Iterations.
	Baseline       *CompareStats `json:"baseline,omitempty"`
	IterationRatio float64       `json:"iteration_ratio_baseline_over_accel,omitempty"`

	// Parallel-build block (schema 9): the same router built once with
	// the solver pool pinned to a single worker and once at GOMAXPROCS
	// workers. SpeedupBuildParallel = BuildSecondsW1 / BuildSecondsWMax;
	// ~1.0 on a single-CPU recording machine, gated ≥ -parallel-floor on
	// multicore CI runners. Wall-clock, so benchdiff never gates it.
	BuildSecondsW1       float64 `json:"build_seconds_workers1,omitempty"`
	BuildSecondsWMax     float64 `json:"build_seconds_workers_max,omitempty"`
	SpeedupBuildParallel float64 `json:"speedup_build_parallel,omitempty"`
}

// FlowBenchFlags carries the mode flags of one -flow invocation.
type FlowBenchFlags struct {
	Compare       bool
	IterCeiling   int
	ParallelFloor float64
	CPUProfile    string
	MemProfile    string
}

func runFlowBench(cfg FlowBenchConfig, jsonPath string, flags FlowBenchFlags) error {
	if cfg.N < 2 {
		return fmt.Errorf("-flow needs -n >= 2 (no s-t pair exists on %d vertices)", cfg.N)
	}
	if cfg.Queries < 1 {
		return fmt.Errorf("-flow needs -queries >= 1")
	}
	if cfg.Workers != 0 {
		distflow.SetParallelism(cfg.Workers)
	}
	if flags.CPUProfile != "" {
		f, err := os.Create(flags.CPUProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gg := graph.CapUniform(graph.GNP(cfg.N, cfg.Degree/float64(cfg.N), rng), cfg.MaxCap, rng)
	G := distflow.NewGraph(gg.N())
	for _, e := range gg.Edges() {
		G.AddEdge(e.U, e.V, e.Cap)
	}
	res := FlowBenchResult{
		Schema:     benchSchema,
		Config:     cfg,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		M:          G.M(),
	}
	fmt.Printf("flow bench: n=%d m=%d queries=%d eps=%v workers=%d GOMAXPROCS=%d\n",
		G.N(), G.M(), cfg.Queries, cfg.Epsilon, cfg.Workers, res.GoMaxProcs)

	// The measurement router disables the warm cache so the sequential
	// and batch passes stay strictly comparable (the cache would let the
	// batch warm-start from the sequential pass's results); the cache's
	// own effect is measured separately below.
	opts := distflow.Options{Epsilon: cfg.Epsilon, Seed: cfg.Seed, DisableWarmStart: true}
	start := time.Now()
	r, err := distflow.NewRouter(G, opts)
	if err != nil {
		return err
	}
	res.RouterBuildSeconds = time.Since(start).Seconds()
	fmt.Printf("  router build          %8.3fs (alpha=%.3f)\n", res.RouterBuildSeconds, r.Alpha())

	pairs := flowBenchPairs(G.N(), cfg.Queries, cfg.Seed)

	start = time.Now()
	for _, p := range pairs {
		qStart := time.Now()
		fr, err := r.MaxFlow(p.S, p.T)
		if err != nil {
			return fmt.Errorf("sequential query %d-%d: %w", p.S, p.T, err)
		}
		res.ValueSum += fr.Value
		res.Iterations += fr.Iterations
		res.Queries = append(res.Queries, QueryStat{
			S: p.S, T: p.T,
			Value:      fr.Value,
			Iterations: fr.Iterations,
			Restarts:   fr.Restarts,
			AlphaUsed:  fr.AlphaUsed,
			Seconds:    time.Since(qStart).Seconds(),
		})
	}
	res.SequentialSeconds = time.Since(start).Seconds()
	fmt.Printf("  sequential queries    %8.3fs (%.3fs/query, %d iterations, value sum %.6f)\n",
		res.SequentialSeconds, res.SequentialSeconds/float64(len(pairs)), res.Iterations, res.ValueSum)

	if err := runFlowBenchBatch(r, pairs, &res); err != nil {
		return err
	}
	if err := runFlowBenchBatchDeterminism(G, opts, pairs, &res); err != nil {
		return err
	}
	if err := runFlowBenchWarmRepeat(G, cfg, pairs, &res); err != nil {
		return err
	}
	if flags.Compare {
		if err := runFlowBenchBaseline(G, cfg, pairs, &res); err != nil {
			return err
		}
	}
	if err := runFlowBenchParallelBuild(G, opts, &res); err != nil {
		return err
	}

	if flags.MemProfile != "" {
		f, err := os.Create(flags.MemProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	if jsonPath != "" {
		doc, err := json.MarshalIndent(&res, "", "  ")
		if err != nil {
			return err
		}
		doc = append(doc, '\n')
		if err := os.WriteFile(jsonPath, doc, 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", jsonPath)
	}
	if flags.IterCeiling > 0 && res.Iterations > flags.IterCeiling {
		return fmt.Errorf("iteration budget exceeded: %d > ceiling %d", res.Iterations, flags.IterCeiling)
	}
	if flags.ParallelFloor > 0 && res.SpeedupBuildParallel < flags.ParallelFloor {
		return fmt.Errorf("parallel build speedup %.2fx below floor %.2fx (workers=1 %.3fs vs workers=%d %.3fs)",
			res.SpeedupBuildParallel, flags.ParallelFloor, res.BuildSecondsW1, runtime.GOMAXPROCS(0), res.BuildSecondsWMax)
	}
	return nil
}

// runFlowBenchParallelBuild rebuilds the router twice — once with the
// solver pool pinned to a single worker, once at GOMAXPROCS workers —
// and records the build-parallelism speedup. The single-worker build
// runs first so the warm-cache bias of back-to-back builds (page cache,
// branch predictors, already-grown pool buffers) lands on neither side
// systematically: both rebuilds follow the full measurement run, which
// has warmed everything a build touches.
func runFlowBenchParallelBuild(G *distflow.Graph, opts distflow.Options, res *FlowBenchResult) error {
	buildAt := func(workers int) (float64, error) {
		defer distflow.SetParallelism(distflow.SetParallelism(workers))
		start := time.Now()
		_, err := distflow.NewRouter(G, opts)
		return time.Since(start).Seconds(), err
	}
	var err error
	if res.BuildSecondsW1, err = buildAt(1); err != nil {
		return fmt.Errorf("parallel-build check (workers=1): %w", err)
	}
	if res.BuildSecondsWMax, err = buildAt(runtime.GOMAXPROCS(0)); err != nil {
		return fmt.Errorf("parallel-build check (workers=%d): %w", runtime.GOMAXPROCS(0), err)
	}
	if res.BuildSecondsWMax > 0 {
		res.SpeedupBuildParallel = res.BuildSecondsW1 / res.BuildSecondsWMax
	}
	fmt.Printf("  parallel build        workers=1 %.3fs vs workers=%d %.3fs (%.2fx)\n",
		res.BuildSecondsW1, runtime.GOMAXPROCS(0), res.BuildSecondsWMax, res.SpeedupBuildParallel)
	return nil
}

// runFlowBenchBatch issues the same queries through Router.MaxFlowBatch
// and cross-checks that the batch results match the sequential ones.
func runFlowBenchBatch(r *distflow.Router, pairs []distflow.STPair, res *FlowBenchResult) error {
	start := time.Now()
	batch, err := r.MaxFlowBatch(pairs)
	if err != nil {
		return fmt.Errorf("batch: %w", err)
	}
	res.BatchSeconds = time.Since(start).Seconds()
	for _, fr := range batch {
		res.BatchValueSum += fr.Value
	}
	if res.BatchSeconds > 0 {
		res.SpeedupBatch = res.SequentialSeconds / res.BatchSeconds
	}
	fmt.Printf("  batch queries         %8.3fs (%.2fx vs sequential, value sum %.6f)\n",
		res.BatchSeconds, res.SpeedupBatch, res.BatchValueSum)
	if res.BatchValueSum != res.ValueSum {
		return fmt.Errorf("batch value sum %v differs from sequential %v: batch results are not bit-identical",
			res.BatchValueSum, res.ValueSum)
	}
	return nil
}

// runFlowBenchBatchDeterminism runs the batch on two fresh routers at
// different worker counts and verifies the results are bit-identical.
func runFlowBenchBatchDeterminism(G *distflow.Graph, opts distflow.Options, pairs []distflow.STPair, res *FlowBenchResult) error {
	runAt := func(workers int) ([]*distflow.Result, error) {
		defer distflow.SetParallelism(distflow.SetParallelism(workers))
		r, err := distflow.NewRouter(G, opts)
		if err != nil {
			return nil, err
		}
		return r.MaxFlowBatch(pairs)
	}
	a, err := runAt(1)
	if err != nil {
		return fmt.Errorf("determinism check (workers=1): %w", err)
	}
	b, err := runAt(2)
	if err != nil {
		return fmt.Errorf("determinism check (workers=2): %w", err)
	}
	res.BatchDeterministic = true
	for i := range a {
		if a[i].Value != b[i].Value || a[i].Iterations != b[i].Iterations {
			res.BatchDeterministic = false
		}
		// Bit-identical means the full flow vectors, not just the
		// value/iteration fingerprints.
		for e := range a[i].Flow {
			if a[i].Flow[e] != b[i].Flow[e] {
				res.BatchDeterministic = false
				break
			}
		}
	}
	if !res.BatchDeterministic {
		return fmt.Errorf("batch results differ between worker counts 1 and 2")
	}
	fmt.Printf("  batch determinism     bit-identical at workers=1 and workers=2\n")
	return nil
}

// runFlowBenchWarmRepeat answers the workload on a cache-enabled router
// and then re-issues it, measuring how the warm cache collapses the
// repeat cost.
func runFlowBenchWarmRepeat(G *distflow.Graph, cfg FlowBenchConfig, pairs []distflow.STPair, res *FlowBenchResult) error {
	r, err := distflow.NewRouter(G, distflow.Options{Epsilon: cfg.Epsilon, Seed: cfg.Seed})
	if err != nil {
		return err
	}
	if _, err := r.MaxFlowBatch(pairs); err != nil {
		return fmt.Errorf("warm prime: %w", err)
	}
	start := time.Now()
	repeat, err := r.MaxFlowBatch(pairs)
	if err != nil {
		return fmt.Errorf("warm repeat: %w", err)
	}
	res.RepeatSeconds = time.Since(start).Seconds()
	for _, fr := range repeat {
		res.RepeatValueSum += fr.Value
		res.RepeatIterations += fr.Iterations
	}
	fmt.Printf("  warm repeat           %8.3fs (%d iterations, value sum %.6f)\n",
		res.RepeatSeconds, res.RepeatIterations, res.RepeatValueSum)
	return nil
}

// runFlowBenchBaseline re-solves the workload with the accelerated
// stepper and ε-continuation disabled (the plain backtracking stepper)
// on a fresh router, recording the -compare baseline.
func runFlowBenchBaseline(G *distflow.Graph, cfg FlowBenchConfig, pairs []distflow.STPair, res *FlowBenchResult) error {
	r, err := distflow.NewRouter(G, distflow.Options{
		Epsilon:             cfg.Epsilon,
		Seed:                cfg.Seed,
		DisableWarmStart:    true,
		DisableAcceleration: true,
		DisableContinuation: true,
	})
	if err != nil {
		return err
	}
	base := &CompareStats{}
	start := time.Now()
	for _, p := range pairs {
		fr, err := r.MaxFlow(p.S, p.T)
		if err != nil {
			return fmt.Errorf("baseline query %d-%d: %w", p.S, p.T, err)
		}
		base.ValueSum += fr.Value
		base.Iterations += fr.Iterations
		base.Restarts += fr.Restarts
	}
	base.Seconds = time.Since(start).Seconds()
	res.Baseline = base
	if res.Iterations > 0 {
		res.IterationRatio = float64(base.Iterations) / float64(res.Iterations)
	}
	fmt.Printf("  baseline (no accel)   %8.3fs (%d iterations, value sum %.6f) — accel cuts iterations %.2fx\n",
		base.Seconds, base.Iterations, base.ValueSum, res.IterationRatio)
	return nil
}

// flowBenchPairs derives the query workload deterministically from the
// seed: distinct random s-t pairs.
func flowBenchPairs(n, queries int, seed int64) []distflow.STPair {
	rng := rand.New(rand.NewSource(seed + 1))
	pairs := make([]distflow.STPair, 0, queries)
	for len(pairs) < queries {
		s, t := rng.Intn(n), rng.Intn(n)
		if s != t {
			pairs = append(pairs, distflow.STPair{S: s, T: t})
		}
	}
	return pairs
}
