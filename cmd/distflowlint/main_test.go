package main

import (
	"testing"

	"distflow/internal/analyzers/framework"
)

// TestRepoCleanAtHead is the meta-test backing the CI gate: the full
// analyzer suite over the repository must produce zero findings — every
// true positive is fixed and every intentional violation carries a
// reasoned //distflow:allow.
func TestRepoCleanAtHead(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire repository; skipped in -short")
	}
	findings, err := Run(".", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) > 0 {
		t.Errorf("distflowlint is not clean at HEAD (%d findings):\n%s",
			len(findings), framework.FormatFindings(findings))
	}
}

// TestSuiteRoster pins the analyzer roster: dropping an analyzer from
// the multichecker should be a deliberate, visible act.
func TestSuiteRoster(t *testing.T) {
	want := []string{"detrand", "epochsafe", "ctxflow", "parsum", "faultsite"}
	if len(Suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(Suite), len(want))
	}
	for i, a := range Suite {
		if a.Name != want[i] {
			t.Errorf("Suite[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
	}
}
