// Command distflowlint is the repository's multichecker: it runs the
// distflow analyzer suite (detrand, epochsafe, ctxflow, parsum,
// faultsite — DESIGN.md §12) over the given package patterns and exits
// nonzero on findings.
//
// Usage:
//
//	go run ./cmd/distflowlint ./...
//	go run ./cmd/distflowlint -json ./internal/sherman ./cmd/...
//
// Findings print one per line as file:line:col: message [analyzer].
// Intentional violations are silenced in the source with
//
//	//distflow:allow <analyzer> <reason>
//
// on (or directly above) the offending line; the reason is mandatory
// and reason-less allows are themselves findings. Exit status: 0 clean,
// 1 findings, 2 load/usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"distflow/internal/analyzers/ctxflow"
	"distflow/internal/analyzers/detrand"
	"distflow/internal/analyzers/epochsafe"
	"distflow/internal/analyzers/faultsite"
	"distflow/internal/analyzers/framework"
	"distflow/internal/analyzers/parsum"
)

// Suite is the full analyzer roster, exported for the meta-test that
// runs it in-process over the repository.
var Suite = []*framework.Analyzer{
	detrand.Analyzer,
	epochsafe.Analyzer,
	ctxflow.Analyzer,
	parsum.Analyzer,
	faultsite.Analyzer,
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: distflowlint [-json] packages...\n\nAnalyzers:\n")
		for _, a := range Suite {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range Suite {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := Run(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "distflowlint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "distflowlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "distflowlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// Run loads the patterns relative to dir and runs the suite.
func Run(dir string, patterns []string) ([]framework.Finding, error) {
	loader, err := framework.NewLoader(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	return framework.RunAnalyzers(pkgs, Suite), nil
}
