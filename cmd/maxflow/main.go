// Command maxflow computes a (1+ε)-approximate maximum s-t flow on a
// graph file (see internal/graph's text format) and reports the value,
// the charged CONGEST rounds, and optionally the exact comparison.
//
// Usage:
//
//	maxflow -in graph.txt -s 0 -t 9 -eps 0.2 -verify
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"distflow"
	"distflow/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "maxflow:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in     = flag.String("in", "", "input graph file ('-' for stdin)")
		s      = flag.Int("s", 0, "source vertex")
		t      = flag.Int("t", -1, "sink vertex (-1 = last vertex)")
		eps    = flag.Float64("eps", 0.5, "approximation target in (0,1)")
		seed   = flag.Int64("seed", 1, "random seed")
		trees  = flag.Int("trees", 0, "sampled virtual trees (0 = log n)")
		verify = flag.Bool("verify", false, "also run the exact sequential solver and compare")
		paper  = flag.Bool("paper-scaling", false, "use virtual-tree row scaling (paper-faithful) instead of exact cuts")
	)
	flag.Parse()
	if *in == "" {
		return fmt.Errorf("missing -in (use '-' for stdin)")
	}
	var f *os.File
	if *in == "-" {
		f = os.Stdin
	} else {
		var err error
		f, err = os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
	}
	g, err := graph.Read(f)
	if err != nil {
		return err
	}
	G := distflow.NewGraph(g.N())
	for _, e := range g.Edges() {
		G.AddEdge(e.U, e.V, e.Cap)
	}
	sink := *t
	if sink < 0 {
		sink = g.N() - 1
	}
	res, err := distflow.MaxFlow(G, *s, sink, distflow.Options{
		Epsilon:      *eps,
		Seed:         *seed,
		Trees:        *trees,
		PaperScaling: *paper,
	})
	if err != nil {
		return err
	}
	fmt.Printf("graph: n=%d m=%d\n", g.N(), g.M())
	fmt.Printf("flow %d -> %d: value %.4f (eps=%.2f, alpha=%.2f, %d gradient iterations)\n",
		*s, sink, res.Value, *eps, res.Alpha, res.Iterations)
	fmt.Printf("CONGEST rounds (charged): %d\n", res.Rounds)
	names := make([]string, 0, len(res.RoundsByPhase))
	for k := range res.RoundsByPhase {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Printf("  %-24s %d\n", k, res.RoundsByPhase[k])
	}
	if *verify {
		exact, _ := distflow.ExactMaxFlow(G, *s, sink)
		fmt.Printf("exact max flow: %d  (approx/exact = %.4f)\n", exact, res.Value/float64(exact))
	}
	return nil
}
