// Command simulate runs the measured message-passing protocols on a
// generated topology and reports their exact CONGEST costs (rounds,
// messages, bits). It is the operator's view of the simulator substrate
// that the reproduction is built on.
//
// Usage:
//
//	simulate -family grid -n 100 -proto bfs,mst,pushrelabel
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"distflow/internal/congest"
	"distflow/internal/graph"
	"distflow/internal/lsst"
	"distflow/internal/mst"
	"distflow/internal/proto"
	"distflow/internal/pushrelabel"
	"distflow/internal/trivialflow"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		family   = flag.String("family", "grid", "topology family (see cmd/graphgen)")
		n        = flag.Int("n", 100, "approximate vertex count")
		seed     = flag.Int64("seed", 1, "random seed")
		protos   = flag.String("proto", "bfs,floodmin,gather,mst,splitgraph,pushrelabel,trivial", "comma-separated protocols")
		parallel = flag.Bool("parallel", false, "use the goroutine-per-node scheduler")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var g *graph.Graph
	for _, fam := range graph.Families() {
		if fam.Name == *family {
			g = fam.Make(*n, rng)
		}
	}
	if g == nil {
		return fmt.Errorf("unknown family %q", *family)
	}
	fmt.Printf("topology: %s n=%d m=%d diameter=%d\n", *family, g.N(), g.M(), g.Diameter())
	fmt.Printf("%-12s %10s %12s %14s  %s\n", "protocol", "rounds", "messages", "bits", "result")

	network := func() *congest.Network {
		return congest.NewNetwork(g, congest.WithSeed(*seed), congest.WithParallel(*parallel))
	}
	report := func(name string, s congest.Stats, result string) {
		fmt.Printf("%-12s %10d %12d %14d  %s\n", name, s.Rounds, s.Messages, s.Bits, result)
	}

	for _, p := range strings.Split(*protos, ",") {
		switch strings.TrimSpace(p) {
		case "bfs":
			tree, s, err := proto.BuildBFSTree(network(), 0)
			if err != nil {
				return err
			}
			report("bfs", s, fmt.Sprintf("height=%d", tree.Height))
		case "floodmin":
			ids := make([]int64, g.N())
			for v := range ids {
				ids[v] = int64(1000 - v)
			}
			mins, s, err := proto.FloodMin(network(), ids)
			if err != nil {
				return err
			}
			report("floodmin", s, fmt.Sprintf("min=%d", mins[0]))
		case "gather":
			tree, _, err := proto.BuildBFSTree(network(), 0)
			if err != nil {
				return err
			}
			items := make([][]proto.Item, g.N())
			for v := 0; v < g.N(); v += 4 {
				items[v] = []proto.Item{{Key: int64(v), Value: float64(v)}}
			}
			all, s, err := proto.GatherBroadcast(network(), tree, items)
			if err != nil {
				return err
			}
			report("gather", s, fmt.Sprintf("items=%d", len(all)))
		case "mst":
			res, err := mst.SpanningTree(network(), true)
			if err != nil {
				return err
			}
			report("mst", res.Stats, fmt.Sprintf("weight=%d", -res.TotalWeight))
		case "splitgraph":
			res, err := lsst.DistributedSplitGraph(network(), 6)
			if err != nil {
				return err
			}
			clusters := map[int]bool{}
			for _, c := range res.Cluster {
				clusters[c] = true
			}
			report("splitgraph", res.Stats, fmt.Sprintf("clusters=%d phases=%d", len(clusters), res.Phases))
		case "pushrelabel":
			res, err := pushrelabel.MaxFlow(network(), 0, g.N()-1, 50_000_000)
			if err != nil {
				return err
			}
			report("pushrelabel", res.Stats, fmt.Sprintf("value=%d", res.Value))
		case "trivial":
			res, err := trivialflow.MaxFlow(network(), 0, g.N()-1, nil)
			if err != nil {
				return err
			}
			report("trivial", res.Stats, fmt.Sprintf("value=%d", res.Value))
		default:
			return fmt.Errorf("unknown protocol %q", p)
		}
	}
	return nil
}
