package distflow

// Concurrency tests for the parallel solver core: many goroutines
// sharing one Router, batch-vs-sequential equivalence, and bit-level
// determinism of results under every worker count. All of these must
// stay clean under `go test -race`.

import (
	"math/rand"
	"sync"
	"testing"

	"distflow/internal/graph"
)

// largeTestGraph is big enough that the chunked parallel operators
// actually split work (flat soft-max index and edge count both exceed
// one chunk), so the determinism tests exercise real parallel paths.
func largeTestGraph(seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	gg := graph.CapUniform(graph.GNP(600, 8.0/600, rng), 32, rng)
	G := NewGraph(gg.N())
	for _, e := range gg.Edges() {
		G.AddEdge(e.U, e.V, e.Cap)
	}
	return G
}

// Eight goroutines hammer one shared Router with interleaved max-flow
// and demand-routing queries; every goroutine must see exactly the
// answers a lone caller gets. The warm cache is disabled: it makes a
// repeated query's result depend (within the documented tolerance) on
// the cache state, which is exactly what this test must exclude to pin
// the solver core's determinism (see warmstart_test.go for the cache's
// own contract).
func TestRouterConcurrentSharing(t *testing.T) {
	g := gridGraph(6, 6)
	r, err := NewRouter(g, Options{Seed: 11, Epsilon: 0.4, DisableWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	pairs := []STPair{{0, 35}, {5, 30}, {0, 30}, {5, 35}}
	wantFlow := make([]*Result, len(pairs))
	for i, p := range pairs {
		if wantFlow[i], err = r.MaxFlow(p.S, p.T); err != nil {
			t.Fatal(err)
		}
	}
	b := make([]float64, g.N())
	b[0], b[35] = 2, -2
	wantDemand, wantCong, err := r.RouteDemand(b, 0.4)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				i := (gi + rep) % len(pairs)
				res, err := r.MaxFlow(pairs[i].S, pairs[i].T)
				if err != nil {
					errCh <- err
					return
				}
				if res.Value != wantFlow[i].Value {
					t.Errorf("goroutine %d: pair %v value %v, want %v", gi, pairs[i], res.Value, wantFlow[i].Value)
					return
				}
				flow, cong, err := r.RouteDemand(b, 0.4)
				if err != nil {
					errCh <- err
					return
				}
				if cong != wantCong {
					t.Errorf("goroutine %d: congestion %v, want %v", gi, cong, wantCong)
					return
				}
				for e := range flow {
					if flow[e] != wantDemand[e] {
						t.Errorf("goroutine %d: demand flow differs at edge %d", gi, e)
						return
					}
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// Batch queries must be bit-identical to issuing the same queries one
// at a time on a single goroutine. Warm-starting is disabled because
// the sequential pass would mutate the cache between queries while the
// batch reads it once up front.
func TestMaxFlowBatchMatchesSequential(t *testing.T) {
	g := gridGraph(5, 5)
	r, err := NewRouter(g, Options{Seed: 7, Epsilon: 0.4, DisableWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	pairs := []STPair{{0, 24}, {4, 20}, {2, 22}, {0, 20}, {4, 24}, {1, 23}}
	sequential := make([]*Result, len(pairs))
	for i, p := range pairs {
		if sequential[i], err = r.MaxFlow(p.S, p.T); err != nil {
			t.Fatal(err)
		}
	}
	batch, err := r.MaxFlowBatch(pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		if batch[i].Value != sequential[i].Value {
			t.Errorf("pair %v: batch value %v, sequential %v", pairs[i], batch[i].Value, sequential[i].Value)
		}
		if batch[i].Iterations != sequential[i].Iterations {
			t.Errorf("pair %v: batch iterations %d, sequential %d", pairs[i], batch[i].Iterations, sequential[i].Iterations)
		}
		if batch[i].Rounds != sequential[i].Rounds {
			t.Errorf("pair %v: batch rounds %d, sequential %d (ledger not isolated?)", pairs[i], batch[i].Rounds, sequential[i].Rounds)
		}
		for e := range batch[i].Flow {
			if batch[i].Flow[e] != sequential[i].Flow[e] {
				t.Fatalf("pair %v: flow differs at edge %d", pairs[i], e)
			}
		}
	}
}

func TestRouteDemandBatchMatchesSequential(t *testing.T) {
	g := gridGraph(5, 5)
	r, err := NewRouter(g, Options{Seed: 9, DisableWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	demands := make([][]float64, 5)
	for i := range demands {
		b := make([]float64, g.N())
		s, t1 := rng.Intn(g.N()), rng.Intn(g.N())
		for s == t1 {
			t1 = rng.Intn(g.N())
		}
		amount := 1 + rng.Float64()*3
		b[s] += amount
		b[t1] -= amount
		demands[i] = b
	}
	sequential := make([]*Routing, len(demands))
	for i, b := range demands {
		flow, cong, err := r.RouteDemand(b, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		sequential[i] = &Routing{Flow: flow, Congestion: cong}
	}
	batch, err := r.RouteDemandBatch(demands, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range demands {
		if batch[i].Congestion != sequential[i].Congestion {
			t.Errorf("demand %d: batch congestion %v, sequential %v", i, batch[i].Congestion, sequential[i].Congestion)
		}
		for e := range batch[i].Flow {
			if batch[i].Flow[e] != sequential[i].Flow[e] {
				t.Fatalf("demand %d: flow differs at edge %d", i, e)
			}
		}
	}
}

func TestBatchReportsFirstError(t *testing.T) {
	g := gridGraph(4, 4)
	r, err := NewRouter(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	results, err := r.MaxFlowBatch([]STPair{{0, 15}, {3, 3}, {2, 2}})
	if err == nil {
		t.Fatal("invalid pair accepted")
	}
	if results[0] == nil {
		t.Error("valid query missing from partial results")
	}
	if results[1] != nil || results[2] != nil {
		t.Error("failed queries produced results")
	}
}

// For a fixed Options.Seed, Result.Value and Result.Flow must be
// bit-identical at every worker count: the chunked reductions combine
// partials in an order fixed by the problem size alone.
func TestWorkerCountDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("large graph in short mode")
	}
	g := largeTestGraph(13)
	b := make([]float64, g.N())
	b[1], b[2] = 3, 1
	b[g.N()-1] = -4

	type outcome struct {
		value      float64
		iterations int
		flow       []float64
		demandFlow []float64
		congestion float64
	}
	run := func(workers int) outcome {
		defer SetParallelism(SetParallelism(workers))
		r, err := NewRouter(g, Options{Seed: 4242, Epsilon: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.MaxFlow(0, g.N()-1)
		if err != nil {
			t.Fatal(err)
		}
		dFlow, cong, err := r.RouteDemand(b, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		return outcome{res.Value, res.Iterations, res.Flow, dFlow, cong}
	}

	want := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if got.value != want.value || got.iterations != want.iterations {
			t.Fatalf("workers=%d: value/iterations %v/%d, want %v/%d",
				workers, got.value, got.iterations, want.value, want.iterations)
		}
		for e := range want.flow {
			if got.flow[e] != want.flow[e] {
				t.Fatalf("workers=%d: flow differs at edge %d: %v vs %v", workers, e, got.flow[e], want.flow[e])
			}
		}
		if got.congestion != want.congestion {
			t.Fatalf("workers=%d: congestion %v, want %v", workers, got.congestion, want.congestion)
		}
		for e := range want.demandFlow {
			if got.demandFlow[e] != want.demandFlow[e] {
				t.Fatalf("workers=%d: demand flow differs at edge %d", workers, e)
			}
		}
	}
}
