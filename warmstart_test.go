package distflow

// Tests for the Router's query warm-start cache (DESIGN.md §5): hits
// collapse iteration counts, stay within the documented quality
// tolerance of cold runs, evict LRU, and never break the batch API's
// worker-count determinism.

import (
	"math"
	"math/rand"
	"testing"

	"distflow/internal/graph"
)

func warmTestGraph(seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	gg := graph.CapUniform(graph.GNP(300, 8.0/300, rng), 32, rng)
	G := NewGraph(gg.N())
	for _, e := range gg.Edges() {
		G.AddEdge(e.U, e.V, e.Cap)
	}
	return G
}

// A repeated max-flow query warm-starts from the cache, takes (far)
// fewer iterations, and lands within the (1+ε) guarantee of the cold
// value.
func TestWarmStartRepeatedMaxFlow(t *testing.T) {
	g := warmTestGraph(51)
	eps := 0.4
	r, err := NewRouter(g, Options{Seed: 5, Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	s, tt := 0, g.N()-1
	cold, err := r.MaxFlow(s, tt)
	if err != nil {
		t.Fatal(err)
	}
	if cold.WarmStarted {
		t.Error("first query reported a warm start")
	}
	warm, err := r.MaxFlow(s, tt)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStarted {
		t.Error("repeated query did not warm-start")
	}
	if warm.Iterations >= cold.Iterations {
		t.Errorf("warm repeat took %d iterations, cold %d", warm.Iterations, cold.Iterations)
	}
	// Documented tolerance: warm results satisfy the same (1+ε) band, so
	// two answers to the same query differ by at most that factor.
	lo, hi := cold.Value/(1+eps), cold.Value*(1+eps)
	if warm.Value < lo || warm.Value > hi {
		t.Errorf("warm value %v outside tolerance of cold %v", warm.Value, cold.Value)
	}
	// The warm flow is still feasible and conserving.
	div := divergence(g, warm.Flow)
	for v := 1; v < g.N()-1; v++ {
		if math.Abs(div[v]) > 1e-6*math.Max(1, warm.Value) {
			t.Fatalf("conservation broken at %d: %v", v, div[v])
		}
	}
	for e, fe := range warm.Flow {
		_, _, capacity := g.EdgeEndpoints(e)
		if math.Abs(fe) > float64(capacity)*(1+1e-9) {
			t.Fatalf("edge %d overloaded", e)
		}
	}
	t.Logf("iterations: cold=%d warm=%d", cold.Iterations, warm.Iterations)
}

// A repeated RouteDemand query warm-starts and keeps exact conservation
// with congestion within tolerance.
func TestWarmStartRepeatedRouteDemand(t *testing.T) {
	g := warmTestGraph(52)
	r, err := NewRouter(g, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, g.N())
	b[1], b[2], b[g.N()-1] = 2, 1, -3
	_, congCold, err := r.RouteDemand(b, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	flow, congWarm, err := r.RouteDemand(b, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if congWarm > congCold*(1+0.4) || congCold > congWarm*(1+0.4) {
		t.Errorf("warm congestion %v vs cold %v outside tolerance", congWarm, congCold)
	}
	div := divergence(g, flow)
	for v := range b {
		if math.Abs(div[v]-b[v]) > 1e-6 {
			t.Fatalf("warm routing broke conservation at %d", v)
		}
	}
}

// DisableWarmStart restores pure-function queries: repeats are
// bit-identical.
func TestDisableWarmStartBitStable(t *testing.T) {
	g := gridGraph(5, 5)
	r, err := NewRouter(g, Options{Seed: 8, Epsilon: 0.4, DisableWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.MaxFlow(0, 24)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.MaxFlow(0, 24)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value || a.Iterations != b.Iterations || b.WarmStarted {
		t.Fatalf("repeat differed with cache disabled: %v/%d vs %v/%d (warm=%v)",
			a.Value, a.Iterations, b.Value, b.Iterations, b.WarmStarted)
	}
}

// The cache evicts least-recently-used entries at WarmCacheSize.
func TestWarmCacheEviction(t *testing.T) {
	g := gridGraph(4, 4)
	r, err := NewRouter(g, Options{Seed: 9, WarmCacheSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	pairs := []STPair{{0, 15}, {1, 14}, {2, 13}}
	for _, p := range pairs {
		if _, err := r.MaxFlow(p.S, p.T); err != nil {
			t.Fatal(err)
		}
	}
	if n := r.curEpoch().cache.len(); n != 2 {
		t.Fatalf("cache holds %d entries, want 2", n)
	}
	// {0,15} was evicted; {2,13} is resident.
	evicted, err := r.MaxFlow(0, 15)
	if err != nil {
		t.Fatal(err)
	}
	if evicted.WarmStarted {
		t.Error("evicted entry produced a warm start")
	}
	resident, err := r.MaxFlow(2, 13)
	if err != nil {
		t.Fatal(err)
	}
	if !resident.WarmStarted {
		t.Error("resident entry did not warm-start")
	}
}

// Batch queries with the warm cache enabled remain bit-identical at
// every worker count: cache reads and writes bracket the parallel
// region in index order, so for a fixed prior cache state the batch is
// a pure function of the query list.
func TestWarmBatchWorkerCountDeterminism(t *testing.T) {
	g := warmTestGraph(53)
	pairs := []STPair{{0, 299}, {5, 250}, {0, 299}, {17, 180}}
	run := func(workers int) []*Result {
		defer SetParallelism(SetParallelism(workers))
		r, err := NewRouter(g, Options{Seed: 12, Epsilon: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		// Prime the cache, then re-issue the batch so the second round
		// exercises warm-started parallel queries.
		if _, err := r.MaxFlowBatch(pairs); err != nil {
			t.Fatal(err)
		}
		res, err := r.MaxFlowBatch(pairs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		for i := range want {
			if got[i].Value != want[i].Value || got[i].Iterations != want[i].Iterations {
				t.Fatalf("workers=%d query %d: %v/%d, want %v/%d",
					w, i, got[i].Value, got[i].Iterations, want[i].Value, want[i].Iterations)
			}
			if !got[i].WarmStarted {
				t.Errorf("workers=%d query %d: second batch round not warm-started", w, i)
			}
			for e := range want[i].Flow {
				if got[i].Flow[e] != want[i].Flow[e] {
					t.Fatalf("workers=%d query %d: flow differs at edge %d", w, i, e)
				}
			}
		}
	}
}
