package distflow

// Tests of Router.UpdateCapacities: the incrementally updated router
// must answer queries with the same (1+ε)²-of-Dinic guarantee as a
// freshly built one on fuzzed edit sequences, updates must be
// bit-identical at every worker count, the α-degradation fallback must
// fire when asked to, and the warm cache must forget pre-edit flows.

import (
	"math"
	"math/rand"
	"testing"
)

// randomConnectedGraph builds a connected multigraph with random
// capacities (spanning chain plus chords).
func randomConnectedGraph(n int, rng *rand.Rand) *Graph {
	g := NewGraph(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, rng.Intn(v), 1+rng.Int63n(15))
	}
	for k := 0; k < n; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, 1+rng.Int63n(15))
		}
	}
	return g
}

// randomEdits draws 1–3 random capacity edits.
func randomEdits(g *Graph, rng *rand.Rand) []CapEdit {
	edits := make([]CapEdit, 1+rng.Intn(3))
	for i := range edits {
		edits[i] = CapEdit{Edge: rng.Intn(g.M()), Cap: 1 + rng.Int63n(31)}
	}
	return edits
}

// After every fuzzed edit batch, the updated router's MaxFlow must stay
// within the compound (1+ε)² bound of the exact Dinic value on the
// edited graph — the same contract a freshly built router satisfies —
// and return a feasible flow.
func TestUpdateCapacitiesAgreesWithDinic(t *testing.T) {
	const eps = 0.3
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 4; trial++ {
		n := 8 + rng.Intn(16)
		g := randomConnectedGraph(n, rng)
		r, err := NewRouter(g, Options{Epsilon: eps, Seed: int64(trial + 1)})
		if err != nil {
			t.Fatal(err)
		}
		for batch := 0; batch < 4; batch++ {
			if _, err := r.UpdateCapacities(randomEdits(g, rng)); err != nil {
				t.Fatalf("trial %d batch %d: %v", trial, batch, err)
			}
			s, tt := 0, g.N()-1
			exact, _ := ExactMaxFlow(g, s, tt)
			res, err := r.MaxFlow(s, tt)
			if err != nil {
				t.Fatalf("trial %d batch %d: %v", trial, batch, err)
			}
			if res.Value > float64(exact)*1.0001 {
				t.Fatalf("trial %d batch %d: value %v exceeds exact %d", trial, batch, res.Value, exact)
			}
			if res.Value < float64(exact)/((1+eps)*(1+eps))-1e-9 {
				t.Fatalf("trial %d batch %d: value %v below (1+ε)² bound of %d", trial, batch, res.Value, exact)
			}
			for e, fe := range res.Flow {
				_, _, capacity := g.EdgeEndpoints(e)
				if math.Abs(fe) > float64(capacity)*(1+1e-9) {
					t.Fatalf("trial %d batch %d: edge %d overloaded after update: |%v| > %d",
						trial, batch, e, fe, capacity)
				}
			}
		}
	}
}

// The same edit sequence applied at different worker counts must leave
// bit-identical approximators (tree topologies, virtual capacities, cut
// capacities, α) and bit-identical query answers.
func TestUpdateCapacitiesWorkerDeterminism(t *testing.T) {
	buildAndUpdate := func(workers int) *Router {
		defer SetParallelism(SetParallelism(workers))
		rng := rand.New(rand.NewSource(7))
		g := randomConnectedGraph(40, rng)
		r, err := NewRouter(g, Options{Seed: 5, DisableWarmStart: true})
		if err != nil {
			t.Fatal(err)
		}
		for batch := 0; batch < 3; batch++ {
			if _, err := r.UpdateCapacities(randomEdits(g, rng)); err != nil {
				t.Fatal(err)
			}
		}
		return r
	}
	a, b := buildAndUpdate(1), buildAndUpdate(4)
	if a.curEpoch().apx.Alpha != b.curEpoch().apx.Alpha || a.curEpoch().apx.AlphaLow != b.curEpoch().apx.AlphaLow {
		t.Fatalf("alpha differs across worker counts: %v/%v vs %v/%v",
			a.curEpoch().apx.Alpha, a.curEpoch().apx.AlphaLow, b.curEpoch().apx.Alpha, b.curEpoch().apx.AlphaLow)
	}
	if len(a.curEpoch().apx.Trees) != len(b.curEpoch().apx.Trees) {
		t.Fatal("tree count differs across worker counts")
	}
	for k := range a.curEpoch().apx.Trees {
		ta, tb := a.curEpoch().apx.Trees[k], b.curEpoch().apx.Trees[k]
		for v := 0; v < ta.N(); v++ {
			if ta.Parent[v] != tb.Parent[v] || ta.Cap[v] != tb.Cap[v] {
				t.Fatalf("tree %d differs at vertex %d after updates", k, v)
			}
			if a.curEpoch().apx.CutCap[k][v] != b.curEpoch().apx.CutCap[k][v] {
				t.Fatalf("cut capacity %d/%d differs after updates", k, v)
			}
		}
	}
	ra, err := a.MaxFlow(0, a.curEpoch().g.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.MaxFlow(0, b.curEpoch().g.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Value != rb.Value || ra.Iterations != rb.Iterations {
		t.Fatalf("post-update queries differ: %v/%d vs %v/%d",
			ra.Value, ra.Iterations, rb.Value, rb.Iterations)
	}
}

// A tight AlphaRebuildFactor must route the update through the full
// rebuild fallback, and the rebuilt state must equal a fresh build on
// the edited graph.
func TestUpdateCapacitiesRebuildFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomConnectedGraph(30, rng)
	// Factor below 1 makes any measured α exceed the bound.
	r, err := NewRouter(g, Options{Seed: 3, AlphaRebuildFactor: 0.5, DisableWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	ur, err := r.UpdateCapacities([]CapEdit{{Edge: 0, Cap: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !ur.Rebuilt {
		t.Fatal("AlphaRebuildFactor 0.5 did not force a rebuild")
	}
	fresh, err := NewRouter(&Graph{g: r.curEpoch().g}, Options{Seed: 3, DisableWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.curEpoch().apx.Alpha != fresh.curEpoch().apx.Alpha {
		t.Fatalf("rebuilt alpha %v differs from fresh build %v", r.curEpoch().apx.Alpha, fresh.curEpoch().apx.Alpha)
	}
	for k := range r.curEpoch().apx.Trees {
		for v := 0; v < r.curEpoch().apx.Trees[k].N(); v++ {
			if r.curEpoch().apx.Trees[k].Parent[v] != fresh.curEpoch().apx.Trees[k].Parent[v] {
				t.Fatalf("rebuilt tree %d differs from fresh build at %d", k, v)
			}
		}
	}
}

// Edits must be validated before anything mutates.
func TestUpdateCapacitiesValidation(t *testing.T) {
	g := NewGraph(3)
	e0 := g.AddEdge(0, 1, 4)
	g.AddEdge(1, 2, 4)
	r, err := NewRouter(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.UpdateCapacities([]CapEdit{{Edge: 99, Cap: 1}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := r.UpdateCapacities([]CapEdit{{Edge: e0, Cap: 0}}); err == nil {
		t.Fatal("non-positive capacity accepted")
	}
	// The failed batches must not have touched the graph.
	if _, _, c := g.EdgeEndpoints(e0); c != 4 {
		t.Fatalf("failed update mutated capacity to %d", c)
	}
}

// The warm cache must forget pre-edit flows: a repeat query that would
// warm-start before the update starts cold after it.
func TestUpdateCapacitiesClearsWarmCache(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomConnectedGraph(20, rng)
	r, err := NewRouter(g, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := r.MaxFlow(0, g.N()-1); err != nil || res.WarmStarted {
		t.Fatalf("first query warm-started (err %v)", err)
	}
	if res, err := r.MaxFlow(0, g.N()-1); err != nil || !res.WarmStarted {
		t.Fatalf("repeat query did not warm-start (err %v)", err)
	}
	if _, err := r.UpdateCapacities([]CapEdit{{Edge: 0, Cap: 1}}); err != nil {
		t.Fatal(err)
	}
	if res, err := r.MaxFlow(0, g.N()-1); err != nil || res.WarmStarted {
		t.Fatalf("post-update query warm-started from a stale entry (err %v)", err)
	}
}

// Regression for the RoundsByPhase accounting bug: the breakdown must
// sum to Rounds before AND after UpdateCapacities. The old code
// whitelisted phase names and omitted "update-treeflow", so the sum
// silently diverged after any update.
func TestRoundsByPhaseSumsToRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := randomConnectedGraph(24, rng)
	r, err := NewRouter(g, Options{Seed: 4, DisableWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	sum := func(res *Result) int64 {
		var s int64
		for _, v := range res.RoundsByPhase {
			s += v
		}
		return s
	}
	res, err := r.MaxFlow(0, g.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum(res); got != res.Rounds {
		t.Fatalf("pre-update breakdown sums to %d, Rounds %d", got, res.Rounds)
	}
	if _, err := r.UpdateCapacities([]CapEdit{{Edge: 0, Cap: 3}}); err != nil {
		t.Fatal(err)
	}
	res, err = r.MaxFlow(0, g.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum(res); got != res.Rounds {
		t.Fatalf("post-update breakdown sums to %d, Rounds %d (phases: %v)",
			got, res.Rounds, res.RoundsByPhase)
	}
	if res.RoundsByPhase["update-treeflow"] <= 0 {
		t.Fatalf("update-treeflow missing from breakdown: %v", res.RoundsByPhase)
	}
}

// A batch that coalesces to nothing — nil, empty, edits equal to the
// current capacities, or duplicates whose last write restores the
// current value — must leave the router untouched: same solver state,
// warm cache intact (the repeat query still warm-starts).
func TestUpdateCapacitiesNoOpKeepsWarmCache(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	g := randomConnectedGraph(20, rng)
	r, err := NewRouter(g, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.MaxFlow(0, g.N()-1); err != nil {
		t.Fatal(err)
	}
	_, _, c0 := g.EdgeEndpoints(0)
	solver := r.curEpoch().solver
	for name, batch := range map[string][]CapEdit{
		"nil":           nil,
		"empty":         {},
		"current-value": {{Edge: 0, Cap: c0}},
		"dup-restoring": {{Edge: 0, Cap: c0 + 5}, {Edge: 0, Cap: c0}},
	} {
		ur, err := r.UpdateCapacities(batch)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ur.Edits != 0 || ur.DirtyTrees != 0 || ur.SweptTrees != 0 || ur.Rebuilt {
			t.Fatalf("%s: not reported as a no-op: %+v", name, ur)
		}
		if r.curEpoch().solver != solver {
			t.Fatalf("%s: no-op update rebuilt the solver", name)
		}
		if n := r.curEpoch().cache.len(); n == 0 {
			t.Fatalf("%s: no-op update emptied the warm cache", name)
		}
	}
	if res, err := r.MaxFlow(0, g.N()-1); err != nil || !res.WarmStarted {
		t.Fatalf("repeat query after no-op updates did not warm-start (err %v)", err)
	}
	if _, _, c := g.EdgeEndpoints(0); c != c0 {
		t.Fatalf("no-op batches changed edge 0 capacity to %d", c)
	}
}

// Duplicate edits to one edge coalesce last-wins before anything is
// applied: a conflicting batch must leave exactly the state a
// single-edit batch of the final value leaves.
func TestUpdateCapacitiesCoalescesDuplicates(t *testing.T) {
	build := func() (*Graph, *Router) {
		rng := rand.New(rand.NewSource(45))
		g := randomConnectedGraph(24, rng)
		r, err := NewRouter(g, Options{Seed: 6, DisableWarmStart: true})
		if err != nil {
			t.Fatal(err)
		}
		return g, r
	}
	ga, ra := build()
	gb, rb := build()
	ua, err := ra.UpdateCapacities([]CapEdit{
		{Edge: 2, Cap: 31}, {Edge: 5, Cap: 1}, {Edge: 2, Cap: 4}, {Edge: 2, Cap: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ua.Edits != 2 {
		t.Fatalf("conflicting batch applied %d effective edits, want 2", ua.Edits)
	}
	if _, err := rb.UpdateCapacities([]CapEdit{{Edge: 2, Cap: 9}, {Edge: 5, Cap: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, _, c := ga.EdgeEndpoints(2); c != 9 {
		t.Fatalf("last-wins violated: edge 2 capacity %d, want 9", c)
	}
	if ra.curEpoch().apx.Alpha != rb.curEpoch().apx.Alpha {
		t.Fatalf("coalesced batch alpha %v differs from explicit batch %v", ra.curEpoch().apx.Alpha, rb.curEpoch().apx.Alpha)
	}
	for k := range ra.curEpoch().apx.Trees {
		for v := 0; v < ra.curEpoch().apx.Trees[k].N(); v++ {
			if ra.curEpoch().apx.Trees[k].Cap[v] != rb.curEpoch().apx.Trees[k].Cap[v] ||
				ra.curEpoch().apx.CutCap[k][v] != rb.curEpoch().apx.CutCap[k][v] {
				t.Fatalf("tree %d differs at %d between duplicate and coalesced batches", k, v)
			}
		}
	}
	_ = gb
}

// The dirty-path refresh must leave the same router state as the
// full-sweep slow path (UpdateDirtyFraction < 0) on fuzzed batches —
// the distflow-level bit-identity acceptance check.
func TestUpdateCapacitiesDirtyMatchesFullSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 3; trial++ {
		seedGraph := func() *Graph {
			r2 := rand.New(rand.NewSource(int64(100 + trial)))
			return randomConnectedGraph(10+r2.Intn(20), r2)
		}
		ga, gb := seedGraph(), seedGraph()
		opts := Options{Seed: int64(trial + 1), DisableWarmStart: true, UpdateDirtyFraction: 1e9}
		optsFull := opts
		optsFull.UpdateDirtyFraction = -1
		ra, err := NewRouter(ga, opts)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := NewRouter(gb, optsFull)
		if err != nil {
			t.Fatal(err)
		}
		for batch := 0; batch < 6; batch++ {
			edits := randomEdits(ga, rng)
			ua, err := ra.UpdateCapacities(edits)
			if err != nil {
				t.Fatal(err)
			}
			ub, err := rb.UpdateCapacities(edits)
			if err != nil {
				t.Fatal(err)
			}
			if ua.Edits > 0 && (ua.SweptTrees != 0 || ub.DirtyTrees != 0) {
				t.Fatalf("trial %d batch %d: paths not exercised as intended (%+v vs %+v)",
					trial, batch, ua, ub)
			}
			if ua.Alpha != ub.Alpha {
				t.Fatalf("trial %d batch %d: alpha %v (dirty) vs %v (full)", trial, batch, ua.Alpha, ub.Alpha)
			}
			for k := range ra.curEpoch().apx.Trees {
				for v := 0; v < ra.curEpoch().apx.Trees[k].N(); v++ {
					if ra.curEpoch().apx.Trees[k].Cap[v] != rb.curEpoch().apx.Trees[k].Cap[v] ||
						ra.curEpoch().apx.CutCap[k][v] != rb.curEpoch().apx.CutCap[k][v] ||
						ra.curEpoch().apx.Scale[k][v] != rb.curEpoch().apx.Scale[k][v] {
						t.Fatalf("trial %d batch %d: tree %d state differs at %d", trial, batch, k, v)
					}
				}
			}
		}
	}
}

// Serving under sustained churn: ≥20 successive dirty-path updates with
// a query after each must keep the (1+ε)² Dinic bound, and a final
// adversarial batch must drive α past AlphaRebuildFactor and trip the
// rebuild fallback.
func TestRepeatedEditQueryCycles(t *testing.T) {
	const eps = 0.3
	rng := rand.New(rand.NewSource(49))
	g := randomConnectedGraph(24, rng)
	// UpdateDirtyFraction 1e9 pins every refresh to the dirty path (the
	// graph is tiny, so edit paths easily exceed the default budget);
	// bit-identity with the full sweep is pinned by
	// TestUpdateCapacitiesDirtyMatchesFullSweep.
	r, err := NewRouter(g, Options{Epsilon: eps, Seed: 8, AlphaRebuildFactor: 3, UpdateDirtyFraction: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 20; cycle++ {
		// Mild churn: nudge 1–3 capacities within a factor of 2.
		edits := make([]CapEdit, 1+rng.Intn(3))
		for i := range edits {
			e := rng.Intn(g.M())
			_, _, c := g.EdgeEndpoints(e)
			nc := c + 1 + rng.Int63n(c)
			if rng.Intn(2) == 0 && c > 1 {
				nc = 1 + c/2
			}
			edits[i] = CapEdit{Edge: e, Cap: nc}
		}
		ur, err := r.UpdateCapacities(edits)
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if ur.Rebuilt {
			t.Fatalf("cycle %d: mild churn tripped the rebuild fallback (alpha %v)", cycle, ur.Alpha)
		}
		if ur.Edits > 0 && ur.DirtyTrees == 0 {
			t.Fatalf("cycle %d: no tree took the dirty path (%+v)", cycle, ur)
		}
		s, tt := 0, g.N()-1
		exact, _ := ExactMaxFlow(g, s, tt)
		res, err := r.MaxFlow(s, tt)
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if res.Value > float64(exact)*1.0001 {
			t.Fatalf("cycle %d: value %v exceeds exact %d", cycle, res.Value, exact)
		}
		if res.Value < float64(exact)/((1+eps)*(1+eps))-1e-9 {
			t.Fatalf("cycle %d: value %v below (1+ε)² bound of %d", cycle, res.Value, exact)
		}
	}
	// Adversarial finale: starve every edge down to capacity 1 except a
	// single chord, whose capacity explodes. The kept tree routings
	// overestimate the starved cuts massively, so the measured α spikes
	// past AlphaRebuildFactor and the update must fall back to a full
	// deterministic rebuild.
	slash := make([]CapEdit, g.M())
	for e := range slash {
		slash[e] = CapEdit{Edge: e, Cap: 1}
	}
	slash[g.M()-1].Cap = 1 << 20
	ur, err := r.UpdateCapacities(slash)
	if err != nil {
		t.Fatal(err)
	}
	if !ur.Rebuilt {
		t.Fatalf("adversarial batch did not trip the rebuild fallback (alpha %v, buildAlpha %v)",
			ur.Alpha, r.buildAlpha)
	}
	s, tt := 0, g.N()-1
	exact, _ := ExactMaxFlow(g, s, tt)
	res, err := r.MaxFlow(s, tt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value < float64(exact)/((1+eps)*(1+eps))-1e-9 || res.Value > float64(exact)*1.0001 {
		t.Fatalf("post-rebuild value %v outside bounds of exact %d", res.Value, exact)
	}
}
