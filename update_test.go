package distflow

// Tests of Router.UpdateCapacities: the incrementally updated router
// must answer queries with the same (1+ε)²-of-Dinic guarantee as a
// freshly built one on fuzzed edit sequences, updates must be
// bit-identical at every worker count, the α-degradation fallback must
// fire when asked to, and the warm cache must forget pre-edit flows.

import (
	"math"
	"math/rand"
	"testing"
)

// randomConnectedGraph builds a connected multigraph with random
// capacities (spanning chain plus chords).
func randomConnectedGraph(n int, rng *rand.Rand) *Graph {
	g := NewGraph(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, rng.Intn(v), 1+rng.Int63n(15))
	}
	for k := 0; k < n; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, 1+rng.Int63n(15))
		}
	}
	return g
}

// randomEdits draws 1–3 random capacity edits.
func randomEdits(g *Graph, rng *rand.Rand) []CapEdit {
	edits := make([]CapEdit, 1+rng.Intn(3))
	for i := range edits {
		edits[i] = CapEdit{Edge: rng.Intn(g.M()), Cap: 1 + rng.Int63n(31)}
	}
	return edits
}

// After every fuzzed edit batch, the updated router's MaxFlow must stay
// within the compound (1+ε)² bound of the exact Dinic value on the
// edited graph — the same contract a freshly built router satisfies —
// and return a feasible flow.
func TestUpdateCapacitiesAgreesWithDinic(t *testing.T) {
	const eps = 0.3
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 4; trial++ {
		n := 8 + rng.Intn(16)
		g := randomConnectedGraph(n, rng)
		r, err := NewRouter(g, Options{Epsilon: eps, Seed: int64(trial + 1)})
		if err != nil {
			t.Fatal(err)
		}
		for batch := 0; batch < 4; batch++ {
			if _, err := r.UpdateCapacities(randomEdits(g, rng)); err != nil {
				t.Fatalf("trial %d batch %d: %v", trial, batch, err)
			}
			s, tt := 0, g.N()-1
			exact, _ := ExactMaxFlow(g, s, tt)
			res, err := r.MaxFlow(s, tt)
			if err != nil {
				t.Fatalf("trial %d batch %d: %v", trial, batch, err)
			}
			if res.Value > float64(exact)*1.0001 {
				t.Fatalf("trial %d batch %d: value %v exceeds exact %d", trial, batch, res.Value, exact)
			}
			if res.Value < float64(exact)/((1+eps)*(1+eps))-1e-9 {
				t.Fatalf("trial %d batch %d: value %v below (1+ε)² bound of %d", trial, batch, res.Value, exact)
			}
			for e, fe := range res.Flow {
				_, _, capacity := g.EdgeEndpoints(e)
				if math.Abs(fe) > float64(capacity)*(1+1e-9) {
					t.Fatalf("trial %d batch %d: edge %d overloaded after update: |%v| > %d",
						trial, batch, e, fe, capacity)
				}
			}
		}
	}
}

// The same edit sequence applied at different worker counts must leave
// bit-identical approximators (tree topologies, virtual capacities, cut
// capacities, α) and bit-identical query answers.
func TestUpdateCapacitiesWorkerDeterminism(t *testing.T) {
	buildAndUpdate := func(workers int) *Router {
		defer SetParallelism(SetParallelism(workers))
		rng := rand.New(rand.NewSource(7))
		g := randomConnectedGraph(40, rng)
		r, err := NewRouter(g, Options{Seed: 5, DisableWarmStart: true})
		if err != nil {
			t.Fatal(err)
		}
		for batch := 0; batch < 3; batch++ {
			if _, err := r.UpdateCapacities(randomEdits(g, rng)); err != nil {
				t.Fatal(err)
			}
		}
		return r
	}
	a, b := buildAndUpdate(1), buildAndUpdate(4)
	if a.apx.Alpha != b.apx.Alpha || a.apx.AlphaLow != b.apx.AlphaLow {
		t.Fatalf("alpha differs across worker counts: %v/%v vs %v/%v",
			a.apx.Alpha, a.apx.AlphaLow, b.apx.Alpha, b.apx.AlphaLow)
	}
	if len(a.apx.Trees) != len(b.apx.Trees) {
		t.Fatal("tree count differs across worker counts")
	}
	for k := range a.apx.Trees {
		ta, tb := a.apx.Trees[k], b.apx.Trees[k]
		for v := 0; v < ta.N(); v++ {
			if ta.Parent[v] != tb.Parent[v] || ta.Cap[v] != tb.Cap[v] {
				t.Fatalf("tree %d differs at vertex %d after updates", k, v)
			}
			if a.apx.CutCap[k][v] != b.apx.CutCap[k][v] {
				t.Fatalf("cut capacity %d/%d differs after updates", k, v)
			}
		}
	}
	ra, err := a.MaxFlow(0, a.g.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.MaxFlow(0, b.g.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Value != rb.Value || ra.Iterations != rb.Iterations {
		t.Fatalf("post-update queries differ: %v/%d vs %v/%d",
			ra.Value, ra.Iterations, rb.Value, rb.Iterations)
	}
}

// A tight AlphaRebuildFactor must route the update through the full
// rebuild fallback, and the rebuilt state must equal a fresh build on
// the edited graph.
func TestUpdateCapacitiesRebuildFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomConnectedGraph(30, rng)
	// Factor below 1 makes any measured α exceed the bound.
	r, err := NewRouter(g, Options{Seed: 3, AlphaRebuildFactor: 0.5, DisableWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	ur, err := r.UpdateCapacities([]CapEdit{{Edge: 0, Cap: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !ur.Rebuilt {
		t.Fatal("AlphaRebuildFactor 0.5 did not force a rebuild")
	}
	fresh, err := NewRouter(&Graph{g: r.g}, Options{Seed: 3, DisableWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.apx.Alpha != fresh.apx.Alpha {
		t.Fatalf("rebuilt alpha %v differs from fresh build %v", r.apx.Alpha, fresh.apx.Alpha)
	}
	for k := range r.apx.Trees {
		for v := 0; v < r.apx.Trees[k].N(); v++ {
			if r.apx.Trees[k].Parent[v] != fresh.apx.Trees[k].Parent[v] {
				t.Fatalf("rebuilt tree %d differs from fresh build at %d", k, v)
			}
		}
	}
}

// Edits must be validated before anything mutates.
func TestUpdateCapacitiesValidation(t *testing.T) {
	g := NewGraph(3)
	e0 := g.AddEdge(0, 1, 4)
	g.AddEdge(1, 2, 4)
	r, err := NewRouter(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.UpdateCapacities([]CapEdit{{Edge: 99, Cap: 1}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := r.UpdateCapacities([]CapEdit{{Edge: e0, Cap: 0}}); err == nil {
		t.Fatal("non-positive capacity accepted")
	}
	// The failed batches must not have touched the graph.
	if _, _, c := g.EdgeEndpoints(e0); c != 4 {
		t.Fatalf("failed update mutated capacity to %d", c)
	}
}

// The warm cache must forget pre-edit flows: a repeat query that would
// warm-start before the update starts cold after it.
func TestUpdateCapacitiesClearsWarmCache(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomConnectedGraph(20, rng)
	r, err := NewRouter(g, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := r.MaxFlow(0, g.N()-1); err != nil || res.WarmStarted {
		t.Fatalf("first query warm-started (err %v)", err)
	}
	if res, err := r.MaxFlow(0, g.N()-1); err != nil || !res.WarmStarted {
		t.Fatalf("repeat query did not warm-start (err %v)", err)
	}
	if _, err := r.UpdateCapacities([]CapEdit{{Edge: 0, Cap: 1}}); err != nil {
		t.Fatal(err)
	}
	if res, err := r.MaxFlow(0, g.N()-1); err != nil || res.WarmStarted {
		t.Fatalf("post-update query warm-started from a stale entry (err %v)", err)
	}
}
