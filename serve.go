package distflow

// Serving front-end (DESIGN.md §9): admission control plus a scheduler
// that coalesces concurrently submitted max-flow queries into
// warm-cache-aware MaxFlowBatch calls. The epoch-snapshot Router makes
// this safe without any stop-the-world: queries batch and run while
// topology/capacity updates publish new epochs underneath.
//
// The coalescing model is leader-based: the first goroutine to submit
// into an idle server becomes the batch leader and drains the queue
// inline, one MaxFlowBatch per drain; everyone else parks on a result
// channel. Concurrent repeats of the same (s,t) pair collapse into ONE
// solve whose *Result all waiters share — with the per-epoch warm
// cache behind the batch, a popular pair costs one near-converged
// solve per batch rather than one per caller.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrOverloaded is returned by Server.MaxFlow when admission control
// rejects the query: MaxInFlight queries are already admitted. Callers
// shed load (HTTP 503) rather than queue without bound.
var ErrOverloaded = errors.New("distflow: server overloaded")

// ServeOptions configures a Server. The zero value serves with the
// defaults noted per field.
type ServeOptions struct {
	// MaxInFlight caps admitted-but-unfinished queries; submissions
	// beyond it fail fast with ErrOverloaded (0 = 1024).
	MaxInFlight int
	// MaxBatch caps the distinct pairs per MaxFlowBatch call the
	// scheduler issues (0 = 64). Smaller batches bound the latency a
	// query can absorb waiting for stragglers sharing its batch.
	MaxBatch int
}

// ServeStats is a point-in-time snapshot of a Server's counters.
type ServeStats struct {
	// Queries counts admitted max-flow submissions.
	Queries int64
	// Coalesced counts submissions served by another submission's solve
	// (a concurrent repeat of the same (s,t) pair).
	Coalesced int64
	// Batches counts MaxFlowBatch calls issued by the scheduler.
	Batches int64
	// Rejected counts submissions refused by admission control.
	Rejected int64
	// EpochSeq is the router's published epoch sequence number.
	EpochSeq uint64
}

// Server wraps a Router with admission control and the coalescing
// batch scheduler. All methods are safe for concurrent use; updates
// pass straight through to the router, whose epoch machinery isolates
// them from in-flight batches.
type Server struct {
	r    *Router
	opts ServeOptions

	inflight atomic.Int64

	mu      sync.Mutex
	order   []STPair             // distinct pending pairs, submission order
	waiters map[STPair][]chan serveOut
	leading bool // a leader is currently draining the queue

	queries   atomic.Int64
	coalesced atomic.Int64
	batches   atomic.Int64
	rejected  atomic.Int64
}

type serveOut struct {
	res *Result
	err error
}

// NewServer wraps r. The router may be shared: the server adds no
// state to it beyond issuing queries and updates.
func NewServer(r *Router, opts ServeOptions) *Server {
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 1024
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 64
	}
	return &Server{r: r, opts: opts, waiters: make(map[STPair][]chan serveOut)}
}

// Router returns the wrapped router (for updates and direct queries).
func (s *Server) Router() *Router { return s.r }

// MaxFlow submits one s-t max-flow query through admission control and
// the coalescing scheduler, blocking until its batch completes. A
// query failing the batch returns its own error; concurrent repeats of
// the same pair all receive the same result.
func (s *Server) MaxFlow(src, dst int) (*Result, error) {
	if s.inflight.Add(1) > int64(s.opts.MaxInFlight) {
		s.inflight.Add(-1)
		s.rejected.Add(1)
		return nil, fmt.Errorf("%w: %d queries in flight", ErrOverloaded, s.opts.MaxInFlight)
	}
	defer s.inflight.Add(-1)
	s.queries.Add(1)

	p := STPair{S: src, T: dst}
	ch := make(chan serveOut, 1)
	s.mu.Lock()
	if ws, ok := s.waiters[p]; ok {
		// Coalesce: ride the already-queued solve of the same pair.
		s.waiters[p] = append(ws, ch)
		s.coalesced.Add(1)
	} else {
		s.waiters[p] = []chan serveOut{ch}
		s.order = append(s.order, p)
	}
	lead := !s.leading
	if lead {
		s.leading = true
	}
	s.mu.Unlock()

	if lead {
		s.drain()
	}
	out := <-ch
	return out.res, out.err
}

// drain runs batches until the queue empties, on the leader's own
// goroutine (no background worker to manage or leak). Queries that
// arrive while a batch is solving are picked up by the next loop
// iteration, so under sustained load the batch size grows toward
// MaxBatch by itself — the coalescing window is exactly the solve time
// of the previous batch.
func (s *Server) drain() {
	for {
		s.mu.Lock()
		if len(s.order) == 0 {
			s.leading = false
			s.mu.Unlock()
			return
		}
		n := len(s.order)
		if n > s.opts.MaxBatch {
			n = s.opts.MaxBatch
		}
		pairs := make([]STPair, n)
		copy(pairs, s.order)
		s.order = append(s.order[:0], s.order[n:]...)
		taken := make([][]chan serveOut, n)
		for i, p := range pairs {
			taken[i] = s.waiters[p]
			delete(s.waiters, p)
		}
		s.mu.Unlock()

		s.batches.Add(1)
		results, err := s.r.MaxFlowBatch(pairs)
		for i := range pairs {
			out := serveOut{res: results[i]}
			if results[i] == nil {
				// MaxFlowBatch reports the first failure; entries left nil
				// failed individually — re-derive a per-pair error so every
				// waiter learns its own fate.
				if err != nil {
					out.err = err
				} else {
					out.err = fmt.Errorf("distflow: batch query %d→%d failed", pairs[i].S, pairs[i].T)
				}
			}
			for _, ch := range taken[i] {
				ch <- out
			}
		}
	}
}

// UpdateCapacities forwards to the router (safe concurrently with
// serving; see Router.UpdateCapacities).
func (s *Server) UpdateCapacities(edits []CapEdit) (*UpdateResult, error) {
	return s.r.UpdateCapacities(edits)
}

// UpdateTopology forwards to the router (safe concurrently with
// serving; see Router.UpdateTopology).
func (s *Server) UpdateTopology(edits []TopoEdit) (*UpdateResult, error) {
	return s.r.UpdateTopology(edits)
}

// Stats snapshots the server's counters.
func (s *Server) Stats() ServeStats {
	return ServeStats{
		Queries:   s.queries.Load(),
		Coalesced: s.coalesced.Load(),
		Batches:   s.batches.Load(),
		Rejected:  s.rejected.Load(),
		EpochSeq:  s.r.EpochSeq(),
	}
}
