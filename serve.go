package distflow

// Serving front-end (DESIGN.md §9, failure contract §11): admission
// control plus a scheduler that coalesces concurrently submitted
// max-flow queries into warm-cache-aware batch calls. The
// epoch-snapshot Router makes this safe without any stop-the-world:
// queries batch and run while topology/capacity updates publish new
// epochs underneath.
//
// The coalescing model is leader-based: the first goroutine to submit
// into an idle server elects itself leader and spawns the drain loop,
// then parks on a result channel like everyone else. Concurrent repeats
// of the same (s,t) pair collapse into ONE solve whose *Result all
// waiters share — with the per-epoch warm cache behind the batch, a
// popular pair costs one near-converged solve per batch rather than one
// per caller.
//
// Failure handling (DESIGN.md §11):
//
//   - Deadlines degrade, cancellation aborts. A waiter whose context
//     carries a deadline gets its pair's solve capped at the earliest
//     waiter deadline minus a safety margin; an expired solve returns
//     its current iterate flagged Result.Degraded with the measured
//     CertBound instead of an error. A waiter whose context is
//     cancelled abandons immediately (its buffered channel absorbs the
//     late delivery); the shared solve is never cancelled by one
//     waiter, so coalesced survivors are unperturbed.
//   - Load sheds fail fast: over-budget submissions return
//     ErrOverloaded, submissions into a draining server return
//     ErrDraining — both immediately, never by queuing without bound.
//     Both are retryable by contract (Retry-After at the HTTP layer).
//   - Panics stop at the batch boundary: a panic inside a solve (the
//     par pool re-raises the first chunk's panic on the batch
//     goroutine after the region drains) is recovered, counted, and
//     delivered to the batch's waiters as an error. The server keeps
//     serving.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"distflow/internal/faultinject"
)

// ErrOverloaded is returned by Server.MaxFlow when admission control
// rejects the query: MaxInFlight queries are already admitted. Callers
// shed load (HTTP 503 + Retry-After) rather than queue without bound.
// Retryable: the same query is expected to succeed once load drops.
var ErrOverloaded = errors.New("distflow: server overloaded")

// ErrDraining is returned by Server.MaxFlow while the server is
// draining for shutdown (SetDraining(true)): in-flight queries finish,
// new ones are refused. Retryable — against another replica.
var ErrDraining = errors.New("distflow: server draining")

// serveSolveSite is the faultinject site the batch solver passes before
// each batch; chaos tests and the -serve bench arm it in Panic mode to
// exercise the boundary recovery.
const serveSolveSite = "distflow/serve/solve"

// Fault-injection site names (internal/faultinject), exported so chaos
// harnesses outside the package — the -serve bench's chaos phase — can
// arm the same failure points the in-package chaos tests use.
const (
	// FaultSiteServeSolve fires before each batch solve; Panic mode
	// exercises the Server's boundary recovery.
	FaultSiteServeSolve = serveSolveSite
	// FaultSiteTopoResample fires after a topology batch is applied to
	// the update's private fork, before resampling; an injected error
	// there makes the update fail and drop the fork unpublished.
	FaultSiteTopoResample = topoResampleSite
)

// ServeOptions configures a Server. The zero value serves with the
// defaults noted per field.
type ServeOptions struct {
	// MaxInFlight caps admitted-but-unfinished queries; submissions
	// beyond it fail fast with ErrOverloaded (0 = 1024).
	MaxInFlight int
	// MaxBatch caps the distinct pairs per batch call the scheduler
	// issues (0 = 64). Smaller batches bound the latency a query can
	// absorb waiting for stragglers sharing its batch.
	MaxBatch int
	// DefaultDeadline, when positive, bounds every query submitted
	// without its own context deadline: the solve degrades to its
	// current iterate (Result.Degraded) when the budget expires. 0 =
	// queries without a deadline run to convergence.
	DefaultDeadline time.Duration
}

// ServeStats is a point-in-time snapshot of a Server's counters.
type ServeStats struct {
	// Queries counts admitted max-flow submissions.
	Queries int64
	// Coalesced counts submissions served by another submission's solve
	// (a concurrent repeat of the same (s,t) pair).
	Coalesced int64
	// Batches counts batch solves issued by the scheduler.
	Batches int64
	// Rejected counts submissions refused without an answer — the sum
	// of the per-cause counters below.
	Rejected int64
	// RejectedOverload counts submissions shed by admission control
	// (ErrOverloaded).
	RejectedOverload int64
	// RejectedDraining counts submissions refused while draining
	// (ErrDraining).
	RejectedDraining int64
	// RejectedDeadline counts queries that returned
	// context.DeadlineExceeded without a result: the deadline was
	// already expired at submission, or expired so far inside the
	// solve's safety margin that no degraded iterate came back in time.
	RejectedDeadline int64
	// RejectedValidation counts queries whose solve failed with a
	// non-retryable validation error (bad terminals, removed vertices).
	RejectedValidation int64
	// RejectedPanic counts queries failed by a recovered solve panic.
	RejectedPanic int64
	// Canceled counts queries abandoned by their caller
	// (context.Canceled) before delivery; their coalesced siblings were
	// unaffected.
	Canceled int64
	// Degraded counts deadline-degraded best-effort answers served
	// (Result.Degraded, one per solved pair).
	Degraded int64
	// Panics counts recovered solve panics (one per batch that
	// panicked; RejectedPanic counts the queries each failed).
	Panics int64
	// Draining reports whether the server is refusing new submissions
	// for shutdown.
	Draining bool
	// EpochSeq is the router's published epoch sequence number.
	EpochSeq uint64
	// EpochsRetired and EpochsDrained expose the router's snapshot
	// turnover; Retired − Drained is the number of superseded epochs
	// still pinned by in-flight queries (≈0 on a healthy server).
	EpochsRetired int64
	EpochsDrained int64
}

// Server wraps a Router with admission control and the coalescing
// batch scheduler. All methods are safe for concurrent use; updates
// pass straight through to the router, whose epoch machinery isolates
// them from in-flight batches.
type Server struct {
	r    *Router
	opts ServeOptions

	inflight atomic.Int64
	draining atomic.Bool

	mu      sync.Mutex
	order   []STPair // distinct pending pairs, submission order
	waiters map[STPair][]*svWaiter
	leading bool // a leader's drain loop is currently running

	queries       atomic.Int64
	coalesced     atomic.Int64
	batches       atomic.Int64
	rejOverload   atomic.Int64
	rejDraining   atomic.Int64
	rejDeadline   atomic.Int64
	rejValidation atomic.Int64
	rejPanic      atomic.Int64
	canceled      atomic.Int64
	degraded      atomic.Int64
	panics        atomic.Int64
}

// svWaiter is one parked submission. ch is buffered (size 1) so the
// drain loop's delivery never blocks on a waiter that abandoned at its
// deadline or cancellation — the stale result is absorbed and GC'd.
type svWaiter struct {
	ch  chan serveOut
	ctx context.Context
}

type serveOut struct {
	res *Result
	err error
}

// NewServer wraps r. The router may be shared: the server adds no
// state to it beyond issuing queries and updates.
func NewServer(r *Router, opts ServeOptions) *Server {
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 1024
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 64
	}
	return &Server{r: r, opts: opts, waiters: make(map[STPair][]*svWaiter)}
}

// Router returns the wrapped router (for updates and direct queries).
func (s *Server) Router() *Router { return s.r }

// SetDraining flips the server's draining state. While draining, new
// submissions are refused with ErrDraining; queries already admitted
// run to completion. The HTTP front-end flips this on SIGTERM before
// http.Server.Shutdown so load balancers see /healthz fail while the
// listener drains.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports whether the server is refusing new submissions.
func (s *Server) Draining() bool { return s.draining.Load() }

// MaxFlow submits one s-t max-flow query through admission control and
// the coalescing scheduler, blocking until its batch completes. A
// query failing the batch returns its own error; concurrent repeats of
// the same pair all receive the same result.
func (s *Server) MaxFlow(src, dst int) (*Result, error) {
	return s.MaxFlowCtx(context.Background(), src, dst)
}

// MaxFlowCtx is MaxFlow under a context. A context deadline (or
// ServeOptions.DefaultDeadline, when the context has none) caps the
// query's solve: past it the answer comes back flagged Result.Degraded
// with the measured CertBound rather than failing — the server returns
// what it has, when it promised. Cancelling the context abandons the
// submission immediately with context.Canceled; a coalesced solve the
// query shared is NOT cancelled, and its other waiters receive results
// bit-identical to a run without the cancellation.
//
// Error contract (§11): ErrOverloaded and ErrDraining are retryable
// load-shedding signals returned before any work; ctx.Err() reflects
// the caller's context; anything else is a validation error that will
// repeat on retry.
func (s *Server) MaxFlowCtx(ctx context.Context, src, dst int) (*Result, error) {
	if s.draining.Load() {
		s.rejDraining.Add(1)
		return nil, ErrDraining
	}
	if err := ctx.Err(); err != nil {
		// Dead on arrival: a deadline that already passed is a
		// rejection, not a solve.
		if errors.Is(err, context.DeadlineExceeded) {
			s.rejDeadline.Add(1)
		} else {
			s.canceled.Add(1)
		}
		return nil, err
	}
	if s.inflight.Add(1) > int64(s.opts.MaxInFlight) {
		s.inflight.Add(-1)
		s.rejOverload.Add(1)
		return nil, fmt.Errorf("%w: %d queries in flight", ErrOverloaded, s.opts.MaxInFlight)
	}
	defer s.inflight.Add(-1)
	s.queries.Add(1)

	if s.opts.DefaultDeadline > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.opts.DefaultDeadline)
			defer cancel()
		}
	}

	p := STPair{S: src, T: dst}
	w := &svWaiter{ch: make(chan serveOut, 1), ctx: ctx}
	s.mu.Lock()
	if ws, ok := s.waiters[p]; ok {
		// Coalesce: ride the already-queued solve of the same pair.
		s.waiters[p] = append(ws, w)
		s.coalesced.Add(1)
	} else {
		s.waiters[p] = []*svWaiter{w}
		s.order = append(s.order, p)
	}
	lead := !s.leading
	if lead {
		s.leading = true
	}
	s.mu.Unlock()

	if lead {
		// The drain loop runs on its own goroutine so the leader can
		// park with a deadline like any other waiter: a leader draining
		// inline could blow its own budget solving other callers'
		// batches. The goroutine exits when the queue empties.
		go s.drain()
	}
	select {
	case out := <-w.ch:
		return out.res, out.err
	case <-ctx.Done():
		// Abandon: the solve (if the pair's batch is already running)
		// finishes without us; the buffered channel absorbs its result.
		err := ctx.Err()
		if errors.Is(err, context.DeadlineExceeded) {
			// The solve's margin should have delivered a degraded
			// answer before this fires; reaching it means the margin
			// was not enough (tiny deadline or scheduling stall).
			s.rejDeadline.Add(1)
		} else {
			s.canceled.Add(1)
		}
		return nil, err
	}
}

// solveDeadlineMargin returns the slice of the remaining budget the
// solve gives back to delivery: the solve context expires early by
// max(5ms, 10% of the remaining budget) so the degraded iterate is
// packaged and delivered before the waiter's own deadline fires.
func solveDeadlineMargin(remaining time.Duration) time.Duration {
	m := remaining / 10
	if m < 5*time.Millisecond {
		m = 5 * time.Millisecond
	}
	return m
}

// drain runs batches until the queue empties, on the leader-spawned
// goroutine. Queries that arrive while a batch is solving are picked up
// by the next loop iteration, so under sustained load the batch size
// grows toward MaxBatch by itself — the coalescing window is exactly
// the solve time of the previous batch.
func (s *Server) drain() {
	for {
		s.mu.Lock()
		if len(s.order) == 0 {
			s.leading = false
			s.mu.Unlock()
			return
		}
		n := len(s.order)
		if n > s.opts.MaxBatch {
			n = s.opts.MaxBatch
		}
		pairs := make([]STPair, n)
		copy(pairs, s.order)
		s.order = append(s.order[:0], s.order[n:]...)
		taken := make([][]*svWaiter, n)
		for i, p := range pairs {
			taken[i] = s.waiters[p]
			delete(s.waiters, p)
		}
		s.mu.Unlock()

		s.batches.Add(1)
		// Per-pair solve contexts, detached from the waiters' own
		// contexts (a waiter's cancellation must not perturb the shared
		// solve): only the earliest waiter deadline carries over, minus
		// a margin so the degraded answer lands before the waiter
		// abandons.
		ctxs := make([]context.Context, n)
		var cancels []context.CancelFunc
		for i := range pairs {
			ctxs[i] = context.Background()
			earliest := time.Time{}
			for _, w := range taken[i] {
				if d, ok := w.ctx.Deadline(); ok && (earliest.IsZero() || d.Before(earliest)) {
					earliest = d
				}
			}
			if !earliest.IsZero() {
				remaining := time.Until(earliest)
				solveCtx, cancel := context.WithDeadline(context.Background(),
					earliest.Add(-solveDeadlineMargin(remaining)))
				ctxs[i] = solveCtx
				cancels = append(cancels, cancel)
			}
		}
		results, errs, perr := s.solveBatch(ctxs, pairs)
		for _, cancel := range cancels {
			cancel()
		}
		for i := range pairs {
			var out serveOut
			switch {
			case perr != nil:
				// The whole batch died to a recovered panic.
				out.err = perr
				s.rejPanic.Add(int64(len(taken[i])))
			case errs[i] != nil:
				out.err = errs[i]
				if errors.Is(errs[i], context.DeadlineExceeded) {
					// Sub-margin deadline: the solve context expired
					// before the first poll. Surface it as the waiter's
					// own deadline error.
					s.rejDeadline.Add(int64(len(taken[i])))
				} else {
					s.rejValidation.Add(int64(len(taken[i])))
				}
			case results[i] == nil:
				out.err = fmt.Errorf("distflow: batch query %d→%d failed", pairs[i].S, pairs[i].T)
				s.rejValidation.Add(int64(len(taken[i])))
			default:
				out.res = results[i]
				if results[i].Degraded {
					s.degraded.Add(1)
				}
			}
			for _, w := range taken[i] {
				w.ch <- out
			}
		}
	}
}

// solveBatch is the panic boundary around one batch solve: a panic
// anywhere inside — the par pool re-raises the first chunk's panic
// here after its parallel region fully drains — is recovered into perr
// instead of killing the process, and the drain loop keeps serving.
func (s *Server) solveBatch(ctxs []context.Context, pairs []STPair) (results []*Result, errs []error, perr error) {
	defer func() {
		if p := recover(); p != nil {
			s.panics.Add(1)
			perr = fmt.Errorf("distflow: panic serving batch of %d: %v", len(pairs), p)
		}
	}()
	if err := faultinject.Hit(serveSolveSite); err != nil {
		// An armed error (non-Panic mode) models an infrastructure
		// failure below the solver; fail the batch like a panic would.
		return nil, nil, err
	}
	results, errs = s.r.maxFlowBatchCtxs(ctxs, pairs)
	return results, errs, nil
}

// UpdateCapacities forwards to the router (safe concurrently with
// serving; see Router.UpdateCapacities).
func (s *Server) UpdateCapacities(edits []CapEdit) (*UpdateResult, error) {
	return s.r.UpdateCapacities(edits)
}

// UpdateCapacitiesCtx forwards to the router; see
// Router.UpdateCapacitiesCtx for the abort/atomicity contract.
func (s *Server) UpdateCapacitiesCtx(ctx context.Context, edits []CapEdit) (*UpdateResult, error) {
	return s.r.UpdateCapacitiesCtx(ctx, edits)
}

// UpdateTopology forwards to the router (safe concurrently with
// serving; see Router.UpdateTopology).
func (s *Server) UpdateTopology(edits []TopoEdit) (*UpdateResult, error) {
	return s.r.UpdateTopology(edits)
}

// UpdateTopologyCtx forwards to the router; see Router.UpdateTopologyCtx
// for the abort/atomicity contract.
func (s *Server) UpdateTopologyCtx(ctx context.Context, edits []TopoEdit) (*UpdateResult, error) {
	return s.r.UpdateTopologyCtx(ctx, edits)
}

// Stats snapshots the server's counters.
func (s *Server) Stats() ServeStats {
	st := ServeStats{
		Queries:            s.queries.Load(),
		Coalesced:          s.coalesced.Load(),
		Batches:            s.batches.Load(),
		RejectedOverload:   s.rejOverload.Load(),
		RejectedDraining:   s.rejDraining.Load(),
		RejectedDeadline:   s.rejDeadline.Load(),
		RejectedValidation: s.rejValidation.Load(),
		RejectedPanic:      s.rejPanic.Load(),
		Canceled:           s.canceled.Load(),
		Degraded:           s.degraded.Load(),
		Panics:             s.panics.Load(),
		Draining:           s.draining.Load(),
		EpochSeq:           s.r.EpochSeq(),
		EpochsRetired:      s.r.EpochsRetired(),
		EpochsDrained:      s.r.EpochsDrained(),
	}
	st.Rejected = st.RejectedOverload + st.RejectedDraining + st.RejectedDeadline +
		st.RejectedValidation + st.RejectedPanic
	return st
}
