package distflow

// Chaos tests of the serving stack (DESIGN.md §11): queries, churn,
// cancellations, injected update failures, a solver panic, and overload
// all running concurrently (these tests are in CI's -race matrix). The
// invariants checked are the robustness contract itself — no hung or
// leaked goroutines, every submission accounted for in exactly one
// counter bucket, the server still serving correct answers afterwards.

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distflow/internal/faultinject"
)

// TestServerPanicRecovery: a panic below the solver is recovered at the
// batch boundary — the query fails with an error naming the panic, the
// counters record it, and the very next query succeeds.
func TestServerPanicRecovery(t *testing.T) {
	defer faultinject.Reset()
	rng := rand.New(rand.NewSource(41))
	g := randomConnectedGraph(40, rng)
	r, err := NewRouter(g, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(r, ServeOptions{})
	s, tt := activePair(g)

	disarm := faultinject.Arm(serveSolveSite, faultinject.Fault{Panic: true, Limit: 1})
	defer disarm()
	res, err := srv.MaxFlow(s, tt)
	if err == nil || res != nil {
		t.Fatalf("panicked batch returned (%v, %v), want error", res, err)
	}
	if !strings.Contains(err.Error(), "panic") {
		t.Fatalf("error %q does not name the recovered panic", err)
	}
	st := srv.Stats()
	if st.Panics != 1 || st.RejectedPanic != 1 || st.Rejected != 1 {
		t.Fatalf("after panic: Panics=%d RejectedPanic=%d Rejected=%d, want 1/1/1",
			st.Panics, st.RejectedPanic, st.Rejected)
	}

	// Limit=1: the fault is spent, the server serves again.
	res, err = srv.MaxFlow(s, tt)
	if err != nil || res == nil || res.Value <= 0 {
		t.Fatalf("query after recovered panic: (%+v, %v)", res, err)
	}
}

// TestServerDrainingRejects pins the drain contract used by cmd/serve's
// SIGTERM path: a draining server refuses new submissions with
// ErrDraining and counts them, then serves again once drained state is
// lifted.
func TestServerDrainingRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomConnectedGraph(30, rng)
	r, err := NewRouter(g, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(r, ServeOptions{})
	s, tt := activePair(g)

	srv.SetDraining(true)
	if _, err := srv.MaxFlow(s, tt); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining server returned %v, want ErrDraining", err)
	}
	st := srv.Stats()
	if !st.Draining || st.RejectedDraining != 1 {
		t.Fatalf("stats after draining reject: Draining=%v RejectedDraining=%d", st.Draining, st.RejectedDraining)
	}
	srv.SetDraining(false)
	if _, err := srv.MaxFlow(s, tt); err != nil {
		t.Fatalf("query after drain lifted: %v", err)
	}
}

// TestChaosServing runs the full fault mix concurrently against one
// server: plain queries, deadline-bounded queries, caller
// cancellations, capacity and topology churn with injected resample
// failures, and a solver panic. Afterwards it asserts the accounting
// identity (every admitted query either answered, degraded, rejected,
// or canceled — nothing lost), that goroutines settle back to the
// post-warmup baseline (no leaked drain loops or parked waiters), and
// that the server still answers correctly.
func TestChaosServing(t *testing.T) {
	defer faultinject.Reset()
	rng := rand.New(rand.NewSource(43))
	g := randomConnectedGraph(60, rng)
	r, err := NewRouter(g, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(r, ServeOptions{MaxBatch: 8})
	s0, t0 := activePair(g)

	// Warm up once so the lazily started par pool workers are part of
	// the goroutine baseline.
	if _, err := srv.MaxFlow(s0, t0); err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()

	// Every third topology resample fails (injected), exercising the
	// drop-the-fork path under live queries; one batch solve panics.
	disarmTopo := faultinject.Arm(topoResampleSite,
		faultinject.Fault{Every: 3, Err: errors.New("injected resample failure")})
	defer disarmTopo()
	disarmPanic := faultinject.Arm(serveSolveSite, faultinject.Fault{Panic: true, Every: 5, Limit: 1})
	defer disarmPanic()

	var (
		wg        sync.WaitGroup
		answered  atomic.Int64 // non-degraded results delivered
		degraded  atomic.Int64
		failed    atomic.Int64 // ctx errors / panic errors / validation
		updates   atomic.Int64
		updFails  atomic.Int64
		canceled  atomic.Int64 // cancellations we actively issued
		doaOrShed atomic.Int64 // rejected before admission
	)

	// Query workers: a mix of plain, deadline-bounded, and
	// caller-cancelled submissions.
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 25; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				switch i % 3 {
				case 1: // tight deadline — may degrade or reject
					ctx, cancel = context.WithTimeout(ctx, time.Duration(1+wrng.Intn(20))*time.Millisecond)
				case 2: // cancel shortly after submit
					ctx, cancel = context.WithCancel(ctx)
					delay := time.Duration(wrng.Intn(2)) * time.Millisecond
					go func(c context.CancelFunc) {
						time.Sleep(delay)
						c()
					}(cancel)
					canceled.Add(1)
				}
				res, err := srv.MaxFlowCtx(ctx, s0, t0)
				switch {
				case err == nil && res.Degraded:
					degraded.Add(1)
				case err == nil:
					answered.Add(1)
				case errors.Is(err, ErrOverloaded) || errors.Is(err, ErrDraining):
					doaOrShed.Add(1)
				default:
					failed.Add(1)
				}
				cancel()
			}
		}(w)
	}

	// Churn worker: capacity edits plus topology edits whose resamples
	// fail deterministically every third attempt. A single goroutine —
	// updates are serialized by the router anyway, and the dimension
	// reads (g.M, g.N) feeding edit generation are not synchronized
	// against a concurrent writer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(200))
		for i := 0; i < 30; i++ {
			var err error
			if i%2 == 0 {
				_, err = srv.UpdateCapacities(randomEdits(g, wrng))
			} else {
				u := wrng.Intn(g.N())
				v := (u + 1 + wrng.Intn(g.N()-1)) % g.N()
				_, err = srv.UpdateTopology([]TopoEdit{AddEdgeEdit(u, v, 1+wrng.Int63n(9))})
			}
			if err != nil {
				updFails.Add(1)
			} else {
				updates.Add(1)
			}
		}
	}()

	wg.Wait()

	// Nothing lost: Queries = delivered + in-solve failures + abandons,
	// and rejections/cancellations all landed in a per-cause bucket.
	st := srv.Stats()
	if st.Rejected != st.RejectedOverload+st.RejectedDraining+st.RejectedDeadline+
		st.RejectedValidation+st.RejectedPanic {
		t.Fatalf("Rejected (%d) is not the sum of its causes: %+v", st.Rejected, st)
	}
	delivered := answered.Load() + degraded.Load()
	if delivered == 0 {
		t.Fatal("chaos run delivered zero successful answers")
	}
	if updates.Load() == 0 || updFails.Load() == 0 {
		t.Fatalf("churn mix degenerate: %d applied, %d injected failures (want both > 0)",
			updates.Load(), updFails.Load())
	}
	if st.Panics != 1 {
		t.Fatalf("Panics = %d, want exactly 1 (Limit=1)", st.Panics)
	}
	// Degraded counts once per solved pair; coalesced callers sharing a
	// degraded result each observe the flag, so callers ≥ server, and a
	// caller can only see it if the server counted it.
	if cd := degraded.Load(); st.Degraded > cd || (cd > 0 && st.Degraded == 0) {
		t.Fatalf("server counted %d degraded pairs, callers saw %d degraded answers", st.Degraded, cd)
	}

	// Goroutine settle: abandoned waiters and drain loops must all exit.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines leaked: %d > baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
	}

	// Pinned epochs drained: superseded snapshots are all freed.
	if st2 := srv.Stats(); st2.EpochsRetired != st2.EpochsDrained {
		t.Fatalf("epochs pinned after chaos: retired %d, drained %d", st2.EpochsRetired, st2.EpochsDrained)
	}

	// The server is still healthy and exact: disarm the faults and check
	// the answer against Dinic on the churned graph.
	faultinject.Reset()
	res, err := srv.MaxFlow(s0, t0)
	if err != nil {
		t.Fatalf("query after chaos: %v", err)
	}
	exact, _ := ExactMaxFlow(g, s0, t0)
	if res.Value > float64(exact)*1.7 || float64(exact) > res.Value*1.7 {
		t.Fatalf("post-chaos answer %v too far from exact %d", res.Value, exact)
	}
}

// TestServerCancelDoesNotPerturbCoalescedSibling: two submissions of
// the same pair coalesce into one solve; cancelling one must leave the
// other's answer bit-identical to an undisturbed solve of that pair.
func TestServerCancelDoesNotPerturbCoalescedSibling(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	g := randomConnectedGraph(50, rng)
	r, err := NewRouter(g, Options{Seed: 2, DisableWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	s0, t0 := activePair(g)
	ref, err := r.MaxFlow(s0, t0)
	if err != nil {
		t.Fatal(err)
	}

	srv := NewServer(r, ServeOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var sibRes *Result
	var sibErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		sibRes, sibErr = srv.MaxFlow(s0, t0)
	}()
	go func() {
		defer wg.Done()
		// Same pair under a context we cancel mid-flight; whichever of
		// the two submissions leads, the shared solve is detached from
		// this context.
		go func() {
			time.Sleep(time.Millisecond)
			cancel()
		}()
		srv.MaxFlowCtx(ctx, s0, t0) //nolint:errcheck — either outcome is legal
	}()
	wg.Wait()

	if sibErr != nil {
		t.Fatalf("sibling errored: %v", sibErr)
	}
	if sibRes.Value != ref.Value || sibRes.Iterations != ref.Iterations {
		t.Fatalf("sibling perturbed: value %v→%v, iters %d→%d",
			ref.Value, sibRes.Value, ref.Iterations, sibRes.Iterations)
	}
	for e := range sibRes.Flow {
		if sibRes.Flow[e] != ref.Flow[e] {
			t.Fatalf("sibling flow differs at edge %d", e)
		}
	}
}
