package distflow

// Iteration-budget regression test: the BENCH_seed workload (the same
// graph, queries, and accuracy recorded in BENCH_seed.json /
// BENCH_accel.json) must solve within a fixed gradient-iteration
// ceiling. Iteration counts are hardware-independent and — for a fixed
// seed — fully deterministic, so this pins the solver's algorithmic
// efficiency even on 1-CPU CI runners where wall-clock assertions are
// meaningless. The pre-acceleration baseline spent 3854 iterations
// (BENCH_seed.json); the accelerated stepper with ε-continuation and
// the measured residual certificate spends 1126 (BENCH_accel.json).
// The ceiling sits between the two with headroom for benign numeric
// drift, so any regression that costs the 2× win fails here.

import (
	"math/rand"
	"testing"

	"distflow/internal/graph"
)

// iterationCeiling is the recorded budget for the benchmark workload:
// measured 1126 iterations, ceiling 1700 (≤ half the 3854-iteration
// seed baseline, preserving the ≥2× claim).
const iterationCeiling = 1700

func TestIterationBudgetOnBenchWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("n=2500 benchmark graph in short mode")
	}
	const (
		n       = 2500
		degree  = 8.0
		maxCap  = 64
		seed    = 3
		queries = 8
		epsilon = 0.5
	)
	rng := rand.New(rand.NewSource(seed))
	gg := graph.CapUniform(graph.GNP(n, degree/n, rng), maxCap, rng)
	G := NewGraph(gg.N())
	for _, e := range gg.Edges() {
		G.AddEdge(e.U, e.V, e.Cap)
	}
	r, err := NewRouter(G, Options{Epsilon: epsilon, Seed: seed, DisableWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	// The exact workload of cmd/bench -flow: distinct random pairs from
	// seed+1.
	qrng := rand.New(rand.NewSource(seed + 1))
	var pairs []STPair
	for len(pairs) < queries {
		s, tt := qrng.Intn(G.N()), qrng.Intn(G.N())
		if s != tt {
			pairs = append(pairs, STPair{S: s, T: tt})
		}
	}
	total := 0
	for _, p := range pairs {
		res, err := r.MaxFlow(p.S, p.T)
		if err != nil {
			t.Fatalf("query %d->%d: %v", p.S, p.T, err)
		}
		total += res.Iterations
	}
	t.Logf("workload iterations: %d (ceiling %d, seed baseline 3854)", total, iterationCeiling)
	if total > iterationCeiling {
		t.Fatalf("iteration budget exceeded: %d > %d — the solver regressed algorithmically", total, iterationCeiling)
	}
}
