// Package mst implements distributed minimum/maximum-weight spanning
// tree construction in the CONGEST model via Borůvka phases, plus a
// centralized Kruskal reference used for verification.
//
// The paper uses a maximum-weight spanning tree (weights = capacities)
// to route the residual demand left over by the gradient descent
// (Algorithm 1, Lemma 9.1). The Borůvka protocol here is genuinely
// message-passing: every phase (i) exchanges fragment identifiers with
// neighbours, (ii) finds each fragment's minimum outgoing edge by
// flooding over the fragment's tree edges, and (iii) merges fragments by
// flooding the new fragment identifier. Borůvka needs O(log n) phases;
// each phase costs O(fragment diameter) rounds, so the total is
// O(n log n) worst case — weaker than the Õ(D+√n) of Kutten–Peleg cited
// by the paper but with identical output; the experiments charge the
// Kutten–Peleg schedule separately (see internal/vtree's decomposition).
package mst

import (
	"fmt"
	"sort"

	"distflow/internal/congest"
	"distflow/internal/graph"
	"distflow/internal/proto"
)

// Result of a spanning tree computation.
type Result struct {
	// EdgeInTree[e] reports whether graph edge e was selected.
	EdgeInTree []bool
	// Tree is the selected tree rooted at the minimum-ID node.
	Tree *proto.Tree
	// TotalWeight is the sum of selected edge weights (in the
	// minimization orientation used internally).
	TotalWeight int64
	// Stats totals the measured rounds of all phases.
	Stats congest.Stats
}

// weight returns the minimization weight of edge e: capacity negated for
// maximum-weight trees. Ties are broken by edge index, making weights
// effectively unique, which Borůvka requires for correctness.
func weight(g *graph.Graph, e int, maximize bool) int64 {
	if maximize {
		return -g.Cap(e)
	}
	return g.Cap(e)
}

// candidate is a (weight, edge) pair ordered lexicographically.
type candidate struct {
	w int64
	e int64 // edge index; -1 when absent
}

func better(a, b candidate) bool {
	if a.e < 0 {
		return false
	}
	if b.e < 0 {
		return true
	}
	if a.w != b.w {
		return a.w < b.w
	}
	return a.e < b.e
}

// --- Phase programs ---

// exchangeFrag: one round in which every node tells every neighbour its
// fragment ID; output is the per-arc neighbour fragment view.
type exchangeFrag struct {
	fragID    int64
	neighFrag []int64
	sent      bool
}

func (p *exchangeFrag) Step(ctx *congest.Context, in []congest.Incoming) ([]congest.Outgoing, bool) {
	for _, m := range in {
		if msg, ok := m.Msg.(congest.IntMsg); ok {
			p.neighFrag[arcIndex(ctx, m.Edge)] = msg.Value
		}
	}
	if !p.sent {
		p.sent = true
		outs := make([]congest.Outgoing, 0, ctx.Degree())
		for i := 0; i < ctx.Degree(); i++ {
			outs = append(outs, congest.Outgoing{Edge: ctx.Arc(i).E, Msg: congest.IntMsg{Value: p.fragID}})
		}
		return outs, false
	}
	return nil, true
}

func arcIndex(ctx *congest.Context, edge int) int {
	for i, a := range ctx.Arcs() {
		if a.E == edge {
			return i
		}
	}
	panic(fmt.Sprintf("mst: edge %d not incident to %d", edge, ctx.ID))
}

// floodPair floods the lexicographic minimum (w,e) candidate over a
// restricted edge set (the fragment's tree edges) until quiescence.
type floodPair struct {
	best      candidate
	treeArcs  []int // arc indices of tree edges
	improved  bool
	firstSent bool
}

func (p *floodPair) Step(ctx *congest.Context, in []congest.Incoming) ([]congest.Outgoing, bool) {
	for _, m := range in {
		if msg, ok := m.Msg.(congest.Int2Msg); ok {
			c := candidate{w: msg.A, e: msg.B}
			if better(c, p.best) {
				p.best = c
				p.improved = true
			}
		}
	}
	if p.improved || !p.firstSent {
		p.improved = false
		p.firstSent = true
		if p.best.e < 0 {
			return nil, true
		}
		outs := make([]congest.Outgoing, 0, len(p.treeArcs))
		for _, i := range p.treeArcs {
			outs = append(outs, congest.Outgoing{Edge: ctx.Arc(i).E, Msg: congest.Int2Msg{A: p.best.w, B: p.best.e}})
		}
		return outs, false
	}
	return nil, true
}

// floodMin64 floods the minimum int64 over a restricted edge set.
type floodMin64 struct {
	best      int64
	arcs      []int
	improved  bool
	firstSent bool
}

func (p *floodMin64) Step(ctx *congest.Context, in []congest.Incoming) ([]congest.Outgoing, bool) {
	for _, m := range in {
		if msg, ok := m.Msg.(congest.IntMsg); ok && msg.Value < p.best {
			p.best = msg.Value
			p.improved = true
		}
	}
	if p.improved || !p.firstSent {
		p.improved = false
		p.firstSent = true
		outs := make([]congest.Outgoing, 0, len(p.arcs))
		for _, i := range p.arcs {
			outs = append(outs, congest.Outgoing{Edge: ctx.Arc(i).E, Msg: congest.IntMsg{Value: p.best}})
		}
		return outs, false
	}
	return nil, true
}

// joinNotify: endpoints of each fragment-selected edge notify the other
// side so both mark it as a tree edge.
type joinNotify struct {
	notifyArcs []int // arcs this node must send "join" over
	joined     map[int]bool
	sent       bool
}

func (p *joinNotify) Step(ctx *congest.Context, in []congest.Incoming) ([]congest.Outgoing, bool) {
	for _, m := range in {
		if _, ok := m.Msg.(congest.Empty); ok {
			p.joined[m.Edge] = true
		}
	}
	if !p.sent {
		p.sent = true
		outs := make([]congest.Outgoing, 0, len(p.notifyArcs))
		for _, i := range p.notifyArcs {
			e := ctx.Arc(i).E
			p.joined[e] = true
			outs = append(outs, congest.Outgoing{Edge: e, Msg: congest.Empty{}})
		}
		return outs, false
	}
	return nil, true
}

// SpanningTree runs distributed Borůvka. maximize selects the
// maximum-weight spanning tree (the paper's use case); otherwise the
// minimum-weight tree is built.
func SpanningTree(nw *congest.Network, maximize bool) (*Result, error) {
	g := nw.Graph()
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("mst: empty graph")
	}
	res := &Result{EdgeInTree: make([]bool, g.M())}
	frag := make([]int64, n)
	for v := range frag {
		frag[v] = int64(v)
	}
	treeArcs := make([][]int, n) // arc indices of selected tree edges per node
	maxRounds := 8*n + 64

	fragments := n
	for phase := 0; fragments > 1; phase++ {
		if phase > 2*n {
			return nil, fmt.Errorf("mst: no progress after %d phases", phase)
		}
		// (i) Exchange fragment IDs.
		exch := make([]*exchangeFrag, n)
		stats, err := nw.Run(func(v int, ctx *congest.Context) congest.Program {
			exch[v] = &exchangeFrag{fragID: frag[v], neighFrag: make([]int64, ctx.Degree())}
			return exch[v]
		}, maxRounds)
		if err != nil {
			return nil, fmt.Errorf("mst: exchange: %w", err)
		}
		res.Stats.Add(stats)

		// (ii) Flood each fragment's minimum outgoing edge over tree edges.
		flood := make([]*floodPair, n)
		stats, err = nw.Run(func(v int, ctx *congest.Context) congest.Program {
			best := candidate{e: -1}
			for i := 0; i < ctx.Degree(); i++ {
				if exch[v].neighFrag[i] != frag[v] {
					c := candidate{w: weight(g, ctx.Arc(i).E, maximize), e: int64(ctx.Arc(i).E)}
					if better(c, best) {
						best = c
					}
				}
			}
			flood[v] = &floodPair{best: best, treeArcs: treeArcs[v]}
			return flood[v]
		}, maxRounds)
		if err != nil {
			return nil, fmt.Errorf("mst: mwoe flood: %w", err)
		}
		res.Stats.Add(stats)

		// (iii) Endpoints of selected edges notify across them; both sides
		// mark the edge.
		notif := make([]*joinNotify, n)
		stats, err = nw.Run(func(v int, ctx *congest.Context) congest.Program {
			var notify []int
			if be := flood[v].best.e; be >= 0 {
				for i := 0; i < ctx.Degree(); i++ {
					if int64(ctx.Arc(i).E) == be {
						notify = append(notify, i)
						break
					}
				}
			}
			notif[v] = &joinNotify{notifyArcs: notify, joined: make(map[int]bool)}
			return notif[v]
		}, maxRounds)
		if err != nil {
			return nil, fmt.Errorf("mst: join: %w", err)
		}
		res.Stats.Add(stats)

		newEdges := 0
		for v := 0; v < n; v++ {
			for e := range notif[v].joined {
				if !res.EdgeInTree[e] {
					res.EdgeInTree[e] = true
					res.TotalWeight += weight(g, e, maximize)
					newEdges++
				}
				// Record the tree arc locally at v.
				for i, a := range g.Adj(v) {
					if a.E == e {
						if !containsInt(treeArcs[v], i) {
							treeArcs[v] = append(treeArcs[v], i)
						}
						break
					}
				}
			}
		}
		if newEdges == 0 {
			return nil, fmt.Errorf("mst: phase added no edges; graph disconnected?")
		}

		// (iv) Merge: flood min fragment ID over all tree edges.
		merge := make([]*floodMin64, n)
		stats, err = nw.Run(func(v int, ctx *congest.Context) congest.Program {
			merge[v] = &floodMin64{best: frag[v], arcs: treeArcs[v]}
			return merge[v]
		}, maxRounds)
		if err != nil {
			return nil, fmt.Errorf("mst: merge flood: %w", err)
		}
		res.Stats.Add(stats)

		ids := make(map[int64]bool, n)
		for v := 0; v < n; v++ {
			frag[v] = merge[v].best
			ids[frag[v]] = true
		}
		fragments = len(ids)
	}

	tree, err := assembleTree(g, res.EdgeInTree)
	if err != nil {
		return nil, err
	}
	res.Tree = tree
	return res, nil
}

func containsInt(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// assembleTree roots the selected edge set at node 0 by BFS over tree
// edges only.
func assembleTree(g *graph.Graph, inTree []bool) (*proto.Tree, error) {
	n := g.N()
	parent := make([]int, n)
	parentEdge := make([]int, n)
	for v := range parent {
		parent[v], parentEdge[v] = -1, -1
	}
	visited := make([]bool, n)
	visited[0] = true
	queue := []int{0}
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, a := range g.Adj(v) {
			if inTree[a.E] && !visited[a.To] {
				visited[a.To] = true
				parent[a.To] = v
				parentEdge[a.To] = a.E
				queue = append(queue, a.To)
				count++
			}
		}
	}
	if count != n {
		return nil, fmt.Errorf("mst: selected edges span %d of %d nodes", count, n)
	}
	return proto.TreeFromParents(g, 0, parent, parentEdge)
}

// Kruskal is the centralized reference implementation. It returns the
// selected edge set and total (minimization) weight. Tombstoned edges
// (capacity 0) are never selected.
func Kruskal(g *graph.Graph, maximize bool) ([]bool, int64) {
	type we struct {
		w int64
		e int
	}
	edges := make([]we, 0, g.M())
	for e := 0; e < g.M(); e++ {
		if g.Cap(e) == 0 {
			continue
		}
		edges = append(edges, we{w: weight(g, e, maximize), e: e})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w < edges[j].w
		}
		return edges[i].e < edges[j].e
	})
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	inTree := make([]bool, g.M())
	var total int64
	for _, we := range edges {
		ed := g.Edge(we.e)
		ru, rv := find(ed.U), find(ed.V)
		if ru != rv {
			parent[ru] = rv
			inTree[we.e] = true
			total += we.w
		}
	}
	return inTree, total
}
