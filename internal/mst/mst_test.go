package mst

import (
	"math/rand"
	"testing"

	"distflow/internal/congest"
	"distflow/internal/graph"
)

func network(g *graph.Graph) *congest.Network {
	return congest.NewNetwork(g, congest.WithSeed(99))
}

func totalTreeWeight(g *graph.Graph, inTree []bool, maximize bool) int64 {
	var w int64
	for e, in := range inTree {
		if in {
			w += weight(g, e, maximize)
		}
	}
	return w
}

func TestSpanningTreeMatchesKruskal(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		g := graph.CapUniform(graph.GNP(24, 0.15, rng), 50, rng)
		for _, maximize := range []bool{false, true} {
			res, err := SpanningTree(network(g), maximize)
			if err != nil {
				t.Fatalf("trial %d maximize=%v: %v", trial, maximize, err)
			}
			_, wantW := Kruskal(g, maximize)
			if res.TotalWeight != wantW {
				t.Errorf("trial %d maximize=%v: weight %d, want %d", trial, maximize, res.TotalWeight, wantW)
			}
			count := 0
			for _, in := range res.EdgeInTree {
				if in {
					count++
				}
			}
			if count != g.N()-1 {
				t.Errorf("tree has %d edges, want %d", count, g.N()-1)
			}
			if err := res.Tree.Validate(treeSubgraph(g, res.EdgeInTree)); err == nil {
				// Tree validates against the full graph, not a subgraph;
				// just check against g.
				_ = err
			}
			if err := res.Tree.Validate(g); err != nil {
				t.Errorf("tree invalid: %v", err)
			}
		}
	}
}

// treeSubgraph is only used to document intent in the test above.
func treeSubgraph(g *graph.Graph, inTree []bool) *graph.Graph { return g }

func TestSpanningTreePath(t *testing.T) {
	g := graph.Path(6)
	res, err := SpanningTree(network(g), false)
	if err != nil {
		t.Fatal(err)
	}
	for e, in := range res.EdgeInTree {
		if !in {
			t.Errorf("path edge %d not in tree", e)
		}
	}
}

func TestMaxWeightPicksHeavyEdges(t *testing.T) {
	// Triangle with capacities 1, 10, 20: max-weight tree keeps 10 and 20.
	g := graph.New(3)
	e1 := g.AddEdge(0, 1, 1)
	e10 := g.AddEdge(1, 2, 10)
	e20 := g.AddEdge(0, 2, 20)
	res, err := SpanningTree(network(g), true)
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgeInTree[e1] || !res.EdgeInTree[e10] || !res.EdgeInTree[e20] {
		t.Errorf("max-weight tree wrong: %v", res.EdgeInTree)
	}
}

func TestSingleNode(t *testing.T) {
	g := graph.New(1)
	res, err := SpanningTree(network(g), false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tree == nil || len(res.EdgeInTree) != 0 {
		t.Error("single node tree wrong")
	}
}

func TestDisconnectedErrors(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	if _, err := SpanningTree(network(g), false); err == nil {
		t.Error("expected error on disconnected graph")
	}
}

func TestParallelEdgesPreferCheapest(t *testing.T) {
	g := graph.New(2)
	heavy := g.AddEdge(0, 1, 9)
	light := g.AddEdge(0, 1, 2)
	res, err := SpanningTree(network(g), false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.EdgeInTree[light] || res.EdgeInTree[heavy] {
		t.Errorf("min tree should use light parallel edge: %v", res.EdgeInTree)
	}
}

func TestKruskalDeterministicTieBreak(t *testing.T) {
	g := graph.Cycle(4) // all unit capacities: ties broken by edge index
	inTree, _ := Kruskal(g, false)
	want := []bool{true, true, true, false}
	for e := range want {
		if inTree[e] != want[e] {
			t.Errorf("Kruskal tie-break: edge %d = %v, want %v", e, inTree[e], want[e])
		}
	}
}

func TestBoruvkaPhasesLogarithmic(t *testing.T) {
	// On a cycle all weights distinct: phases ≈ log2 n; rounds stay far
	// below the O(n log n) absolute worst case for small n.
	g := graph.New(32)
	for i := 0; i < 32; i++ {
		g.AddEdge(i, (i+1)%32, int64(1+i))
	}
	res, err := SpanningTree(network(g), false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds > 32*12 {
		t.Errorf("rounds = %d, unexpectedly high", res.Stats.Rounds)
	}
}
