// Package par is the shared worker pool behind the parallel solver
// core. It provides chunked parallel-for and reduction primitives whose
// arithmetic is independent of the worker count, so that every solver
// result is bit-identical whether it runs on one core or sixty-four —
// the property the determinism test suite pins down.
//
// Design:
//
//   - Work on [0,n) is split into chunks whose size depends ONLY on n
//     (never on the worker count). Reductions (Sum, Max) always combine
//     per-chunk partials in chunk-index order, on one goroutine, so the
//     floating-point result is a pure function of the input.
//   - Chunks are handed out by an atomic counter; idle pool workers help
//     the caller, and the caller always participates, so a For/Sum call
//     makes progress even when every pool worker is busy (nested
//     parallelism cannot deadlock).
//   - Small inputs (below one chunk) never touch the pool: the
//     GOMAXPROCS-aware sequential fallback keeps tiny graphs free of
//     scheduling overhead.
//   - SetWorkers adjusts the logical width at runtime (tests sweep it to
//     verify worker-count independence); the default is GOMAXPROCS.
package par

import (
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

const (
	// grain is the minimum number of elements per chunk: below this,
	// goroutine handoff costs more than the loop body saves.
	grain = 2048
	// maxChunks bounds per-call scheduling overhead on huge inputs.
	maxChunks = 256
	// maxPoolWorkers caps the lazily started pool goroutines.
	maxPoolWorkers = 64
)

var (
	width   atomic.Int64 // logical parallelism degree
	running atomic.Int64 // started pool goroutines
	tasks   = make(chan func(), 4*maxPoolWorkers)
)

func init() {
	width.Store(int64(runtime.GOMAXPROCS(0)))
}

// Workers returns the current logical parallelism degree.
func Workers() int { return int(width.Load()) }

// SetWorkers sets the logical parallelism degree and returns the
// previous value. n <= 0 resets to runtime.GOMAXPROCS(0). Results of
// the par primitives do not depend on this value; only scheduling does.
func SetWorkers(n int) int {
	prev := int(width.Load())
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	width.Store(int64(n))
	return prev
}

// chunks returns the chunk size and count for n elements. It is a pure
// function of n — never of the worker count — which is what makes the
// chunked reductions deterministic under any parallelism degree.
func chunks(n int) (size, count int) {
	count = (n + grain - 1) / grain
	if count > maxChunks {
		count = maxChunks
	}
	if count < 1 {
		count = 1
	}
	size = (n + count - 1) / count
	count = (n + size - 1) / size
	return size, count
}

// ensureWorkers lazily starts pool goroutines until at least n are
// running (capped at maxPoolWorkers). Pool goroutines are never torn
// down; the cap bounds their number for the life of the process.
func ensureWorkers(n int) {
	if n > maxPoolWorkers {
		n = maxPoolWorkers
	}
	for {
		cur := running.Load()
		if cur >= int64(n) {
			return
		}
		if running.CompareAndSwap(cur, cur+1) {
			go func() {
				for f := range tasks {
					f()
				}
			}()
		}
	}
}

// submit offers f to the pool without blocking. When the queue is full
// the offer is dropped — the caller participates in every parallel
// region, so dropped helpers cost parallelism, never correctness.
func submit(f func()) {
	select {
	case tasks <- f:
	default:
	}
}

// chunkPanic carries a panic out of a parallel region: the first chunk
// to panic stores its value and the calling goroutine re-panics with it
// after the region drains (see runChunked).
type chunkPanic struct {
	val   any
	stack []byte
}

// runChunked executes fn(i, lo, hi) for every chunk i of [0,n), using up
// to Workers() goroutines (including the caller). It returns only after
// every chunk completed.
//
// Panic contract: a panic inside fn — on the calling goroutine or a
// pool helper — never crashes the process or the pool. The first
// panicking chunk's value is captured, the remaining chunks are drained
// without running fn, and the ORIGINAL panic value is re-raised on the
// calling goroutine once the region is quiescent. Callers can therefore
// recover() around any par primitive and know no chunk of that call is
// still running; the serving layer's boundary recovery depends on this.
func runChunked(n, size, count int, fn func(i, lo, hi int)) {
	w := Workers()
	if w > count {
		w = count
	}
	if w <= 1 {
		for i := 0; i < count; i++ {
			lo := i * size
			hi := lo + size
			if hi > n {
				hi = n
			}
			fn(i, lo, hi)
		}
		return
	}
	var next atomic.Int64
	var done sync.WaitGroup
	var panicked atomic.Pointer[chunkPanic]
	done.Add(count)
	run := func() {
		for {
			i := int(next.Add(1) - 1)
			if i >= count {
				return
			}
			lo := i * size
			hi := lo + size
			if hi > n {
				hi = n
			}
			func() {
				defer func() {
					if p := recover(); p != nil {
						panicked.CompareAndSwap(nil, &chunkPanic{val: p, stack: debug.Stack()})
					}
					done.Done()
				}()
				// After a panic the remaining chunks only drain the
				// ticket counter (their results are about to be thrown
				// away by the re-panic), so the region ends promptly.
				if panicked.Load() == nil {
					fn(i, lo, hi)
				}
			}()
		}
	}
	helpers := w - 1
	ensureWorkers(helpers)
	for i := 0; i < helpers; i++ {
		submit(run)
	}
	run()
	done.Wait()
	if p := panicked.Load(); p != nil {
		panic(p.val)
	}
}

// Sequential reports whether a For/Sum/Max call over n elements would
// run entirely on the calling goroutine (input below one chunk, or the
// pool width is 1). Hot sweeps use it to take an inline loop instead of
// a closure — keeping the sequential fallback allocation-free — without
// duplicating the scheduling policy.
func Sequential(n int) bool {
	if n <= 0 {
		return true
	}
	_, count := chunks(n)
	return count <= 1 || Workers() <= 1
}

// For runs body over a partition of [0,n) in parallel. body must be
// safe to run concurrently on disjoint ranges. Element-wise bodies
// (out[i] depends only on index i) produce identical results at every
// worker count by construction.
func For(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	size, count := chunks(n)
	if count <= 1 || Workers() <= 1 {
		body(0, n)
		return
	}
	runChunked(n, size, count, func(_, lo, hi int) { body(lo, hi) })
}

// Do runs body(i) for every i in [0,n) in parallel, one task per index.
// Intended for coarse-grained units (whole trees, whole queries) where
// per-index dispatch overhead is negligible.
func Do(n int, body func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if n == 1 || w <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	runChunked(n, 1, n, func(i, _, _ int) { body(i) })
}

// partialPool recycles the per-chunk partial buffers of Sum and Max.
// Reductions sit on the solver's per-iteration hot path (several per
// gradient evaluation), so a fresh []float64 per call is measurable
// allocation traffic; chunk counts are capped at maxChunks, so every
// pooled buffer is full size. The pool stores *[]float64 so Get/Put
// move a pointer instead of boxing a slice header per call
// (staticcheck SA6002). The buffer only carries data within one call —
// pooling cannot affect results.
var partialPool = sync.Pool{
	New: func() any {
		b := make([]float64, maxChunks)
		return &b
	},
}

// Sum reduces body over a partition of [0,n): body returns the partial
// sum of its range, and the partials are combined in chunk-index order
// on the calling goroutine. Because the partition depends only on n,
// the result is bit-identical at every worker count — including the
// sequential fallback, which still evaluates chunk by chunk.
func Sum(n int, body func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	size, count := chunks(n)
	if count == 1 {
		return body(0, n)
	}
	pp := partialPool.Get().(*[]float64)
	partial := *pp
	runChunked(n, size, count, func(i, lo, hi int) { partial[i] = body(lo, hi) })
	s := 0.0
	for _, p := range partial[:count] {
		s += p
	}
	partialPool.Put(pp)
	return s
}

// Grid exposes the chunk grid Sum, Max, and For partition [0,n) into.
// size and count are pure functions of n — never of the worker count —
// which is the whole determinism argument for the package. Code that
// must reproduce a reduction bit-for-bit from partials computed
// elsewhere (the internal/shard coordinator combining per-shard chunk
// partials) aligns its ownership ranges to this grid: combining the
// same per-chunk partials in the same chunk-index order is the same
// float expression, so the sharded result equals the par result
// exactly.
func Grid(n int) (size, count int) { return chunks(n) }

// Max reduces body over a partition of [0,n) taking the maximum of the
// per-chunk results. Returns -Inf for n <= 0.
func Max(n int, body func(lo, hi int) float64) float64 {
	if n <= 0 {
		return math.Inf(-1)
	}
	size, count := chunks(n)
	if count == 1 {
		return body(0, n)
	}
	pp := partialPool.Get().(*[]float64)
	partial := *pp
	runChunked(n, size, count, func(i, lo, hi int) { partial[i] = body(lo, hi) })
	m := math.Inf(-1)
	for _, p := range partial[:count] {
		if p > m {
			m = p
		}
	}
	partialPool.Put(pp)
	return m
}
