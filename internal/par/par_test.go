package par

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestForCoversRangeOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, grain - 1, grain, grain + 1, 10 * grain, 10*grain + 13} {
		hits := make([]int32, n)
		For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestDoCoversRangeOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 17, 1000} {
		hits := make([]int32, n)
		Do(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

// Sum and Max must be bit-identical at every worker count: the chunking
// depends only on n, and partials combine in chunk order.
func TestSumDeterministicAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 5*grain+77)
	for i := range x {
		x[i] = rng.NormFloat64() * math.Exp(rng.NormFloat64()*5)
	}
	sum := func() float64 {
		return Sum(len(x), func(lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += x[i]
			}
			return s
		})
	}
	max := func() float64 {
		return Max(len(x), func(lo, hi int) float64 {
			m := math.Inf(-1)
			for i := lo; i < hi; i++ {
				if x[i] > m {
					m = x[i]
				}
			}
			return m
		})
	}
	defer SetWorkers(SetWorkers(1))
	wantSum, wantMax := sum(), max()
	for _, w := range []int{1, 2, 3, 4, 8, 32} {
		SetWorkers(w)
		for rep := 0; rep < 5; rep++ {
			if got := sum(); got != wantSum {
				t.Fatalf("workers=%d: Sum=%v want %v", w, got, wantSum)
			}
			if got := max(); got != wantMax {
				t.Fatalf("workers=%d: Max=%v want %v", w, got, wantMax)
			}
		}
	}
}

func TestSumSmallInput(t *testing.T) {
	got := Sum(3, func(lo, hi int) float64 { return float64(hi - lo) })
	if got != 3 {
		t.Fatalf("Sum over 3 elements = %v", got)
	}
	if got := Sum(0, nil); got != 0 {
		t.Fatalf("empty Sum = %v", got)
	}
	if got := Max(0, nil); !math.IsInf(got, -1) {
		t.Fatalf("empty Max = %v", got)
	}
}

// Nested parallel regions must complete even when every pool worker is
// occupied: the caller always participates.
func TestNestedForCompletes(t *testing.T) {
	defer SetWorkers(SetWorkers(8))
	var total atomic.Int64
	Do(16, func(i int) {
		For(4*grain, func(lo, hi int) {
			total.Add(int64(hi - lo))
		})
	})
	if got := total.Load(); got != 16*4*grain {
		t.Fatalf("nested total = %d, want %d", got, 16*4*grain)
	}
}

func TestChunksPureFunctionOfN(t *testing.T) {
	for _, n := range []int{1, grain, grain + 1, maxChunks * grain * 3} {
		s1, c1 := chunks(n)
		SetWorkers(7)
		s2, c2 := chunks(n)
		SetWorkers(0)
		if s1 != s2 || c1 != c2 {
			t.Fatalf("chunks(%d) changed with worker count", n)
		}
		if c1 > 1 && (c1-1)*s1 >= n {
			t.Fatalf("chunks(%d) = (%d,%d): empty tail chunk", n, s1, c1)
		}
		if c1*s1 < n {
			t.Fatalf("chunks(%d) = (%d,%d): does not cover range", n, s1, c1)
		}
	}
}

func TestSetWorkersResets(t *testing.T) {
	prev := SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(0)
	if Workers() < 1 {
		t.Fatalf("Workers() = %d after reset", Workers())
	}
	SetWorkers(prev)
}
