package par

import (
	"sync/atomic"
	"testing"
)

// TestPanicPropagatesToCaller pins the runChunked panic contract: a
// panic in one chunk surfaces on the calling goroutine with its
// original value, the region fully drains first, and the pool keeps
// working afterwards.
func TestPanicPropagatesToCaller(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		prev := SetWorkers(workers)
		func() {
			defer SetWorkers(prev)
			var ran atomic.Int64
			val := func() (p any) {
				defer func() { p = recover() }()
				For(100_000, func(lo, hi int) {
					ran.Add(int64(hi - lo))
					if lo == 0 {
						panic("boom")
					}
				})
				return nil
			}()
			if val != "boom" {
				t.Fatalf("workers=%d: recovered %v, want original panic value", workers, val)
			}
			// The pool must still function: a follow-up region covers its
			// range exactly once.
			var n atomic.Int64
			For(50_000, func(lo, hi int) { n.Add(int64(hi - lo)) })
			if n.Load() != 50_000 {
				t.Fatalf("workers=%d: pool broken after panic: covered %d/50000", workers, n.Load())
			}
		}()
	}
}

// TestPanicInDoSurfaces covers the per-index Do path (the batch-query
// scheduler runs on it).
func TestPanicInDoSurfaces(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	val := func() (p any) {
		defer func() { p = recover() }()
		Do(64, func(i int) {
			if i == 7 {
				panic(i)
			}
		})
		return nil
	}()
	if val != 7 {
		t.Fatalf("recovered %v, want 7", val)
	}
}
