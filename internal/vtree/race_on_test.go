//go:build race

package vtree

// raceEnabled reports that the race detector is active: its
// instrumentation allocates on paths that are allocation-free without
// it, so zero-allocation assertions are skipped.
const raceEnabled = true
