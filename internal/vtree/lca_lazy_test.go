package vtree

import (
	"math/rand"
	"testing"
)

// attachmentTree builds an n-vertex random attachment tree.
func attachmentTree(n int, seed int64) *VTree {
	rng := rand.New(rand.NewSource(seed))
	parent := make([]int, n)
	capacity := make([]float64, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = rng.Intn(v)
		capacity[v] = float64(1 + rng.Intn(9))
	}
	t, err := New(0, parent, capacity)
	if err != nil {
		panic(err)
	}
	return t
}

// TreeFlowWS must reuse a cached EnsureLCA table instead of rebuilding
// the lifting rows per call — on a serving tree the query path is
// allocation-free once the scratch is warm — and must NOT build the
// cache as a side effect on trees that never called EnsureLCA (the
// build path's candidate trees stay lazy; eager per-candidate tables
// were one of the n=10⁶ memory costs the scale ladder exposed).
func TestTreeFlowWSLazyLCA(t *testing.T) {
	tr := attachmentTree(300, 5)
	rng := rand.New(rand.NewSource(6))
	edges := make([]EdgeEndpoint, 64)
	for i := range edges {
		edges[i] = EdgeEndpoint{U: rng.Intn(300), V: rng.Intn(300), Cap: float64(1 + rng.Intn(5))}
	}

	// Lazy path: no cached table before or after.
	var sc TreeFlowScratch
	want := append([]float64(nil), tr.TreeFlowWS(edges, &sc)...)
	if tr.lca != nil {
		t.Fatal("TreeFlowWS built the cached LCA table on a lazy tree")
	}

	// Cached path: bit-identical loads (the tables are a pure function
	// of the immutable topology).
	tr.EnsureLCA()
	var sc2 TreeFlowScratch
	got := tr.TreeFlowWS(edges, &sc2)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("load[%d] = %v cached vs %v lazy", v, got[v], want[v])
		}
	}
	if len(sc2.rows) != 0 {
		t.Fatalf("cached-LCA sweep built %d scratch rows, want 0", len(sc2.rows))
	}

	if raceEnabled {
		t.Skip("race instrumentation allocates on the query path")
	}
	if avg := testing.AllocsPerRun(50, func() {
		tr.TreeFlowWS(edges, &sc2)
	}); avg > 0.5 {
		t.Errorf("warm TreeFlowWS with cached LCA allocates %.1f per sweep, want 0", avg)
	}
}
