// Package vtree provides rooted virtual trees — trees over the vertex
// set whose edges need not be graph edges — together with the sweep
// operations the congestion approximator is built from (§9.1–9.2):
//
//   - SubtreeSums: one bottom-up sweep; applied to a demand vector it
//     yields, for every tree edge (v, parent(v)), the net demand of the
//     subtree below it — exactly the flow that edge must carry when the
//     demand is routed on the tree, i.e. one block of R·b.
//   - RootPathSums: one top-down sweep; applied to per-edge prices it
//     yields the node potentials π of Eq. (4), i.e. one block of Rᵀ·p.
//   - TreeFlow: the multigraph load |f'| of §8.1/Fig. 2 — route cap(e)
//     units along the tree for every graph edge e and accumulate.
//   - Decompose: the randomized edge-sampling decomposition of
//     Lemma 8.2, splitting a tree into O(√n) components of depth Õ(√n).
//
// The sweeps are array-based and O(n); their distributed counterparts
// (convergecast/downcast on the cluster hierarchy, Corollary 9.3) are in
// internal/proto and internal/capprox, and tests cross-check the two.
package vtree

import (
	"fmt"
	"math"
	"math/rand"

	"distflow/internal/csr"
)

// VTree is a rooted tree on vertices 0..n-1. Edge v→Parent[v] has
// capacity Cap[v] (Cap[Root] is unused and forced to 0).
type VTree struct {
	Root   int
	Parent []int
	Cap    []float64
	Depth  []int

	order []int // vertices in root-first topological order
	lca   *LCA  // cached lifting tables for dirty-path updates (EnsureLCA)
}

// New builds a VTree from parent pointers, validating shape. cap may be
// nil (all capacities set to 1).
func New(root int, parent []int, capacity []float64) (*VTree, error) {
	n := len(parent)
	if root < 0 || root >= n {
		return nil, fmt.Errorf("vtree: root %d out of range", root)
	}
	if parent[root] != -1 {
		return nil, fmt.Errorf("vtree: root %d has parent %d", root, parent[root])
	}
	if capacity == nil {
		capacity = make([]float64, n)
		for i := range capacity {
			capacity[i] = 1
		}
	}
	if len(capacity) != n {
		return nil, fmt.Errorf("vtree: capacity length %d, want %d", len(capacity), n)
	}
	t := &VTree{
		Root:   root,
		Parent: append([]int(nil), parent...),
		Cap:    append([]float64(nil), capacity...),
		Depth:  make([]int, n),
	}
	t.Cap[root] = 0
	for v, c := range t.Cap {
		if v != root && c <= 0 {
			return nil, fmt.Errorf("vtree: edge %d→%d has capacity %v", v, parent[v], c)
		}
	}
	// Build a CSR child table (children in ascending vertex order, the
	// order the old per-parent appends produced), then a BFS order from
	// the root.
	kidOff := make([]int, n+1)
	for v, p := range parent {
		if v == root {
			continue
		}
		if p < 0 || p >= n {
			return nil, fmt.Errorf("vtree: vertex %d has parent %d", v, p)
		}
		kidOff[p]++
	}
	sum := csr.Offsets(kidOff)
	kids := make([]int, sum)
	for v, p := range parent {
		if v == root {
			continue
		}
		kids[kidOff[p]] = v
		kidOff[p]++
	}
	csr.Shift(kidOff)
	t.order = make([]int, 0, n)
	t.order = append(t.order, root)
	for i := 0; i < len(t.order); i++ {
		v := t.order[i]
		for _, c := range kids[kidOff[v]:kidOff[v+1]] {
			t.Depth[c] = t.Depth[v] + 1
			t.order = append(t.order, c)
		}
	}
	if len(t.order) != n {
		return nil, fmt.Errorf("vtree: parents reach %d of %d vertices (cycle or forest)", len(t.order), n)
	}
	return t, nil
}

// N returns the number of vertices.
func (t *VTree) N() int { return len(t.Parent) }

// Clone returns a deep copy of the tree that shares no mutable state
// with the original: AddLeaf on either side appends to private arrays.
// The cached LCA table is dropped rather than copied — the clone's
// first EnsureLCA rebuilds it in O(n log n), which costs the same as a
// deep copy would and keeps the copy trivially correct. Epoch forks use
// this: the published tree stays frozen for concurrent query sweeps
// while the update path grows the private clone.
func (t *VTree) Clone() *VTree {
	return &VTree{
		Root:   t.Root,
		Parent: append([]int(nil), t.Parent...),
		Cap:    append([]float64(nil), t.Cap...),
		Depth:  append([]int(nil), t.Depth...),
		order:  append([]int(nil), t.order...),
	}
}

// AddLeaf appends a new vertex as a child of parent with the given
// virtual capacity and returns its id (the previous N). Appending a
// leaf preserves every existing path, depth, and topological prefix, so
// all sweep state stays valid; the cached LCA table (EnsureLCA) is
// extended by one column in O(log n), unless the vertex count crosses
// the table's 2^levels capacity, in which case it is invalidated and
// lazily rebuilt. capacity may be 0 transiently — the congestion
// approximator's topology updates set it before anything sweeps — but
// must be positive before Congestion or New-style validation runs.
func (t *VTree) AddLeaf(parent int, capacity float64) int {
	if parent < 0 || parent >= len(t.Parent) {
		panic(fmt.Sprintf("vtree: AddLeaf parent %d out of range", parent))
	}
	v := len(t.Parent)
	t.Parent = append(t.Parent, parent)
	t.Cap = append(t.Cap, capacity)
	t.Depth = append(t.Depth, t.Depth[parent]+1)
	// A leaf appended at the end keeps the order topological: its parent
	// already precedes it.
	t.order = append(t.order, v)
	if t.lca != nil {
		levels := len(t.lca.up) - 1
		if (1 << levels) < v+1 {
			// The lifting table can no longer cover the depth range;
			// rebuild lazily on the next EnsureLCA.
			t.lca = nil
		} else {
			up := t.lca.up
			up[0] = append(up[0], int32(parent))
			for k := 1; k <= levels; k++ {
				up[k] = append(up[k], up[k-1][up[k-1][v]])
			}
		}
	}
	return v
}

// Height returns the maximum depth.
func (t *VTree) Height() int {
	h := 0
	for _, d := range t.Depth {
		if d > h {
			h = d
		}
	}
	return h
}

// SubtreeSums returns, for every vertex v, the sum of x over the subtree
// rooted at v (one O(n) bottom-up sweep).
func (t *VTree) SubtreeSums(x []float64) []float64 {
	return t.SubtreeSumsInto(x, make([]float64, t.N()))
}

// SubtreeSumsInto is SubtreeSums writing into out (len N, may alias x),
// for callers that reuse sweep buffers across iterations.
func (t *VTree) SubtreeSumsInto(x, out []float64) []float64 {
	if len(x) != t.N() {
		panic("vtree: input length mismatch")
	}
	if len(out) != t.N() {
		panic("vtree: output length mismatch")
	}
	copy(out, x)
	for i := len(t.order) - 1; i > 0; i-- {
		v := t.order[i]
		out[t.Parent[v]] += out[v]
	}
	return out
}

// RootPathSums returns, for every vertex v, the sum of p over the
// vertices on the root→v path, inclusive (one O(n) top-down sweep).
// Convention: p[v] is the price attached to edge (v, parent(v)); the
// root's entry is included as-is and is normally 0.
func (t *VTree) RootPathSums(p []float64) []float64 {
	return t.RootPathSumsInto(p, make([]float64, t.N()))
}

// RootPathSumsInto is RootPathSums writing into out (len N, may alias
// p), for callers that reuse sweep buffers across iterations.
func (t *VTree) RootPathSumsInto(p, out []float64) []float64 {
	if len(p) != t.N() {
		panic("vtree: input length mismatch")
	}
	if len(out) != t.N() {
		panic("vtree: output length mismatch")
	}
	copy(out, p)
	for _, v := range t.order[1:] {
		out[v] += out[t.Parent[v]]
	}
	return out
}

// RouteDemand routes the demand vector b on the tree (routing on trees
// is unique) and returns the signed flow on each edge (v, parent(v)):
// positive = toward the parent. Entry at the root is the total demand
// (≈0 for feasible b).
func (t *VTree) RouteDemand(b []float64) []float64 {
	return t.SubtreeSums(b)
}

// Congestion returns max_v |flow(v)|/Cap[v] for the tree routing of b.
func (t *VTree) Congestion(b []float64) float64 {
	f := t.RouteDemand(b)
	m := 0.0
	for v, x := range f {
		if v == t.Root {
			continue
		}
		if c := math.Abs(x) / t.Cap[v]; c > m {
			m = c
		}
	}
	return m
}

// InSubtree returns the indicator of the subtree rooted at v — the cut
// of G induced by tree edge (v, parent(v)).
func (t *VTree) InSubtree(v int) []bool {
	side := make([]bool, t.N())
	side[v] = true
	for _, u := range t.order {
		if u != v && t.Parent[u] >= 0 && side[t.Parent[u]] {
			side[u] = true
		}
	}
	return side
}

// Order returns vertices in root-first topological order. Callers must
// not modify the slice.
func (t *VTree) Order() []int { return t.order }

// --- LCA via binary lifting ---

// LCA answers lowest-common-ancestor queries on a VTree in O(log n).
type LCA struct {
	t  *VTree
	up [][]int32 // up[k][v] = 2^k-th ancestor (root loops to itself)
}

// NewLCA preprocesses t (O(n log n)).
func NewLCA(t *VTree) *LCA {
	return newLCAInto(t, &TreeFlowScratch{})
}

// EnsureLCA returns the tree's cached LCA table, building it on first
// use (O(n log n)); later calls are O(1). The topology of a VTree never
// changes after New, so the cache is never invalidated. The first call
// mutates the tree and must not race with anything; once built, the
// table is safe for concurrent Query use.
func (t *VTree) EnsureLCA() *LCA {
	if t.lca == nil {
		t.lca = NewLCA(t)
	}
	return t.lca
}

// newLCAInto builds the lifting tables into the scratch's pooled rows.
func newLCAInto(t *VTree, sc *TreeFlowScratch) *LCA {
	n := t.N()
	levels := 1
	for (1 << levels) < n {
		levels++
	}
	for len(sc.rows) < levels+1 {
		sc.rows = append(sc.rows, nil)
	}
	up := sc.rows[:levels+1]
	for k := range up {
		if cap(up[k]) < n {
			up[k] = make([]int32, n)
			sc.rows[k] = up[k]
		}
		up[k] = up[k][:n]
	}
	for v := 0; v < n; v++ {
		p := t.Parent[v]
		if p < 0 {
			p = v
		}
		up[0][v] = int32(p)
	}
	for k := 1; k <= levels; k++ {
		for v := 0; v < n; v++ {
			up[k][v] = up[k-1][up[k-1][v]]
		}
	}
	sc.lca = LCA{t: t, up: up}
	return &sc.lca
}

// Query returns the lowest common ancestor of u and v.
func (l *LCA) Query(u, v int) int {
	t := l.t
	if t.Depth[u] < t.Depth[v] {
		u, v = v, u
	}
	diff := t.Depth[u] - t.Depth[v]
	for k := 0; diff > 0; k++ {
		if diff&1 == 1 {
			u = int(l.up[k][u])
		}
		diff >>= 1
	}
	if u == v {
		return u
	}
	for k := len(l.up) - 1; k >= 0; k-- {
		if l.up[k][u] != l.up[k][v] {
			u = int(l.up[k][u])
			v = int(l.up[k][v])
		}
	}
	return t.Parent[u]
}

// --- Tree flow (Fig. 2 / §8.1) ---

// EdgeEndpoint describes one capacitated vertex pair to be routed.
type EdgeEndpoint struct {
	U, V int
	Cap  float64
}

// TreeFlow routes cap(e) units along the tree for every supplied pair
// (the multicommodity flow f' of §8.1, where opposing flows do not
// cancel) and returns the absolute load |f'| on every tree edge
// (v, parent(v)). Implemented with the LCA difference trick in
// O((n+m) log n).
func (t *VTree) TreeFlow(edges []EdgeEndpoint) []float64 {
	return t.TreeFlowWS(edges, &TreeFlowScratch{})
}

// TreeFlowScratch pools the LCA tables and sweep buffers of TreeFlowWS
// across trees of comparable size (the j-tree construction calls it
// once per candidate per level). The zero value is ready to use.
type TreeFlowScratch struct {
	lca   LCA
	rows  [][]int32
	delta []float64
	load  []float64
}

// TreeFlowWS is TreeFlow against caller-held scratch. The returned
// slice aliases the scratch and is valid until the next call with the
// same scratch; values are bit-identical to TreeFlow's.
func (t *VTree) TreeFlowWS(edges []EdgeEndpoint, sc *TreeFlowScratch) []float64 {
	// The lifting tables are a pure function of the (immutable) topology,
	// so a cached EnsureLCA table answers the same queries as a fresh
	// build; reuse it and spare the O(n log n) rebuild plus the scratch
	// rows. Trees without a cached table (the build path's candidates)
	// build into the pooled scratch as before — build-path trees must
	// stay lazy, or every candidate would pay the O(n log n) table.
	lca := t.lca
	if lca == nil {
		lca = newLCAInto(t, sc)
	}
	n := t.N()
	if cap(sc.delta) < n {
		sc.delta = make([]float64, n)
		sc.load = make([]float64, n)
	}
	delta := sc.delta[:n]
	for i := range delta {
		delta[i] = 0
	}
	for _, e := range edges {
		if e.U == e.V {
			continue // self-loop after contraction: routes nowhere
		}
		a := lca.Query(e.U, e.V)
		delta[e.U] += e.Cap
		delta[e.V] += e.Cap
		delta[a] -= 2 * e.Cap
	}
	load := t.SubtreeSumsInto(delta, sc.load[:n])
	load[t.Root] = 0
	return load
}

// DeltaEdit describes one capacity change of a routed pair for
// PathDeltas: the pair's endpoints and the capacity change new−old.
type DeltaEdit struct {
	U, V int
	Diff float64
}

// DeltaScratch pools the per-vertex accumulators and dirty-vertex marks
// of PathDeltas across successive update batches on the same tree. The
// zero value is ready to use; a scratch must not be shared between
// trees of different vertex counts without zeroing (PathDeltas clears
// only the vertices its previous call dirtied).
type DeltaScratch struct {
	delta []float64
	mark  []bool
	dirty []int
}

// PathDeltas accumulates, per tree vertex v, the summed Diff of every
// edit whose tree path u→LCA(u,v)→v crosses the tree edge (v, parent):
// exactly the change a full TreeFlow re-sweep would report for that
// edge's load. It returns the deduplicated dirty vertices in first-touch
// order and the per-vertex delta array (aliases the scratch; entries are
// meaningful for the returned vertices only, and both are valid until
// the next call with the same scratch). Nothing else is touched — the
// caller applies the deltas.
//
// Cost: O(Σ path length) = O(edits × depth), versus TreeFlow's
// O((n+m) log n) full sweep. In the solver's integer-capacity regime
// every load is an exact small integer in float64, so adding deltas to
// a previously swept load vector reproduces the full sweep bit for bit;
// with non-integer capacities the two can differ in the last ulps.
func (t *VTree) PathDeltas(edits []DeltaEdit, sc *DeltaScratch) (dirty []int, delta []float64) {
	n := t.N()
	if cap(sc.delta) < n {
		sc.delta = make([]float64, n)
		sc.mark = make([]bool, n)
		sc.dirty = sc.dirty[:0]
	}
	delta = sc.delta[:n]
	mark := sc.mark[:n]
	for _, v := range sc.dirty {
		delta[v] = 0
		mark[v] = false
	}
	sc.dirty = sc.dirty[:0]
	lca := t.EnsureLCA()
	for _, e := range edits {
		if e.U == e.V || e.Diff == 0 {
			continue
		}
		a := lca.Query(e.U, e.V)
		for x := e.U; x != a; x = t.Parent[x] {
			if !mark[x] {
				mark[x] = true
				sc.dirty = append(sc.dirty, x)
			}
			delta[x] += e.Diff
		}
		for x := e.V; x != a; x = t.Parent[x] {
			if !mark[x] {
				mark[x] = true
				sc.dirty = append(sc.dirty, x)
			}
			delta[x] += e.Diff
		}
	}
	return sc.dirty, delta
}

// PathWork returns Σ over edits of the u-v tree path length — the exact
// number of per-edge delta additions PathDeltas would perform. Callers
// use it to decide between the dirty path and a full re-sweep.
func (t *VTree) PathWork(edits []DeltaEdit) int {
	lca := t.EnsureLCA()
	work := 0
	for _, e := range edits {
		if e.U == e.V || e.Diff == 0 {
			continue
		}
		a := lca.Query(e.U, e.V)
		work += t.Depth[e.U] + t.Depth[e.V] - 2*t.Depth[a]
	}
	return work
}

// PathLength returns the length of the unique u-v path where each tree
// edge (v,parent) has length lengths[v] (lengths[root] ignored).
func (t *VTree) PathLength(lca *LCA, lengths []float64, u, v int) float64 {
	// dist from root computed on demand would be O(n); caller-side
	// prefix sums are cheaper for bulk queries — see StretchSum.
	a := lca.Query(u, v)
	var d float64
	for x := u; x != a; x = t.Parent[x] {
		d += lengths[x]
	}
	for x := v; x != a; x = t.Parent[x] {
		d += lengths[x]
	}
	return d
}

// StretchSum computes Σ_i dT(u_i, v_i)·w_i efficiently using root-path
// prefix sums, where tree edge (v,parent) has length lengths[v]. Used to
// measure the average stretch of spanning trees (Theorem 3.1).
func (t *VTree) StretchSum(pairs []EdgeEndpoint, lengths []float64) float64 {
	lca := NewLCA(t)
	pfx := t.RootPathSums(lengthsWithZeroRoot(t, lengths))
	var total float64
	for _, p := range pairs {
		a := lca.Query(p.U, p.V)
		d := pfx[p.U] + pfx[p.V] - 2*pfx[a]
		total += d * p.Cap
	}
	return total
}

func lengthsWithZeroRoot(t *VTree, lengths []float64) []float64 {
	out := append([]float64(nil), lengths...)
	out[t.Root] = 0
	return out
}

// --- Lemma 8.2 decomposition ---

// Decomposition is the result of the random edge-sampling tree
// decomposition.
type Decomposition struct {
	// Comp[v] is the component index of vertex v.
	Comp []int
	// CompRoot[i] is the unique top vertex of component i.
	CompRoot []int
	// Removed marks vertices whose parent edge was sampled out.
	Removed []bool
	// MaxDepth is the maximum depth within components.
	MaxDepth int
}

// NumComponents returns the number of components.
func (d *Decomposition) NumComponents() int { return len(d.CompRoot) }

// Decompose removes each edge (v, parent(v)) independently with
// probability min(1, size[v]/√n) — Lemma 8.2 with size[v] the weight of
// the subtree vertex (cluster size in the recursive construction; pass
// nil for all-ones). W.h.p. the result has O(√n·log n) components of
// depth O(√n·log n).
func (t *VTree) Decompose(size []float64, sqrtN float64, rng *rand.Rand) *Decomposition {
	n := t.N()
	if size == nil {
		size = make([]float64, n)
		for i := range size {
			size[i] = 1
		}
	}
	d := &Decomposition{
		Comp:    make([]int, n),
		Removed: make([]bool, n),
	}
	for v := 0; v < n; v++ {
		if v == t.Root {
			continue
		}
		q := size[v] / sqrtN
		if q >= 1 || rng.Float64() < q {
			d.Removed[v] = true
		}
	}
	depth := make([]int, n)
	for i := range d.Comp {
		d.Comp[i] = -1
	}
	for _, v := range t.order {
		if v == t.Root || d.Removed[v] {
			d.Comp[v] = len(d.CompRoot)
			d.CompRoot = append(d.CompRoot, v)
			depth[v] = 0
		} else {
			d.Comp[v] = d.Comp[t.Parent[v]]
			depth[v] = depth[t.Parent[v]] + 1
			if depth[v] > d.MaxDepth {
				d.MaxDepth = depth[v]
			}
		}
	}
	return d
}
