package vtree

import (
	"math"
	"math/rand"
	"testing"
)

// chain builds the path tree 0←1←2←...←(n-1) rooted at 0.
func chain(n int) *VTree {
	parent := make([]int, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = v - 1
	}
	t, err := New(0, parent, nil)
	if err != nil {
		panic(err)
	}
	return t
}

// star builds the star with center 0.
func star(n int) *VTree {
	parent := make([]int, n)
	parent[0] = -1
	t, err := New(0, parent, nil)
	if err != nil {
		panic(err)
	}
	return t
}

// randomTree builds a random tree rooted at 0.
func randomTree(n int, rng *rand.Rand) *VTree {
	parent := make([]int, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = rng.Intn(v)
	}
	caps := make([]float64, n)
	for v := range caps {
		caps[v] = 1 + rng.Float64()*9
	}
	t, err := New(0, parent, caps)
	if err != nil {
		panic(err)
	}
	return t
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, []int{-1, 0, 1}, nil); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
	cases := []struct {
		name   string
		root   int
		parent []int
		caps   []float64
	}{
		{"root out of range", 5, []int{-1}, nil},
		{"root has parent", 0, []int{1, -1}, nil},
		{"cycle", 0, []int{-1, 2, 1}, nil},
		{"parent out of range", 0, []int{-1, 9}, nil},
		{"bad capacity", 0, []int{-1, 0}, []float64{0, 0}},
		{"cap length", 0, []int{-1, 0}, []float64{1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.root, tc.parent, tc.caps); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestSubtreeSumsChain(t *testing.T) {
	tr := chain(4)
	x := []float64{1, 2, 3, 4}
	got := tr.SubtreeSums(x)
	want := []float64{10, 9, 7, 4}
	for v := range want {
		if got[v] != want[v] {
			t.Errorf("sum[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestRootPathSumsChain(t *testing.T) {
	tr := chain(4)
	p := []float64{0, 10, 100, 1000}
	got := tr.RootPathSums(p)
	want := []float64{0, 10, 110, 1110}
	for v := range want {
		if got[v] != want[v] {
			t.Errorf("pfx[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

// Adjoint property: <SubtreeSums(x), p> == <x, RootPathSums(p)>. This is
// exactly R and Rᵀ being transposes of each other, the identity the
// gradient computation (Eq. 3/4) relies on.
func TestSweepAdjointProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		tr := randomTree(2+rng.Intn(60), rng)
		n := tr.N()
		x := make([]float64, n)
		p := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = rng.NormFloat64()
			p[i] = rng.NormFloat64()
		}
		p[tr.Root] = 0
		s := tr.SubtreeSums(x)
		q := tr.RootPathSums(p)
		var lhs, rhs float64
		for i := 0; i < n; i++ {
			lhs += s[i] * p[i]
			rhs += x[i] * q[i]
		}
		if math.Abs(lhs-rhs) > 1e-9*math.Max(1, math.Abs(lhs)) {
			t.Fatalf("trial %d: adjoint identity broken: %v vs %v", trial, lhs, rhs)
		}
	}
}

func TestRouteDemandMatchesCutDemand(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 25; trial++ {
		tr := randomTree(2+rng.Intn(40), rng)
		n := tr.N()
		b := make([]float64, n)
		var sum float64
		for i := 1; i < n; i++ {
			b[i] = rng.NormFloat64()
			sum += b[i]
		}
		b[0] = -sum // feasible demand
		f := tr.RouteDemand(b)
		// Flow on (v,parent) equals demand inside the subtree cut.
		for v := 0; v < n; v++ {
			if v == tr.Root {
				continue
			}
			side := tr.InSubtree(v)
			var want float64
			for u, in := range side {
				if in {
					want += b[u]
				}
			}
			if math.Abs(f[v]-want) > 1e-9 {
				t.Fatalf("trial %d: flow[%d] = %v, want %v", trial, v, f[v], want)
			}
		}
	}
}

func TestCongestion(t *testing.T) {
	tr := chain(3)
	tr.Cap[1] = 2
	tr.Cap[2] = 4
	// Demand: +3 at node 2, -3 at root.
	b := []float64{-3, 0, 3}
	// Edge 2→1 carries 3 (cong 0.75), edge 1→0 carries 3 (cong 1.5).
	if c := tr.Congestion(b); math.Abs(c-1.5) > 1e-12 {
		t.Errorf("Congestion = %v, want 1.5", c)
	}
}

func TestLCA(t *testing.T) {
	// Tree:      0
	//          /   \
	//         1     2
	//        / \     \
	//       3   4     5
	//      /
	//     6
	parent := []int{-1, 0, 0, 1, 1, 2, 3}
	tr, err := New(0, parent, nil)
	if err != nil {
		t.Fatal(err)
	}
	lca := NewLCA(tr)
	cases := []struct{ u, v, want int }{
		{3, 4, 1}, {6, 4, 1}, {6, 5, 0}, {3, 3, 3}, {1, 6, 1}, {0, 5, 0}, {4, 2, 0},
	}
	for _, tc := range cases {
		if got := lca.Query(tc.u, tc.v); got != tc.want {
			t.Errorf("LCA(%d,%d) = %d, want %d", tc.u, tc.v, got, tc.want)
		}
		if got := lca.Query(tc.v, tc.u); got != tc.want {
			t.Errorf("LCA(%d,%d) = %d, want %d (symmetric)", tc.v, tc.u, got, tc.want)
		}
	}
}

func TestLCARandomAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tr := randomTree(80, rng)
	lca := NewLCA(tr)
	naive := func(u, v int) int {
		anc := map[int]bool{}
		for x := u; ; x = tr.Parent[x] {
			anc[x] = true
			if x == tr.Root {
				break
			}
		}
		for x := v; ; x = tr.Parent[x] {
			if anc[x] {
				return x
			}
		}
	}
	for i := 0; i < 200; i++ {
		u, v := rng.Intn(80), rng.Intn(80)
		if got, want := lca.Query(u, v), naive(u, v); got != want {
			t.Fatalf("LCA(%d,%d) = %d, want %d", u, v, got, want)
		}
	}
}

func TestTreeFlowStar(t *testing.T) {
	// Star center 0 with leaves 1,2,3; route edges (1,2) cap 5 and (2,3)
	// cap 2. Leaf loads: 1:5, 2:7, 3:2.
	tr := star(4)
	load := tr.TreeFlow([]EdgeEndpoint{{U: 1, V: 2, Cap: 5}, {U: 2, V: 3, Cap: 2}})
	want := []float64{0, 5, 7, 2}
	for v := range want {
		if load[v] != want[v] {
			t.Errorf("load[%d] = %v, want %v", v, load[v], want[v])
		}
	}
}

// TreeFlow must dominate the cut capacity: for every tree edge, the load
// equals the total capacity of graph edges crossing the subtree cut —
// the Fig. 2 identity. Verified against direct cut computation.
func TestTreeFlowEqualsCutCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 20; trial++ {
		tr := randomTree(2+rng.Intn(50), rng)
		n := tr.N()
		var edges []EdgeEndpoint
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			edges = append(edges, EdgeEndpoint{U: u, V: v, Cap: float64(1 + rng.Intn(9))})
		}
		load := tr.TreeFlow(edges)
		for v := 0; v < n; v++ {
			if v == tr.Root {
				continue
			}
			side := tr.InSubtree(v)
			var want float64
			for _, e := range edges {
				if side[e.U] != side[e.V] {
					want += e.Cap
				}
			}
			if math.Abs(load[v]-want) > 1e-9 {
				t.Fatalf("trial %d edge above %d: load %v, want cut cap %v", trial, v, load[v], want)
			}
		}
	}
}

func TestTreeFlowSelfLoopIgnored(t *testing.T) {
	tr := chain(3)
	load := tr.TreeFlow([]EdgeEndpoint{{U: 1, V: 1, Cap: 99}})
	for v, x := range load {
		if x != 0 {
			t.Errorf("load[%d] = %v, want 0", v, x)
		}
	}
}

func TestStretchSumChain(t *testing.T) {
	tr := chain(4)
	lengths := []float64{0, 1, 2, 4}
	// Pair (3,0): path length 1+2+4 = 7, weight 2 → 14.
	// Pair (1,2): length 2 → 2. Total 16.
	got := tr.StretchSum([]EdgeEndpoint{{U: 3, V: 0, Cap: 2}, {U: 1, V: 2, Cap: 1}}, lengths)
	if got != 16 {
		t.Errorf("StretchSum = %v, want 16", got)
	}
}

func TestPathLength(t *testing.T) {
	tr := chain(5)
	lengths := []float64{0, 1, 1, 1, 1}
	lca := NewLCA(tr)
	if d := tr.PathLength(lca, lengths, 4, 1); d != 3 {
		t.Errorf("PathLength = %v, want 3", d)
	}
	if d := tr.PathLength(lca, lengths, 2, 2); d != 0 {
		t.Errorf("PathLength same vertex = %v, want 0", d)
	}
}

func TestDecomposeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	n := 1024
	tr := chain(n)
	sqrtN := math.Sqrt(float64(n))
	d := tr.Decompose(nil, sqrtN, rng)

	// Components partition the vertices and each has its root marked.
	for v := 0; v < n; v++ {
		if d.Comp[v] < 0 || d.Comp[v] >= d.NumComponents() {
			t.Fatalf("vertex %d unassigned", v)
		}
	}
	for i, r := range d.CompRoot {
		if d.Comp[r] != i {
			t.Fatalf("component %d root %d misassigned", i, r)
		}
	}
	// Expected #components ≈ √n = 32; depth Õ(√n). Allow generous slack.
	if c := d.NumComponents(); c < 5 || c > 8*int(sqrtN) {
		t.Errorf("components = %d, want ≈ %v", c, sqrtN)
	}
	if d.MaxDepth > 16*int(sqrtN*math.Log(float64(n))) {
		t.Errorf("max depth %d exceeds Õ(√n)", d.MaxDepth)
	}
	// Components must be contiguous on the chain (each is an interval).
	for v := 1; v < n; v++ {
		if !d.Removed[v] && d.Comp[v] != d.Comp[v-1] {
			t.Fatalf("non-removed edge %d splits components", v)
		}
	}
}

func TestDecomposeWeighted(t *testing.T) {
	// Weight √n on every vertex forces every edge to be removed.
	rng := rand.New(rand.NewSource(18))
	tr := chain(50)
	size := make([]float64, 50)
	for i := range size {
		size[i] = 1000
	}
	d := tr.Decompose(size, 7, rng)
	if d.NumComponents() != 50 {
		t.Errorf("components = %d, want 50 (all edges cut)", d.NumComponents())
	}
	if d.MaxDepth != 0 {
		t.Errorf("MaxDepth = %d, want 0", d.MaxDepth)
	}
}

func TestDecomposeDepthBoundManyTrials(t *testing.T) {
	// Lemma 8.2 depth bound d + O(√n log n) over repeated samples.
	rng := rand.New(rand.NewSource(20))
	n := 2048
	tr := chain(n)
	sqrtN := math.Sqrt(float64(n))
	bound := int(6 * sqrtN * math.Log(float64(n)))
	for trial := 0; trial < 10; trial++ {
		d := tr.Decompose(nil, sqrtN, rng)
		if d.MaxDepth > bound {
			t.Errorf("trial %d: depth %d exceeds bound %d", trial, d.MaxDepth, bound)
		}
	}
}

func TestHeightAndOrder(t *testing.T) {
	tr := chain(6)
	if tr.Height() != 5 {
		t.Errorf("Height = %d, want 5", tr.Height())
	}
	ord := tr.Order()
	if len(ord) != 6 || ord[0] != tr.Root {
		t.Errorf("Order wrong: %v", ord)
	}
	seen := make([]bool, 6)
	seen[tr.Root] = true
	for _, v := range ord[1:] {
		if !seen[tr.Parent[v]] {
			t.Fatalf("order not topological at %d", v)
		}
		seen[v] = true
	}
}

// PathDeltas applied to a swept load vector must reproduce a full
// TreeFlow re-sweep bit for bit (integer capacities), across fuzzed
// trees, pair sets, and successive edit batches that reuse one scratch.
func TestPathDeltasMatchesTreeFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(60)
		tr := randomTree(n, rng)
		pairs := make([]EdgeEndpoint, 3+rng.Intn(3*n))
		for i := range pairs {
			pairs[i] = EdgeEndpoint{U: rng.Intn(n), V: rng.Intn(n), Cap: float64(1 + rng.Intn(30))}
		}
		load := append([]float64(nil), tr.TreeFlow(pairs)...)
		var sc DeltaScratch
		for batch := 0; batch < 4; batch++ {
			// Edit a few pairs: record the delta, apply to the pair list.
			edits := make([]DeltaEdit, 1+rng.Intn(4))
			for i := range edits {
				p := rng.Intn(len(pairs))
				newCap := float64(1 + rng.Intn(30))
				edits[i] = DeltaEdit{U: pairs[p].U, V: pairs[p].V, Diff: newCap - pairs[p].Cap}
				pairs[p].Cap = newCap
			}
			dirty, delta := tr.PathDeltas(edits, &sc)
			seen := make(map[int]bool, len(dirty))
			for _, v := range dirty {
				if v == tr.Root {
					t.Fatalf("trial %d: root reported dirty", trial)
				}
				if seen[v] {
					t.Fatalf("trial %d: vertex %d reported dirty twice", trial, v)
				}
				seen[v] = true
				load[v] += delta[v]
			}
			want := tr.TreeFlow(pairs)
			for v := 0; v < n; v++ {
				if load[v] != want[v] {
					if !seen[v] {
						t.Fatalf("trial %d batch %d: vertex %d changed but not dirty", trial, batch, v)
					}
					t.Fatalf("trial %d batch %d: load[%d] = %v after PathDeltas, full sweep %v",
						trial, batch, v, load[v], want[v])
				}
			}
		}
	}
}

// Self-loops and zero diffs contribute nothing and no dirty vertices.
func TestPathDeltasNoOps(t *testing.T) {
	tr := chain(6)
	var sc DeltaScratch
	dirty, _ := tr.PathDeltas([]DeltaEdit{{U: 3, V: 3, Diff: 5}, {U: 1, V: 4, Diff: 0}}, &sc)
	if len(dirty) != 0 {
		t.Fatalf("no-op edits dirtied %v", dirty)
	}
	if w := tr.PathWork([]DeltaEdit{{U: 3, V: 3, Diff: 5}, {U: 1, V: 4, Diff: 0}}); w != 0 {
		t.Fatalf("no-op edits report work %d", w)
	}
}

// PathWork counts exactly the additions PathDeltas performs.
func TestPathWorkCountsPathEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	tr := randomTree(50, rng)
	edits := make([]DeltaEdit, 8)
	for i := range edits {
		edits[i] = DeltaEdit{U: rng.Intn(50), V: rng.Intn(50), Diff: 1}
	}
	var sc DeltaScratch
	_, delta := tr.PathDeltas(edits, &sc)
	sum := 0.0
	for _, v := range sc.dirty {
		sum += delta[v]
	}
	if got := tr.PathWork(edits); got != int(sum) {
		t.Fatalf("PathWork %d, PathDeltas performed %v additions", got, sum)
	}
}

// AddLeaf must keep the cached LCA table exact: grow a random tree leaf
// by leaf past a power-of-two boundary and compare every query against
// a freshly built table.
func TestAddLeafExtendsLCA(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tr := randomTree(12, rng)
	lca := tr.EnsureLCA()
	_ = lca
	// 12 → 40 vertices crosses the 16 and 32 boundaries, exercising both
	// the O(log n) column append and the invalidate-and-rebuild path.
	for tr.N() < 40 {
		parent := rng.Intn(tr.N())
		v := tr.AddLeaf(parent, 1)
		if tr.Parent[v] != parent || tr.Depth[v] != tr.Depth[parent]+1 {
			t.Fatalf("leaf %d parent/depth wrong", v)
		}
		cur := tr.EnsureLCA()
		fresh := NewLCA(tr)
		for i := 0; i < 60; i++ {
			a, b := rng.Intn(tr.N()), rng.Intn(tr.N())
			if got, want := cur.Query(a, b), fresh.Query(a, b); got != want {
				t.Fatalf("n=%d: LCA(%d,%d)=%d, want %d", tr.N(), a, b, got, want)
			}
		}
	}
}

// After AddLeaf, PathDeltas on the grown tree must still reproduce the
// difference of full TreeFlow sweeps (the dirty-path identity the
// topology updates rely on).
func TestAddLeafPathDeltasMatchTreeFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	tr := randomTree(20, rng)
	pairs := []EdgeEndpoint{}
	for i := 0; i < 30; i++ {
		u, v := rng.Intn(20), rng.Intn(20)
		if u != v {
			pairs = append(pairs, EdgeEndpoint{U: u, V: v, Cap: float64(1 + rng.Intn(9))})
		}
	}
	before := tr.TreeFlow(pairs)
	sc := &DeltaScratch{}
	// Grow two leaves and route three new pairs touching them.
	w1 := tr.AddLeaf(rng.Intn(tr.N()), 0)
	w2 := tr.AddLeaf(w1, 0)
	newPairs := []EdgeEndpoint{
		{U: w1, V: rng.Intn(20), Cap: 3},
		{U: w2, V: rng.Intn(20), Cap: 5},
		{U: w2, V: w1, Cap: 2},
	}
	edits := make([]DeltaEdit, len(newPairs))
	for i, p := range newPairs {
		edits[i] = DeltaEdit{U: p.U, V: p.V, Diff: p.Cap}
	}
	dirty, delta := tr.PathDeltas(edits, sc)
	got := make([]float64, tr.N())
	copy(got, before) // new slots start at 0
	for _, v := range dirty {
		got[v] += delta[v]
	}
	want := tr.TreeFlow(append(append([]EdgeEndpoint{}, pairs...), newPairs...))
	for v := 0; v < tr.N(); v++ {
		if got[v] != want[v] {
			t.Fatalf("load at %d: dirty-path %v, full sweep %v", v, got[v], want[v])
		}
	}
}
