package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Plain-text interchange format, one record per line:
//
//	n m
//	u v cap        (m times)
//
// Lines starting with '#' and blank lines are ignored. This is the format
// accepted by cmd/maxflow and produced by cmd/graphgen.

// Write writes g in the text format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d %d\n", e.U, e.V, e.Cap); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a graph in the text format.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var g *Graph
	want := 0
	got := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if g == nil {
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: want 'n m' header, got %q", line, text)
			}
			n, err := strconv.Atoi(fields[0])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad n: %w", line, err)
			}
			m, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad m: %w", line, err)
			}
			if n < 0 || m < 0 {
				return nil, fmt.Errorf("graph: line %d: negative n or m", line)
			}
			g = New(n)
			want = m
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: want 'u v cap', got %q", line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad u: %w", line, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad v: %w", line, err)
		}
		c, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad cap: %w", line, err)
		}
		if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
			return nil, fmt.Errorf("graph: line %d: endpoint out of range", line)
		}
		if u == v {
			return nil, fmt.Errorf("graph: line %d: self-loop", line)
		}
		if c <= 0 {
			return nil, fmt.Errorf("graph: line %d: non-positive capacity", line)
		}
		g.AddEdge(u, v, c)
		got++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	if g == nil {
		return nil, fmt.Errorf("graph: empty input")
	}
	if got != want {
		return nil, fmt.Errorf("graph: header promised %d edges, got %d", want, got)
	}
	return g, nil
}
