package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
)

// Plain-text interchange format, one record per line:
//
//	n m
//	u v cap        (m times)
//
// Lines starting with '#' and blank lines are ignored. This is the format
// accepted by cmd/maxflow and produced by cmd/graphgen.

// StreamWriter emits the text format edge by edge, so generators can
// write a graph they never materialize (cmd/graphgen at n=10⁶). The
// header is written up front from the promised edge count; Close
// verifies the promise so a truncated stream can't parse back.
type StreamWriter struct {
	bw   *bufio.Writer
	buf  []byte
	want int
	got  int
}

// NewStreamWriter starts a text-format stream for an n-vertex graph
// with exactly m edges to come.
func NewStreamWriter(w io.Writer, n, m int) (*StreamWriter, error) {
	sw := &StreamWriter{bw: bufio.NewWriterSize(w, 1 << 16), want: m}
	sw.buf = strconv.AppendInt(sw.buf[:0], int64(n), 10)
	sw.buf = append(sw.buf, ' ')
	sw.buf = strconv.AppendInt(sw.buf, int64(m), 10)
	sw.buf = append(sw.buf, '\n')
	if _, err := sw.bw.Write(sw.buf); err != nil {
		return nil, err
	}
	return sw, nil
}

// Edge writes one edge record.
func (sw *StreamWriter) Edge(u, v int, capacity int64) error {
	sw.buf = strconv.AppendInt(sw.buf[:0], int64(u), 10)
	sw.buf = append(sw.buf, ' ')
	sw.buf = strconv.AppendInt(sw.buf, int64(v), 10)
	sw.buf = append(sw.buf, ' ')
	sw.buf = strconv.AppendInt(sw.buf, capacity, 10)
	sw.buf = append(sw.buf, '\n')
	sw.got++
	_, err := sw.bw.Write(sw.buf)
	return err
}

// Close flushes and verifies the edge count promised in the header.
func (sw *StreamWriter) Close() error {
	if sw.got != sw.want {
		return fmt.Errorf("graph: stream wrote %d edges, header promised %d", sw.got, sw.want)
	}
	return sw.bw.Flush()
}

// Write writes g in the text format.
func Write(w io.Writer, g *Graph) error {
	sw, err := NewStreamWriter(w, g.N(), g.M())
	if err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if err := sw.Edge(e.U, e.V, e.Cap); err != nil {
			return err
		}
	}
	return sw.Close()
}

// Read parses a graph in the text format, edge at a time: the edge
// array is pre-sized from the header and each line is parsed in place
// from the scanner's buffer, so loading costs one edge array and no
// per-line garbage — at n=10⁶ the loaded graph, not the loader, is the
// peak.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var g *Graph
	want := 0
	got := 0
	line := 0
	var f [4][]byte
	for sc.Scan() {
		line++
		b := trimWS(sc.Bytes())
		if len(b) == 0 || b[0] == '#' {
			continue
		}
		nf := fieldsInto(b, &f)
		if g == nil {
			if nf != 2 {
				return nil, fmt.Errorf("graph: line %d: want 'n m' header, got %q", line, b)
			}
			n, err := parseInt(f[0])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad n: %w", line, err)
			}
			m, err := parseInt(f[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad m: %w", line, err)
			}
			if n < 0 || m < 0 {
				return nil, fmt.Errorf("graph: line %d: negative n or m", line)
			}
			if n > math.MaxInt32 || m > math.MaxInt32 {
				return nil, fmt.Errorf("graph: line %d: header %d %d out of range", line, n, m)
			}
			g = New(int(n))
			g.Reserve(int(m))
			want = int(m)
			continue
		}
		if nf != 3 {
			return nil, fmt.Errorf("graph: line %d: want 'u v cap', got %q", line, b)
		}
		u, err := parseInt(f[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad u: %w", line, err)
		}
		v, err := parseInt(f[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad v: %w", line, err)
		}
		c, err := parseInt(f[2])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad cap: %w", line, err)
		}
		if u < 0 || u >= int64(g.N()) || v < 0 || v >= int64(g.N()) {
			return nil, fmt.Errorf("graph: line %d: endpoint out of range", line)
		}
		if u == v {
			return nil, fmt.Errorf("graph: line %d: self-loop", line)
		}
		if c <= 0 {
			return nil, fmt.Errorf("graph: line %d: non-positive capacity", line)
		}
		g.AddEdge(int(u), int(v), c)
		got++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	if g == nil {
		return nil, fmt.Errorf("graph: empty input")
	}
	if got != want {
		return nil, fmt.Errorf("graph: header promised %d edges, got %d", want, got)
	}
	return g, nil
}

func isWS(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' || c == '\f' }

func trimWS(b []byte) []byte {
	for len(b) > 0 && isWS(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && isWS(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

// fieldsInto splits b on runs of whitespace into at most len(f) fields,
// returning the field count (len(f) means "too many").
func fieldsInto(b []byte, f *[4][]byte) int {
	nf := 0
	i := 0
	for i < len(b) {
		for i < len(b) && isWS(b[i]) {
			i++
		}
		if i >= len(b) {
			break
		}
		start := i
		for i < len(b) && !isWS(b[i]) {
			i++
		}
		if nf == len(f) {
			return len(f)
		}
		f[nf] = b[start:i]
		nf++
	}
	return nf
}

// parseInt is a no-allocation base-10 strconv.ParseInt for the reader's
// hot loop.
func parseInt(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("empty number")
	}
	neg := false
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		b = b[1:]
		if len(b) == 0 {
			return 0, fmt.Errorf("bare sign")
		}
	}
	var x int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("bad digit %q", c)
		}
		d := int64(c - '0')
		if x > (math.MaxInt64-d)/10 {
			return 0, fmt.Errorf("number out of range")
		}
		x = x*10 + d
	}
	if neg {
		x = -x
	}
	return x, nil
}
