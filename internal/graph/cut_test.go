package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestCutCapacity(t *testing.T) {
	g := Grid(2, 2) // square: 4 vertices, 4 edges
	side := []bool{true, false, true, false}
	// Crossing edges: 0-1, 2-3 => capacity 2... plus vertical 0-2 (both in),
	// 1-3 (both out). So crossing = 2.
	if c := CutCapacity(g, side); c != 2 {
		t.Errorf("CutCapacity = %d, want 2", c)
	}
}

func TestCutDemandAndCongestion(t *testing.T) {
	g := Path(4)
	b := STDemand(4, 0, 3, 6)
	side := []bool{true, true, false, false}
	if d := CutDemand(b, side); d != 6 {
		t.Errorf("CutDemand = %v, want 6", d)
	}
	if c := CutCongestion(g, b, side); c != 6 {
		t.Errorf("CutCongestion = %v, want 6 (cap 1)", c)
	}
	if c := CutCongestion(g, make([]float64, 4), side); c != 0 {
		t.Errorf("zero demand congestion = %v, want 0", c)
	}
}

func TestFlowAcrossCut(t *testing.T) {
	g := Path(3)
	f := []float64{2, 2}
	side := []bool{true, false, false}
	if x := FlowAcrossCut(g, f, side); x != 2 {
		t.Errorf("FlowAcrossCut = %v, want 2", x)
	}
	// Reverse side indicator flips the sign.
	side = []bool{false, true, true}
	if x := FlowAcrossCut(g, f, side); x != -2 {
		t.Errorf("FlowAcrossCut = %v, want -2", x)
	}
}

// Conservation: for any flow and any cut, net flow across the cut equals
// the divergence summed over the source side. This is the discrete
// divergence theorem the congestion approximator relies on.
func TestDivergenceTheoremProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		g := GNP(20, 0.2, rng)
		f := make([]float64, g.M())
		for i := range f {
			f[i] = rng.NormFloat64() * 5
		}
		side := RandomCut(g.N(), rng)
		lhs := FlowAcrossCut(g, f, side)
		div := g.Divergence(f)
		rhs := CutDemand(div, side)
		if math.Abs(lhs-rhs) > 1e-9 {
			t.Fatalf("trial %d: flow across cut %v != divergence sum %v", trial, lhs, rhs)
		}
	}
}

func TestSingletonAndBallCut(t *testing.T) {
	g := Path(5)
	s := SingletonCut(5, 2)
	if CutCapacity(g, s) != 2 {
		t.Error("singleton cut of interior path vertex should have capacity 2")
	}
	ball := BallCut(g, 0, 2)
	want := []bool{true, true, true, false, false}
	for i := range want {
		if ball[i] != want[i] {
			t.Fatalf("BallCut[%d] = %v, want %v", i, ball[i], want[i])
		}
	}
}

func TestRandomCutNontrivial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		side := RandomCut(4, rng)
		ones := 0
		for _, b := range side {
			if b {
				ones++
			}
		}
		if ones == 0 || ones == 4 {
			t.Fatal("RandomCut returned trivial cut")
		}
	}
}

func TestSTDemandFeasible(t *testing.T) {
	b := STDemand(6, 1, 4, 3.5)
	if !IsFeasibleDemand(b, 1e-12) {
		t.Error("s-t demand should sum to zero")
	}
	b[0] = 1
	if IsFeasibleDemand(b, 1e-12) {
		t.Error("unbalanced demand reported feasible")
	}
}
