package graph

import (
	"bytes"
	"math/rand"
	"testing"
)

// StreamGNP and GNPSparse draw the structure from the same PRNG stream,
// so the streamed file must parse back to the exact edge list GNPSparse
// materializes — the n=10⁶ disk path and the in-memory path are the
// same graph.
func TestStreamGNPMatchesGNPSparse(t *testing.T) {
	const n, seed = 2000, 9
	p := 8.0 / float64(n)
	var buf bytes.Buffer
	if err := StreamGNP(&buf, n, p, 32, seed); err != nil {
		t.Fatal(err)
	}
	g, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := GNPSparse(n, p, rand.New(rand.NewSource(seed)))
	if g.N() != want.N() || g.M() != want.M() {
		t.Fatalf("streamed %d/%d vs materialized %d/%d", g.N(), g.M(), want.N(), want.M())
	}
	we := want.Edges()
	for i, e := range g.Edges() {
		if e.U != we[i].U || e.V != we[i].V {
			t.Fatalf("edge %d: streamed (%d,%d) vs materialized (%d,%d)", i, e.U, e.V, we[i].U, we[i].V)
		}
		if e.Cap < 1 || e.Cap > 32 {
			t.Fatalf("edge %d: capacity %d outside [1,32]", i, e.Cap)
		}
	}
	if !g.Connected() {
		t.Fatal("GNPSparse graph not connected (tree attachment broken)")
	}
	// Same seed, same bytes: the stream is deterministic end to end.
	var again bytes.Buffer
	if err := StreamGNP(&again, n, p, 32, seed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		// buf was consumed by Read; re-stream for the comparison.
		var first bytes.Buffer
		if err := StreamGNP(&first, n, p, 32, seed); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatal("StreamGNP not byte-deterministic for a fixed seed")
		}
	}
}

// GNPSparse must sample the same distribution as the dense GNP sampler:
// edge-count expectation within a few standard deviations, plus the
// structural invariants (no self-loops, no out-of-range endpoints —
// pairAt's fix-up scans are the risk here).
func TestGNPSparseDistribution(t *testing.T) {
	const n = 500
	p := 10.0 / float64(n)
	total := 0
	const runs = 20
	for s := int64(0); s < runs; s++ {
		g := GNPSparse(n, p, rand.New(rand.NewSource(s)))
		for _, e := range g.Edges() {
			if e.U == e.V || e.U < 0 || e.V < 0 || e.U >= n || e.V >= n {
				t.Fatalf("seed %d: bad edge (%d,%d)", s, e.U, e.V)
			}
		}
		total += g.M()
	}
	// n-1 tree edges plus Binomial(n(n-1)/2, p) extras.
	pairs := float64(n) * float64(n-1) / 2
	mean := float64(n-1) + pairs*p
	sd := 5 * float64(runs) * (1 + pairs*p*(1-p)) // crude but generous
	if d := float64(total) - runs*mean; d*d > sd*sd {
		t.Fatalf("edge count %d across %d runs vs expected %.0f — sparse sampler off-distribution", total, runs, runs*mean)
	}
}

// StreamGrid emits Grid(w,h)'s structure in Grid's construction order.
func TestStreamGridMatchesGrid(t *testing.T) {
	var buf bytes.Buffer
	if err := StreamGrid(&buf, 7, 5, 16, 3); err != nil {
		t.Fatal(err)
	}
	g, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := Grid(7, 5)
	if g.N() != want.N() || g.M() != want.M() {
		t.Fatalf("streamed %d/%d vs Grid %d/%d", g.N(), g.M(), want.N(), want.M())
	}
	we := want.Edges()
	for i, e := range g.Edges() {
		if e.U != we[i].U || e.V != we[i].V {
			t.Fatalf("edge %d: streamed (%d,%d) vs Grid (%d,%d)", i, e.U, e.V, we[i].U, we[i].V)
		}
	}
}

// The stream writer must refuse to produce a file whose header lies
// about the edge count — a truncated generator run must not parse back.
func TestStreamWriterCountMismatch(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Edge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err == nil {
		t.Fatal("Close accepted 1 edge against a 3-edge header")
	}
}
