package graph

import (
	"fmt"
	"io"
	"math"
	"math/rand"
)

// This file contains the workload generators used by the experiments.
// Each generator returns a connected graph; capacity assignment is
// factored out into CapUnit / CapUniform so the same topology can be run
// with different capacity regimes.

// Path returns the path graph on n vertices with unit capacities.
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 1)
	}
	return g
}

// Cycle returns the cycle on n ≥ 3 vertices with unit capacities.
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: cycle needs n >= 3")
	}
	g := Path(n)
	g.AddEdge(n-1, 0, 1)
	return g
}

// Grid returns the w×h grid graph (4-neighbour) with unit capacities.
// Vertex (x,y) has index y*w+x.
func Grid(w, h int) *Graph {
	g := New(w * h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := y*w + x
			if x+1 < w {
				g.AddEdge(v, v+1, 1)
			}
			if y+1 < h {
				g.AddEdge(v, v+w, 1)
			}
		}
	}
	return g
}

// Complete returns K_n with unit capacities.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v, 1)
		}
	}
	return g
}

// Tree returns a random tree on n vertices: each vertex v ≥ 1 attaches to
// a uniformly random earlier vertex.
func Tree(n int, rng *rand.Rand) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, rng.Intn(v), 1)
	}
	return g
}

// GNP returns an Erdős–Rényi G(n,p) graph, re-sampling edges on top of a
// random spanning tree so the result is always connected.
func GNP(n int, p float64, rng *rand.Rand) *Graph {
	g := Tree(n, rng)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v, 1)
			}
		}
	}
	return g
}

// GNPSparse samples the same distribution as GNP — a uniform random
// attachment tree plus each of the C(n,2) vertex pairs independently
// with probability p — in O(n + m) expected time: instead of one coin
// per pair it jumps between successes with geometric skips, the only
// workable form at n=10⁶ (GNP's pair scan would draw 5·10¹¹ variates
// there). The PRNG consumption differs from GNP's, so a fixed seed
// yields a different (identically distributed) graph.
func GNPSparse(n int, p float64, rng *rand.Rand) *Graph {
	g := New(n)
	if n > 1 {
		g.Reserve(n - 1 + int(p*float64(n)*float64(n-1)/2))
	}
	gnpSparseEdges(n, p, rng, func(u, v int) {
		g.AddEdge(u, v, 1)
	})
	return g
}

// gnpSparseEdges runs the GNPSparse generation process, emitting each
// edge. Both GNPSparse and the streaming writer drive it, so a seed
// maps to one edge sequence regardless of the consumer.
func gnpSparseEdges(n int, p float64, rng *rand.Rand, emit func(u, v int)) {
	// Attachment tree (identical process to Tree).
	for v := 1; v < n; v++ {
		emit(v, rng.Intn(v))
	}
	if p <= 0 || n < 2 {
		return
	}
	// Geometric skips over the lexicographic pair sequence: after a
	// success, the gap to the next one is Geom(p), realized as
	// ⌊log(1-U)/log(1-p)⌋. p ≥ 1 degenerates to skip 0 — every pair.
	total := n * (n - 1) / 2
	logq := math.Log1p(-p) // log(1-p), -Inf when p >= 1
	k := -1
	for {
		skip := 0
		if u := rng.Float64(); logq < 0 {
			skip = int(math.Log1p(-u) / logq)
		}
		k += 1 + skip
		if k < 0 || k >= total { // k < 0: integer overflow on huge skips
			return
		}
		u, v := pairAt(k, n)
		emit(u, v)
	}
}

// pairAt maps a linear index into the lexicographic sequence of pairs
// (u,v), u < v, over n vertices. Row u starts at u·n − u(u+1)/2; the
// closed-form inverse is fixed up by a step or two of scanning to
// absorb float rounding.
func pairAt(k, n int) (int, int) {
	h := float64(n) - 0.5
	u := int(h - math.Sqrt(h*h-2*float64(k)))
	if u < 0 {
		u = 0
	}
	if u > n-2 {
		u = n - 2
	}
	for u < n-2 && pairRowStart(u+1, n) <= k {
		u++
	}
	for u > 0 && pairRowStart(u, n) > k {
		u--
	}
	return u, u + 1 + (k - pairRowStart(u, n))
}

func pairRowStart(u, n int) int { return u*n - u*(u+1)/2 }

// RandomRegular returns an (approximately) d-regular random graph on n
// vertices via the configuration model with rejection of self-loops and
// repeats of the immediate pairing; a random spanning tree underlay keeps
// it connected. n*d should be even for exact regularity; otherwise one
// vertex ends with degree d+1.
func RandomRegular(n, d int, rng *rand.Rand) *Graph {
	g := Tree(n, rng)
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u != v {
			g.AddEdge(u, v, 1)
		}
	}
	return g
}

// Barbell returns two cliques of size k joined by a path of length
// bridge ≥ 1 with unit capacities. This is the classic hard instance for
// flow/cut algorithms: the min s-t cut across the bridge is 1.
func Barbell(k, bridge int) *Graph {
	if k < 1 || bridge < 1 {
		panic("graph: barbell needs k >= 1 and bridge >= 1")
	}
	n := 2*k + bridge - 1
	g := New(n)
	// Left clique: 0..k-1. Right clique: k+bridge-1 .. n-1.
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			g.AddEdge(u, v, 1)
		}
	}
	off := k + bridge - 1
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			g.AddEdge(off+u, off+v, 1)
		}
	}
	// Bridge path from vertex k-1 to vertex off.
	prev := k - 1
	for i := 0; i < bridge; i++ {
		var next int
		if i == bridge-1 {
			next = off
		} else {
			next = k + i
		}
		g.AddEdge(prev, next, 1)
		prev = next
	}
	return g
}

// ExpanderPath returns a random d-regular "expander" of size k glued to a
// path of length pathLen: low diameter core plus high diameter tail.
// Useful for separating the D and √n terms in round complexities.
func ExpanderPath(k, d, pathLen int, rng *rand.Rand) *Graph {
	core := RandomRegular(k, d, rng)
	n := k + pathLen
	g := New(n)
	for _, e := range core.Edges() {
		g.AddEdge(e.U, e.V, e.Cap)
	}
	prev := 0
	for i := 0; i < pathLen; i++ {
		g.AddEdge(prev, k+i, 1)
		prev = k + i
	}
	return g
}

// Caterpillar returns a path of length spine where every spine vertex has
// legs pendant vertices: a deep tree with high total degree, used for the
// tree-decomposition experiments (Lemma 8.2).
func Caterpillar(spine, legs int) *Graph {
	n := spine + spine*legs
	g := New(n)
	for i := 0; i+1 < spine; i++ {
		g.AddEdge(i, i+1, 1)
	}
	next := spine
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			g.AddEdge(i, next, 1)
			next++
		}
	}
	return g
}

// CapUnit sets every capacity to 1 (returns g for chaining).
func CapUnit(g *Graph) *Graph {
	for i := range g.edges {
		g.edges[i].Cap = 1
	}
	return g
}

// CapUniform assigns independent uniform capacities in [1, maxCap].
func CapUniform(g *Graph, maxCap int64, rng *rand.Rand) *Graph {
	if maxCap < 1 {
		panic("graph: maxCap must be >= 1")
	}
	for i := range g.edges {
		g.edges[i].Cap = 1 + rng.Int63n(maxCap)
	}
	return g
}

// Family is a named graph generator used by the benchmark harness to
// sweep topologies.
type Family struct {
	Name string
	// Make returns a connected graph with roughly n vertices.
	Make func(n int, rng *rand.Rand) *Graph
}

// Families returns the standard topology families used across the
// experiments (see DESIGN.md §3).
func Families() []Family {
	return []Family{
		{Name: "grid", Make: func(n int, rng *rand.Rand) *Graph {
			side := 1
			for side*side < n {
				side++
			}
			return CapUniform(Grid(side, side), 16, rng)
		}},
		{Name: "gnp", Make: func(n int, rng *rand.Rand) *Graph {
			p := 4.0 / float64(n)
			return CapUniform(GNP(n, p, rng), 16, rng)
		}},
		{Name: "regular", Make: func(n int, rng *rand.Rand) *Graph {
			return CapUniform(RandomRegular(n, 4, rng), 16, rng)
		}},
		{Name: "barbell", Make: func(n int, rng *rand.Rand) *Graph {
			k := n / 3
			if k < 2 {
				k = 2
			}
			return Barbell(k, n-2*k+1)
		}},
		{Name: "expanderpath", Make: func(n int, rng *rand.Rand) *Graph {
			k := n / 2
			if k < 4 {
				k = 4
			}
			return ExpanderPath(k, 4, n-k, rng)
		}},
	}
}

// --- Streaming generation (cmd/graphgen) ---
//
// The streaming writers emit the text format without materializing a
// Graph: structure edges regenerate in two identically seeded passes
// (count for the header, then emit), and capacities come from a
// separate stream derived from the seed — inline capacities cannot
// replicate CapUniform's all-structure-then-all-caps draw order
// without buffering, which is the thing being avoided.

// capDraw returns the next uniform capacity in [1, maxCap].
func capDraw(rng *rand.Rand, maxCap int64) int64 {
	if maxCap <= 1 {
		return 1
	}
	return 1 + rng.Int63n(maxCap)
}

// capSeed derives the capacity stream's seed (any fixed mix works; it
// only has to be deterministic and distinct from the structure seed).
func capSeed(seed int64) int64 { return seed ^ 0x5deece66d }

// StreamGNP writes a GNPSparse(n, p) graph with uniform capacities in
// [1, maxCap] to w, edge at a time.
func StreamGNP(w io.Writer, n int, p float64, maxCap int64, seed int64) error {
	count := 0
	gnpSparseEdges(n, p, rand.New(rand.NewSource(seed)), func(u, v int) { count++ })
	sw, err := NewStreamWriter(w, n, count)
	if err != nil {
		return err
	}
	capRng := rand.New(rand.NewSource(capSeed(seed)))
	var emitErr error
	gnpSparseEdges(n, p, rand.New(rand.NewSource(seed)), func(u, v int) {
		if emitErr == nil {
			emitErr = sw.Edge(u, v, capDraw(capRng, maxCap))
		}
	})
	if emitErr != nil {
		return emitErr
	}
	return sw.Close()
}

// StreamGrid writes the w×h grid with uniform capacities in [1, maxCap]
// to out, edge at a time (the structure is deterministic, so no
// counting pass is needed).
func StreamGrid(out io.Writer, w, h int, maxCap int64, seed int64) error {
	m := 0
	if w > 0 && h > 0 {
		m = h*(w-1) + w*(h-1)
	}
	sw, err := NewStreamWriter(out, w*h, m)
	if err != nil {
		return err
	}
	capRng := rand.New(rand.NewSource(capSeed(seed)))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := y*w + x
			if x+1 < w {
				if err := sw.Edge(v, v+1, capDraw(capRng, maxCap)); err != nil {
					return err
				}
			}
			if y+1 < h {
				if err := sw.Edge(v, v+w, capDraw(capRng, maxCap)); err != nil {
					return err
				}
			}
		}
	}
	return sw.Close()
}

// String implements fmt.Stringer for diagnostics.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.n, len(g.edges))
}
