package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// quickGraph derives a deterministic connected graph + flow from quick's
// generated values.
func quickGraph(seed int64, extra int) (*Graph, []float64, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(24)
	g := Tree(n, rng)
	for k := 0; k < extra%32; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, 1+rng.Int63n(20))
		}
	}
	f := make([]float64, g.M())
	for i := range f {
		f[i] = rng.NormFloat64() * 10
	}
	return g, f, rng
}

// Divergence always sums to zero: flow is neither created nor destroyed
// globally (column sums of the incidence matrix vanish).
func TestQuickDivergenceSumsToZero(t *testing.T) {
	prop := func(seed int64, extra int) bool {
		g, f, _ := quickGraph(seed, extra)
		var total float64
		for _, d := range g.Divergence(f) {
			total += d
		}
		return math.Abs(total) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// The divergence theorem: net flow across any cut equals total
// divergence on the source side (the identity the congestion
// approximator's rows rely on).
func TestQuickDivergenceTheorem(t *testing.T) {
	prop := func(seed int64, extra int) bool {
		g, f, rng := quickGraph(seed, extra)
		side := RandomCut(g.N(), rng)
		lhs := FlowAcrossCut(g, f, side)
		rhs := CutDemand(g.Divergence(f), side)
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Cut capacity is symmetric under complementing the side.
func TestQuickCutCapacitySymmetric(t *testing.T) {
	prop := func(seed int64, extra int) bool {
		g, _, rng := quickGraph(seed, extra)
		side := RandomCut(g.N(), rng)
		comp := make([]bool, len(side))
		for i, b := range side {
			comp[i] = !b
		}
		return CutCapacity(g, side) == CutCapacity(g, comp)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// BFS distances satisfy the triangle property along edges: adjacent
// vertices differ by at most one level.
func TestQuickBFSLipschitz(t *testing.T) {
	prop := func(seed int64, extra int) bool {
		g, _, rng := quickGraph(seed, extra)
		dist, _ := g.BFS(rng.Intn(g.N()))
		for _, e := range g.Edges() {
			d := dist[e.U] - dist[e.V]
			if d < -1 || d > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// MaxCongestion scales linearly with the flow.
func TestQuickCongestionHomogeneous(t *testing.T) {
	prop := func(seed int64, extra int) bool {
		g, f, _ := quickGraph(seed, extra)
		c1 := g.MaxCongestion(f)
		for i := range f {
			f[i] *= 3
		}
		c3 := g.MaxCongestion(f)
		return math.Abs(c3-3*c1) < 1e-9*math.Max(1, c3)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
