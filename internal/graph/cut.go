package graph

import "math/rand"

// Cut utilities. A cut is represented by its indicator side: side[v] is
// true when v belongs to the source side S. The capacity of the cut is
// the total capacity of edges with exactly one endpoint in S, and for a
// demand vector b its inevitable congestion is |b(S)| / cap(S, V∖S)
// (the quantity a congestion approximator must estimate, §2).

// CutCapacity returns the total capacity of edges crossing the cut.
func CutCapacity(g *Graph, side []bool) int64 {
	var c int64
	for _, e := range g.Edges() {
		if side[e.U] != side[e.V] {
			c += e.Cap
		}
	}
	return c
}

// CutDemand returns b(S) = Σ_{v∈S} b[v], the net demand that must cross
// the cut.
func CutDemand(b []float64, side []bool) float64 {
	var d float64
	for v, in := range side {
		if in {
			d += b[v]
		}
	}
	return d
}

// CutCongestion returns |b(S)|/cap(S), the congestion any feasible
// routing of b induces on the cut. It returns 0 when the demand across
// the cut is 0 and +Inf-free behaviour is preserved by the caller
// ensuring cap > 0 on meaningful cuts; a zero-capacity cut with nonzero
// demand returns +Inf via ordinary float division.
func CutCongestion(g *Graph, b []float64, side []bool) float64 {
	d := CutDemand(b, side)
	if d < 0 {
		d = -d
	}
	if d == 0 {
		return 0
	}
	return d / float64(CutCapacity(g, side))
}

// FlowAcrossCut returns the net flow crossing from S to V∖S under f.
func FlowAcrossCut(g *Graph, f []float64, side []bool) float64 {
	var x float64
	for e, ed := range g.Edges() {
		switch {
		case side[ed.U] && !side[ed.V]:
			x += f[e]
		case !side[ed.U] && side[ed.V]:
			x -= f[e]
		}
	}
	return x
}

// SingletonCut returns the indicator of the cut {v}.
func SingletonCut(n, v int) []bool {
	side := make([]bool, n)
	side[v] = true
	return side
}

// RandomCut returns a uniformly random nontrivial cut (both sides
// non-empty). n must be ≥ 2.
func RandomCut(n int, rng *rand.Rand) []bool {
	if n < 2 {
		panic("graph: RandomCut needs n >= 2")
	}
	for {
		side := make([]bool, n)
		ones := 0
		for v := range side {
			if rng.Intn(2) == 1 {
				side[v] = true
				ones++
			}
		}
		if ones > 0 && ones < n {
			return side
		}
	}
}

// BallCut returns the cut given by the hop-ball of radius r around v —
// these locality-respecting cuts are where tree approximators are most
// stressed.
func BallCut(g *Graph, v, r int) []bool {
	dist, _ := g.BFS(v)
	side := make([]bool, g.N())
	for u, d := range dist {
		if d >= 0 && d <= r {
			side[u] = true
		}
	}
	return side
}

// STDemand returns the demand vector routing value F from s to t.
func STDemand(n, s, t int, value float64) []float64 {
	b := make([]float64, n)
	b[s] = value
	b[t] = -value
	return b
}

// IsFeasibleDemand reports whether Σ_v b[v] ≈ 0 (a routable demand).
func IsFeasibleDemand(b []float64, tol float64) bool {
	var s float64
	for _, v := range b {
		s += v
	}
	if s < 0 {
		s = -s
	}
	return s <= tol
}
