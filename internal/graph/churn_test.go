package graph

// Tests of the CSR delta overlay: post-finalize AddEdge lands in the
// overlay without a re-finalize, DeleteEdge tombstones in place,
// AddVertex/RemoveVertex keep ids stable, iteration order is stable
// under churn, and Compact folds everything back into a base CSR that
// is indistinguishable from a fresh build.

import (
	"math/rand"
	"testing"
)

// collectArcs returns v's live incidences via ForEachArc.
func collectArcs(g *Graph, v int) []Arc {
	var out []Arc
	g.ForEachArc(v, func(a Arc) { out = append(out, a) })
	return out
}

// naiveArcs recomputes v's live incidences straight from the edge list
// in insertion order — the reference iteration order.
func naiveArcs(g *Graph, v int) []Arc {
	var out []Arc
	for e, ed := range g.Edges() {
		if ed.Cap == 0 {
			continue
		}
		if ed.U == v {
			out = append(out, Arc{To: ed.V, E: e})
		} else if ed.V == v {
			out = append(out, Arc{To: ed.U, E: e})
		}
	}
	return out
}

func sameArcs(a, b []Arc) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Fuzzed churn: random interleavings of adds, deletes, vertex adds and
// removals must keep every iterator consistent with the naive edge-list
// recomputation, before and after Compact.
func TestChurnIterationMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(8)
		g := New(n)
		g.OverlayCompactFraction = -1 // no auto-compact: exercise the overlay hard
		for v := 1; v < n; v++ {
			g.AddEdge(v, rng.Intn(v), 1+rng.Int63n(9))
		}
		g.Finalize()
		live := func() []int {
			var out []int
			for e := range g.Edges() {
				if !g.Dead(e) {
					out = append(out, e)
				}
			}
			return out
		}
		for step := 0; step < 30; step++ {
			switch op := rng.Intn(4); {
			case op == 0: // add edge between live vertices
				u, v := rng.Intn(g.N()), rng.Intn(g.N())
				if u != v && !g.Removed(u) && !g.Removed(v) {
					g.AddEdge(u, v, 1+rng.Int63n(9))
				}
			case op == 1: // delete a live edge
				if l := live(); len(l) > 0 {
					g.DeleteEdge(l[rng.Intn(len(l))])
				}
			case op == 2: // add a vertex plus one anchoring edge
				anchor := rng.Intn(g.N())
				if !g.Removed(anchor) {
					w := g.AddVertex()
					g.AddEdge(w, anchor, 1+rng.Int63n(9))
				}
			case op == 3: // remove a random live vertex
				v := rng.Intn(g.N())
				if !g.Removed(v) && g.ActiveN() > 1 {
					g.RemoveVertex(v)
				}
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			for v := 0; v < g.N(); v++ {
				if got, want := collectArcs(g, v), naiveArcs(g, v); !sameArcs(got, want) {
					t.Fatalf("trial %d step %d: vertex %d arcs %v, want %v", trial, step, v, got, want)
				}
				if d := g.Degree(v); d != len(naiveArcs(g, v)) {
					t.Fatalf("trial %d step %d: Degree(%d)=%d, want %d", trial, step, v, d, len(naiveArcs(g, v)))
				}
			}
		}
		g.Compact()
		if g.OverlayArcs() != 0 {
			t.Fatalf("trial %d: Compact left %d overlay arcs", trial, g.OverlayArcs())
		}
		for v := 0; v < g.N(); v++ {
			if got, want := collectArcs(g, v), naiveArcs(g, v); !sameArcs(got, want) {
				t.Fatalf("trial %d post-compact: vertex %d arcs %v, want %v", trial, v, got, want)
			}
			if got, want := g.Adj(v), naiveArcs(g, v); !sameArcs(got, want) {
				t.Fatalf("trial %d post-compact: Adj(%d)=%v, want %v", trial, v, got, want)
			}
		}
	}
}

// Overlay adds must not re-finalize; crossing the compact threshold
// must.
func TestOverlayCompactThreshold(t *testing.T) {
	g := New(10)
	for v := 1; v < 10; v++ {
		g.AddEdge(v, v-1, 1)
	}
	g.Finalize()
	g.AddEdge(0, 5, 2)
	if g.OverlayArcs() != 2 {
		t.Fatalf("overlay arcs %d after one post-finalize add, want 2", g.OverlayArcs())
	}
	// Default threshold 0.25 of 18 base arcs: the third overlay edge
	// (6 arcs > 4.5) schedules the compact, observable after the next
	// adjacency access.
	g.AddEdge(1, 6, 2)
	g.AddEdge(2, 7, 2)
	g.ForEachArc(0, func(Arc) {})
	if g.OverlayArcs() != 0 {
		t.Fatalf("auto-compact did not fire: %d overlay arcs", g.OverlayArcs())
	}
}

// Tombstones: deletion keeps ids, skips iteration, and the flow-space
// dimension (M) is unchanged.
func TestDeleteEdgeTombstone(t *testing.T) {
	g := New(3)
	e0 := g.AddEdge(0, 1, 5)
	e1 := g.AddEdge(1, 2, 7)
	g.Finalize()
	g.DeleteEdge(e0)
	if g.M() != 2 || g.LiveM() != 1 {
		t.Fatalf("M=%d LiveM=%d, want 2/1", g.M(), g.LiveM())
	}
	if !g.Dead(e0) || g.Dead(e1) {
		t.Fatal("tombstone marks wrong")
	}
	if got := collectArcs(g, 1); len(got) != 1 || got[0].E != e1 {
		t.Fatalf("vertex 1 arcs %v, want only edge %d", got, e1)
	}
	if g.Connected() {
		t.Fatal("deleting the only 0-1 edge must disconnect vertex 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double delete did not panic")
		}
	}()
	g.DeleteEdge(e0)
}

// RemoveVertex tombstones the incident edges, reports them, and the
// active subgraph semantics (Connected, ActiveN) follow.
func TestRemoveVertex(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	e12 := g.AddEdge(1, 2, 1)
	e13 := g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)
	g.Finalize()
	killed := g.RemoveVertex(1)
	if len(killed) != 3 {
		t.Fatalf("killed %v, want 3 edges", killed)
	}
	if g.ActiveN() != 3 || !g.Removed(1) {
		t.Fatalf("ActiveN=%d Removed(1)=%v", g.ActiveN(), g.Removed(1))
	}
	// 0 is now isolated from {2,3}.
	if g.Connected() {
		t.Fatal("active subgraph should be disconnected after removing vertex 1")
	}
	if !g.Dead(e12) || !g.Dead(e13) {
		t.Fatal("incident edges not tombstoned")
	}
	// Re-attach 0 via a new edge: connected again.
	g.AddEdge(0, 2, 1)
	if !g.Connected() {
		t.Fatal("active subgraph should be connected after re-attaching 0")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// AddVertex past the finalized base: adjacency works without a rebuild,
// ids are dense, and BFS/Divergence cover the new range.
func TestAddVertexAfterFinalize(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 3)
	g.Finalize()
	w := g.AddVertex()
	if w != 2 || g.N() != 3 {
		t.Fatalf("AddVertex id %d N %d", w, g.N())
	}
	if d := g.Degree(w); d != 0 {
		t.Fatalf("fresh vertex degree %d", d)
	}
	e := g.AddEdge(w, 0, 4)
	if got := collectArcs(g, w); len(got) != 1 || got[0] != (Arc{To: 0, E: e}) {
		t.Fatalf("new vertex arcs %v", got)
	}
	dist, _ := g.BFS(1)
	if dist[w] != 2 {
		t.Fatalf("BFS dist to new vertex %d, want 2", dist[w])
	}
	div := g.Divergence([]float64{1, 2}) // e0: 0→1 carries 1; e1: 2→0 carries 2
	if div[0] != -1 || div[1] != -1 || div[2] != 2 {
		t.Fatalf("divergence %v", div)
	}
}

// Clone must preserve churn state.
func TestClonePreservesChurn(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	e := g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 0, 1)
	g.Finalize()
	g.DeleteEdge(e)
	g.RemoveVertex(3) // kills 2-3 and 3-0
	h := g.Clone()
	if h.M() != g.M() || h.LiveM() != g.LiveM() || h.ActiveN() != g.ActiveN() || !h.Removed(3) {
		t.Fatalf("clone lost churn state: M=%d LiveM=%d ActiveN=%d", h.M(), h.LiveM(), h.ActiveN())
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < h.N(); v++ {
		if !sameArcs(collectArcs(h, v), collectArcs(g, v)) {
			t.Fatalf("clone arcs differ at %d", v)
		}
	}
}

// The overlay iterators must stay allocation-free.
func TestChurnZeroAllocIteration(t *testing.T) {
	g := New(64)
	for v := 1; v < 64; v++ {
		g.AddEdge(v, v-1, 1)
	}
	g.Finalize()
	g.OverlayCompactFraction = -1
	for i := 0; i < 16; i++ {
		g.AddEdge(i, 32+i, 1)
	}
	g.DeleteEdge(0)
	f := make([]float64, g.M())
	div := make([]float64, g.N())
	if avg := testing.AllocsPerRun(20, func() {
		g.DivergenceInto(f, div)
	}); avg > 0 {
		t.Errorf("DivergenceInto allocates %.1f per sweep under churn, want 0", avg)
	}
	sink := 0
	if avg := testing.AllocsPerRun(20, func() {
		for v := 0; v < g.N(); v++ {
			g.ForEachArc(v, func(a Arc) { sink += a.E })
		}
	}); avg > 0 {
		t.Errorf("ForEachArc allocates %.1f per sweep under churn, want 0", avg)
	}
	_ = sink
}
