package graph

import (
	"math/rand"
	"testing"

	"distflow/internal/par"
)

// The CSR layout must reproduce the incidence order of the old
// per-vertex append representation: within each vertex, arcs appear in
// edge-insertion order.
func TestCSRIncidenceOrder(t *testing.T) {
	g := New(4)
	e0 := g.AddEdge(0, 1, 1)
	e1 := g.AddEdge(1, 2, 2)
	e2 := g.AddEdge(0, 2, 3)
	e3 := g.AddEdge(0, 1, 4) // parallel edge
	want := map[int][]Arc{
		0: {{To: 1, E: e0}, {To: 2, E: e2}, {To: 1, E: e3}},
		1: {{To: 0, E: e0}, {To: 2, E: e1}, {To: 0, E: e3}},
		2: {{To: 1, E: e1}, {To: 0, E: e2}},
		3: {},
	}
	for v, w := range want {
		got := g.Adj(v)
		if len(got) != len(w) {
			t.Fatalf("Adj(%d) = %v, want %v", v, got, w)
		}
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("Adj(%d)[%d] = %v, want %v", v, i, got[i], w[i])
			}
		}
	}
}

// AddEdge after a Finalize must invalidate and rebuild the CSR.
func TestCSRRebuildAfterAddEdge(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	if d := g.Degree(0); d != 1 { // forces a Finalize
		t.Fatalf("degree 0 = %d, want 1", d)
	}
	g.AddEdge(0, 2, 1)
	if d := g.Degree(0); d != 2 {
		t.Fatalf("degree 0 after AddEdge = %d, want 2", d)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// SetCap edits capacities in place without touching the CSR layout.
func TestSetCap(t *testing.T) {
	g := New(2)
	e := g.AddEdge(0, 1, 5)
	g.Finalize()
	arcs := g.Adj(0)
	g.SetCap(e, 9)
	if g.Cap(e) != 9 {
		t.Fatalf("cap = %d, want 9", g.Cap(e))
	}
	if &arcs[0] != &g.Adj(0)[0] {
		t.Fatal("SetCap rebuilt the CSR adjacency")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive SetCap did not panic")
		}
	}()
	g.SetCap(e, 0)
}

// ForEachArc and the divergence sweep must not allocate: they are the
// per-iteration hot loops of the solver and the build path.
func TestZeroAllocSweeps(t *testing.T) {
	defer par.SetWorkers(par.SetWorkers(1)) // keep the pool out of the measurement
	rng := rand.New(rand.NewSource(7))
	g := CapUniform(GNP(300, 8.0/300, rng), 16, rng)
	g.Finalize()
	f := make([]float64, g.M())
	for e := range f {
		f[e] = rng.Float64()
	}
	div := make([]float64, g.N())

	if avg := testing.AllocsPerRun(20, func() {
		g.DivergenceInto(f, div)
	}); avg != 0 {
		t.Errorf("DivergenceInto allocates %.1f per sweep, want 0", avg)
	}

	var sum float64
	if avg := testing.AllocsPerRun(20, func() {
		for v := 0; v < g.N(); v++ {
			g.ForEachArc(v, func(a Arc) {
				sum += float64(a.E)
			})
		}
	}); avg != 0 {
		t.Errorf("ForEachArc sweep allocates %.1f per run, want 0", avg)
	}
	_ = sum
}
