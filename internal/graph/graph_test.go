package graph

import (
	"math/rand"
	"testing"
)

func TestNewAndAddEdge(t *testing.T) {
	g := New(3)
	e := g.AddEdge(0, 1, 5)
	if e != 0 {
		t.Fatalf("first edge index = %d, want 0", e)
	}
	if g.N() != 3 || g.M() != 1 {
		t.Fatalf("N=%d M=%d, want 3,1", g.N(), g.M())
	}
	if g.Cap(0) != 5 {
		t.Errorf("Cap = %d, want 5", g.Cap(0))
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Errorf("degrees wrong: %d %d %d", g.Degree(0), g.Degree(1), g.Degree(2))
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestParallelEdges(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 0, 3)
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3 (multigraph)", g.M())
	}
	if g.Degree(0) != 3 {
		t.Errorf("Degree(0) = %d, want 3", g.Degree(0))
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestAddEdgePanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"self-loop", func() { New(2).AddEdge(1, 1, 1) }},
		{"out-of-range", func() { New(2).AddEdge(0, 2, 1) }},
		{"zero-cap", func() { New(2).AddEdge(0, 1, 0) }},
		{"negative-n", func() { New(-1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestOtherAndOrientation(t *testing.T) {
	g := New(3)
	e := g.AddEdge(1, 2, 1)
	if g.Other(e, 1) != 2 || g.Other(e, 2) != 1 {
		t.Error("Other wrong")
	}
	if g.Orientation(e, 1) != 1 || g.Orientation(e, 2) != -1 {
		t.Error("Orientation wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-endpoint")
		}
	}()
	g.Other(e, 0)
}

func TestDivergence(t *testing.T) {
	// Path 0-1-2, flow 2 along it: div = [2, 0, -2].
	g := Path(3)
	f := []float64{2, 2}
	div := g.Divergence(f)
	want := []float64{2, 0, -2}
	for v := range want {
		if div[v] != want[v] {
			t.Errorf("div[%d] = %v, want %v", v, div[v], want[v])
		}
	}
}

func TestMaxCongestion(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 4)
	g.AddEdge(0, 1, 2)
	if got := g.MaxCongestion([]float64{2, -3}); got != 1.5 {
		t.Errorf("MaxCongestion = %v, want 1.5", got)
	}
}

func TestConnected(t *testing.T) {
	if !Path(5).Connected() {
		t.Error("path should be connected")
	}
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	if g.Connected() {
		t.Error("two components should not be connected")
	}
	if !New(1).Connected() || !New(0).Connected() {
		t.Error("trivial graphs are connected")
	}
}

func TestBFSAndDiameter(t *testing.T) {
	g := Path(10)
	dist, pe := g.BFS(0)
	for v := 0; v < 10; v++ {
		if dist[v] != v {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], v)
		}
	}
	if pe[0] != -1 {
		t.Error("root parent edge should be -1")
	}
	if d := g.Diameter(); d != 9 {
		t.Errorf("Diameter = %d, want 9", d)
	}
	if d := g.DiameterApprox(); d != 9 {
		t.Errorf("DiameterApprox on path = %d, want exact 9", d)
	}
	if e := g.Eccentricity(5); e != 5 {
		t.Errorf("Eccentricity(5) = %d, want 5", e)
	}
}

func TestDiameterGrid(t *testing.T) {
	g := Grid(4, 3)
	if d := g.Diameter(); d != 5 {
		t.Errorf("Grid(4,3) diameter = %d, want 5", d)
	}
}

func TestGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		g    *Graph
		n    int
	}{
		{"path", Path(7), 7},
		{"cycle", Cycle(5), 5},
		{"grid", Grid(3, 4), 12},
		{"complete", Complete(6), 6},
		{"tree", Tree(20, rng), 20},
		{"gnp", GNP(30, 0.2, rng), 30},
		{"regular", RandomRegular(24, 3, rng), 24},
		{"barbell", Barbell(5, 3), 12},
		{"expanderpath", ExpanderPath(16, 4, 8, rng), 24},
		{"caterpillar", Caterpillar(5, 2), 15},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.g.N() != tc.n {
				t.Errorf("N = %d, want %d", tc.g.N(), tc.n)
			}
			if !tc.g.Connected() {
				t.Error("generator produced disconnected graph")
			}
			if err := tc.g.Validate(); err != nil {
				t.Errorf("Validate: %v", err)
			}
		})
	}
}

func TestCompleteEdgeCount(t *testing.T) {
	if m := Complete(6).M(); m != 15 {
		t.Errorf("K6 has %d edges, want 15", m)
	}
}

func TestBarbellStructure(t *testing.T) {
	g := Barbell(4, 2)
	// n = 2*4+2-1 = 9; bridge path 3 - 4 - 5 where 5 is offset.
	if g.N() != 9 {
		t.Fatalf("N = %d, want 9", g.N())
	}
	// Min cut between the two cliques is 1 (single bridge edge chain).
	side := make([]bool, g.N())
	for v := 0; v < 4; v++ {
		side[v] = true
	}
	if c := CutCapacity(g, side); c != 1 {
		t.Errorf("bridge cut capacity = %d, want 1", c)
	}
}

func TestCapAssignments(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := CapUniform(Grid(4, 4), 10, rng)
	for _, e := range g.Edges() {
		if e.Cap < 1 || e.Cap > 10 {
			t.Fatalf("capacity %d out of [1,10]", e.Cap)
		}
	}
	CapUnit(g)
	for _, e := range g.Edges() {
		if e.Cap != 1 {
			t.Fatal("CapUnit failed")
		}
	}
}

func TestFamiliesConnectedAndSized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, fam := range Families() {
		t.Run(fam.Name, func(t *testing.T) {
			g := fam.Make(60, rng)
			if !g.Connected() {
				t.Error("family graph disconnected")
			}
			if g.N() < 30 {
				t.Errorf("family graph too small: n=%d", g.N())
			}
			if err := g.Validate(); err != nil {
				t.Errorf("Validate: %v", err)
			}
		})
	}
}

func TestClone(t *testing.T) {
	g := Grid(3, 3)
	h := g.Clone()
	h.AddEdge(0, 8, 7)
	if g.M() == h.M() {
		t.Error("clone shares edge list")
	}
}

func TestMaxCapTotalCap(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 3)
	g.AddEdge(1, 2, 9)
	if g.MaxCap() != 9 || g.TotalCap() != 12 {
		t.Errorf("MaxCap=%d TotalCap=%d", g.MaxCap(), g.TotalCap())
	}
	if New(1).MaxCap() != 0 {
		t.Error("empty graph MaxCap should be 0")
	}
}
