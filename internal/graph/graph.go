// Package graph provides the weighted undirected multigraph model used
// throughout the repository, together with workload generators, cut
// utilities, and a plain-text interchange format.
//
// Conventions (shared by every package that consumes graph.Graph):
//
//   - Vertices are 0..N-1.
//   - Edges are stored in a global edge list; parallel edges and distinct
//     edge identities are preserved (the paper's constructions operate on
//     multigraphs, cf. §4 "we admit a multigraph as core").
//   - Every edge carries the paper's "arbitrary but fixed orientation":
//     Edge{U,V} is oriented U→V. A flow value f[e] > 0 means flow from U
//     to V; f[e] < 0 means flow from V to U.
//   - Capacities are positive int64, polynomially bounded as in §1.1.
//   - For a flow vector f, Divergence(f)[v] = Σ_{e=(v,·)} f[e] −
//     Σ_{e=(·,v)} f[e], i.e. the net flow injected by v. A flow routes the
//     demand vector b iff Divergence(f) = b, with b[s] = +F and b[t] = −F
//     for an s-t flow of value F.
package graph

import (
	"errors"
	"fmt"

	"distflow/internal/par"
)

// Edge is an undirected capacitated edge with a fixed orientation U→V.
type Edge struct {
	U, V int
	Cap  int64
}

// Arc is one directional incidence of an edge at a vertex: the neighbour
// and the index of the underlying edge in the graph's edge list.
type Arc struct {
	To int // neighbour vertex
	E  int // edge index into Graph.Edges
}

// Graph is an undirected capacitated multigraph.
// The zero value is an empty graph with no vertices; use New.
//
// Adjacency is stored in compressed-sparse-row (CSR) form: one flat
// arc array packed by vertex, delimited by an offset table, instead of
// per-vertex slices. The CSR core is rebuilt lazily — AddEdge only
// appends to the edge list and marks the structure stale; the first
// adjacency access after a mutation runs one O(n+m) counting pass
// (Finalize). Neighbor iteration is therefore allocation-free and
// pointer-chase-free, and capacity edits (SetCap) never invalidate the
// layout.
//
// Concurrency: a finalized graph is safe for concurrent readers. Call
// Finalize (or perform any adjacency read) before sharing the graph
// across goroutines; AddEdge is not safe concurrently with anything.
type Graph struct {
	n     int
	edges []Edge
	// CSR adjacency: arcs[off[v]:off[v+1]] are v's incidences, in edge
	// insertion order (the order the old per-vertex appends produced).
	off   []int
	arcs  []Arc
	dirty bool
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{n: n, dirty: true}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges (parallel edges counted individually).
func (g *Graph) M() int { return len(g.edges) }

// Edges returns the underlying edge list. The slice is shared with the
// graph (a documentation-only contract: callers must not modify it or
// retain it across AddEdge calls). For per-vertex iteration prefer
// ForEachArc, which cannot leak a mutable view.
func (g *Graph) Edges() []Edge { return g.edges }

// Edge returns the e-th edge.
func (g *Graph) Edge(e int) Edge { return g.edges[e] }

// Cap returns the capacity of edge e.
func (g *Graph) Cap(e int) int64 { return g.edges[e].Cap }

// AddEdge appends an edge u—v with capacity cap and returns its index.
// Self-loops are rejected (the model assumes a simple underlying network;
// multigraph parallelism is allowed).
func (g *Graph) AddEdge(u, v int, capacity int64) int {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex out of range: %d-%d (n=%d)", u, v, g.n))
	}
	if capacity <= 0 {
		panic(fmt.Sprintf("graph: non-positive capacity %d on %d-%d", capacity, u, v))
	}
	e := len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v, Cap: capacity})
	g.dirty = true
	return e
}

// SetCap changes the capacity of edge e. The CSR layout is untouched —
// capacity edits are O(1) and never trigger a Finalize.
func (g *Graph) SetCap(e int, capacity int64) {
	if capacity <= 0 {
		panic(fmt.Sprintf("graph: non-positive capacity %d on edge %d", capacity, e))
	}
	g.edges[e].Cap = capacity
}

// Finalize (re)builds the CSR adjacency if edges were added since the
// last build. It is called implicitly by every adjacency accessor; call
// it explicitly before sharing the graph across goroutines. One
// counting pass over the edge list, O(n+m); no per-vertex allocations.
func (g *Graph) Finalize() {
	if !g.dirty {
		return
	}
	n := g.n
	if cap(g.off) >= n+1 {
		g.off = g.off[:n+1]
		for i := range g.off {
			g.off[i] = 0
		}
	} else {
		g.off = make([]int, n+1)
	}
	off := g.off
	for _, e := range g.edges {
		off[e.U]++
		off[e.V]++
	}
	sum := 0
	for v := 0; v < n; v++ {
		c := off[v]
		off[v] = sum
		sum += c
	}
	off[n] = sum
	if cap(g.arcs) >= sum {
		g.arcs = g.arcs[:sum]
	} else {
		g.arcs = make([]Arc, sum)
	}
	// Place arcs in edge order: within each vertex the incidences land
	// in edge-insertion order, matching the old append-based layout.
	for i, e := range g.edges {
		g.arcs[off[e.U]] = Arc{To: e.V, E: i}
		off[e.U]++
		g.arcs[off[e.V]] = Arc{To: e.U, E: i}
		off[e.V]++
	}
	// off[v] now holds end(v) = start(v+1); shift right to restore the
	// offset convention.
	copy(off[1:], off[:n])
	off[0] = 0
	g.dirty = false
}

// Adj returns the incidence list of v: a subslice of the packed CSR arc
// array. The slice is shared; callers must not modify it.
func (g *Graph) Adj(v int) []Arc {
	g.Finalize()
	return g.arcs[g.off[v]:g.off[v+1]]
}

// ForEachArc calls fn for every incidence of v without allocating. It
// is the preferred neighbor iterator on hot paths: the CSR range is
// resolved once and the arcs stream linearly from the packed array.
func (g *Graph) ForEachArc(v int, fn func(Arc)) {
	g.Finalize()
	for _, a := range g.arcs[g.off[v]:g.off[v+1]] {
		fn(a)
	}
}

// Degree returns the number of edge incidences at v (parallel edges count).
func (g *Graph) Degree(v int) int {
	g.Finalize()
	return g.off[v+1] - g.off[v]
}

// Other returns the endpoint of edge e that is not v.
// It panics if v is not an endpoint of e.
func (g *Graph) Other(e, v int) int {
	ed := g.edges[e]
	switch v {
	case ed.U:
		return ed.V
	case ed.V:
		return ed.U
	default:
		panic(fmt.Sprintf("graph: vertex %d not on edge %d (%d-%d)", v, e, ed.U, ed.V))
	}
}

// Orientation returns +1 if v is the tail (U) of edge e, -1 if v is the
// head (V). Flow f[e] leaves v when Orientation(e,v)*f[e] > 0.
func (g *Graph) Orientation(e, v int) float64 {
	ed := g.edges[e]
	switch v {
	case ed.U:
		return 1
	case ed.V:
		return -1
	default:
		panic(fmt.Sprintf("graph: vertex %d not on edge %d", v, e))
	}
}

// Divergence returns the net outflow at every vertex under flow f
// (len(f) must equal M). Divergence(f)[v] = Σ_{e out of v} f[e] −
// Σ_{e into v} f[e] with respect to each edge's fixed orientation.
func (g *Graph) Divergence(f []float64) []float64 {
	return g.DivergenceInto(f, make([]float64, g.n))
}

// DivergenceInto computes Divergence(f) into div (len N) and returns it.
// The accumulation is organized per vertex over its incidence list —
// each entry is written by exactly one vertex, so the sweep runs
// chunk-parallel on the shared worker pool, and the per-vertex addend
// order is fixed by the adjacency structure regardless of worker count.
func (g *Graph) DivergenceInto(f, div []float64) []float64 {
	if len(f) != len(g.edges) {
		panic("graph: flow length mismatch")
	}
	if len(div) != g.n {
		panic("graph: divergence length mismatch")
	}
	g.Finalize()
	if par.Sequential(g.n) {
		g.divergenceRange(f, div, 0, g.n)
		return div
	}
	par.For(g.n, func(lo, hi int) {
		g.divergenceRange(f, div, lo, hi)
	})
	return div
}

// divergenceRange is the allocation-free sweep body of DivergenceInto
// over vertices [lo,hi).
func (g *Graph) divergenceRange(f, div []float64, lo, hi int) {
	off, arcs := g.off, g.arcs
	for v := lo; v < hi; v++ {
		s := 0.0
		for _, a := range arcs[off[v]:off[v+1]] {
			if g.edges[a.E].U == v {
				s += f[a.E]
			} else {
				s -= f[a.E]
			}
		}
		div[v] = s
	}
}

// MaxCongestion returns max_e |f[e]|/cap(e), the objective of problem (1)
// in the paper. It returns 0 for a graph with no edges.
func (g *Graph) MaxCongestion(f []float64) float64 {
	if len(f) != len(g.edges) {
		panic("graph: flow length mismatch")
	}
	m := 0.0
	for e, ed := range g.edges {
		c := abs(f[e]) / float64(ed.Cap)
		if c > m {
			m = c
		}
	}
	return m
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Connected reports whether the graph is connected (true for n ≤ 1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	g.Finalize()
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range g.arcs[g.off[v]:g.off[v+1]] {
			if !seen[a.To] {
				seen[a.To] = true
				count++
				stack = append(stack, a.To)
			}
		}
	}
	return count == g.n
}

// BFS returns hop distances from root (unreachable vertices get -1) and
// the parent edge index of each vertex in a BFS tree (-1 for root and
// unreachable vertices).
func (g *Graph) BFS(root int) (dist []int, parentEdge []int) {
	dist = make([]int, g.n)
	parentEdge = make([]int, g.n)
	for i := range dist {
		dist[i] = -1
		parentEdge[i] = -1
	}
	dist[root] = 0
	g.Finalize()
	queue := []int{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, a := range g.arcs[g.off[v]:g.off[v+1]] {
			if dist[a.To] < 0 {
				dist[a.To] = dist[v] + 1
				parentEdge[a.To] = a.E
				queue = append(queue, a.To)
			}
		}
	}
	return dist, parentEdge
}

// Eccentricity returns the maximum hop distance from v to any reachable
// vertex.
func (g *Graph) Eccentricity(v int) int {
	dist, _ := g.BFS(v)
	ecc := 0
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the exact hop diameter. It runs a BFS from every
// vertex (O(n·m)); intended for the graph sizes used in tests and
// benchmarks. Disconnected graphs return the maximum eccentricity within
// components.
func (g *Graph) Diameter() int {
	d := 0
	for v := 0; v < g.n; v++ {
		if e := g.Eccentricity(v); e > d {
			d = e
		}
	}
	return d
}

// DiameterApprox returns a 2-approximation of the hop diameter using a
// double BFS sweep (exact on trees).
func (g *Graph) DiameterApprox() int {
	if g.n == 0 {
		return 0
	}
	dist, _ := g.BFS(0)
	far := 0
	for v, d := range dist {
		if d > dist[far] {
			far = v
		}
	}
	return g.Eccentricity(far)
}

// MaxCap returns the largest edge capacity (0 if there are no edges).
func (g *Graph) MaxCap() int64 {
	var m int64
	for _, e := range g.edges {
		if e.Cap > m {
			m = e.Cap
		}
	}
	return m
}

// TotalCap returns the sum of all edge capacities.
func (g *Graph) TotalCap() int64 {
	var s int64
	for _, e := range g.edges {
		s += e.Cap
	}
	return s
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	h := New(g.n)
	for _, e := range g.edges {
		h.AddEdge(e.U, e.V, e.Cap)
	}
	return h
}

// Validate checks structural invariants and returns an error describing
// the first violation found, or nil.
func (g *Graph) Validate() error {
	g.Finalize()
	if len(g.off) != g.n+1 {
		return errors.New("graph: CSR offset table size mismatch")
	}
	deg := make([]int, g.n)
	for i, e := range g.edges {
		if e.U < 0 || e.U >= g.n || e.V < 0 || e.V >= g.n {
			return fmt.Errorf("graph: edge %d endpoints out of range", i)
		}
		if e.U == e.V {
			return fmt.Errorf("graph: edge %d is a self-loop", i)
		}
		if e.Cap <= 0 {
			return fmt.Errorf("graph: edge %d has capacity %d", i, e.Cap)
		}
		deg[e.U]++
		deg[e.V]++
	}
	for v := 0; v < g.n; v++ {
		if g.off[v+1]-g.off[v] != deg[v] {
			return fmt.Errorf("graph: vertex %d degree mismatch: adj=%d edges=%d", v, g.off[v+1]-g.off[v], deg[v])
		}
		for _, a := range g.arcs[g.off[v]:g.off[v+1]] {
			if a.E < 0 || a.E >= len(g.edges) {
				return fmt.Errorf("graph: vertex %d has arc with bad edge index %d", v, a.E)
			}
			e := g.edges[a.E]
			if (e.U != v || e.V != a.To) && (e.V != v || e.U != a.To) {
				return fmt.Errorf("graph: vertex %d arc to %d inconsistent with edge %d", v, a.To, a.E)
			}
		}
	}
	return nil
}
