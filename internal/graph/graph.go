// Package graph provides the weighted undirected multigraph model used
// throughout the repository, together with workload generators, cut
// utilities, and a plain-text interchange format.
//
// Conventions (shared by every package that consumes graph.Graph):
//
//   - Vertices are 0..N-1.
//   - Edges are stored in a global edge list; parallel edges and distinct
//     edge identities are preserved (the paper's constructions operate on
//     multigraphs, cf. §4 "we admit a multigraph as core").
//   - Every edge carries the paper's "arbitrary but fixed orientation":
//     Edge{U,V} is oriented U→V. A flow value f[e] > 0 means flow from U
//     to V; f[e] < 0 means flow from V to U.
//   - Capacities are positive int64, polynomially bounded as in §1.1.
//     Capacity 0 marks a deleted edge (a tombstone, see DeleteEdge);
//     edge and vertex ids are never reused or renumbered.
//   - For a flow vector f, Divergence(f)[v] = Σ_{e=(v,·)} f[e] −
//     Σ_{e=(·,v)} f[e], i.e. the net flow injected by v. A flow routes the
//     demand vector b iff Divergence(f) = b, with b[s] = +F and b[t] = −F
//     for an s-t flow of value F.
package graph

import (
	"errors"
	"fmt"

	"distflow/internal/csr"
	"distflow/internal/par"
)

// Edge is an undirected capacitated edge with a fixed orientation U→V.
// Cap == 0 marks a tombstone: the edge was deleted but keeps its id.
type Edge struct {
	U, V int
	Cap  int64
}

// Arc is one directional incidence of an edge at a vertex: the neighbour
// and the index of the underlying edge in the graph's edge list.
type Arc struct {
	To int // neighbour vertex
	E  int // edge index into Graph.Edges
}

// ovArc is one overlay incidence: an arc appended after the base CSR
// was finalized, chained per vertex in insertion order.
type ovArc struct {
	a    Arc
	next int32 // arena index of the vertex's next overlay arc (-1 = end)
}

// Graph is an undirected capacitated multigraph.
// The zero value is an empty graph with no vertices; use New.
//
// Adjacency is stored in compressed-sparse-row (CSR) form — one flat
// arc array packed by vertex, delimited by an offset table — plus a
// delta overlay for dynamic topology churn:
//
//   - During bulk construction (before the first adjacency access)
//     AddEdge only appends to the edge list; the first access runs one
//     O(n+m) counting pass (Finalize), exactly as before.
//   - After the base CSR exists, AddEdge appends the two new incidences
//     to a per-vertex overlay chain in an append arena instead of
//     re-finalizing; DeleteEdge tombstones the edge in place (Cap = 0,
//     arcs stay put and are skipped during iteration); AddVertex extends
//     the vertex range without touching the base table. Iteration order
//     is stable under churn: base arcs in CSR order first, then overlay
//     arcs in insertion order.
//   - When the overlay plus the tombstoned base arcs exceed
//     OverlayCompactFraction of the base arc array, the next mutation
//     schedules a Compact: one re-finalize folds the overlay into a
//     fresh base CSR and drops dead arcs (edge ids are untouched —
//     tombstones stay in the edge list forever).
//
// Concurrency: between mutations the graph is safe for concurrent
// readers (call Finalize — or perform any adjacency read — before
// sharing). No mutator is safe concurrently with anything; note that
// on a graph carrying churn debt (overlay arcs or tombstones) Adj
// compacts eagerly and therefore counts as a mutator — concurrent
// readers of a churned graph use ForEachArc (see Adj).
type Graph struct {
	n     int
	edges []Edge
	// Base CSR adjacency: arcs[off[v]:off[v+1]] are v's incidences for
	// vertices v < baseN and edges recorded at the last Finalize, in edge
	// insertion order (the order the old per-vertex appends produced).
	off   []int
	arcs  []Arc
	dirty bool

	// Churn state (all zero on a never-churned graph).
	baseN    int     // vertices covered by the base CSR
	deadArc  int     // tombstoned arcs still sitting in the base CSR
	deadM    int     // tombstoned edges (Cap == 0) in the edge list
	ovHead   []int32 // per-vertex overlay chain heads (-1 = none)
	ovTail   []int32
	ovArena  []ovArc
	removed  []bool // nil until the first RemoveVertex
	removedN int

	// OverlayCompactFraction tunes the automatic Compact: a mutation
	// that leaves more than this fraction of the base arc array in
	// overlay chains or tombstoned schedules a re-finalize (0 = 0.25;
	// negative = never compact automatically).
	OverlayCompactFraction float64
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{n: n, dirty: true}
}

// N returns the number of vertices, including removed ones (ids are
// stable; see ActiveN for the live count).
func (g *Graph) N() int { return g.n }

// M returns the number of edges (parallel edges counted individually,
// tombstones included; see LiveM for the live count).
func (g *Graph) M() int { return len(g.edges) }

// Reserve pre-sizes the edge array for m additional AddEdge calls, so
// bulk loaders (graph.Read, the generators) pay one allocation instead
// of append doublings — at n=10⁶ the doubling overshoot alone is
// hundreds of megabytes of transient heap.
func (g *Graph) Reserve(m int) {
	if m <= 0 || cap(g.edges)-len(g.edges) >= m {
		return
	}
	edges := make([]Edge, len(g.edges), len(g.edges)+m)
	copy(edges, g.edges)
	g.edges = edges
}

// LiveM returns the number of live (non-tombstoned) edges.
func (g *Graph) LiveM() int { return len(g.edges) - g.deadM }

// ActiveN returns the number of live (non-removed) vertices.
func (g *Graph) ActiveN() int { return g.n - g.removedN }

// RemovedN returns the number of removed vertices.
func (g *Graph) RemovedN() int { return g.removedN }

// Removed reports whether vertex v has been removed.
func (g *Graph) Removed(v int) bool { return g.removed != nil && g.removed[v] }

// Dead reports whether edge e is a tombstone (deleted).
func (g *Graph) Dead(e int) bool { return g.edges[e].Cap == 0 }

// Churned reports whether the graph carries any tombstoned edges or
// removed vertices — consumers that cannot handle either (the
// congestion-approximator sampler, for one) compact to an active
// subgraph first.
func (g *Graph) Churned() bool { return g.deadM > 0 || g.removedN > 0 }

// Edges returns the underlying edge list, tombstones (Cap == 0)
// included. The slice is shared with the graph (a documentation-only
// contract: callers must not modify it or retain it across AddEdge
// calls). For per-vertex iteration prefer ForEachArc, which cannot leak
// a mutable view and skips tombstones.
func (g *Graph) Edges() []Edge { return g.edges }

// Edge returns the e-th edge.
func (g *Graph) Edge(e int) Edge { return g.edges[e] }

// Cap returns the capacity of edge e (0 for a tombstone).
func (g *Graph) Cap(e int) int64 { return g.edges[e].Cap }

// AddEdge appends an edge u—v with capacity cap and returns its index.
// Self-loops are rejected (the model assumes a simple underlying network;
// multigraph parallelism is allowed). On a finalized graph the new arcs
// land in the CSR delta overlay — O(1), no re-finalize.
func (g *Graph) AddEdge(u, v int, capacity int64) int {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex out of range: %d-%d (n=%d)", u, v, g.n))
	}
	if capacity <= 0 {
		panic(fmt.Sprintf("graph: non-positive capacity %d on %d-%d", capacity, u, v))
	}
	if g.Removed(u) || g.Removed(v) {
		panic(fmt.Sprintf("graph: edge %d-%d touches a removed vertex", u, v))
	}
	e := len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v, Cap: capacity})
	if g.dirty {
		return e
	}
	g.ovAppend(u, Arc{To: v, E: e})
	g.ovAppend(v, Arc{To: u, E: e})
	g.maybeCompact()
	return e
}

// AddVertex appends a new vertex and returns its id (the previous N).
// The base CSR is untouched; the vertex starts with no incidences.
func (g *Graph) AddVertex() int {
	v := g.n
	g.n++
	if g.removed != nil {
		g.removed = append(g.removed, false)
	}
	return v
}

// DeleteEdge tombstones edge e: its capacity becomes 0, its id stays
// allocated forever, and every iterator skips it from now on. Deleting
// an already-dead edge panics (callers coalesce; see distflow).
func (g *Graph) DeleteEdge(e int) {
	if g.edges[e].Cap == 0 {
		panic(fmt.Sprintf("graph: edge %d already deleted", e))
	}
	g.edges[e].Cap = 0
	g.deadM++
	if !g.dirty {
		// Whether the two arcs sit in the base CSR or the overlay, they
		// are now skip work for every iteration until the next Compact.
		g.deadArc += 2
		g.maybeCompact()
	}
}

// RemoveVertex deactivates v: every live incident edge is tombstoned
// and the vertex is marked removed (its id is never reused). It returns
// the edge ids it tombstoned, in iteration order. Removing an already
// removed vertex panics.
func (g *Graph) RemoveVertex(v int) []int {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range", v))
	}
	if g.Removed(v) {
		panic(fmt.Sprintf("graph: vertex %d already removed", v))
	}
	var killed []int
	g.ForEachArc(v, func(a Arc) {
		killed = append(killed, a.E)
	})
	for _, e := range killed {
		g.DeleteEdge(e)
	}
	if g.removed == nil {
		g.removed = make([]bool, g.n)
	}
	g.removed[v] = true
	g.removedN++
	return killed
}

// SetCap changes the capacity of edge e. The CSR layout is untouched —
// capacity edits are O(1) and never trigger a Finalize. Tombstoned
// edges cannot be resurrected.
func (g *Graph) SetCap(e int, capacity int64) {
	if capacity <= 0 {
		panic(fmt.Sprintf("graph: non-positive capacity %d on edge %d", capacity, e))
	}
	if g.edges[e].Cap == 0 {
		panic(fmt.Sprintf("graph: SetCap on deleted edge %d", e))
	}
	g.edges[e].Cap = capacity
}

// ovAppend chains one overlay arc onto v's list, preserving insertion
// order.
func (g *Graph) ovAppend(v int, a Arc) {
	for len(g.ovHead) < g.n {
		g.ovHead = append(g.ovHead, -1)
		g.ovTail = append(g.ovTail, -1)
	}
	i := int32(len(g.ovArena))
	g.ovArena = append(g.ovArena, ovArc{a: a, next: -1})
	if t := g.ovTail[v]; t >= 0 {
		g.ovArena[t].next = i
	} else {
		g.ovHead[v] = i
	}
	g.ovTail[v] = i
}

func (g *Graph) ovHeadAt(v int) int32 {
	if v >= len(g.ovHead) {
		return -1
	}
	return g.ovHead[v]
}

// OverlayArcs returns the number of arcs currently living in the delta
// overlay plus the tombstoned arcs still in the base CSR — the churn
// debt the next Compact retires.
func (g *Graph) OverlayArcs() int { return len(g.ovArena) + g.deadArc }

// maybeCompact schedules a re-finalize once the overlay debt crosses
// the threshold. The rebuild itself is deferred to the next adjacency
// access (Finalize), so a mutation burst pays it once.
func (g *Graph) maybeCompact() {
	frac := g.OverlayCompactFraction
	if frac == 0 {
		frac = 0.25
	}
	if frac < 0 {
		return
	}
	if float64(g.OverlayArcs()) > frac*float64(len(g.arcs)+1) {
		g.dirty = true
	}
}

// Compact folds the delta overlay into a fresh base CSR and drops
// tombstoned arcs. Edge ids, vertex ids, and iteration semantics are
// unchanged; only the storage is re-packed. One O(n+m) counting pass.
func (g *Graph) Compact() {
	if len(g.ovArena) > 0 || g.deadArc > 0 || g.baseN < g.n {
		g.dirty = true
	}
	g.Finalize()
}

// Finalize (re)builds the CSR adjacency if edges were added since the
// last build (or a Compact is due). It is called implicitly by every
// adjacency accessor; call it explicitly before sharing the graph
// across goroutines. One counting pass over the edge list, O(n+m); no
// per-vertex allocations. Tombstoned edges contribute no arcs; the
// overlay is folded in and cleared.
func (g *Graph) Finalize() {
	if !g.dirty {
		return
	}
	n := g.n
	if cap(g.off) >= n+1 {
		g.off = g.off[:n+1]
		for i := range g.off {
			g.off[i] = 0
		}
	} else {
		g.off = make([]int, n+1)
	}
	off := g.off
	for _, e := range g.edges {
		if e.Cap == 0 {
			continue
		}
		off[e.U]++
		off[e.V]++
	}
	sum := csr.Offsets(off)
	if cap(g.arcs) >= sum {
		g.arcs = g.arcs[:sum]
	} else {
		g.arcs = make([]Arc, sum)
	}
	// Place arcs in edge order: within each vertex the incidences land
	// in edge-insertion order, matching the old append-based layout.
	for i, e := range g.edges {
		if e.Cap == 0 {
			continue
		}
		g.arcs[off[e.U]] = Arc{To: e.V, E: i}
		off[e.U]++
		g.arcs[off[e.V]] = Arc{To: e.U, E: i}
		off[e.V]++
	}
	csr.Shift(off)
	g.baseN = n
	g.deadArc = 0
	g.ovArena = g.ovArena[:0]
	g.ovHead = g.ovHead[:0]
	g.ovTail = g.ovTail[:0]
	g.dirty = false
}

// Adj returns the incidence list of v: a subslice of the packed CSR arc
// array. The slice is shared; callers must not modify it. On a graph
// with pending overlay arcs or tombstones Adj compacts first so the
// subslice is exact — which makes Adj a MUTATOR in that state: it must
// not run concurrently with any other access until the churn debt is
// retired (call Compact once, single-threaded, before sharing).
// Concurrent readers of a churned graph use ForEachArc, which iterates
// the overlay incrementally and never rebuilds.
func (g *Graph) Adj(v int) []Arc {
	g.Compact()
	return g.arcs[g.off[v]:g.off[v+1]]
}

// ForEachArc calls fn for every live incidence of v without allocating:
// base CSR arcs first (tombstones skipped), then overlay arcs in
// insertion order. It is the preferred neighbor iterator on hot paths
// and the only one that never triggers a Compact.
func (g *Graph) ForEachArc(v int, fn func(Arc)) {
	g.Finalize()
	if v < g.baseN {
		if g.deadArc == 0 {
			for _, a := range g.arcs[g.off[v]:g.off[v+1]] {
				fn(a)
			}
		} else {
			for _, a := range g.arcs[g.off[v]:g.off[v+1]] {
				if g.edges[a.E].Cap > 0 {
					fn(a)
				}
			}
		}
	}
	for i := g.ovHeadAt(v); i >= 0; i = g.ovArena[i].next {
		if a := g.ovArena[i].a; g.edges[a.E].Cap > 0 {
			fn(a)
		}
	}
}

// Degree returns the number of live edge incidences at v (parallel
// edges count; tombstones do not).
func (g *Graph) Degree(v int) int {
	g.Finalize()
	if v < g.baseN && g.deadArc == 0 && len(g.ovArena) == 0 {
		return g.off[v+1] - g.off[v]
	}
	d := 0
	g.ForEachArc(v, func(Arc) { d++ })
	return d
}

// Other returns the endpoint of edge e that is not v.
// It panics if v is not an endpoint of e.
func (g *Graph) Other(e, v int) int {
	ed := g.edges[e]
	switch v {
	case ed.U:
		return ed.V
	case ed.V:
		return ed.U
	default:
		panic(fmt.Sprintf("graph: vertex %d not on edge %d (%d-%d)", v, e, ed.U, ed.V))
	}
}

// Orientation returns +1 if v is the tail (U) of edge e, -1 if v is the
// head (V). Flow f[e] leaves v when Orientation(e,v)*f[e] > 0.
func (g *Graph) Orientation(e, v int) float64 {
	ed := g.edges[e]
	switch v {
	case ed.U:
		return 1
	case ed.V:
		return -1
	default:
		panic(fmt.Sprintf("graph: vertex %d not on edge %d", v, e))
	}
}

// Divergence returns the net outflow at every vertex under flow f
// (len(f) must equal M). Divergence(f)[v] = Σ_{e out of v} f[e] −
// Σ_{e into v} f[e] with respect to each edge's fixed orientation.
// Tombstoned edges participate verbatim; the solver contract keeps
// their flow exactly 0.
func (g *Graph) Divergence(f []float64) []float64 {
	return g.DivergenceInto(f, make([]float64, g.n))
}

// DivergenceInto computes Divergence(f) into div (len N) and returns it.
// The accumulation is organized per vertex over its incidence list —
// each entry is written by exactly one vertex, so the sweep runs
// chunk-parallel on the shared worker pool, and the per-vertex addend
// order is fixed by the adjacency structure regardless of worker count.
func (g *Graph) DivergenceInto(f, div []float64) []float64 {
	if len(f) != len(g.edges) {
		panic("graph: flow length mismatch")
	}
	if len(div) != g.n {
		panic("graph: divergence length mismatch")
	}
	g.Finalize()
	if par.Sequential(g.n) {
		g.divergenceRange(f, div, 0, g.n)
		return div
	}
	par.For(g.n, func(lo, hi int) {
		g.divergenceRange(f, div, lo, hi)
	})
	return div
}

// divergenceRange is the allocation-free sweep body of DivergenceInto
// over vertices [lo,hi): base CSR arcs plus the overlay chains.
func (g *Graph) divergenceRange(f, div []float64, lo, hi int) {
	off, arcs, baseN := g.off, g.arcs, g.baseN
	for v := lo; v < hi; v++ {
		s := 0.0
		if v < baseN {
			for _, a := range arcs[off[v]:off[v+1]] {
				if g.edges[a.E].U == v {
					s += f[a.E]
				} else {
					s -= f[a.E]
				}
			}
		}
		for i := g.ovHeadAt(v); i >= 0; i = g.ovArena[i].next {
			a := g.ovArena[i].a
			if g.edges[a.E].U == v {
				s += f[a.E]
			} else {
				s -= f[a.E]
			}
		}
		div[v] = s
	}
}

// MaxCongestion returns max_e |f[e]|/cap(e), the objective of problem (1)
// in the paper, over live edges. It returns 0 for a graph with no edges.
func (g *Graph) MaxCongestion(f []float64) float64 {
	if len(f) != len(g.edges) {
		panic("graph: flow length mismatch")
	}
	m := 0.0
	for e, ed := range g.edges {
		if ed.Cap == 0 {
			continue
		}
		c := abs(f[e]) / float64(ed.Cap)
		if c > m {
			m = c
		}
	}
	return m
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// firstActive returns the lowest non-removed vertex (-1 if none).
func (g *Graph) firstActive() int {
	if g.removedN == 0 {
		if g.n == 0 {
			return -1
		}
		return 0
	}
	for v := 0; v < g.n; v++ {
		if !g.removed[v] {
			return v
		}
	}
	return -1
}

// Connected reports whether the live subgraph — non-removed vertices
// under non-tombstoned edges — is connected (true for ≤ 1 active
// vertex).
func (g *Graph) Connected() bool {
	active := g.ActiveN()
	if active <= 1 {
		return true
	}
	g.Finalize()
	root := g.firstActive()
	seen := make([]bool, g.n)
	stack := []int{root}
	seen[root] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		g.ForEachArc(v, func(a Arc) {
			if !seen[a.To] {
				seen[a.To] = true
				count++
				stack = append(stack, a.To)
			}
		})
	}
	return count == active
}

// BFS returns hop distances from root over live edges (unreachable —
// including removed — vertices get -1) and the parent edge index of
// each vertex in a BFS tree (-1 for root and unreachable vertices).
func (g *Graph) BFS(root int) (dist []int, parentEdge []int) {
	dist = make([]int, g.n)
	parentEdge = make([]int, g.n)
	for i := range dist {
		dist[i] = -1
		parentEdge[i] = -1
	}
	dist[root] = 0
	g.Finalize()
	queue := []int{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		g.ForEachArc(v, func(a Arc) {
			if dist[a.To] < 0 {
				dist[a.To] = dist[v] + 1
				parentEdge[a.To] = a.E
				queue = append(queue, a.To)
			}
		})
	}
	return dist, parentEdge
}

// Eccentricity returns the maximum hop distance from v to any reachable
// vertex.
func (g *Graph) Eccentricity(v int) int {
	dist, _ := g.BFS(v)
	ecc := 0
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the exact hop diameter. It runs a BFS from every
// vertex (O(n·m)); intended for the graph sizes used in tests and
// benchmarks. Disconnected graphs return the maximum eccentricity within
// components.
func (g *Graph) Diameter() int {
	d := 0
	for v := 0; v < g.n; v++ {
		if g.Removed(v) {
			continue
		}
		if e := g.Eccentricity(v); e > d {
			d = e
		}
	}
	return d
}

// DiameterApprox returns a 2-approximation of the hop diameter using a
// double BFS sweep (exact on trees), starting from the first active
// vertex.
func (g *Graph) DiameterApprox() int {
	root := g.firstActive()
	if root < 0 {
		return 0
	}
	dist, _ := g.BFS(root)
	far := root
	for v, d := range dist {
		if d > dist[far] {
			far = v
		}
	}
	return g.Eccentricity(far)
}

// MaxCap returns the largest edge capacity (0 if there are no edges).
func (g *Graph) MaxCap() int64 {
	var m int64
	for _, e := range g.edges {
		if e.Cap > m {
			m = e.Cap
		}
	}
	return m
}

// TotalCap returns the sum of all edge capacities.
func (g *Graph) TotalCap() int64 {
	var s int64
	for _, e := range g.edges {
		s += e.Cap
	}
	return s
}

// Clone returns a deep copy of the graph, churn state (tombstones,
// removed vertices) included. The copy's CSR is rebuilt lazily.
func (g *Graph) Clone() *Graph {
	h := &Graph{
		n:                      g.n,
		edges:                  append([]Edge(nil), g.edges...),
		dirty:                  true,
		deadM:                  g.deadM,
		removedN:               g.removedN,
		OverlayCompactFraction: g.OverlayCompactFraction,
	}
	if g.removed != nil {
		h.removed = append([]bool(nil), g.removed...)
	}
	return h
}

// Validate checks structural invariants and returns an error describing
// the first violation found, or nil. Tombstoned edges must carry
// capacity 0 and no arcs (after a Compact) or only skipped arcs;
// removed vertices must have no live incidences.
func (g *Graph) Validate() error {
	g.Finalize()
	if len(g.off) != g.baseN+1 {
		return errors.New("graph: CSR offset table size mismatch")
	}
	deg := make([]int, g.n)
	deadM := 0
	for i, e := range g.edges {
		if e.U < 0 || e.U >= g.n || e.V < 0 || e.V >= g.n {
			return fmt.Errorf("graph: edge %d endpoints out of range", i)
		}
		if e.U == e.V {
			return fmt.Errorf("graph: edge %d is a self-loop", i)
		}
		if e.Cap < 0 {
			return fmt.Errorf("graph: edge %d has capacity %d", i, e.Cap)
		}
		if e.Cap == 0 {
			deadM++
			continue
		}
		deg[e.U]++
		deg[e.V]++
	}
	if deadM != g.deadM {
		return fmt.Errorf("graph: tombstone count %d, tracked %d", deadM, g.deadM)
	}
	removedN := 0
	for v := 0; v < g.n; v++ {
		if g.Removed(v) {
			removedN++
			if deg[v] != 0 {
				return fmt.Errorf("graph: removed vertex %d has %d live incidences", v, deg[v])
			}
		}
		got := 0
		bad := error(nil)
		g.ForEachArc(v, func(a Arc) {
			got++
			if bad != nil {
				return
			}
			if a.E < 0 || a.E >= len(g.edges) {
				bad = fmt.Errorf("graph: vertex %d has arc with bad edge index %d", v, a.E)
				return
			}
			e := g.edges[a.E]
			if (e.U != v || e.V != a.To) && (e.V != v || e.U != a.To) {
				bad = fmt.Errorf("graph: vertex %d arc to %d inconsistent with edge %d", v, a.To, a.E)
			}
		})
		if bad != nil {
			return bad
		}
		if got != deg[v] {
			return fmt.Errorf("graph: vertex %d degree mismatch: adj=%d edges=%d", v, got, deg[v])
		}
	}
	if removedN != g.removedN {
		return fmt.Errorf("graph: removed count %d, tracked %d", removedN, g.removedN)
	}
	return nil
}
