package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := CapUniform(GNP(25, 0.15, rng), 100, rng)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatalf("Write: %v", err)
	}
	h, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if h.N() != g.N() || h.M() != g.M() {
		t.Fatalf("round trip size mismatch: %v vs %v", h, g)
	}
	for i, e := range g.Edges() {
		if h.Edge(i) != e {
			t.Fatalf("edge %d mismatch: %v vs %v", i, h.Edge(i), e)
		}
	}
}

func TestReadCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n3 2\n0 1 4\n\n# another\n1 2 6\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("got %v", g)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad header", "x y\n"},
		{"short edge line", "2 1\n0 1\n"},
		{"edge count mismatch", "2 2\n0 1 1\n"},
		{"self loop", "2 1\n0 0 1\n"},
		{"range", "2 1\n0 5 1\n"},
		{"zero cap", "2 1\n0 1 0\n"},
		{"bad cap", "2 1\n0 1 abc\n"},
		{"negative header", "-2 1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(tc.in)); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}
