package jtree

import (
	"math"
	"math/rand"
	"testing"

	"distflow/internal/cluster"
	"distflow/internal/graph"
)

// H(T,F) is the graph the step routes everything through: the forest
// T\(F∪R) with tree-flow capacities plus all cluster edges between
// different forest components at their own capacities. The paper's
// construction guarantees G is 1-embeddable into H (§8.2), hence every
// cut of H must have at least the capacity of the same cut in the
// cluster graph. This is the load-bearing invariant of the whole
// hierarchy; we verify it on random cuts across random inputs.
func TestHEmbeddingDominatesEveryCut(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 15; trial++ {
		n := 20 + rng.Intn(60)
		g := graph.CapUniform(graph.GNP(n, 0.12, rng), 9, rng)
		cg := cluster.FromGraph(g)
		j := 2 + rng.Intn(6)
		res, err := Step(cg, nil, j, math.Sqrt(float64(n)), Config{}, rng)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// Reconstruct the T\(F∪R) components from the forest + D edges.
		uf := make([]int, cg.N)
		for i := range uf {
			uf[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for uf[x] != x {
				uf[x] = uf[uf[x]]
				x = uf[x]
			}
			return x
		}
		hForest := append(append([]ForestEdge(nil), res.Forest...), res.DEdges...)
		for _, fe := range hForest {
			uf[find(fe.Child)] = find(fe.Parent)
		}

		for cutTrial := 0; cutTrial < 30; cutTrial++ {
			side := graph.RandomCut(cg.N, rng)
			var capG, capH float64
			for _, e := range cg.Edges {
				if side[e.A] != side[e.B] {
					capG += e.Cap
					if find(e.A) != find(e.B) {
						capH += e.Cap // inter-component edge of H
					}
				}
			}
			for _, fe := range hForest {
				if side[fe.Child] != side[fe.Parent] {
					capH += fe.Cap
				}
			}
			if capH < capG-1e-6 {
				t.Fatalf("trial %d cut %d: cap_H %v < cap_G %v (1-embedding violated)",
					trial, cutTrial, capH, capG)
			}
		}
	}
}

// The forest+D edge set is exactly T\(F∪R): |Forest|+|DEdges| must be
// (N-1) - FSize - RSize.
func TestForestPlusDCountsMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 10; trial++ {
		n := 30 + rng.Intn(40)
		g := graph.GNP(n, 0.1, rng)
		cg := cluster.FromGraph(g)
		res, err := Step(cg, nil, 4, math.Sqrt(float64(n)), Config{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		want := (cg.N - 1) - res.FSize - res.RSize
		if got := len(res.Forest) + len(res.DEdges); got != want {
			t.Fatalf("trial %d: forest %d + D %d = %d, want %d",
				trial, len(res.Forest), len(res.DEdges), len(res.Forest)+len(res.DEdges), want)
		}
	}
}
