package jtree

import (
	"math"
	"math/rand"
	"testing"

	"distflow/internal/cluster"
	"distflow/internal/graph"
)

func clusterGraph(g *graph.Graph) *cluster.Graph { return cluster.FromGraph(g) }

// checkStep verifies the structural contract of a StepResult.
func checkStep(t *testing.T, cg *cluster.Graph, res *StepResult) {
	t.Helper()
	if err := res.Core.Validate(); err != nil {
		t.Fatalf("core invalid: %v", err)
	}
	if len(res.Portal) != res.Core.N {
		t.Fatalf("portals %d, core %d", len(res.Portal), res.Core.N)
	}
	// NewCluster is a surjection onto [0, Core.N).
	seen := make([]bool, res.Core.N)
	for old, nc := range res.NewCluster {
		if nc < 0 || int(nc) >= res.Core.N {
			t.Fatalf("cluster %d mapped to %d", old, nc)
		}
		seen[nc] = true
	}
	for k, s := range seen {
		if !s {
			t.Fatalf("new cluster %d empty", k)
		}
	}
	// Forest edges: child is non-portal, stays within its new cluster,
	// capacities positive, and every non-portal old cluster appears
	// exactly once as a child.
	childSeen := make(map[int]bool)
	for _, fe := range res.Forest {
		if fe.Cap <= 0 {
			t.Fatalf("forest edge with cap %v", fe.Cap)
		}
		if res.NewCluster[fe.Child] != res.NewCluster[fe.Parent] {
			t.Fatalf("forest edge crosses new clusters")
		}
		if childSeen[fe.Child] {
			t.Fatalf("cluster %d has two forest parents", fe.Child)
		}
		childSeen[fe.Child] = true
		if fe.Phys < 0 {
			t.Fatalf("forest edge without physical edge")
		}
	}
	portals := make(map[int]bool, len(res.Portal))
	for k, p := range res.Portal {
		if int(res.NewCluster[p]) != k {
			t.Fatalf("portal %d not inside its cluster", p)
		}
		portals[int(p)] = true
	}
	for old := 0; old < cg.N; old++ {
		if portals[old] {
			if childSeen[old] {
				t.Fatalf("portal %d has a forest parent", old)
			}
			continue
		}
		if !childSeen[old] {
			t.Fatalf("non-portal %d missing from forest", old)
		}
	}
	// Core sizes conserve total size.
	if math.Abs(res.Core.TotalSize()-cg.TotalSize()) > 1e-9 {
		t.Fatalf("size not conserved: %v vs %v", res.Core.TotalSize(), cg.TotalSize())
	}
	// Core stays connected (the construction argument of §8.3).
	if !res.Core.Connected() {
		t.Fatal("core disconnected")
	}
}

func TestStepGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.Grid(8, 8)
	cg := clusterGraph(g)
	res, err := Step(cg, nil, 6, 8, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	checkStep(t, cg, res)
	if res.Core.N >= cg.N {
		t.Errorf("no contraction: %d -> %d", cg.N, res.Core.N)
	}
}

func TestStepFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, fam := range graph.Families() {
		t.Run(fam.Name, func(t *testing.T) {
			g := fam.Make(120, rng)
			cg := clusterGraph(g)
			res, err := Step(cg, nil, 8, math.Sqrt(float64(g.N())), Config{}, rng)
			if err != nil {
				t.Fatal(err)
			}
			checkStep(t, cg, res)
		})
	}
}

func TestStepDisableFCollapses(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.GNP(40, 0.15, rng)
	cg := clusterGraph(g)
	res, err := Step(cg, nil, 1, 1e18, Config{DisableF: true, DisableR: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	checkStep(t, cg, res)
	if res.Core.N != 1 {
		t.Errorf("collapse produced %d clusters, want 1", res.Core.N)
	}
	if len(res.Forest) != cg.N-1 {
		t.Errorf("forest has %d edges, want %d", len(res.Forest), cg.N-1)
	}
}

func TestStepTwoClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.New(2)
	g.AddEdge(0, 1, 5)
	cg := clusterGraph(g)
	res, err := Step(cg, nil, 1, 100, Config{DisableF: true, DisableR: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	checkStep(t, cg, res)
	if res.Core.N != 1 || len(res.Forest) != 1 {
		t.Fatalf("collapse wrong: core=%d forest=%d", res.Core.N, len(res.Forest))
	}
	if res.Forest[0].Cap != 5 {
		t.Errorf("forest cap %v, want 5 (cut capacity)", res.Forest[0].Cap)
	}
}

// Forest capacities are the Fig. 2 tree flows: each is at least the
// capacity of the physical edge realizing it (that edge crosses its own
// cut) and at most the total capacity of the level graph.
func TestForestCapBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.CapUniform(graph.GNP(30, 0.2, rng), 9, rng)
	cg := clusterGraph(g)
	res, err := Step(cg, nil, 4, math.Sqrt(30), Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	checkStep(t, cg, res)
	var total float64
	for _, e := range cg.Edges {
		total += e.Cap
	}
	for _, fe := range res.Forest {
		phys := float64(g.Cap(fe.Phys))
		if fe.Cap < phys-1e-9 {
			t.Fatalf("forest edge %d->%d cap %v below its physical capacity %v", fe.Child, fe.Parent, fe.Cap, phys)
		}
		if fe.Cap > total+1e-9 {
			t.Fatalf("forest edge cap %v exceeds total capacity %v", fe.Cap, total)
		}
	}
}

func TestStepRespectsJ(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.Grid(10, 10)
	cg := clusterGraph(g)
	j := 5
	res, err := Step(cg, nil, j, 1e18 /* suppress R */, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	checkStep(t, cg, res)
	if res.FSize > j {
		t.Errorf("|F| = %d > j = %d", res.FSize, j)
	}
	if res.RSize != 0 {
		t.Errorf("R sampling fired with huge sqrtN: %d", res.RSize)
	}
	// Lemma 8.5: portals < 4j (+1 slack for the root component).
	if res.Core.N > 4*j+1 {
		t.Errorf("core size %d > 4j = %d", res.Core.N, 4*j)
	}
}

func TestStepErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.Path(3)
	cg := clusterGraph(g)
	if _, err := Step(cg, nil, 0, 10, Config{}, rng); err == nil {
		t.Error("j=0 accepted")
	}
	if _, err := Step(cg, []float64{1}, 1, 10, Config{}, rng); err == nil {
		t.Error("bad lengths accepted")
	}
	one := &cluster.Graph{N: 1, Rep: []int{0}, Size: []float64{1}, Depth: []int{0}}
	if _, err := Step(one, nil, 1, 10, Config{}, rng); err == nil {
		t.Error("single cluster accepted")
	}
}

func TestEdgeRloadSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.Cycle(12)
	cg := clusterGraph(g)
	res, err := Step(cg, nil, 2, 1e18, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	nonzero := 0
	for _, r := range res.EdgeRload {
		if r > 0 {
			nonzero++
		}
		if r < 0 {
			t.Fatal("negative rload")
		}
	}
	// Exactly the tree edges (n-1) carry load.
	if nonzero != cg.N-1 {
		t.Errorf("rload on %d edges, want %d", nonzero, cg.N-1)
	}
	if res.MaxRload <= 0 {
		t.Error("MaxRload not set")
	}
}

// Iterating steps must drive any graph to a single cluster (the §8.4
// local continuation).
func TestIteratedCollapse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.GNP(60, 0.1, rng)
	cg := clusterGraph(g)
	totalForest := 0
	for iter := 0; cg.N > 1; iter++ {
		if iter > 30 {
			t.Fatal("no convergence")
		}
		j := cg.N / 8
		cfg := Config{DisableR: true}
		if j < 1 || cg.N <= 8 {
			j = 1
			cfg.DisableF = true
		}
		res, err := Step(cg, nil, j, math.Sqrt(60), cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Core.N >= cg.N {
			cfg.DisableF = true
			res, err = Step(cg, nil, 1, math.Sqrt(60), cfg, rng)
			if err != nil {
				t.Fatal(err)
			}
		}
		checkStep(t, cg, res)
		totalForest += len(res.Forest)
		cg = res.Core
	}
	// Every vertex except the final root exited exactly once.
	if totalForest != g.N()-1 {
		t.Errorf("forest edges total %d, want %d", totalForest, g.N()-1)
	}
}
