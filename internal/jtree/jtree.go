// Package jtree implements one step of Madry's j-tree construction with
// the paper's modifications (§4, §8.2–8.3): starting from a cluster
// multigraph, build a low average-stretch spanning tree, compute the
// multicommodity tree flow (Fig. 2), remove the top relative-load edge
// classes F plus the random depth-control set R (Lemma 8.2), form the
// skeleton, select portals, delete one minimum-capacity edge per
// portal-to-portal path (the set D), and emit
//
//   - the forest edges (virtual tree edges with capacities cap_T), and
//   - the next-level core multigraph on the portals,
//
// such that the input graph is 1-embeddable into forest+core and the
// j-tree is O(1)-embeddable back (Lemmas 8.6/8.7).
package jtree

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"distflow/internal/cluster"
	"distflow/internal/lsst"
	"distflow/internal/vtree"
)

// ForestEdge is a virtual tree edge produced by one construction step,
// oriented from Child toward its component's portal.
type ForestEdge struct {
	Child, Parent int // old cluster ids
	Cap           float64
	Phys          int
}

// StepResult is the outcome of one j-tree construction step.
type StepResult struct {
	// Forest holds the virtual tree edges adopted at this level.
	Forest []ForestEdge
	// DEdges are the minimum-capacity path edges deleted into D
	// (diagnostics: together with Forest they are the forest part of
	// H(T,F), which G must 1-embed into).
	DEdges []ForestEdge
	// NewCluster maps old cluster id -> new cluster id.
	NewCluster []int
	// Portal[k] is the old cluster id serving as portal of new cluster k.
	Portal []int
	// Core is the next-level cluster multigraph (one node per portal).
	Core *cluster.Graph
	// EdgeRload[i] is the relative load of input edge i if it was used
	// as a spanning tree edge, else 0 — the multiplicative-weights signal.
	EdgeRload []float64
	// Measurements for the experiments and accounting.
	FSize, RSize, DSize int
	MaxRload            float64
	TreeHeight          int
}

// Config tunes a construction step.
type Config struct {
	// LSST forwards to the spanning tree construction.
	LSST lsst.Config
	// DisableR disables the Lemma 8.2 random edge removal (ablation A3;
	// also used by the local continuation of §8.4, which drops the
	// component-size control).
	DisableR bool
	// DisableF skips the load-class removal entirely, collapsing the
	// whole tree into a single cluster — the terminal "the core becomes
	// empty, i.e., we construct a tree" move of §8.4.
	DisableF bool
}

// Step runs one construction step with target parameter j ≥ 1 on a
// connected cluster multigraph. lengths gives the current multiplicative
// weight ℓ(e) per edge (nil = 1/cap(e), Madry's initialization). sqrtN
// is the √n of the underlying network (the Lemma 8.2 threshold).
func Step(cg *cluster.Graph, lengths []float64, j int, sqrtN float64, cfg Config, rng *rand.Rand) (*StepResult, error) {
	if cg.N < 2 {
		return nil, fmt.Errorf("jtree: cluster graph has %d nodes", cg.N)
	}
	if j < 1 {
		return nil, fmt.Errorf("jtree: j = %d", j)
	}
	if lengths == nil {
		lengths = make([]float64, len(cg.Edges))
		for i, e := range cg.Edges {
			lengths[i] = 1 / e.Cap
		}
	}
	if len(lengths) != len(cg.Edges) {
		return nil, fmt.Errorf("jtree: lengths size %d, want %d", len(lengths), len(cg.Edges))
	}

	// --- 1. Low average-stretch spanning tree w.r.t. ℓ, with
	// capacity-weighted multiplicities (§8.1: the weighted average
	// stretch of Eq. (2) is realized by duplicating edges proportionally
	// to cap(e)·ℓ(e), at most doubling the edge count).
	var ledges []lsst.Edge
	var lorig []int // lsst edge -> cluster edge index
	var totalW float64
	for i, e := range cg.Edges {
		totalW += e.Cap * lengths[i]
	}
	m := len(cg.Edges)
	for i, e := range cg.Edges {
		mult := 1
		if totalW > 0 {
			mult = int(float64(m) * e.Cap * lengths[i] / totalW)
			if mult < 1 {
				mult = 1
			}
		}
		for k := 0; k < mult; k++ {
			ledges = append(ledges, lsst.Edge{U: e.A, V: e.B, Len: lengths[i]})
			lorig = append(lorig, i)
		}
	}
	lres, err := lsst.SpanningTree(cg.N, ledges, cfg.LSST, rng)
	if err != nil {
		return nil, fmt.Errorf("jtree: spanning tree: %w", err)
	}
	t := lres.Tree
	// treeEdge[v] = cluster edge realizing (v, parent(v)); -1 at root.
	treeEdge := make([]int, cg.N)
	for v := 0; v < cg.N; v++ {
		if ei := lres.EdgeOf[v]; ei >= 0 {
			treeEdge[v] = lorig[ei]
		} else {
			treeEdge[v] = -1
		}
	}

	// --- 2. Tree flow |f'| (Fig. 2): route cap(e) for every edge.
	pairs := make([]vtree.EdgeEndpoint, len(cg.Edges))
	for i, e := range cg.Edges {
		pairs[i] = vtree.EdgeEndpoint{U: e.A, V: e.B, Cap: e.Cap}
	}
	capT := t.TreeFlow(pairs)

	res := &StepResult{
		EdgeRload:  make([]float64, len(cg.Edges)),
		TreeHeight: t.Height(),
	}
	rload := make([]float64, cg.N)
	for v := 0; v < cg.N; v++ {
		if v == t.Root {
			continue
		}
		rload[v] = capT[v] / cg.Edges[treeEdge[v]].Cap
		res.EdgeRload[treeEdge[v]] = rload[v]
		if rload[v] > res.MaxRload {
			res.MaxRload = rload[v]
		}
	}

	// --- 3. F: maximal prefix of rload classes (R/2^i, R/2^{i-1}] with
	// |F| ≤ j (§4 step 3 / §8.2).
	removed := make([]bool, cg.N)
	if res.MaxRload > 0 && !cfg.DisableF {
		type vc struct {
			v  int
			rl float64
		}
		byLoad := make([]vc, 0, cg.N-1)
		for v := 0; v < cg.N; v++ {
			if v != t.Root {
				byLoad = append(byLoad, vc{v: v, rl: rload[v]})
			}
		}
		sort.Slice(byLoad, func(a, b int) bool { return byLoad[a].rl > byLoad[b].rl })
		classOf := func(rl float64) int {
			// class i ≥ 1 such that rl ∈ (R/2^i, R/2^{i-1}].
			if rl <= 0 {
				return 1 << 30
			}
			return 1 + int(math.Floor(math.Log2(res.MaxRload/rl)))
		}
		taken := 0
		idx := 0
		for idx < len(byLoad) && taken < j {
			c := classOf(byLoad[idx].rl)
			// Take the whole class if it fits in the remaining budget.
			end := idx
			for end < len(byLoad) && classOf(byLoad[end].rl) == c {
				end++
			}
			if taken+(end-idx) > j {
				break
			}
			for k := idx; k < end; k++ {
				removed[byLoad[k].v] = true
			}
			taken += end - idx
			idx = end
		}
		res.FSize = taken
	}

	// --- 4. R: Lemma 8.2 random removal with q = min(1, |c|/√n) keeps
	// new cluster trees shallow.
	if !cfg.DisableR {
		for v := 0; v < cg.N; v++ {
			if v == t.Root || removed[v] {
				continue
			}
			q := cg.Size[v] / sqrtN
			if q >= 1 || rng.Float64() < q {
				removed[v] = true
				res.RSize++
			}
		}
	}

	// --- 5. Components of T \ (F ∪ R) and the skeleton machinery.
	compTF := make([]int, cg.N) // component of T\(F∪R)
	children := make([][]int, cg.N)
	for v := 0; v < cg.N; v++ {
		if v != t.Root && !removed[v] {
			children[t.Parent[v]] = append(children[t.Parent[v]], v)
		}
	}
	numComp := 0
	compMembers := [][]int{}
	for _, v := range t.Order() {
		if v == t.Root || removed[v] {
			compTF[v] = numComp
			numComp++
			compMembers = append(compMembers, []int{v})
		} else {
			compTF[v] = compTF[t.Parent[v]]
			compMembers[compTF[v]] = append(compMembers[compTF[v]], v)
		}
	}

	// P1: clusters incident to removed edges.
	isP1 := make([]bool, cg.N)
	anyRemoved := false
	for v := 0; v < cg.N; v++ {
		if v != t.Root && removed[v] {
			isP1[v] = true
			isP1[t.Parent[v]] = true
			anyRemoved = true
		}
	}

	// Forest adjacency (within components).
	type fedge struct {
		to  int
		via int // child endpoint (carries capT/phys of tree edge)
	}
	fadj := make([][]fedge, cg.N)
	for v := 0; v < cg.N; v++ {
		if v != t.Root && !removed[v] {
			p := t.Parent[v]
			fadj[v] = append(fadj[v], fedge{to: p, via: v})
			fadj[p] = append(fadj[p], fedge{to: v, via: v})
		}
	}

	inD := make([]bool, cg.N) // inD[v]: tree edge (v,parent) deleted into D
	isPortal := make([]bool, cg.N)

	for ci := range compMembers {
		members := compMembers[ci]
		var p1 []int
		for _, v := range members {
			if isP1[v] {
				p1 = append(p1, v)
			}
		}
		if len(p1) == 0 {
			// No incident removed edge (only possible when nothing was
			// removed at all): the whole component is one cluster rooted
			// anywhere.
			if anyRemoved {
				return nil, fmt.Errorf("jtree: component %d has no P1 cluster despite removals", ci)
			}
			isPortal[members[0]] = true
			continue
		}
		// Skeleton: prune non-P1 leaves iteratively.
		deg := map[int]int{}
		for _, v := range members {
			deg[v] = len(fadj[v])
		}
		inSkel := map[int]bool{}
		for _, v := range members {
			inSkel[v] = true
		}
		queue := []int{}
		for _, v := range members {
			if deg[v] <= 1 && !isP1[v] {
				queue = append(queue, v)
			}
		}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if !inSkel[v] {
				continue
			}
			inSkel[v] = false
			for _, fe := range fadj[v] {
				if inSkel[fe.to] {
					deg[fe.to]--
					if deg[fe.to] <= 1 && !isP1[fe.to] {
						queue = append(queue, fe.to)
					}
				}
			}
		}
		// P2: skeleton degree ≥ 3 and not P1.
		isP := map[int]bool{}
		for _, v := range members {
			if !inSkel[v] {
				continue
			}
			if isP1[v] || deg[v] >= 3 {
				isP[v] = true
				isPortal[v] = true
			}
		}
		// Walk the skeleton paths between P nodes; delete the minimum
		// capT edge on each into D.
		visited := map[int]bool{} // via-vertex of walked skeleton edges
		for _, start := range members {
			if !isP[start] || !inSkel[start] {
				continue
			}
			for _, fe := range fadj[start] {
				if !inSkel[fe.to] || visited[fe.via] {
					continue
				}
				// Walk away from start until the next P node.
				minVia := fe.via
				prev, cur := start, fe.to
				visited[fe.via] = true
				for !isP[cur] {
					var next fedge
					found := false
					for _, g := range fadj[cur] {
						if inSkel[g.to] && g.to != prev {
							next = g
							found = true
							break
						}
					}
					if !found {
						// Dead end at a non-P skeleton leaf: cannot
						// happen (leaves are P1), but stay total.
						break
					}
					visited[next.via] = true
					if capT[next.via] < capT[minVia] {
						minVia = next.via
					}
					prev, cur = cur, next.to
				}
				if isP[cur] {
					inD[minVia] = true
					res.DSize++
				}
			}
		}
	}

	// --- 6. New clusters: components of T \ (F ∪ R ∪ D), each owning
	// exactly one portal.
	newComp := make([]int, cg.N)
	for v := range newComp {
		newComp[v] = -1
	}
	numNew := 0
	var newMembers [][]int
	for _, v := range t.Order() {
		if v == t.Root || removed[v] || inD[v] {
			newComp[v] = numNew
			numNew++
			newMembers = append(newMembers, []int{v})
		} else {
			newComp[v] = newComp[t.Parent[v]]
			newMembers[newComp[v]] = append(newMembers[newComp[v]], v)
		}
	}
	// Portal per new component; components without a marked portal take
	// their top vertex (possible when D-cutting isolates a path segment
	// whose portal sits on the other side).
	portalOf := make([]int, numNew)
	for k := range portalOf {
		portalOf[k] = -1
	}
	for v := 0; v < cg.N; v++ {
		if isPortal[v] {
			if got := portalOf[newComp[v]]; got >= 0 {
				return nil, fmt.Errorf("jtree: component %d has two portals (%d, %d)", newComp[v], got, v)
			}
			portalOf[newComp[v]] = v
		}
	}
	for k, members := range newMembers {
		if portalOf[k] < 0 {
			portalOf[k] = members[0]
		}
	}

	// --- 7. Forest edges re-rooted at portals.
	for k, members := range newMembers {
		root := portalOf[k]
		// BFS from the portal over forest edges inside the component.
		parent := map[int]fedge{}
		seen := map[int]bool{root: true}
		q := []int{root}
		for len(q) > 0 {
			v := q[0]
			q = q[1:]
			for _, fe := range fadj[v] {
				if inD[fe.via] || seen[fe.to] || newComp[fe.to] != k {
					continue
				}
				seen[fe.to] = true
				parent[fe.to] = fedge{to: v, via: fe.via}
				q = append(q, fe.to)
			}
		}
		for _, v := range members {
			if v == root {
				continue
			}
			fe, ok := parent[v]
			if !ok {
				return nil, fmt.Errorf("jtree: cluster %d unreachable from portal %d", v, root)
			}
			res.Forest = append(res.Forest, ForestEdge{
				Child:  v,
				Parent: fe.to,
				Cap:    capT[fe.via],
				Phys:   cg.Edges[treeEdge[fe.via]].Phys,
			})
		}
	}

	// --- 8. Core multigraph on portals.
	core := &cluster.Graph{
		N:     numNew,
		Rep:   make([]int, numNew),
		Size:  make([]float64, numNew),
		Depth: make([]int, numNew),
	}
	for k, members := range newMembers {
		core.Rep[k] = cg.Rep[portalOf[k]]
		for _, v := range members {
			core.Size[k] += cg.Size[v]
		}
	}
	// Depth accounting: hop-weighted BFS from the portal, where crossing
	// cluster c costs 2·Depth[c]+1 physical hops.
	for k := range newMembers {
		root := portalOf[k]
		w := func(c int) int { return 2*cg.Depth[c] + 1 }
		dist := map[int]int{root: cg.Depth[root]}
		q := []int{root}
		maxD := cg.Depth[root]
		for len(q) > 0 {
			v := q[0]
			q = q[1:]
			for _, fe := range fadj[v] {
				if inD[fe.via] || newComp[fe.to] != k {
					continue
				}
				if _, ok := dist[fe.to]; ok {
					continue
				}
				dist[fe.to] = dist[v] + w(fe.to)
				if dist[fe.to] > maxD {
					maxD = dist[fe.to]
				}
				q = append(q, fe.to)
			}
		}
		core.Depth[k] = maxD
	}
	// Inter-component cluster edges (between different T\(F∪R)
	// components) keep their capacity; D edges are replaced at cap_T.
	for _, e := range cg.Edges {
		if compTF[e.A] == compTF[e.B] {
			continue
		}
		a, b := newComp[e.A], newComp[e.B]
		if a == b {
			continue
		}
		core.Edges = append(core.Edges, cluster.Edge{A: a, B: b, Cap: e.Cap, Phys: e.Phys})
	}
	for v := 0; v < cg.N; v++ {
		if !inD[v] {
			continue
		}
		a, b := newComp[v], newComp[t.Parent[v]]
		if a == b {
			return nil, fmt.Errorf("jtree: D edge endpoints in same component")
		}
		core.Edges = append(core.Edges, cluster.Edge{A: a, B: b, Cap: capT[v], Phys: cg.Edges[treeEdge[v]].Phys})
		res.DEdges = append(res.DEdges, ForestEdge{
			Child: v, Parent: t.Parent[v], Cap: capT[v], Phys: cg.Edges[treeEdge[v]].Phys,
		})
	}

	res.NewCluster = newComp
	res.Portal = portalOf
	res.Core = core
	if err := core.Validate(); err != nil {
		return nil, fmt.Errorf("jtree: core: %w", err)
	}
	return res, nil
}
