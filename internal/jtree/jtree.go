// Package jtree implements one step of Madry's j-tree construction with
// the paper's modifications (§4, §8.2–8.3): starting from a cluster
// multigraph, build a low average-stretch spanning tree, compute the
// multicommodity tree flow (Fig. 2), remove the top relative-load edge
// classes F plus the random depth-control set R (Lemma 8.2), form the
// skeleton, select portals, delete one minimum-capacity edge per
// portal-to-portal path (the set D), and emit
//
//   - the forest edges (virtual tree edges with capacities cap_T), and
//   - the next-level core multigraph on the portals,
//
// such that the input graph is 1-embeddable into forest+core and the
// j-tree is O(1)-embeddable back (Lemmas 8.6/8.7).
//
// The hot path is StepWS, which runs one construction step against a
// Workspace: a pooled arena holding every scratch array and the
// successor cluster-graph storage, reused across levels and trees so a
// full congestion-approximator build performs no per-level map or
// slice churn. Step is the allocate-per-call convenience wrapper.
package jtree

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"distflow/internal/cluster"
	"distflow/internal/csr"
	"distflow/internal/lsst"
	"distflow/internal/vtree"
)

// ForestEdge is a virtual tree edge produced by one construction step,
// oriented from Child toward its component's portal.
type ForestEdge struct {
	Child, Parent int // old cluster ids
	Cap           float64
	Phys          int
}

// StepResult is the outcome of one j-tree construction step. When
// produced by StepWS, every slice (including the Core's) aliases the
// workspace and is only valid until the next StepWS call with the same
// workspace.
type StepResult struct {
	// Forest holds the virtual tree edges adopted at this level.
	Forest []ForestEdge
	// DEdges are the minimum-capacity path edges deleted into D
	// (diagnostics: together with Forest they are the forest part of
	// H(T,F), which G must 1-embed into).
	DEdges []ForestEdge
	// NewCluster maps old cluster id -> new cluster id. Ids are int32,
	// matching the workspace's compact scratch (cluster graphs are
	// bounded by the vertex count, far below the int32 ceiling).
	NewCluster []int32
	// Portal[k] is the old cluster id serving as portal of new cluster k.
	Portal []int32
	// Core is the next-level cluster multigraph (one node per portal).
	Core *cluster.Graph
	// EdgeRload[i] is the relative load of input edge i if it was used
	// as a spanning tree edge, else 0 — the multiplicative-weights signal.
	EdgeRload []float64
	// Measurements for the experiments and accounting.
	FSize, RSize, DSize int
	MaxRload            float64
	TreeHeight          int
	// LSSTRaceSeconds is the wall time the spanning-tree construction
	// spent in SplitGraph races (the scale ladder's breakdown signal).
	LSSTRaceSeconds float64
}

// Config tunes a construction step.
type Config struct {
	// LSST forwards to the spanning tree construction.
	LSST lsst.Config
	// DisableR disables the Lemma 8.2 random edge removal (ablation A3;
	// also used by the local continuation of §8.4, which drops the
	// component-size control).
	DisableR bool
	// DisableF skips the load-class removal entirely, collapsing the
	// whole tree into a single cluster — the terminal "the core becomes
	// empty, i.e., we construct a tree" move of §8.4.
	DisableF bool
}

// fedge is a forest-adjacency arc: the neighbour and the child endpoint
// of the realizing tree edge (which carries capT and phys). int32 ids
// halve the arena footprint, like the lsst race path's splitEdge.
type fedge struct {
	to  int32
	via int32
}

// Workspace is the pooled arena of StepWS. Arrays are sized to the
// largest cluster graph seen and reused across calls; the two core
// buffers alternate between calls, so a step never overwrites the
// cluster graph it is reading (the input is always the most recent
// output of whichever workspace produced it).
type Workspace struct {
	// LSST input (one edge per cluster edge, multiplicities implicit)
	ledges []lsst.Edge
	// pooled subroutine scratch: the spanning-tree construction arena
	// and the tree-flow LCA tables
	lws lsst.Workspace
	tfs vtree.TreeFlowScratch
	// per-cluster scratch: vertex and edge ids are int32 (half the
	// footprint of int on 64-bit, the same compaction as the lsst race
	// arena) — cluster counts never approach the int32 ceiling
	treeEdge []int32
	pairs    []vtree.EdgeEndpoint
	rload    []float64
	removed  []bool
	byLoad   []vcLoad
	compTF   []int32
	compOff  []int32
	compMem  []int32
	isP1     []bool
	fOff     []int32
	fArcs    []fedge
	deg      []int32
	inSkel   []bool
	isP      []bool
	visited  []bool
	inD      []bool
	isPortal []bool
	queue    []int32
	newComp  []int32
	newOff   []int32
	newMem   []int32
	portal   []int32
	parentTo []int32
	parentVi []int32
	seen     []bool
	dist     []int32
	hasDist  []bool
	// result storage
	forest    []ForestEdge
	dEdges    []ForestEdge
	edgeRload []float64
	// successor cluster graphs: two buffers; each step writes into
	// whichever one is not its input
	cores [2]coreArena
}

// coreArena is the pooled storage of one successor cluster graph.
type coreArena struct {
	core  cluster.Graph
	edges []cluster.Edge
	rep   []int
	size  []float64
	depth []int
}

type vcLoad struct {
	v  int32
	rl float64
}

// NewWorkspace returns an empty workspace; it grows on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// grow readies the per-cluster scratch for an N-node cluster graph.
func (ws *Workspace) grow(n int) {
	if cap(ws.treeEdge) >= n {
		return
	}
	ws.treeEdge = make([]int32, n)
	ws.rload = make([]float64, n)
	ws.removed = make([]bool, n)
	ws.compTF = make([]int32, n)
	ws.compOff = make([]int32, n+1)
	ws.compMem = make([]int32, n)
	ws.isP1 = make([]bool, n)
	ws.fOff = make([]int32, n+1)
	ws.fArcs = make([]fedge, 2*n)
	ws.deg = make([]int32, n)
	ws.inSkel = make([]bool, n)
	ws.isP = make([]bool, n)
	ws.visited = make([]bool, n)
	ws.inD = make([]bool, n)
	ws.isPortal = make([]bool, n)
	ws.newComp = make([]int32, n)
	ws.newOff = make([]int32, n+1)
	ws.newMem = make([]int32, n)
	ws.parentTo = make([]int32, n)
	ws.parentVi = make([]int32, n)
	ws.seen = make([]bool, n)
	ws.dist = make([]int32, n)
	ws.hasDist = make([]bool, n)
}

// Step runs one construction step with target parameter j ≥ 1 on a
// connected cluster multigraph, with a throwaway workspace. lengths
// gives the current multiplicative weight ℓ(e) per edge (nil =
// 1/cap(e), Madry's initialization). sqrtN is the √n of the underlying
// network (the Lemma 8.2 threshold).
func Step(cg *cluster.Graph, lengths []float64, j int, sqrtN float64, cfg Config, rng *rand.Rand) (*StepResult, error) {
	return StepWS(cg, lengths, j, sqrtN, cfg, rng, NewWorkspace())
}

// StepWS is Step against a caller-held workspace. The result (and its
// Core) aliases the workspace: it is valid until the next StepWS call
// with the same ws. Builds are bit-identical to Step's.
func StepWS(cg *cluster.Graph, lengths []float64, j int, sqrtN float64, cfg Config, rng *rand.Rand, ws *Workspace) (*StepResult, error) {
	if cg.N < 2 {
		return nil, fmt.Errorf("jtree: cluster graph has %d nodes", cg.N)
	}
	if j < 1 {
		return nil, fmt.Errorf("jtree: j = %d", j)
	}
	if lengths == nil {
		lengths = make([]float64, len(cg.Edges))
		for i, e := range cg.Edges {
			lengths[i] = 1 / e.Cap
		}
	}
	if len(lengths) != len(cg.Edges) {
		return nil, fmt.Errorf("jtree: lengths size %d, want %d", len(lengths), len(cg.Edges))
	}
	n := cg.N
	ws.grow(n)

	// --- 1. Low average-stretch spanning tree w.r.t. ℓ, with
	// capacity-weighted multiplicities (§8.1: the weighted average
	// stretch of Eq. (2) is realized by duplicating edges proportionally
	// to cap(e)·ℓ(e), at most doubling the edge count). The duplicates
	// are carried implicitly: one lsst.Edge per cluster edge, with the
	// copy count as its Mult — the race runs each parallel bundle once
	// and the class/cut censuses weight by Mult, which is observationally
	// the expanded multigraph (all copies of a bundle map to the same
	// original, and an original joins the tree at most once).
	ledges := ws.ledges[:0]
	var totalW float64
	for i, e := range cg.Edges {
		totalW += e.Cap * lengths[i]
	}
	m := len(cg.Edges)
	for i, e := range cg.Edges {
		mult := 1
		if totalW > 0 {
			mult = int(float64(m) * e.Cap * lengths[i] / totalW)
			if mult < 1 {
				mult = 1
			}
		}
		ledges = append(ledges, lsst.Edge{U: e.A, V: e.B, Len: lengths[i], Mult: int32(mult)})
	}
	ws.ledges = ledges
	lres, err := lsst.SpanningTreeWS(n, ledges, cfg.LSST, rng, &ws.lws)
	if err != nil {
		return nil, fmt.Errorf("jtree: spanning tree: %w", err)
	}
	t := lres.Tree
	// treeEdge[v] = cluster edge realizing (v, parent(v)); -1 at root.
	// ledges is index-aligned with cg.Edges, so EdgeOf maps directly.
	treeEdge := ws.treeEdge[:n]
	for v, ei := range lres.EdgeOf {
		treeEdge[v] = int32(ei)
	}

	// --- 2. Tree flow |f'| (Fig. 2): route cap(e) for every edge.
	pairs := ws.pairs[:0]
	for _, e := range cg.Edges {
		pairs = append(pairs, vtree.EdgeEndpoint{U: e.A, V: e.B, Cap: e.Cap})
	}
	ws.pairs = pairs
	capT := t.TreeFlowWS(pairs, &ws.tfs)

	if cap(ws.edgeRload) < len(cg.Edges) {
		ws.edgeRload = make([]float64, len(cg.Edges))
	}
	res := &StepResult{
		EdgeRload:       ws.edgeRload[:len(cg.Edges)],
		TreeHeight:      t.Height(),
		LSSTRaceSeconds: lres.RaceSeconds,
	}
	for i := range res.EdgeRload {
		res.EdgeRload[i] = 0
	}
	rload := ws.rload[:n]
	for v := 0; v < n; v++ {
		if v == t.Root {
			rload[v] = 0
			continue
		}
		rload[v] = capT[v] / cg.Edges[treeEdge[v]].Cap
		res.EdgeRload[treeEdge[v]] = rload[v]
		if rload[v] > res.MaxRload {
			res.MaxRload = rload[v]
		}
	}

	// --- 3. F: maximal prefix of rload classes (R/2^i, R/2^{i-1}] with
	// |F| ≤ j (§4 step 3 / §8.2).
	removed := ws.removed[:n]
	for v := range removed {
		removed[v] = false
	}
	if res.MaxRload > 0 && !cfg.DisableF {
		byLoad := ws.byLoad[:0]
		for v := 0; v < n; v++ {
			if v != t.Root {
				byLoad = append(byLoad, vcLoad{v: int32(v), rl: rload[v]})
			}
		}
		ws.byLoad = byLoad
		sort.Slice(byLoad, func(a, b int) bool { return byLoad[a].rl > byLoad[b].rl })
		classOf := func(rl float64) int {
			// class i ≥ 1 such that rl ∈ (R/2^i, R/2^{i-1}].
			if rl <= 0 {
				return 1 << 30
			}
			return 1 + int(math.Floor(math.Log2(res.MaxRload/rl)))
		}
		taken := 0
		idx := 0
		for idx < len(byLoad) && taken < j {
			c := classOf(byLoad[idx].rl)
			// Take the whole class if it fits in the remaining budget.
			end := idx
			for end < len(byLoad) && classOf(byLoad[end].rl) == c {
				end++
			}
			if taken+(end-idx) > j {
				break
			}
			for k := idx; k < end; k++ {
				removed[byLoad[k].v] = true
			}
			taken += end - idx
			idx = end
		}
		res.FSize = taken
	}

	// --- 4. R: Lemma 8.2 random removal with q = min(1, |c|/√n) keeps
	// new cluster trees shallow.
	if !cfg.DisableR {
		for v := 0; v < n; v++ {
			if v == t.Root || removed[v] {
				continue
			}
			q := cg.Size[v] / sqrtN
			if q >= 1 || rng.Float64() < q {
				removed[v] = true
				res.RSize++
			}
		}
	}

	// --- 5. Components of T \ (F ∪ R) and the skeleton machinery.
	// Members are bucketed in t.Order() traversal order (the order the
	// append-based version produced).
	compTF := ws.compTF[:n]
	numComp := int32(0)
	for _, v := range t.Order() {
		if v == t.Root || removed[v] {
			compTF[v] = numComp
			numComp++
		} else {
			compTF[v] = compTF[t.Parent[v]]
		}
	}
	compOff := ws.compOff[:numComp+1]
	for i := range compOff {
		compOff[i] = 0
	}
	for v := 0; v < n; v++ {
		compOff[compTF[v]]++
	}
	csr.Offsets(compOff)
	compMem := ws.compMem[:n]
	for _, v := range t.Order() {
		compMem[compOff[compTF[v]]] = int32(v)
		compOff[compTF[v]]++
	}
	csr.Shift(compOff)

	// P1: clusters incident to removed edges.
	isP1 := ws.isP1[:n]
	for v := range isP1 {
		isP1[v] = false
	}
	anyRemoved := false
	for v := 0; v < n; v++ {
		if v != t.Root && removed[v] {
			isP1[v] = true
			isP1[t.Parent[v]] = true
			anyRemoved = true
		}
	}

	// Forest adjacency (within components), CSR form. Arcs land in the
	// same per-vertex order as the old appends: the v-loop adds (v→p)
	// at v and (p→v) at p, in v order.
	fOff := ws.fOff[:n+1]
	for i := range fOff {
		fOff[i] = 0
	}
	for v := 0; v < n; v++ {
		if v != t.Root && !removed[v] {
			fOff[v]++
			fOff[t.Parent[v]]++
		}
	}
	sum := csr.Offsets(fOff)
	fArcs := ws.fArcs[:cap(ws.fArcs)]
	if len(fArcs) < int(sum) {
		fArcs = make([]fedge, sum)
		ws.fArcs = fArcs
	}
	fArcs = fArcs[:sum]
	for v := 0; v < n; v++ {
		if v != t.Root && !removed[v] {
			p := t.Parent[v]
			fArcs[fOff[v]] = fedge{to: int32(p), via: int32(v)}
			fOff[v]++
			fArcs[fOff[p]] = fedge{to: int32(v), via: int32(v)}
			fOff[p]++
		}
	}
	csr.Shift(fOff)
	fadj := func(v int32) []fedge { return fArcs[fOff[v]:fOff[v+1]] }

	inD := ws.inD[:n] // inD[v]: tree edge (v,parent) deleted into D
	isPortal := ws.isPortal[:n]
	for v := 0; v < n; v++ {
		inD[v] = false
		isPortal[v] = false
	}

	// Per-component scratch: deg/inSkel/isP/visited entries are only
	// touched at member indices and reset after each component.
	deg := ws.deg[:n]
	inSkel := ws.inSkel[:n]
	isP := ws.isP[:n]
	visited := ws.visited[:n]

	for ci := int32(0); ci < numComp; ci++ {
		members := compMem[compOff[ci]:compOff[ci+1]]
		p1 := 0
		for _, v := range members {
			if isP1[v] {
				p1++
			}
		}
		if p1 == 0 {
			// No incident removed edge (only possible when nothing was
			// removed at all): the whole component is one cluster rooted
			// anywhere.
			if anyRemoved {
				return nil, fmt.Errorf("jtree: component %d has no P1 cluster despite removals", ci)
			}
			isPortal[members[0]] = true
			continue
		}
		// Skeleton: prune non-P1 leaves iteratively.
		for _, v := range members {
			deg[v] = int32(len(fadj(v)))
			inSkel[v] = true
		}
		queue := ws.queue[:0]
		for _, v := range members {
			if deg[v] <= 1 && !isP1[v] {
				queue = append(queue, v)
			}
		}
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			if !inSkel[v] {
				continue
			}
			inSkel[v] = false
			for _, fe := range fadj(v) {
				if inSkel[fe.to] {
					deg[fe.to]--
					if deg[fe.to] <= 1 && !isP1[fe.to] {
						queue = append(queue, fe.to)
					}
				}
			}
		}
		ws.queue = queue
		// P2: skeleton degree ≥ 3 and not P1.
		for _, v := range members {
			if !inSkel[v] {
				continue
			}
			if isP1[v] || deg[v] >= 3 {
				isP[v] = true
				isPortal[v] = true
			}
		}
		// Walk the skeleton paths between P nodes; delete the minimum
		// capT edge on each into D.
		for _, start := range members {
			if !isP[start] || !inSkel[start] {
				continue
			}
			for _, fe := range fadj(start) {
				if !inSkel[fe.to] || visited[fe.via] {
					continue
				}
				// Walk away from start until the next P node.
				minVia := fe.via
				prev, cur := start, fe.to
				visited[fe.via] = true
				for !isP[cur] {
					var next fedge
					found := false
					for _, g := range fadj(cur) {
						if inSkel[g.to] && g.to != prev {
							next = g
							found = true
							break
						}
					}
					if !found {
						// Dead end at a non-P skeleton leaf: cannot
						// happen (leaves are P1), but stay total.
						break
					}
					visited[next.via] = true
					if capT[next.via] < capT[minVia] {
						minVia = next.via
					}
					prev, cur = cur, next.to
				}
				if isP[cur] {
					inD[minVia] = true
					res.DSize++
				}
			}
		}
		// Reset the per-component scratch (only member indices were
		// touched; visited is keyed by via vertices, all members).
		for _, v := range members {
			deg[v] = 0
			inSkel[v] = false
			isP[v] = false
			visited[v] = false
		}
	}

	// --- 6. New clusters: components of T \ (F ∪ R ∪ D), each owning
	// exactly one portal.
	newComp := ws.newComp[:n]
	numNew := int32(0)
	for _, v := range t.Order() {
		if v == t.Root || removed[v] || inD[v] {
			newComp[v] = numNew
			numNew++
		} else {
			newComp[v] = newComp[t.Parent[v]]
		}
	}
	newOff := ws.newOff[:numNew+1]
	for i := range newOff {
		newOff[i] = 0
	}
	for v := 0; v < n; v++ {
		newOff[newComp[v]]++
	}
	csr.Offsets(newOff)
	newMem := ws.newMem[:n]
	for _, v := range t.Order() {
		newMem[newOff[newComp[v]]] = int32(v)
		newOff[newComp[v]]++
	}
	csr.Shift(newOff)
	members := func(k int32) []int32 { return newMem[newOff[k]:newOff[k+1]] }

	// Portal per new component; components without a marked portal take
	// their top vertex (possible when D-cutting isolates a path segment
	// whose portal sits on the other side).
	if cap(ws.portal) < int(numNew) {
		ws.portal = make([]int32, n)
	}
	portalOf := ws.portal[:numNew]
	for k := range portalOf {
		portalOf[k] = -1
	}
	for v := 0; v < n; v++ {
		if isPortal[v] {
			if got := portalOf[newComp[v]]; got >= 0 {
				return nil, fmt.Errorf("jtree: component %d has two portals (%d, %d)", newComp[v], got, v)
			}
			portalOf[newComp[v]] = int32(v)
		}
	}
	for k := int32(0); k < numNew; k++ {
		if portalOf[k] < 0 {
			portalOf[k] = members(k)[0]
		}
	}

	// --- 7. Forest edges re-rooted at portals. parentTo/parentVi/seen
	// are only touched at member indices and reset per component.
	parentTo := ws.parentTo[:n]
	parentVi := ws.parentVi[:n]
	seen := ws.seen[:n]
	forest := ws.forest[:0]
	for k := int32(0); k < numNew; k++ {
		mem := members(k)
		root := portalOf[k]
		seen[root] = true
		queue := ws.queue[:0]
		queue = append(queue, root)
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for _, fe := range fadj(v) {
				if inD[fe.via] || seen[fe.to] || newComp[fe.to] != k {
					continue
				}
				seen[fe.to] = true
				parentTo[fe.to] = v
				parentVi[fe.to] = fe.via
				queue = append(queue, fe.to)
			}
		}
		ws.queue = queue
		for _, v := range mem {
			if v == root {
				continue
			}
			if !seen[v] {
				return nil, fmt.Errorf("jtree: cluster %d unreachable from portal %d", v, root)
			}
			forest = append(forest, ForestEdge{
				Child:  int(v),
				Parent: int(parentTo[v]),
				Cap:    capT[parentVi[v]],
				Phys:   cg.Edges[treeEdge[parentVi[v]]].Phys,
			})
		}
		for _, v := range mem {
			seen[v] = false
		}
	}
	ws.forest = forest
	res.Forest = forest

	// --- 8. Core multigraph on portals, built into whichever of the
	// workspace's two arenas does not hold the input cluster graph —
	// selected by pointer identity, so re-running a step on the same
	// input (the no-contraction retry of the sampler) can never clobber
	// what it is reading. The only live cluster graphs at any moment
	// are the current input and the current level's fresh outputs (one
	// per workspace), so the other buffer is always dead.
	arena := &ws.cores[0]
	if cg == &ws.cores[0].core {
		arena = &ws.cores[1]
	}
	if cap(arena.rep) < int(numNew) {
		arena.rep = make([]int, numNew)
		arena.size = make([]float64, numNew)
		arena.depth = make([]int, numNew)
	}
	core := &arena.core
	core.N = int(numNew)
	core.Rep = arena.rep[:numNew]
	core.Size = arena.size[:numNew]
	core.Depth = arena.depth[:numNew]
	for k := int32(0); k < numNew; k++ {
		core.Rep[k] = cg.Rep[portalOf[k]]
		core.Size[k] = 0
		for _, v := range members(k) {
			core.Size[k] += cg.Size[v]
		}
	}
	// Depth accounting: hop-weighted BFS from the portal, where crossing
	// cluster c costs 2·Depth[c]+1 physical hops. dist/hasDist are only
	// touched at member indices and reset per component.
	dist := ws.dist[:n]
	hasDist := ws.hasDist[:n]
	for k := int32(0); k < numNew; k++ {
		root := portalOf[k]
		dist[root] = int32(cg.Depth[root])
		hasDist[root] = true
		maxD := dist[root]
		queue := ws.queue[:0]
		queue = append(queue, root)
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for _, fe := range fadj(v) {
				if inD[fe.via] || newComp[fe.to] != k {
					continue
				}
				if hasDist[fe.to] {
					continue
				}
				hasDist[fe.to] = true
				dist[fe.to] = dist[v] + int32(2*cg.Depth[fe.to]+1)
				if dist[fe.to] > maxD {
					maxD = dist[fe.to]
				}
				queue = append(queue, fe.to)
			}
		}
		ws.queue = queue
		core.Depth[k] = int(maxD)
		for _, v := range members(k) {
			hasDist[v] = false
		}
	}
	// Inter-component cluster edges (between different T\(F∪R)
	// components) keep their capacity; D edges are replaced at cap_T.
	coreEdges := arena.edges[:0]
	dEdges := ws.dEdges[:0]
	for _, e := range cg.Edges {
		if compTF[e.A] == compTF[e.B] {
			continue
		}
		a, b := newComp[e.A], newComp[e.B]
		if a == b {
			continue
		}
		coreEdges = append(coreEdges, cluster.Edge{A: int(a), B: int(b), Cap: e.Cap, Phys: e.Phys})
	}
	for v := 0; v < n; v++ {
		if !inD[v] {
			continue
		}
		a, b := newComp[v], newComp[t.Parent[v]]
		if a == b {
			return nil, fmt.Errorf("jtree: D edge endpoints in same component")
		}
		coreEdges = append(coreEdges, cluster.Edge{A: int(a), B: int(b), Cap: capT[v], Phys: cg.Edges[treeEdge[v]].Phys})
		dEdges = append(dEdges, ForestEdge{
			Child: v, Parent: t.Parent[v], Cap: capT[v], Phys: cg.Edges[treeEdge[v]].Phys,
		})
	}
	arena.edges = coreEdges
	core.Edges = coreEdges
	ws.dEdges = dEdges
	res.DEdges = dEdges

	res.NewCluster = newComp
	res.Portal = portalOf
	res.Core = core
	if err := core.Validate(); err != nil {
		return nil, fmt.Errorf("jtree: core: %w", err)
	}
	return res, nil
}
