package sherman

import (
	"math"
	"math/rand"
	"testing"

	"distflow/internal/capprox"
	"distflow/internal/graph"
	"distflow/internal/seqflow"
)

func approximator(t *testing.T, g *graph.Graph, seed int64) *capprox.Approximator {
	t.Helper()
	a, err := capprox.Build(g, capprox.Config{ExactCuts: true}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestMaxFlowPath(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 3)
	g.AddEdge(2, 3, 7)
	a := approximator(t, g, 1)
	r, err := MaxFlow(g, a, 0, 3, Config{Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Value < 3/1.25 || r.Value > 3.0001 {
		t.Fatalf("Value = %v, want ≈ 3", r.Value)
	}
	checkFeasible(t, g, r, 0, 3)
}

func checkFeasible(t *testing.T, g *graph.Graph, r *FlowResult, s, tt int) {
	t.Helper()
	capEx, consErr := seqflow.CheckFlow(g, r.Flow, s, tt, r.Value)
	if capEx > 1e-9 {
		t.Fatalf("capacity violated by %v", capEx)
	}
	if consErr > 1e-6*math.Max(1, r.Value) {
		t.Fatalf("conservation violated by %v", consErr)
	}
}

func TestMaxFlowMatchesDinicWithinEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		g := graph.CapUniform(graph.GNP(24, 0.2, rng), 10, rng)
		s, tt := 0, g.N()-1
		want := float64(seqflow.MinCutValue(g, s, tt))
		if want == 0 {
			continue
		}
		a := approximator(t, g, int64(trial+10))
		eps := 0.25
		r, err := MaxFlow(g, a, s, tt, Config{Epsilon: eps})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkFeasible(t, g, r, s, tt)
		if r.Value > want*1.0001 {
			t.Fatalf("trial %d: value %v exceeds max flow %v", trial, r.Value, want)
		}
		// (1+ε) guarantee with slack for the o(1) terms at small n.
		if r.Value < want/(1+eps)/1.25 {
			t.Errorf("trial %d: value %v too far below OPT %v (ratio %v)", trial, r.Value, want, want/r.Value)
		}
	}
}

func TestMaxFlowBarbell(t *testing.T) {
	g := graph.Barbell(5, 3)
	a := approximator(t, g, 3)
	r, err := MaxFlow(g, a, 0, g.N()-1, Config{Epsilon: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	checkFeasible(t, g, r, 0, g.N()-1)
	if r.Value > 1.0001 || r.Value < 0.6 {
		t.Errorf("barbell value %v, want ≈ 1", r.Value)
	}
}

func TestAlmostRouteReducesResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.CapUniform(graph.Grid(5, 5), 8, rng)
	a := approximator(t, g, 4)
	b := graph.STDemand(g.N(), 0, g.N()-1, 1)
	rr, err := AlmostRoute(g, a, b, 0.5, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	div := g.Divergence(rr.Flow)
	resid := make([]float64, g.N())
	for v := range resid {
		resid[v] = b[v] - div[v]
	}
	if a.NormRb(resid) > a.NormRb(b) {
		t.Errorf("residual demand norm did not decrease: %v -> %v", a.NormRb(b), a.NormRb(resid))
	}
	if rr.Iterations == 0 {
		t.Error("no gradient iterations recorded")
	}
}

func TestAlmostRouteZeroDemand(t *testing.T) {
	g := graph.Path(4)
	a := approximator(t, g, 5)
	rr, err := AlmostRoute(g, a, make([]float64, 4), 0.5, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range rr.Flow {
		if x != 0 {
			t.Fatal("zero demand produced flow")
		}
	}
}

func TestAlmostRouteErrors(t *testing.T) {
	g := graph.Path(4)
	a := approximator(t, g, 6)
	if _, err := AlmostRoute(g, a, make([]float64, 3), 0.5, Config{}, nil); err == nil {
		t.Error("bad demand length accepted")
	}
	// eps=0 selects the documented default accuracy (NormalizeEps);
	// everything else outside (0,1) — including NaN, which defeats naive
	// range comparisons — is rejected before the gradient loop.
	if _, err := AlmostRoute(g, a, make([]float64, 4), 0, Config{}, nil); err != nil {
		t.Errorf("eps=0 (default) rejected: %v", err)
	}
	for _, bad := range []float64{-0.1, 1, 1.5, math.NaN()} {
		if _, err := AlmostRoute(g, a, make([]float64, 4), bad, Config{}, nil); err == nil {
			t.Errorf("eps=%v accepted", bad)
		}
	}
	if _, err := MaxFlow(g, a, 1, 1, Config{}); err == nil {
		t.Error("s==t accepted")
	}
}

func TestRouteOnMaxWeightST(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 10)
	g.AddEdge(0, 2, 10)
	// Max-weight ST keeps the two capacity-10 edges. Demand 0 -> 1 must
	// route 0->2->1.
	b := []float64{1, -1, 0}
	f, err := RouteOnMaxWeightST(g, b)
	if err != nil {
		t.Fatal(err)
	}
	div := g.Divergence(f)
	for v := range b {
		if math.Abs(div[v]-b[v]) > 1e-12 {
			t.Fatalf("divergence[%d] = %v, want %v", v, div[v], b[v])
		}
	}
	if f[0] != 0 {
		t.Errorf("flow used the light edge: %v", f)
	}
}

func TestRouteOnMaxWeightSTRandomDemands(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		g := graph.CapUniform(graph.GNP(20, 0.2, rng), 20, rng)
		b := make([]float64, g.N())
		var sum float64
		for v := 1; v < g.N(); v++ {
			b[v] = rng.NormFloat64()
			sum += b[v]
		}
		b[0] = -sum
		f, err := RouteOnMaxWeightST(g, b)
		if err != nil {
			t.Fatal(err)
		}
		div := g.Divergence(f)
		for v := range b {
			if math.Abs(div[v]-b[v]) > 1e-9 {
				t.Fatalf("trial %d: routing not exact at %d", trial, v)
			}
		}
	}
}

func TestLedgerCharged(t *testing.T) {
	g := graph.Grid(4, 4)
	a := approximator(t, g, 14)
	r, err := MaxFlow(g, a, 0, g.N()-1, Config{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Ledger.Phase("gradient") <= 0 {
		t.Error("gradient rounds not charged")
	}
	if r.Ledger.Phase("residual-tree-routing") <= 0 {
		t.Error("tree routing rounds not charged")
	}
}

// Iterations must grow as eps shrinks (the ε⁻³ dependence, E7's shape).
func TestIterationsGrowWithAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	g := graph.CapUniform(graph.Grid(4, 4), 5, rng)
	a := approximator(t, g, 16)
	b := graph.STDemand(g.N(), 0, g.N()-1, 1)
	loose, err := AlmostRoute(g, a, b, 0.8, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := AlmostRoute(g, a, b, 0.15, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Iterations <= loose.Iterations {
		t.Errorf("iterations did not grow: eps=0.8 -> %d, eps=0.15 -> %d", loose.Iterations, tight.Iterations)
	}
}
