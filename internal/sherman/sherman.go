// Package sherman implements the gradient-descent flow solver of
// Sherman that the paper makes distributed (§9): Algorithm 2
// (AlmostRoute) minimizes the potential
//
//	φ(f) = smax(C⁻¹f) + smax(2α·R·(b − Bf)),
//
// where R is the congestion approximator of internal/capprox, and
// Algorithm 1 composes O(log m) AlmostRoute calls with a final
// maximum-weight-spanning-tree routing of the leftover demand
// (Lemma 9.1) into an exactly-conserving, capacity-feasible
// (1+ε)-approximate maximum flow.
//
// Sign conventions (documented in internal/graph): b[v] is the supply
// injected at v; a flow f meets b when Divergence(f) = b; the residual
// demand is r = b − Divergence(f). The gradient of φ2 at edge e=(u,v)
// is 2α(π_v − π_u) for the node potentials π = Rᵀ·∇smax(y), Eq. (3)/(4).
//
// The stepper is, by default, a safeguarded accelerated-gradient method
// (Nesterov's momentum schedule with potential-monotonicity restarts,
// DESIGN.md §5) — Sherman's footnote 3 observes acceleration improves
// the ε⁻³ iteration bound toward ε⁻², and Grunau–Kyng–Zuzic (2025) make
// it the centerpiece of the state of the art. Small target accuracies
// are additionally reached through an ε-continuation schedule that
// warm-starts each refinement level from the previous level's flow.
// Config.DisableAcceleration and Config.DisableContinuation restore the
// plain stepper.
//
// Every gradient iteration charges the distributed cost of its two
// R-applications (Corollary 9.3) and its BFS-tree aggregations to the
// ledger, using the measured tree count and diameter.
package sherman

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"distflow/internal/capprox"
	"distflow/internal/congest"
	"distflow/internal/graph"
	"distflow/internal/mst"
	"distflow/internal/numutil"
	"distflow/internal/par"
	"distflow/internal/shard"
	"distflow/internal/vtree"
)

// Config tunes the solver. The zero value selects the paper's
// parameters with the accelerated stepper enabled.
type Config struct {
	// Epsilon is the approximation target (default 0.5).
	Epsilon float64
	// Alpha overrides the congestion-approximator quality parameter α
	// used in the potential (default 2·Alpha²·AlphaLow from the
	// measured approximator distortion, the Lemma 3.3 composition).
	Alpha float64
	// MaxIters bounds gradient iterations per fixed-α descent (default
	// 200·⌈α²·ε⁻³·ln n⌉, a generous multiple of the paper's
	// O(α²ε⁻³log n) bound). One AlmostRoute call may run several such
	// descents — one per ε-continuation level, times adaptive-α
	// restarts — each with a fresh budget.
	MaxIters int
	// DisableAdaptiveAlpha turns off the stall-doubling of α
	// (ablation A2: paper-faithful fixed step size).
	DisableAdaptiveAlpha bool
	// Momentum enables a safeguarded heavy-ball term μ·(f_k − f_{k-1})
	// with a FIXED coefficient on top of the gradient step (the
	// pre-acceleration exploratory option; momentum is dropped whenever
	// a step fails to decrease the potential, so the worst case is
	// unchanged). 0 = off; typical value 0.9. When set it takes
	// precedence over the default accelerated schedule.
	Momentum float64
	// DisableAcceleration turns off the default safeguarded
	// accelerated-gradient stepper (Nesterov's θ_k = k/(k+3) momentum
	// schedule with potential-monotonicity restarts, DESIGN.md §5) and
	// restores the plain backtracking gradient step.
	DisableAcceleration bool
	// DisableContinuation turns off the ε-continuation schedule that
	// solves AlmostRoute at a coarse accuracy first and warm-starts each
	// refinement level from the previous flow (DESIGN.md §5).
	DisableContinuation bool
	// OuterIters bounds Algorithm 1 repetitions (default ⌈log₂ m⌉+1).
	OuterIters int
}

// ErrNoConvergence is returned when AlmostRoute exhausts its iteration
// budget even after adaptive-α restarts.
var ErrNoConvergence = errors.New("sherman: gradient descent did not converge")

// muCap bounds the accelerated momentum coefficient μ_k = k/(k+3). The
// descent direction is a sign-gradient (ℓ∞-geometry) step whose length
// the η line search already adapts, so the classical μ→1 schedule
// overshoots into restart-thrash; capping at 0.4 measured best on the
// BENCH workload (swept 0.3–0.9: 1126 iterations at 0.4 vs 1420
// without momentum and 1858 uncapped, DESIGN.md §5).
const muCap = 0.4

// RouteResult is the outcome of AlmostRoute.
type RouteResult struct {
	// Flow is the computed (near-)routing of the demand.
	Flow []float64
	// Iterations is the number of gradient steps performed (summed over
	// continuation levels).
	Iterations int
	// Restarts counts potential-monotonicity restarts of the momentum
	// sequence (steps where the safeguard dropped the momentum term).
	Restarts int
	// AlphaUsed is the α the run converged with (≥ Config.Alpha when
	// adaptive restarts fired).
	AlphaUsed float64
	// Degraded reports that the context's deadline expired mid-descent
	// and Flow is the best iterate reached, not a converged routing. The
	// flow is still a valid (partial) routing — callers restore exact
	// conservation by tree-routing the residual — but the congestion
	// guarantee is whatever the caller measures, not (1+ε).
	Degraded bool
}

// ctxStatus classifies the context's state at a check point: an expired
// deadline asks for graceful degradation (stop iterating, hand back the
// current iterate), a cancellation aborts outright, and a live context
// costs one channel poll. The deadline/cancel split is the failure-
// handling contract of DESIGN.md §11: deadlines mean "best effort now",
// cancellation means "nobody wants this answer".
func ctxStatus(ctx context.Context) (degrade bool, err error) {
	select {
	case <-ctx.Done():
	default:
		return false, nil
	}
	if err := ctx.Err(); !errors.Is(err, context.DeadlineExceeded) {
		return false, err
	}
	return true, nil
}

// Solver bundles a graph and its congestion approximator with reusable
// solve state: a pool of gradient workspaces (the per-tree [][]float64
// scratch is recycled across queries instead of reallocated) and the
// lazily built maximum-weight spanning tree used for residual routing.
// A Solver is safe for concurrent use; every query draws its own
// workspace from the pool.
type Solver struct {
	g   *graph.Graph
	apx *capprox.Approximator

	// eng, when non-nil, executes the per-iteration operators on the
	// sharded message-passing engine instead of the single-address-space
	// path. Results are bit-identical (internal/shard's determinism
	// contract); what changes is that the ledger additionally records
	// measured rounds, messages, and bytes.
	eng *shard.Engine

	wsPool sync.Pool

	stOnce sync.Once
	st     *stRouter
	stErr  error
}

// NewSolver returns a Solver for (g, apx). Long-lived callers (the
// distflow.Router) should create one Solver and reuse it across
// queries; the package-level AlmostRoute/MaxFlow wrappers create a
// throwaway Solver per call.
func NewSolver(g *graph.Graph, apx *capprox.Approximator) *Solver {
	return &Solver{g: g, apx: apx}
}

// SetEngine attaches a sharded execution engine built over the same
// (g, apx). Must be called before the Solver serves queries — the
// field is read without synchronization on the hot path. Pass nil to
// return to single-address-space execution.
func (s *Solver) SetEngine(e *shard.Engine) { s.eng = e }

func (s *Solver) getWS() *workspace {
	ws, ok := s.wsPool.Get().(*workspace)
	if !ok {
		ws = newWorkspace(s.g, s.apx)
	}
	// Pooled workspaces may predate SetEngine; refresh the binding.
	ws.eng = s.eng
	return ws
}

// normRb computes ‖Rb‖∞, on the engine when one is attached (charging
// the measured exchange to ledger) and on the flat path otherwise.
func (s *Solver) normRb(b []float64, ledger *congest.Ledger) float64 {
	if s.eng == nil {
		return s.apx.NormRb(b)
	}
	ws := s.getWS()
	defer s.putWS(ws)
	norm, c := s.eng.NormRb(b, ws.scratch.Sub)
	if ledger != nil {
		ledger.ChargeExchange("norm-rb", c.Rounds, c.Messages, c.Bytes)
	}
	return norm
}

func (s *Solver) putWS(ws *workspace) { s.wsPool.Put(ws) }

// stTree returns the cached maximum-weight-spanning-tree router.
func (s *Solver) stTree() (*stRouter, error) {
	s.stOnce.Do(func() { s.st, s.stErr = newSTRouter(s.g) })
	return s.st, s.stErr
}

type workspace struct {
	g   *graph.Graph
	apx *capprox.Approximator
	// eng mirrors Solver.eng (rebound at every checkout); cost
	// accumulates the measured exchange bill of evals since the last
	// charge() drain.
	eng  *shard.Engine
	cost shard.Cost
	// invCap[e] = 1/cap_e, fused into the φ1 soft-max and the gradient
	// assembly (multiplies instead of divides on the hot path).
	invCap []float64
	// scratch holds the per-tree buffers of the fused φ2 pipeline
	// (capprox.PotentialRT).
	scratch *capprox.EvalScratch
	w1      []float64
	grad    []float64
	div     []float64
	r       []float64
	pi      []float64
	// iterate buffers reused across calls (fully overwritten each call)
	f       []float64
	fPrev   []float64
	fTry    []float64
	stepVec []float64
	bs      []float64
}

func newWorkspace(g *graph.Graph, apx *capprox.Approximator) *workspace {
	ws := &workspace{g: g, apx: apx, scratch: apx.NewEvalScratch()}
	ws.invCap = make([]float64, g.M())
	for e, ed := range g.Edges() {
		if ed.Cap == 0 {
			// Tombstoned edge: zero inverse capacity keeps it out of φ1
			// and the gradient never moves flow onto it (the step vector
			// scales by cap = 0), so its flow stays exactly 0.
			continue
		}
		ws.invCap[e] = 1 / float64(ed.Cap)
	}
	ws.w1 = make([]float64, g.M())
	ws.grad = make([]float64, g.M())
	ws.div = make([]float64, g.N())
	ws.r = make([]float64, g.N())
	ws.pi = make([]float64, g.N())
	ws.f = make([]float64, g.M())
	ws.fPrev = make([]float64, g.M())
	ws.fTry = make([]float64, g.M())
	ws.stepVec = make([]float64, g.M())
	ws.bs = make([]float64, g.N())
	return ws
}

// eval computes φ(f), the gradient, and δ = Σ_e cap_e·|grad_e| for the
// scaled demand bs. The passes are fused (DESIGN.md §5): φ1 evaluates
// the soft-max directly on f with the 1/cap scaling folded into every
// chunk pass, and φ2 runs ApplyR → ∇smax → ApplyRᵀ as single per-tree
// sweeps via capprox.PotentialRT. All reductions combine partials in an
// order fixed by the problem size alone, so eval is a pure function of
// (f, bs, alpha) at every worker count.
func (ws *workspace) eval(f, bs []float64, alpha float64) (phi, delta float64) {
	if ws.eng != nil {
		return ws.evalSharded(f, bs, alpha)
	}
	g := ws.g
	edges := g.Edges()
	// φ1 = smax(C⁻¹f), fused scaling.
	phi1 := numutil.SoftMaxGradScaledPar(f, ws.invCap, ws.w1)

	// φ2 = smax(2α·R·r), r = bs − Div(f), with π = Rᵀ·∇smax fused in.
	g.DivergenceInto(f, ws.div)
	par.For(g.N(), func(lo, hi int) {
		for v := lo; v < hi; v++ {
			ws.r[v] = bs[v] - ws.div[v]
		}
	})
	phi2 := ws.apx.PotentialRT(ws.r, 2*alpha, ws.scratch, ws.pi)

	delta = par.Sum(g.M(), func(lo, hi int) float64 {
		d := 0.0
		for e := lo; e < hi; e++ {
			ed := edges[e]
			gr := ws.w1[e]*ws.invCap[e] + 2*alpha*(ws.pi[ed.V]-ws.pi[ed.U])
			ws.grad[e] = gr
			d += float64(ed.Cap) * math.Abs(gr)
		}
		return d
	})
	return phi1 + phi2, delta
}

// evalSharded is eval on the message-passing engine: the same four
// operators as sequences of barrier-synchronized supersteps with
// boundary exchange, bit-identical results, and the measured
// rounds/messages/bytes accumulated into ws.cost for charge() to
// drain into the ledger.
func (ws *workspace) evalSharded(f, bs []float64, alpha float64) (phi, delta float64) {
	e := ws.eng
	phi1, c := e.SoftMaxGradScaled(f, ws.invCap, ws.w1)
	ws.cost.Add(c)
	ws.cost.Add(e.Residual(f, bs, ws.div, ws.r))
	phi2, c := e.PotentialRT(ws.r, 2*alpha, ws.scratch.Sub, ws.scratch.PT, ws.pi)
	ws.cost.Add(c)
	delta, c = e.GradientDelta(ws.w1, ws.invCap, 2*alpha, ws.pi, ws.grad)
	ws.cost.Add(c)
	return phi1 + phi2, delta
}

// stepState carries warm-started optimizer state across continuation
// levels and across the outer AlmostRoute calls of one MaxFlow: the
// line-search scale η (so later calls skip the slow ramp from 1) and
// the last α that converged (so later calls skip re-discovering it
// through stall restarts). Deterministic: both are pure functions of
// the preceding solve sequence.
type stepState struct {
	eta   float64
	alpha float64
}

// AlmostRoute runs Algorithm 2 for the demand b with accuracy eps. The
// returned flow approximately routes b: its congestion is within
// (1+eps) of optimal and the residual b − Div(f) is small enough for
// Algorithm 1's geometric decrease (Sherman, Theorem 1.2 of [30]).
// Charged rounds are appended to ledger when non-nil.
func (s *Solver) AlmostRoute(b []float64, eps float64, cfg Config, ledger *congest.Ledger) (*RouteResult, error) {
	return s.AlmostRouteWarm(b, eps, cfg, ledger, nil)
}

// AlmostRouteWarm is AlmostRoute starting the descent from the given
// warm flow (in demand units; nil = cold start from zero). A warm flow
// near the optimum lets the run terminate in few iterations; any flow
// is safe — it only biases the initial iterate, never the guarantee.
func (s *Solver) AlmostRouteWarm(b []float64, eps float64, cfg Config, ledger *congest.Ledger, warm []float64) (*RouteResult, error) {
	return s.AlmostRouteCtx(context.Background(), b, eps, cfg, ledger, warm)
}

// AlmostRouteCtx is AlmostRouteWarm under a context. The descent checks
// ctx once per gradient iteration (and per scaling zoom), so a
// cancellation returns within one iteration's work: cancellation aborts
// with the context's error, an expired deadline stops iterating and
// returns the current iterate flagged Degraded (see RouteResult).
func (s *Solver) AlmostRouteCtx(ctx context.Context, b []float64, eps float64, cfg Config, ledger *congest.Ledger, warm []float64) (*RouteResult, error) {
	st := &stepState{eta: 1}
	return s.almostRoute(ctx, b, eps, cfg, ledger, warm, st)
}

// continuationLevels returns the ε schedule, coarse to fine, ending at
// eps. Each level is 3× coarser than the next: a level costs Θ(ε⁻²..⁻³)
// iterations, so the prefix sums are dominated by the final level while
// every level starts from the previous level's nearly-converged flow.
func continuationLevels(eps float64, cfg Config) []float64 {
	if cfg.DisableContinuation {
		return []float64{eps}
	}
	levels := []float64{eps}
	for e := eps * 3; e <= 0.6; e *= 3 {
		levels = append([]float64{e}, levels...)
	}
	return levels
}

// resolveAlpha returns the starting α for cfg. The α the descent needs
// is the congestion-approximation quality of the cut family, i.e.
// max_b opt(b)/‖Rb‖∞ — NOT the cap_T/cap_G distortion (with exact-cut
// row scaling the latter cancels entirely). That quality is measured in
// experiment E4 to sit in the low single digits on all tested families,
// and the step size pays α²: start at 2 and let the adaptive restart
// double on stall (ablation A2). The Lemma 3.3 worst case
// 2·Alpha²·AlphaLow remains available via Config.Alpha.
func resolveAlpha(cfg Config) float64 {
	alpha := cfg.Alpha
	if alpha == 0 {
		alpha = 2
	}
	if alpha < 1 {
		alpha = 1
	}
	return alpha
}

// NormalizeEps maps the zero value to the documented default accuracy
// (0.5) and rejects everything else outside (0,1) with a clear error —
// including NaN, which sails through a naive `eps <= 0 || eps >= 1`
// check (both comparisons are false) and would otherwise reach the
// gradient loop as an unreachable termination target. This is the ONE
// definition of the ε default: every solve path and every warm-cache
// key derivation must go through it (directly or via
// distflow.normalizeEps), because a second copy of the default
// silently desyncs cache keys from the accuracy a solve actually uses.
func NormalizeEps(eps float64) (float64, error) {
	if eps == 0 {
		return 0.5, nil
	}
	if math.IsNaN(eps) || eps < 0 || eps >= 1 {
		return 0, fmt.Errorf("sherman: eps %v out of (0,1)", eps)
	}
	return eps, nil
}

func (s *Solver) almostRoute(ctx context.Context, b []float64, eps float64, cfg Config, ledger *congest.Ledger, warm []float64, st *stepState) (*RouteResult, error) {
	g := s.g
	if len(b) != g.N() {
		return nil, fmt.Errorf("sherman: demand length %d, want %d", len(b), g.N())
	}
	eps, err := NormalizeEps(eps)
	if err != nil {
		return nil, err
	}
	if st.alpha == 0 {
		st.alpha = resolveAlpha(cfg)
	}
	rb := s.normRb(b, ledger)
	if rb == 0 {
		return &RouteResult{Flow: make([]float64, g.M()), AlphaUsed: st.alpha}, nil
	}
	n := float64(g.N())
	diameter := g.DiameterApprox()

	out := &RouteResult{}
	cur := warm
	for _, le := range continuationLevels(eps, cfg) {
		res, err := s.almostRouteAdaptive(ctx, b, le, cfg, n, diameter, ledger, rb, cur, st)
		if err != nil {
			return nil, err
		}
		out.Flow = res.Flow
		out.Iterations += res.Iterations
		out.Restarts += res.Restarts
		out.AlphaUsed = res.AlphaUsed
		cur = res.Flow
		if res.Degraded {
			// Deadline hit mid-level: the current iterate is the best
			// answer there will be — finer levels would only start over.
			out.Degraded = true
			break
		}
	}
	return out, nil
}

// almostRouteAdaptive wraps the fixed-α descent with the stall-doubling
// restarts of ablation A2, resuming from the α the preceding solves
// settled on.
func (s *Solver) almostRouteAdaptive(ctx context.Context, b []float64, eps float64, cfg Config, n float64, diameter int, ledger *congest.Ledger, rb float64, warm []float64, st *stepState) (*RouteResult, error) {
	restarts := 0
	for {
		res, err := s.almostRouteFixedAlpha(ctx, b, eps, st.alpha, cfg, n, diameter, ledger, rb, warm, st)
		if err == nil {
			return res, nil
		}
		if !errors.Is(err, ErrNoConvergence) || cfg.DisableAdaptiveAlpha || restarts >= 6 {
			return nil, err
		}
		// Stall: the measured α under-estimated the true approximation
		// ratio; double and restart (engineering fallback documented in
		// DESIGN.md ablation A2).
		st.alpha *= 2
		restarts++
	}
}

func (s *Solver) almostRouteFixedAlpha(ctx context.Context, b []float64, eps, alpha float64, cfg Config, n float64, diameter int, ledger *congest.Ledger, rb float64, warm []float64, st *stepState) (*RouteResult, error) {
	g := s.g
	ws := s.getWS()
	defer s.putWS(ws)
	target := 16 * math.Log(n+2) / eps

	// Initial scaling: 2α‖R(σb)‖∞ = target (Algorithm 2 line 1). With a
	// warm start the scale is chosen so that the warm flow's φ1 also
	// starts inside the working range — σ = target/max(2α‖Rb‖∞, cong(w))
	// — which skips most of the 17/16 zoom steps.
	sigma := target / (2 * alpha * rb)
	f := ws.f
	if warm != nil {
		if cw := g.MaxCongestion(warm); cw > 0 && target/cw < sigma {
			sigma = target / cw
		}
		par.For(len(f), func(lo, hi int) {
			for e := lo; e < hi; e++ {
				f[e] = sigma * warm[e]
			}
		})
	} else {
		par.For(len(f), func(lo, hi int) {
			for e := lo; e < hi; e++ {
				f[e] = 0
			}
		})
	}
	bs := ws.bs
	par.For(len(bs), func(lo, hi int) {
		for v := lo; v < hi; v++ {
			bs[v] = sigma * b[v]
		}
	})

	maxIters := cfg.MaxIters
	if maxIters == 0 {
		maxIters = 50 * int(math.Ceil(alpha*alpha*math.Pow(eps, -3)*math.Log(n+2)))
		if maxIters > 2_000_000 {
			maxIters = 2_000_000
		}
	}
	step := 1 / (1 + 4*alpha*alpha)

	// Backtracking line search around the theoretical step: Algorithm 2's
	// step size δ/(1+4α²) guarantees potential decrease but its constant
	// is enormous in practice; we scale it by an adaptive factor η ≥ 1
	// that grows while steps keep decreasing φ and shrinks (with the
	// step retried) when they overshoot. At η = 1 the step is accepted
	// unconditionally — exactly the paper's rule — so the worst case
	// matches Sherman's O(α²ε⁻³ log n) bound while typical runs take
	// orders of magnitude fewer iterations. Rejected probes charge their
	// distributed evaluation rounds like accepted ones. η is warm-started
	// from the preceding solve (stepState), skipping the ramp from 1.
	iters := 0
	restarts := 0
	eta := math.Max(1, st.eta)
	stepVec := ws.stepVec
	fTry := ws.fTry
	fPrev := ws.fPrev

	// Momentum mode: an explicit Config.Momentum keeps the legacy fixed
	// heavy-ball coefficient; otherwise the default is the accelerated
	// schedule μ_k = k/(k+3) (Nesterov's θ-sequence) over the k accepted
	// steps since the last restart. Both are safeguarded: a momentum
	// step that fails to decrease φ is retried without the term, which
	// for the accelerated schedule is a potential-monotonicity restart
	// (k returns to 0 and the sequence rebuilds).
	heavyBall := cfg.Momentum > 0
	accel := !heavyBall && !cfg.DisableAcceleration
	trackPrev := heavyBall || accel
	k := 0
	useMomentum := false

	phi, delta := ws.eval(f, bs, alpha)
	charge := func() {
		measured := ws.cost
		ws.cost = shard.Cost{}
		if ledger != nil {
			// Two R-applications (Cor. 9.3) + two BFS aggregations per
			// potential/gradient evaluation (§9.1).
			ledger.ChargeAccounted("gradient", s.apx.EvalRounds(g.N(), diameter)*2+2*int64(diameter+1))
			if measured != (shard.Cost{}) {
				ledger.ChargeExchange("gradient", measured.Rounds, measured.Messages, measured.Bytes)
			}
		}
	}
	charge()
	// degradeNow materializes the current iterate as a Degraded result:
	// unscale f exactly like the convergence path does, so the flow is in
	// demand units and the caller's residual tree-routing applies
	// unchanged.
	degradeNow := func() *RouteResult {
		out := make([]float64, len(f))
		inv := 1 / sigma
		fcur := f
		par.For(len(fcur), func(lo, hi int) {
			for e := lo; e < hi; e++ {
				out[e] = fcur[e] * inv
			}
		})
		st.eta = eta
		return &RouteResult{Flow: out, Iterations: iters, Restarts: restarts, AlphaUsed: alpha, Degraded: true}
	}
	//distflow:poll gradient-iteration granule (DESIGN.md §11)
	for {
		// One context poll per gradient iteration: cancelled work returns
		// inside one iteration's budget, an expired deadline degrades to
		// the current iterate.
		if deg, cerr := ctxStatus(ctx); cerr != nil {
			return nil, cerr
		} else if deg {
			return degradeNow(), nil
		}
		// Scaling loop (lines 4-5): zoom until the potential reaches the
		// working range Θ(ε⁻¹ log n).
		//distflow:poll scaling sweeps are full-length passes
		for phi < target {
			if deg, cerr := ctxStatus(ctx); cerr != nil {
				return nil, cerr
			} else if deg {
				return degradeNow(), nil
			}
			par.For(len(f), func(lo, hi int) {
				for e := lo; e < hi; e++ {
					f[e] *= 17.0 / 16
				}
			})
			par.For(len(bs), func(lo, hi int) {
				for v := lo; v < hi; v++ {
					bs[v] *= 17.0 / 16
				}
			})
			sigma *= 17.0 / 16
			phi, delta = ws.eval(f, bs, alpha)
			charge()
		}
		if delta < eps/4 {
			out := make([]float64, len(f))
			inv := 1 / sigma
			par.For(len(f), func(lo, hi int) {
				for e := lo; e < hi; e++ {
					out[e] = f[e] * inv
				}
			})
			st.eta = eta
			return &RouteResult{Flow: out, Iterations: iters, Restarts: restarts, AlphaUsed: alpha}, nil
		}
		edges := g.Edges()
		par.For(len(edges), func(lo, hi int) {
			for e := lo; e < hi; e++ {
				stepVec[e] = numutil.Sgn(ws.grad[e]) * float64(edges[e].Cap) * delta * step
			}
		})
		//distflow:poll backtracking probes are full potential evaluations
		for {
			// Backtracking probes are full potential evaluations too —
			// poll per probe so rejected-step streaks stay cancellable.
			if deg, cerr := ctxStatus(ctx); cerr != nil {
				return nil, cerr
			} else if deg {
				return degradeNow(), nil
			}
			mu := 0.0
			if useMomentum {
				if heavyBall {
					mu = cfg.Momentum
				} else {
					mu = math.Min(float64(k)/float64(k+3), muCap)
				}
			}
			if mu > 0 {
				par.For(len(fTry), func(lo, hi int) {
					for e := lo; e < hi; e++ {
						fTry[e] = f[e] - eta*stepVec[e] + mu*(f[e]-fPrev[e])
					}
				})
			} else {
				par.For(len(fTry), func(lo, hi int) {
					for e := lo; e < hi; e++ {
						fTry[e] = f[e] - eta*stepVec[e]
					}
				})
			}
			phiTry, deltaTry := ws.eval(fTry, bs, alpha)
			charge()
			iters++
			if iters > maxIters {
				return nil, fmt.Errorf("%w after %d iterations (alpha=%v, eps=%v)", ErrNoConvergence, iters, alpha, eps)
			}
			decreased := phiTry < phi
			if decreased || (eta <= 1 && mu == 0) {
				if trackPrev {
					copy(fPrev, f)
				}
				f, fTry = fTry, f
				phi, delta = phiTry, deltaTry
				if decreased {
					// decreased at this η: try a larger one next time
					eta = math.Min(eta*1.25, 1024)
					k++
					useMomentum = trackPrev
				} else {
					// forced paper-rule step without decrease: the local
					// model is off, rebuild the momentum sequence
					k = 0
				}
				break
			}
			// Safeguard order: first drop the momentum term (a
			// potential-monotonicity restart of the accelerated
			// sequence), then shrink the step back toward the paper's
			// guaranteed size.
			if useMomentum {
				useMomentum = false
				k = 0
				restarts++
				continue
			}
			eta = math.Max(eta/2, 1)
		}
	}
}

// AlmostRoute runs Algorithm 2 on a throwaway Solver. Long-lived
// callers should construct a Solver (or distflow.Router) and use its
// methods so workspaces are pooled across queries.
func AlmostRoute(g *graph.Graph, apx *capprox.Approximator, b []float64, eps float64, cfg Config, ledger *congest.Ledger) (*RouteResult, error) {
	return NewSolver(g, apx).AlmostRoute(b, eps, cfg, ledger)
}

// FlowResult is the outcome of the top-level max-flow computation.
type FlowResult struct {
	// Value is the achieved s-t flow value (≥ maxflow/(1+ε) up to the
	// residual-routing slack; experiments record the realized ratio).
	Value float64
	// Flow is an exactly-conserving, capacity-feasible s-t flow of the
	// stated value.
	Flow []float64
	// Congestion is the pre-scaling congestion of routing the unit
	// demand; 1/Congestion = Value.
	Congestion float64
	// Iterations totals gradient steps across all AlmostRoute calls.
	Iterations int
	// Restarts totals momentum restarts across all AlmostRoute calls.
	Restarts int
	// Outer is the number of Algorithm 1 repetitions executed.
	Outer int
	// AlphaUsed is the largest α any AlmostRoute call settled on.
	AlphaUsed float64
	// Escalations counts quality escalations: full re-solves at a 4×
	// boosted α after the measured residual certificate failed at the
	// end of the outer loop — the congestion approximator was weaker
	// than the working α assumed (possible after aggressive topology
	// churn, or for an unlucky tree sample), so the descent "converged"
	// while leaving real residual behind. 0 on healthy queries.
	Escalations int
	// Degraded reports a best-effort answer: the context's deadline
	// expired before the outer loop met its residual certificate, so the
	// result is the current iterate with its residual tree-routed. The
	// flow is still exactly conserving and capacity-feasible (the final
	// rescale guarantees that unconditionally); what is lost is the
	// (1+ε) optimality guarantee, replaced by the measured CertBound.
	Degraded bool
	// CertBound is the measured quality certificate of this answer:
	// Value ≥ OPT/CertBound, from the cut bound ‖Rb‖∞ ≤ congestion of
	// any routing of b (true cut rows under the default exact-cut
	// scaling), so OPT ≤ 1/‖Rb‖∞ while Value = 1/cong(total) — giving
	// OPT/Value ≤ cong(total)/‖Rb‖∞ = CertBound. Healthy queries sit at
	// ≈ 1+ε; degraded answers report however far the iterate got. Under
	// Config-level PaperScaling the rows are virtual-capacity scaled and
	// the bound is an estimate, not a certificate.
	CertBound float64
	// Ledger holds the charged rounds for the flow computation phases
	// (approximator construction is ledgered separately in capprox).
	Ledger *congest.Ledger
}

// MaxFlow runs Algorithm 1 for the s-t pair: route the unit s-t demand
// near-optimally, drive the residual down over AlmostRoute calls, route
// the leftovers exactly on a maximum-weight spanning tree, and rescale
// the combined flow to feasibility. The value of the result is a
// (1+ε)(1+o(1))-approximation of the maximum flow.
func (s *Solver) MaxFlow(src, dst int, cfg Config) (*FlowResult, error) {
	return s.MaxFlowWarm(src, dst, cfg, nil)
}

// MaxFlowWarm is MaxFlow with the first AlmostRoute call warm-started
// from the given routing of the unit s-t demand (nil = cold start).
// Callers obtain such a routing from a previous result of the same
// query as Flow/Value (the distflow.Router's warm cache does exactly
// this). The warm flow only biases the initial iterate: the returned
// flow satisfies the same (1+ε) guarantee, but is generally not
// bit-identical to the cold-started result (DESIGN.md §5).
func (s *Solver) MaxFlowWarm(src, dst int, cfg Config, warm []float64) (*FlowResult, error) {
	return s.MaxFlowCtx(context.Background(), src, dst, cfg, warm)
}

// MaxFlowCtx is MaxFlowWarm under a context. Cancellation (ctx.Err() ==
// context.Canceled) aborts the solve with the context's error within one
// descent-iteration granule. A deadline expiry instead degrades: the
// outer loop stops where it is, the current iterate's residual is
// tree-routed so the answer stays exactly conserving and feasible, and
// the result comes back with Degraded=true and the measured CertBound —
// a best-effort answer, never an error. Degraded results depend on
// timing and must not be cached or compared bit-for-bit.
//
// A context that carries a deadline also caps quality escalations at
// one (instead of 4): escalations restart the whole solve, and a caller
// with a time budget prefers the current iterate over a from-scratch
// retry it likely cannot afford.
func (s *Solver) MaxFlowCtx(ctx context.Context, src, dst int, cfg Config, warm []float64) (*FlowResult, error) {
	g := s.g
	if src == dst || src < 0 || dst < 0 || src >= g.N() || dst >= g.N() {
		return nil, fmt.Errorf("sherman: invalid terminals %d, %d", src, dst)
	}
	eps, err := NormalizeEps(cfg.Epsilon)
	if err != nil {
		return nil, err
	}
	tr, err := s.stTree()
	if err != nil {
		return nil, err
	}
	ledger := congest.NewLedger()
	b := graph.STDemand(g.N(), src, dst, 1)

	outer := cfg.OuterIters
	if outer == 0 {
		outer = int(math.Ceil(math.Log2(float64(g.M()+2)))) + 1
	}

	// AlphaUsed must report a valid α even when the certificate
	// short-circuit below skips every gradient step; the descent raises
	// it when adaptive restarts fire.
	res := &FlowResult{Ledger: ledger, AlphaUsed: resolveAlpha(cfg)}
	total := make([]float64, g.M())
	resid := append([]float64(nil), b...)
	norm0 := s.normRb(b, ledger)
	var fTree []float64

	// Certificate short-circuit for warm starts: a cached routing of the
	// same unit demand is usually exactly conserving, so its residual
	// passes the tree-routing certificate below outright — the gradient
	// loop is skipped and the query is served by rescaling (bit-identical
	// to the cached answer when the residual is exactly met). A warm
	// vector that fails the certificate (stale or partial) falls through
	// to a warm-started descent.
	skip := false
	if warm != nil {
		copy(total, warm)
		div := g.Divergence(total)
		par.For(len(resid), func(lo, hi int) {
			for v := lo; v < hi; v++ {
				resid[v] = b[v] - div[v]
			}
		})
		fTree = tr.route(resid)
		if g.MaxCongestion(fTree) <= 0.01*eps*g.MaxCongestion(total) {
			skip = true
		} else {
			for e := range total {
				total[e] = 0
			}
			copy(resid, b)
			fTree = nil
		}
	}
	// Quality-escalation loop around Algorithm 1: run the outer
	// AlmostRoute loop at the working α; if it exhausts its repetitions
	// with the measured residual certificate still unmet, the
	// approximator's real quality is worse than α assumed — the descent
	// kept "converging" while R under-weighted the leftover residual —
	// so the whole solve retries at 4× the α (the premature-convergence
	// analogue of the stall-doubling restarts of ablation A2). Healthy
	// queries never enter a second attempt.
	const maxEscalations = 4
	maxEsc := maxEscalations
	if _, hasDeadline := ctx.Deadline(); hasDeadline {
		maxEsc = 1
	}
	baseAlpha := resolveAlpha(cfg)
	degraded := false
	for attempt := 0; !skip; attempt++ {
		st := &stepState{eta: 1, alpha: baseAlpha * math.Pow(4, float64(attempt))}
		certMet := false
		//distflow:poll Algorithm-1 outer iterations poll before each almostRoute level
		for i := 0; i < outer; i++ {
			if deg, cerr := ctxStatus(ctx); cerr != nil {
				return nil, cerr
			} else if deg {
				degraded = true
				break
			}
			epsI := 0.5
			if i == 0 {
				epsI = eps
			}
			var w []float64
			if i == 0 && attempt == 0 {
				w = warm
			}
			rr, err := s.almostRoute(ctx, resid, epsI, cfg, ledger, w, st)
			if err != nil {
				if errors.Is(err, context.Canceled) {
					return nil, err
				}
				return nil, fmt.Errorf("sherman: outer %d: %w", i, err)
			}
			res.Iterations += rr.Iterations
			res.Restarts += rr.Restarts
			if rr.AlphaUsed > res.AlphaUsed {
				res.AlphaUsed = rr.AlphaUsed
			}
			par.For(len(total), func(lo, hi int) {
				for e := lo; e < hi; e++ {
					total[e] += rr.Flow[e]
				}
			})
			div := g.Divergence(total)
			par.For(len(resid), func(lo, hi int) {
				for v := lo; v < hi; v++ {
					resid[v] = b[v] - div[v]
				}
			})
			res.Outer++
			if rr.Degraded {
				// The descent already salvaged its current iterate; keep
				// the partial flow and fall through to tree-route the
				// remaining residual below.
				degraded = true
				fTree = nil
				break
			}
			// Measured residual certificate: tree-route the current
			// residual and stop once its congestion is negligible at the
			// target accuracy — the tree flow is about to be added
			// verbatim, so cong(fTree) ≤ ε/100·cong(total) bounds the
			// final perturbation directly (no approximator slack
			// involved). This replaces the fixed 1e-9 norm cutoff, which
			// over-solved by 2-3 outer rounds on typical instances
			// (DESIGN.md §5).
			fTree = tr.route(resid)
			if g.MaxCongestion(fTree) <= 0.01*eps*g.MaxCongestion(total) ||
				s.normRb(resid, ledger) <= norm0*1e-9 {
				certMet = true
				break
			}
		}
		if certMet || degraded || attempt >= maxEsc {
			break
		}
		// Escalate: restart the solve from zero at a boosted α.
		res.Escalations++
		par.For(len(total), func(lo, hi int) {
			for e := lo; e < hi; e++ {
				total[e] = 0
			}
		})
		copy(resid, b)
		fTree = nil
	}
	if fTree == nil {
		fTree = tr.route(resid)
	}

	// Lemma 9.1: route the residual demand on a maximum-weight spanning
	// tree — routing on trees is exact, restoring conservation.
	for e := range total {
		total[e] += fTree[e]
	}
	sq := int64(math.Ceil(math.Sqrt(float64(g.N()))))
	ledger.ChargeAccounted("residual-tree-routing", int64(g.DiameterApprox())+sq)

	cong := g.MaxCongestion(total)
	if cong == 0 {
		return nil, fmt.Errorf("sherman: zero flow produced")
	}
	res.Congestion = cong
	res.Value = 1 / cong
	res.Degraded = degraded
	if norm0 > 0 {
		res.CertBound = cong / norm0
	}
	res.Flow = make([]float64, g.M())
	for e := range total {
		res.Flow[e] = total[e] / cong
	}
	return res, nil
}

// MaxFlow runs Algorithm 1 on a throwaway Solver; see Solver.MaxFlow.
func MaxFlow(g *graph.Graph, apx *capprox.Approximator, s, t int, cfg Config) (*FlowResult, error) {
	return NewSolver(g, apx).MaxFlow(s, t, cfg)
}

// RouteResidualOnST routes the (feasible: Σb=0) demand b exactly on the
// Solver's cached maximum-weight spanning tree; see RouteOnMaxWeightST.
func (s *Solver) RouteResidualOnST(b []float64) ([]float64, error) {
	tr, err := s.stTree()
	if err != nil {
		return nil, err
	}
	return tr.route(b), nil
}

// stRouter routes demands exactly on the maximum-weight spanning tree
// of g. The tree, its BFS parent structure, and the per-vertex edge
// orientations are computed once and reused for every residual-routing
// call (each call was previously a fresh Kruskal + BFS).
type stRouter struct {
	t          *vtree.VTree
	parentEdge []int
	orient     []float64
	m          int
}

func newSTRouter(g *graph.Graph) (*stRouter, error) {
	inTree, _ := mst.Kruskal(g, true)
	n := g.N()
	root := 0
	for root < n && g.Removed(root) {
		root++
	}
	if root == n {
		return nil, fmt.Errorf("sherman: no active vertex")
	}
	parent := make([]int, n)
	parentEdge := make([]int, n)
	for v := range parent {
		parent[v] = -2
		parentEdge[v] = -1
	}
	parent[root] = -1
	queue := []int{root}
	// BFS over the graph's live adjacency (base CSR plus any churn
	// overlay), filtering to tree edges inline.
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		g.ForEachArc(v, func(a graph.Arc) {
			if inTree[a.E] && parent[a.To] == -2 {
				parent[a.To] = v
				parentEdge[a.To] = a.E
				queue = append(queue, a.To)
			}
		})
	}
	for v, p := range parent {
		if p == -2 {
			if g.Removed(v) {
				// Removed vertices carry no demand; hang them off the
				// root as inert leaves so the tree stays spanning.
				parent[v] = root
				continue
			}
			return nil, fmt.Errorf("sherman: graph disconnected at %d", v)
		}
	}
	t, err := vtree.New(root, parent, nil)
	if err != nil {
		return nil, err
	}
	orient := make([]float64, n)
	for v := 0; v < n; v++ {
		if v != root && parentEdge[v] >= 0 {
			orient[v] = g.Orientation(parentEdge[v], v)
		}
	}
	return &stRouter{t: t, parentEdge: parentEdge, orient: orient, m: g.M()}, nil
}

// route returns the per-edge flow meeting b exactly on the tree.
func (tr *stRouter) route(b []float64) []float64 {
	sums := tr.t.RouteDemand(b)
	f := make([]float64, tr.m)
	for v := range sums {
		if v == tr.t.Root || tr.parentEdge[v] < 0 {
			// Root, or an inert removed-vertex leaf (whose subtree sum is
			// 0 for any live demand).
			continue
		}
		// sums[v] flows from v toward parent[v].
		f[tr.parentEdge[v]] += sums[v] * tr.orient[v]
	}
	return f
}

// RouteOnMaxWeightST routes the (feasible: Σb=0) demand b exactly on
// the maximum-weight spanning tree of g (weights = capacities) and
// returns the per-edge flow. This is the centralized counterpart of the
// Lemma 9.1 protocol; internal/mst provides the message-passing
// construction of the same tree (identical under the shared tie-break).
func RouteOnMaxWeightST(g *graph.Graph, b []float64) ([]float64, error) {
	tr, err := newSTRouter(g)
	if err != nil {
		return nil, err
	}
	return tr.route(b), nil
}
