// Package sherman implements the gradient-descent flow solver of
// Sherman that the paper makes distributed (§9): Algorithm 2
// (AlmostRoute) minimizes the potential
//
//	φ(f) = smax(C⁻¹f) + smax(2α·R·(b − Bf)),
//
// where R is the congestion approximator of internal/capprox, and
// Algorithm 1 composes O(log m) AlmostRoute calls with a final
// maximum-weight-spanning-tree routing of the leftover demand
// (Lemma 9.1) into an exactly-conserving, capacity-feasible
// (1+ε)-approximate maximum flow.
//
// Sign conventions (documented in internal/graph): b[v] is the supply
// injected at v; a flow f meets b when Divergence(f) = b; the residual
// demand is r = b − Divergence(f). The gradient of φ2 at edge e=(u,v)
// is 2α(π_v − π_u) for the node potentials π = Rᵀ·∇smax(y), Eq. (3)/(4).
//
// Every gradient iteration charges the distributed cost of its two
// R-applications (Corollary 9.3) and its BFS-tree aggregations to the
// ledger, using the measured tree count and diameter.
package sherman

import (
	"errors"
	"fmt"
	"math"

	"distflow/internal/capprox"
	"distflow/internal/congest"
	"distflow/internal/graph"
	"distflow/internal/mst"
	"distflow/internal/numutil"
	"distflow/internal/par"
	"distflow/internal/vtree"
)

// Config tunes the solver. The zero value selects the paper's
// parameters.
type Config struct {
	// Epsilon is the approximation target (default 0.5).
	Epsilon float64
	// Alpha overrides the congestion-approximator quality parameter α
	// used in the potential (default 2·Alpha²·AlphaLow from the
	// measured approximator distortion, the Lemma 3.3 composition).
	Alpha float64
	// MaxIters bounds gradient iterations per AlmostRoute call
	// (default 200·⌈α²·ε⁻³·ln n⌉, a generous multiple of the paper's
	// O(α²ε⁻³log n) bound).
	MaxIters int
	// DisableAdaptiveAlpha turns off the stall-doubling of α
	// (ablation A2: paper-faithful fixed step size).
	DisableAdaptiveAlpha bool
	// Momentum enables a safeguarded heavy-ball term μ·(f_k − f_{k-1})
	// on top of the gradient step. Sherman's footnote 3 notes that
	// Nesterov's accelerated method improves the ε⁻³ iteration bound to
	// ε⁻²; this option explores that territory while retaining the
	// fixed-step fallback (momentum is dropped whenever a step fails to
	// decrease the potential, so the worst case is unchanged). 0 = off;
	// typical value 0.9.
	Momentum float64
	// OuterIters bounds Algorithm 1 repetitions (default ⌈log₂ m⌉+1).
	OuterIters int
}

// ErrNoConvergence is returned when AlmostRoute exhausts its iteration
// budget even after adaptive-α restarts.
var ErrNoConvergence = errors.New("sherman: gradient descent did not converge")

// RouteResult is the outcome of AlmostRoute.
type RouteResult struct {
	// Flow is the computed (near-)routing of the demand.
	Flow []float64
	// Iterations is the number of gradient steps performed.
	Iterations int
	// AlphaUsed is the α the run converged with (≥ Config.Alpha when
	// adaptive restarts fired).
	AlphaUsed float64
}

type workspace struct {
	g     *graph.Graph
	apx   *capprox.Approximator
	alpha float64
	// flat index of (tree, non-root vertex) pairs for φ2
	treeOf []int
	vertOf []int
	y      []float64
	w2     []float64
	prices [][]float64
	x      []float64
	w1     []float64
	grad   []float64
	// reused per-iteration buffers for the R/Rᵀ applications
	div      []float64
	r        []float64
	rr       [][]float64
	pi       []float64
	ptSweeps [][]float64
}

func newWorkspace(g *graph.Graph, apx *capprox.Approximator, alpha float64) *workspace {
	ws := &workspace{g: g, apx: apx, alpha: alpha}
	for k, t := range apx.Trees {
		for v := 0; v < t.N(); v++ {
			if v != t.Root {
				ws.treeOf = append(ws.treeOf, k)
				ws.vertOf = append(ws.vertOf, v)
			}
		}
	}
	ws.y = make([]float64, len(ws.treeOf))
	ws.w2 = make([]float64, len(ws.treeOf))
	ws.prices = make([][]float64, len(apx.Trees))
	ws.rr = make([][]float64, len(apx.Trees))
	ws.ptSweeps = make([][]float64, len(apx.Trees))
	for k, t := range apx.Trees {
		ws.prices[k] = make([]float64, t.N())
		ws.rr[k] = make([]float64, t.N())
		ws.ptSweeps[k] = make([]float64, t.N())
	}
	ws.x = make([]float64, g.M())
	ws.w1 = make([]float64, g.M())
	ws.grad = make([]float64, g.M())
	ws.div = make([]float64, g.N())
	ws.r = make([]float64, g.N())
	ws.pi = make([]float64, g.N())
	return ws
}

// eval computes φ(f), the gradient, and δ = Σ_e cap_e·|grad_e| for the
// scaled demand bs. Every stage runs chunk-parallel on the shared
// worker pool (internal/par): the per-edge maps and the soft-max are
// element-wise or chunk-reduced, the R/Rᵀ applications are
// tree-parallel, and the δ reduction combines per-chunk partials in
// fixed chunk order — so eval is a pure function of (f, bs) at every
// worker count.
func (ws *workspace) eval(f, bs []float64) (phi, delta float64) {
	g := ws.g
	edges := g.Edges()
	// φ1 = smax(C⁻¹f).
	par.For(g.M(), func(lo, hi int) {
		for e := lo; e < hi; e++ {
			ws.x[e] = f[e] / float64(edges[e].Cap)
		}
	})
	phi1 := numutil.SoftMaxGradPar(ws.x, ws.w1)

	// φ2 = smax(2α·R·r), r = bs − Div(f).
	g.DivergenceInto(f, ws.div)
	par.For(g.N(), func(lo, hi int) {
		for v := lo; v < hi; v++ {
			ws.r[v] = bs[v] - ws.div[v]
		}
	})
	ws.apx.ApplyRInto(ws.r, ws.rr)
	par.For(len(ws.y), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ws.y[i] = 2 * ws.alpha * ws.rr[ws.treeOf[i]][ws.vertOf[i]]
		}
	})
	phi2 := numutil.SoftMaxGradPar(ws.y, ws.w2)

	// Node potentials π = Rᵀ·w2 (Eq. 4). Every non-root (tree, vertex)
	// slot appears exactly once in the flat index, so the scatter
	// overwrites all price entries ApplyRT reads; root entries are
	// ignored by the sweep.
	par.For(len(ws.w2), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ws.prices[ws.treeOf[i]][ws.vertOf[i]] = ws.w2[i]
		}
	})
	ws.apx.ApplyRTInto(ws.prices, ws.pi, ws.ptSweeps)

	delta = par.Sum(g.M(), func(lo, hi int) float64 {
		d := 0.0
		for e := lo; e < hi; e++ {
			ed := edges[e]
			gr := ws.w1[e]/float64(ed.Cap) + 2*ws.alpha*(ws.pi[ed.V]-ws.pi[ed.U])
			ws.grad[e] = gr
			d += float64(ed.Cap) * math.Abs(gr)
		}
		return d
	})
	return phi1 + phi2, delta
}

// AlmostRoute runs Algorithm 2 for the demand b with accuracy eps. The
// returned flow approximately routes b: its congestion is within
// (1+eps) of optimal and the residual b − Div(f) is small enough for
// Algorithm 1's geometric decrease (Sherman, Theorem 1.2 of [30]).
// Charged rounds are appended to ledger when non-nil.
func AlmostRoute(g *graph.Graph, apx *capprox.Approximator, b []float64, eps float64, cfg Config, ledger *congest.Ledger) (*RouteResult, error) {
	if len(b) != g.N() {
		return nil, fmt.Errorf("sherman: demand length %d, want %d", len(b), g.N())
	}
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("sherman: eps %v out of (0,1)", eps)
	}
	alpha := cfg.Alpha
	if alpha == 0 {
		// The α the descent needs is the congestion-approximation
		// quality of the cut family, i.e. max_b opt(b)/‖Rb‖∞ — NOT the
		// cap_T/cap_G distortion (with exact-cut row scaling the latter
		// cancels entirely). That quality is measured in experiment E4
		// to sit in the low single digits on all tested families, and
		// the step size pays α²: start at 2 and let the adaptive
		// restart double on stall (ablation A2). The Lemma 3.3 worst
		// case 2·Alpha²·AlphaLow remains available via Config.Alpha.
		alpha = 2
	}
	if alpha < 1 {
		alpha = 1
	}
	n := float64(g.N())
	diameter := g.DiameterApprox()

	rb := apx.NormRb(b)
	if rb == 0 {
		return &RouteResult{Flow: make([]float64, g.M()), AlphaUsed: alpha}, nil
	}

	restarts := 0
	for {
		res, err := almostRouteFixedAlpha(g, apx, b, eps, alpha, cfg, n, diameter, ledger, rb)
		if err == nil {
			return res, nil
		}
		if !errors.Is(err, ErrNoConvergence) || cfg.DisableAdaptiveAlpha || restarts >= 6 {
			return nil, err
		}
		// Stall: the measured α under-estimated the true approximation
		// ratio; double and restart (engineering fallback documented in
		// DESIGN.md ablation A2).
		alpha *= 2
		restarts++
	}
}

func almostRouteFixedAlpha(g *graph.Graph, apx *capprox.Approximator, b []float64, eps, alpha float64, cfg Config, n float64, diameter int, ledger *congest.Ledger, rb float64) (*RouteResult, error) {
	ws := newWorkspace(g, apx, alpha)
	target := 16 * math.Log(n+2) / eps

	// Initial scaling: 2α‖R(σb)‖∞ = target (Algorithm 2 line 1).
	sigma := target / (2 * alpha * rb)
	bs := make([]float64, g.N())
	for v := range bs {
		bs[v] = sigma * b[v]
	}
	f := make([]float64, g.M())

	maxIters := cfg.MaxIters
	if maxIters == 0 {
		maxIters = 50 * int(math.Ceil(alpha*alpha*math.Pow(eps, -3)*math.Log(n+2)))
		if maxIters > 2_000_000 {
			maxIters = 2_000_000
		}
	}
	step := 1 / (1 + 4*alpha*alpha)

	// Backtracking line search around the theoretical step: Algorithm 2's
	// step size δ/(1+4α²) guarantees potential decrease but its constant
	// is enormous in practice; we scale it by an adaptive factor η ≥ 1
	// that grows while steps keep decreasing φ and shrinks (with the
	// step retried) when they overshoot. At η = 1 the step is accepted
	// unconditionally — exactly the paper's rule — so the worst case
	// matches Sherman's O(α²ε⁻³ log n) bound while typical runs take
	// orders of magnitude fewer iterations. Rejected probes charge their
	// distributed evaluation rounds like accepted ones.
	iters := 0
	eta := 1.0
	stepVec := make([]float64, g.M())
	fTry := make([]float64, g.M())
	var fPrev []float64
	if cfg.Momentum > 0 {
		fPrev = append([]float64(nil), f...)
	}
	useMomentum := false
	phi, delta := ws.eval(f, bs)
	charge := func() {
		if ledger != nil {
			// Two R-applications (Cor. 9.3) + two BFS aggregations per
			// potential/gradient evaluation (§9.1).
			ledger.ChargeAccounted("gradient", apx.EvalRounds(g.N(), diameter)*2+2*int64(diameter+1))
		}
	}
	charge()
	for {
		// Scaling loop (lines 4-5): zoom until the potential reaches the
		// working range Θ(ε⁻¹ log n).
		for phi < target {
			par.For(len(f), func(lo, hi int) {
				for e := lo; e < hi; e++ {
					f[e] *= 17.0 / 16
				}
			})
			par.For(len(bs), func(lo, hi int) {
				for v := lo; v < hi; v++ {
					bs[v] *= 17.0 / 16
				}
			})
			sigma *= 17.0 / 16
			phi, delta = ws.eval(f, bs)
			charge()
		}
		if delta < eps/4 {
			out := make([]float64, len(f))
			par.For(len(f), func(lo, hi int) {
				for e := lo; e < hi; e++ {
					out[e] = f[e] / sigma
				}
			})
			return &RouteResult{Flow: out, Iterations: iters, AlphaUsed: alpha}, nil
		}
		edges := g.Edges()
		par.For(len(edges), func(lo, hi int) {
			for e := lo; e < hi; e++ {
				stepVec[e] = numutil.Sgn(ws.grad[e]) * float64(edges[e].Cap) * delta * step
			}
		})
		for {
			if useMomentum {
				mu := cfg.Momentum
				par.For(len(fTry), func(lo, hi int) {
					for e := lo; e < hi; e++ {
						fTry[e] = f[e] - eta*stepVec[e] + mu*(f[e]-fPrev[e])
					}
				})
			} else {
				par.For(len(fTry), func(lo, hi int) {
					for e := lo; e < hi; e++ {
						fTry[e] = f[e] - eta*stepVec[e]
					}
				})
			}
			phiTry, deltaTry := ws.eval(fTry, bs)
			charge()
			iters++
			if iters > maxIters {
				return nil, fmt.Errorf("%w after %d iterations (alpha=%v, eps=%v)", ErrNoConvergence, iters, alpha, eps)
			}
			decreased := phiTry < phi
			if decreased || (eta <= 1 && !useMomentum) {
				if fPrev != nil {
					copy(fPrev, f)
				}
				f, fTry = fTry, f
				phi, delta = phiTry, deltaTry
				if decreased {
					// decreased at this η: try a larger one next time
					eta = math.Min(eta*1.25, 1024)
					useMomentum = cfg.Momentum > 0
				}
				break
			}
			// Safeguard order: first drop the momentum term, then shrink
			// the step back toward the paper's guaranteed size.
			if useMomentum {
				useMomentum = false
				continue
			}
			eta = math.Max(eta/2, 1)
		}
	}
}

// FlowResult is the outcome of the top-level max-flow computation.
type FlowResult struct {
	// Value is the achieved s-t flow value (≥ maxflow/(1+ε) up to the
	// residual-routing slack; experiments record the realized ratio).
	Value float64
	// Flow is an exactly-conserving, capacity-feasible s-t flow of the
	// stated value.
	Flow []float64
	// Congestion is the pre-scaling congestion of routing the unit
	// demand; 1/Congestion = Value.
	Congestion float64
	// Iterations totals gradient steps across all AlmostRoute calls.
	Iterations int
	// Outer is the number of Algorithm 1 repetitions executed.
	Outer int
	// AlphaUsed is the largest α any AlmostRoute call settled on.
	AlphaUsed float64
	// Ledger holds the charged rounds for the flow computation phases
	// (approximator construction is ledgered separately in capprox).
	Ledger *congest.Ledger
}

// MaxFlow runs Algorithm 1 for the s-t pair: route the unit s-t demand
// near-optimally, drive the residual down over O(log m) AlmostRoute
// calls, route the leftovers exactly on a maximum-weight spanning tree,
// and rescale the combined flow to feasibility. The value of the result
// is a (1+ε)(1+o(1))-approximation of the maximum flow.
func MaxFlow(g *graph.Graph, apx *capprox.Approximator, s, t int, cfg Config) (*FlowResult, error) {
	if s == t || s < 0 || t < 0 || s >= g.N() || t >= g.N() {
		return nil, fmt.Errorf("sherman: invalid terminals %d, %d", s, t)
	}
	eps := cfg.Epsilon
	if eps == 0 {
		eps = 0.5
	}
	ledger := congest.NewLedger()
	b := graph.STDemand(g.N(), s, t, 1)

	outer := cfg.OuterIters
	if outer == 0 {
		outer = int(math.Ceil(math.Log2(float64(g.M()+2)))) + 1
	}

	res := &FlowResult{Ledger: ledger}
	total := make([]float64, g.M())
	resid := append([]float64(nil), b...)
	norm0 := apx.NormRb(b)
	for i := 0; i < outer; i++ {
		epsI := eps
		if i > 0 {
			epsI = 0.5
		}
		rr, err := AlmostRoute(g, apx, resid, epsI, cfg, ledger)
		if err != nil {
			return nil, fmt.Errorf("sherman: outer %d: %w", i, err)
		}
		res.Iterations += rr.Iterations
		if rr.AlphaUsed > res.AlphaUsed {
			res.AlphaUsed = rr.AlphaUsed
		}
		par.For(len(total), func(lo, hi int) {
			for e := lo; e < hi; e++ {
				total[e] += rr.Flow[e]
			}
		})
		div := g.Divergence(total)
		par.For(len(resid), func(lo, hi int) {
			for v := lo; v < hi; v++ {
				resid[v] = b[v] - div[v]
			}
		})
		res.Outer = i + 1
		if apx.NormRb(resid) <= norm0*1e-9 {
			break
		}
	}

	// Lemma 9.1: route the residual demand on a maximum-weight spanning
	// tree — routing on trees is exact, restoring conservation.
	fTree, err := RouteOnMaxWeightST(g, resid)
	if err != nil {
		return nil, err
	}
	for e := range total {
		total[e] += fTree[e]
	}
	sq := int64(math.Ceil(math.Sqrt(float64(g.N()))))
	ledger.ChargeAccounted("residual-tree-routing", int64(g.DiameterApprox())+sq)

	cong := g.MaxCongestion(total)
	if cong == 0 {
		return nil, fmt.Errorf("sherman: zero flow produced")
	}
	res.Congestion = cong
	res.Value = 1 / cong
	res.Flow = make([]float64, g.M())
	for e := range total {
		res.Flow[e] = total[e] / cong
	}
	return res, nil
}

// RouteOnMaxWeightST routes the (feasible: Σb=0) demand b exactly on
// the maximum-weight spanning tree of g (weights = capacities) and
// returns the per-edge flow. This is the centralized counterpart of the
// Lemma 9.1 protocol; internal/mst provides the message-passing
// construction of the same tree (identical under the shared tie-break).
func RouteOnMaxWeightST(g *graph.Graph, b []float64) ([]float64, error) {
	inTree, _ := mst.Kruskal(g, true)
	n := g.N()
	parent := make([]int, n)
	parentEdge := make([]int, n)
	for v := range parent {
		parent[v] = -2
		parentEdge[v] = -1
	}
	parent[0] = -1
	queue := []int{0}
	adj := make([][]graph.Arc, n)
	for v := 0; v < n; v++ {
		for _, a := range g.Adj(v) {
			if inTree[a.E] {
				adj[v] = append(adj[v], a)
			}
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, a := range adj[v] {
			if parent[a.To] == -2 {
				parent[a.To] = v
				parentEdge[a.To] = a.E
				queue = append(queue, a.To)
			}
		}
	}
	for v, p := range parent {
		if p == -2 {
			return nil, fmt.Errorf("sherman: graph disconnected at %d", v)
		}
	}
	t, err := vtree.New(0, parent, nil)
	if err != nil {
		return nil, err
	}
	sums := t.RouteDemand(b)
	f := make([]float64, g.M())
	for v := 0; v < n; v++ {
		if v == 0 {
			continue
		}
		e := parentEdge[v]
		// sums[v] flows from v toward parent[v].
		f[e] += sums[v] * g.Orientation(e, v)
	}
	return f, nil
}
