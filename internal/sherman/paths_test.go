package sherman

import (
	"errors"
	"math/rand"
	"testing"

	"distflow/internal/capprox"
	"distflow/internal/graph"
)

// With a starved iteration budget and adaptivity disabled, AlmostRoute
// must surface ErrNoConvergence rather than loop or return garbage.
func TestNoConvergenceSurfaces(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := graph.CapUniform(graph.Grid(5, 5), 6, rng)
	apx, err := capprox.Build(g, capprox.Config{ExactCuts: true}, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	b := graph.STDemand(g.N(), 0, g.N()-1, 1)
	_, err = AlmostRoute(g, apx, b, 0.1, Config{MaxIters: 3, DisableAdaptiveAlpha: true}, nil)
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
}

// The adaptive restart recovers from a hopeless initial alpha.
func TestAdaptiveAlphaRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	g := graph.CapUniform(graph.GNP(18, 0.25, rng), 6, rng)
	apx, err := capprox.Build(g, capprox.Config{ExactCuts: true}, rand.New(rand.NewSource(44)))
	if err != nil {
		t.Fatal(err)
	}
	b := graph.STDemand(g.N(), 0, g.N()-1, 1)
	// MaxIters is tight enough that alpha=1 may stall; the restarts may
	// double alpha. Either way the call must succeed.
	rr, err := AlmostRoute(g, apx, b, 0.4, Config{Alpha: 1, MaxIters: 4000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rr.AlphaUsed < 1 {
		t.Errorf("AlphaUsed = %v", rr.AlphaUsed)
	}
}

// Paper-faithful fixed-step mode (DisableAdaptiveAlpha, no momentum)
// still converges and stays within the approximation band.
func TestPaperFaithfulMode(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	g := graph.CapUniform(graph.Grid(4, 4), 5, rng)
	apx, err := capprox.Build(g, capprox.Config{}, rand.New(rand.NewSource(46)))
	if err != nil {
		t.Fatal(err)
	}
	r, err := MaxFlow(g, apx, 0, g.N()-1, Config{Epsilon: 0.5, Alpha: 4, DisableAdaptiveAlpha: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Value <= 0 {
		t.Fatalf("value %v", r.Value)
	}
	if r.AlphaUsed != 4 {
		t.Errorf("AlphaUsed = %v, want the fixed 4", r.AlphaUsed)
	}
}
