package sherman

// Correctness tests for the momentum paths of the stepper: the legacy
// fixed-coefficient heavy-ball option, the default accelerated
// (Nesterov-schedule) stepper with potential-monotonicity restarts, and
// the ε-continuation schedule. Every configuration must keep the
// converged flow within the (1+ε)² band of the exact Dinic optimum on
// the fuzz-corpus graph family, whether or not restarts fire.

import (
	"math"
	"math/rand"
	"testing"

	"distflow/internal/capprox"
	"distflow/internal/graph"
	"distflow/internal/seqflow"
)

// corpusGraphs mirrors the FuzzMaxFlow corpus shape: small connected
// random multigraphs with a spanning chain plus random extra edges.
func corpusGraphs(t *testing.T, count int, seed int64) []*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	gs := make([]*graph.Graph, 0, count)
	for i := 0; i < count; i++ {
		n := 6 + rng.Intn(14)
		g := graph.New(n)
		for v := 1; v < n; v++ {
			g.AddEdge(v, rng.Intn(v), 1+rng.Int63n(9))
		}
		for k := 0; k < n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, 1+rng.Int63n(9))
			}
		}
		gs = append(gs, g)
	}
	return gs
}

// checkWithinBand solves s-t max flow under cfg and asserts feasibility
// and the (1+ε)² value band against Dinic. It returns the result for
// further assertions.
func checkWithinBand(t *testing.T, g *graph.Graph, cfg Config, label string) *FlowResult {
	t.Helper()
	s, tt := 0, g.N()-1
	want := float64(seqflow.MinCutValue(g, s, tt))
	apx, err := capprox.Build(g, capprox.Config{ExactCuts: true}, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	r, err := MaxFlow(g, apx, s, tt, cfg)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	eps := cfg.Epsilon
	if eps == 0 {
		eps = 0.5
	}
	capEx, consErr := seqflow.CheckFlow(g, r.Flow, s, tt, r.Value)
	if capEx > 1e-9 || consErr > 1e-6 {
		t.Fatalf("%s: infeasible flow: capEx=%v consErr=%v", label, capEx, consErr)
	}
	if r.Value > want*1.0001 {
		t.Fatalf("%s: value %v exceeds OPT %v", label, r.Value, want)
	}
	if r.Value < want/((1+eps)*(1+eps))-1e-9 {
		t.Fatalf("%s: value %v below (1+ε)² band of OPT %v", label, r.Value, want)
	}
	return r
}

// The accelerated stepper (the default) stays within the guarantee on
// the corpus family. The potential-monotonicity safeguard must fire on
// at least part of the corpus so the restart path is exercised; the
// restart-free regime is pinned by TestPlainStepperNoRestarts.
func TestAcceleratedCorrectness(t *testing.T) {
	sawRestarts := false
	for _, g := range corpusGraphs(t, 8, 71) {
		r := checkWithinBand(t, g, Config{Epsilon: 0.3}, "accel")
		if r.Restarts > 0 {
			sawRestarts = true
		}
	}
	if !sawRestarts {
		t.Error("no corpus run fired a momentum restart; safeguard untested")
	}
}

// The legacy heavy-ball option (fixed coefficient, previously untested)
// also stays within the guarantee, at several coefficients.
func TestHeavyBallCorrectness(t *testing.T) {
	for _, mom := range []float64{0.5, 0.9} {
		for _, g := range corpusGraphs(t, 5, 37) {
			checkWithinBand(t, g, Config{Epsilon: 0.3, Momentum: mom}, "heavy-ball")
		}
	}
}

// Disabling acceleration restores the plain monotone stepper: no
// restarts can fire, and the guarantee still holds.
func TestPlainStepperNoRestarts(t *testing.T) {
	for _, g := range corpusGraphs(t, 5, 53) {
		r := checkWithinBand(t, g, Config{Epsilon: 0.3, DisableAcceleration: true}, "plain")
		if r.Restarts != 0 {
			t.Fatalf("plain stepper fired %d restarts", r.Restarts)
		}
	}
}

// ε-continuation at a tight target: the schedule must preserve the
// guarantee, and disabling it must too (ablation).
func TestContinuationCorrectness(t *testing.T) {
	for _, g := range corpusGraphs(t, 4, 83) {
		a := checkWithinBand(t, g, Config{Epsilon: 0.12}, "continuation")
		b := checkWithinBand(t, g, Config{Epsilon: 0.12, DisableContinuation: true}, "no-continuation")
		t.Logf("iterations: continuation=%d single-level=%d", a.Iterations, b.Iterations)
	}
}

// The continuation schedule ends exactly at the requested accuracy and
// coarsens by 3× per level.
func TestContinuationLevels(t *testing.T) {
	cases := []struct {
		eps  float64
		want []float64
	}{
		{0.5, []float64{0.5}},
		{0.3, []float64{0.3}},
		{0.15, []float64{0.45, 0.15}},
		{0.05, []float64{0.45, 0.15, 0.05}},
	}
	for _, c := range cases {
		got := continuationLevels(c.eps, Config{})
		if len(got) != len(c.want) {
			t.Fatalf("eps=%v: levels %v, want %v", c.eps, got, c.want)
		}
		for i := range got {
			if math.Abs(got[i]-c.want[i]) > 1e-12 {
				t.Fatalf("eps=%v: levels %v, want %v", c.eps, got, c.want)
			}
		}
	}
	single := continuationLevels(0.05, Config{DisableContinuation: true})
	if len(single) != 1 || single[0] != 0.05 {
		t.Fatalf("DisableContinuation levels = %v", single)
	}
}

// AlmostRouteWarm started from the converged flow of a previous call
// terminates in a fraction of the cold iterations and still routes the
// demand to the same residual quality.
func TestAlmostRouteWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	g := graph.CapUniform(graph.GNP(60, 0.12, rng), 12, rng)
	apx, err := capprox.Build(g, capprox.Config{ExactCuts: true}, rand.New(rand.NewSource(62)))
	if err != nil {
		t.Fatal(err)
	}
	s := NewSolver(g, apx)
	b := graph.STDemand(g.N(), 0, g.N()-1, 1)
	cold, err := s.AlmostRoute(b, 0.3, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s.AlmostRouteWarm(b, 0.3, Config{}, nil, cold.Flow)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations > cold.Iterations {
		t.Errorf("warm start took %d iterations, cold %d", warm.Iterations, cold.Iterations)
	}
	div := g.Divergence(warm.Flow)
	resid := make([]float64, g.N())
	for v := range resid {
		resid[v] = b[v] - div[v]
	}
	if apx.NormRb(resid) > apx.NormRb(b) {
		t.Error("warm-started flow did not reduce the residual norm")
	}
	t.Logf("iterations: cold=%d warm=%d", cold.Iterations, warm.Iterations)
}
