package sherman

import (
	"math/rand"
	"testing"

	"distflow/internal/capprox"
	"distflow/internal/graph"
	"distflow/internal/seqflow"
)

// The momentum option must preserve correctness (feasible flows within
// the guarantee) — the safeguard falls back to the plain step whenever
// a momentum step fails to decrease the potential.
func TestMomentumCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.CapUniform(graph.GNP(20, 0.25, rng), 8, rng)
	s, tt := 0, g.N()-1
	want := float64(seqflow.MinCutValue(g, s, tt))
	apx, err := capprox.Build(g, capprox.Config{ExactCuts: true}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	r, err := MaxFlow(g, apx, s, tt, Config{Epsilon: 0.3, Momentum: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	capEx, consErr := seqflow.CheckFlow(g, r.Flow, s, tt, r.Value)
	if capEx > 1e-9 || consErr > 1e-6 {
		t.Fatalf("momentum run infeasible: %v %v", capEx, consErr)
	}
	if r.Value > want*1.0001 || r.Value < want/1.3/1.3 {
		t.Fatalf("momentum value %v vs OPT %v out of band", r.Value, want)
	}
}

// At tight accuracy the accelerated variant should not be slower by
// more than a small factor and typically is faster; we assert the
// conservative direction (no blow-up) to keep the test robust.
func TestMomentumNoBlowup(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.CapUniform(graph.Grid(5, 5), 6, rng)
	apx, err := capprox.Build(g, capprox.Config{ExactCuts: true}, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	b := graph.STDemand(g.N(), 0, g.N()-1, 1)
	plain, err := AlmostRoute(g, apx, b, 0.2, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mom, err := AlmostRoute(g, apx, b, 0.2, Config{Momentum: 0.9}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mom.Iterations > 3*plain.Iterations {
		t.Errorf("momentum blew up: %d vs %d iterations", mom.Iterations, plain.Iterations)
	}
	t.Logf("iterations: plain=%d momentum=%d", plain.Iterations, mom.Iterations)
}
