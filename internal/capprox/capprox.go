// Package capprox builds the paper's congestion approximator: a sample
// of O(log n) virtual rooted spanning trees drawn from the recursively
// constructed distribution of Theorem 8.10, assembled level by level
// from Madry j-tree steps (internal/jtree) on cluster graphs.
//
// Each sampled tree T satisfies, up to the measured distortion α:
//
//	cap_G(cut) ≤ cap_T(cut) ≤ α·cap_G(cut)   for subtree-induced cuts,
//
// and by Lemma 3.3 the O(log n) samples together form an O(α²)-
// congestion approximator R whose rows are the subtree cuts. R and Rᵀ
// are applied with one O(n) sweep per tree (internal/vtree); the
// distributed cost of every construction and evaluation phase is
// charged to a congest.Ledger using the paper's own schedules
// (Lemmas 5.1, 8.3, 8.8, Corollary 9.3) instantiated with measured
// depths and counts.
package capprox

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"distflow/internal/cluster"
	"distflow/internal/congest"
	"distflow/internal/graph"
	"distflow/internal/jtree"
	"distflow/internal/par"
	"distflow/internal/sparsify"
	"distflow/internal/vtree"
)

// Config tunes the construction. Zero values select the paper's
// parameters with practical constants.
type Config struct {
	// Trees is the number of sampled virtual trees (default ⌈log₂ n⌉+1,
	// the Lemma 3.3 sample size).
	Trees int
	// Beta is the per-level contraction factor β (default
	// 2^{(log₂n)^{3/4}}, §8.4).
	Beta float64
	// CoreThreshold stops the distributed recursion (default
	// max(8, ⌈2√n⌉) ≈ the paper's n^{1/2+o(1)}).
	CoreThreshold int
	// Candidates is the number of multiplicative-weights candidates per
	// level from which one j-tree is sampled (default 3; theory Õ(β)).
	Candidates int
	// UseSparsifier applies the cut sparsifier to dense cluster graphs
	// between levels (§8.4 step 1); ablation A4.
	UseSparsifier bool
	// ExactCuts scales R's rows by the exact G-cut capacities instead of
	// the virtual tree capacities (tightening ablation; the distributed
	// algorithm uses the virtual capacities).
	ExactCuts bool
	// UpdateDirtyFraction tunes the per-tree fallback of
	// UpdateCapacities: a tree whose summed edit-path length exceeds
	// this fraction of n+m (the full sweep's linear cost) abandons the
	// dirty path and re-sweeps in full (0 = 0.25; negative = every tree
	// full-sweeps on every update — the pre-dirty-path behavior and the
	// property-test oracle).
	UpdateDirtyFraction float64
	// CutShiftResample tunes UpdateTopology's structural-degradation
	// detector: a tree one of whose pre-existing subtree cuts a batch
	// multiplies (or divides) by more than this factor is reported for
	// resampling — its sampled topology was drawn for a cut landscape
	// that no longer exists, a quality loss the cap_T/cap_G distortion
	// α cannot see (DESIGN.md §8). 0 = 3 — past the distortion slack
	// the sampler's own construction tolerates; negative disables the
	// detector.
	CutShiftResample float64
	// Step forwards to the per-level construction.
	Step jtree.Config
}

// BuildStats breaks the wall-clock cost of one Build down by phase, so
// build-path regressions are attributable (cmd/bench -build records
// them). Tree-parallel phases (sampling, sparsification, cut
// capacities) record summed per-tree durations, i.e. CPU seconds —
// equal to wall clock on one worker, larger than wall clock on many;
// AlphaSeconds and TotalSeconds are wall clock.
type BuildStats struct {
	// SampleSeconds is the total tree-sampling time (all j-tree levels,
	// including candidate evaluation; includes SparsifySeconds).
	SampleSeconds float64 `json:"sample_seconds"`
	// SparsifySeconds is the cluster-graph sparsification share of
	// sampling (0 unless Config.UseSparsifier).
	SparsifySeconds float64 `json:"sparsify_seconds"`
	// RaceSeconds is the SplitGraph-race share of sampling (summed over
	// candidates and trees, CPU seconds like SampleSeconds) — the
	// quantity the bucket-queue race targets.
	RaceSeconds float64 `json:"race_seconds"`
	// CutCapSeconds is the exact subtree-cut capacity phase (one
	// TreeFlow sweep per tree).
	CutCapSeconds float64 `json:"cutcap_seconds"`
	// AlphaSeconds is the distortion measurement plus the Cor. 9.3
	// evaluation-schedule draw (sequential, wall clock).
	AlphaSeconds float64 `json:"alpha_seconds"`
	// TotalSeconds is the wall clock of the whole Build call.
	TotalSeconds float64 `json:"total_seconds"`
}

// Approximator is the sampled congestion approximator R.
type Approximator struct {
	// Trees are the sampled virtual rooted spanning trees on V(G); the
	// capacity of edge (v,parent) is the virtual capacity cap_T.
	Trees []*vtree.VTree
	// CutCap[k][v] is the exact capacity of the G-cut induced by tree
	// k's edge (v,parent) (computed via the Fig. 2 tree-flow identity).
	CutCap [][]float64
	// Scale[k][v] is the row scaling actually used by R (virtual or
	// exact per Config.ExactCuts).
	Scale [][]float64
	// Alpha is the measured per-tree cut overestimation
	// max_{k,v} cap_T / cap_G ≥ 1.
	Alpha float64
	// AlphaLow is the measured underestimation max_{k,v} cap_G / cap_T
	// (the O(1)-embedding slack of Lemmas 8.6/8.7; 1 when cap_T always
	// dominates).
	AlphaLow float64
	// Ledger carries the charged construction rounds.
	Ledger *congest.Ledger
	// Levels records the cluster-graph sizes of the sampled hierarchy
	// (one history per tree).
	Levels [][]int
	// Stats carries the per-phase build timing breakdown.
	Stats BuildStats

	// evalSchedule is the measured Corollary 9.3 cost of one R (or Rᵀ)
	// application: per tree, a Lemma 8.2 decomposition is drawn and the
	// convergecast is charged as 2·(component depth) for the intra-
	// component solves plus D + #components for pipelining the component
	// summaries over the BFS tree.
	evalSchedule int64

	// treeMax maintains, per tree, the maximum distortion ratios and
	// their argmax slots. Alpha/AlphaLow are the tree-order maxima of
	// these; dirty-path updates keep them current from the edited slots
	// alone, rescanning a tree only when its argmax slot itself is
	// dirtied (see UpdateCapacities).
	treeMax []ratioMax
	// diameter is the hop diameter measured at Build time. Capacity
	// edits never change the topology, so update-path round charges
	// reuse it instead of re-running the O(n+m) BFS approximation —
	// the update must stay O(edits × depth), not O(n+m).
	diameter int
	// updWS pools each tree's dirty-path scratch across updates.
	updWS []vtree.DeltaScratch
}

// ratioMax is one tree's measured distortion extrema: the largest
// overestimate hi = max cap_T/cap_G and underestimate lo = max
// cap_G/cap_T over the tree's non-root slots, with their argmax
// vertices (ties resolved toward the lowest vertex, the scan order).
type ratioMax struct {
	hi, lo       float64
	hiArg, loArg int
}

// measureTreeRatios scans one tree's slots in vertex order.
func measureTreeRatios(t *vtree.VTree, cc []float64) ratioMax {
	m := ratioMax{hi: 1, lo: 1, hiArg: -1, loArg: -1}
	for v := 0; v < t.N(); v++ {
		if v == t.Root || cc[v] <= 0 {
			continue
		}
		if r := t.Cap[v] / cc[v]; r > m.hi {
			m.hi = r
			m.hiArg = v
		}
		if r := cc[v] / t.Cap[v]; r > m.lo {
			m.lo = r
			m.loArg = v
		}
	}
	return m
}

// remeasure recomputes every per-tree extremum (tree-parallel) and the
// global Alpha/AlphaLow. The per-tree scans are independent and the
// combination runs in fixed tree order, so the result is a pure
// function of the state at every worker count.
func (a *Approximator) remeasure() {
	if len(a.treeMax) != len(a.Trees) {
		a.treeMax = make([]ratioMax, len(a.Trees))
	}
	par.Do(len(a.Trees), func(k int) {
		a.treeMax[k] = measureTreeRatios(a.Trees[k], a.CutCap[k])
	})
	a.combineAlpha()
}

// combineAlpha folds the maintained per-tree extrema into Alpha and
// AlphaLow in tree order.
func (a *Approximator) combineAlpha() {
	a.Alpha = 1
	a.AlphaLow = 1
	for _, m := range a.treeMax {
		if m.hi > a.Alpha {
			a.Alpha = m.hi
		}
		if m.lo > a.AlphaLow {
			a.AlphaLow = m.lo
		}
	}
}

// Build samples the congestion approximator for g. A churned graph
// (tombstoned edges or removed vertices) is compacted to its active
// subgraph for sampling and the result expanded back to the full id
// space (see churn.go), so long-lived routers can rebuild in place.
func Build(g *graph.Graph, cfg Config, rng *rand.Rand) (*Approximator, error) {
	return BuildCtx(context.Background(), g, cfg, rng)
}

// BuildCtx is Build under a context: a done context (cancelled or past
// its deadline) aborts the build with the context's error at the next
// tree-level granule — the construction never publishes partial state,
// so an aborted build leaves nothing to clean up. Builds do not degrade
// on deadline the way query solves do: an approximator is either fully
// sampled or absent.
func BuildCtx(ctx context.Context, g *graph.Graph, cfg Config, rng *rand.Rand) (*Approximator, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("capprox: empty graph")
	}
	if !g.Connected() {
		return nil, fmt.Errorf("capprox: graph must be connected")
	}
	if g.Churned() {
		return buildChurned(ctx, g, cfg, rng)
	}
	trees := cfg.Trees
	if trees == 0 {
		trees = int(math.Ceil(math.Log2(float64(n)+2))) + 1
	}
	a := &Approximator{Ledger: congest.NewLedger()}
	buildStart := time.Now() //distflow:allow detrand build-phase timing stat only; never feeds results
	diameter := g.DiameterApprox()
	a.diameter = diameter

	// Draw one PRNG seed per tree from the master stream up front, then
	// sample the ⌈log₂n⌉+1 virtual trees concurrently on the shared
	// worker pool, each from its own independently seeded PRNG. The
	// seeds — and hence every tree — are a pure function of the master
	// seed, so builds are reproducible at every worker count. Round
	// charges accumulate in per-tree ledgers merged in tree order.
	seeds := make([]int64, trees)
	for k := range seeds {
		seeds[k] = rng.Int63()
	}
	type sampled struct {
		t       *vtree.VTree
		levels  []int
		ledger  *congest.Ledger
		seconds float64
		phases  samplePhases
		err     error
	}
	outs := make([]sampled, trees)
	par.Do(trees, func(k int) {
		led := congest.NewLedger()
		treeStart := time.Now() //distflow:allow detrand build-phase timing stat only; never feeds results
		var ph samplePhases
		t, levels, err := sampleTree(ctx, g, cfg, diameter, led, rand.New(rand.NewSource(seeds[k])), &ph)
		outs[k] = sampled{
			t: t, levels: levels, ledger: led, err: err,
			seconds: time.Since(treeStart).Seconds(), phases: ph, //distflow:allow detrand build-phase timing stat only; never feeds results
		}
	})
	for k := range outs {
		if outs[k].err != nil {
			return nil, fmt.Errorf("capprox: tree %d: %w", k, outs[k].err)
		}
		a.Trees = append(a.Trees, outs[k].t)
		a.Levels = append(a.Levels, outs[k].levels)
		a.Ledger.Add(outs[k].ledger)
		a.Stats.SampleSeconds += outs[k].seconds
		a.Stats.SparsifySeconds += outs[k].phases.sparsify
		a.Stats.RaceSeconds += outs[k].phases.race
	}

	// Exact subtree-cut capacities via the tree-flow identity (one
	// independent LCA sweep per tree, run tree-parallel, each against
	// pooled scratch — the lifting tables and delta buffers are reused
	// across trees and workers instead of allocated fresh per tree), and
	// the realized distortion α. Timing is per tree, summed — the same
	// CPU-seconds convention as the sampling phase, so the breakdown
	// stays unit-consistent on multicore runs.
	pairs := livePairs(g)
	a.CutCap = make([][]float64, trees)
	a.Scale = make([][]float64, trees)
	cutcapSec := make([]float64, trees)
	par.Do(trees, func(k int) {
		treeStart := time.Now() //distflow:allow detrand build-phase timing stat only; never feeds results
		t := a.Trees[k]
		cc := treeFlowPooled(t, pairs, nil)
		scale := make([]float64, n)
		for v := 0; v < n; v++ {
			if v == t.Root {
				continue
			}
			if cfg.ExactCuts {
				scale[v] = cc[v]
			} else {
				scale[v] = t.Cap[v]
			}
		}
		a.CutCap[k] = cc
		a.Scale[k] = scale
		cutcapSec[k] = time.Since(treeStart).Seconds() //distflow:allow detrand build-phase timing stat only; never feeds results
	})
	for _, s := range cutcapSec {
		a.Stats.CutCapSeconds += s
	}
	alphaStart := time.Now() //distflow:allow detrand build-phase timing stat only; never feeds results
	a.remeasure()

	// Measured Cor. 9.3 evaluation schedule (see field doc).
	sqrtN := math.Sqrt(float64(n))
	for _, t := range a.Trees {
		dec := t.Decompose(nil, sqrtN, rng)
		a.evalSchedule += int64(2*(dec.MaxDepth+1) + diameter + dec.NumComponents())
	}
	a.Stats.AlphaSeconds = time.Since(alphaStart).Seconds() //distflow:allow detrand build-phase timing stat only; never feeds results
	a.Stats.TotalSeconds = time.Since(buildStart).Seconds() //distflow:allow detrand build-phase timing stat only; never feeds results
	return a, nil
}

// CapDelta is one coalesced capacity edit handed to UpdateCapacities:
// the edited graph edge's endpoints and its capacity change new−old.
// Callers coalesce first — at most one delta per edge, no zero diffs —
// so the edit list is exactly the dirty work.
type CapDelta struct {
	U, V int
	Diff float64
}

// UpdateCapacities refreshes the approximator in place after the given
// capacity edits were applied to g, keeping every sampled tree
// topology. Per tree — tree-parallel, deterministically — the refresh
// is dirty-path: by the Lemma 8.3 tree-flow identity, editing edge
// (u,v) by Δ changes exactly the subtree cuts along the tree path
// u→LCA(u,v)→v, each by Δ, so the exact cut capacities are patched
// along those paths in O(edits × depth) instead of re-swept in
// O((n+m) log n). Each dirty virtual capacity shifts by its cut's delta
// (the tree's hierarchical routing is held fixed, so a capacity edit
// transports additively along the tree paths crossing the cut),
// clamped to the exact cut capacity if the shift would drive it
// nonpositive; Scale is refreshed per cfg.ExactCuts. A tree whose
// summed edit-path length exceeds cfg.UpdateDirtyFraction × (n+m)
// falls back to the full TreeFlow sweep — the identical-result slow
// path.
//
// α is re-measured from the maintained per-tree extrema: only the
// dirty slots' ratios changed, so each tree's maximum is updated from
// those alone, unless the tree's previous argmax slot is itself dirty
// (its ratio may have dropped), in which case that tree is rescanned.
// Under adversarial edits (say, a slashed cut) α degrades honestly,
// which is what the caller's rebuild fallback watches. In the solver's
// integer-capacity regime the refreshed state is bit-identical to
// RefreshCapacities' full sweep at every worker count.
//
// The return values report how many trees took the dirty path and how
// many fell back to a full re-sweep.
//
// Not safe concurrently with ApplyR/ApplyRT/PotentialRT on the same
// approximator.
func (a *Approximator) UpdateCapacities(g *graph.Graph, cfg Config, edits []CapDelta) (dirtyTrees, sweptTrees int) {
	if len(edits) == 0 {
		return 0, 0
	}
	frac := cfg.UpdateDirtyFraction
	if frac == 0 {
		frac = 0.25
	}
	if frac < 0 {
		a.RefreshCapacities(g, cfg)
		return 0, len(a.Trees)
	}
	if len(a.treeMax) != len(a.Trees) {
		// Hand-assembled approximator: establish the extrema first.
		a.remeasure()
	}
	n := g.N()
	dedits := make([]vtree.DeltaEdit, len(edits))
	for i, ed := range edits {
		dedits[i] = vtree.DeltaEdit{U: ed.U, V: ed.V, Diff: ed.Diff}
	}
	if len(a.updWS) != len(a.Trees) {
		a.updWS = make([]vtree.DeltaScratch, len(a.Trees))
	}
	// Per-tree dirty work (also builds each tree's cached LCA tables,
	// tree-parallel, on the first update).
	work := make([]int, len(a.Trees))
	par.Do(len(a.Trees), func(k int) {
		work[k] = a.Trees[k].PathWork(dedits)
	})
	budget := frac * float64(n+g.M())
	sweep := make([]bool, len(a.Trees))
	var pairs []vtree.EdgeEndpoint
	for k := range a.Trees {
		if float64(work[k]) > budget {
			sweep[k] = true
			sweptTrees++
		}
	}
	dirtyTrees = len(a.Trees) - sweptTrees
	if sweptTrees > 0 {
		// At least one tree re-sweeps: materialize the edge list once.
		pairs = livePairs(g)
	}
	par.Do(len(a.Trees), func(k int) {
		if sweep[k] {
			a.treeMax[k], _ = refreshTree(a.Trees[k], pairs, a.CutCap[k], a.Scale[k], cfg, n, nil)
			return
		}
		a.patchTree(k, cfg, dedits, n, nil)
	})
	a.combineAlpha()
	// Charge the distributed cost in fixed tree order: a dirty-path
	// update fixes only the edited tree paths — D to disseminate the
	// edits plus one round per patched tree edge — and never more than
	// the full Lemma 8.3 aggregation Õ(√n + D) a re-swept tree pays.
	sq := int64(math.Ceil(math.Sqrt(float64(n))))
	diameter := a.buildDiameter(g)
	for k := range a.Trees {
		c := diameter + int64(work[k])
		if sweep[k] || c > diameter+sq {
			c = diameter + sq
		}
		a.Ledger.ChargeAccounted("update-treeflow", c)
	}
	return dirtyTrees, sweptTrees
}

// buildDiameter returns the hop diameter measured at Build time,
// measuring it once for hand-assembled approximators. Capacity edits
// never change topology, so the cached value stays exact and the
// update path avoids an O(n+m) BFS per call.
func (a *Approximator) buildDiameter(g *graph.Graph) int64 {
	if a.diameter == 0 && g.N() > 1 {
		a.diameter = g.DiameterApprox()
	}
	return int64(a.diameter)
}

// RefreshCapacities is the full-sweep refresh: one TreeFlow sweep per
// tree recomputes every exact subtree-cut capacity from g's current
// edge list, virtual capacities shift by the measured cut deltas, and
// α is re-measured from full per-tree scans. It is UpdateCapacities'
// per-tree fallback and its property-test oracle; results agree bit for
// bit in the integer-capacity regime. Cost: O((n+m) log n) per tree.
func (a *Approximator) RefreshCapacities(g *graph.Graph, cfg Config) {
	n := g.N()
	pairs := livePairs(g)
	if len(a.treeMax) != len(a.Trees) {
		a.treeMax = make([]ratioMax, len(a.Trees))
	}
	par.Do(len(a.Trees), func(k int) {
		a.treeMax[k], _ = refreshTree(a.Trees[k], pairs, a.CutCap[k], a.Scale[k], cfg, n, nil)
	})
	a.combineAlpha()
	// Charge the distributed cost: one Lemma 8.3 tree-flow aggregation
	// per tree, Õ(√n + D).
	sq := int64(math.Ceil(math.Sqrt(float64(n))))
	diameter := a.buildDiameter(g)
	for range a.Trees {
		a.Ledger.ChargeAccounted("update-treeflow", diameter+sq)
	}
}

// refreshTree full-sweeps one tree: recomputes its cut capacities into
// cc (in place), shifts the virtual capacities by the cut deltas, and
// returns the rescanned distortion extrema plus the largest
// multiplicative change among pre-existing cuts (slots below freshFrom
// whose values moved — the same structural-degradation signal
// patchTree reports). A slot whose cut holds no live capacity (an
// all-removed subtree after topology churn) keeps a unit
// virtual-capacity sentinel and a zero scale — its row is excluded
// from R exactly as the dirty path excludes it.
func refreshTree(t *vtree.VTree, pairs []vtree.EdgeEndpoint, cc, scale []float64, cfg Config, freshFrom int, skipShift []bool) (ratioMax, float64) {
	fresh := treeFlowPooled(t, pairs, nil)
	shift := 1.0
	for v := 0; v < t.N(); v++ {
		if v == t.Root {
			continue
		}
		if v < freshFrom && fresh[v] != cc[v] && (skipShift == nil || !skipShift[v]) {
			if s := shiftRatio(cc[v], fresh[v]); s > shift {
				shift = s
			}
		}
		nv := t.Cap[v] + (fresh[v] - cc[v])
		if nv <= 0 {
			nv = fresh[v]
			if nv <= 0 {
				nv = 1
			}
		}
		t.Cap[v] = nv
		if fresh[v] <= 0 {
			scale[v] = 0
		} else if cfg.ExactCuts {
			scale[v] = fresh[v]
		} else {
			scale[v] = nv
		}
	}
	copy(cc, fresh)
	return measureTreeRatios(t, cc), shift
}

// samplePhases accumulates one sampleTree call's sub-phase durations.
type samplePhases struct {
	sparsify float64 // cluster sparsification
	race     float64 // SplitGraph races inside the LSST, all candidates
}

// samplerWS bundles the j-tree construction arenas of one sampleTree
// call (one per candidate slot), pooled across trees: a 1-worker build
// then reuses a single bundle for all ~log n trees instead of
// allocating full arenas per tree, which at n=10⁶ is the difference
// between one working set and twenty. The terminal collapse borrows
// slot 0 rather than owning a fourth arena — each arena is a quarter
// gigabyte at n=10⁶, and StepWS's pointer-identity arena selection
// already guarantees a step can never clobber the cluster graph it is
// reading, wherever that graph lives.
type samplerWS struct {
	wss []*jtree.Workspace
}

var samplerPool = sync.Pool{New: func() any { return &samplerWS{} }}

// sampleTree draws one virtual tree from the recursive distribution.
// phases accumulates the time spent in the instrumented sub-phases.
// A done ctx aborts between contraction levels — the finest granule at
// which the per-tree state is cheap to abandon.
func sampleTree(ctx context.Context, g *graph.Graph, cfg Config, diameter int, ledger *congest.Ledger, rng *rand.Rand, phases *samplePhases) (*vtree.VTree, []int, error) {
	n := g.N()
	beta := cfg.Beta
	if beta == 0 {
		beta = math.Pow(2, math.Pow(math.Log2(float64(n)+2), 0.75))
	}
	if beta < 2 {
		beta = 2
	}
	threshold := cfg.CoreThreshold
	if threshold == 0 {
		threshold = int(math.Max(8, 2*math.Ceil(math.Sqrt(float64(n)))))
	}
	candidates := cfg.Candidates
	if candidates == 0 {
		candidates = 3
	}
	sqrtN := math.Sqrt(float64(n))

	vparent := make([]int, n)
	vcap := make([]float64, n)
	assigned := make([]bool, n)
	for v := range vparent {
		vparent[v] = -1
	}

	cg := cluster.FromGraph(g)
	levels := []int{cg.N}

	// One pooled construction arena per candidate slot, reused across
	// all levels of this tree — and, via samplerPool, across trees
	// sharing a worker. A StepResult is consumed (place + next-level
	// input) before its slot's workspace runs again, and the alternating
	// core buffers inside each workspace keep the current input cluster
	// graph intact while its successor is built. The bundle returns to
	// the pool only after the sampled tree has been copied out into its
	// own storage (vtree.New).
	sw := samplerPool.Get().(*samplerWS)
	defer samplerPool.Put(sw)
	for len(sw.wss) < candidates {
		sw.wss = append(sw.wss, jtree.NewWorkspace())
	}
	wss := sw.wss[:candidates]
	candSeeds := make([]int64, candidates)
	candRes := make([]*jtree.StepResult, candidates)
	candErr := make([]error, candidates)

	place := func(res *jtree.StepResult) {
		for _, fe := range res.Forest {
			u := cg.Rep[fe.Child]
			if assigned[u] {
				// A lineage vertex can exit only once; this is a
				// construction invariant.
				panic(fmt.Sprintf("capprox: vertex %d assigned twice", u))
			}
			assigned[u] = true
			vparent[u] = cg.Rep[fe.Parent]
			vcap[u] = fe.Cap
		}
	}

	distributed := true
	//distflow:poll per-contraction-level granule: cheapest point to abandon a tree (DESIGN.md §11)
	for cg.N > 1 {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		if distributed && cg.N <= threshold {
			// The remaining core is published to every node over a BFS
			// tree (§8.4): n^{1/2+o(1)} summaries, pipelined.
			ledger.ChargeAccounted("core-publish", int64(diameter+cg.N+len(cg.Edges)))
			distributed = false
		}

		var j int
		if distributed {
			j = int(float64(cg.N) / (4 * beta))
			if j < 1 {
				j = 1
			}
		} else {
			j = cg.N / 8
			if j < 1 {
				j = 1
			}
		}

		// Optional sparsification of dense cluster graphs (§8.4 step 1).
		logN := math.Log2(float64(cg.N) + 2)
		if cfg.UseSparsifier && float64(len(cg.Edges)) > 4*float64(cg.N)*logN {
			sparsifyStart := time.Now() //distflow:allow detrand build-phase timing stat only; never feeds results
			cg2, acct, err := sparsifyCluster(cg, rng)
			phases.sparsify += time.Since(sparsifyStart).Seconds() //distflow:allow detrand build-phase timing stat only; never feeds results
			if err != nil {
				return nil, nil, err
			}
			if distributed {
				ledger.ChargeAccounted("sparsify", acct)
			}
			cg = cg2
		}

		// Candidate j-trees (Theorem 8.10 step 4). The candidates are
		// evaluated concurrently on the shared worker pool: the uniform
		// pick and each candidate's PRNG seed are drawn from the tree
		// stream in candidate order before the parallel region, and the
		// candidates then run independently from the same edge lengths —
		// so the adopted tree is a pure function of (cluster graph, tree
		// seed) at every worker count. Candidate diversity comes from
		// the independent seeds; the sequential multiplicative-weights
		// sweep it replaces coupled each candidate to its predecessors
		// and forced serial evaluation. Selection stays the paper's
		// uniform draw: the greedy alternative (argmin of MaxRload,
		// ties by index) measured strictly worse approximators — E1's
		// charged-round growth exponent left the sub-quadratic band and
		// benchmark iterations rose 20% (DESIGN.md §6).
		lengths := make([]float64, len(cg.Edges))
		for i, e := range cg.Edges {
			lengths[i] = 1 / e.Cap
		}
		stepCfg := cfg.Step
		if !distributed {
			// §8.4: the local continuation drops the component size
			// control (no R sampling); tiny cores collapse to a tree.
			stepCfg.DisableR = true
			if cg.N <= 8 {
				stepCfg.DisableF = true
			}
		}
		pickU := rng.Intn(candidates)
		for c := 0; c < candidates; c++ {
			candSeeds[c] = rng.Int63()
		}
		par.Do(candidates, func(c int) {
			candRes[c], candErr[c] = jtree.StepWS(cg, lengths, j, sqrtN, stepCfg,
				rand.New(rand.NewSource(candSeeds[c])), wss[c])
		})
		var chosen *jtree.StepResult
		for c := 0; c < candidates; c++ {
			if candErr[c] != nil {
				return nil, nil, candErr[c]
			}
			phases.race += candRes[c].LSSTRaceSeconds
			if c == pickU {
				chosen = candRes[c]
			}
			if distributed {
				// Charge the per-candidate distributed cost: the LSST
				// (Theorem 3.1), the tree-flow aggregation (Lemma 8.3)
				// and the skeleton/portal machinery (Lemma 8.8), all
				// Õ(√n + D) with the measured depths.
				sq := int64(math.Ceil(sqrtN))
				ledger.ChargeAccounted("lsst", int64(diameter)+sq*int64(math.Ceil(logN)))
				ledger.ChargeAccounted("treeflow", int64(diameter)+sq+int64(cg.MaxDepth()))
				ledger.ChargeAccounted("skeleton", sq+int64(cg.MaxDepth()))
			}
		}
		ledger.ChargeAccounted("sample", int64(diameter))

		if chosen.Core.N >= cg.N {
			// No contraction: if the Lemma 8.2 sampling cut everything
			// (cluster sizes approaching √n), fall to the local phase;
			// locally, collapse outright.
			if distributed {
				ledger.ChargeAccounted("core-publish", int64(diameter+cg.N+len(cg.Edges)))
				distributed = false
				continue
			}
			stepCfg.DisableF = true
			// Borrow candidate slot 0's arena: every candRes of this
			// level is dead in this branch, and the arena selection
			// inside StepWS keeps cg safe even when cg lives in wss[0].
			res, err := jtree.StepWS(cg, lengths, 1, sqrtN, stepCfg, rng, wss[0])
			if err != nil {
				return nil, nil, err
			}
			phases.race += res.LSSTRaceSeconds
			if res.Core.N >= cg.N {
				return nil, nil, fmt.Errorf("capprox: no progress at N=%d", cg.N)
			}
			chosen = res
		}
		place(chosen)
		cg = chosen.Core
		levels = append(levels, cg.N)
	}

	root := cg.Rep[0]
	if assigned[root] {
		return nil, nil, fmt.Errorf("capprox: root %d was assigned a parent", root)
	}
	t, err := vtree.New(root, vparent, withRootCap(vcap, root))
	if err != nil {
		return nil, nil, err
	}
	return t, levels, nil
}

func withRootCap(vcap []float64, root int) []float64 {
	out := append([]float64(nil), vcap...)
	out[root] = 0
	for v, c := range out {
		if v != root && c <= 0 {
			// vtree.New validates; make failure informative instead.
			panic(fmt.Sprintf("capprox: vertex %d has no virtual capacity", v))
		}
	}
	return out
}

// sparsifyCluster applies the cut sparsifier to the cluster multigraph,
// doubling capacities to absorb the 1−ε underestimate (§8.4 step 1).
func sparsifyCluster(cg *cluster.Graph, rng *rand.Rand) (*cluster.Graph, int64, error) {
	in := make([]sparsify.Edge, len(cg.Edges))
	for i, e := range cg.Edges {
		in[i] = sparsify.Edge{U: e.A, V: e.B, W: e.Cap}
	}
	// Practical pack/target: the asymptotic pack size exceeds any
	// laptop-scale m (see package sparsify); E3 measures the cut
	// distortion this configuration realizes.
	res, err := sparsify.Sparsify(cg.N, in, sparsify.Config{PackSize: 2, TargetFactor: 1}, rng)
	if err != nil {
		return nil, 0, fmt.Errorf("capprox: sparsify: %w", err)
	}
	// The bookkeeping arrays are deep-copied, not shared: cg may live in
	// a jtree workspace arena, and the sparsified graph must survive the
	// arena's next reuse (it becomes the level input while candidate
	// steps write their cores).
	out := &cluster.Graph{
		N:     cg.N,
		Edges: make([]cluster.Edge, len(res.Edges)),
		Rep:   append([]int(nil), cg.Rep...),
		Size:  append([]float64(nil), cg.Size...),
		Depth: append([]int(nil), cg.Depth...),
	}
	for i, e := range res.Edges {
		out.Edges[i] = cluster.Edge{
			A: e.U, B: e.V,
			Cap:  2 * e.W,
			Phys: cg.Edges[res.Origin[i]].Phys,
		}
	}
	return out, res.AccountRounds(cg.N, 0), nil
}

// --- R and Rᵀ application (§9.1–9.2) ---

// ApplyR returns y with y[k][v] = (Σ_{u∈subtree_k(v)} b[u]) / Scale[k][v]
// for every tree k and non-root v (root entries are 0): the congestion
// estimates of all subtree cuts. One bottom-up sweep per tree; the
// trees are independent, so the sweeps run tree-parallel.
func (a *Approximator) ApplyR(b []float64) [][]float64 {
	out := make([][]float64, len(a.Trees))
	for k, t := range a.Trees {
		out[k] = make([]float64, t.N())
	}
	return a.ApplyRInto(b, out)
}

// ApplyRInto is ApplyR writing into caller-provided per-tree buffers
// (out[k] of length N each), for solvers that re-apply R every
// iteration and reuse the workspace.
func (a *Approximator) ApplyRInto(b []float64, out [][]float64) [][]float64 {
	if len(out) != len(a.Trees) {
		panic("capprox: output tree count mismatch")
	}
	par.Do(len(a.Trees), func(k int) {
		t := a.Trees[k]
		y := t.SubtreeSumsInto(b, out[k])
		for v := 0; v < t.N(); v++ {
			if v == t.Root || a.Scale[k][v] == 0 {
				y[v] = 0
				continue
			}
			y[v] /= a.Scale[k][v]
		}
	})
	return out
}

// ApplyRT returns Rᵀp: for prices p[k][v] attached to tree k's cut
// (v,parent), the node potentials π[u] = Σ_k Σ_{cuts above u} p/scale.
// One top-down sweep per tree.
func (a *Approximator) ApplyRT(p [][]float64) []float64 {
	n := 0
	if len(a.Trees) > 0 {
		n = a.Trees[0].N()
	}
	scratch := make([][]float64, len(a.Trees))
	for k := range scratch {
		scratch[k] = make([]float64, n)
	}
	return a.ApplyRTInto(p, make([]float64, n), scratch)
}

// ApplyRTInto is ApplyRT with caller-provided buffers: the per-tree
// sweeps run tree-parallel into scratch (len Trees, each len N), then
// out[v] accumulates across trees in fixed tree order chunk-parallel
// over vertices — the combination order never depends on the worker
// count, keeping potentials bit-reproducible.
func (a *Approximator) ApplyRTInto(p [][]float64, out []float64, scratch [][]float64) []float64 {
	if len(p) != len(a.Trees) {
		panic("capprox: price tree count mismatch")
	}
	if len(scratch) != len(a.Trees) {
		panic("capprox: scratch tree count mismatch")
	}
	par.Do(len(a.Trees), func(k int) {
		t := a.Trees[k]
		buf := scratch[k]
		for v := 0; v < t.N(); v++ {
			if v == t.Root || a.Scale[k][v] == 0 {
				buf[v] = 0
				continue
			}
			buf[v] = p[k][v] / a.Scale[k][v]
		}
		t.RootPathSumsInto(buf, buf)
	})
	par.For(len(out), func(lo, hi int) {
		for v := lo; v < hi; v++ {
			s := 0.0
			for k := range scratch {
				s += scratch[k][v]
			}
			out[v] = s
		}
	})
	return out
}

// EvalScratch holds the per-tree buffers one fused PotentialRT
// evaluation needs. Solvers keep one per workspace (pooled across
// queries) so the per-tree [][]float64 scratch is never reallocated on
// the hot path.
type EvalScratch struct {
	// Sub holds per-tree subtree aggregates, then soft-max gradient
	// numerators (len Trees, each len N).
	Sub [][]float64
	// PT holds the per-tree root-path sweeps of Rᵀ (len Trees, each
	// len N).
	PT [][]float64
	// tm and ts are per-tree partial maxima and exponential sums,
	// combined in tree order so the reduction is worker-count
	// independent.
	tm, ts []float64
}

// NewEvalScratch allocates an EvalScratch sized for the approximator.
func (a *Approximator) NewEvalScratch() *EvalScratch {
	s := &EvalScratch{
		Sub: make([][]float64, len(a.Trees)),
		PT:  make([][]float64, len(a.Trees)),
		tm:  make([]float64, len(a.Trees)),
		ts:  make([]float64, len(a.Trees)),
	}
	for k, t := range a.Trees {
		s.Sub[k] = make([]float64, t.N())
		s.PT[k] = make([]float64, t.N())
	}
	return s
}

// PotentialRT computes, in fused tree-parallel sweeps, the φ₂ part of
// Sherman's potential for the residual demand r: with y = ta·R·r
// (ta = 2α), it returns smax(y) = log Σ (e^{y}+e^{-y}) over every
// non-root (tree, vertex) slot and writes the node potentials
// π = Rᵀ·∇smax(y) into pi (len N).
//
// This is the fusion of ApplyRInto → SoftMaxGradPar → ApplyRTInto: the
// 2α scaling and the 1/Scale row scalings are folded into the tree
// sweeps, the soft-max works per tree instead of over a flat scatter
// index, and the gradient numerators overwrite the subtree aggregates
// in place — three full passes over K·N temporaries (and both scatter
// copies) disappear from every gradient iteration.
//
// Determinism: per-tree partial maxima and sums are combined in tree
// order on the calling goroutine, and the final accumulation over
// trees is chunk-parallel over vertices in fixed tree order, so the
// result is a pure function of (r, ta) at every worker count. The
// summation order differs from the flat-index SoftMaxGradPar
// composition in the last ulps; tests compare against the unfused
// reference with a tolerance.
func (a *Approximator) PotentialRT(r []float64, ta float64, s *EvalScratch, pi []float64) float64 {
	if len(s.Sub) != len(a.Trees) || len(s.PT) != len(a.Trees) {
		panic("capprox: scratch tree count mismatch")
	}
	// Pass 1: per-tree subtree sums, scaled to y = ta·(Σ_subtree r)/Scale,
	// tracking the per-tree max |y| for the shifted exponentials.
	par.Do(len(a.Trees), func(k int) {
		t := a.Trees[k]
		y := t.SubtreeSumsInto(r, s.Sub[k])
		scale := a.Scale[k]
		m := 0.0
		for v := 0; v < t.N(); v++ {
			if v == t.Root || scale[v] == 0 {
				y[v] = 0
				continue
			}
			y[v] = ta * y[v] / scale[v]
			if ay := math.Abs(y[v]); ay > m {
				m = ay
			}
		}
		s.tm[k] = m
	})
	m := 0.0
	for _, v := range s.tm {
		if v > m {
			m = v
		}
	}
	// Pass 2: shifted exponential sums per tree; the gradient numerators
	// e^{y-m} − e^{-y-m} overwrite y in place. Root slots are excluded
	// (they are not rows of R); zero-scale slots contribute like the
	// flat index always did. The per-tree sum accumulates per chunk of
	// the canonical par.Grid and folds the chunk partials in index
	// order — the same expression a sharded execution produces from
	// per-shard partials, so internal/shard reproduces this value
	// bit-for-bit (see DESIGN.md §13).
	par.Do(len(a.Trees), func(k int) {
		t := a.Trees[k]
		y := s.Sub[k]
		size, count := par.Grid(t.N())
		sum := 0.0
		for c := 0; c < count; c++ {
			lo, hi := c*size, (c+1)*size
			if hi > t.N() {
				hi = t.N()
			}
			ps := 0.0
			for v := lo; v < hi; v++ {
				if v == t.Root {
					y[v] = 0
					continue
				}
				p := math.Exp(y[v] - m)
				q := math.Exp(-y[v] - m)
				ps += p + q
				y[v] = p - q
			}
			sum += ps
		}
		s.ts[k] = sum
	})
	sum := 0.0
	for _, v := range s.ts {
		sum += v
	}
	inv := 1 / sum
	// Pass 3: π = Rᵀ·∇smax — the 1/sum normalization and the row scaling
	// fold into the top-down sweeps, then the per-vertex accumulation
	// combines trees in fixed order.
	par.Do(len(a.Trees), func(k int) {
		t := a.Trees[k]
		y := s.Sub[k]
		scale := a.Scale[k]
		buf := s.PT[k]
		for v := 0; v < t.N(); v++ {
			if v == t.Root || scale[v] == 0 {
				buf[v] = 0
				continue
			}
			buf[v] = y[v] * inv / scale[v]
		}
		t.RootPathSumsInto(buf, buf)
	})
	par.For(len(pi), func(lo, hi int) {
		for v := lo; v < hi; v++ {
			acc := 0.0
			for k := range s.PT {
				acc += s.PT[k][v]
			}
			pi[v] = acc
		}
	})
	return m + math.Log(sum)
}

// NormRb returns ‖Rb‖∞ — with the default (virtual) scaling this is a
// lower bound on the optimal congestion opt(b).
func (a *Approximator) NormRb(b []float64) float64 {
	m := 0.0
	for _, y := range a.ApplyR(b) {
		for _, x := range y {
			if x < 0 {
				x = -x
			}
			if x > m {
				m = x
			}
		}
	}
	return m
}

// EvalRounds charges one R or Rᵀ application per Corollary 9.3:
// Õ(√n + D). When the approximator was built normally the charge is the
// measured decomposition schedule (see evalSchedule); the formulaic
// trees·(D+√n) is the fallback for hand-assembled approximators.
func (a *Approximator) EvalRounds(n, diameter int) int64 {
	if a.evalSchedule > 0 {
		return a.evalSchedule
	}
	sq := int64(math.Ceil(math.Sqrt(float64(n))))
	return int64(len(a.Trees)) * (int64(diameter) + sq)
}
