package capprox

// Tests of the topology-churn layer: dirty-path structural updates must
// match full re-sweeps bit for bit in the integer regime, Build must
// compact-and-expand churned graphs, ResampleTrees must be a pure
// function of (graph, cfg, seeds), and the pooled TreeFlow scratch must
// not allocate.

import (
	"math/rand"
	"testing"

	"distflow/internal/graph"
	"distflow/internal/par"
)

// churnGraph builds a connected graph and applies a scripted batch of
// structural edits, returning the graph plus the TopoDelta describing
// the batch (the same bookkeeping distflow's Router derives).
func churnGraph(n int, seed int64) (*graph.Graph, TopoDelta) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, rng.Intn(v), 1+rng.Int63n(15))
	}
	for k := 0; k < 2*n; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, 1+rng.Int63n(15))
		}
	}
	g.Finalize()
	var d TopoDelta
	// Delete a few non-bridge edges (chords beyond the spanning chain).
	for i := 0; i < 3; i++ {
		e := n - 1 + rng.Intn(g.M()-(n-1))
		if g.Dead(e) {
			continue
		}
		ed := g.Edge(e)
		d.Deltas = append(d.Deltas, CapDelta{U: ed.U, V: ed.V, Diff: -float64(ed.Cap)})
		g.DeleteEdge(e)
	}
	// Insert a few edges.
	for i := 0; i < 3; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		c := 1 + rng.Int63n(15)
		g.AddEdge(u, v, c)
		d.Deltas = append(d.Deltas, CapDelta{U: u, V: v, Diff: float64(c)})
	}
	// Add two vertices, each linked to two anchors.
	for i := 0; i < 2; i++ {
		w := g.AddVertex()
		a1, a2 := rng.Intn(n), rng.Intn(n)
		c1, c2 := 1+rng.Int63n(15), 1+rng.Int63n(15)
		g.AddEdge(w, a1, c1)
		d.Deltas = append(d.Deltas, CapDelta{U: w, V: a1, Diff: float64(c1)})
		d.NewVertices = append(d.NewVertices, NewVertex{ID: w, Anchor: a1})
		if a2 != a1 {
			g.AddEdge(w, a2, c2)
			d.Deltas = append(d.Deltas, CapDelta{U: w, V: a2, Diff: float64(c2)})
		}
	}
	return g, d
}

// The dirty-path topology update must leave exactly the state the
// full-sweep path leaves (UpdateDirtyFraction < 0) — cut capacities bit
// for bit, α included.
func TestUpdateTopologyDirtyMatchesFullSweep(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		// Build the approximator on a pre-churn graph, apply the same
		// scripted batch to the graph, then UpdateTopology at both
		// settings and compare the full resulting state.
		mk := func(frac float64) (*graph.Graph, *Approximator, TopoDelta) {
			rng := rand.New(rand.NewSource(int64(60 + trial)))
			n := 16 + 4*trial
			g := graph.New(n)
			for v := 1; v < n; v++ {
				g.AddEdge(v, rng.Intn(v), 1+rng.Int63n(15))
			}
			for k := 0; k < 2*n; k++ {
				u, v := rng.Intn(n), rng.Intn(n)
				if u != v {
					g.AddEdge(u, v, 1+rng.Int63n(15))
				}
			}
			g.Finalize()
			cfg := Config{ExactCuts: true, UpdateDirtyFraction: frac}
			a, err := Build(g, cfg, rand.New(rand.NewSource(5)))
			if err != nil {
				t.Fatal(err)
			}
			var d TopoDelta
			// Delete three chords, insert three edges, add a linked vertex.
			for i := 0; i < 3; i++ {
				e := n - 1 + i*2
				if e >= g.M() || g.Dead(e) {
					continue
				}
				ed := g.Edge(e)
				d.Deltas = append(d.Deltas, CapDelta{U: ed.U, V: ed.V, Diff: -float64(ed.Cap)})
				g.DeleteEdge(e)
			}
			for i := 0; i < 3; i++ {
				u, v := rng.Intn(n), rng.Intn(n)
				if u == v {
					continue
				}
				c := 1 + rng.Int63n(15)
				g.AddEdge(u, v, c)
				d.Deltas = append(d.Deltas, CapDelta{U: u, V: v, Diff: float64(c)})
			}
			w := g.AddVertex()
			c := 1 + rng.Int63n(15)
			g.AddEdge(w, 0, c)
			d.NewVertices = append(d.NewVertices, NewVertex{ID: w, Anchor: 0})
			d.Deltas = append(d.Deltas, CapDelta{U: w, V: 0, Diff: float64(c)})
			dirty, swept, _ := a.UpdateTopology(g, cfg, d)
			if frac > 0 && swept != 0 {
				t.Fatalf("trial %d: dirty run swept %d trees", trial, swept)
			}
			if frac < 0 && dirty != 0 {
				t.Fatalf("trial %d: full run patched %d trees", trial, dirty)
			}
			return g, a, d
		}
		_, ad, _ := mk(1e9)
		_, af, _ := mk(-1)
		if ad.Alpha != af.Alpha || ad.AlphaLow != af.AlphaLow {
			t.Fatalf("trial %d: alpha %v/%v (dirty) vs %v/%v (full)",
				trial, ad.Alpha, ad.AlphaLow, af.Alpha, af.AlphaLow)
		}
		for k := range ad.Trees {
			for v := 0; v < ad.Trees[k].N(); v++ {
				if ad.CutCap[k][v] != af.CutCap[k][v] {
					t.Fatalf("trial %d: cut cap tree %d slot %d: %v vs %v",
						trial, k, v, ad.CutCap[k][v], af.CutCap[k][v])
				}
				if ad.Trees[k].Cap[v] != af.Trees[k].Cap[v] || ad.Scale[k][v] != af.Scale[k][v] {
					t.Fatalf("trial %d: tree %d slot %d virtual/scale differ", trial, k, v)
				}
			}
		}
	}
}

// Build on a churned graph must compact, sample, and expand: removed
// vertices become excluded root leaves, live slots match a direct build
// on the equivalent compacted graph.
func TestBuildOnChurnedGraph(t *testing.T) {
	g, _ := churnGraph(20, 77)
	// Remove one low-degree vertex (keeping the rest connected: vertex
	// ids beyond the spanning chain root; retry until connected).
	for v := g.N() - 1; v > 0; v-- {
		if g.Removed(v) {
			continue
		}
		clone := g.Clone()
		clone.RemoveVertex(v)
		if clone.Connected() {
			g.RemoveVertex(v)
			break
		}
	}
	if !g.Churned() {
		t.Fatal("test graph is not churned")
	}
	cfg := Config{ExactCuts: true}
	a, err := Build(g, cfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Alpha < 1 {
		t.Fatalf("alpha %v < 1", a.Alpha)
	}
	for k, tr := range a.Trees {
		if tr.N() != g.N() {
			t.Fatalf("tree %d spans %d of %d vertices", k, tr.N(), g.N())
		}
		for v := 0; v < g.N(); v++ {
			if g.Removed(v) {
				if a.Scale[k][v] != 0 || a.CutCap[k][v] != 0 {
					t.Fatalf("removed vertex %d has live row in tree %d", v, k)
				}
			}
		}
	}
	// R application must still be well-defined on a demand over live
	// vertices.
	b := make([]float64, g.N())
	s, tt := -1, -1
	for v := 0; v < g.N(); v++ {
		if !g.Removed(v) {
			if s < 0 {
				s = v
			} else {
				tt = v
			}
		}
	}
	b[s], b[tt] = 1, -1
	if norm := a.NormRb(b); norm <= 0 {
		t.Fatalf("NormRb %v on live demand", norm)
	}
}

// ResampleTrees must replace exactly the named trees, reproduce
// identically for identical seeds, and differ for different seeds.
func TestResampleTreesDeterministic(t *testing.T) {
	mk := func(workers int) *Approximator {
		defer par.SetWorkers(par.SetWorkers(workers))
		g, d := churnGraph(24, 88)
		cfg := Config{ExactCuts: true}
		// Build pre-churn is impossible here (churnGraph already applied
		// the batch), so build on the churned graph and resample.
		a, err := Build(g, cfg, rand.New(rand.NewSource(4)))
		if err != nil {
			t.Fatal(err)
		}
		_ = d
		if err := a.ResampleTrees(g, cfg, []int{0, 2}, []int64{101, 202}); err != nil {
			t.Fatal(err)
		}
		return a
	}
	a1, a4 := mk(1), mk(4)
	if a1.Alpha != a4.Alpha {
		t.Fatalf("resample alpha differs across workers: %v vs %v", a1.Alpha, a4.Alpha)
	}
	for k := range a1.Trees {
		for v := 0; v < a1.Trees[k].N(); v++ {
			if a1.Trees[k].Parent[v] != a4.Trees[k].Parent[v] ||
				a1.CutCap[k][v] != a4.CutCap[k][v] {
				t.Fatalf("tree %d differs at %d across worker counts", k, v)
			}
		}
	}
}

// The pooled TreeFlow sweep must not allocate once warm (the ROADMAP
// cut-capacity scratch-reuse item).
func TestTreeFlowPooledAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation defeats sync.Pool caching")
	}
	rng := rand.New(rand.NewSource(3))
	g := graph.New(64)
	for v := 1; v < 64; v++ {
		g.AddEdge(v, rng.Intn(v), 1+rng.Int63n(9))
	}
	a, err := Build(g, Config{ExactCuts: true}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	tr := a.Trees[0]
	pairs := livePairs(g)
	dst := make([]float64, g.N())
	treeFlowPooled(tr, pairs, dst) // warm the pool
	if avg := testing.AllocsPerRun(50, func() {
		treeFlowPooled(tr, pairs, dst)
	}); avg > 0.5 {
		t.Errorf("pooled TreeFlow allocates %.1f per sweep, want 0", avg)
	}
	// And the pooled sweep is bit-identical to the allocating one.
	want := tr.TreeFlow(pairs)
	for v := range want {
		if dst[v] != want[v] {
			t.Fatalf("pooled sweep differs at %d: %v vs %v", v, dst[v], want[v])
		}
	}
}

// vtree sanity: the AddLeaf used by UpdateTopology keeps ids aligned
// with graph AddVertex order.
func TestUpdateTopologyLeafIDs(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 2)
	g.AddEdge(3, 0, 2)
	g.Finalize()
	cfg := Config{ExactCuts: true}
	a, err := Build(g, cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	w := g.AddVertex()
	g.AddEdge(w, 1, 7)
	d := TopoDelta{
		NewVertices: []NewVertex{{ID: w, Anchor: 1}},
		Deltas:      []CapDelta{{U: w, V: 1, Diff: 7}},
	}
	a.UpdateTopology(g, cfg, d)
	for k, tr := range a.Trees {
		if tr.N() != g.N() {
			t.Fatalf("tree %d did not grow", k)
		}
		if tr.Parent[w] != 1 {
			t.Fatalf("tree %d leaf parent %d, want anchor 1", k, tr.Parent[w])
		}
		if a.CutCap[k][w] != 7 {
			t.Fatalf("tree %d new-leaf cut %v, want 7", k, a.CutCap[k][w])
		}
		if tr.Cap[w] != 7 {
			t.Fatalf("tree %d new-leaf virtual cap %v, want 7", k, tr.Cap[w])
		}
	}
}
