package capprox

// PotentialRT fuses ApplyR → soft-max gradient → ApplyRT into per-tree
// sweeps. These tests pin it against the unfused composition (which
// remains the reference implementation) and its worker-count
// determinism.

import (
	"math"
	"math/rand"
	"testing"

	"distflow/internal/graph"
	"distflow/internal/numutil"
	"distflow/internal/par"
)

// unfusedPotentialRT reproduces the pre-fusion solver pipeline: flat
// scatter index over all non-root (tree, vertex) slots, SoftMaxGrad,
// then ApplyRTInto.
func unfusedPotentialRT(a *Approximator, r []float64, ta float64) (phi float64, pi []float64) {
	rr := a.ApplyR(r)
	var y []float64
	type slot struct{ k, v int }
	var slots []slot
	for k, t := range a.Trees {
		for v := 0; v < t.N(); v++ {
			if v != t.Root {
				slots = append(slots, slot{k, v})
				y = append(y, ta*rr[k][v])
			}
		}
	}
	grad := make([]float64, len(y))
	phi = numutil.SoftMaxGrad(y, grad)
	prices := make([][]float64, len(a.Trees))
	for k, t := range a.Trees {
		prices[k] = make([]float64, t.N())
	}
	for i, s := range slots {
		prices[s.k][s.v] = grad[i]
	}
	pi = a.ApplyRT(prices)
	return phi, pi
}

func fusedTestApproximator(t *testing.T, seed int64) (*graph.Graph, *Approximator) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.CapUniform(graph.GNP(80, 0.1, rng), 16, rng)
	a, err := Build(g, Config{ExactCuts: true}, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		t.Fatal(err)
	}
	return g, a
}

func TestPotentialRTMatchesUnfused(t *testing.T) {
	for trial := int64(0); trial < 3; trial++ {
		g, a := fusedTestApproximator(t, 100+trial)
		rng := rand.New(rand.NewSource(200 + trial))
		r := make([]float64, g.N())
		var sum float64
		for v := 1; v < g.N(); v++ {
			r[v] = rng.NormFloat64()
			sum += r[v]
		}
		r[0] = -sum
		for _, ta := range []float64{0.5, 4, 40} {
			scratch := a.NewEvalScratch()
			pi := make([]float64, g.N())
			phi := a.PotentialRT(r, ta, scratch, pi)
			wantPhi, wantPi := unfusedPotentialRT(a, r, ta)
			if math.Abs(phi-wantPhi) > 1e-9*math.Max(1, math.Abs(wantPhi)) {
				t.Fatalf("ta=%v: phi %v, unfused %v", ta, phi, wantPhi)
			}
			for v := range pi {
				if math.Abs(pi[v]-wantPi[v]) > 1e-9*math.Max(1, math.Abs(wantPi[v])) {
					t.Fatalf("ta=%v: pi[%d] = %v, unfused %v", ta, v, pi[v], wantPi[v])
				}
			}
		}
	}
}

// The fused evaluation must be bit-identical at every worker count.
func TestPotentialRTWorkerCountDeterminism(t *testing.T) {
	g, a := fusedTestApproximator(t, 300)
	r := make([]float64, g.N())
	rng := rand.New(rand.NewSource(301))
	var sum float64
	for v := 1; v < g.N(); v++ {
		r[v] = rng.NormFloat64()
		sum += r[v]
	}
	r[0] = -sum
	run := func(workers int) (float64, []float64) {
		defer par.SetWorkers(par.SetWorkers(workers))
		scratch := a.NewEvalScratch()
		pi := make([]float64, g.N())
		return a.PotentialRT(r, 7, scratch, pi), pi
	}
	wantPhi, wantPi := run(1)
	for _, w := range []int{2, 7} {
		phi, pi := run(w)
		if phi != wantPhi {
			t.Fatalf("workers=%d: phi %v, want %v", w, phi, wantPhi)
		}
		for v := range pi {
			if pi[v] != wantPi[v] {
				t.Fatalf("workers=%d: pi[%d] differs", w, v)
			}
		}
	}
}

// Extreme residual magnitudes must not overflow: the shifted
// exponentials keep the fused soft-max finite exactly like the
// reference.
func TestPotentialRTStability(t *testing.T) {
	g, a := fusedTestApproximator(t, 400)
	r := make([]float64, g.N())
	r[1] = 1e8
	r[2] = -1e8
	scratch := a.NewEvalScratch()
	pi := make([]float64, g.N())
	phi := a.PotentialRT(r, 100, scratch, pi)
	if math.IsInf(phi, 0) || math.IsNaN(phi) {
		t.Fatalf("phi = %v", phi)
	}
	for v, p := range pi {
		if math.IsInf(p, 0) || math.IsNaN(p) {
			t.Fatalf("pi[%d] = %v", v, p)
		}
	}
}
