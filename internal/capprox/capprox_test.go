package capprox

import (
	"math"
	"math/rand"
	"testing"

	"distflow/internal/graph"
	"distflow/internal/seqflow"
	"distflow/internal/vtree"
)

// newVTree is a test-local alias keeping call sites short.
func newVTree(root int, parent []int, caps []float64) (*vtree.VTree, error) {
	return vtree.New(root, parent, caps)
}

func build(t *testing.T, g *graph.Graph, cfg Config, seed int64) *Approximator {
	t.Helper()
	a, err := Build(g, cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBuildBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.CapUniform(graph.Grid(8, 8), 10, rng)
	a := build(t, g, Config{}, 2)
	if len(a.Trees) < 6 {
		t.Fatalf("sampled %d trees, want ≈ log n", len(a.Trees))
	}
	for k, tr := range a.Trees {
		if tr.N() != g.N() {
			t.Fatalf("tree %d spans %d of %d", k, tr.N(), g.N())
		}
	}
	if a.Alpha < 1 || a.AlphaLow < 1 {
		t.Errorf("alpha measurements below 1: %v %v", a.Alpha, a.AlphaLow)
	}
	if a.Ledger.Total() <= 0 {
		t.Error("no rounds charged")
	}
}

func TestBuildFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, fam := range graph.Families() {
		t.Run(fam.Name, func(t *testing.T) {
			g := fam.Make(100, rng)
			a := build(t, g, Config{Trees: 3}, 4)
			if len(a.Trees) != 3 {
				t.Fatalf("trees = %d", len(a.Trees))
			}
		})
	}
}

// The defining property (§2): ‖Rb‖∞ ≤ opt(b) ≤ α'·‖Rb‖∞ for s-t
// demands, where opt(b) = F/mincut is computable exactly via Dinic.
func TestCongestionApproximationSTDemands(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.CapUniform(graph.GNP(48, 0.12, rng), 8, rng)
	a := build(t, g, Config{}, 6)
	worstUnder, worstOver := 1.0, 1.0
	for trial := 0; trial < 10; trial++ {
		s := rng.Intn(g.N())
		tt := rng.Intn(g.N())
		if s == tt {
			continue
		}
		mincut := seqflow.MinCutValue(g, s, tt)
		if mincut == 0 {
			continue
		}
		opt := 1.0 / float64(mincut) // congestion of optimally routing 1 unit
		lb := a.NormRb(graph.STDemand(g.N(), s, tt, 1))
		if lb > opt*a.AlphaLow*1.0001 {
			t.Errorf("trial %d: ‖Rb‖∞ = %v exceeds opt·AlphaLow = %v·%v", trial, lb, opt, a.AlphaLow)
		}
		if r := opt / lb; r > worstOver {
			worstOver = r
		}
		if r := lb / opt; r > worstUnder {
			worstUnder = r
		}
	}
	// The distortion must be modest on these sizes; α ∈ n^{o(1)} means
	// single digits here. Allow a conservative margin.
	if worstOver > 64 {
		t.Errorf("opt/‖Rb‖∞ distortion %v too large (alpha=%v)", worstOver, a.Alpha)
	}
}

// With ExactCuts, ‖Rb‖∞ ≤ opt(b) must hold unconditionally: every row
// is a genuine cut with its exact capacity.
func TestExactCutsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.CapUniform(graph.GNP(40, 0.15, rng), 6, rng)
	a := build(t, g, Config{ExactCuts: true, Trees: 5}, 8)
	for trial := 0; trial < 15; trial++ {
		s := rng.Intn(g.N())
		tt := rng.Intn(g.N())
		if s == tt {
			continue
		}
		mincut := seqflow.MinCutValue(g, s, tt)
		if mincut == 0 {
			continue
		}
		opt := 1.0 / float64(mincut)
		lb := a.NormRb(graph.STDemand(g.N(), s, tt, 1))
		if lb > opt*1.0000001 {
			t.Fatalf("trial %d: exact-cut lower bound violated: %v > %v", trial, lb, opt)
		}
	}
}

// R and Rᵀ must be adjoint: <Rb, p> == <b, Rᵀp>.
func TestRAndRTAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.GNP(30, 0.15, rng)
	a := build(t, g, Config{Trees: 4}, 10)
	n := g.N()
	for trial := 0; trial < 20; trial++ {
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		y := a.ApplyR(b)
		p := make([][]float64, len(y))
		var lhs float64
		for k := range y {
			p[k] = make([]float64, n)
			for v := range p[k] {
				p[k][v] = rng.NormFloat64()
				if v == a.Trees[k].Root {
					p[k][v] = 0
				}
				lhs += y[k][v] * p[k][v]
			}
		}
		pi := a.ApplyRT(p)
		var rhs float64
		for v := range pi {
			rhs += b[v] * pi[v]
		}
		if math.Abs(lhs-rhs) > 1e-6*math.Max(1, math.Abs(lhs)) {
			t.Fatalf("trial %d: adjoint broken: %v vs %v", trial, lhs, rhs)
		}
	}
}

// With ExactCuts, for any feasible demand, ‖Rb‖∞ never exceeds the
// congestion of the best routing we can construct explicitly (routing b
// on a real spanning subgraph tree of G is a feasible routing, so its
// congestion upper-bounds opt(b), which in turn dominates ‖Rb‖∞).
func TestLowerBoundBelowAnyExplicitRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graph.CapUniform(graph.Grid(6, 6), 5, rng)
	a := build(t, g, Config{ExactCuts: true}, 12)
	// Real spanning tree of G (BFS), with subtree routing.
	_, pe := g.BFS(0)
	parent := make([]int, g.N())
	caps := make([]float64, g.N())
	for v := 0; v < g.N(); v++ {
		if v == 0 {
			parent[v] = -1
			continue
		}
		parent[v] = g.Other(pe[v], v)
		caps[v] = float64(g.Cap(pe[v]))
	}
	bfsTree, err := newVTree(0, parent, caps)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		b := make([]float64, g.N())
		var sum float64
		for v := 1; v < g.N(); v++ {
			b[v] = rng.NormFloat64()
			sum += b[v]
		}
		b[0] = -sum
		lb := a.NormRb(b)
		ub := bfsTree.Congestion(b)
		if lb > ub*1.0000001 {
			t.Fatalf("trial %d: lower bound %v exceeds explicit routing congestion %v", trial, lb, ub)
		}
	}
}

func TestLevelsShrink(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := graph.GNP(200, 0.03, rng)
	a := build(t, g, Config{Trees: 2}, 14)
	for k, levels := range a.Levels {
		for i := 1; i < len(levels); i++ {
			if levels[i] >= levels[i-1] {
				t.Errorf("tree %d: level %d did not shrink: %v", k, i, levels)
			}
		}
		if levels[len(levels)-1] != 1 {
			t.Errorf("tree %d: hierarchy did not reach a single cluster: %v", k, levels)
		}
	}
}

func TestErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	if _, err := Build(graph.New(0), Config{}, rng); err == nil {
		t.Error("empty graph accepted")
	}
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	if _, err := Build(g, Config{}, rng); err == nil {
		t.Error("disconnected graph accepted")
	}
}

func TestSingleVertex(t *testing.T) {
	a := build(t, graph.New(1), Config{Trees: 2}, 16)
	if len(a.Trees) != 2 || a.Trees[0].N() != 1 {
		t.Fatal("single-vertex approximator wrong")
	}
	if got := a.NormRb([]float64{0}); got != 0 {
		t.Errorf("NormRb = %v", got)
	}
}

func TestSparsifierPath(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := graph.Complete(64)
	a, err := Build(g, Config{Trees: 2, UseSparsifier: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ledger.Phase("sparsify") == 0 {
		t.Error("sparsifier rounds not charged on dense graph")
	}
}

func TestEvalRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g := graph.Grid(5, 5)
	a := build(t, g, Config{Trees: 3}, 20)
	r := a.EvalRounds(g.N(), g.Diameter())
	if r <= 0 {
		t.Errorf("EvalRounds = %d", r)
	}
	_ = rng
}
