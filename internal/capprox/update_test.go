package capprox

// Tests of the dirty-path UpdateCapacities against its full-sweep
// oracle (RefreshCapacities): in the integer-capacity regime the two
// must leave bit-identical approximator state — virtual capacities,
// cut capacities, row scalings, and distortion extrema — on fuzzed
// edit batches, whichever side of the dirty-fraction threshold each
// tree lands on.

import (
	"math/rand"
	"testing"

	"distflow/internal/graph"
)

// randomConnected builds a connected multigraph: spanning chain plus
// random chords, integer capacities.
func randomConnected(n int, rng *rand.Rand) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, rng.Intn(v), 1+rng.Int63n(20))
	}
	for k := 0; k < n; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, 1+rng.Int63n(20))
		}
	}
	return g
}

// applyEdits mutates g with random capacity edits (one per edge at
// most, as a coalesced batch) and returns the matching delta list.
func applyEdits(g *graph.Graph, count int, rng *rand.Rand) []CapDelta {
	picked := map[int]bool{}
	var deltas []CapDelta
	for len(deltas) < count {
		e := rng.Intn(g.M())
		if picked[e] {
			continue
		}
		picked[e] = true
		ed := g.Edge(e)
		newCap := 1 + rng.Int63n(40)
		if newCap == ed.Cap {
			continue
		}
		deltas = append(deltas, CapDelta{U: ed.U, V: ed.V, Diff: float64(newCap) - float64(ed.Cap)})
		g.SetCap(e, newCap)
	}
	return deltas
}

func sameState(t *testing.T, label string, a, b *Approximator) {
	t.Helper()
	if a.Alpha != b.Alpha || a.AlphaLow != b.AlphaLow {
		t.Fatalf("%s: alpha %v/%v vs %v/%v", label, a.Alpha, a.AlphaLow, b.Alpha, b.AlphaLow)
	}
	for k := range a.Trees {
		for v := 0; v < a.Trees[k].N(); v++ {
			if a.Trees[k].Cap[v] != b.Trees[k].Cap[v] {
				t.Fatalf("%s: tree %d virtual cap differs at %d: %v vs %v",
					label, k, v, a.Trees[k].Cap[v], b.Trees[k].Cap[v])
			}
			if a.CutCap[k][v] != b.CutCap[k][v] {
				t.Fatalf("%s: tree %d cut cap differs at %d: %v vs %v",
					label, k, v, a.CutCap[k][v], b.CutCap[k][v])
			}
			if a.Scale[k][v] != b.Scale[k][v] {
				t.Fatalf("%s: tree %d scale differs at %d: %v vs %v",
					label, k, v, a.Scale[k][v], b.Scale[k][v])
			}
		}
	}
}

// Dirty-path updates must be bit-identical to the full-sweep oracle on
// fuzzed batches, across successive updates, for both the exact-cut and
// the paper (virtual) scaling.
func TestUpdateCapacitiesDirtyMatchesFullSweep(t *testing.T) {
	for _, exact := range []bool{true, false} {
		rng := rand.New(rand.NewSource(31))
		for trial := 0; trial < 4; trial++ {
			n := 12 + rng.Intn(40)
			g := randomConnected(n, rng)
			// Two identical approximators over structurally equal graphs
			// (the oracle mutates its own copy of the capacities).
			g2 := graph.New(n)
			for _, e := range g.Edges() {
				g2.AddEdge(e.U, e.V, e.Cap)
			}
			cfgDirty := Config{Trees: 3, ExactCuts: exact, UpdateDirtyFraction: 1e9}
			cfgFull := Config{Trees: 3, ExactCuts: exact, UpdateDirtyFraction: -1}
			ad := build(t, g, cfgDirty, int64(trial+1))
			af := build(t, g2, cfgFull, int64(trial+1))
			sameState(t, "post-build", ad, af)
			for batch := 0; batch < 5; batch++ {
				deltas := applyEdits(g, 1+rng.Intn(4), rng)
				for i, e := range g.Edges() {
					g2.SetCap(i, e.Cap)
				}
				dirty, swept := ad.UpdateCapacities(g, cfgDirty, deltas)
				if swept != 0 || dirty != len(ad.Trees) {
					t.Fatalf("trial %d batch %d: forced-dirty update swept %d trees", trial, batch, swept)
				}
				if d, s := af.UpdateCapacities(g2, cfgFull, deltas); d != 0 || s != len(af.Trees) {
					t.Fatalf("trial %d batch %d: oracle took the dirty path (%d/%d)", trial, batch, d, s)
				}
				sameState(t, "post-update", ad, af)
			}
		}
	}
}

// The dirty-fraction threshold routes trees to the right path: a
// microscopic budget sweeps every tree, a huge one sweeps none, and the
// default splits by measured path work — all with identical results.
func TestUpdateCapacitiesFallbackThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	n := 30
	g := randomConnected(n, rng)
	g2 := graph.New(n)
	for _, e := range g.Edges() {
		g2.AddEdge(e.U, e.V, e.Cap)
	}
	tiny := Config{Trees: 3, ExactCuts: true, UpdateDirtyFraction: 1e-9}
	huge := Config{Trees: 3, ExactCuts: true, UpdateDirtyFraction: 1e9}
	at := build(t, g, tiny, 7)
	ah := build(t, g2, huge, 7)
	deltas := applyEdits(g, 2, rng)
	for i, e := range g.Edges() {
		g2.SetCap(i, e.Cap)
	}
	if d, s := at.UpdateCapacities(g, tiny, deltas); s != len(at.Trees) || d != 0 {
		t.Fatalf("tiny budget: %d dirty / %d swept, want all swept", d, s)
	}
	if d, s := ah.UpdateCapacities(g2, huge, deltas); d != len(ah.Trees) || s != 0 {
		t.Fatalf("huge budget: %d dirty / %d swept, want all dirty", d, s)
	}
	sameState(t, "threshold", at, ah)
}

// An empty edit list is a no-op at this layer too.
func TestUpdateCapacitiesEmptyBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	g := randomConnected(16, rng)
	a := build(t, g, Config{Trees: 2}, 3)
	alpha, rounds := a.Alpha, a.Ledger.Total()
	if d, s := a.UpdateCapacities(g, Config{Trees: 2}, nil); d != 0 || s != 0 {
		t.Fatalf("empty batch touched trees: %d/%d", d, s)
	}
	if a.Alpha != alpha || a.Ledger.Total() != rounds {
		t.Fatal("empty batch changed alpha or charged rounds")
	}
}
