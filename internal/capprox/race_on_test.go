//go:build race

package capprox

// raceEnabled reports that the race detector is active: its
// instrumentation defeats sync.Pool's per-P caches, so zero-allocation
// assertions on pooled paths are skipped.
const raceEnabled = true
