package capprox

import (
	"math/rand"
	"testing"

	"distflow/internal/graph"
	"distflow/internal/jtree"
	"distflow/internal/lsst"
	"distflow/internal/par"
)

// The construction is randomized but seed-reproducible: identical seeds
// must give identical hierarchies, capacities, and distortion
// measurements (what "with high probability" becomes under a fixed
// random tape).
func TestBuildDeterministic(t *testing.T) {
	g := graph.CapUniform(graph.Grid(7, 7), 9, rand.New(rand.NewSource(1)))
	build := func() *Approximator {
		a, err := Build(g, Config{}, rand.New(rand.NewSource(55)))
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a, b := build(), build()
	if a.Alpha != b.Alpha || a.AlphaLow != b.AlphaLow {
		t.Fatalf("alpha mismatch: %v/%v vs %v/%v", a.Alpha, a.AlphaLow, b.Alpha, b.AlphaLow)
	}
	if len(a.Trees) != len(b.Trees) {
		t.Fatal("tree count mismatch")
	}
	for k := range a.Trees {
		for v := 0; v < a.Trees[k].N(); v++ {
			if a.Trees[k].Parent[v] != b.Trees[k].Parent[v] || a.Trees[k].Cap[v] != b.Trees[k].Cap[v] {
				t.Fatalf("tree %d differs at %d", k, v)
			}
		}
	}
	if a.Ledger.Total() != b.Ledger.Total() {
		t.Errorf("ledger totals differ: %d vs %d", a.Ledger.Total(), b.Ledger.Total())
	}
}

// Candidate evaluation runs tree- and candidate-parallel; the sampled
// hierarchy must still be a pure function of the master seed at every
// worker count (per-candidate PRNGs are seeded before the parallel
// region and the argmin selection runs in candidate order after it).
func TestBuildWorkerCountDeterminism(t *testing.T) {
	g := graph.CapUniform(graph.GNP(300, 8.0/300, rand.New(rand.NewSource(4))), 32, rand.New(rand.NewSource(5)))
	build := func(workers int) *Approximator {
		defer par.SetWorkers(par.SetWorkers(workers))
		a, err := Build(g, Config{}, rand.New(rand.NewSource(21)))
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a, b, c := build(1), build(3), build(16)
	for _, other := range []*Approximator{b, c} {
		if a.Alpha != other.Alpha || a.AlphaLow != other.AlphaLow {
			t.Fatalf("alpha differs across worker counts: %v/%v vs %v/%v",
				a.Alpha, a.AlphaLow, other.Alpha, other.AlphaLow)
		}
		if len(a.Trees) != len(other.Trees) {
			t.Fatal("tree count differs across worker counts")
		}
		for k := range a.Trees {
			for v := 0; v < a.Trees[k].N(); v++ {
				if a.Trees[k].Parent[v] != other.Trees[k].Parent[v] ||
					a.Trees[k].Cap[v] != other.Trees[k].Cap[v] {
					t.Fatalf("tree %d differs at vertex %d across worker counts", k, v)
				}
			}
		}
		if a.Ledger.Total() != other.Ledger.Total() {
			t.Fatalf("ledger totals differ across worker counts: %d vs %d",
				a.Ledger.Total(), other.Ledger.Total())
		}
	}
}

// Different seeds must (overwhelmingly) give different trees — the
// distribution is non-degenerate, which Lemma 3.3's sampling argument
// needs.
func TestBuildSeedSensitivity(t *testing.T) {
	g := graph.CapUniform(graph.Grid(7, 7), 9, rand.New(rand.NewSource(1)))
	a, err := Build(g, Config{Trees: 1}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(2); seed < 8; seed++ {
		b, err := Build(g, Config{Trees: 1}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N(); v++ {
			if a.Trees[0].Parent[v] != b.Trees[0].Parent[v] {
				return // found a difference: distribution non-degenerate
			}
		}
	}
	t.Error("seven seeds produced identical virtual trees")
}

// The version-1 heap race (lsst.Config.HeapRace) is kept for the scale
// ladder's A/B rung; it must stay worker-count deterministic too, or
// race_speedup would compare a deterministic build against noise.
func TestBuildWorkerCountDeterminismHeapRace(t *testing.T) {
	g := graph.CapUniform(graph.GNP(300, 8.0/300, rand.New(rand.NewSource(4))), 32, rand.New(rand.NewSource(5)))
	cfg := Config{Step: jtree.Config{LSST: lsst.Config{HeapRace: true}}}
	build := func(workers int) *Approximator {
		defer par.SetWorkers(par.SetWorkers(workers))
		a, err := Build(g, cfg, rand.New(rand.NewSource(21)))
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a, b, c := build(1), build(3), build(16)
	for _, other := range []*Approximator{b, c} {
		if a.Alpha != other.Alpha || a.AlphaLow != other.AlphaLow {
			t.Fatalf("heap-race alpha differs across worker counts: %v/%v vs %v/%v",
				a.Alpha, a.AlphaLow, other.Alpha, other.AlphaLow)
		}
		for k := range a.Trees {
			for v := 0; v < a.Trees[k].N(); v++ {
				if a.Trees[k].Parent[v] != other.Trees[k].Parent[v] ||
					a.Trees[k].Cap[v] != other.Trees[k].Cap[v] {
					t.Fatalf("heap-race tree %d differs at vertex %d across worker counts", k, v)
				}
			}
		}
	}
}
