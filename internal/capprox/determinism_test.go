package capprox

import (
	"math/rand"
	"testing"

	"distflow/internal/graph"
)

// The construction is randomized but seed-reproducible: identical seeds
// must give identical hierarchies, capacities, and distortion
// measurements (what "with high probability" becomes under a fixed
// random tape).
func TestBuildDeterministic(t *testing.T) {
	g := graph.CapUniform(graph.Grid(7, 7), 9, rand.New(rand.NewSource(1)))
	build := func() *Approximator {
		a, err := Build(g, Config{}, rand.New(rand.NewSource(55)))
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a, b := build(), build()
	if a.Alpha != b.Alpha || a.AlphaLow != b.AlphaLow {
		t.Fatalf("alpha mismatch: %v/%v vs %v/%v", a.Alpha, a.AlphaLow, b.Alpha, b.AlphaLow)
	}
	if len(a.Trees) != len(b.Trees) {
		t.Fatal("tree count mismatch")
	}
	for k := range a.Trees {
		for v := 0; v < a.Trees[k].N(); v++ {
			if a.Trees[k].Parent[v] != b.Trees[k].Parent[v] || a.Trees[k].Cap[v] != b.Trees[k].Cap[v] {
				t.Fatalf("tree %d differs at %d", k, v)
			}
		}
	}
	if a.Ledger.Total() != b.Ledger.Total() {
		t.Errorf("ledger totals differ: %d vs %d", a.Ledger.Total(), b.Ledger.Total())
	}
}

// Different seeds must (overwhelmingly) give different trees — the
// distribution is non-degenerate, which Lemma 3.3's sampling argument
// needs.
func TestBuildSeedSensitivity(t *testing.T) {
	g := graph.CapUniform(graph.Grid(7, 7), 9, rand.New(rand.NewSource(1)))
	a, err := Build(g, Config{Trees: 1}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(2); seed < 8; seed++ {
		b, err := Build(g, Config{Trees: 1}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N(); v++ {
			if a.Trees[0].Parent[v] != b.Trees[0].Parent[v] {
				return // found a difference: distribution non-degenerate
			}
		}
	}
	t.Error("seven seeds produced identical virtual trees")
}
