package capprox

// Topology churn: patch the sampled congestion approximator through
// structural edits — edge inserts/deletes, vertex adds/removes —
// instead of resampling every tree (DESIGN.md §8).
//
// The machinery extends §7's dirty-path capacity updates from capacity
// space to structure space using the same Lemma 8.3 tree-flow identity:
//
//   - Deleting edge (u,v) removes its cap(e) units from the tree path
//     u→LCA(u,v)→v — a dirty-path delta of −cap(e).
//   - Inserting edge (u,v) routes its capacity along the existing tree
//     path — a delta of +cap(e). The tree topology is held fixed; only
//     the loads (exact cut capacities) and virtual capacities move.
//   - A new vertex enters every sampled tree as a leaf under a
//     deterministic anchor (the other endpoint of its heaviest link,
//     earliest on ties — the tree then routes the leaf along its
//     dominant edge); its subtree cut is exactly its incident
//     capacity, which the insert deltas of its links build up from
//     zero.
//   - A removed vertex stays in every tree as a capacity-less Steiner
//     point: its incident edges are deleted (driving the crossing cuts
//     down by the usual deltas), and any slot whose cut loses every
//     live edge gets scale 0, excluding its row from R.
//
// Exact cut capacities therefore remain bit-identical to a full
// TreeFlow re-sweep in the integer-capacity regime; the virtual
// capacities drift the same way §7's capacity edits drift, and the
// honestly re-measured α drives the caller's patch-vs-resample rule:
// individual trees degraded past the rebuild threshold are resampled
// from the compacted active subgraph (ResampleTrees) — a per-tree cost
// instead of a full Build.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"distflow/internal/congest"
	"distflow/internal/graph"
	"distflow/internal/par"
	"distflow/internal/vtree"
)

// tfScratch pools TreeFlow/LCA scratch across trees and workers: the
// cut-capacity phase sweeps every tree over the same vertex count, so
// the lifting tables and delta buffers are perfectly reusable instead
// of allocated fresh per tree (ROADMAP item; the AllocsPerRun guard is
// TestTreeFlowPooledAllocs).
var tfScratch = sync.Pool{New: func() any { return new(vtree.TreeFlowScratch) }}

// treeFlowPooled runs one TreeFlow sweep against pooled scratch and
// copies the loads into dst (nil = allocate). Values are bit-identical
// to t.TreeFlow's; beyond dst the call is allocation-free once the pool
// is warm.
func treeFlowPooled(t *vtree.VTree, pairs []vtree.EdgeEndpoint, dst []float64) []float64 {
	sc := tfScratch.Get().(*vtree.TreeFlowScratch)
	load := t.TreeFlowWS(pairs, sc)
	if dst == nil {
		dst = make([]float64, len(load))
	}
	copy(dst, load)
	tfScratch.Put(sc)
	return dst
}

// livePairs materializes the graph's edge list for TreeFlow. Tombstones
// ride along with capacity 0 — they route nothing — so edge ids keep
// their positions and the list is O(M) to build.
func livePairs(g *graph.Graph) []vtree.EdgeEndpoint {
	pairs := make([]vtree.EdgeEndpoint, g.M())
	for i, e := range g.Edges() {
		pairs[i] = vtree.EdgeEndpoint{U: e.U, V: e.V, Cap: float64(e.Cap)}
	}
	return pairs
}

// --- compaction: sampling on a churned graph ---

// compactView maps a churned graph onto its active subgraph — removed
// vertices dropped, tombstoned edges dropped, ids renumbered densely —
// so the tree sampler (which requires a connected graph of live
// vertices) can run, and expands sampled trees back to the full id
// space.
type compactView struct {
	g       *graph.Graph // the compacted active subgraph (g itself when unchurned)
	toFull  []int        // compact id → full id (nil = identity)
	fullN   int
	removed []int // full ids of removed vertices
}

func newCompactView(g *graph.Graph) *compactView {
	if !g.Churned() {
		return &compactView{g: g, fullN: g.N()}
	}
	cg := graph.New(g.ActiveN())
	toFull := make([]int, 0, g.ActiveN())
	toCompact := make([]int, g.N())
	var removed []int
	for v := 0; v < g.N(); v++ {
		if g.Removed(v) {
			toCompact[v] = -1
			removed = append(removed, v)
			continue
		}
		toCompact[v] = len(toFull)
		toFull = append(toFull, v)
	}
	for _, e := range g.Edges() {
		if e.Cap == 0 {
			continue
		}
		cg.AddEdge(toCompact[e.U], toCompact[e.V], e.Cap)
	}
	cg.Finalize()
	return &compactView{g: cg, toFull: toFull, fullN: g.N(), removed: removed}
}

// expandTree lifts a tree sampled on the compact graph to the full id
// space. Removed vertices hang off the root as unit-capacity leaves:
// they carry no demand and their rows are excluded via scale 0, so they
// are pure bookkeeping that keeps every per-vertex array dense.
func (cv *compactView) expandTree(tc *vtree.VTree) (*vtree.VTree, error) {
	if cv.toFull == nil {
		return tc, nil
	}
	parent := make([]int, cv.fullN)
	capv := make([]float64, cv.fullN)
	root := cv.toFull[tc.Root]
	for v := range parent {
		parent[v] = root
		capv[v] = 1
	}
	for v := 0; v < tc.N(); v++ {
		f := cv.toFull[v]
		if v == tc.Root {
			continue
		}
		parent[f] = cv.toFull[tc.Parent[v]]
		capv[f] = tc.Cap[v]
	}
	parent[root] = -1
	capv[root] = 0
	return vtree.New(root, parent, capv)
}

// buildChurned runs Build on the compacted active subgraph and expands
// the result to the full id space (Build delegates here whenever the
// graph carries tombstones or removed vertices, so the rebuild fallback
// of a long-lived router needs no special casing).
func buildChurned(ctx context.Context, g *graph.Graph, cfg Config, rng *rand.Rand) (*Approximator, error) {
	cv := newCompactView(g)
	ac, err := BuildCtx(ctx, cv.g, cfg, rng)
	if err != nil {
		return nil, err
	}
	n := g.N()
	a := &Approximator{
		Alpha:        ac.Alpha,
		AlphaLow:     ac.AlphaLow,
		Ledger:       ac.Ledger,
		Levels:       ac.Levels,
		Stats:        ac.Stats,
		evalSchedule: ac.evalSchedule,
		diameter:     ac.diameter,
	}
	for k, tc := range ac.Trees {
		tf, err := cv.expandTree(tc)
		if err != nil {
			return nil, err
		}
		cc := make([]float64, n)
		scale := make([]float64, n)
		for v := 0; v < tc.N(); v++ {
			f := cv.toFull[v]
			cc[f] = ac.CutCap[k][v]
			scale[f] = ac.Scale[k][v]
		}
		m := ac.treeMax[k]
		if m.hiArg >= 0 {
			m.hiArg = cv.toFull[m.hiArg]
		}
		if m.loArg >= 0 {
			m.loArg = cv.toFull[m.loArg]
		}
		a.Trees = append(a.Trees, tf)
		a.CutCap = append(a.CutCap, cc)
		a.Scale = append(a.Scale, scale)
		a.treeMax = append(a.treeMax, m)
	}
	return a, nil
}

// --- dirty-path topology updates ---

// NewVertex names one vertex a topology batch added: its id (the graph
// assigns n, n+1, … in batch order) and the anchor vertex it hangs off
// as a leaf in every sampled tree (deterministically the other endpoint
// of its heaviest link, earliest on ties).
type NewVertex struct {
	ID, Anchor int
}

// TopoDelta describes one batch of structural edits that the caller has
// already applied to the graph: the vertices it added, the vertices it
// removed, and every edge insert (+cap) / delete (−cap) as a path delta
// in the full id space. Link edges of added vertices appear as ordinary
// insert deltas — the leaf's cut capacity builds up from zero.
type TopoDelta struct {
	NewVertices []NewVertex
	Deltas      []CapDelta
	Removed     []int
}

// empty reports a batch with nothing to do.
func (d *TopoDelta) empty() bool {
	return len(d.NewVertices) == 0 && len(d.Deltas) == 0 && len(d.Removed) == 0
}

// shiftRatio measures how far a cut moved multiplicatively: old→new of
// the same sign-regime gives max(new/old, old/new); a cut appearing or
// vanishing is an infinite shift; a cut staying empty is no shift.
func shiftRatio(oldV, newV float64) float64 {
	if oldV <= 0 && newV <= 0 {
		return 1
	}
	if oldV <= 0 || newV <= 0 {
		return math.Inf(1)
	}
	if newV > oldV {
		return newV / oldV
	}
	return oldV / newV
}

// patchTree applies the accumulated per-vertex path deltas to tree k's
// cut capacities, virtual capacities, and row scalings, maintaining the
// tree's distortion extrema. Shared by UpdateCapacities (capacity
// edits) and UpdateTopology (structural edits); in the integer-capacity
// regime the result is bit-identical to a full re-sweep.
//
// The returned shift is the largest multiplicative change any
// pre-existing cut experienced: UpdateTopology's structural-degradation
// signal. Slots ≥ freshFrom (new leaves, whose cuts are exact by
// construction) and slots marked in skipShift (vertices the batch
// removed — their rows are being retired, not reshaped) are excluded.
// Callers that don't watch the signal pass freshFrom ≥ N, nil skipShift
// and discard it.
func (a *Approximator) patchTree(k int, cfg Config, dedits []vtree.DeltaEdit, freshFrom int, skipShift []bool) (shift float64) {
	t := a.Trees[k]
	cc := a.CutCap[k]
	scale := a.Scale[k]
	shift = 1
	dirty, delta := t.PathDeltas(dedits, &a.updWS[k])
	for _, v := range dirty {
		d := delta[v]
		ccv := cc[v] + d
		if v < freshFrom && (skipShift == nil || !skipShift[v]) {
			if s := shiftRatio(cc[v], ccv); s > shift {
				shift = s
			}
		}
		nv := t.Cap[v] + d
		if nv <= 0 {
			nv = ccv
			if nv <= 0 {
				// The cut lost its last live edge (an all-removed
				// subtree). Keep a unit sentinel so tree sweeps stay
				// finite; the row is excluded below via scale 0.
				nv = 1
			}
		}
		t.Cap[v] = nv
		cc[v] = ccv
		if ccv <= 0 {
			scale[v] = 0
		} else if cfg.ExactCuts {
			scale[v] = ccv
		} else {
			scale[v] = nv
		}
	}
	// Maintain the tree's distortion extrema. If the previous argmax
	// slot was edited its ratio may have shrunk, leaving the stored
	// maximum stale — rescan; otherwise the non-dirty maximum is
	// exactly the stored one and only dirty ratios can exceed it.
	m := a.treeMax[k]
	stale := false
	for _, v := range dirty {
		if v == m.hiArg || v == m.loArg {
			stale = true
			break
		}
	}
	if stale {
		a.treeMax[k] = measureTreeRatios(t, cc)
		return shift
	}
	for _, v := range dirty {
		if cc[v] <= 0 {
			continue
		}
		if r := t.Cap[v] / cc[v]; r > m.hi {
			m.hi = r
			m.hiArg = v
		}
		if r := cc[v] / t.Cap[v]; r > m.lo {
			m.lo = r
			m.loArg = v
		}
	}
	a.treeMax[k] = m
	return shift
}

// UpdateTopology refreshes the approximator in place after the given
// structural edits were applied to g, keeping (and merely extending)
// every sampled tree topology. Per tree — tree-parallel,
// deterministically — the batch's new vertices are appended as leaves
// under their anchors, and every edge insert/delete lands as a ±cap
// dirty-path delta along the existing tree path between its endpoints
// (the Lemma 8.3 identity, exactly as UpdateCapacities). A tree whose
// summed edit-path length exceeds cfg.UpdateDirtyFraction × (n+m)
// falls back to the full TreeFlow re-sweep; either way the exact cut
// capacities match a full re-sweep bit for bit in the integer regime.
//
// α is re-measured from the maintained per-tree extrema, and each
// tree's cut-shift factor — the largest multiplicative change any of
// its pre-existing cuts experienced — is measured alongside. The two
// signals feed the caller's patch-vs-resample rule: α catches virtual
// capacities drifting away from the cuts, while the shift factor
// catches the failure α is blind to — a batch that reshapes the cut
// landscape (say, a new vertex whose links create a min cut no frozen
// tree contains) leaves every cap_T/cap_G ratio healthy yet makes the
// sampled family stale as a cut sketch. Trees whose shift exceeds
// cfg.CutShiftResample are returned in shifted (ascending) for
// individual resampling. The cached hop diameter is invalidated:
// topology edits can change it, unlike capacity edits.
//
// The counts report how many trees took the dirty path and how many
// fell back to a full re-sweep. Not safe concurrently with
// ApplyR/ApplyRT/PotentialRT on the same approximator.
func (a *Approximator) UpdateTopology(g *graph.Graph, cfg Config, d TopoDelta) (dirtyTrees, sweptTrees int, shifted []int) {
	if d.empty() {
		return 0, 0, nil
	}
	if len(a.treeMax) != len(a.Trees) {
		// Hand-assembled approximator: establish the extrema first.
		a.remeasure()
	}
	grow := len(d.NewVertices)
	// Extend every tree by the batch's new leaves (tree-parallel; the
	// cached LCA tables extend in O(log n) per leaf). Cut and virtual
	// capacities start at 0 and are built up by the link deltas below.
	par.Do(len(a.Trees), func(k int) {
		t := a.Trees[k]
		for _, nv := range d.NewVertices {
			if id := t.AddLeaf(nv.Anchor, 0); id != nv.ID {
				panic(fmt.Sprintf("capprox: tree %d vertex ids diverged: leaf %d, graph %d", k, id, nv.ID))
			}
		}
		if grow > 0 {
			a.CutCap[k] = append(a.CutCap[k], make([]float64, grow)...)
			a.Scale[k] = append(a.Scale[k], make([]float64, grow)...)
		}
	})
	n := g.N()
	dedits := make([]vtree.DeltaEdit, len(d.Deltas))
	for i, ed := range d.Deltas {
		dedits[i] = vtree.DeltaEdit{U: ed.U, V: ed.V, Diff: ed.Diff}
	}
	if len(a.updWS) != len(a.Trees) {
		a.updWS = make([]vtree.DeltaScratch, len(a.Trees))
	}
	frac := cfg.UpdateDirtyFraction
	if frac == 0 {
		frac = 0.25
	}
	work := make([]int, len(a.Trees))
	par.Do(len(a.Trees), func(k int) {
		work[k] = a.Trees[k].PathWork(dedits)
	})
	budget := frac * float64(n+g.M())
	sweep := make([]bool, len(a.Trees))
	for k := range a.Trees {
		if frac < 0 || float64(work[k]) > budget {
			sweep[k] = true
			sweptTrees++
		}
	}
	dirtyTrees = len(a.Trees) - sweptTrees
	var pairs []vtree.EdgeEndpoint
	if sweptTrees > 0 {
		pairs = livePairs(g)
	}
	// Pre-existing slots start below the batch's first new vertex id;
	// the new leaves' own cuts are exact by construction and excluded
	// from the shift measure.
	freshFrom := n
	if len(d.NewVertices) > 0 {
		freshFrom = d.NewVertices[0].ID
	}
	var skipShift []bool
	if len(d.Removed) > 0 {
		skipShift = make([]bool, n)
		for _, v := range d.Removed {
			skipShift[v] = true
		}
	}
	shifts := make([]float64, len(a.Trees))
	par.Do(len(a.Trees), func(k int) {
		if sweep[k] {
			a.treeMax[k], shifts[k] = refreshTree(a.Trees[k], pairs, a.CutCap[k], a.Scale[k], cfg, freshFrom, skipShift)
			return
		}
		shifts[k] = a.patchTree(k, cfg, dedits, freshFrom, skipShift)
	})
	a.combineAlpha()
	shiftBound := cfg.CutShiftResample
	if shiftBound == 0 {
		shiftBound = 3
	}
	if shiftBound > 0 {
		for k, s := range shifts {
			if s > shiftBound {
				shifted = append(shifted, k)
			}
		}
	}
	// Topology edits can change the hop diameter; drop the cached value
	// and re-measure once for the round charges (one O(n+m) double-BFS
	// per batch — the same cost every query already pays).
	a.diameter = 0
	diameter := a.buildDiameter(g)
	sq := int64(math.Ceil(math.Sqrt(float64(n))))
	for k := range a.Trees {
		c := diameter + int64(work[k])
		if sweep[k] || c > diameter+sq {
			c = diameter + sq
		}
		a.Ledger.ChargeAccounted("update-topology", c)
	}
	return dirtyTrees, sweptTrees, shifted
}

// DegradedTrees returns, in tree order, the trees whose measured cut
// overestimation exceeds threshold — the per-tree resample candidates
// of the patch-vs-resample rule.
func (a *Approximator) DegradedTrees(threshold float64) []int {
	var out []int
	for k, m := range a.treeMax {
		if m.hi > threshold {
			out = append(out, k)
		}
	}
	return out
}

// TreeAlpha returns tree k's measured cut overestimation.
func (a *Approximator) TreeAlpha(k int) float64 { return a.treeMax[k].hi }

// ResampleTrees replaces the trees at indices ks (ascending) with fresh
// samples from the recursive distribution, drawn on the compacted
// active subgraph with the provided per-tree seeds, and recomputes
// their exact cut capacities and row scalings. Only the named trees
// change; everything else — including every other tree's dirty-path
// scratch — stays put, so resampling one degraded tree costs one
// tree's share of a full Build instead of the whole thing.
//
// Determinism: the caller draws seeds before any parallel region (the
// router derives them from its seed and a per-batch counter), and the
// per-tree sampling runs from independent PRNGs exactly as Build's
// does, so the outcome is a pure function of (graph, cfg, ks, seeds)
// at every worker count.
func (a *Approximator) ResampleTrees(g *graph.Graph, cfg Config, ks []int, seeds []int64) error {
	return a.ResampleTreesCtx(context.Background(), g, cfg, ks, seeds)
}

// ResampleTreesCtx is ResampleTrees under a context. A done context
// aborts with the context's error before anything is installed — the
// all-or-nothing install below already guarantees an errored resample
// leaves the approximator serving its previous trees.
func (a *Approximator) ResampleTreesCtx(ctx context.Context, g *graph.Graph, cfg Config, ks []int, seeds []int64) error {
	if len(ks) == 0 {
		return nil
	}
	if len(seeds) != len(ks) {
		return fmt.Errorf("capprox: %d resample seeds for %d trees", len(seeds), len(ks))
	}
	if len(a.updWS) != len(a.Trees) {
		a.updWS = make([]vtree.DeltaScratch, len(a.Trees))
	}
	if len(a.treeMax) != len(a.Trees) {
		a.remeasure()
	}
	start := time.Now() //distflow:allow detrand build-phase timing stat only; never feeds results
	cv := newCompactView(g)
	diameter := cv.g.DiameterApprox()
	n := g.N()
	type sampled struct {
		t       *vtree.VTree
		levels  []int
		ledger  *congest.Ledger
		seconds float64
		err     error
	}
	outs := make([]sampled, len(ks))
	par.Do(len(ks), func(i int) {
		led := congest.NewLedger()
		treeStart := time.Now() //distflow:allow detrand build-phase timing stat only; never feeds results
		var ph samplePhases
		tc, levels, err := sampleTree(ctx, cv.g, cfg, diameter, led, rand.New(rand.NewSource(seeds[i])), &ph)
		if err == nil {
			tc, err = cv.expandTree(tc)
		}
		outs[i] = sampled{t: tc, levels: levels, ledger: led, seconds: time.Since(treeStart).Seconds(), err: err} //distflow:allow detrand build-phase timing stat only; never feeds results
	})
	// Scan every sampling error before installing anything: a partial
	// install would pair an old row scaling with a new tree topology,
	// and the caller's error path keeps serving the approximator.
	for i, k := range ks {
		if outs[i].err != nil {
			return fmt.Errorf("capprox: resample tree %d: %w", k, outs[i].err)
		}
	}
	for i, k := range ks {
		a.Trees[k] = outs[i].t
		a.Levels[k] = outs[i].levels
		a.Ledger.Add(outs[i].ledger)
		a.Stats.SampleSeconds += outs[i].seconds
	}
	pairs := livePairs(g)
	par.Do(len(ks), func(i int) {
		k := ks[i]
		t := a.Trees[k]
		cc := treeFlowPooled(t, pairs, make([]float64, n))
		scale := make([]float64, n)
		for v := 0; v < n; v++ {
			if v == t.Root || cc[v] <= 0 {
				continue
			}
			if cfg.ExactCuts {
				scale[v] = cc[v]
			} else {
				scale[v] = t.Cap[v]
			}
		}
		a.CutCap[k] = cc
		a.Scale[k] = scale
		a.treeMax[k] = measureTreeRatios(t, cc)
		a.updWS[k] = vtree.DeltaScratch{}
	})
	a.combineAlpha()
	a.Stats.TotalSeconds += time.Since(start).Seconds() //distflow:allow detrand build-phase timing stat only; never feeds results
	return nil
}
