package capprox

import "distflow/internal/vtree"

// Epoch forking: distflow's MVCC router applies each update batch to a
// private copy of the approximator and atomically publishes the result,
// so queries keep reading the old copy concurrently. Clone produces
// that private copy. The contract is one-way isolation: mutating the
// clone (UpdateCapacities, UpdateTopology, ResampleTrees) must never be
// observable through the original, while the original is treated as
// frozen from the moment the clone is taken.

// Clone returns a copy of the approximator that the update paths can
// mutate without affecting the original. Everything the update paths
// write is deeply copied: the sampled trees (AddLeaf appends, in-place
// Cap patches), the CutCap/Scale rows (dirty-path patches write slots
// and topology updates append), the per-tree distortion extrema, and
// the round ledger (updates charge phases that queries concurrently
// enumerate). The Levels histories are shared row-wise — they are only
// ever replaced whole by ResampleTrees, never written in place — and
// the dirty-path scratch pool is dropped (it is lazily re-made per
// approximator and holds no semantic state).
func (a *Approximator) Clone() *Approximator {
	c := &Approximator{
		Trees:        make([]*vtree.VTree, len(a.Trees)),
		CutCap:       make([][]float64, len(a.CutCap)),
		Scale:        make([][]float64, len(a.Scale)),
		Alpha:        a.Alpha,
		AlphaLow:     a.AlphaLow,
		Ledger:       a.Ledger.Clone(),
		Levels:       append([][]int(nil), a.Levels...),
		Stats:        a.Stats,
		evalSchedule: a.evalSchedule,
		treeMax:      append([]ratioMax(nil), a.treeMax...),
		diameter:     a.diameter,
	}
	for k, t := range a.Trees {
		c.Trees[k] = t.Clone()
	}
	for k, cc := range a.CutCap {
		c.CutCap[k] = append([]float64(nil), cc...)
	}
	for k, sc := range a.Scale {
		c.Scale[k] = append([]float64(nil), sc...)
	}
	return c
}
