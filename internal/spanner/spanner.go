// Package spanner implements the Baswana–Sen randomized spanner
// construction (Figure 3 of the paper), the subroutine Koutis's
// sparsifier is built from (§6).
//
// For a weighted N-node (multi)graph and parameter k, the construction
// returns a (2k−1)-spanner with O(k·N^{1+1/k}) edges w.h.p.: every
// non-spanner edge {u,v} is spanned by a path of at most 2k−1 edges
// whose weights are each at most W(u,v).
//
// The implementation mirrors the per-node behaviour of the distributed
// algorithm (cluster marking with probability 1/2, lightest-edge
// selection per adjacent cluster, joining the closest marked cluster) so
// the output distribution matches the CONGEST execution the paper
// emulates via Lemma 5.1; the distributed cost is charged analytically
// (O((D+√N·logN)·logN), proof of Lemma 6.1).
package spanner

import (
	"math"
	"math/rand"
	"sort"

	"distflow/internal/csr"
)

// Edge is a weighted undirected multigraph edge.
type Edge struct {
	U, V int
	W    float64
}

// Spanner computes a (2k−1)-spanner of the n-vertex multigraph. It
// returns the indices of the selected edges. Ties between equal-weight
// edges are broken by edge index (the paper's "breaking ties by ID").
func Spanner(n int, edges []Edge, k int, rng *rand.Rand) []int {
	if k < 1 {
		panic("spanner: k must be >= 1")
	}
	// CSR adjacency (flat arc array, one counting pass) instead of
	// per-vertex slices.
	type arc struct {
		to int
		id int
	}
	off := make([]int, n+1)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		off[e.U]++
		off[e.V]++
	}
	arcs := make([]arc, csr.Offsets(off))
	for i, e := range edges {
		if e.U == e.V {
			continue
		}
		arcs[off[e.U]] = arc{to: e.V, id: i}
		off[e.U]++
		arcs[off[e.V]] = arc{to: e.U, id: i}
		off[e.V]++
	}
	csr.Shift(off)
	adjOf := func(v int) []arc { return arcs[off[v]:off[v+1]] }

	// lighter reports whether edge a is lighter than edge b
	// (weight, then index).
	lighter := func(a, b int) bool {
		if edges[a].W != edges[b].W {
			return edges[a].W < edges[b].W
		}
		return a < b
	}

	selected := make(map[int]bool)
	cluster := make([]int, n) // cluster id = center vertex; -1 = discarded
	for v := range cluster {
		cluster[v] = v
	}

	for i := 1; i <= k-1; i++ {
		// 2a: mark clusters with probability 1/2.
		marked := make(map[int]bool)
		for v := 0; v < n; v++ {
			if cluster[v] == v { // cluster center decides
				if rng.Intn(2) == 1 {
					marked[v] = true
				}
			}
		}
		next := make([]int, n)
		for v := range next {
			next[v] = -1
		}
		for v := 0; v < n; v++ {
			c := cluster[v]
			if c < 0 {
				continue
			}
			if marked[c] {
				next[v] = c // marked clusters persist wholesale
				continue
			}
			// v's cluster is unmarked: find the lightest edge to every
			// adjacent cluster, and the overall lightest edge into a
			// marked cluster.
			bestPerCluster := make(map[int]int) // cluster -> edge id
			bestMarked := -1
			for _, a := range adjOf(v) {
				cc := cluster[a.to]
				if cc < 0 || cc == c {
					continue
				}
				if cur, ok := bestPerCluster[cc]; !ok || lighter(a.id, cur) {
					bestPerCluster[cc] = a.id
				}
				if marked[cc] && (bestMarked < 0 || lighter(a.id, bestMarked)) {
					bestMarked = a.id
				}
			}
			if bestMarked < 0 {
				// 2b-ii: no marked neighbour cluster — keep the lightest
				// edge to every adjacent cluster and drop out.
				for _, id := range bestPerCluster {
					selected[id] = true
				}
				next[v] = -1
				continue
			}
			// 2b-iii: join the marked cluster through the lightest edge;
			// keep that edge plus all strictly lighter per-cluster edges.
			e := edges[bestMarked]
			u := e.U + e.V - v
			next[v] = cluster[u]
			selected[bestMarked] = true
			for _, id := range bestPerCluster {
				if lighter(id, bestMarked) {
					selected[id] = true
				}
			}
		}
		cluster = next
	}

	// Step 3: every vertex adds the lightest edge to each remaining
	// cluster it is adjacent to.
	for v := 0; v < n; v++ {
		bestPerCluster := make(map[int]int)
		for _, a := range adjOf(v) {
			cc := cluster[a.to]
			if cc < 0 || cc == cluster[v] && cluster[v] >= 0 {
				continue
			}
			if cur, ok := bestPerCluster[cc]; !ok || lighter(a.id, cur) {
				bestPerCluster[cc] = a.id
			}
		}
		for _, id := range bestPerCluster {
			selected[id] = true
		}
	}

	out := make([]int, 0, len(selected))
	for id := range selected {
		out = append(out, id)
	}
	// selected is a map, so the collection order above is random per
	// run; callers treat the result as a set today, but returning it
	// sorted keeps any future order-sensitive consumer deterministic.
	sort.Ints(out)
	return out
}

// DefaultK returns the stretch parameter used by the sparsifier:
// k = ⌈log₂ n⌉, giving an O(log n)-stretch spanner with O(n log n) edges.
func DefaultK(n int) int {
	k := int(math.Ceil(math.Log2(float64(n) + 2)))
	if k < 2 {
		k = 2
	}
	return k
}

// CheckStretch verifies the spanner property on the given edge list:
// for every input edge, the weighted distance between its endpoints
// inside the spanner is at most maxStretch × its weight. It returns the
// worst stretch observed. O(|spanner|·n·log n + m) via Dijkstra from
// each endpoint — test-sized inputs only.
func CheckStretch(n int, edges []Edge, spanner []int) float64 {
	type arc struct {
		to int
		w  float64
	}
	adj := make([][]arc, n)
	for _, id := range spanner {
		e := edges[id]
		adj[e.U] = append(adj[e.U], arc{to: e.V, w: e.W})
		adj[e.V] = append(adj[e.V], arc{to: e.U, w: e.W})
	}
	worst := 1.0
	dist := make([]float64, n)
	// Dijkstra with simple binary heap per unique source.
	sources := make(map[int][]Edge)
	for _, e := range edges {
		sources[e.U] = append(sources[e.U], e)
	}
	for src, es := range sources {
		for i := range dist {
			dist[i] = math.Inf(1)
		}
		dist[src] = 0
		h := &distHeap{{0, src}}
		for h.Len() > 0 {
			it := h.pop()
			if it.d > dist[it.v] {
				continue
			}
			for _, a := range adj[it.v] {
				if nd := it.d + a.w; nd < dist[a.to] {
					dist[a.to] = nd
					h.push(distItem{nd, a.to})
				}
			}
		}
		for _, e := range es {
			if e.W <= 0 {
				continue
			}
			if s := dist[e.V] / e.W; s > worst {
				worst = s
			}
		}
	}
	return worst
}

type distItem struct {
	d float64
	v int
}

type distHeap []distItem

func (h distHeap) Len() int { return len(h) }

func (h *distHeap) push(x distItem) {
	*h = append(*h, x)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].d <= (*h)[i].d {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *distHeap) pop() distItem {
	top := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	*h = (*h)[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(*h) && (*h)[l].d < (*h)[small].d {
			small = l
		}
		if r < len(*h) && (*h)[r].d < (*h)[small].d {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}
