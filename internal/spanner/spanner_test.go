package spanner

import (
	"math/rand"
	"testing"

	"distflow/internal/graph"
)

func fromGraph(g *graph.Graph) []Edge {
	edges := make([]Edge, g.M())
	for i, e := range g.Edges() {
		edges[i] = Edge{U: e.U, V: e.V, W: float64(e.Cap)}
	}
	return edges
}

func TestSpannerStretchBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{2, 3, 4} {
		for trial := 0; trial < 5; trial++ {
			g := graph.CapUniform(graph.GNP(40, 0.2, rng), 10, rng)
			edges := fromGraph(g)
			sel := Spanner(g.N(), edges, k, rng)
			worst := CheckStretch(g.N(), edges, sel)
			if worst > float64(2*k-1)+1e-9 {
				t.Errorf("k=%d trial %d: stretch %.2f > %d", k, trial, worst, 2*k-1)
			}
		}
	}
}

func TestSpannerSparsifies(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.Complete(40) // m = 780
	edges := fromGraph(g)
	k := 3
	sel := Spanner(g.N(), edges, k, rng)
	// O(k n^{1+1/k}): for n=40,k=3 ≈ 3·40^{4/3} ≈ 409; assert well under m.
	if len(sel) >= g.M() {
		t.Errorf("spanner did not sparsify: %d of %d", len(sel), g.M())
	}
}

func TestSpannerK1KeepsConnectivityEdges(t *testing.T) {
	// k=1 means stretch 1: every edge (up to parallel duplicates) must
	// effectively remain; with no clustering phases, step 3 keeps the
	// lightest edge per adjacent singleton cluster.
	rng := rand.New(rand.NewSource(3))
	g := graph.Cycle(8)
	edges := fromGraph(g)
	sel := Spanner(g.N(), edges, 1, rng)
	worst := CheckStretch(g.N(), edges, sel)
	if worst > 1+1e-9 {
		t.Errorf("k=1 stretch %v > 1", worst)
	}
}

func TestSpannerParallelEdgesPrefersLight(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	edges := []Edge{
		{U: 0, V: 1, W: 10},
		{U: 0, V: 1, W: 1},
	}
	sel := Spanner(2, edges, 2, rng)
	hasLight := false
	for _, id := range sel {
		if id == 1 {
			hasLight = true
		}
	}
	if !hasLight {
		t.Error("lightest parallel edge not selected")
	}
	if w := CheckStretch(2, edges, sel); w > 3 {
		t.Errorf("stretch %v", w)
	}
}

func TestSpannerSelfLoopIgnored(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	edges := []Edge{{U: 0, V: 0, W: 1}, {U: 0, V: 1, W: 1}}
	sel := Spanner(2, edges, 2, rng)
	for _, id := range sel {
		if id == 0 {
			t.Error("self-loop selected")
		}
	}
}

func TestDefaultK(t *testing.T) {
	if DefaultK(1024) < 10 {
		t.Errorf("DefaultK(1024) = %d", DefaultK(1024))
	}
	if DefaultK(1) < 2 {
		t.Errorf("DefaultK(1) = %d", DefaultK(1))
	}
}

func TestSpannerPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k=0")
		}
	}()
	Spanner(2, nil, 0, rand.New(rand.NewSource(1)))
}

func TestSpannerManySeedsAlwaysValid(t *testing.T) {
	g := graph.Grid(6, 6)
	edges := fromGraph(g)
	for s := int64(0); s < 20; s++ {
		rng := rand.New(rand.NewSource(s))
		k := 2 + int(s%3)
		sel := Spanner(g.N(), edges, k, rng)
		if w := CheckStretch(g.N(), edges, sel); w > float64(2*k-1)+1e-9 {
			t.Fatalf("seed %d k=%d: stretch %v", s, k, w)
		}
	}
}
