// Package seqflow implements an exact sequential maximum-flow algorithm
// (Dinic's algorithm with BFS level graphs and DFS blocking flows).
//
// It plays the role the centralized solvers (Goldberg–Rao et al., §1.2)
// play in the paper: a ground truth that the distributed
// (1+ε)-approximation is checked against, and the source of exact min-cut
// values for the congestion-approximator experiments.
package seqflow

import (
	"math"

	"distflow/internal/csr"
	"distflow/internal/graph"
)

// Result is an exact maximum s-t flow.
type Result struct {
	// Value is the maximum flow value (= min cut capacity).
	Value int64
	// Flow holds a signed flow per graph edge in the graph's orientation
	// convention (positive = U→V).
	Flow []int64
	// MinCutSide marks the source side of a minimum cut (vertices
	// reachable from s in the final residual graph).
	MinCutSide []bool
}

type dinicArc struct {
	to   int
	capa int64 // residual capacity
	rev  int   // index of reverse arc in the flat arc array
	edge int   // originating graph edge index, -1 for reverse bookkeeping
	fwd  bool  // true if this arc follows the edge orientation U→V
}

// dinic stores the residual network in CSR form: arcs[off[v]:off[v+1]]
// are v's outgoing arcs, packed flat instead of per-vertex slices.
type dinic struct {
	n     int
	off   []int
	arcs  []dinicArc
	level []int
	iter  []int // absolute cursor into arcs during blocking-flow DFS
}

func newDinic(g *graph.Graph) *dinic {
	n := g.N()
	d := &dinic{
		n:     n,
		off:   make([]int, n+1),
		arcs:  make([]dinicArc, 2*g.M()),
		level: make([]int, n),
		iter:  make([]int, n),
	}
	off := d.off
	for _, ed := range g.Edges() {
		off[ed.U]++
		off[ed.V]++
	}
	csr.Offsets(off)
	for e, ed := range g.Edges() {
		// An undirected edge of capacity c becomes two directed arcs of
		// capacity c each that act as each other's reverse. Net flow on
		// the edge is recovered below by comparing residuals to the
		// original capacity.
		u, v, c := ed.U, ed.V, ed.Cap
		pu, pv := off[u], off[v]
		d.arcs[pu] = dinicArc{to: v, capa: c, rev: pv, edge: e, fwd: true}
		d.arcs[pv] = dinicArc{to: u, capa: c, rev: pu, edge: e, fwd: false}
		off[u]++
		off[v]++
	}
	csr.Shift(off)
	return d
}

func (d *dinic) bfs(s int) {
	for i := range d.level {
		d.level[i] = -1
	}
	queue := make([]int, 0, d.n)
	queue = append(queue, s)
	d.level[s] = 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, a := range d.arcs[d.off[v]:d.off[v+1]] {
			if a.capa > 0 && d.level[a.to] < 0 {
				d.level[a.to] = d.level[v] + 1
				queue = append(queue, a.to)
			}
		}
	}
}

func (d *dinic) dfs(v, t int, limit int64) int64 {
	if v == t {
		return limit
	}
	for ; d.iter[v] < d.off[v+1]; d.iter[v]++ {
		a := &d.arcs[d.iter[v]]
		if a.capa <= 0 || d.level[a.to] != d.level[v]+1 {
			continue
		}
		push := limit
		if a.capa < push {
			push = a.capa
		}
		got := d.dfs(a.to, t, push)
		if got > 0 {
			a.capa -= got
			d.arcs[a.rev].capa += got
			return got
		}
	}
	return 0
}

// MaxFlow computes an exact maximum s-t flow on g. It panics if s == t or
// either vertex is out of range (programming errors, not runtime inputs).
func MaxFlow(g *graph.Graph, s, t int) Result {
	if s == t {
		panic("seqflow: s == t")
	}
	if s < 0 || s >= g.N() || t < 0 || t >= g.N() {
		panic("seqflow: terminal out of range")
	}
	d := newDinic(g)
	var value int64
	for {
		d.bfs(s)
		if d.level[t] < 0 {
			break
		}
		copy(d.iter, d.off[:d.n])
		for {
			f := d.dfs(s, t, math.MaxInt64)
			if f == 0 {
				break
			}
			value += f
		}
	}
	// Recover signed per-edge flow. For edge e with capacity c, both arcs
	// start at residual c and every augmentation moves residual between
	// the pair, so after pushing net flow x in the U→V direction the
	// forward arc holds c-x and the backward arc c+x. Hence
	// x = (capa_backward - capa_forward)/2.
	flow := make([]int64, g.M())
	for i := range d.arcs {
		a := &d.arcs[i]
		if a.fwd {
			rev := d.arcs[a.rev].capa
			flow[a.edge] = (rev - a.capa) / 2
		}
	}
	// Min cut: vertices reachable from s in final residual graph.
	side := make([]bool, d.n)
	stack := []int{s}
	side[s] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range d.arcs[d.off[v]:d.off[v+1]] {
			if a.capa > 0 && !side[a.to] {
				side[a.to] = true
				stack = append(stack, a.to)
			}
		}
	}
	return Result{Value: value, Flow: flow, MinCutSide: side}
}

// MinCutValue returns only the max-flow/min-cut value.
func MinCutValue(g *graph.Graph, s, t int) int64 {
	return MaxFlow(g, s, t).Value
}

// CheckFlow verifies that f is a feasible s-t flow on g of the given
// value: capacity constraints |f_e| ≤ cap(e), conservation at all nodes
// except s and t, and net outflow `value` at s. Violations are returned
// as the worst capacity excess and conservation error found (0,0 for a
// valid flow). Tolerances are the caller's concern; this is exact
// arithmetic on float64 inputs.
func CheckFlow(g *graph.Graph, f []float64, s, t int, value float64) (capExcess, consErr float64) {
	for e, ed := range g.Edges() {
		over := math.Abs(f[e]) - float64(ed.Cap)
		if over > capExcess {
			capExcess = over
		}
	}
	div := g.Divergence(f)
	for v, d := range div {
		var want float64
		switch v {
		case s:
			want = value
		case t:
			want = -value
		}
		if err := math.Abs(d - want); err > consErr {
			consErr = err
		}
	}
	return capExcess, consErr
}
