package seqflow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"distflow/internal/graph"
)

// bruteMinCut enumerates all 2^(n-2) s-t cuts (tiny n only).
func bruteMinCut(g *graph.Graph, s, t int) int64 {
	n := g.N()
	best := int64(1) << 62
	others := make([]int, 0, n-2)
	for v := 0; v < n; v++ {
		if v != s && v != t {
			others = append(others, v)
		}
	}
	for mask := 0; mask < 1<<len(others); mask++ {
		side := make([]bool, n)
		side[s] = true
		for i, v := range others {
			side[v] = mask&(1<<i) != 0
		}
		if c := graph.CutCapacity(g, side); c < best {
			best = c
		}
	}
	return best
}

// Max-flow/min-cut duality against exhaustive cut enumeration.
func TestQuickMaxFlowEqualsBruteMinCut(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8) // ≤ 9 vertices: 2^7 cuts
		g := graph.Tree(n, rng)
		for k := 0; k < n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, 1+rng.Int63n(9))
			}
		}
		graph.CapUniform(g, 9, rng)
		s, tt := 0, n-1
		if s == tt {
			return true
		}
		return MaxFlow(g, s, tt).Value == bruteMinCut(g, s, tt)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Flow decomposition sanity: every max flow saturates the min cut.
func TestQuickFlowSaturatesMinCut(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(12)
		g := graph.Tree(n, rng)
		for k := 0; k < 2*n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, 1+rng.Int63n(9))
			}
		}
		res := MaxFlow(g, 0, n-1)
		f := make([]float64, g.M())
		for e, x := range res.Flow {
			f[e] = float64(x)
		}
		cross := graph.FlowAcrossCut(g, f, res.MinCutSide)
		return cross == float64(res.Value) &&
			graph.CutCapacity(g, res.MinCutSide) == res.Value
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
