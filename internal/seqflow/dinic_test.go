package seqflow

import (
	"math"
	"math/rand"
	"testing"

	"distflow/internal/graph"
)

func TestMaxFlowPath(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 3)
	g.AddEdge(2, 3, 7)
	r := MaxFlow(g, 0, 3)
	if r.Value != 3 {
		t.Fatalf("Value = %d, want 3 (bottleneck)", r.Value)
	}
	// Flow must be exactly 3 on every edge of the path.
	for e := range r.Flow {
		if r.Flow[e] != 3 {
			t.Errorf("Flow[%d] = %d, want 3", e, r.Flow[e])
		}
	}
}

func TestMaxFlowParallelEdges(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 1, 3)
	r := MaxFlow(g, 0, 1)
	if r.Value != 5 {
		t.Fatalf("Value = %d, want 5", r.Value)
	}
}

func TestMaxFlowDiamond(t *testing.T) {
	// s=0, t=3; two disjoint paths of capacity 2 and 4.
	g := graph.New(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 3, 2)
	g.AddEdge(0, 2, 4)
	g.AddEdge(2, 3, 4)
	r := MaxFlow(g, 0, 3)
	if r.Value != 6 {
		t.Fatalf("Value = %d, want 6", r.Value)
	}
}

func TestMaxFlowUndirectedSharing(t *testing.T) {
	// Undirected edges can carry flow both ways: a cycle where the
	// optimal solution uses an edge "backwards" relative to orientation.
	g := graph.New(3)
	g.AddEdge(1, 0, 1) // oriented 1->0
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1)
	r := MaxFlow(g, 0, 2)
	if r.Value != 2 {
		t.Fatalf("Value = %d, want 2", r.Value)
	}
	// Edge 0 is oriented 1->0 but carries flow 0->1, so sign is negative.
	if r.Flow[0] != -1 {
		t.Errorf("Flow[0] = %d, want -1 (against orientation)", r.Flow[0])
	}
}

func TestMinCutSide(t *testing.T) {
	g := graph.Barbell(4, 3)
	s, tt := 0, g.N()-1
	r := MaxFlow(g, s, tt)
	if r.Value != 1 {
		t.Fatalf("barbell max flow = %d, want 1", r.Value)
	}
	if !r.MinCutSide[s] || r.MinCutSide[tt] {
		t.Error("min cut side must contain s and not t")
	}
	if c := graph.CutCapacity(g, r.MinCutSide); c != r.Value {
		t.Errorf("min cut capacity = %d, want %d", c, r.Value)
	}
}

func TestDisconnectedZeroFlow(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(2, 3, 5)
	r := MaxFlow(g, 0, 3)
	if r.Value != 0 {
		t.Fatalf("Value = %d, want 0", r.Value)
	}
}

func TestPanics(t *testing.T) {
	g := graph.Path(3)
	for _, fn := range []func(){
		func() { MaxFlow(g, 1, 1) },
		func() { MaxFlow(g, -1, 2) },
		func() { MaxFlow(g, 0, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: max-flow value equals min over sampled cuts of capacity, and
// the returned flow is feasible with the correct divergence.
func TestMaxFlowMinCutProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		g := graph.CapUniform(graph.GNP(16, 0.25, rng), 20, rng)
		s, tt := 0, g.N()-1
		r := MaxFlow(g, s, tt)

		// Feasibility and conservation, exact.
		f := make([]float64, g.M())
		for e, x := range r.Flow {
			f[e] = float64(x)
		}
		capEx, consErr := CheckFlow(g, f, s, tt, float64(r.Value))
		if capEx > 0 || consErr > 0 {
			t.Fatalf("trial %d: infeasible flow capEx=%v consErr=%v", trial, capEx, consErr)
		}

		// Min cut certificate matches.
		if c := graph.CutCapacity(g, r.MinCutSide); c != r.Value {
			t.Fatalf("trial %d: cut %d != flow %d", trial, c, r.Value)
		}

		// No sampled cut separating s,t is smaller (weak duality).
		for i := 0; i < 20; i++ {
			side := graph.RandomCut(g.N(), rng)
			if side[s] == side[tt] {
				continue
			}
			if !side[s] {
				for v := range side {
					side[v] = !side[v]
				}
			}
			if c := graph.CutCapacity(g, side); c < r.Value {
				t.Fatalf("trial %d: found cut %d below max flow %d", trial, c, r.Value)
			}
		}
	}
}

func TestCheckFlowDetectsViolations(t *testing.T) {
	g := graph.Path(3)
	// Overload edge 0 and break conservation at node 1.
	f := []float64{2, 0.5}
	capEx, consErr := CheckFlow(g, f, 0, 2, 2)
	if capEx != 1 {
		t.Errorf("capExcess = %v, want 1", capEx)
	}
	if math.Abs(consErr-1.5) > 1e-12 {
		t.Errorf("consErr = %v, want 1.5", consErr)
	}
}

func TestMinCutValueConvenience(t *testing.T) {
	g := graph.Grid(4, 4)
	if v := MinCutValue(g, 0, 15); v != 2 {
		t.Errorf("grid corner-to-corner min cut = %d, want 2", v)
	}
}
