package pushrelabel

import (
	"math/rand"
	"testing"

	"distflow/internal/congest"
	"distflow/internal/graph"
	"distflow/internal/seqflow"
)

func network(g *graph.Graph) *congest.Network {
	return congest.NewNetwork(g, congest.WithSeed(7))
}

func TestPath(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 3)
	g.AddEdge(2, 3, 7)
	r, err := MaxFlow(network(g), 0, 3, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 3 {
		t.Fatalf("Value = %d, want 3", r.Value)
	}
}

func TestMatchesDinicRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 15; trial++ {
		g := graph.CapUniform(graph.GNP(14, 0.25, rng), 15, rng)
		s, tt := 0, g.N()-1
		want := seqflow.MinCutValue(g, s, tt)
		r, err := MaxFlow(network(g), s, tt, 200000)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if r.Value != want {
			t.Fatalf("trial %d: push-relabel %d, Dinic %d", trial, r.Value, want)
		}
		// Returned flow must be feasible and have the right value.
		f := make([]float64, g.M())
		for e, x := range r.Flow {
			f[e] = float64(x)
		}
		capEx, consErr := seqflow.CheckFlow(g, f, s, tt, float64(r.Value))
		if capEx > 0 || consErr > 0 {
			t.Fatalf("trial %d: infeasible flow (capEx=%v consErr=%v)", trial, capEx, consErr)
		}
	}
}

func TestBarbell(t *testing.T) {
	g := graph.Barbell(5, 4)
	r, err := MaxFlow(network(g), 0, g.N()-1, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 1 {
		t.Fatalf("barbell flow = %d, want 1", r.Value)
	}
}

func TestDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 3)
	g.AddEdge(2, 3, 3)
	r, err := MaxFlow(network(g), 0, 3, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 0 {
		t.Fatalf("Value = %d, want 0", r.Value)
	}
}

func TestSEqualsTErrors(t *testing.T) {
	if _, err := MaxFlow(network(graph.Path(3)), 1, 1, 100); err == nil {
		t.Error("expected error for s == t")
	}
}

func TestMaxRoundsRespected(t *testing.T) {
	g := graph.Grid(6, 6)
	_, err := MaxFlow(network(g), 0, g.N()-1, 3)
	if err == nil {
		t.Error("expected ErrMaxRounds with tiny budget")
	}
}

// The quadratic-ish round growth that motivates the paper: rounds on a
// path roughly scale with n (heights must rise ~n before flow returns),
// and on dense graphs super-linearly. We only assert monotone growth
// here; E1 in bench_test.go records the actual curve.
func TestRoundGrowth(t *testing.T) {
	prev := 0
	for _, n := range []int{8, 16, 32} {
		g := graph.Path(n)
		r, err := MaxFlow(network(g), 0, n-1, 1000000)
		if err != nil {
			t.Fatal(err)
		}
		if r.Value != 1 {
			t.Fatalf("path flow = %d", r.Value)
		}
		if r.Stats.Rounds <= prev {
			t.Errorf("rounds did not grow: n=%d rounds=%d prev=%d", n, r.Stats.Rounds, prev)
		}
		prev = r.Stats.Rounds
	}
}

func TestParallelSchedulerAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := graph.CapUniform(graph.GNP(12, 0.3, rng), 9, rng)
	a, err := MaxFlow(congest.NewNetwork(g, congest.WithSeed(5)), 0, g.N()-1, 100000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MaxFlow(congest.NewNetwork(g, congest.WithSeed(5), congest.WithParallel(true)), 0, g.N()-1, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value || a.Stats != b.Stats {
		t.Errorf("schedulers disagree: %+v vs %+v", a.Stats, b.Stats)
	}
}
