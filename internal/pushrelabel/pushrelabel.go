// Package pushrelabel implements the distributed Goldberg–Tarjan
// push-relabel algorithm in the CONGEST model.
//
// This is the baseline the paper's introduction contrasts against
// (§1.2): "Goldberg and Tarjan's push-relabel algorithm, which is very
// local and simple to implement in the CONGEST model, requires Ω(n²)
// rounds to converge." Experiment E1 measures exactly this growth
// against the near-optimal algorithm.
//
// Protocol (synchronous variant of Goldberg–Tarjan's distributed
// algorithm): every node maintains a height, an excess, a local signed
// flow per incident edge, and its neighbours' last announced heights.
// The source starts at height n and saturates its incident edges. Each
// round an active node pushes along admissible edges (positive residual,
// recorded neighbour height exactly one lower) and relabels to
// 1 + min neighbour height over residual edges when stuck; every message
// carries the sender's current height, keeping neighbour views at most
// one round stale. Heights only increase, so the standard termination
// and correctness arguments apply.
package pushrelabel

import (
	"fmt"

	"distflow/internal/congest"
)

// Result of a push-relabel run.
type Result struct {
	// Value is the computed maximum flow value (exact).
	Value int64
	// Flow is the signed per-edge flow in graph orientation.
	Flow []int64
	// Stats reports the measured rounds/messages/bits.
	Stats congest.Stats
}

type node struct {
	s, t    bool
	n       int
	height  int64
	excess  int64
	flow    []int64 // signed, positive = out of this node, per arc
	nh      []int64 // last announced neighbour heights
	started bool
}

func (nd *node) Step(ctx *congest.Context, in []congest.Incoming) ([]congest.Outgoing, bool) {
	deg := ctx.Degree()
	// Apply incoming pushes and height announcements.
	for _, m := range in {
		msg, ok := m.Msg.(congest.Int2Msg)
		if !ok {
			continue
		}
		i := arcIndex(ctx, m.Edge)
		nd.nh[i] = msg.A
		if msg.B > 0 {
			nd.flow[i] -= msg.B
			nd.excess += msg.B
		}
	}

	push := make([]int64, deg)
	announce := false

	if !nd.started {
		nd.started = true
		if nd.s {
			nd.height = int64(nd.n)
			for i := 0; i < deg; i++ {
				c := ctx.EdgeCap(i)
				push[i] = c
				nd.flow[i] += c
			}
			announce = true
		}
	} else if !nd.s && !nd.t && nd.excess > 0 {
		// Discharge: push along admissible arcs.
		for i := 0; i < deg && nd.excess > 0; i++ {
			res := ctx.EdgeCap(i) - nd.flow[i]
			if res <= 0 || nd.height != nd.nh[i]+1 {
				continue
			}
			d := nd.excess
			if res < d {
				d = res
			}
			push[i] = d
			nd.flow[i] += d
			nd.excess -= d
		}
		if nd.excess > 0 {
			// No admissible arc absorbed everything: relabel if no arc is
			// currently admissible.
			admissible := false
			minH := int64(1) << 62
			for i := 0; i < deg; i++ {
				if ctx.EdgeCap(i)-nd.flow[i] > 0 {
					if nd.height == nd.nh[i]+1 {
						admissible = true
					}
					if nd.nh[i] < minH {
						minH = nd.nh[i]
					}
				}
			}
			if !admissible && minH < int64(1)<<62 {
				nd.height = minH + 1
				announce = true
			}
		}
	}

	var outs []congest.Outgoing
	for i := 0; i < deg; i++ {
		if push[i] > 0 || announce {
			outs = append(outs, congest.Outgoing{
				Edge: ctx.Arc(i).E,
				Msg:  congest.Int2Msg{A: nd.height, B: push[i]},
			})
		}
	}
	done := nd.s || nd.t || nd.excess == 0
	return outs, done
}

func arcIndex(ctx *congest.Context, edge int) int {
	for i, a := range ctx.Arcs() {
		if a.E == edge {
			return i
		}
	}
	panic(fmt.Sprintf("pushrelabel: edge %d not incident to %d", edge, ctx.ID))
}

// MaxFlow runs distributed push-relabel for the s-t max flow on the
// network. maxRounds guards against the quadratic worst case on large
// inputs; congest.ErrMaxRounds is returned if exceeded.
func MaxFlow(nw *congest.Network, s, t int, maxRounds int) (*Result, error) {
	g := nw.Graph()
	if s == t {
		return nil, fmt.Errorf("pushrelabel: s == t")
	}
	nodes := make([]*node, g.N())
	stats, err := nw.Run(func(v int, ctx *congest.Context) congest.Program {
		nodes[v] = &node{
			s: v == s, t: v == t, n: g.N(),
			flow: make([]int64, ctx.Degree()),
			nh:   make([]int64, ctx.Degree()),
		}
		return nodes[v]
	}, maxRounds)
	if err != nil {
		return nil, fmt.Errorf("pushrelabel: %w", err)
	}

	// Extract per-edge flows from endpoint views and verify consistency.
	flow := make([]int64, g.M())
	for v, nd := range nodes {
		for i, a := range g.Adj(v) {
			e := a.E
			signed := nd.flow[i]
			if g.Edge(e).U != v {
				signed = -signed
			}
			flow[e] = signed
		}
	}
	for v, nd := range nodes {
		for i, a := range g.Adj(v) {
			want := flow[a.E]
			if g.Edge(a.E).U != v {
				want = -want
			}
			if nd.flow[i] != want {
				return nil, fmt.Errorf("pushrelabel: inconsistent flow views on edge %d", a.E)
			}
		}
	}
	return &Result{Value: nodes[t].excess, Flow: flow, Stats: stats}, nil
}
