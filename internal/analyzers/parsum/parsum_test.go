package parsum_test

import (
	"testing"

	"distflow/internal/analyzers/framework"
	"distflow/internal/analyzers/parsum"
)

// TestParSum exercises captured-accumulator detection (+= and the
// spelled-out x = x + v form, scalars and struct fields) against the
// real par package, plus the indexed-write and chunk-local exemptions.
func TestParSum(t *testing.T) {
	framework.RunTest(t, "testdata/src/parsumtest", parsum.Analyzer)
}
