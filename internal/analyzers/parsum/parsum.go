// Package parsum enforces the bit-identity rule for parallel floating
// point (DESIGN.md §4/§12): float accumulation across par pool chunks
// must go through the pool's ordered reductions (par.Sum, par.Max),
// whose merge order depends only on problem size — never through a
// shared accumulator mutated from inside a callback, whose ordering
// (and hence rounding) would depend on worker interleaving. This is
// both a data race and, with per-chunk locking "fixes", the classic
// source of run-to-run last-bit drift.
//
// The analyzer flags, inside any function literal passed to par.For /
// par.Do / par.Sum / par.Max, compound float assignments (+=, -=, *=,
// /=, or x = x ⊕ ...) whose target is declared outside the literal —
// a plain variable or a struct field. Writes through an index
// expression (out[i] += v) are exempt: chunks own disjoint index
// ranges, so indexed accumulation is deterministic.
package parsum

import (
	"go/ast"
	"go/token"
	"go/types"

	"distflow/internal/analyzers/framework"
)

// parPath matches the worker-pool package.
const parPath = "distflow/internal/par"

// poolEntry lists the par entry points whose callbacks run on worker
// goroutines.
var poolEntry = map[string]bool{"For": true, "Do": true, "Sum": true, "Max": true}

// Analyzer is the parsum pass.
var Analyzer = &framework.Analyzer{
	Name: "parsum",
	Doc:  "forbid shared float accumulation inside par pool callbacks; use the ordered reductions par.Sum/par.Max",
	Run:  run,
}

func run(pass *framework.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := framework.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || !poolEntry[fn.Name()] {
				return true
			}
			if p := framework.FuncPkgPath(fn); p != parPath && !framework.PathHasSuffix(p, "par") {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					checkCallback(pass, fn.Name(), lit)
				}
			}
			return true
		})
	}
	return nil, nil
}

func checkCallback(pass *framework.Pass, entry string, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch assign.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if len(assign.Lhs) == 1 {
				checkTarget(pass, entry, lit, assign.Lhs[0], assign.Pos())
			}
		case token.ASSIGN:
			// x = x + expr (and friends) is the same accumulation.
			for i, lhs := range assign.Lhs {
				if i >= len(assign.Rhs) {
					break
				}
				if selfReferential(pass, lhs, assign.Rhs[i]) {
					checkTarget(pass, entry, lit, lhs, assign.Pos())
				}
			}
		}
		return true
	})
}

// selfReferential reports whether rhs is a binary expression that
// mentions the lhs target (a variable or a selected field).
func selfReferential(pass *framework.Pass, lhs, rhs ast.Expr) bool {
	if _, ok := ast.Unparen(rhs).(*ast.BinaryExpr); !ok {
		return false
	}
	var obj types.Object
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj = framework.ObjectOf(pass.TypesInfo, l)
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[l]; ok {
			obj = sel.Obj()
		}
	}
	if obj == nil {
		return false
	}
	return framework.UsesObject(pass.TypesInfo, rhs, obj)
}

// checkTarget flags lhs if it is a float location declared outside
// the callback: a captured variable or a field reached through one.
func checkTarget(pass *framework.Pass, entry string, lit *ast.FuncLit, lhs ast.Expr, pos token.Pos) {
	tv, ok := pass.TypesInfo.Types[lhs]
	if !ok || !framework.IsFloat(tv.Type) {
		return
	}
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		v, ok := framework.ObjectOf(pass.TypesInfo, l).(*types.Var)
		if !ok {
			return
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return // callback-local accumulator: each chunk owns its own
		}
		pass.Reportf(pos,
			"float accumulation onto captured %q inside a par.%s callback is worker-order dependent: return a chunk partial and reduce with par.Sum/par.Max", v.Name(), entry)
	case *ast.SelectorExpr:
		// field of a captured struct — same hazard.
		if root := rootIdent(l); root != nil {
			if v, ok := framework.ObjectOf(pass.TypesInfo, root).(*types.Var); ok {
				if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
					return
				}
				pass.Reportf(pos,
					"float accumulation onto captured field %q inside a par.%s callback is worker-order dependent: return a chunk partial and reduce with par.Sum/par.Max", l.Sel.Name, entry)
			}
		}
	case *ast.IndexExpr:
		// out[i] += v: chunks own disjoint ranges — deterministic.
	}
}

// rootIdent walks a selector chain to its base identifier.
func rootIdent(sel *ast.SelectorExpr) *ast.Ident {
	for {
		switch x := ast.Unparen(sel.X).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			sel = x
		default:
			return nil
		}
	}
}
