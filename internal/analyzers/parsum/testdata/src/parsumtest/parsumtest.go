// Package parsumtest exercises the parsum rules against the real
// distflow/internal/par package.
package parsumtest

import "distflow/internal/par"

type acc struct {
	sum float64
}

// BadSum accumulates onto a captured scalar from worker goroutines:
// a data race whose rounding depends on interleaving.
func BadSum(xs []float64) float64 {
	total := 0.0
	par.For(len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			total += xs[i] // want `float accumulation onto captured "total"`
		}
	})
	return total
}

// BadSelfAssign is the spelled-out form of the same accumulation,
// through a captured struct field.
func BadSelfAssign(xs []float64) float64 {
	var a acc
	par.Do(len(xs), func(i int) {
		a.sum = a.sum + xs[i] // want `float accumulation onto captured field "sum"`
	})
	return a.sum
}

// GoodSum returns chunk partials through the pool's ordered reduction.
func GoodSum(xs []float64) float64 {
	return par.Sum(len(xs), func(lo, hi int) float64 {
		partial := 0.0
		for i := lo; i < hi; i++ {
			partial += xs[i]
		}
		return partial
	})
}

// IndexedOK writes through disjoint index ranges: deterministic.
func IndexedOK(xs, out []float64) {
	par.For(len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] += xs[i]
		}
	})
}

// AllowedScalar carries a justified suppression.
func AllowedScalar(xs []float64) float64 {
	total := 0.0
	par.For(len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			total += xs[i] //distflow:allow parsum fixture runs under SetWorkers(1), single-threaded by construction
		}
	})
	return total
}
