package epochguard

import "sync/atomic"

// Router holds the guarded pointer; declaring the struct outside
// epoch.go is fine — what is confined is touching the field.
type Router struct {
	cur atomic.Pointer[epoch]
}

// stash is a struct an epoch handle must not be parked in.
type stash struct {
	ep *epoch
}

// pinned is a package-level variable an epoch must not leak into.
var pinned *epoch

var leakCh = make(chan *epoch, 1)

// Peek bypasses the helpers with a bare Load: skips the refcount pin.
func (r *Router) Peek() float64 {
	return r.cur.Load().data[0] // want `direct access to epoch-guarded field`
}

// Good pins through the helper and keeps the handle local.
func (r *Router) Good() float64 {
	ep := r.acquire()
	return ep.data[0]
}

// Mint exports a handle from outside the helper file.
func (r *Router) Mint() *epoch { // want `returns an epoch handle`
	return r.acquire()
}

// Stash parks a handle in a struct field: it can outlive its release.
func (r *Router) Stash(s *stash) {
	s.ep = r.acquire() // want `epoch handle stored into a struct field`
}

// Pin parks a handle in a package-level variable.
func (r *Router) Pin() {
	pinned = r.acquire() // want `epoch handle stored into a package-level variable`
}

// Leak sends a handle across a goroutine boundary.
func (r *Router) Leak() {
	leakCh <- r.acquire() // want `epoch handle sent on a channel`
}

// Collect retains handles in a slice literal.
func (r *Router) Collect() int {
	eps := []*epoch{r.acquire()} // want `composite literal retains epoch handles`
	return len(eps)
}

// AllowedPeek is a deliberate bypass under a justified annotation
// (e.g. a lock-free stats probe that tolerates a stale read).
func (r *Router) AllowedPeek() int {
	return len(r.cur.Load().data) //distflow:allow epochsafe stats probe, stale read acceptable and no pin held
}

// Methods on *epoch outside epoch.go are allowed: they run against a
// receiver the caller already pinned.
func (e *epoch) width() int {
	return len(e.data)
}
