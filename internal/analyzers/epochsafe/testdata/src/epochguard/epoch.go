// Package epochguard simulates a package guarding MVCC state behind
// an atomic.Pointer[epoch], with the lifecycle helpers confined to
// this file — mirroring the real Router.
package epochguard

type epoch struct {
	data []float64
}

func (r *Router) acquire() *epoch {
	return r.cur.Load()
}

func (r *Router) publish(ep *epoch) {
	r.cur.Store(ep)
}
