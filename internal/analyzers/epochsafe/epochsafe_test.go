package epochsafe_test

import (
	"testing"

	"distflow/internal/analyzers/epochsafe"
	"distflow/internal/analyzers/framework"
)

// TestEpochGuard exercises the three confinement rules against a
// miniature Router: bare guard-field access, handle-minting functions,
// and every escape shape (struct field, package var, channel, slice
// literal) — plus the helper-file exemption and a justified allow.
func TestEpochGuard(t *testing.T) {
	framework.RunTest(t, "testdata/src/epochguard", epochsafe.Analyzer)
}
