// Package epochsafe enforces the MVCC epoch discipline of DESIGN.md
// §9: the Router's queryable state hangs off one atomic.Pointer[epoch]
// and every load, store, pin and publish of it must go through the
// helpers in epoch.go — acquire/release/fork/publish/curEpoch — so the
// snapshot-isolation and update-atomicity proofs stay local to one
// file.
//
// The analyzer is structural, not name-bound: in any package that has
// a file named epoch.go declaring a named type E used as the type
// argument of a sync/atomic.Pointer[E] struct field, it reports
//
//  1. any selector access to that guard field outside epoch.go
//     (readers must call the pinning helpers, writers the fork/publish
//     pair — a bare .Load() skips the refcount, a bare .Store() skips
//     retirement);
//  2. any function outside epoch.go whose results include *E — an
//     epoch handle may only be minted by the helper file, otherwise a
//     snapshot can outlive its release; and
//  3. any store of a *E value into a struct field, slice/map element,
//     package-level variable, or channel outside epoch.go — the
//     escapes that would let an epoch (or a field loaded from one) be
//     observed after its release drained it.
//
// Methods ON *E declared elsewhere are fine (they run against a pinned
// receiver); what is confined is creating and storing handles.
package epochsafe

import (
	"go/ast"
	"go/types"

	"distflow/internal/analyzers/framework"
)

// GuardFile is the file that owns the epoch lifecycle helpers.
const GuardFile = "epoch.go"

// Analyzer is the epochsafe pass.
var Analyzer = &framework.Analyzer{
	Name: "epochsafe",
	Doc:  "confine epoch-guarded state access to the acquire/release/fork/publish helpers in epoch.go",
	Run:  run,
}

func run(pass *framework.Pass) (any, error) {
	guards, epochTypes := findGuards(pass)
	if len(guards) == 0 {
		return nil, nil
	}
	for _, file := range pass.Files {
		if framework.FileBase(pass.Fset, file.Pos()) == GuardFile {
			continue
		}
		checkFile(pass, file, guards, epochTypes)
	}
	return nil, nil
}

// findGuards locates struct fields of type atomic.Pointer[E] with E
// declared in epoch.go, returning the field objects and the epoch
// types.
func findGuards(pass *framework.Pass) (map[*types.Var]bool, map[*types.Named]bool) {
	guards := map[*types.Var]bool{}
	epochs := map[*types.Named]bool{}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if e := atomicPointerEpochArg(pass, f.Type()); e != nil {
				guards[f] = true
				epochs[e] = true
			}
		}
	}
	return guards, epochs
}

// atomicPointerEpochArg returns the type argument E if t is
// sync/atomic.Pointer[E] and E is a named type declared in this
// package's epoch.go.
func atomicPointerEpochArg(pass *framework.Pass, t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" || obj.Name() != "Pointer" {
		return nil
	}
	args := named.TypeArgs()
	if args == nil || args.Len() != 1 {
		return nil
	}
	arg, ok := args.At(0).(*types.Named)
	if !ok {
		return nil
	}
	ao := arg.Obj()
	if ao.Pkg() != pass.Pkg {
		return nil
	}
	if framework.FileBase(pass.Fset, ao.Pos()) != GuardFile {
		return nil
	}
	return arg
}

// isEpochPtr reports whether t is *E (or E) for a guarded epoch type.
func isEpochPtr(epochs map[*types.Named]bool, t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && epochs[named]
}

func checkFile(pass *framework.Pass, file *ast.File, guards map[*types.Var]bool, epochs map[*types.Named]bool) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[n]; ok {
				if v, ok := sel.Obj().(*types.Var); ok && guards[v] {
					pass.Reportf(n.Sel.Pos(),
						"direct access to epoch-guarded field %s outside %s: use the acquire/release (queries) or fork/publish (updates) helpers", v.Name(), GuardFile)
				}
			}
		case *ast.FuncDecl:
			checkResults(pass, n, epochs)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if tv, ok := pass.TypesInfo.Types[rhs]; ok && isEpochPtr(epochs, tv.Type) {
					if storesBeyondLocals(pass, n.Lhs[i]) {
						pass.Reportf(n.Pos(),
							"epoch handle stored into %s outside %s: epochs must not escape their acquire/release window", describeLHS(n.Lhs[i]), GuardFile)
					}
				}
			}
		case *ast.SendStmt:
			if tv, ok := pass.TypesInfo.Types[n.Value]; ok && isEpochPtr(epochs, tv.Type) {
				pass.Reportf(n.Pos(), "epoch handle sent on a channel outside %s: epochs must not escape their acquire/release window", GuardFile)
			}
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[n]; ok {
				if isEpochContainer(epochs, tv.Type) {
					pass.Reportf(n.Pos(), "composite literal retains epoch handles outside %s: epochs must not escape their acquire/release window", GuardFile)
				}
			}
		}
		return true
	})
}

// checkResults flags non-guard-file functions minting epoch handles.
func checkResults(pass *framework.Pass, fd *ast.FuncDecl, epochs map[*types.Named]bool) {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig := obj.Type().(*types.Signature)
	for i := 0; i < sig.Results().Len(); i++ {
		if isEpochPtr(epochs, sig.Results().At(i).Type()) {
			pass.Reportf(fd.Name.Pos(),
				"%s returns an epoch handle outside %s: only the helper file may mint snapshots", fd.Name.Name, GuardFile)
			return
		}
	}
}

// storesBeyondLocals reports whether the assignment target outlives
// the local frame: a field selector, an index expression, a
// dereference, or a package-level variable.
func storesBeyondLocals(pass *framework.Pass, lhs ast.Expr) bool {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		if v, ok := framework.ObjectOf(pass.TypesInfo, l).(*types.Var); ok {
			return v.Parent() == pass.Pkg.Scope()
		}
	}
	return false
}

func describeLHS(lhs ast.Expr) string {
	switch ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return "a struct field"
	case *ast.IndexExpr:
		return "a slice or map element"
	case *ast.StarExpr:
		return "a shared location"
	default:
		return "a package-level variable"
	}
}

// isEpochContainer reports whether t is a slice, array, map or struct
// type whose elements/fields include *E.
func isEpochContainer(epochs map[*types.Named]bool, t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return isEpochPtr(epochs, u.Elem())
	case *types.Array:
		return isEpochPtr(epochs, u.Elem())
	case *types.Map:
		return isEpochPtr(epochs, u.Elem()) || isEpochPtr(epochs, u.Key())
	}
	return false
}
