// Package faultsitetest exercises the faultsite rule against the real
// distflow/internal/faultinject package.
package faultsitetest

import "distflow/internal/faultinject"

// SiteProbe is the declared-constant form the analyzer requires.
const SiteProbe = "faultsitetest/probe"

// Probe names its site through the constant: fine.
func Probe() error {
	return faultinject.Hit(SiteProbe)
}

// BadHit names a site with an inline literal: the chaos harness can
// never arm it because nothing else can spell it reliably.
func BadHit() error {
	return faultinject.Hit("faultsitetest/inline") // want `must be a declared constant`
}

// BadArm builds the name at the call: same problem.
func BadArm() func() {
	return faultinject.Arm("faultsitetest/"+"built", faultinject.Fault{}) // want `must be a declared constant`
}

// DisarmConst goes through the constant: fine.
func DisarmConst() {
	faultinject.Disarm(SiteProbe)
}

// StatsConst reads through the constant: fine.
func StatsConst() (int64, int64) {
	return faultinject.Stats(SiteProbe)
}

// AllowedLiteral documents a deliberate inline site.
func AllowedLiteral() error {
	return faultinject.Hit("faultsitetest/scratch") //distflow:allow faultsite scratch site for a one-off bench, never armed by the chaos suite
}
