package faultsite_test

import (
	"testing"

	"distflow/internal/analyzers/faultsite"
	"distflow/internal/analyzers/framework"
)

// TestFaultSite exercises the declared-constant rule against the real
// faultinject package: constant references pass, inline literals and
// built strings fail, and a justified allow silences a deliberate one.
func TestFaultSite(t *testing.T) {
	framework.RunTest(t, "testdata/src/faultsitetest", faultsite.Analyzer)
}
