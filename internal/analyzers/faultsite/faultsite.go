// Package faultsite enforces the fault-injection naming contract
// (DESIGN.md §11/§12): every faultinject call site is addressed by a
// declared constant — the exported FaultSite* names (or the unexported
// constants they alias) — never an inline string literal. Sites named
// by literals drift: a typo in a test's Arm silently arms nothing, and
// grep can no longer prove which sites exist. With constants, the
// compiler checks the spelling and the exported list in serve.go is
// the complete site registry.
//
// The analyzer flags any call to faultinject.Hit / Arm / Disarm /
// Stats whose site argument is not a reference to a declared constant.
package faultsite

import (
	"go/ast"
	"go/types"

	"distflow/internal/analyzers/framework"
)

// faultPath matches the injection registry package.
const faultPath = "distflow/internal/faultinject"

// siteFuncs maps the registry's entry points to the index of their
// site-name argument.
var siteFuncs = map[string]int{"Hit": 0, "Arm": 0, "Disarm": 0, "Stats": 0}

// Analyzer is the faultsite pass.
var Analyzer = &framework.Analyzer{
	Name: "faultsite",
	Doc:  "require faultinject sites to be named by declared constants (FaultSite*), never string literals",
	Run:  run,
}

func run(pass *framework.Pass) (any, error) {
	if framework.PathHasSuffix(pass.Path, "faultinject") {
		// The registry's own implementation passes site names through
		// variables by construction (Arm's disarm closure and friends).
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := framework.CalleeFunc(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			idx, ok := siteFuncs[fn.Name()]
			if !ok || idx >= len(call.Args) {
				return true
			}
			if p := framework.FuncPkgPath(fn); p != faultPath && !framework.PathHasSuffix(p, "faultinject") {
				return true
			}
			if !isConstRef(pass, call.Args[idx]) {
				pass.Reportf(call.Args[idx].Pos(),
					"faultinject.%s site must be a declared constant (the exported FaultSite* names), not a string expression", fn.Name())
			}
			return true
		})
	}
	return nil, nil
}

// isConstRef reports whether expr is an identifier or selector
// resolving to a declared constant.
func isConstRef(pass *framework.Pass, expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return isConstObj(pass, e)
	case *ast.SelectorExpr:
		return isConstObj(pass, e.Sel)
	}
	return false
}

func isConstObj(pass *framework.Pass, id *ast.Ident) bool {
	obj := framework.ObjectOf(pass.TypesInfo, id)
	if obj == nil {
		return false
	}
	_, isConst := obj.(*types.Const)
	return isConst
}
