// Package detrand enforces the repository's determinism discipline
// (DESIGN.md §12): results must be bit-identical at every worker count
// and fully replayable from seeds, so the solver and approximator
// packages may not consult ambient nondeterminism.
//
// Three rules:
//
//  1. In determinism-critical packages (sherman, capprox, lsst, jtree,
//     vtree, par, graph, csr, shard) calls to math/rand's global functions
//     (rand.Intn, rand.Float64, ...) are forbidden — randomness must
//     flow through an explicitly seeded *rand.Rand so replays
//     reproduce it. Constructing one (rand.New, rand.NewSource) is
//     allowed.
//  2. In the same packages, time.Now / time.Since / time.Until are
//     forbidden: wall-clock reads in result-affecting code are the
//     classic source of unreproducible benches. Pure timing
//     instrumentation carries a //distflow:allow detrand annotation
//     explaining that the value only feeds Stats.
//  3. In every package, a `range` over a map whose body appends to an
//     outer slice, sends on a channel, concatenates onto an outer
//     string, or writes output (fmt printing / Write methods /
//     encoders) is flagged: map iteration order is random per run, so
//     such loops emit randomly-ordered results. The one idiomatic
//     exception — collecting keys that are sorted immediately after
//     the loop — is recognized and allowed.
package detrand

import (
	"go/ast"
	"go/token"
	"go/types"

	"distflow/internal/analyzers/framework"
)

// criticalPkgs are the determinism-critical package names: rules 1–2
// apply only inside them (matched as import-path suffixes, so the
// analysistest packages named after them are covered too).
var criticalPkgs = []string{
	"sherman", "capprox", "lsst", "jtree", "vtree", "par", "graph", "csr", "shard",
}

// globalRandAllowed lists the math/rand package-level functions that
// do not touch the global source.
var globalRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// Analyzer is the detrand pass.
var Analyzer = &framework.Analyzer{
	Name: "detrand",
	Doc:  "forbid ambient nondeterminism (global rand, wall clock, ordered output from map ranges) in determinism-critical code",
	Run:  run,
}

func run(pass *framework.Pass) (any, error) {
	critical := framework.PathHasSuffix(pass.Path, criticalPkgs...)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if critical {
					checkCall(pass, n)
				}
			case *ast.RangeStmt:
				checkMapRange(pass, file, n)
			}
			return true
		})
	}
	return nil, nil
}

func checkCall(pass *framework.Pass, call *ast.CallExpr) {
	fn := framework.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	switch framework.FuncPkgPath(fn) {
	case "math/rand", "math/rand/v2":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && !globalRandAllowed[fn.Name()] {
			pass.Reportf(call.Pos(),
				"global math/rand.%s uses the shared unseeded source; thread an explicitly seeded *rand.Rand instead", fn.Name())
		}
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(),
				"time.%s in a determinism-critical package: wall-clock reads are not replayable", fn.Name())
		}
	}
}

// checkMapRange flags range-over-map loops that produce ordered output
// from the randomly-ordered iteration.
func checkMapRange(pass *framework.Pass, file *ast.File, loop *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[loop.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	var appended []*types.Var // outer slices appended to inside the body
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "map iteration order is random: %s inside a range over a map emits nondeterministic order", what)
	}
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			report(n.Pos(), "channel send")
		case *ast.AssignStmt:
			checkAssign(pass, loop, n, &appended, report)
		case *ast.CallExpr:
			if isOrderedOutputCall(pass.TypesInfo, n) {
				report(n.Pos(), "output write")
			}
		}
		return true
	})
	// The collect-then-sort idiom: appends whose slice is sorted after
	// the loop are the standard fix, not a bug.
	for _, slice := range appended {
		if !sortedAfter(pass, file, loop, slice) {
			report(loop.Pos(), "append to "+slice.Name())
		}
	}
}

// checkAssign records appends to outer slices and flags `s += ...`
// string concatenation onto outer variables.
func checkAssign(pass *framework.Pass, loop *ast.RangeStmt, assign *ast.AssignStmt, appended *[]*types.Var, report func(token.Pos, string)) {
	for i, rhs := range assign.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && pass.TypesInfo.Uses[id] == types.Universe.Lookup("append") {
				if i < len(assign.Lhs) {
					if v := outerVar(pass, loop, assign.Lhs[i]); v != nil {
						*appended = append(*appended, v)
					}
				}
			}
		}
	}
	if assign.Tok == token.ADD_ASSIGN && len(assign.Lhs) == 1 {
		if v := outerVar(pass, loop, assign.Lhs[0]); v != nil {
			if b, ok := v.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				report(assign.Pos(), "string concatenation onto "+v.Name())
			}
		}
	}
}

// outerVar resolves expr to a variable declared outside the loop: a
// plain identifier, or a field selector (x.f, x.y.f) whose root
// variable is declared outside the loop — in which case the field
// variable is returned, so appends to result-struct fields (doc.Rows =
// append(doc.Rows, ...)) are tracked too.
func outerVar(pass *framework.Pass, loop *ast.RangeStmt, expr ast.Expr) *types.Var {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		v, ok := framework.ObjectOf(pass.TypesInfo, e).(*types.Var)
		if !ok {
			return nil
		}
		if v.Pos() >= loop.Pos() && v.Pos() <= loop.End() {
			return nil // loop-local accumulator: scoped to one iteration
		}
		return v
	case *ast.SelectorExpr:
		sel, ok := pass.TypesInfo.Selections[e]
		if !ok {
			return nil
		}
		f, ok := sel.Obj().(*types.Var)
		if !ok {
			return nil
		}
		root := rootIdent(e)
		if root == nil {
			return nil
		}
		rv, ok := framework.ObjectOf(pass.TypesInfo, root).(*types.Var)
		if !ok || (rv.Pos() >= loop.Pos() && rv.Pos() <= loop.End()) {
			return nil
		}
		return f
	}
	return nil
}

// rootIdent walks a selector chain to its base identifier.
func rootIdent(sel *ast.SelectorExpr) *ast.Ident {
	for {
		switch x := ast.Unparen(sel.X).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			sel = x
		default:
			return nil
		}
	}
}

// isOrderedOutputCall reports whether the call writes ordered output:
// fmt printing, Write*/Encode methods on writers and encoders.
func isOrderedOutputCall(info *types.Info, call *ast.CallExpr) bool {
	fn := framework.CalleeFunc(info, call)
	if fn == nil {
		return false
	}
	if framework.FuncPkgPath(fn) == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Encode", "Print", "Printf", "Println":
			return true
		}
	}
	return false
}

// sortedAfter reports whether slice is passed to a sort call (sort.*
// or slices.Sort*) in a statement that follows the loop within the
// same enclosing function — a sort in some later function must not
// absolve this loop, which matters for struct fields whose *types.Var
// is shared by every function touching the type.
func sortedAfter(pass *framework.Pass, file *ast.File, loop *ast.RangeStmt, slice *types.Var) bool {
	scope := enclosingFunc(file, loop.Pos())
	if scope == nil {
		scope = file
	}
	found := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= loop.End() {
			return true
		}
		fn := framework.CalleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		switch framework.FuncPkgPath(fn) {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			arg = ast.Unparen(arg)
			if un, ok := arg.(*ast.UnaryExpr); ok {
				arg = ast.Unparen(un.X) // sort.Sort(&x) forms
			}
			switch a := arg.(type) {
			case *ast.Ident:
				if framework.ObjectOf(pass.TypesInfo, a) == slice {
					found = true
				}
			case *ast.SelectorExpr:
				if sel, ok := pass.TypesInfo.Selections[a]; ok && sel.Obj() == slice {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// enclosingFunc returns the innermost FuncDecl or FuncLit containing
// pos, or nil for top-level positions.
func enclosingFunc(file *ast.File, pos token.Pos) ast.Node {
	var best ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			if n.Pos() <= pos && pos < n.End() {
				best = n
			}
		}
		return true
	})
	return best
}
