// Package sherman simulates a determinism-critical package (the
// analyzer scopes rules 1–2 by import-path suffix, which matches this
// testdata directory's name).
package sherman

import (
	"math/rand"
	"time"
)

// Global draws from the shared unseeded source: forbidden.
func Global() int {
	return rand.Intn(3) // want `global math/rand`
}

// Seeded threads an explicitly seeded PRNG: the sanctioned pattern.
func Seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(3)
}

// Clock reads the wall clock in result-affecting code: forbidden.
func Clock() time.Time {
	return time.Now() // want `wall-clock`
}

// Elapsed uses time.Since: same hazard.
func Elapsed(t0 time.Time) float64 {
	return time.Since(t0).Seconds() // want `wall-clock`
}

// Instrumented shows the sanctioned escape hatch: pure timing
// instrumentation under a justified suppression.
func Instrumented() float64 {
	start := time.Now() //distflow:allow detrand timing stat only, never feeds results
	return float64(start.Nanosecond())
}
