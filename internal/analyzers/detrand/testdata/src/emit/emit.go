// Package emit simulates a non-critical package (stats/JSON emission
// paths): the map-range ordering rule applies everywhere, while the
// rand/clock rules do not.
package emit

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

type doc struct {
	Rows []string
}

// RandAndClock is fine here: emit is not a determinism-critical
// package.
func RandAndClock() (int, time.Time) {
	return rand.Intn(3), time.Now()
}

// PrintMap writes output in map order: the classic nondeterministic
// emission bug.
func PrintMap(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `output write`
	}
}

// CollectUnsorted lets map order escape through a slice.
func CollectUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want `append to out`
		out = append(out, k)
	}
	return out
}

// CollectSorted is the idiomatic fix and must not be flagged.
func CollectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// FieldAppend tracks appends through struct fields too.
func FieldAppend(m map[string]int) doc {
	var d doc
	for k := range m { // want `append to Rows`
		d.Rows = append(d.Rows, k)
	}
	return d
}

// FieldAppendSorted is the sorted-after fix through a field.
func FieldAppendSorted(m map[string]int) doc {
	var d doc
	for k := range m {
		d.Rows = append(d.Rows, k)
	}
	sort.Strings(d.Rows)
	return d
}

// Send leaks map order through a channel.
func Send(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send`
	}
}

// Concat leaks map order through string concatenation.
func Concat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want `string concatenation onto s`
	}
	return s
}

// LocalAccumulator appends to a slice scoped inside the loop body:
// per-iteration state, no ordering escape.
func LocalAccumulator(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

// AllowedEmission shows a justified suppression on an emission loop.
func AllowedEmission(m map[string]int) {
	for k := range m {
		fmt.Println(k) //distflow:allow detrand debug dump, order explicitly documented as unstable
	}
}
