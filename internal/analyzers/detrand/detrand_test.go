package detrand_test

import (
	"testing"

	"distflow/internal/analyzers/detrand"
	"distflow/internal/analyzers/framework"
)

// TestCriticalPackage exercises rules 1–2 (global rand, wall clock) in
// a package whose path suffix marks it determinism-critical.
func TestCriticalPackage(t *testing.T) {
	framework.RunTest(t, "testdata/src/sherman", detrand.Analyzer)
}

// TestMapRange exercises rule 3 (ordered output from map iteration) in
// a non-critical package, including the collect-then-sort exemption
// and its function-scoping.
func TestMapRange(t *testing.T) {
	framework.RunTest(t, "testdata/src/emit", detrand.Analyzer)
}
