package ctxflow_test

import (
	"strings"
	"testing"

	"distflow/internal/analyzers/ctxflow"
	"distflow/internal/analyzers/framework"
)

// TestCtxFlow exercises ctx threading, unused-ctx detection, the
// derived-context exemption, and marked poll loops.
func TestCtxFlow(t *testing.T) {
	framework.RunTest(t, "testdata/src/ctxtest", ctxflow.Analyzer)
}

// TestOrphanMarker asserts a //distflow:poll marker that attaches to
// no loop is reported. (Checked programmatically: the diagnostic lands
// on the marker's own line, which cannot also hold a // want comment.)
func TestOrphanMarker(t *testing.T) {
	findings := framework.MustFindings(t, "testdata/src/orphan", ctxflow.Analyzer)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly the orphan report:\n%s",
			len(findings), framework.FormatFindings(findings))
	}
	if !strings.Contains(findings[0].Message, "orphaned //distflow:poll marker") {
		t.Errorf("unexpected finding: %s", findings[0])
	}
}
