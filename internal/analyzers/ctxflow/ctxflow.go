// Package ctxflow enforces the context-plumbing contract of DESIGN.md
// §11: the serving stack's cancellation and deadline guarantees hold
// only if every ...Ctx entry point actually threads its context down
// to the granules that poll it. PR 8 established the invariants by
// hand; this analyzer keeps them from regressing.
//
// Three rules:
//
//  1. Inside a function whose name ends in "Ctx" and that takes a
//     context.Context, every call to a callee that accepts a context
//     must be passed an expression derived from the function's own
//     ctx parameter — not context.Background()/TODO() and not some
//     unrelated context. Detaching is occasionally intentional (the
//     Server's coalesced solves run on a detached context so one
//     cancelled waiter cannot abort the others) and carries a
//     //distflow:allow ctxflow annotation at the call.
//  2. A ...Ctx function must use its ctx parameter at least once — an
//     entry point that accepts a context and drops it advertises a
//     guarantee it does not implement.
//  3. A loop marked as a poll granule —
//
//     //distflow:poll
//     for ... { ... }
//
//     must poll its context somewhere in the body: a method call on a
//     context value (ctx.Err, ctx.Done, ctx.Deadline) or a call
//     passing a context onward (ctxStatus(ctx), sampleTree(ctx, ...)).
//     The markers sit on the gradient-iteration and contraction-level
//     loops in internal/sherman and internal/capprox, so deleting the
//     poll (the regression class PR 8 guarded by hand) now fails the
//     lint instead of silently breaking cancellation latency.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"distflow/internal/analyzers/framework"
)

// PollMarker tags a loop as a poll granule.
const PollMarker = "//distflow:poll"

// Analyzer is the ctxflow pass.
var Analyzer = &framework.Analyzer{
	Name: "ctxflow",
	Doc:  "require ...Ctx entry points to thread their context into context-accepting callees and marked poll loops to poll",
	Run:  run,
}

func run(pass *framework.Pass) (any, error) {
	for _, file := range pass.Files {
		markers := pollMarkerLines(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkPollMarkers(pass, fd, markers)
			if strings.HasSuffix(fd.Name.Name, "Ctx") {
				checkCtxFunc(pass, fd)
			}
			return true
		})
		// A marker that attached to no loop is itself a bug: it looks
		// like protection but protects nothing.
		for line, pos := range markers {
			if pos.IsValid() {
				pass.Reportf(pos, "orphaned //distflow:poll marker on line %d: no for/range statement starts on the same or next line", line)
			}
		}
	}
	return nil, nil
}

// ctxParamObj returns the object of fd's context.Context parameter,
// or nil.
func ctxParamObj(pass *framework.Pass, fd *ast.FuncDecl) types.Object {
	for _, field := range fd.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || !framework.IsContextType(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				return obj
			}
		}
	}
	return nil
}

func checkCtxFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	ctxObj := ctxParamObj(pass, fd)
	if ctxObj == nil {
		return
	}
	// Rule 2: the context must be used at all.
	if !framework.UsesObject(pass.TypesInfo, fd.Body, ctxObj) {
		pass.Reportf(fd.Name.Pos(), "%s accepts a context but never uses it", fd.Name.Name)
		return
	}
	// Rule 1: context-accepting callees receive ctx-derived contexts.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := framework.CalleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return true
		}
		idx := framework.ContextParam(sig)
		if idx < 0 || idx >= len(call.Args) {
			return true
		}
		arg := call.Args[idx]
		if framework.UsesObject(pass.TypesInfo, arg, ctxObj) {
			return true
		}
		// A fresh context from another ctx-derived local (ctx2 :=
		// context.WithTimeout(ctx, ...)) still mentions ctx at its
		// definition, not here; accept any local whose declaration's
		// initializer mentions ctx.
		if derivedFromCtx(pass, arg, ctxObj) {
			return true
		}
		pass.Reportf(arg.Pos(),
			"%s does not thread its ctx into %s (context-accepting callee): pass a context derived from ctx or annotate the intentional detach", fd.Name.Name, fn.Name())
		return true
	})
}

// derivedFromCtx reports whether arg is an identifier whose defining
// assignment mentions the ctx parameter (one level of indirection:
// cctx, cancel := context.WithCancel(ctx)).
func derivedFromCtx(pass *framework.Pass, arg ast.Expr, ctxObj types.Object) bool {
	id, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok {
		return false
	}
	obj := framework.ObjectOf(pass.TypesInfo, id)
	if obj == nil {
		return false
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	// Find the declaration site: scan the enclosing file for the
	// defining Ident and inspect its AssignStmt/ValueSpec for a ctx
	// mention.
	for _, file := range pass.Files {
		if file.Pos() > v.Pos() || v.Pos() > file.End() {
			continue
		}
		found := false
		ast.Inspect(file, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if lid, ok := lhs.(*ast.Ident); ok && pass.TypesInfo.Defs[lid] == obj {
						for _, rhs := range n.Rhs {
							if framework.UsesObject(pass.TypesInfo, rhs, ctxObj) {
								found = true
							}
						}
					}
				}
			case *ast.ValueSpec:
				for _, name := range n.Names {
					if pass.TypesInfo.Defs[name] == obj {
						for _, val := range n.Values {
							if framework.UsesObject(pass.TypesInfo, val, ctxObj) {
								found = true
							}
						}
					}
				}
			}
			return true
		})
		return found
	}
	return false
}

// pollMarkerLines collects the //distflow:poll comments of a file,
// keyed by line. checkPollMarkers zeroes each entry it attaches to a
// loop; survivors are orphans.
func pollMarkerLines(pass *framework.Pass, file *ast.File) map[int]token.Pos {
	lines := map[int]token.Pos{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, PollMarker) {
				lines[pass.Fset.Position(c.Pos()).Line] = c.Pos()
			}
		}
	}
	return lines
}

// checkPollMarkers verifies every marked loop in fd polls a context,
// consuming the markers it matches.
func checkPollMarkers(pass *framework.Pass, fd *ast.FuncDecl, markers map[int]token.Pos) {
	if len(markers) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch l := n.(type) {
		case *ast.ForStmt:
			body = l.Body
		case *ast.RangeStmt:
			body = l.Body
		default:
			return true
		}
		line := pass.Fset.Position(n.Pos()).Line
		marked := false
		for _, ml := range []int{line, line - 1} {
			if pos, ok := markers[ml]; ok && pos.IsValid() {
				markers[ml] = token.NoPos // consumed
				marked = true
			}
		}
		if !marked {
			return true
		}
		if !pollsContext(pass, body) {
			pass.Reportf(n.Pos(), "loop is marked //distflow:poll but its body never polls a context (ctx.Err/ctx.Done or a ctx-accepting call)")
		}
		return true
	})
}

// pollsContext reports whether the block contains a context poll: a
// method call on a context.Context value, or any call passing a
// context.Context argument.
func pollsContext(pass *framework.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok && framework.IsContextType(tv.Type) {
				found = true
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if tv, ok := pass.TypesInfo.Types[arg]; ok && framework.IsContextType(tv.Type) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
