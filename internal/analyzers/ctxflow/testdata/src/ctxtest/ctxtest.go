// Package ctxtest exercises the ctxflow rules: ...Ctx entry points
// must use and thread their context, and //distflow:poll loops must
// poll.
package ctxtest

import "context"

func helper(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return -1
	}
	return n
}

// GoodCtx threads its ctx straight through.
func GoodCtx(ctx context.Context) int {
	return helper(ctx, 1)
}

// DetachCtx silently swaps in a fresh context.
func DetachCtx(ctx context.Context) int {
	if ctx.Err() != nil {
		return -1
	}
	return helper(context.Background(), 1) // want `does not thread its ctx`
}

// AllowedDetachCtx detaches on purpose, with the mandatory reason.
func AllowedDetachCtx(ctx context.Context) int {
	if ctx.Err() != nil {
		return -1
	}
	return helper(context.Background(), 1) //distflow:allow ctxflow coalesced solve runs detached so one cancelled waiter cannot abort the rest
}

// DroppedCtx advertises cancellation it does not implement.
func DroppedCtx(ctx context.Context) int { // want `never uses it`
	return 1
}

// DerivedCtx passes a context derived from ctx: one level of
// indirection the analyzer accepts.
func DerivedCtx(ctx context.Context) int {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	return helper(cctx, 2)
}

// PollOK polls inside its marked granule.
func PollOK(ctx context.Context, n int) int {
	total := 0
	//distflow:poll per-iteration granule
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			return -1
		}
		total += i
	}
	return total
}

// PollViaCall satisfies the marker by passing ctx onward.
func PollViaCall(ctx context.Context, n int) int {
	total := 0
	//distflow:poll granule polls through the helper
	for i := 0; i < n; i++ {
		total += helper(ctx, i)
	}
	return total
}

// PollMissing carries the marker but never polls: the regression the
// marker contract exists to catch.
func PollMissing(ctx context.Context, n int) int {
	total := 0
	//distflow:poll granule
	for i := 0; i < n; i++ { // want `never polls a context`
		total += i
	}
	return total
}
