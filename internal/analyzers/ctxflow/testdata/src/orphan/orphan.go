// Package orphan holds a //distflow:poll marker that attaches to no
// loop; the ctxflow unit test asserts it is reported programmatically
// (a // want comment cannot share the marker's line).
package orphan

import "context"

func Orphan(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return -1
	}
	//distflow:poll this marker precedes a plain statement, not a loop
	total := n * 2
	return total
}
