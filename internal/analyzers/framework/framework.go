// Package framework is the repository's static-analysis driver: a
// stdlib-only re-implementation of the golang.org/x/tools/go/analysis
// surface the distflow analyzers need (DESIGN.md §12).
//
// Why not the real go/analysis? The build environment is hermetic — no
// module proxy, no vendored x/tools — and the repo's hard rule is that
// `go build ./... && go test ./...` works offline from a clean cache.
// So this package mirrors the x/tools API shape (Analyzer, Pass,
// Diagnostic, an analysistest-style test harness) on top of go/ast,
// go/types and go/importer's source mode, which type-checks the
// standard library from GOROOT/src without network or export data.
// Analyzers written against it port to the real framework by swapping
// the import if x/tools ever lands in the module.
//
// Beyond the x/tools shape, the driver owns one repo-specific
// contract: the suppression comment
//
//	//distflow:allow <analyzer> <reason>
//
// on (or immediately above) an offending line silences that analyzer's
// diagnostics for the line. The reason is mandatory: an allow comment
// with no reason is itself reported as an error, so every suppression
// in the tree documents why the invariant does not apply.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one analysis pass: a named invariant checked
// over one package at a time. The shape matches
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //distflow:allow comments. Lower-case, no spaces.
	Name string
	// Doc states the invariant the analyzer enforces, first line short.
	Doc string
	// Run checks one package and reports findings via pass.Report.
	// The returned value is ignored by this driver (the x/tools
	// signature is kept for portability).
	Run func(pass *Pass) (any, error)
}

// A Pass provides one analyzer run with a single type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test source files, parsed with
	// comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the standard type-checker maps (Types, Defs,
	// Uses, Selections, Implicits, Scopes) for Files.
	TypesInfo *types.Info
	// Path is the package's import path within the module (or the
	// synthetic path the test harness assigned).
	Path string
	// Report delivers one finding. The driver applies //distflow:allow
	// filtering afterwards; analyzers just report.
	Report func(Diagnostic)
}

// Reportf is the fmt-style convenience wrapper over Report.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a positioned, analyzer-attributed diagnostic after
// suppression filtering — what the multichecker prints and tests
// assert on.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Position, f.Message, f.Analyzer)
}

// AllowPrefix is the suppression-comment marker.
const AllowPrefix = "//distflow:allow"

// allowDirective is one parsed //distflow:allow comment.
type allowDirective struct {
	analyzer string
	reason   string
	line     int
	pos      token.Pos
}

// parseAllows extracts every //distflow:allow directive of a file.
// Malformed directives (no analyzer, or an empty reason) are returned
// as violations — the mandatory-reason contract is enforced here, by
// the driver, not by individual analyzers.
func parseAllows(fset *token.FileSet, file *ast.File) (allows []allowDirective, violations []Diagnostic) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, AllowPrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, AllowPrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				// e.g. //distflow:allowance — not ours.
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				violations = append(violations, Diagnostic{
					Pos:     c.Pos(),
					Message: "malformed //distflow:allow: want \"//distflow:allow <analyzer> <reason>\"",
				})
				continue
			}
			name := fields[0]
			reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), name))
			if reason == "" {
				violations = append(violations, Diagnostic{
					Pos:     c.Pos(),
					Message: fmt.Sprintf("//distflow:allow %s is missing its mandatory reason", name),
				})
				continue
			}
			allows = append(allows, allowDirective{
				analyzer: name,
				reason:   reason,
				line:     fset.Position(c.Pos()).Line,
				pos:      c.Pos(),
			})
		}
	}
	return allows, violations
}

// suppressed reports whether a diagnostic of the named analyzer at the
// given line is covered by an allow directive on the same line or the
// line immediately above (the two placements a reviewer expects:
// trailing comment, or its own line directly over the offender).
func suppressed(allows []allowDirective, analyzer string, line int) bool {
	for _, a := range allows {
		if a.analyzer != analyzer {
			continue
		}
		if a.line == line || a.line == line-1 {
			return true
		}
	}
	return false
}

// RunAnalyzers runs every analyzer over every loaded package, applies
// the suppression contract, and returns the surviving findings sorted
// by position. Driver errors (an analyzer returning error) are
// reported as findings attributed to the analyzer, so a broken
// analyzer fails loudly instead of passing silently.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		var allows []allowDirective
		for _, f := range pkg.Files {
			fa, viol := parseAllows(pkg.Fset, f)
			allows = append(allows, fa...)
			for _, d := range viol {
				findings = append(findings, Finding{
					Analyzer: "allow",
					Position: pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
		}
		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Path:      pkg.Path,
				Report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if _, err := a.Run(pass); err != nil {
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Position: token.Position{Filename: pkg.Path},
					Message:  fmt.Sprintf("analyzer failed: %v", err),
				})
				continue
			}
			for _, d := range diags {
				position := pkg.Fset.Position(d.Pos)
				if suppressed(allows, a.Name, position.Line) {
					continue
				}
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Position: position,
					Message:  d.Message,
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}
