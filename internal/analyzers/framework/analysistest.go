package framework

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// RunTest loads the single package rooted at pkgdir (a testdata
// directory; imports of module-internal and stdlib packages both
// resolve) and checks the analyzer's diagnostics against // want
// comments, analysistest-style:
//
//	rand.Intn(3) // want `global math/rand`
//
// Each `// want` comment carries one or more back-quoted or
// double-quoted regular expressions; every diagnostic on that line
// must match one, every pattern must be matched by a diagnostic, and
// diagnostics on lines with no want comment fail the test.
// Suppression filtering runs exactly as in production, so testdata can
// assert that //distflow:allow comments really silence findings (and
// that reason-less ones are themselves reported, attributed to the
// pseudo-analyzer "allow").
func RunTest(t *testing.T, pkgdir string, a *Analyzer) {
	t.Helper()
	findings := runOnDir(t, pkgdir, a)

	type wantKey struct {
		file string
		line int
	}
	wants := map[wantKey][]*regexp.Regexp{}
	loader, err := NewLoader(pkgdir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(pkgdir, testPath(loader, pkgdir))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, ok := parseWant(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := wantKey{file: pos.Filename, line: pos.Line}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, p, err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}

	matched := map[wantKey][]bool{}
	for k, res := range wants {
		matched[k] = make([]bool, len(res))
	}
	for _, f := range findings {
		key := wantKey{file: f.Position.Filename, line: f.Position.Line}
		res := wants[key]
		ok := false
		for i, re := range res {
			if !matched[key][i] && re.MatchString(f.Message) {
				matched[key][i] = true
				ok = true
				break
			}
		}
		if !ok {
			// Allow a second diagnostic to match an already-satisfied
			// pattern (two identical findings on one line are rare but
			// legal in x/tools analysistest too — treat as unexpected
			// to keep the contract strict).
			t.Errorf("unexpected diagnostic at %s: %s [%s]", f.Position, f.Message, f.Analyzer)
		}
	}
	for k, res := range wants {
		for i, re := range res {
			if !matched[k][i] {
				t.Errorf("%s:%d: no diagnostic matched want %q", k.file, k.line, re)
			}
		}
	}
}

// runOnDir runs one analyzer over the package at pkgdir with full
// driver semantics (suppression filtering included).
func runOnDir(t *testing.T, pkgdir string, a *Analyzer) []Finding {
	t.Helper()
	loader, err := NewLoader(pkgdir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(pkgdir, testPath(loader, pkgdir))
	if err != nil {
		t.Fatal(err)
	}
	return RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
}

// testPath synthesizes the import path of a testdata package: its
// module-relative directory path. The final element is the package
// directory name, so analyzers that scope by package-name suffix see
// testdata packages named after their targets.
func testPath(l *Loader, pkgdir string) string {
	abs, err := filepath.Abs(pkgdir)
	if err != nil {
		return pkgdir
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return pkgdir
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// parseWant extracts the quoted regexps of a // want comment.
func parseWant(text string) ([]string, bool) {
	rest, ok := strings.CutPrefix(text, "// want ")
	if !ok {
		rest, ok = strings.CutPrefix(text, "//want ")
		if !ok {
			return nil, false
		}
	}
	var patterns []string
	rest = strings.TrimSpace(rest)
	for rest != "" {
		quote := rest[0]
		if quote != '"' && quote != '`' {
			break
		}
		end := strings.IndexByte(rest[1:], quote)
		if end < 0 {
			break
		}
		patterns = append(patterns, rest[1:1+end])
		rest = strings.TrimSpace(rest[end+2:])
	}
	return patterns, len(patterns) > 0
}

// MustFindings is a test convenience: load dir, run analyzers, return
// findings or fail.
func MustFindings(t *testing.T, dir string, analyzers ...*Analyzer) []Finding {
	t.Helper()
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, testPath(loader, dir))
	if err != nil {
		t.Fatal(err)
	}
	return RunAnalyzers([]*Package{pkg}, analyzers)
}

// FormatFindings renders findings one per line for error messages and
// artifacts.
func FormatFindings(findings []Finding) string {
	var b strings.Builder
	for _, f := range findings {
		fmt.Fprintln(&b, f)
	}
	return b.String()
}
