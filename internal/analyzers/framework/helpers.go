package framework

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// CalleeFunc resolves the statically-known callee of a call: a
// package-level function, a method (through a selector), or nil for
// dynamic calls (function values, interface methods resolve to the
// interface's *types.Func, which is still useful for signature
// checks).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Qualified identifier (pkg.Func).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// IsPkgFunc reports whether fn is the package-level function
// pkgPath.name (not a method).
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() != pkgPath || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// FuncPkgPath returns the defining package path of fn ("" for
// builtins).
func FuncPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// ContextParam returns the index of the first context.Context
// parameter of sig, or -1.
func ContextParam(sig *types.Signature) int {
	for i := 0; i < sig.Params().Len(); i++ {
		if IsContextType(sig.Params().At(i).Type()) {
			return i
		}
	}
	return -1
}

// UsesObject reports whether any identifier under node resolves to
// obj.
func UsesObject(info *types.Info, node ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// FileBase returns the base name of the file containing pos
// ("epoch.go").
func FileBase(fset *token.FileSet, pos token.Pos) string {
	return filepath.Base(fset.Position(pos).Filename)
}

// PathHasSuffix reports whether the import path is exactly one of the
// given package names or ends in "/<name>" — the way the analyzers
// scope themselves to the determinism-critical package list while
// still matching the analysistest packages named after them.
func PathHasSuffix(path string, names ...string) bool {
	for _, name := range names {
		if path == name || strings.HasSuffix(path, "/"+name) {
			return true
		}
	}
	return false
}

// IsFloat reports whether t's underlying type is float32 or float64.
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// ObjectOf resolves an identifier through Uses then Defs.
func ObjectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}
