package framework

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, parsed and type-checked (non-test) package.
type Package struct {
	// Path is the import path ("distflow/internal/sherman").
	Path string
	// Dir is the package directory on disk.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader resolves, parses and type-checks module packages without
// the go command: module-internal import paths map onto directories
// under the module root, and everything else (the standard library) is
// type-checked from GOROOT/src by go/importer's source mode — the one
// importer that works offline with no pre-built export data. Loaded
// packages are cached per Loader, so a ./... load checks each package
// once no matter how many others import it.
type Loader struct {
	ModuleRoot string
	ModulePath string
	Fset       *token.FileSet

	ctx   build.Context
	std   types.ImporterFrom
	cache map[string]*Package
	// checking guards against import cycles (the type-checker would
	// recurse forever through the importer otherwise).
	checking map[string]bool
}

// NewLoader builds a loader for the module containing dir (found by
// walking up to go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ctx := build.Default
	// cgo resolution needs to exec the cgo tool; every import in this
	// module builds in pure-Go mode, so turn cgo off and keep the load
	// hermetic (this also steers net/http onto its pure-Go fallback).
	ctx.CgoEnabled = false
	l := &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		Fset:       fset,
		ctx:        ctx,
		cache:      map[string]*Package{},
		checking:   map[string]bool{},
	}
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("source importer does not implement ImporterFrom")
	}
	l.std = std
	return l, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Import implements types.Importer for the type-checker's benefit:
// module-internal paths load recursively, "unsafe" is built in, and
// everything else delegates to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, l.ModuleRoot, 0)
}

// LoadDir parses and type-checks the single package in dir, giving it
// the stated import path. Results are cached by path.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.checking[path] = true
	defer func() { l.checking[path] = false }()

	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	var files []*ast.File
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no non-test Go files", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", l.ctx.GOARCH),
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.cache[path] = pkg
	return pkg, nil
}

// Load expands the given patterns ("./...", "./internal/sherman", a
// full import path) relative to the module root and returns the
// matched packages, sorted by import path. Directories named testdata,
// vendor, or starting with "." or "_" are skipped by ... expansion,
// matching the go tool's rules.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		if strings.HasPrefix(pat, l.ModulePath) {
			rel := strings.TrimPrefix(strings.TrimPrefix(pat, l.ModulePath), "/")
			pat = "./" + rel
		}
		dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			dirs[dir] = true
			continue
		}
		err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			base := filepath.Base(p)
			if p != dir && (base == "testdata" || base == "vendor" ||
				strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
				return filepath.SkipDir
			}
			dirs[p] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	var out []*Package
	for dir := range dirs {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		if _, err := l.ctx.ImportDir(dir, 0); err != nil {
			if _, noGo := err.(*build.NoGoError); noGo {
				continue
			}
			return nil, fmt.Errorf("%s: %w", dir, err)
		}
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}
