// Package allowcontract exercises the //distflow:allow directive
// grammar: well-formed suppressions (same line and line above),
// reason-less allows, and malformed allows. The framework driver test
// runs a fixture analyzer over it and asserts the contract.
package allowcontract

// NoReason carries an allow with no reason: the directive itself is a
// finding and it suppresses nothing.
func NoReason() int {
	return 1 //distflow:allow detrand
}

// Malformed carries an allow with no analyzer at all.
func Malformed() int {
	return 2 //distflow:allow
}

// Suppressed is the well-formed same-line suppression.
func Suppressed() int {
	return 3 //distflow:allow testmark covered by the driver contract test
}

// SuppressedAbove is the well-formed line-above suppression.
func SuppressedAbove() int {
	//distflow:allow testmark line-above form, also covered by the contract test
	return 4
}

// Unsuppressed has no directive: the fixture analyzer's finding
// survives.
func Unsuppressed() int {
	return 5
}
