package framework_test

import (
	"go/ast"
	"strings"
	"testing"

	"distflow/internal/analyzers/framework"
)

// testmark reports every return statement: a fixture whose findings
// the allowcontract testdata suppresses (or fails to).
var testmark = &framework.Analyzer{
	Name: "testmark",
	Doc:  "reports every return statement (driver-contract fixture)",
	Run: func(pass *framework.Pass) (any, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if r, ok := n.(*ast.ReturnStmt); ok {
					pass.Reportf(r.Pos(), "return statement (testmark fixture)")
				}
				return true
			})
		}
		return nil, nil
	},
}

// TestAllowContract asserts the suppression-directive contract:
// well-formed allows (same line or the line above) silence findings,
// reason-less and malformed allows are themselves findings attributed
// to the pseudo-analyzer "allow", and a reason-less allow suppresses
// nothing.
func TestAllowContract(t *testing.T) {
	findings := framework.MustFindings(t, "testdata/src/allowcontract", testmark)

	var allowMissing, allowMalformed, marks int
	for _, f := range findings {
		switch f.Analyzer {
		case "allow":
			switch {
			case strings.Contains(f.Message, "missing its mandatory reason"):
				allowMissing++
				if !strings.Contains(f.Message, "detrand") {
					t.Errorf("missing-reason finding does not name the allowed analyzer: %s", f)
				}
			case strings.Contains(f.Message, "malformed"):
				allowMalformed++
			default:
				t.Errorf("unexpected allow finding: %s", f)
			}
		case "testmark":
			marks++
		default:
			t.Errorf("unexpected analyzer %q in finding: %s", f.Analyzer, f)
		}
	}
	if allowMissing != 1 {
		t.Errorf("got %d missing-reason findings, want 1", allowMissing)
	}
	if allowMalformed != 1 {
		t.Errorf("got %d malformed-allow findings, want 1", allowMalformed)
	}
	// NoReason, Malformed and Unsuppressed survive; Suppressed and
	// SuppressedAbove are silenced.
	if marks != 3 {
		t.Errorf("got %d testmark findings, want 3 (reason-less/malformed allows must not suppress):\n%s",
			marks, framework.FormatFindings(findings))
	}

	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1].Position, findings[i].Position
		if a.Filename > b.Filename || (a.Filename == b.Filename && a.Line > b.Line) {
			t.Errorf("findings not sorted by position: %s before %s", findings[i-1], findings[i])
		}
	}
	for _, f := range findings {
		if !strings.HasSuffix(f.String(), "["+f.Analyzer+"]") {
			t.Errorf("finding string %q does not end with its analyzer tag", f.String())
		}
	}
}
