package proto

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"distflow/internal/congest"
	"distflow/internal/graph"
)

// randomSetup builds a connected graph, a BFS tree on it and per-node
// values from a seed.
func randomSetup(t *testing.T, seed int64) (*graph.Graph, *Tree, []float64, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(30)
	g := graph.GNP(n, 3.0/float64(n), rng)
	tree, _, err := BuildBFSTree(congest.NewNetwork(g, congest.WithSeed(seed)), rng.Intn(n))
	if err != nil {
		t.Fatalf("bfs: %v", err)
	}
	values := make([]float64, n)
	for i := range values {
		values[i] = rng.NormFloat64() * 10
	}
	return g, tree, values, rng
}

// Convergecast with addition computes exact subtree sums: the root
// aggregate equals the plain sum, and each node's aggregate equals the
// recomputed subtree total.
func TestQuickConvergecastExact(t *testing.T) {
	prop := func(seed int64) bool {
		g, tree, values, _ := randomSetup(t, seed)
		sums, _, err := SubtreeSums(congest.NewNetwork(g, congest.WithSeed(seed)), tree, values)
		if err != nil {
			return false
		}
		// Recompute subtree sums bottom-up from the tree structure.
		want := append([]float64(nil), values...)
		order := make([]int, 0, g.N())
		order = append(order, tree.Root)
		for i := 0; i < len(order); i++ {
			order = append(order, tree.Children[order[i]]...)
		}
		for i := len(order) - 1; i > 0; i-- {
			v := order[i]
			want[tree.Parent[v]] += want[v]
		}
		for v := range want {
			if math.Abs(sums[v]-want[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Downcast prefix sums equal the recomputed root-path sums.
func TestQuickDowncastExact(t *testing.T) {
	prop := func(seed int64) bool {
		g, tree, values, _ := randomSetup(t, seed)
		pfx, _, err := DowncastPrefixSums(congest.NewNetwork(g, congest.WithSeed(seed)), tree, values)
		if err != nil {
			return false
		}
		for v := 0; v < g.N(); v++ {
			want := 0.0
			for x := v; ; x = tree.Parent[x] {
				want += values[x]
				if x == tree.Root {
					break
				}
			}
			if math.Abs(pfx[v]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// GatherBroadcast delivers exactly the multiset of items, to every node,
// within the pipelining round bound.
func TestQuickGatherComplete(t *testing.T) {
	prop := func(seed int64) bool {
		g, tree, _, rng := randomSetup(t, seed)
		items := make([][]Item, g.N())
		want := map[int64]float64{}
		key := int64(0)
		total := 0
		for v := 0; v < g.N(); v++ {
			k := rng.Intn(3)
			for i := 0; i < k; i++ {
				it := Item{Key: key, Value: rng.NormFloat64()}
				key++
				items[v] = append(items[v], it)
				want[it.Key] = it.Value
				total++
			}
		}
		all, stats, err := GatherBroadcast(congest.NewNetwork(g, congest.WithSeed(seed)), tree, items)
		if err != nil {
			return false
		}
		if len(all) != total {
			return false
		}
		for _, it := range all {
			if want[it.Key] != it.Value {
				return false
			}
		}
		return stats.Rounds <= 4*(tree.Height+total)+32
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// FloodMin converges to the global minimum regardless of topology.
func TestQuickFloodMin(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := graph.GNP(n, 4.0/float64(n), rng)
		values := make([]int64, n)
		min := int64(math.MaxInt64)
		for i := range values {
			values[i] = rng.Int63n(1000) - 500
			if values[i] < min {
				min = values[i]
			}
		}
		mins, _, err := FloodMin(congest.NewNetwork(g, congest.WithSeed(seed)), values)
		if err != nil {
			return false
		}
		for _, m := range mins {
			if m != min {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
