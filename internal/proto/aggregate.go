package proto

import (
	"fmt"
	"sort"

	"distflow/internal/congest"
)

// Tree-based aggregation primitives. Each Program below uses only the
// node-local part of a Tree (parent edge and child edges), handed to it
// at construction; the round counts are measured by the simulator.

// localTree is the node-local view of a rooted tree.
type localTree struct {
	isRoot     bool
	parentEdge int
	childEdges []int
}

func localViews(t *Tree) []localTree {
	n := len(t.Parent)
	views := make([]localTree, n)
	for v := 0; v < n; v++ {
		views[v] = localTree{
			isRoot:     v == t.Root,
			parentEdge: t.ParentEdge[v],
			childEdges: t.ChildEdge[v],
		}
	}
	return views
}

// --- Convergecast ---

type convergecastNode struct {
	lt       localTree
	value    float64
	op       func(a, b float64) float64
	pending  int
	sent     bool
	received bool // root: all children reported
}

func (c *convergecastNode) Step(ctx *congest.Context, in []congest.Incoming) ([]congest.Outgoing, bool) {
	for _, m := range in {
		msg, ok := m.Msg.(congest.FloatMsg)
		if !ok {
			continue
		}
		c.value = c.op(c.value, msg.Value)
		c.pending--
	}
	if c.pending == 0 && !c.sent {
		c.sent = true
		if c.lt.isRoot {
			c.received = true
			return nil, true
		}
		return []congest.Outgoing{{Edge: c.lt.parentEdge, Msg: congest.FloatMsg{Value: c.value}}}, true
	}
	return nil, c.sent
}

// Convergecast aggregates per-node values up the tree with the
// associative, commutative operation op. It returns the aggregate over
// each node's subtree (index v = aggregate of the subtree rooted at v);
// the root entry is the global aggregate. Runs in height+1 rounds.
func Convergecast(nw *congest.Network, t *Tree, values []float64, op func(a, b float64) float64) ([]float64, congest.Stats, error) {
	views := localViews(t)
	nodes := make([]*convergecastNode, len(views))
	stats, err := nw.Run(func(v int, ctx *congest.Context) congest.Program {
		nodes[v] = &convergecastNode{lt: views[v], value: values[v], op: op, pending: len(views[v].childEdges)}
		return nodes[v]
	}, 2*t.Height+16)
	if err != nil {
		return nil, stats, fmt.Errorf("proto: convergecast: %w", err)
	}
	out := make([]float64, len(views))
	for v, nd := range nodes {
		out[v] = nd.value
	}
	return out, stats, nil
}

// SubtreeSums is Convergecast with addition — the operation used to
// evaluate the congestion approximator's y-values (Fig. 2 / §9.1 (1)).
func SubtreeSums(nw *congest.Network, t *Tree, values []float64) ([]float64, congest.Stats, error) {
	return Convergecast(nw, t, values, func(a, b float64) float64 { return a + b })
}

// --- Broadcast / downcast ---

type downcastNode struct {
	lt        localTree
	value     float64 // node's own contribution
	prefix    float64
	havePfx   bool
	forwarded bool
}

func (d *downcastNode) Step(ctx *congest.Context, in []congest.Incoming) ([]congest.Outgoing, bool) {
	if d.lt.isRoot && !d.havePfx {
		d.prefix = d.value
		d.havePfx = true
	}
	for _, m := range in {
		if msg, ok := m.Msg.(congest.FloatMsg); ok && !d.havePfx {
			d.prefix = msg.Value + d.value
			d.havePfx = true
		}
	}
	if d.havePfx && !d.forwarded {
		d.forwarded = true
		outs := make([]congest.Outgoing, 0, len(d.lt.childEdges))
		for _, e := range d.lt.childEdges {
			outs = append(outs, congest.Outgoing{Edge: e, Msg: congest.FloatMsg{Value: d.prefix}})
		}
		return outs, true
	}
	return nil, d.forwarded
}

// DowncastPrefixSums pushes root-to-leaf prefix sums down the tree:
// prefix[v] = Σ of values on the root→v path (inclusive). This is the
// node-potential computation π of §9.1 (2). Runs in height+1 rounds.
func DowncastPrefixSums(nw *congest.Network, t *Tree, values []float64) ([]float64, congest.Stats, error) {
	views := localViews(t)
	nodes := make([]*downcastNode, len(views))
	stats, err := nw.Run(func(v int, ctx *congest.Context) congest.Program {
		nodes[v] = &downcastNode{lt: views[v], value: values[v]}
		return nodes[v]
	}, 2*t.Height+16)
	if err != nil {
		return nil, stats, fmt.Errorf("proto: downcast: %w", err)
	}
	out := make([]float64, len(views))
	for v, nd := range nodes {
		out[v] = nd.prefix
	}
	return out, stats, nil
}

// Broadcast sends the root's value to every node (height+1 rounds).
func Broadcast(nw *congest.Network, t *Tree, rootValue float64) ([]float64, congest.Stats, error) {
	values := make([]float64, len(t.Parent))
	values[t.Root] = rootValue
	return DowncastPrefixSums(nw, t, values)
}

// --- Pipelined gather-and-broadcast (Lemma 5.1 style) ---

// Item is a keyed value gathered across the network.
type Item struct {
	Key   int64
	Value float64
}

// gatherNode pipelines arbitrary payload messages up the tree to the
// root and streams the full collection back down. Direction is inferred
// from the arrival edge (parent edge = downward traffic, child edge =
// upward traffic); an Empty message is the end-of-stream marker in
// either direction, so payloads need no protocol tags.
type gatherNode struct {
	lt           localTree
	upQueue      []congest.Message
	collected    []congest.Message
	endsPending  int // child END markers not yet seen
	upEndSent    bool
	downQueue    []congest.Message
	downEndSeen  bool
	downEndSent  bool
	rootBcasting bool
}

func (gn *gatherNode) Step(ctx *congest.Context, in []congest.Incoming) ([]congest.Outgoing, bool) {
	for _, m := range in {
		fromParent := !gn.lt.isRoot && m.Edge == gn.lt.parentEdge
		if _, isEnd := m.Msg.(congest.Empty); isEnd {
			if fromParent {
				gn.downEndSeen = true
			} else {
				gn.endsPending--
			}
			continue
		}
		if fromParent {
			gn.collected = append(gn.collected, m.Msg)
			gn.downQueue = append(gn.downQueue, m.Msg)
		} else {
			gn.upQueue = append(gn.upQueue, m.Msg)
			if gn.lt.isRoot {
				gn.collected = append(gn.collected, m.Msg)
			}
		}
	}

	var outs []congest.Outgoing

	if gn.lt.isRoot {
		// Root: once the up-phase is complete, stream everything down.
		if gn.endsPending == 0 && !gn.rootBcasting {
			gn.rootBcasting = true
			gn.downQueue = append([]congest.Message(nil), gn.collected...)
		}
		if gn.rootBcasting {
			if len(gn.downQueue) > 0 {
				it := gn.downQueue[0]
				gn.downQueue = gn.downQueue[1:]
				for _, e := range gn.lt.childEdges {
					outs = append(outs, congest.Outgoing{Edge: e, Msg: it})
				}
				return outs, false
			}
			if !gn.downEndSent {
				gn.downEndSent = true
				for _, e := range gn.lt.childEdges {
					outs = append(outs, congest.Outgoing{Edge: e, Msg: congest.Empty{}})
				}
				return outs, true
			}
		}
		return nil, gn.downEndSent
	}

	// Non-root: upward streaming first.
	if !gn.upEndSent {
		if len(gn.upQueue) > 0 {
			it := gn.upQueue[0]
			gn.upQueue = gn.upQueue[1:]
			return []congest.Outgoing{{Edge: gn.lt.parentEdge, Msg: it}}, false
		}
		if gn.endsPending == 0 {
			gn.upEndSent = true
			return []congest.Outgoing{{Edge: gn.lt.parentEdge, Msg: congest.Empty{}}}, false
		}
		return nil, false
	}
	// Downward forwarding.
	if len(gn.downQueue) > 0 {
		it := gn.downQueue[0]
		gn.downQueue = gn.downQueue[1:]
		for _, e := range gn.lt.childEdges {
			outs = append(outs, congest.Outgoing{Edge: e, Msg: it})
		}
		return outs, false
	}
	if gn.downEndSeen && !gn.downEndSent {
		gn.downEndSent = true
		for _, e := range gn.lt.childEdges {
			outs = append(outs, congest.Outgoing{Edge: e, Msg: congest.Empty{}})
		}
		return outs, true
	}
	return nil, gn.downEndSent
}

// GatherBroadcastMsgs makes the union of all nodes' payload messages
// known to every node by pipelining them up the tree and streaming them
// back down: O(height + k) rounds for k total items — the schedule
// Lemma 5.1 uses to publish the O(√n) summaries of large clusters.
// Payloads must not be congest.Empty (reserved as the end marker). It
// returns the collection as received at the root.
func GatherBroadcastMsgs(nw *congest.Network, t *Tree, items [][]congest.Message) ([]congest.Message, congest.Stats, error) {
	views := localViews(t)
	total := 0
	for _, its := range items {
		total += len(its)
		for _, m := range its {
			if _, bad := m.(congest.Empty); bad {
				return nil, congest.Stats{}, fmt.Errorf("proto: gather: Empty payload is reserved")
			}
		}
	}
	nodes := make([]*gatherNode, len(views))
	stats, err := nw.Run(func(v int, ctx *congest.Context) congest.Program {
		gn := &gatherNode{
			lt:          views[v],
			upQueue:     append([]congest.Message(nil), items[v]...),
			endsPending: len(views[v].childEdges),
		}
		if views[v].isRoot {
			gn.collected = append(gn.collected, items[v]...)
			gn.upQueue = nil
		}
		nodes[v] = gn
		return gn
	}, 4*(t.Height+total)+32)
	if err != nil {
		return nil, stats, fmt.Errorf("proto: gather: %w", err)
	}
	out := nodes[t.Root].collected
	// Every node must have collected the same set; spot-verify sizes.
	for v, nd := range nodes {
		if len(nd.collected) != len(out) {
			return nil, stats, fmt.Errorf("proto: gather: node %d collected %d of %d items", v, len(nd.collected), len(out))
		}
	}
	return out, stats, nil
}

// GatherBroadcast is GatherBroadcastMsgs specialized to keyed float
// items; the result is sorted by key. Keys should be globally unique.
func GatherBroadcast(nw *congest.Network, t *Tree, items [][]Item) ([]Item, congest.Stats, error) {
	msgs := make([][]congest.Message, len(items))
	for v, its := range items {
		for _, it := range its {
			msgs[v] = append(msgs[v], congest.KVMsg{Key: it.Key, Value: it.Value})
		}
	}
	raw, stats, err := GatherBroadcastMsgs(nw, t, msgs)
	if err != nil {
		return nil, stats, err
	}
	out := make([]Item, 0, len(raw))
	for _, m := range raw {
		kv, ok := m.(congest.KVMsg)
		if !ok {
			return nil, stats, fmt.Errorf("proto: gather: unexpected payload %T", m)
		}
		out = append(out, Item{Key: kv.Key, Value: kv.Value})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, stats, nil
}

// --- Flood-min ---

type floodMin struct {
	best     int64
	improved bool
}

func (f *floodMin) Step(ctx *congest.Context, in []congest.Incoming) ([]congest.Outgoing, bool) {
	for _, m := range in {
		if msg, ok := m.Msg.(congest.IntMsg); ok && msg.Value < f.best {
			f.best = msg.Value
			f.improved = true
		}
	}
	if f.improved || ctx.Round == 1 {
		f.improved = false
		outs := make([]congest.Outgoing, 0, ctx.Degree())
		for i := 0; i < ctx.Degree(); i++ {
			outs = append(outs, congest.Outgoing{Edge: ctx.Arc(i).E, Msg: congest.IntMsg{Value: f.best}})
		}
		return outs, false
	}
	return nil, true
}

// FloodMin computes min_v values[v] at every node by flooding improvements
// (used for leader election: values[v] = node ID). O(D) rounds.
func FloodMin(nw *congest.Network, values []int64) ([]int64, congest.Stats, error) {
	nodes := make([]*floodMin, nw.Graph().N())
	stats, err := nw.Run(func(v int, ctx *congest.Context) congest.Program {
		nodes[v] = &floodMin{best: values[v]}
		return nodes[v]
	}, 4*nw.Graph().N()+16)
	if err != nil {
		return nil, stats, fmt.Errorf("proto: floodmin: %w", err)
	}
	out := make([]int64, len(nodes))
	for v, nd := range nodes {
		out[v] = nd.best
	}
	return out, stats, nil
}
