package proto

import (
	"math"
	"math/rand"
	"testing"

	"distflow/internal/congest"
	"distflow/internal/graph"
)

func network(g *graph.Graph) *congest.Network {
	return congest.NewNetwork(g, WithTestSeed())
}

// WithTestSeed keeps test networks deterministic.
func WithTestSeed() congest.Option { return congest.WithSeed(12345) }

func TestBFSTreePath(t *testing.T) {
	g := graph.Path(8)
	tree, stats, err := BuildBFSTree(network(g), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(g); err != nil {
		t.Fatal(err)
	}
	if tree.Height != 7 {
		t.Errorf("Height = %d, want 7", tree.Height)
	}
	// BFS on a path from one end needs ~n rounds.
	if stats.Rounds < 8 || stats.Rounds > 16 {
		t.Errorf("Rounds = %d, want ≈ 8-10", stats.Rounds)
	}
}

func TestBFSTreeGridDepthsMatchBFS(t *testing.T) {
	g := graph.Grid(6, 5)
	root := 7
	tree, _, err := BuildBFSTree(network(g), root)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(g); err != nil {
		t.Fatal(err)
	}
	dist, _ := g.BFS(root)
	for v := range dist {
		if tree.Depth[v] != dist[v] {
			t.Errorf("Depth[%d] = %d, want %d", v, tree.Depth[v], dist[v])
		}
	}
}

func TestBFSTreeChildrenConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.GNP(40, 0.1, rng)
	tree, _, err := BuildBFSTree(network(g), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Children lists must mirror parent pointers exactly.
	count := 0
	for v, kids := range tree.Children {
		for i, c := range kids {
			if tree.Parent[c] != v {
				t.Fatalf("child %d of %d has parent %d", c, v, tree.Parent[c])
			}
			if tree.ChildEdge[v][i] != tree.ParentEdge[c] {
				t.Fatalf("edge mismatch for child %d of %d", c, v)
			}
			count++
		}
	}
	if count != g.N()-1 {
		t.Errorf("children edges = %d, want %d", count, g.N()-1)
	}
}

func TestBFSTreeDisconnectedErrors(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	if _, _, err := BuildBFSTree(network(g), 0); err == nil {
		t.Error("expected error for disconnected graph")
	}
}

func TestBFSRoundsScaleWithEccentricity(t *testing.T) {
	// Measured rounds must track ecc(root), not n: an expander with a
	// path tail rooted in the expander should finish in ~pathLen rounds.
	rng := rand.New(rand.NewSource(4))
	g := graph.ExpanderPath(64, 4, 16, rng)
	tree, stats, err := BuildBFSTree(network(g), 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds > 3*(tree.Height+3) {
		t.Errorf("Rounds = %d far exceeds height %d", stats.Rounds, tree.Height)
	}
}

func TestSubtreeSums(t *testing.T) {
	g := graph.Path(5)
	tree, _, err := BuildBFSTree(network(g), 0)
	if err != nil {
		t.Fatal(err)
	}
	values := []float64{1, 2, 3, 4, 5}
	sums, stats, err := SubtreeSums(network(g), tree, values)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{15, 14, 12, 9, 5}
	for v := range want {
		if sums[v] != want[v] {
			t.Errorf("sums[%d] = %v, want %v", v, sums[v], want[v])
		}
	}
	if stats.Rounds > tree.Height+3 {
		t.Errorf("convergecast rounds %d exceed height+3 = %d", stats.Rounds, tree.Height+3)
	}
}

func TestConvergecastMax(t *testing.T) {
	g := graph.Grid(4, 4)
	tree, _, err := BuildBFSTree(network(g), 0)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, g.N())
	for v := range values {
		values[v] = float64((v * 7) % 13)
	}
	agg, _, err := Convergecast(network(g), tree, values, math.Max)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for _, x := range values {
		want = math.Max(want, x)
	}
	if agg[tree.Root] != want {
		t.Errorf("root max = %v, want %v", agg[tree.Root], want)
	}
}

func TestDowncastPrefixSums(t *testing.T) {
	g := graph.Path(4)
	tree, _, err := BuildBFSTree(network(g), 0)
	if err != nil {
		t.Fatal(err)
	}
	values := []float64{1, 10, 100, 1000}
	prefix, _, err := DowncastPrefixSums(network(g), tree, values)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 11, 111, 1111}
	for v := range want {
		if prefix[v] != want[v] {
			t.Errorf("prefix[%d] = %v, want %v", v, prefix[v], want[v])
		}
	}
}

func TestBroadcast(t *testing.T) {
	g := graph.Grid(3, 3)
	tree, _, err := BuildBFSTree(network(g), 4)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Broadcast(network(g), tree, 3.25)
	if err != nil {
		t.Fatal(err)
	}
	for v, x := range got {
		if x != 3.25 {
			t.Errorf("node %d got %v", v, x)
		}
	}
}

func TestGatherBroadcast(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.GNP(30, 0.12, rng)
	tree, _, err := BuildBFSTree(network(g), 0)
	if err != nil {
		t.Fatal(err)
	}
	items := make([][]Item, g.N())
	total := 0
	for v := 0; v < g.N(); v += 3 {
		items[v] = []Item{{Key: int64(v), Value: float64(v) * 1.5}}
		total++
	}
	all, stats, err := GatherBroadcast(network(g), tree, items)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != total {
		t.Fatalf("gathered %d items, want %d", len(all), total)
	}
	for i, it := range all {
		if it.Key != int64(3*i) || it.Value != float64(3*i)*1.5 {
			t.Errorf("item %d = %+v", i, it)
		}
	}
	// Pipelining bound: O(height + k).
	bound := 4*(tree.Height+total) + 32
	if stats.Rounds > bound {
		t.Errorf("rounds %d exceed pipeline bound %d", stats.Rounds, bound)
	}
}

func TestGatherBroadcastEmpty(t *testing.T) {
	g := graph.Path(3)
	tree, _, err := BuildBFSTree(network(g), 1)
	if err != nil {
		t.Fatal(err)
	}
	all, _, err := GatherBroadcast(network(g), tree, make([][]Item, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 0 {
		t.Errorf("want no items, got %d", len(all))
	}
}

func TestGatherBroadcastSingleNode(t *testing.T) {
	g := graph.New(1)
	tree, err := TreeFromParents(g, 0, []int{-1}, []int{-1})
	if err != nil {
		t.Fatal(err)
	}
	all, _, err := GatherBroadcast(network(g), tree, [][]Item{{{Key: 9, Value: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0].Key != 9 {
		t.Errorf("got %+v", all)
	}
}

func TestFloodMin(t *testing.T) {
	g := graph.Cycle(9)
	values := make([]int64, 9)
	for v := range values {
		values[v] = int64(100 - v)
	}
	mins, stats, err := FloodMin(network(g), values)
	if err != nil {
		t.Fatal(err)
	}
	for v, m := range mins {
		if m != 92 {
			t.Errorf("node %d min = %d, want 92", v, m)
		}
	}
	if stats.Rounds > 9+4 {
		t.Errorf("floodmin rounds = %d, want ≈ D", stats.Rounds)
	}
}

func TestTreeFromParentsRejectsCycle(t *testing.T) {
	g := graph.Cycle(3)
	// parent pointers 0->1->2->0 form a cycle (root claims parent -1 but
	// is also someone's child inconsistently).
	_, err := TreeFromParents(g, 0, []int{-1, 0, 1}, []int{-1, 0, 1})
	if err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
	if _, err := TreeFromParents(g, 0, []int{-1, 2, 1}, []int{-1, 1, 1}); err == nil {
		t.Error("cyclic parents accepted")
	}
}

func TestTreeValidateCatchesCorruption(t *testing.T) {
	g := graph.Path(4)
	tree, _, err := BuildBFSTree(network(g), 0)
	if err != nil {
		t.Fatal(err)
	}
	tree.Depth[2] = 7
	if err := tree.Validate(g); err == nil {
		t.Error("corrupted depth not detected")
	}
}
