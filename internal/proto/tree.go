// Package proto implements the standard CONGEST building blocks the
// paper composes: BFS-tree construction, broadcast and convergecast on
// trees, pipelined gather of k items in O(depth+k) rounds (the
// "pipelining over a global BFS tree" of Lemma 5.1), and flood-based
// minimum finding. Every primitive is a genuine message-passing Program
// executed by the congest simulator; the returned Stats carry the
// measured round counts that the experiments report.
package proto

import (
	"fmt"

	"distflow/internal/congest"
	"distflow/internal/graph"
)

// Tree is the harness-side description of a rooted spanning tree that a
// distributed phase produced. Per-node algorithms only ever used their
// local part (parent edge, child edges); the aggregate view exists for
// composition and verification.
type Tree struct {
	Root       int
	Parent     []int   // parent vertex; -1 at root
	ParentEdge []int   // graph edge to parent; -1 at root
	Children   [][]int // child vertices
	ChildEdge  [][]int // graph edge per child (aligned with Children)
	Depth      []int   // hop depth from root
	Height     int     // max depth
}

// Validate checks that t is a spanning tree of g rooted at t.Root.
func (t *Tree) Validate(g *graph.Graph) error {
	n := g.N()
	if len(t.Parent) != n || len(t.Depth) != n {
		return fmt.Errorf("proto: tree arrays sized %d, want %d", len(t.Parent), n)
	}
	if t.Parent[t.Root] != -1 || t.Depth[t.Root] != 0 {
		return fmt.Errorf("proto: root %d has parent %d depth %d", t.Root, t.Parent[t.Root], t.Depth[t.Root])
	}
	seen := 0
	for v := 0; v < n; v++ {
		if v == t.Root {
			seen++
			continue
		}
		p := t.Parent[v]
		if p < 0 || p >= n {
			return fmt.Errorf("proto: node %d has no parent", v)
		}
		if t.Depth[v] != t.Depth[p]+1 {
			return fmt.Errorf("proto: node %d depth %d, parent depth %d", v, t.Depth[v], t.Depth[p])
		}
		e := t.ParentEdge[v]
		if e < 0 || e >= g.M() {
			return fmt.Errorf("proto: node %d bad parent edge", v)
		}
		if g.Other(e, v) != p {
			return fmt.Errorf("proto: node %d parent edge %d does not reach %d", v, e, p)
		}
		seen++
	}
	if seen != n {
		return fmt.Errorf("proto: tree covers %d of %d nodes", seen, n)
	}
	return nil
}

// --- BFS tree construction ---

const (
	tagAnnounce uint8 = iota + 1
	tagAck
)

type bfsNode struct {
	root          bool
	dist          int
	parentArc     int
	childArcs     []int
	announceRound int // round in which this node sent its announcement; 0 = not yet
}

func (b *bfsNode) Step(ctx *congest.Context, in []congest.Incoming) ([]congest.Outgoing, bool) {
	if b.announceRound == 0 && b.dist < 0 && b.root {
		b.dist = 0
	}
	for _, m := range in {
		msg, ok := m.Msg.(congest.IntMsg)
		if !ok {
			continue
		}
		arc := arcIndex(ctx, m.Edge)
		switch msg.Tag {
		case tagAnnounce:
			if b.dist < 0 {
				b.dist = int(msg.Value) + 1
				b.parentArc = arc
			}
		case tagAck:
			b.childArcs = append(b.childArcs, arc)
		}
	}
	if b.dist >= 0 && b.announceRound == 0 {
		b.announceRound = ctx.Round
		outs := make([]congest.Outgoing, 0, ctx.Degree())
		for i := 0; i < ctx.Degree(); i++ {
			if i == b.parentArc {
				outs = append(outs, congest.Outgoing{Edge: ctx.Arc(i).E, Msg: congest.IntMsg{Tag: tagAck}})
				continue
			}
			outs = append(outs, congest.Outgoing{Edge: ctx.Arc(i).E, Msg: congest.IntMsg{Tag: tagAnnounce, Value: int64(b.dist)}})
		}
		return outs, false
	}
	// Acks from children arrive exactly two rounds after our announcement.
	done := b.announceRound > 0 && ctx.Round >= b.announceRound+2
	return nil, done
}

// arcIndex maps a global edge id back to the local arc index.
func arcIndex(ctx *congest.Context, edge int) int {
	for i, a := range ctx.Arcs() {
		if a.E == edge {
			return i
		}
	}
	panic(fmt.Sprintf("proto: edge %d not incident to node %d", edge, ctx.ID))
}

// BuildBFSTree constructs a BFS spanning tree of the network rooted at
// root by flooding distance announcements; children acknowledge their
// parent so every node learns its tree neighbourhood. It runs in
// O(ecc(root)) rounds. The network graph must be connected.
func BuildBFSTree(nw *congest.Network, root int) (*Tree, congest.Stats, error) {
	g := nw.Graph()
	n := g.N()
	nodes := make([]*bfsNode, n)
	stats, err := nw.Run(func(v int, ctx *congest.Context) congest.Program {
		nodes[v] = &bfsNode{root: v == root, dist: -1, parentArc: -1}
		return nodes[v]
	}, 4*n+16)
	if err != nil {
		return nil, stats, fmt.Errorf("proto: bfs tree: %w", err)
	}
	t := &Tree{
		Root:       root,
		Parent:     make([]int, n),
		ParentEdge: make([]int, n),
		Children:   make([][]int, n),
		ChildEdge:  make([][]int, n),
		Depth:      make([]int, n),
	}
	for v := 0; v < n; v++ {
		b := nodes[v]
		if b.dist < 0 {
			return nil, stats, fmt.Errorf("proto: node %d unreachable from root %d", v, root)
		}
		t.Depth[v] = b.dist
		if b.dist > t.Height {
			t.Height = b.dist
		}
		if v == root {
			t.Parent[v], t.ParentEdge[v] = -1, -1
		} else {
			a := g.Adj(v)[b.parentArc]
			t.Parent[v] = a.To
			t.ParentEdge[v] = a.E
		}
		for _, ci := range b.childArcs {
			a := g.Adj(v)[ci]
			t.Children[v] = append(t.Children[v], a.To)
			t.ChildEdge[v] = append(t.ChildEdge[v], a.E)
		}
	}
	return t, stats, nil
}

// TreeFromParents builds a Tree value from parent pointers (for trees
// computed by other phases, e.g. cluster spanning trees or the MST).
// parentEdge[v] must connect v to parent[v] in g.
func TreeFromParents(g *graph.Graph, root int, parent, parentEdge []int) (*Tree, error) {
	n := g.N()
	t := &Tree{
		Root:       root,
		Parent:     append([]int(nil), parent...),
		ParentEdge: append([]int(nil), parentEdge...),
		Children:   make([][]int, n),
		ChildEdge:  make([][]int, n),
		Depth:      make([]int, n),
	}
	for v := 0; v < n; v++ {
		if v == root {
			continue
		}
		p := parent[v]
		if p < 0 || p >= n {
			return nil, fmt.Errorf("proto: node %d has invalid parent %d", v, p)
		}
		t.Children[p] = append(t.Children[p], v)
		t.ChildEdge[p] = append(t.ChildEdge[p], parentEdge[v])
	}
	// Depths via iterative DFS from root; also detects disconnection/cycles.
	seen := 1
	stack := []int{root}
	visited := make([]bool, n)
	visited[root] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range t.Children[v] {
			if visited[c] {
				return nil, fmt.Errorf("proto: cycle at node %d", c)
			}
			visited[c] = true
			seen++
			t.Depth[c] = t.Depth[v] + 1
			if t.Depth[c] > t.Height {
				t.Height = t.Depth[c]
			}
			stack = append(stack, c)
		}
	}
	if seen != n {
		return nil, fmt.Errorf("proto: parents describe forest (%d of %d reached)", seen, n)
	}
	return t, nil
}
