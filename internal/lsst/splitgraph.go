// Package lsst constructs low average-stretch spanning trees on
// multigraphs — Theorem 3.1 of the paper — using the algorithm of Alon,
// Karp, Peleg and West driven by the low-diameter decomposition
// SplitGraph/Partition of Blelloch et al. (Figures 4 and §7).
//
// The construction here follows the randomized process of the
// distributed algorithm exactly (delayed multi-source BFS races, edge
// classes, restart checks), so its output distribution — and therefore
// the stretch guarantee — matches; the distributed round cost is
// charged via the paper's own accounting (O(ρ·log²N·(D+√N)) per
// Partition call, §7) with the measured ρ, iteration and restart
// counts. See DESIGN.md §1 for the measured/accounted split.
package lsst

import (
	"math/rand"

	"distflow/internal/csr"
)

// RaceOrderVersion versions the pop order of the SplitGraph race among
// equal (time, source) keys — the one degree of freedom Fig. 4 leaves
// unspecified. Outputs are a deterministic function of (input, seed,
// version); bumping the version is a distribution change that moves
// every downstream build fingerprint and requires re-committing the
// BENCH baselines (DESIGN.md §10).
//
// Version 1: container/heap sift order (the raceHeap, kept behind
// Config.HeapRace for A/B measurement). Version 2: the bucket queue's
// order — within one arrival time, ascending source; within one
// (time, source), insertion order (a seed before any same-source
// expansion, expansions in the pop order of the previous bucket).
const RaceOrderVersion = 2

// splitEdge is an edge of the (contracted, unweighted) working graph.
// Ids are compacted to int32 — working graphs are bounded by the input
// edge count, far below 2³¹ — so the race-phase arc array at n=10⁶
// stays cache- and memory-lean.
type splitEdge struct {
	u, v int32
	id   int32 // index into the caller's edge array
}

// splitResult is one SplitGraph clustering. The arrays live in the
// caller's workspace and are overwritten by the next splitGraph call.
type splitResult struct {
	cluster    []int32 // cluster id per node (source-node index)
	parent     []int32 // BFS-tree parent per node (-1 at cluster centers)
	parentEdge []int32 // edge id used to reach parent (-1 at centers)
	depth      []int32
	maxDepth   int
}

// raceItem is a pending BFS arrival in the delayed multi-source race.
// The priority (time, source) is packed into one uint64 key —
// time<<32 | source, both nonnegative and far below 2³¹/2³² — so the
// lexicographic comparison is a single integer compare; the payload is
// packed to int32.
type raceItem struct {
	key    uint64 // time<<32 | source
	node   int32
	parent int32 // -1 at seeds
	edge   int32 // -1 at seeds
}

func raceKey(time, source int) uint64 {
	return uint64(time)<<32 | uint64(uint32(source))
}

func (it raceItem) time() int   { return int(it.key >> 32) }
func (it raceItem) source() int { return int(uint32(it.key)) }

// raceHeap is a binary min-heap of raceItems ordered by key. It
// replicates container/heap's sift algorithm exactly — identical
// comparison and swap sequences, hence an identical pop order including
// the (unspecified but deterministic) order among equal keys. This is
// the RaceOrderVersion-1 ordering, kept behind Config.HeapRace so the
// scale ladder can measure the bucket queue against it.
type raceHeap []raceItem

func (h *raceHeap) push(x raceItem) {
	*h = append(*h, x)
	// Sift up (container/heap's up).
	hh := *h
	j := len(hh) - 1
	for {
		i := (j - 1) / 2
		if i == j || hh[j].key >= hh[i].key {
			break
		}
		hh[i], hh[j] = hh[j], hh[i]
		j = i
	}
}

func (h *raceHeap) pop() raceItem {
	hh := *h
	n := len(hh) - 1
	hh[0], hh[n] = hh[n], hh[0]
	// Sift down over hh[:n] (container/heap's down).
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && hh[j2].key < hh[j1].key {
			j = j2
		}
		if hh[j].key >= hh[i].key {
			break
		}
		hh[i], hh[j] = hh[j], hh[i]
		i = j
	}
	x := hh[n]
	*h = hh[:n]
	return x
}

// splitWS holds splitGraph's scratch, reused across Partition calls,
// SpanningTree iterations, levels and trees (the build-path arena).
type splitWS struct {
	h         raceHeap // legacy heap race (Config.HeapRace)
	budget    []int32  // per seeding node: delay + remaining radius
	seeds     []int32
	uncovered []int32
	res       splitResult
	// Bucket/dial queue of the RaceOrderVersion-2 race. Arrival times
	// are small integers bounded by the phase radius, and a pop at time
	// t only ever pushes at t+1, so two expansion buckets (drain/fill)
	// plus the delay-bucketed seeds replace the heap: O(1) push and pop,
	// no sifting. Sizing derives from the measured radius, not a tuned
	// constant.
	seedBuf   []raceItem
	seedOff   []int32
	seedItems []raceItem
	cur, next []raceItem
}

// grow readies the workspace for an n-node working graph.
func (ws *splitWS) grow(n int) {
	if cap(ws.budget) < n {
		ws.budget = make([]int32, n)
		ws.res.cluster = make([]int32, n)
		ws.res.parent = make([]int32, n)
		ws.res.parentEdge = make([]int32, n)
		ws.res.depth = make([]int32, n)
	}
	ws.budget = ws.budget[:n]
	ws.res.cluster = ws.res.cluster[:n]
	ws.res.parent = ws.res.parent[:n]
	ws.res.parentEdge = ws.res.parentEdge[:n]
	ws.res.depth = ws.res.depth[:n]
}

// splitGraph runs Algorithm SplitGraph (Fig. 4) on an n-node unweighted
// multigraph with target radius rho; adjacency is given in CSR form
// (arcs[off[v]:off[v+1]] are v's incidences, each naming the neighbour
// via its endpoints). The BFS races are resolved exactly as in the
// distributed execution: a node joins the cluster of the first BFS to
// visit it, ties broken by smaller source ID; the residual tie order is
// RaceOrderVersion's (the heap's when heapRace is set). The returned
// result aliases ws and is valid until the next call with the same ws.
func splitGraph(n int, off []int32, arcs []splitEdge, rho int, rng *rand.Rand, ws *splitWS, heapRace bool) *splitResult {
	ws.grow(n)
	res := &ws.res
	res.maxDepth = 0
	for i := 0; i < n; i++ {
		res.cluster[i] = -1
		res.parent[i] = -1
		res.parentEdge[i] = -1
		res.depth[i] = 0
	}
	// When the target radius reaches the graph size, every seed's ball
	// covers its whole connected component, so the race degenerates to
	// component clustering; shortcut to it. This also guarantees that
	// the caller's radius-doubling fallback terminates on tiny working
	// graphs, where the asymptotic seed fractions are ≥ 1 and the
	// delayed race would otherwise produce all-singleton clusterings.
	if rho >= n {
		componentClusters(n, off, arcs, res)
		return res
	}
	logN := 1
	for (1 << logN) < n {
		logN++
	}
	maxDelay := rho / (2 * logN)

	uncovered := ws.uncovered[:0]
	for i := 0; i < n; i++ {
		uncovered = append(uncovered, int32(i))
	}
	budget := ws.budget
	for t := 1; t <= 2*logN && len(uncovered) > 0; t++ {
		// Seed fraction 12·2^{t/2}/n of the uncovered nodes (Fig. 4 2a).
		frac := 12.0 * pow2half(t) / float64(n)
		seeds := ws.seeds[:0]
		if frac >= 1 {
			seeds = append(seeds, uncovered...)
		} else {
			for _, v := range uncovered {
				if rng.Float64() < frac {
					seeds = append(seeds, v)
				}
			}
		}
		if len(seeds) == 0 && t == 2*logN {
			seeds = append(seeds, uncovered...)
		}
		radius := rho * (2*logN - (t - 1)) / (2 * logN)
		// Draw the seed delays in seed order (one shared PRNG stream for
		// both race implementations) and encode each race deadline by
		// entering the seed at its delay; expansion stops when
		// time-delay exceeds the remaining radius (tracked below via the
		// per-source budget).
		seedBuf := ws.seedBuf[:0]
		maxTime := 0
		for _, s := range seeds {
			delay := 0
			if maxDelay > 0 {
				delay = rng.Intn(maxDelay + 1)
			}
			r := radius - delay
			if r < 0 {
				r = 0
			}
			seedBuf = append(seedBuf, raceItem{key: raceKey(delay, int(s)), node: s, parent: -1, edge: -1})
			budget[s] = int32(delay + r)
			if int(budget[s]) > maxTime {
				maxTime = int(budget[s])
			}
		}
		ws.seedBuf = seedBuf
		ws.seeds = seeds
		if heapRace {
			raceWithHeap(seedBuf, off, arcs, budget, res, ws)
		} else {
			raceWithBuckets(seedBuf, maxTime, off, arcs, budget, res, ws)
		}
		next := uncovered[:0]
		for _, v := range uncovered {
			if res.cluster[v] < 0 {
				next = append(next, v)
			}
		}
		uncovered = next
	}
	// Any node still uncovered (radius-0 stragglers) becomes a singleton.
	for _, v := range uncovered {
		res.cluster[v] = v
	}
	ws.uncovered = uncovered[:0]
	return res
}

// claim processes one race arrival: the first arrival at an unclaimed
// node claims it and reports whether the BFS may expand from it.
func claim(it raceItem, budget []int32, res *splitResult) (v int, expand bool) {
	v = int(it.node)
	if res.cluster[v] >= 0 {
		return v, false
	}
	res.cluster[v] = int32(it.source())
	res.parent[v] = it.parent
	res.parentEdge[v] = it.edge
	if it.parent >= 0 {
		res.depth[v] = res.depth[it.parent] + 1
		if int(res.depth[v]) > res.maxDepth {
			res.maxDepth = int(res.depth[v])
		}
	}
	return v, it.time()+1 <= int(budget[it.source()])
}

// raceWithBuckets runs one phase's delayed BFS race through the dial
// queue. Invariant: every bucket is drained in ascending-source order —
// the seeds of one delay arrive pre-sorted (seed scan order is
// ascending), and expansions inherit the order of the pops that pushed
// them — so a two-run merge reproduces the exact (time, source)
// lexicographic priority with O(1) queue operations. A seed and a
// same-source expansion can never share a bucket (a source expands only
// after its own delay has passed), so the merge needs no tie rule
// across the two runs.
func raceWithBuckets(seedBuf []raceItem, maxTime int, off []int32, arcs []splitEdge, budget []int32, res *splitResult, ws *splitWS) {
	// Bucket the seeds by delay: one counting sort, stable, so each
	// bucket keeps the ascending-source scan order.
	if cap(ws.seedOff) < maxTime+2 {
		ws.seedOff = make([]int32, maxTime+2)
	}
	seedOff := ws.seedOff[:maxTime+2]
	for i := range seedOff {
		seedOff[i] = 0
	}
	for _, it := range seedBuf {
		seedOff[it.time()]++
	}
	csr.Offsets(seedOff)
	if cap(ws.seedItems) < len(seedBuf) {
		ws.seedItems = make([]raceItem, len(seedBuf))
	}
	seedItems := ws.seedItems[:len(seedBuf)]
	for _, it := range seedBuf {
		seedItems[seedOff[it.time()]] = it
		seedOff[it.time()]++
	}
	csr.Shift(seedOff)

	cur := ws.cur[:0]
	next := ws.next[:0]
	for time := 0; time <= maxTime; time++ {
		sb := seedItems[seedOff[time]:seedOff[time+1]]
		i, j := 0, 0
		for i < len(sb) || j < len(cur) {
			var it raceItem
			if j >= len(cur) || (i < len(sb) && uint32(sb[i].key) < uint32(cur[j].key)) {
				it = sb[i]
				i++
			} else {
				it = cur[j]
				j++
			}
			v, expand := claim(it, budget, res)
			if !expand {
				continue
			}
			nextKey := it.key + 1<<32 // same source, time+1
			for _, e := range arcs[off[v]:off[v+1]] {
				w := other(e, v)
				if res.cluster[w] < 0 {
					next = append(next, raceItem{key: nextKey, node: int32(w), parent: int32(v), edge: e.id})
				}
			}
		}
		cur, next = next, cur[:0]
	}
	ws.cur, ws.next = cur[:0], next[:0]
}

// raceWithHeap is the RaceOrderVersion-1 race: identical claims, pop
// order among equal keys per container/heap's sift sequence.
func raceWithHeap(seedBuf []raceItem, off []int32, arcs []splitEdge, budget []int32, res *splitResult, ws *splitWS) {
	h := ws.h[:0]
	for _, it := range seedBuf {
		h.push(it)
	}
	for len(h) > 0 {
		it := h.pop()
		v, expand := claim(it, budget, res)
		if !expand {
			continue
		}
		nextKey := it.key + 1<<32 // same source, time+1
		for _, e := range arcs[off[v]:off[v+1]] {
			w := other(e, v)
			if res.cluster[w] < 0 {
				h.push(raceItem{key: nextKey, node: int32(w), parent: int32(v), edge: e.id})
			}
		}
	}
	ws.h = h
}

// componentClusters assigns one cluster per connected component, with a
// BFS tree rooted at the smallest-index node of each component.
func componentClusters(n int, off []int32, arcs []splitEdge, res *splitResult) {
	for s := 0; s < n; s++ {
		if res.cluster[s] >= 0 {
			continue
		}
		res.cluster[s] = int32(s)
		queue := []int32{int32(s)}
		for len(queue) > 0 {
			v := int(queue[0])
			queue = queue[1:]
			for _, e := range arcs[off[v]:off[v+1]] {
				w := other(e, v)
				if res.cluster[w] < 0 {
					res.cluster[w] = int32(s)
					res.parent[w] = int32(v)
					res.parentEdge[w] = e.id
					res.depth[w] = res.depth[v] + 1
					if int(res.depth[w]) > res.maxDepth {
						res.maxDepth = int(res.depth[w])
					}
					queue = append(queue, int32(w))
				}
			}
		}
	}
}

func other(e splitEdge, v int) int {
	if int(e.u) == v {
		return int(e.v)
	}
	return int(e.u)
}

func pow2half(t int) float64 {
	// 2^{t/2} without math.Pow in the hot loop.
	x := 1.0
	for i := 0; i < t/2; i++ {
		x *= 2
	}
	if t%2 == 1 {
		x *= 1.4142135623730951
	}
	return x
}
