// Package lsst constructs low average-stretch spanning trees on
// multigraphs — Theorem 3.1 of the paper — using the algorithm of Alon,
// Karp, Peleg and West driven by the low-diameter decomposition
// SplitGraph/Partition of Blelloch et al. (Figures 4 and §7).
//
// The construction here follows the randomized process of the
// distributed algorithm exactly (delayed multi-source BFS races, edge
// classes, restart checks), so its output distribution — and therefore
// the stretch guarantee — matches; the distributed round cost is
// charged via the paper's own accounting (O(ρ·log²N·(D+√N)) per
// Partition call, §7) with the measured ρ, iteration and restart
// counts. See DESIGN.md §1 for the measured/accounted split.
package lsst

import (
	"container/heap"
	"math/rand"
)

// splitEdge is an edge of the (contracted, unweighted) working graph.
type splitEdge struct {
	u, v int
	id   int // index into the caller's edge array
}

// splitResult is one SplitGraph clustering.
type splitResult struct {
	cluster    []int // cluster id per node (source-node index)
	parent     []int // BFS-tree parent per node (-1 at cluster centers)
	parentEdge []int // edge id used to reach parent (-1 at centers)
	depth      []int
	maxDepth   int
}

// raceItem is a pending BFS arrival in the delayed multi-source race.
type raceItem struct {
	time   int // arrival time = delay + hops
	source int // seeding node (race winner identity, ties by smaller)
	node   int
	parent int
	edge   int
}

type raceHeap []raceItem

func (h raceHeap) Len() int { return len(h) }
func (h raceHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].source < h[j].source
}
func (h raceHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *raceHeap) Push(x any)   { *h = append(*h, x.(raceItem)) }
func (h *raceHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// splitGraph runs Algorithm SplitGraph (Fig. 4) on an n-node unweighted
// multigraph with target radius rho. The BFS races are resolved exactly
// as in the distributed execution: a node joins the cluster of the first
// BFS to visit it, ties broken by smaller source ID.
func splitGraph(n int, adj [][]splitEdge, rho int, rng *rand.Rand) *splitResult {
	res := &splitResult{
		cluster:    make([]int, n),
		parent:     make([]int, n),
		parentEdge: make([]int, n),
		depth:      make([]int, n),
	}
	for i := range res.cluster {
		res.cluster[i] = -1
		res.parent[i] = -1
		res.parentEdge[i] = -1
	}
	// When the target radius reaches the graph size, every seed's ball
	// covers its whole connected component, so the race degenerates to
	// component clustering; shortcut to it. This also guarantees that
	// the caller's radius-doubling fallback terminates on tiny working
	// graphs, where the asymptotic seed fractions are ≥ 1 and the
	// delayed race would otherwise produce all-singleton clusterings.
	if rho >= n {
		componentClusters(n, adj, res)
		return res
	}
	logN := 1
	for (1 << logN) < n {
		logN++
	}
	maxDelay := rho / (2 * logN)

	uncovered := make([]int, n)
	for i := range uncovered {
		uncovered[i] = i
	}
	var h raceHeap
	for t := 1; t <= 2*logN && len(uncovered) > 0; t++ {
		// Seed fraction 12·2^{t/2}/n of the uncovered nodes (Fig. 4 2a).
		frac := 12.0 * pow2half(t) / float64(n)
		var seeds []int
		if frac >= 1 {
			seeds = append(seeds, uncovered...)
		} else {
			for _, v := range uncovered {
				if rng.Float64() < frac {
					seeds = append(seeds, v)
				}
			}
		}
		if len(seeds) == 0 && t == 2*logN {
			seeds = append(seeds, uncovered...)
		}
		radius := rho * (2*logN - (t - 1)) / (2 * logN)
		h = h[:0]
		budget := make(map[int]int, len(seeds))
		for _, s := range seeds {
			delay := 0
			if maxDelay > 0 {
				delay = rng.Intn(maxDelay + 1)
			}
			r := radius - delay
			if r < 0 {
				r = 0
			}
			// Encode the race deadline by pushing the seed at its delay;
			// expansion stops when time-delay exceeds r (tracked below via
			// the per-source budget).
			heap.Push(&h, raceItem{time: delay, source: s, node: s, parent: -1, edge: -1})
			budget[s] = delay + r
		}
		// Run the race restricted to uncovered nodes.
		for h.Len() > 0 {
			it := heap.Pop(&h).(raceItem)
			v := it.node
			if res.cluster[v] >= 0 {
				continue
			}
			res.cluster[v] = it.source
			res.parent[v] = it.parent
			res.parentEdge[v] = it.edge
			if it.parent >= 0 {
				res.depth[v] = res.depth[it.parent] + 1
				if res.depth[v] > res.maxDepth {
					res.maxDepth = res.depth[v]
				}
			}
			if it.time+1 > budget[it.source] {
				continue
			}
			for _, e := range adj[v] {
				w := other(e, v)
				if res.cluster[w] < 0 {
					heap.Push(&h, raceItem{time: it.time + 1, source: it.source, node: w, parent: v, edge: e.id})
				}
			}
		}
		next := uncovered[:0]
		for _, v := range uncovered {
			if res.cluster[v] < 0 {
				next = append(next, v)
			}
		}
		uncovered = next
	}
	// Any node still uncovered (radius-0 stragglers) becomes a singleton.
	for _, v := range uncovered {
		res.cluster[v] = v
	}
	return res
}

// componentClusters assigns one cluster per connected component, with a
// BFS tree rooted at the smallest-index node of each component.
func componentClusters(n int, adj [][]splitEdge, res *splitResult) {
	for s := 0; s < n; s++ {
		if res.cluster[s] >= 0 {
			continue
		}
		res.cluster[s] = s
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, e := range adj[v] {
				w := other(e, v)
				if res.cluster[w] < 0 {
					res.cluster[w] = s
					res.parent[w] = v
					res.parentEdge[w] = e.id
					res.depth[w] = res.depth[v] + 1
					if res.depth[w] > res.maxDepth {
						res.maxDepth = res.depth[w]
					}
					queue = append(queue, w)
				}
			}
		}
	}
}

func other(e splitEdge, v int) int {
	if e.u == v {
		return e.v
	}
	return e.u
}

func pow2half(t int) float64 {
	// 2^{t/2} without math.Pow in the hot loop.
	x := 1.0
	for i := 0; i < t/2; i++ {
		x *= 2
	}
	if t%2 == 1 {
		x *= 1.4142135623730951
	}
	return x
}
