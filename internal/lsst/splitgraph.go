// Package lsst constructs low average-stretch spanning trees on
// multigraphs — Theorem 3.1 of the paper — using the algorithm of Alon,
// Karp, Peleg and West driven by the low-diameter decomposition
// SplitGraph/Partition of Blelloch et al. (Figures 4 and §7).
//
// The construction here follows the randomized process of the
// distributed algorithm exactly (delayed multi-source BFS races, edge
// classes, restart checks), so its output distribution — and therefore
// the stretch guarantee — matches; the distributed round cost is
// charged via the paper's own accounting (O(ρ·log²N·(D+√N)) per
// Partition call, §7) with the measured ρ, iteration and restart
// counts. See DESIGN.md §1 for the measured/accounted split.
package lsst

import (
	"math/rand"
)

// splitEdge is an edge of the (contracted, unweighted) working graph.
type splitEdge struct {
	u, v int
	id   int // index into the caller's edge array
}

// splitResult is one SplitGraph clustering. The arrays live in the
// caller's workspace and are overwritten by the next splitGraph call.
type splitResult struct {
	cluster    []int // cluster id per node (source-node index)
	parent     []int // BFS-tree parent per node (-1 at cluster centers)
	parentEdge []int // edge id used to reach parent (-1 at centers)
	depth      []int
	maxDepth   int
}

// raceItem is a pending BFS arrival in the delayed multi-source race.
// The priority (time, source) is packed into one uint64 key —
// time<<32 | source, both nonnegative and far below 2³¹/2³² — so the
// lexicographic comparison is a single integer compare; the payload is
// packed to int32 to halve the bytes every sift swap moves.
type raceItem struct {
	key    uint64 // time<<32 | source
	node   int32
	parent int32 // -1 at seeds
	edge   int32 // -1 at seeds
}

func raceKey(time, source int) uint64 {
	return uint64(time)<<32 | uint64(uint32(source))
}

func (it raceItem) time() int   { return int(it.key >> 32) }
func (it raceItem) source() int { return int(uint32(it.key)) }

// raceHeap is a binary min-heap of raceItems ordered by key. It
// replicates container/heap's sift algorithm exactly — identical
// comparison and swap sequences, hence an identical pop order including
// the (unspecified but deterministic) order among equal keys — while
// removing the interface boxing and indirect calls that made the
// generic heap the hottest part of the build profile.
type raceHeap []raceItem

func (h *raceHeap) push(x raceItem) {
	*h = append(*h, x)
	// Sift up (container/heap's up).
	hh := *h
	j := len(hh) - 1
	for {
		i := (j - 1) / 2
		if i == j || hh[j].key >= hh[i].key {
			break
		}
		hh[i], hh[j] = hh[j], hh[i]
		j = i
	}
}

func (h *raceHeap) pop() raceItem {
	hh := *h
	n := len(hh) - 1
	hh[0], hh[n] = hh[n], hh[0]
	// Sift down over hh[:n] (container/heap's down).
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && hh[j2].key < hh[j1].key {
			j = j2
		}
		if hh[j].key >= hh[i].key {
			break
		}
		hh[i], hh[j] = hh[j], hh[i]
		i = j
	}
	x := hh[n]
	*h = hh[:n]
	return x
}

// splitWS holds splitGraph's scratch, reused across Partition calls,
// SpanningTree iterations, levels and trees (the build-path arena).
type splitWS struct {
	h         raceHeap
	budget    []int // per seeding node: delay + remaining radius
	seeds     []int
	uncovered []int
	res       splitResult
}

// grow readies the workspace for an n-node working graph.
func (ws *splitWS) grow(n int) {
	if cap(ws.budget) < n {
		ws.budget = make([]int, n)
		ws.res.cluster = make([]int, n)
		ws.res.parent = make([]int, n)
		ws.res.parentEdge = make([]int, n)
		ws.res.depth = make([]int, n)
	}
	ws.budget = ws.budget[:n]
	ws.res.cluster = ws.res.cluster[:n]
	ws.res.parent = ws.res.parent[:n]
	ws.res.parentEdge = ws.res.parentEdge[:n]
	ws.res.depth = ws.res.depth[:n]
}

// splitGraph runs Algorithm SplitGraph (Fig. 4) on an n-node unweighted
// multigraph with target radius rho; adjacency is given in CSR form
// (arcs[off[v]:off[v+1]] are v's incidences, each naming the neighbour
// via its endpoints). The BFS races are resolved exactly as in the
// distributed execution: a node joins the cluster of the first BFS to
// visit it, ties broken by smaller source ID. The returned result
// aliases ws and is valid until the next call with the same ws.
func splitGraph(n int, off []int, arcs []splitEdge, rho int, rng *rand.Rand, ws *splitWS) *splitResult {
	ws.grow(n)
	res := &ws.res
	res.maxDepth = 0
	for i := 0; i < n; i++ {
		res.cluster[i] = -1
		res.parent[i] = -1
		res.parentEdge[i] = -1
		res.depth[i] = 0
	}
	// When the target radius reaches the graph size, every seed's ball
	// covers its whole connected component, so the race degenerates to
	// component clustering; shortcut to it. This also guarantees that
	// the caller's radius-doubling fallback terminates on tiny working
	// graphs, where the asymptotic seed fractions are ≥ 1 and the
	// delayed race would otherwise produce all-singleton clusterings.
	if rho >= n {
		componentClusters(n, off, arcs, res)
		return res
	}
	logN := 1
	for (1 << logN) < n {
		logN++
	}
	maxDelay := rho / (2 * logN)

	uncovered := ws.uncovered[:0]
	for i := 0; i < n; i++ {
		uncovered = append(uncovered, i)
	}
	h := ws.h[:0]
	budget := ws.budget
	for t := 1; t <= 2*logN && len(uncovered) > 0; t++ {
		// Seed fraction 12·2^{t/2}/n of the uncovered nodes (Fig. 4 2a).
		frac := 12.0 * pow2half(t) / float64(n)
		seeds := ws.seeds[:0]
		if frac >= 1 {
			seeds = append(seeds, uncovered...)
		} else {
			for _, v := range uncovered {
				if rng.Float64() < frac {
					seeds = append(seeds, v)
				}
			}
		}
		if len(seeds) == 0 && t == 2*logN {
			seeds = append(seeds, uncovered...)
		}
		radius := rho * (2*logN - (t - 1)) / (2 * logN)
		h = h[:0]
		for _, s := range seeds {
			delay := 0
			if maxDelay > 0 {
				delay = rng.Intn(maxDelay + 1)
			}
			r := radius - delay
			if r < 0 {
				r = 0
			}
			// Encode the race deadline by pushing the seed at its delay;
			// expansion stops when time-delay exceeds r (tracked below via
			// the per-source budget).
			h.push(raceItem{key: raceKey(delay, s), node: int32(s), parent: -1, edge: -1})
			budget[s] = delay + r
		}
		// Run the race restricted to uncovered nodes.
		for len(h) > 0 {
			it := h.pop()
			v := int(it.node)
			if res.cluster[v] >= 0 {
				continue
			}
			res.cluster[v] = it.source()
			res.parent[v] = int(it.parent)
			res.parentEdge[v] = int(it.edge)
			if it.parent >= 0 {
				res.depth[v] = res.depth[it.parent] + 1
				if res.depth[v] > res.maxDepth {
					res.maxDepth = res.depth[v]
				}
			}
			t := it.time()
			if t+1 > budget[it.source()] {
				continue
			}
			nextKey := it.key + 1<<32 // same source, time+1
			for _, e := range arcs[off[v]:off[v+1]] {
				w := other(e, v)
				if res.cluster[w] < 0 {
					h.push(raceItem{key: nextKey, node: int32(w), parent: int32(v), edge: int32(e.id)})
				}
			}
		}
		ws.seeds = seeds
		next := uncovered[:0]
		for _, v := range uncovered {
			if res.cluster[v] < 0 {
				next = append(next, v)
			}
		}
		uncovered = next
	}
	// Any node still uncovered (radius-0 stragglers) becomes a singleton.
	for _, v := range uncovered {
		res.cluster[v] = v
	}
	ws.uncovered = uncovered[:0]
	ws.h = h
	return res
}

// componentClusters assigns one cluster per connected component, with a
// BFS tree rooted at the smallest-index node of each component.
func componentClusters(n int, off []int, arcs []splitEdge, res *splitResult) {
	for s := 0; s < n; s++ {
		if res.cluster[s] >= 0 {
			continue
		}
		res.cluster[s] = s
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, e := range arcs[off[v]:off[v+1]] {
				w := other(e, v)
				if res.cluster[w] < 0 {
					res.cluster[w] = s
					res.parent[w] = v
					res.parentEdge[w] = e.id
					res.depth[w] = res.depth[v] + 1
					if res.depth[w] > res.maxDepth {
						res.maxDepth = res.depth[w]
					}
					queue = append(queue, w)
				}
			}
		}
	}
}

func other(e splitEdge, v int) int {
	if e.u == v {
		return e.v
	}
	return e.u
}

func pow2half(t int) float64 {
	// 2^{t/2} without math.Pow in the hot loop.
	x := 1.0
	for i := 0; i < t/2; i++ {
		x *= 2
	}
	if t%2 == 1 {
		x *= 1.4142135623730951
	}
	return x
}
