package lsst

import (
	"fmt"
	"math"
	"math/rand"

	"distflow/internal/vtree"
)

// Edge is a multigraph edge with a positive length, as consumed by the
// spanning-tree construction (Theorem 3.1 allows arbitrary lengths in
// 2^{n^{o(1)}} and arbitrary prior contractions; both are supported:
// parallel edges are fine and contracted inputs are expressed by reusing
// vertex ids).
type Edge struct {
	U, V int
	Len  float64
}

// Result is a low average-stretch spanning tree of the input multigraph.
type Result struct {
	// Tree is the rooted spanning tree (capacities unset, all 1).
	Tree *vtree.VTree
	// EdgeOf[v] is the index (into the input edge slice) of the edge
	// realizing tree edge (v, parent(v)); -1 at the root.
	EdgeOf []int
	// Iterations is the number of cluster-contract iterations run.
	Iterations int
	// PartitionCalls counts Partition invocations including restarts.
	PartitionCalls int
	// Rho is the SplitGraph target radius used.
	Rho int
	// Z is the edge-class base (class i holds lengths in [z^{i-1}, z^i)).
	Z float64
}

// AccountRounds charges the distributed cost of the construction per §7:
// each Partition call costs O(ρ·log²N·(D+√N)) rounds; we charge exactly
// ρ·log₂²N·(D+⌈√N⌉) per call with the measured call count.
func (r *Result) AccountRounds(n, diameter int) int64 {
	logN := math.Log2(float64(n) + 2)
	perCall := float64(r.Rho) * logN * logN * (float64(diameter) + math.Ceil(math.Sqrt(float64(n))))
	return int64(perCall * float64(r.PartitionCalls))
}

// Config tunes the construction. The zero value selects the paper's
// parameters with practical constants (see DESIGN.md §1 on constants).
type Config struct {
	// ZExponent scales the class base: z = 2^(ZExponent·√(log₂n·log₂log₂n)).
	// 0 means 1.0.
	ZExponent float64
	// MaxRestarts bounds Partition restarts per iteration (default 2·log₂ n).
	MaxRestarts int
}

// SpanningTree builds a spanning tree of expected average stretch
// 2^{O(√(log n log log n))} over the n-vertex multigraph given by edges.
// The multigraph must be connected.
func SpanningTree(n int, edges []Edge, cfg Config, rng *rand.Rand) (*Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("lsst: empty graph")
	}
	for i, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("lsst: edge %d endpoint out of range", i)
		}
		if e.Len <= 0 {
			return nil, fmt.Errorf("lsst: edge %d has non-positive length", i)
		}
	}
	zExp := cfg.ZExponent
	if zExp == 0 {
		zExp = 1
	}
	maxRestarts := cfg.MaxRestarts
	if maxRestarts == 0 {
		maxRestarts = 2 * int(math.Log2(float64(n)+2))
	}

	logN := math.Log2(float64(n) + 2)
	z := math.Pow(2, zExp*math.Sqrt(logN*math.Max(1, math.Log2(logN))))
	if z < 4 {
		z = 4
	}
	rho := int(z / 4)
	if rho < 1 {
		rho = 1
	}

	// Normalize lengths so the minimum is 1, then classify.
	minLen := math.Inf(1)
	for _, e := range edges {
		if e.Len < minLen {
			minLen = e.Len
		}
	}
	if math.IsInf(minLen, 1) {
		minLen = 1
	}
	class := make([]int, len(edges)) // 1-based class index
	maxClass := 1
	for i, e := range edges {
		c := 1
		l := e.Len / minLen
		for l >= z {
			l /= z
			c++
		}
		class[i] = c
		if c > maxClass {
			maxClass = c
		}
	}

	res := &Result{
		EdgeOf: make([]int, n),
		Rho:    rho,
		Z:      z,
	}
	// Spanning tree assembled as a union of original edges.
	chosen := make([]bool, len(edges))

	// sn maps original vertices to current supernodes (contraction).
	sn := make([]int, n)
	for v := range sn {
		sn[v] = v
	}
	super := n // number of live supernodes

	curRho := rho
	for j := 1; super > 1; j++ {
		if j > 4*maxClass+64 {
			return nil, fmt.Errorf("lsst: no convergence after %d iterations (disconnected input?)", j-1)
		}
		res.Iterations++
		useClass := j
		if useClass > maxClass {
			useClass = maxClass
		}
		// Build the contracted working graph over supernodes with edges
		// of classes ≤ useClass, dropping self-loops.
		ids := make(map[int]int, super) // supernode -> compact index
		var rev []int
		idx := func(s int) int {
			if i, ok := ids[s]; ok {
				return i
			}
			ids[s] = len(rev)
			rev = append(rev, s)
			return len(rev) - 1
		}
		var active []classedEdge
		for i, e := range edges {
			if class[i] > useClass {
				continue
			}
			a, b := sn[e.U], sn[e.V]
			if a == b {
				continue
			}
			active = append(active, classedEdge{e: splitEdge{u: idx(a), v: idx(b), id: i}, cl: class[i]})
		}
		// Supernodes not touched by active edges still exist; they just
		// don't participate this iteration.
		nn := len(rev)
		if nn == 0 {
			// All remaining edges are in higher classes; advance j.
			continue
		}
		adj := make([][]splitEdge, nn)
		classCount := make([]int, useClass+1)
		for _, w := range active {
			adj[w.e.u] = append(adj[w.e.u], w.e)
			adj[w.e.v] = append(adj[w.e.v], w.e)
			classCount[w.cl]++
		}

		// Partition: run SplitGraph, restart while some class is
		// over-split (more than 4·log₂N/ρ of its edges cut, and at least
		// a handful, per §7 / Blelloch et al.).
		var sg *splitResult
		for attempt := 0; ; attempt++ {
			res.PartitionCalls++
			sg = splitGraph(nn, adj, curRho, rng)
			if attempt >= maxRestarts || !overSplit(sg, active, classCount, curRho, nn) {
				break
			}
		}

		// Adopt the cluster BFS trees into the spanning tree and contract.
		progress := false
		for v := 0; v < nn; v++ {
			if pe := sg.parentEdge[v]; pe >= 0 && !chosen[pe] {
				chosen[pe] = true
				progress = true
			}
		}
		if progress {
			// Contract: supernode -> its cluster's seed supernode.
			remap := make(map[int]int, super)
			for v := 0; v < nn; v++ {
				remap[rev[v]] = rev[sg.cluster[v]]
			}
			seen := make(map[int]bool, super)
			for v := 0; v < n; v++ {
				if t, ok := remap[sn[v]]; ok {
					sn[v] = t
				}
				seen[sn[v]] = true
			}
			super = len(seen)
		} else if useClass == maxClass {
			// Degenerate randomness: widen the radius and retry (keeps
			// the worst-case guarantee; exercised only on tiny inputs).
			curRho *= 2
			if curRho > 4*n {
				return nil, fmt.Errorf("lsst: cannot make progress; input disconnected?")
			}
		}
	}

	tree, edgeOf, err := assemble(n, edges, chosen)
	if err != nil {
		return nil, err
	}
	res.Tree = tree
	res.EdgeOf = edgeOf
	return res, nil
}

// classedEdge pairs a working edge with its length class.
type classedEdge struct {
	e  splitEdge
	cl int
}

// overSplit reports whether some participating class has too many of its
// edges cut between clusters.
func overSplit(sg *splitResult, active []classedEdge, classCount []int, rho, nn int) bool {
	logN := math.Log2(float64(nn) + 2)
	cut := make([]int, len(classCount))
	for _, w := range active {
		if sg.cluster[w.e.u] != sg.cluster[w.e.v] {
			cut[w.cl]++
		}
	}
	for c := 1; c < len(classCount); c++ {
		if classCount[c] == 0 {
			continue
		}
		bound := 4 * logN / float64(rho) * float64(classCount[c])
		if float64(cut[c]) > bound && cut[c] > 8 {
			return true
		}
	}
	return false
}

// assemble roots the chosen edge set at vertex 0.
func assemble(n int, edges []Edge, chosen []bool) (*vtree.VTree, []int, error) {
	adj := make([][]int, n) // edge indices
	count := 0
	for i, c := range chosen {
		if !c {
			continue
		}
		adj[edges[i].U] = append(adj[edges[i].U], i)
		adj[edges[i].V] = append(adj[edges[i].V], i)
		count++
	}
	if count != n-1 {
		return nil, nil, fmt.Errorf("lsst: chose %d edges, want %d", count, n-1)
	}
	parent := make([]int, n)
	edgeOf := make([]int, n)
	for v := range parent {
		parent[v] = -2
		edgeOf[v] = -1
	}
	parent[0] = -1
	queue := []int{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, ei := range adj[v] {
			w := edges[ei].U + edges[ei].V - v
			if parent[w] == -2 {
				parent[w] = v
				edgeOf[w] = ei
				queue = append(queue, w)
			}
		}
	}
	for v, p := range parent {
		if p == -2 {
			return nil, nil, fmt.Errorf("lsst: vertex %d not spanned", v)
		}
	}
	t, err := vtree.New(0, parent, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("lsst: %w", err)
	}
	return t, edgeOf, nil
}

// AverageStretch measures the average stretch of the tree over the
// input multigraph: (Σ_e dT(u_e,v_e)) / (Σ_e ℓ(e)), the Theorem 3.1
// quantity (with unit edge multiplicities).
func AverageStretch(res *Result, edges []Edge) float64 {
	t := res.Tree
	lengths := make([]float64, t.N())
	for v := range lengths {
		if ei := res.EdgeOf[v]; ei >= 0 {
			lengths[v] = edges[ei].Len
		}
	}
	pairs := make([]vtree.EdgeEndpoint, len(edges))
	var denom float64
	for i, e := range edges {
		pairs[i] = vtree.EdgeEndpoint{U: e.U, V: e.V, Cap: 1}
		denom += e.Len
	}
	num := t.StretchSum(pairs, lengths)
	if denom == 0 {
		return 0
	}
	return num / denom
}
