package lsst

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"distflow/internal/csr"
	"distflow/internal/vtree"
)

// Edge is a multigraph edge with a positive length, as consumed by the
// spanning-tree construction (Theorem 3.1 allows arbitrary lengths in
// 2^{n^{o(1)}} and arbitrary prior contractions; both are supported:
// parallel edges are fine and contracted inputs are expressed by reusing
// vertex ids).
type Edge struct {
	U, V int
	Len  float64
	// Mult is the edge's multiplicity (§8.1's capacity-proportional
	// copies, carried implicitly); 0 means 1. A multiplicity-k edge is
	// distributionally one parallel class-weight unit counted k times —
	// it contributes k to its class's size and cut census — while the
	// race and the output tree see a single edge, which is exactly the
	// §8.1 expansion with duplicates collapsed (all k copies map to the
	// same original, and an original is chosen at most once).
	Mult int32
}

// Result is a low average-stretch spanning tree of the input multigraph.
type Result struct {
	// Tree is the rooted spanning tree (capacities unset, all 1).
	Tree *vtree.VTree
	// EdgeOf[v] is the index (into the input edge slice) of the edge
	// realizing tree edge (v, parent(v)); -1 at the root.
	EdgeOf []int
	// Iterations is the number of cluster-contract iterations run.
	Iterations int
	// PartitionCalls counts Partition invocations including restarts.
	PartitionCalls int
	// Rho is the SplitGraph target radius used.
	Rho int
	// Z is the edge-class base (class i holds lengths in [z^{i-1}, z^i)).
	Z float64
	// RaceSeconds is the wall time spent inside splitGraph (the BFS
	// races), summed over Partition calls — the scale ladder's
	// per-phase breakdown feeds from this.
	RaceSeconds float64
}

// AccountRounds charges the distributed cost of the construction per §7:
// each Partition call costs O(ρ·log²N·(D+√N)) rounds; we charge exactly
// ρ·log₂²N·(D+⌈√N⌉) per call with the measured call count.
func (r *Result) AccountRounds(n, diameter int) int64 {
	logN := math.Log2(float64(n) + 2)
	perCall := float64(r.Rho) * logN * logN * (float64(diameter) + math.Ceil(math.Sqrt(float64(n))))
	return int64(perCall * float64(r.PartitionCalls))
}

// Config tunes the construction. The zero value selects the paper's
// parameters with practical constants (see DESIGN.md §1 on constants).
type Config struct {
	// ZExponent scales the class base: z = 2^(ZExponent·√(log₂n·log₂log₂n)).
	// 0 means 1.0.
	ZExponent float64
	// MaxRestarts bounds Partition restarts per iteration (default 2·log₂ n).
	MaxRestarts int
	// HeapRace selects the RaceOrderVersion-1 heap race instead of the
	// bucket queue. Measurement-only: outputs differ (in tie order, and
	// hence distribution) from the default path.
	HeapRace bool
}

// Workspace pools every scratch array of the construction — the
// contraction stamps, the compact working graph, the SplitGraph race
// queue, and the assembly buffers — so repeated SpanningTreeWS calls
// (three candidates per j-tree level, many levels per sampled tree)
// allocate nothing but the returned tree. The zero value is ready to
// use; it grows to the largest (n, m) seen.
type Workspace struct {
	class      []int
	chosen     []bool
	sn         []int
	snIdx      []int
	snStamp    []int
	remapTo    []int
	remapStamp []int
	seenStamp  []int
	rev        []int
	active     []classedEdge
	classCount []int
	off        []int32
	arcs       []splitEdge
	sws        splitWS
	epoch      int
	// assemble scratch
	aOff   []int
	aArc   []int
	parent []int
	edgeOf []int
	queue  []int
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

func (ws *Workspace) grow(n, m int) {
	if cap(ws.sn) < n {
		ws.sn = make([]int, n)
		ws.snIdx = make([]int, n)
		ws.snStamp = make([]int, n)
		ws.remapTo = make([]int, n)
		ws.remapStamp = make([]int, n)
		ws.seenStamp = make([]int, n)
		ws.rev = make([]int, 0, n)
		ws.aOff = make([]int, n+1)
		ws.parent = make([]int, n)
		ws.edgeOf = make([]int, n)
	}
	if cap(ws.class) < m {
		ws.class = make([]int, m)
		ws.chosen = make([]bool, m)
	}
	if cap(ws.aArc) < 2*m {
		ws.aArc = make([]int, 2*m)
	}
}

// SpanningTree builds a spanning tree of expected average stretch
// 2^{O(√(log n log log n))} over the n-vertex multigraph given by edges.
// The multigraph must be connected.
func SpanningTree(n int, edges []Edge, cfg Config, rng *rand.Rand) (*Result, error) {
	return SpanningTreeWS(n, edges, cfg, rng, NewWorkspace())
}

// SpanningTreeWS is SpanningTree against a caller-held workspace. The
// returned Result's EdgeOf aliases the workspace and is valid until the
// next call with the same ws; the Tree is freshly allocated. Output is
// bit-identical to SpanningTree's.
func SpanningTreeWS(n int, edges []Edge, cfg Config, rng *rand.Rand, ws *Workspace) (*Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("lsst: empty graph")
	}
	if int64(len(edges)) > math.MaxInt32 {
		return nil, fmt.Errorf("lsst: %d edges exceed the int32 build path", len(edges))
	}
	for i, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("lsst: edge %d endpoint out of range", i)
		}
		if e.Len <= 0 {
			return nil, fmt.Errorf("lsst: edge %d has non-positive length", i)
		}
	}
	zExp := cfg.ZExponent
	if zExp == 0 {
		zExp = 1
	}
	maxRestarts := cfg.MaxRestarts
	if maxRestarts == 0 {
		maxRestarts = 2 * int(math.Log2(float64(n)+2))
	}

	logN := math.Log2(float64(n) + 2)
	z := math.Pow(2, zExp*math.Sqrt(logN*math.Max(1, math.Log2(logN))))
	if z < 4 {
		z = 4
	}
	rho := int(z / 4)
	if rho < 1 {
		rho = 1
	}

	// Normalize lengths so the minimum is 1, then classify.
	minLen := math.Inf(1)
	for _, e := range edges {
		if e.Len < minLen {
			minLen = e.Len
		}
	}
	if math.IsInf(minLen, 1) {
		minLen = 1
	}
	ws.grow(n, len(edges))
	class := ws.class[:len(edges)] // 1-based class index
	maxClass := 1
	for i, e := range edges {
		c := 1
		l := e.Len / minLen
		for l >= z {
			l /= z
			c++
		}
		class[i] = c
		if c > maxClass {
			maxClass = c
		}
	}

	res := &Result{
		EdgeOf: ws.edgeOf[:n],
		Rho:    rho,
		Z:      z,
	}
	// Spanning tree assembled as a union of original edges.
	chosen := ws.chosen[:len(edges)]
	for i := range chosen {
		chosen[i] = false
	}

	// sn maps original vertices to current supernodes (contraction).
	sn := ws.sn[:n]
	for v := range sn {
		sn[v] = v
	}
	super := n // number of live supernodes

	// Epoch-stamped scratch replacing the per-iteration maps of the
	// contraction loop: compact supernode ids, cluster remaps and the
	// live-supernode census are all answered by O(1) array reads, with
	// one shared arena (including the SplitGraph race workspace) reused
	// across iterations — and, through the workspaces held in package
	// jtree and capprox, across j-tree levels and sampled trees.
	snIdx := ws.snIdx[:n]           // supernode -> compact index (valid when snStamp matches)
	snStamp := ws.snStamp[:n]       // epoch stamp for snIdx
	remapTo := ws.remapTo[:n]       // supernode -> contracted supernode
	remapStamp := ws.remapStamp[:n] // epoch stamp for remapTo
	seenStamp := ws.seenStamp[:n]   // epoch stamp for the census
	rev := ws.rev[:0]               // compact index -> supernode
	active := ws.active
	classCount := ws.classCount
	off := ws.off
	arcs := ws.arcs

	curRho := rho
	for j := 1; super > 1; j++ {
		if j > 4*maxClass+64 {
			return nil, fmt.Errorf("lsst: no convergence after %d iterations (disconnected input?)", j-1)
		}
		res.Iterations++
		ws.epoch++
		ep := ws.epoch
		useClass := j
		if useClass > maxClass {
			useClass = maxClass
		}
		// Build the contracted working graph over supernodes with edges
		// of classes ≤ useClass, dropping self-loops. Compact indices
		// are assigned in first-seen order (as the map version did).
		rev = rev[:0]
		idx := func(s int) int {
			if snStamp[s] == ep {
				return snIdx[s]
			}
			snStamp[s] = ep
			snIdx[s] = len(rev)
			rev = append(rev, s)
			return len(rev) - 1
		}
		active = active[:0]
		for i, e := range edges {
			if class[i] > useClass {
				continue
			}
			a, b := sn[e.U], sn[e.V]
			if a == b {
				continue
			}
			mult := e.Mult
			if mult <= 0 {
				mult = 1
			}
			active = append(active, classedEdge{
				e:    splitEdge{u: int32(idx(a)), v: int32(idx(b)), id: int32(i)},
				cl:   class[i],
				mult: mult,
			})
		}
		// Supernodes not touched by active edges still exist; they just
		// don't participate this iteration.
		nn := len(rev)
		if nn == 0 {
			// All remaining edges are in higher classes; advance j.
			continue
		}
		// CSR adjacency over the compact working graph, placed in active
		// order per vertex (the order the per-vertex appends produced).
		if cap(off) < nn+1 {
			off = make([]int32, nn+1)
		}
		off = off[:nn+1]
		for i := range off {
			off[i] = 0
		}
		for _, w := range active {
			off[w.e.u]++
			off[w.e.v]++
		}
		sum := int(csr.Offsets(off))
		if cap(arcs) < sum {
			arcs = make([]splitEdge, sum)
		}
		arcs = arcs[:sum]
		for _, w := range active {
			arcs[off[w.e.u]] = w.e
			off[w.e.u]++
			arcs[off[w.e.v]] = w.e
			off[w.e.v]++
		}
		csr.Shift(off)

		if cap(classCount) < useClass+1 {
			classCount = make([]int, useClass+1)
		}
		classCount = classCount[:useClass+1]
		for i := range classCount {
			classCount[i] = 0
		}
		// Class sizes count multiplicities: a weight-k edge is k parallel
		// copies of the §8.1 expansion.
		for _, w := range active {
			classCount[w.cl] += int(w.mult)
		}

		// Partition: run SplitGraph, restart while some class is
		// over-split (more than 4·log₂N/ρ of its edges cut, and at least
		// a handful, per §7 / Blelloch et al.).
		var sg *splitResult
		for attempt := 0; ; attempt++ {
			res.PartitionCalls++
			raceStart := time.Now() //distflow:allow detrand build-phase timing stat only; never feeds results
			sg = splitGraph(nn, off, arcs, curRho, rng, &ws.sws, cfg.HeapRace)
			res.RaceSeconds += time.Since(raceStart).Seconds() //distflow:allow detrand build-phase timing stat only; never feeds results
			if attempt >= maxRestarts || !overSplit(sg, active, classCount, curRho, nn) {
				break
			}
		}

		// Adopt the cluster BFS trees into the spanning tree and contract.
		progress := false
		for v := 0; v < nn; v++ {
			if pe := sg.parentEdge[v]; pe >= 0 && !chosen[pe] {
				chosen[pe] = true
				progress = true
			}
		}
		if progress {
			// Contract: supernode -> its cluster's seed supernode.
			for v := 0; v < nn; v++ {
				remapTo[rev[v]] = rev[sg.cluster[v]]
				remapStamp[rev[v]] = ep
			}
			super = 0
			for v := 0; v < n; v++ {
				if remapStamp[sn[v]] == ep {
					sn[v] = remapTo[sn[v]]
				}
				if seenStamp[sn[v]] != ep {
					seenStamp[sn[v]] = ep
					super++
				}
			}
		} else if useClass == maxClass {
			// Degenerate randomness: widen the radius and retry (keeps
			// the worst-case guarantee; exercised only on tiny inputs).
			curRho *= 2
			if curRho > 4*n {
				return nil, fmt.Errorf("lsst: cannot make progress; input disconnected?")
			}
		}
	}

	// Save grown scratch back into the workspace for the next call.
	ws.rev = rev[:0]
	ws.active = active
	ws.classCount = classCount
	ws.off = off
	ws.arcs = arcs

	tree, edgeOf, err := assemble(n, edges, chosen, ws)
	if err != nil {
		return nil, err
	}
	res.Tree = tree
	res.EdgeOf = edgeOf
	return res, nil
}

// classedEdge pairs a working edge with its length class and implicit
// multiplicity.
type classedEdge struct {
	e    splitEdge
	cl   int
	mult int32
}

// overSplit reports whether some participating class has too many of its
// edges cut between clusters. Cut edges count their multiplicity, same
// as the class census — the restart rule sees exactly the §8.1-expanded
// multigraph.
func overSplit(sg *splitResult, active []classedEdge, classCount []int, rho, nn int) bool {
	logN := math.Log2(float64(nn) + 2)
	cut := make([]int, len(classCount))
	for _, w := range active {
		if sg.cluster[w.e.u] != sg.cluster[w.e.v] {
			cut[w.cl] += int(w.mult)
		}
	}
	for c := 1; c < len(classCount); c++ {
		if classCount[c] == 0 {
			continue
		}
		bound := 4 * logN / float64(rho) * float64(classCount[c])
		if float64(cut[c]) > bound && cut[c] > 8 {
			return true
		}
	}
	return false
}

// assemble roots the chosen edge set at vertex 0, building the chosen
// adjacency in CSR form from the workspace (per-vertex edge order is
// the chosen-index order the old appends produced).
func assemble(n int, edges []Edge, chosen []bool, ws *Workspace) (*vtree.VTree, []int, error) {
	aOff := ws.aOff[:n+1]
	for i := range aOff {
		aOff[i] = 0
	}
	count := 0
	for i, c := range chosen {
		if !c {
			continue
		}
		aOff[edges[i].U]++
		aOff[edges[i].V]++
		count++
	}
	if count != n-1 {
		return nil, nil, fmt.Errorf("lsst: chose %d edges, want %d", count, n-1)
	}
	sum := csr.Offsets(aOff)
	aArc := ws.aArc[:sum]
	for i, c := range chosen {
		if !c {
			continue
		}
		aArc[aOff[edges[i].U]] = i
		aOff[edges[i].U]++
		aArc[aOff[edges[i].V]] = i
		aOff[edges[i].V]++
	}
	csr.Shift(aOff)

	parent := ws.parent[:n]
	edgeOf := ws.edgeOf[:n]
	for v := range parent {
		parent[v] = -2
		edgeOf[v] = -1
	}
	parent[0] = -1
	queue := ws.queue[:0]
	queue = append(queue, 0)
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		for _, ei := range aArc[aOff[v]:aOff[v+1]] {
			w := edges[ei].U + edges[ei].V - v
			if parent[w] == -2 {
				parent[w] = v
				edgeOf[w] = ei
				queue = append(queue, w)
			}
		}
	}
	ws.queue = queue
	for v, p := range parent {
		if p == -2 {
			return nil, nil, fmt.Errorf("lsst: vertex %d not spanned", v)
		}
	}
	t, err := vtree.New(0, parent, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("lsst: %w", err)
	}
	return t, edgeOf, nil
}

// AverageStretch measures the average stretch of the tree over the
// input multigraph: (Σ_e dT(u_e,v_e)) / (Σ_e ℓ(e)), the Theorem 3.1
// quantity (with unit edge multiplicities).
func AverageStretch(res *Result, edges []Edge) float64 {
	t := res.Tree
	lengths := make([]float64, t.N())
	for v := range lengths {
		if ei := res.EdgeOf[v]; ei >= 0 {
			lengths[v] = edges[ei].Len
		}
	}
	pairs := make([]vtree.EdgeEndpoint, len(edges))
	var denom float64
	for i, e := range edges {
		pairs[i] = vtree.EdgeEndpoint{U: e.U, V: e.V, Cap: 1}
		denom += e.Len
	}
	num := t.StretchSum(pairs, lengths)
	if denom == 0 {
		return 0
	}
	return num / denom
}
