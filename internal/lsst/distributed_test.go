package lsst

import (
	"math/rand"
	"testing"

	"distflow/internal/congest"
	"distflow/internal/graph"
)

func TestDistributedSplitGraphGrid(t *testing.T) {
	g := graph.Grid(8, 8)
	nw := congest.NewNetwork(g, congest.WithSeed(11))
	res, err := DistributedSplitGraph(nw, 6)
	if err != nil {
		t.Fatal(err)
	}
	validateSplit(t, g, res, 6)
}

func TestDistributedSplitGraphFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, fam := range graph.Families() {
		t.Run(fam.Name, func(t *testing.T) {
			g := fam.Make(80, rng)
			nw := congest.NewNetwork(g, congest.WithSeed(17))
			res, err := DistributedSplitGraph(nw, 8)
			if err != nil {
				t.Fatal(err)
			}
			validateSplit(t, g, res, 8)
		})
	}
}

// validateSplit checks the SplitGraph contract: full coverage, cluster
// trees are valid shortest-path trees toward their centers, radius
// within rho + maxDelay, and clusters are connected.
func validateSplit(t *testing.T, g *graph.Graph, res *SplitGraphResult, rho int) {
	t.Helper()
	n := g.N()
	for v := 0; v < n; v++ {
		c := res.Cluster[v]
		if c < 0 || c >= n {
			t.Fatalf("node %d unclaimed", v)
		}
		if res.ParentEdge[v] >= 0 {
			p := g.Other(res.ParentEdge[v], v)
			if res.Cluster[p] != c {
				t.Fatalf("node %d parent %d in different cluster", v, p)
			}
			if res.Depth[v] != res.Depth[p]+1 {
				t.Fatalf("node %d depth %d, parent depth %d", v, res.Depth[v], res.Depth[p])
			}
		} else {
			if res.Cluster[v] != v {
				t.Fatalf("rootless node %d claimed by %d", v, res.Cluster[v])
			}
			if res.Depth[v] != 0 {
				t.Fatalf("center %d has depth %d", v, res.Depth[v])
			}
		}
	}
	if res.Phases < 1 || res.Phases > ExpectedPhases(n) {
		t.Errorf("phases = %d, want within [1, %d]", res.Phases, ExpectedPhases(n))
	}
	if res.Stats.Rounds <= 0 {
		t.Error("no rounds measured")
	}
}

// Determinism: the same seed reproduces the same clustering.
func TestDistributedSplitGraphDeterministic(t *testing.T) {
	g := graph.Grid(6, 6)
	run := func() *SplitGraphResult {
		nw := congest.NewNetwork(g, congest.WithSeed(23))
		res, err := DistributedSplitGraph(nw, 5)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for v := range a.Cluster {
		if a.Cluster[v] != b.Cluster[v] {
			t.Fatalf("node %d clustered differently across identical runs", v)
		}
	}
	if a.Stats != b.Stats {
		t.Errorf("stats differ: %+v vs %+v", a.Stats, b.Stats)
	}
}

// Rounds must scale with rho and the phase count, not with n beyond the
// BFS/count aggregations: a larger radius means longer races.
func TestDistributedSplitGraphRoundsScale(t *testing.T) {
	g := graph.Grid(10, 10)
	small, err := DistributedSplitGraph(congest.NewNetwork(g, congest.WithSeed(29)), 3)
	if err != nil {
		t.Fatal(err)
	}
	// With a huge radius the first phase covers nearly everything, so
	// fewer phases run overall even though races last longer.
	big, err := DistributedSplitGraph(congest.NewNetwork(g, congest.WithSeed(29)), 40)
	if err != nil {
		t.Fatal(err)
	}
	if big.Phases > small.Phases {
		t.Errorf("bigger radius should not need more phases: %d vs %d", big.Phases, small.Phases)
	}
}
