package lsst

import (
	"fmt"
	"math"

	"distflow/internal/congest"
	"distflow/internal/proto"
)

// Distributed SplitGraph (Fig. 4) as a genuine message-passing protocol:
// the delayed multi-source BFS race runs as a congest.Program, with the
// per-phase uncovered count obtained by a measured convergecast. This is
// the CONGEST realization of the ball-growing the paper builds the LSST
// from ("the basic action of Algorithm SplitGraph is growing BFS trees",
// §7); the centralized splitGraph in this package reproduces the same
// race for use inside the contracted AKPW recursion, and the tests
// cross-check the two on the base graph.

// raceMsg announces a cluster claim: the seeding source and the
// remaining ball radius (TTL).
type raceMsg struct {
	Source int64
	TTL    int64
}

// WireSize implements congest.Message: two O(log n)-bit words.
func (raceMsg) WireSize() int { return 2 * congest.WordBits }

type raceNode struct {
	active    bool // uncovered at phase start
	seed      bool
	delay     int
	radius    int
	source    int64 // claimed source; -1 while unclaimed
	ttl       int64
	parentArc int
	claimedAt int
	forwarded bool
}

func (r *raceNode) Step(ctx *congest.Context, in []congest.Incoming) ([]congest.Outgoing, bool) {
	if !r.active {
		return nil, true
	}
	if r.source < 0 {
		bestSource := int64(-1)
		bestTTL := int64(0)
		bestArc := -1
		for _, m := range in {
			msg, ok := m.Msg.(raceMsg)
			if !ok {
				continue
			}
			if bestSource < 0 || msg.Source < bestSource {
				bestSource = msg.Source
				bestTTL = msg.TTL
				bestArc = arcOf(ctx, m.Edge)
			}
		}
		// A seed self-claims once its delay expires; simultaneous
		// arrivals compete by smaller source ID, exactly as the
		// centralized race breaks ties.
		if r.seed && ctx.Round == r.delay+1 {
			self := int64(ctx.ID)
			if bestSource < 0 || self < bestSource {
				bestSource = self
				bestTTL = int64(r.radius)
				bestArc = -1
			}
		}
		if bestSource >= 0 {
			r.source = bestSource
			r.ttl = bestTTL
			r.parentArc = bestArc
			r.claimedAt = ctx.Round
		}
	}
	if r.source >= 0 && !r.forwarded {
		r.forwarded = true
		if r.ttl > 0 {
			outs := make([]congest.Outgoing, 0, ctx.Degree())
			for i := 0; i < ctx.Degree(); i++ {
				if i == r.parentArc {
					continue
				}
				outs = append(outs, congest.Outgoing{Edge: ctx.Arc(i).E, Msg: raceMsg{Source: r.source, TTL: r.ttl - 1}})
			}
			return outs, true
		}
		return nil, true
	}
	// Unclaimed non-seeds wait passively; unexpired seeds hold the
	// network open until their delay round.
	done := !r.seed || r.source >= 0 || r.claimedAt > 0
	if r.seed && r.source < 0 {
		done = false
	}
	return nil, done
}

func arcOf(ctx *congest.Context, edge int) int {
	for i, a := range ctx.Arcs() {
		if a.E == edge {
			return i
		}
	}
	panic(fmt.Sprintf("lsst: edge %d not incident to %d", edge, ctx.ID))
}

// SplitGraphResult is the outcome of the distributed low-diameter
// decomposition.
type SplitGraphResult struct {
	// Cluster[v] is the seeding source that claimed v.
	Cluster []int
	// ParentEdge[v] is the graph edge toward the cluster center (-1 at
	// centers).
	ParentEdge []int
	// Depth[v] is the BFS depth within the cluster.
	Depth []int
	// Phases is the number of seeding phases executed.
	Phases int
	// Stats totals the measured rounds (races + counting aggregations).
	Stats congest.Stats
}

// DistributedSplitGraph runs Algorithm SplitGraph with target radius rho
// on the network graph, as measured message-passing: per phase, the
// uncovered count is convergecast over a BFS tree, seeds self-select and
// race; the protocol ends when every node is claimed.
func DistributedSplitGraph(nw *congest.Network, rho int) (*SplitGraphResult, error) {
	g := nw.Graph()
	n := g.N()
	res := &SplitGraphResult{
		Cluster:    make([]int, n),
		ParentEdge: make([]int, n),
		Depth:      make([]int, n),
	}
	for v := range res.Cluster {
		res.Cluster[v] = -1
		res.ParentEdge[v] = -1
	}
	tree, stats, err := proto.BuildBFSTree(nw, 0)
	if err != nil {
		return nil, fmt.Errorf("lsst: splitgraph: %w", err)
	}
	res.Stats.Add(stats)

	logN := 1
	for (1 << logN) < n {
		logN++
	}
	maxDelay := rho / (2 * logN)
	covered := make([]bool, n)

	for t := 1; t <= 2*logN; t++ {
		// Measured count of uncovered nodes (convergecast + broadcast).
		vals := make([]float64, n)
		uncovered := 0
		for v := 0; v < n; v++ {
			if !covered[v] {
				vals[v] = 1
				uncovered++
			}
		}
		sums, stats, err := proto.SubtreeSums(nw, tree, vals)
		if err != nil {
			return nil, fmt.Errorf("lsst: splitgraph count: %w", err)
		}
		res.Stats.Add(stats)
		if int(sums[tree.Root]) != uncovered {
			return nil, fmt.Errorf("lsst: splitgraph count mismatch: %v vs %d", sums[tree.Root], uncovered)
		}
		if uncovered == 0 {
			break
		}
		res.Phases = t

		frac := 12.0 * pow2half(t) / float64(n)
		radius := rho * (2*logN - (t - 1)) / (2 * logN)
		nodes := make([]*raceNode, n)
		stats, err = nw.Run(func(v int, ctx *congest.Context) congest.Program {
			r := &raceNode{active: !covered[v], source: -1, parentArc: -1}
			if r.active {
				isSeed := frac >= 1 || ctx.Rand.Float64() < frac
				if t == 2*logN {
					isSeed = true // final phase covers everything
				}
				if isSeed {
					r.seed = true
					if maxDelay > 0 {
						r.delay = ctx.Rand.Intn(maxDelay + 1)
					}
					r.radius = radius - r.delay
					if r.radius < 0 {
						r.radius = 0
					}
				}
			}
			nodes[v] = r
			return r
		}, 4*(rho+maxDelay)+2*n+64)
		if err != nil {
			return nil, fmt.Errorf("lsst: splitgraph race %d: %w", t, err)
		}
		res.Stats.Add(stats)

		for v, r := range nodes {
			if !r.active || r.source < 0 {
				continue
			}
			covered[v] = true
			res.Cluster[v] = int(r.source)
			if r.parentArc >= 0 {
				a := g.Adj(v)[r.parentArc]
				res.ParentEdge[v] = a.E
				res.Depth[v] = -1 // filled below
			}
		}
	}
	for v := 0; v < n; v++ {
		if res.Cluster[v] < 0 {
			return nil, fmt.Errorf("lsst: splitgraph left node %d uncovered", v)
		}
	}
	// Depths via parent pointers (harness-side verification data).
	var depth func(v int) int
	memo := make(map[int]int, n)
	depth = func(v int) int {
		if res.ParentEdge[v] < 0 {
			return 0
		}
		if d, ok := memo[v]; ok {
			return d
		}
		d := depth(g.Other(res.ParentEdge[v], v)) + 1
		memo[v] = d
		return d
	}
	maxRadius := rho + maxDelay
	for v := 0; v < n; v++ {
		res.Depth[v] = depth(v)
		if res.Depth[v] > maxRadius {
			return nil, fmt.Errorf("lsst: splitgraph cluster radius %d exceeds budget %d", res.Depth[v], maxRadius)
		}
	}
	return res, nil
}

// ExpectedPhases returns the 2·⌈log₂ n⌉ phase bound of Fig. 4.
func ExpectedPhases(n int) int {
	return 2 * int(math.Ceil(math.Log2(float64(n)+2)))
}
