package lsst

import (
	"math"
	"math/rand"
	"testing"

	"distflow/internal/graph"
)

// fromGraph converts a graph.Graph with unit lengths.
func fromGraph(g *graph.Graph) []Edge {
	edges := make([]Edge, g.M())
	for i, e := range g.Edges() {
		edges[i] = Edge{U: e.U, V: e.V, Len: 1}
	}
	return edges
}

func TestSpanningTreeSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.Cycle(10)
	res, err := SpanningTree(g.N(), fromGraph(g), Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tree.N() != 10 {
		t.Fatalf("tree size %d", res.Tree.N())
	}
	// Every non-root vertex must map to a real input edge connecting it
	// to its parent.
	edges := fromGraph(g)
	for v := 0; v < 10; v++ {
		if v == res.Tree.Root {
			if res.EdgeOf[v] != -1 {
				t.Errorf("root EdgeOf = %d", res.EdgeOf[v])
			}
			continue
		}
		e := edges[res.EdgeOf[v]]
		p := res.Tree.Parent[v]
		if !(e.U == v && e.V == p) && !(e.V == v && e.U == p) {
			t.Errorf("vertex %d: edge %v does not connect to parent %d", v, e, p)
		}
	}
}

func TestSpanningTreeFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, fam := range graph.Families() {
		t.Run(fam.Name, func(t *testing.T) {
			g := fam.Make(150, rng)
			res, err := SpanningTree(g.N(), fromGraph(g), Config{}, rng)
			if err != nil {
				t.Fatal(err)
			}
			if res.Tree.N() != g.N() {
				t.Fatalf("tree spans %d of %d", res.Tree.N(), g.N())
			}
		})
	}
}

func TestSpanningTreeWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.GNP(80, 0.1, rng)
	edges := make([]Edge, g.M())
	for i, e := range g.Edges() {
		edges[i] = Edge{U: e.U, V: e.V, Len: math.Pow(2, float64(rng.Intn(20)))}
	}
	res, err := SpanningTree(g.N(), edges, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	s := AverageStretch(res, edges)
	if s < 1-1e-9 {
		t.Errorf("average stretch %v < 1 (impossible)", s)
	}
}

// The headline property: on unit-length graphs the average stretch must
// stay well below n (a bad tree on a cycle has stretch ~n/3) and in the
// 2^{O(√(log n log log n))} ballpark. We assert a generous polylog-ish
// cap that a broken construction (e.g. a path tree on a random graph)
// would blow through.
func TestAverageStretchBound(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{64, 256, 512} {
		g := graph.GNP(n, 8.0/float64(n), rng)
		edges := fromGraph(g)
		res, err := SpanningTree(n, edges, Config{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		s := AverageStretch(res, edges)
		bound := 8 * math.Pow(2, math.Sqrt(math.Log2(float64(n))*math.Log2(math.Log2(float64(n)))))
		if s > bound {
			t.Errorf("n=%d: average stretch %.2f exceeds %.2f", n, s, bound)
		}
	}
}

// Multigraph + contraction support (the Theorem 3.1 statement): parallel
// edges and repeated vertex ids must be handled.
func TestMultigraphParallelEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	edges := []Edge{
		{U: 0, V: 1, Len: 1},
		{U: 0, V: 1, Len: 5},
		{U: 1, V: 2, Len: 1},
		{U: 1, V: 2, Len: 2},
		{U: 2, V: 3, Len: 1},
	}
	res, err := SpanningTree(4, edges, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tree.N() != 4 {
		t.Fatal("wrong size")
	}
}

func TestErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := SpanningTree(0, nil, Config{}, rng); err == nil {
		t.Error("empty graph accepted")
	}
	if _, err := SpanningTree(2, []Edge{{U: 0, V: 5, Len: 1}}, Config{}, rng); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := SpanningTree(2, []Edge{{U: 0, V: 1, Len: 0}}, Config{}, rng); err == nil {
		t.Error("zero length accepted")
	}
	// Disconnected input must fail, not loop.
	if _, err := SpanningTree(4, []Edge{{U: 0, V: 1, Len: 1}, {U: 2, V: 3, Len: 1}}, Config{}, rng); err == nil {
		t.Error("disconnected graph accepted")
	}
}

func TestSingleVertex(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	res, err := SpanningTree(1, nil, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tree.N() != 1 {
		t.Error("singleton tree wrong")
	}
}

func TestAccountRoundsPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.Grid(8, 8)
	res, err := SpanningTree(g.N(), fromGraph(g), Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if r := res.AccountRounds(g.N(), g.Diameter()); r <= 0 {
		t.Errorf("AccountRounds = %d", r)
	}
	if res.PartitionCalls < res.Iterations {
		t.Errorf("PartitionCalls %d < Iterations %d", res.PartitionCalls, res.Iterations)
	}
}

// Expected stretch across seeds stays sane on the hard instance for tree
// embeddings (the cycle: any spanning tree stretches one edge to n-1,
// but the *average* stays ~2 because only one edge is stretched).
func TestCycleAverageStretch(t *testing.T) {
	n := 128
	g := graph.Cycle(n)
	edges := fromGraph(g)
	var total float64
	const seeds = 10
	for s := int64(0); s < seeds; s++ {
		rng := rand.New(rand.NewSource(100 + s))
		res, err := SpanningTree(n, edges, Config{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		total += AverageStretch(res, edges)
	}
	avg := total / seeds
	// One edge of stretch n-1 out of n edges contributes ~1 on average;
	// anything beyond ~3 means the construction is broken.
	if avg > 3.5 {
		t.Errorf("cycle average stretch %.2f too high", avg)
	}
}

func TestConfigOverrides(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.Grid(6, 6)
	res, err := SpanningTree(g.N(), fromGraph(g), Config{ZExponent: 2, MaxRestarts: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Z <= 4 {
		t.Errorf("Z = %v, want > 4 with exponent 2", res.Z)
	}
}
