package lsst

import (
	"math"
	"math/rand"
	"testing"

	"distflow/internal/csr"
	"distflow/internal/graph"
)

// fromGraph converts a graph.Graph with unit lengths.
func fromGraph(g *graph.Graph) []Edge {
	edges := make([]Edge, g.M())
	for i, e := range g.Edges() {
		edges[i] = Edge{U: e.U, V: e.V, Len: 1}
	}
	return edges
}

func TestSpanningTreeSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.Cycle(10)
	res, err := SpanningTree(g.N(), fromGraph(g), Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tree.N() != 10 {
		t.Fatalf("tree size %d", res.Tree.N())
	}
	// Every non-root vertex must map to a real input edge connecting it
	// to its parent.
	edges := fromGraph(g)
	for v := 0; v < 10; v++ {
		if v == res.Tree.Root {
			if res.EdgeOf[v] != -1 {
				t.Errorf("root EdgeOf = %d", res.EdgeOf[v])
			}
			continue
		}
		e := edges[res.EdgeOf[v]]
		p := res.Tree.Parent[v]
		if !(e.U == v && e.V == p) && !(e.V == v && e.U == p) {
			t.Errorf("vertex %d: edge %v does not connect to parent %d", v, e, p)
		}
	}
}

func TestSpanningTreeFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, fam := range graph.Families() {
		t.Run(fam.Name, func(t *testing.T) {
			g := fam.Make(150, rng)
			res, err := SpanningTree(g.N(), fromGraph(g), Config{}, rng)
			if err != nil {
				t.Fatal(err)
			}
			if res.Tree.N() != g.N() {
				t.Fatalf("tree spans %d of %d", res.Tree.N(), g.N())
			}
		})
	}
}

func TestSpanningTreeWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.GNP(80, 0.1, rng)
	edges := make([]Edge, g.M())
	for i, e := range g.Edges() {
		edges[i] = Edge{U: e.U, V: e.V, Len: math.Pow(2, float64(rng.Intn(20)))}
	}
	res, err := SpanningTree(g.N(), edges, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	s := AverageStretch(res, edges)
	if s < 1-1e-9 {
		t.Errorf("average stretch %v < 1 (impossible)", s)
	}
}

// The headline property: on unit-length graphs the average stretch must
// stay well below n (a bad tree on a cycle has stretch ~n/3) and in the
// 2^{O(√(log n log log n))} ballpark. We assert a generous polylog-ish
// cap that a broken construction (e.g. a path tree on a random graph)
// would blow through.
func TestAverageStretchBound(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{64, 256, 512} {
		g := graph.GNP(n, 8.0/float64(n), rng)
		edges := fromGraph(g)
		res, err := SpanningTree(n, edges, Config{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		s := AverageStretch(res, edges)
		bound := 8 * math.Pow(2, math.Sqrt(math.Log2(float64(n))*math.Log2(math.Log2(float64(n)))))
		if s > bound {
			t.Errorf("n=%d: average stretch %.2f exceeds %.2f", n, s, bound)
		}
	}
}

// Multigraph + contraction support (the Theorem 3.1 statement): parallel
// edges and repeated vertex ids must be handled.
func TestMultigraphParallelEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	edges := []Edge{
		{U: 0, V: 1, Len: 1},
		{U: 0, V: 1, Len: 5},
		{U: 1, V: 2, Len: 1},
		{U: 1, V: 2, Len: 2},
		{U: 2, V: 3, Len: 1},
	}
	res, err := SpanningTree(4, edges, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tree.N() != 4 {
		t.Fatal("wrong size")
	}
}

func TestErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := SpanningTree(0, nil, Config{}, rng); err == nil {
		t.Error("empty graph accepted")
	}
	if _, err := SpanningTree(2, []Edge{{U: 0, V: 5, Len: 1}}, Config{}, rng); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := SpanningTree(2, []Edge{{U: 0, V: 1, Len: 0}}, Config{}, rng); err == nil {
		t.Error("zero length accepted")
	}
	// Disconnected input must fail, not loop.
	if _, err := SpanningTree(4, []Edge{{U: 0, V: 1, Len: 1}, {U: 2, V: 3, Len: 1}}, Config{}, rng); err == nil {
		t.Error("disconnected graph accepted")
	}
}

func TestSingleVertex(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	res, err := SpanningTree(1, nil, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tree.N() != 1 {
		t.Error("singleton tree wrong")
	}
}

func TestAccountRoundsPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.Grid(8, 8)
	res, err := SpanningTree(g.N(), fromGraph(g), Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if r := res.AccountRounds(g.N(), g.Diameter()); r <= 0 {
		t.Errorf("AccountRounds = %d", r)
	}
	if res.PartitionCalls < res.Iterations {
		t.Errorf("PartitionCalls %d < Iterations %d", res.PartitionCalls, res.Iterations)
	}
}

// Expected stretch across seeds stays sane on the hard instance for tree
// embeddings (the cycle: any spanning tree stretches one edge to n-1,
// but the *average* stays ~2 because only one edge is stretched).
func TestCycleAverageStretch(t *testing.T) {
	n := 128
	g := graph.Cycle(n)
	edges := fromGraph(g)
	var total float64
	const seeds = 10
	for s := int64(0); s < seeds; s++ {
		rng := rand.New(rand.NewSource(100 + s))
		res, err := SpanningTree(n, edges, Config{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		total += AverageStretch(res, edges)
	}
	avg := total / seeds
	// One edge of stretch n-1 out of n edges contributes ~1 on average;
	// anything beyond ~3 means the construction is broken.
	if avg > 3.5 {
		t.Errorf("cycle average stretch %.2f too high", avg)
	}
}

func TestConfigOverrides(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.Grid(6, 6)
	res, err := SpanningTree(g.N(), fromGraph(g), Config{ZExponent: 2, MaxRestarts: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Z <= 4 {
		t.Errorf("Z = %v, want > 4 with exponent 2", res.Z)
	}
}

// buildCSR assembles the working-graph CSR the way lsst.go does, so the
// race can be driven directly.
func buildCSR(n int, edges []Edge) ([]int32, []splitEdge) {
	off := make([]int32, n+1)
	for _, e := range edges {
		off[e.U]++
		off[e.V]++
	}
	total := csr.Offsets(off)
	arcs := make([]splitEdge, total)
	for i, e := range edges {
		se := splitEdge{u: int32(e.U), v: int32(e.V), id: int32(i)}
		arcs[off[e.U]] = se
		off[e.U]++
		arcs[off[e.V]] = se
		off[e.V]++
	}
	csr.Shift(off)
	return off, arcs
}

// The bucket queue (RaceOrderVersion 2) and the heap (version 1) are the
// same priority queue up to the order among fully equal (time, source)
// keys — and the cluster assignment is provably invariant under that
// residual order: a node is claimed by the minimal key targeting it, all
// items carrying that key share one source, and depth = time − delay is
// a function of the claim. So the two implementations must produce
// bit-identical cluster and depth arrays on every input; only the race
// trees (parent/parentEdge) may differ. This is the exactness check that
// pins the bucket queue to Fig. 4 rather than to "some BFS".
func TestRaceBucketMatchesHeapClusters(t *testing.T) {
	for _, n := range []int{40, 200} {
		g := graph.GNP(n, 6.0/float64(n), rand.New(rand.NewSource(int64(n))))
		edges := fromGraph(g)
		off, arcs := buildCSR(n, edges)
		for _, rho := range []int{4, 8, 16, 32} {
			if rho >= n {
				continue // component shortcut: trivially identical
			}
			for seed := int64(0); seed < 5; seed++ {
				var wsB, wsH splitWS
				rb := splitGraph(n, off, arcs, rho, rand.New(rand.NewSource(seed)), &wsB, false)
				rh := splitGraph(n, off, arcs, rho, rand.New(rand.NewSource(seed)), &wsH, true)
				if rb.maxDepth != rh.maxDepth {
					t.Fatalf("n=%d rho=%d seed=%d: maxDepth %d (bucket) vs %d (heap)", n, rho, seed, rb.maxDepth, rh.maxDepth)
				}
				for v := 0; v < n; v++ {
					if rb.cluster[v] != rh.cluster[v] {
						t.Fatalf("n=%d rho=%d seed=%d: cluster[%d] = %d (bucket) vs %d (heap)",
							n, rho, seed, v, rb.cluster[v], rh.cluster[v])
					}
					if rb.depth[v] != rh.depth[v] {
						t.Fatalf("n=%d rho=%d seed=%d: depth[%d] = %d (bucket) vs %d (heap)",
							n, rho, seed, v, rb.depth[v], rh.depth[v])
					}
				}
			}
		}
	}
}

// treeFingerprint hashes the tree structure (parent + supporting edge
// per vertex) — the part of the output the race pop order can move.
func treeFingerprint(res *Result) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for v := 0; v < res.Tree.N(); v++ {
		h = (h ^ uint64(uint32(res.Tree.Parent[v]))) * prime
		h = (h ^ uint64(uint32(res.EdgeOf[v]))) * prime
	}
	return h
}

// Both race implementations must be deterministic functions of
// (input, seed): two runs with the same seed produce bit-identical
// trees. The heap path is the version-1 distribution kept for A/B
// measurement; it must stay deterministic too.
func TestRaceDeterminism(t *testing.T) {
	g := graph.GNP(300, 8.0/300, rand.New(rand.NewSource(42)))
	edges := fromGraph(g)
	for _, cfg := range []Config{{}, {HeapRace: true}} {
		name := "bucket"
		if cfg.HeapRace {
			name = "heap"
		}
		t.Run(name, func(t *testing.T) {
			a, err := SpanningTree(g.N(), edges, cfg, rand.New(rand.NewSource(7)))
			if err != nil {
				t.Fatal(err)
			}
			b, err := SpanningTree(g.N(), edges, cfg, rand.New(rand.NewSource(7)))
			if err != nil {
				t.Fatal(err)
			}
			if fa, fb := treeFingerprint(a), treeFingerprint(b); fa != fb {
				t.Fatalf("%s race not deterministic: %x vs %x", name, fa, fb)
			}
		})
	}
}

// The version-2 fingerprint: the pop order among equal keys is part of
// the output distribution, so changing it silently would move every
// committed BENCH baseline. This pins the version-2 tree on one fixed
// input; if an intentional order change trips it, bump RaceOrderVersion,
// re-record this constant AND the BENCH baselines (DESIGN.md §10).
func TestRaceOrderVersionFingerprint(t *testing.T) {
	if RaceOrderVersion != 2 {
		t.Fatalf("RaceOrderVersion = %d; this fingerprint pins version 2", RaceOrderVersion)
	}
	g := graph.GNP(200, 8.0/200, rand.New(rand.NewSource(11)))
	res, err := SpanningTree(g.N(), fromGraph(g), Config{}, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	const want = uint64(0xccb2d418862394b4)
	if got := treeFingerprint(res); got != want {
		t.Fatalf("version-%d tree fingerprint = %#x, recorded %#x — if the pop order changed on purpose, bump RaceOrderVersion and re-record (see DESIGN.md §10)",
			RaceOrderVersion, got, want)
	}
}
