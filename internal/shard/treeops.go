package shard

import (
	"slices"

	"distflow/internal/vtree"
)

// The sparse tree operators: vtree.TreeFlow and vtree.PathDeltas
// executed shard-locally over an edge/edit partition with contribution
// exchange to vertex owners. Both operate in the solver's
// integer-capacity regime, where every contribution is an exact
// integer in float64 and addition is associative — so the accumulation
// order across shards cannot change a bit, and the results equal the
// sequential sweeps exactly.
//
// Unlike the dense operators, which peers ship to is data-dependent
// (LCA walks decide which vertices a shard touches), so every shard
// pair exchanges exactly one payload per exchange round — possibly
// empty. Empty payloads model the synchronous round's "nothing for
// you" frame and are not counted as messages.

// clearSparse resets the dense accumulation scratch touched by the
// previous sparse operation.
func (s *shardState) clearSparse() {
	for _, v := range s.touched {
		s.acc[v] = 0
		s.mark[v] = false
	}
	s.touched = s.touched[:0]
}

func (s *shardState) touch(v int) {
	if !s.mark[v] {
		s.mark[v] = true
		s.touched = append(s.touched, int32(v))
	}
}

// exchangeSparse ships each peer the (vertex, value) contribution
// pairs this shard accumulated for vertices the peer owns, and returns
// after scattering the received pairs through apply. Every pair
// exchanges one payload (possibly empty).
func (e *Engine) exchangeSparse(s *shardState, apply func(v int32, val float64)) {
	pt := e.part
	for _, v := range s.touched {
		ov := pt.VertOwner(int(v))
		if ov == s.id {
			continue
		}
		s.outIDs[ov] = append(s.outIDs[ov], v)
		s.outVals[ov] = append(s.outVals[ov], s.acc[v])
	}
	for j := 0; j < e.P; j++ {
		if j == s.id {
			continue
		}
		e.mesh[s.id][j] <- payload{vals: s.outVals[j], ids: s.outIDs[j]}
		if len(s.outVals[j]) > 0 {
			s.msgs++
			s.bytes += int64(8*len(s.outVals[j]) + 4*len(s.outIDs[j]))
		}
	}
	for j := 0; j < e.P; j++ {
		if j == s.id {
			continue
		}
		p := <-e.mesh[j][s.id]
		for i, v := range p.ids {
			apply(v, p.vals[i])
		}
	}
}

// TreeFlow mirrors vtree.TreeFlowWS on tree k: route cap(e) along the
// tree for every endpoint pair and write the absolute subtree loads
// into out (len N), with out[root] = 0. The edge list is split
// contiguously across shards; LCA delta contributions are exchanged to
// vertex owners (exact integers — order-free), then the bottom-up
// sweep runs level-synchronously.
func (e *Engine) TreeFlow(k int, edges []vtree.EdgeEndpoint, out []float64) Cost {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := e.trees[k]
	lca := t.EnsureLCA()
	var c Cost
	pt := e.part
	e.round(&c, func(id int) {
		s := e.sh[id]
		s.resetOut()
		s.clearSparse()
		lo, hi := id*len(edges)/e.P, (id+1)*len(edges)/e.P
		for _, ed := range edges[lo:hi] {
			if ed.U == ed.V {
				continue
			}
			a := lca.Query(ed.U, ed.V)
			s.touch(ed.U)
			s.acc[ed.U] += ed.Cap
			s.touch(ed.V)
			s.acc[ed.V] += ed.Cap
			s.touch(a)
			s.acc[a] -= 2 * ed.Cap
		}
		for v := pt.VertLo[id]; v < pt.VertHi[id]; v++ {
			out[v] = 0
		}
		for _, v := range s.touched {
			if pt.VertOwner(int(v)) == id {
				out[v] += s.acc[v]
			}
		}
		e.exchangeSparse(s, func(v int32, val float64) { out[v] += val })
	})
	e.sweepUp(&c, []int{k}, [][]float64{out})
	out[t.Root] = 0
	e.finishCost(&c)
	return c
}

// PathDeltas mirrors vtree.PathDeltas on tree k: per-vertex summed
// Diff of every edit whose tree path crosses the (v, parent) edge.
// The edit list is split contiguously across shards; path walks run
// against the replicated static Parent/LCA tables and the per-vertex
// sums are exchanged to owners. It returns the dirty vertices sorted
// ascending (the sequential path reports first-touch order; the set
// and the delta values are identical) and writes delta[v] for exactly
// those vertices.
func (e *Engine) PathDeltas(k int, edits []vtree.DeltaEdit, delta []float64) ([]int, Cost) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := e.trees[k]
	lca := t.EnsureLCA()
	var c Cost
	pt := e.part
	e.round(&c, func(id int) {
		s := e.sh[id]
		s.resetOut()
		s.clearSparse()
		s.dirtyOut = s.dirtyOut[:0]
		lo, hi := id*len(edits)/e.P, (id+1)*len(edits)/e.P
		for _, ed := range edits[lo:hi] {
			if ed.U == ed.V || ed.Diff == 0 {
				continue
			}
			a := lca.Query(ed.U, ed.V)
			for x := ed.U; x != a; x = t.Parent[x] {
				s.touch(x)
				s.acc[x] += ed.Diff
			}
			for x := ed.V; x != a; x = t.Parent[x] {
				s.touch(x)
				s.acc[x] += ed.Diff
			}
		}
		for _, v := range s.touched {
			if pt.VertOwner(int(v)) == id {
				s.dirtyOut = append(s.dirtyOut, v)
				delta[v] = s.acc[v]
			}
		}
		e.exchangeSparse(s, func(v int32, val float64) {
			if !s.mark[v] {
				// First touch arrived by message: the local walk never
				// reached v, so its delta slot is stale — overwrite.
				s.mark[v] = true
				s.touched = append(s.touched, v)
				s.dirtyOut = append(s.dirtyOut, v)
				delta[v] = val
				return
			}
			delta[v] += val
		})
		slices.Sort(s.dirtyOut)
	})
	var dirty []int
	for _, s := range e.sh {
		for _, v := range s.dirtyOut {
			dirty = append(dirty, int(v))
		}
	}
	e.finishCost(&c)
	return dirty, c
}
