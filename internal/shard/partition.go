// Package shard executes the solver's per-iteration operators —
// soft-max gradient, divergence, the R/Rᵀ tree sweeps, and the
// vtree.TreeFlow / PathDeltas primitives — across P shards, each a
// goroutine with private mirrors of the boundary state it does not
// own, exchanging typed messages over a channel mesh under a
// synchronous round barrier (DESIGN.md §13). The engine measures what
// internal/congest otherwise only accounts: rounds of synchronous
// exchange, messages, and payload bytes per operator application.
//
// Determinism contract: every operator produces results bit-identical
// to the single-address-space path at every (P, worker-count)
// combination. Three mechanisms carry the proof:
//
//   - Shard ownership ranges are unions of whole par.Grid chunks, and
//     the coordinator folds gathered chunk partials in global chunk
//     order — literally the same float expression par.Sum/par.Max
//     evaluate.
//   - Tree sweeps run level-synchronously with statically scheduled
//     application order (descending child position, the sequential
//     sweep's order), so each accumulator sees the same additions in
//     the same order.
//   - TreeFlow/PathDeltas contributions are integer-valued in the
//     solver's capacity regime, where float64 addition is exact and
//     therefore order-free.
package shard

import (
	"fmt"

	"distflow/internal/par"
)

// Partition assigns contiguous vertex and edge ranges to P shards.
// Both splits are aligned to the canonical par.Grid chunk boundaries:
// a shard owns whole chunks, never a fraction of one, so any chunked
// reduction the baseline performs can be reproduced exactly from
// per-shard partials. When there are fewer chunks than shards, the
// trailing shards own every chunk and the leading shards own nothing —
// they still participate in every round barrier.
type Partition struct {
	P    int
	N, M int

	// VertSize/VertChunks are par.Grid(N); EdgeSize/EdgeChunks par.Grid(M).
	VertSize, VertChunks int
	EdgeSize, EdgeChunks int

	// Shard k owns vertices [VertLo[k], VertHi[k]) — chunk indices
	// [VertChunkLo[k], VertChunkHi[k]) — and likewise for edges. The
	// two splits are independent: a vertex and its incident edges
	// usually live on different shards, which is exactly what the
	// boundary exchange is for.
	VertLo, VertHi           []int
	EdgeLo, EdgeHi           []int
	VertChunkLo, VertChunkHi []int
	EdgeChunkLo, EdgeChunkHi []int

	vertOwner []int8 // per vertex chunk
	edgeOwner []int8 // per edge chunk
}

// grid is par.Grid guarded for empty ranges (par reductions never see
// n <= 0; the partition can, e.g. an edgeless test graph).
func grid(n int) (size, count int) {
	if n <= 0 {
		return 1, 0
	}
	return par.Grid(n)
}

// splitChunks assigns chunk index ranges [lo[k], hi[k]) to P shards,
// evenly by the standard integer split.
func splitChunks(count, p int) (lo, hi []int) {
	lo = make([]int, p)
	hi = make([]int, p)
	for k := 0; k < p; k++ {
		lo[k] = k * count / p
		hi[k] = (k + 1) * count / p
	}
	return lo, hi
}

// NewPartition splits n vertices and m edges across p shards.
func NewPartition(n, m, p int) (*Partition, error) {
	if p < 1 || p > 64 {
		return nil, fmt.Errorf("shard: P must be in [1,64], got %d", p)
	}
	pt := &Partition{P: p, N: n, M: m}
	pt.VertSize, pt.VertChunks = grid(n)
	pt.EdgeSize, pt.EdgeChunks = grid(m)
	pt.VertChunkLo, pt.VertChunkHi = splitChunks(pt.VertChunks, p)
	pt.EdgeChunkLo, pt.EdgeChunkHi = splitChunks(pt.EdgeChunks, p)
	pt.VertLo = make([]int, p)
	pt.VertHi = make([]int, p)
	pt.EdgeLo = make([]int, p)
	pt.EdgeHi = make([]int, p)
	pt.vertOwner = make([]int8, pt.VertChunks)
	pt.edgeOwner = make([]int8, pt.EdgeChunks)
	for k := 0; k < p; k++ {
		pt.VertLo[k] = min(pt.VertChunkLo[k]*pt.VertSize, n)
		pt.VertHi[k] = min(pt.VertChunkHi[k]*pt.VertSize, n)
		pt.EdgeLo[k] = min(pt.EdgeChunkLo[k]*pt.EdgeSize, m)
		pt.EdgeHi[k] = min(pt.EdgeChunkHi[k]*pt.EdgeSize, m)
		for c := pt.VertChunkLo[k]; c < pt.VertChunkHi[k]; c++ {
			pt.vertOwner[c] = int8(k)
		}
		for c := pt.EdgeChunkLo[k]; c < pt.EdgeChunkHi[k]; c++ {
			pt.edgeOwner[c] = int8(k)
		}
	}
	return pt, nil
}

// VertOwner returns the shard owning vertex v.
func (pt *Partition) VertOwner(v int) int { return int(pt.vertOwner[v/pt.VertSize]) }

// EdgeOwner returns the shard owning edge e.
func (pt *Partition) EdgeOwner(e int) int { return int(pt.edgeOwner[e/pt.EdgeSize]) }

// VertCount returns the number of vertices shard k owns.
func (pt *Partition) VertCount(k int) int { return pt.VertHi[k] - pt.VertLo[k] }

// EdgeCount returns the number of edges shard k owns.
func (pt *Partition) EdgeCount(k int) int { return pt.EdgeHi[k] - pt.EdgeLo[k] }
