package shard

import (
	"math"
	"slices"
	"sync"

	"distflow/internal/graph"
	"distflow/internal/vtree"
)

// Cost is the measured communication bill of one engine operation:
// rounds is the number of barrier-synchronized supersteps (including
// compute-only steps — they occupy a slot of the synchronous schedule),
// messages the number of cross-shard payloads, and bytes their summed
// payload sizes (8 bytes per float64, 4 per int32 id).
type Cost struct {
	Rounds, Messages, Bytes int64
}

// Add accumulates another cost into c.
func (c *Cost) Add(o Cost) {
	c.Rounds += o.Rounds
	c.Messages += o.Messages
	c.Bytes += o.Bytes
}

// payload is one typed inter-shard message: a value vector, optionally
// paired with vertex ids for sparse scatter (TreeFlow/PathDeltas
// contributions). Dense exchanges (boundary mirrors, reductions) omit
// ids — both sides hold the same static schedule, so positions encode
// identity.
type payload struct {
	vals []float64
	ids  []int32
}

// shardState is the per-shard private memory: reusable outboxes toward
// every peer, mirrors of non-owned boundary state, and the message
// counters for the current operation.
type shardState struct {
	id int

	// outVals/outIDs[j] is the reusable send buffer toward peer j
	// (j == id models local delivery: read back directly, never
	// shipped, never counted). The round barrier makes reuse safe: a
	// receiver finishes reading within the superstep the payload was
	// sent in, and the sender only rewrites the buffer in a later
	// superstep.
	outVals [][]float64
	outIDs  [][]int32

	// fMirror/piMirror hold received boundary values of non-owned
	// edges/vertices. Only slots named by the static exchange lists are
	// ever valid; tests poison the rest to prove the access discipline.
	fMirror  []float64
	piMirror []float64

	// acc is dense per-vertex accumulation scratch for the sparse tree
	// operators (TreeFlow, PathDeltas); mark/touched track which slots
	// are live so the next operation clears only those.
	acc     []float64
	mark    []bool
	touched []int32
	// dirtyOut carries each shard's sorted owned dirty vertices out of
	// a PathDeltas round for the runner to concatenate.
	dirtyOut []int32

	// recvBufs indexes the current superstep's received value buffers
	// by source shard (reused across supersteps).
	recvBufs [][]float64

	msgs, bytes int64
}

func (s *shardState) resetOut() {
	for j := range s.outVals {
		s.outVals[j] = s.outVals[j][:0]
		s.outIDs[j] = s.outIDs[j][:0]
	}
}

// Engine runs P shard goroutines over a partitioned graph and a set of
// virtual trees, executing solver operators as sequences of
// barrier-synchronized supersteps. One operation runs at a time
// (engine.mu); concurrent callers serialize, which preserves the
// per-query determinism contract because every operation's result is a
// pure function of its inputs.
type Engine struct {
	g     *graph.Graph
	trees []*vtree.VTree
	scale [][]float64
	part  *Partition
	P     int

	// Immutable snapshots taken at construction so shard goroutines
	// never trigger a lazy Compact/Finalize on the shared graph.
	edges    []graph.Edge
	adj      [][]graph.Arc
	allTrees []int

	mu sync.Mutex

	cmd  []chan func(id int)
	done chan struct{}
	wg   sync.WaitGroup

	mesh [][]chan payload

	sh []*shardState

	sched []*sweepSched // per tree

	// edgeSend[i][j]: edges owned by i whose flow values shard j needs
	// to evaluate divergence at its vertices (ascending edge id).
	// vertSend[i][j]: vertices owned by i whose potentials shard j
	// needs to evaluate its edge gradients (ascending vertex id).
	edgeSend [][][]int32
	vertSend [][][]int32

	// partials is coordinator scratch for gathered chunk partials,
	// indexed by global chunk (or tree×chunk) position.
	partials []float64
	// coordVal carries the coordinator's folded scalar(s) to the
	// runner goroutine; the runner reads it only after the barrier.
	coordVal [2]float64

	maxH int

	closeOnce sync.Once
}

// coord is the fixed coordinator shard for gather/broadcast steps. It
// may own no chunks (P > chunk count); it still folds the partials.
const coord = 0

// NewEngine partitions g's vertices and edges across p shards and
// precomputes the boundary exchange lists and level-synchronous sweep
// schedules for the supplied trees (with their row scalings). The
// graph and trees must be immutable for the engine's lifetime — the
// epoch system guarantees that for published snapshots.
func NewEngine(g *graph.Graph, trees []*vtree.VTree, scale [][]float64, p int) (*Engine, error) {
	g.Finalize()
	g.Compact()
	part, err := NewPartition(g.N(), g.M(), p)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		g:     g,
		trees: trees,
		scale: scale,
		part:  part,
		P:     p,
		cmd:   make([]chan func(id int), p),
		done:  make(chan struct{}, p),
		mesh:  make([][]chan payload, p),
		sh:    make([]*shardState, p),
	}
	for i := 0; i < p; i++ {
		e.cmd[i] = make(chan func(id int))
		e.mesh[i] = make([]chan payload, p)
		for j := 0; j < p; j++ {
			if j != i {
				e.mesh[i][j] = make(chan payload, 1)
			}
		}
		e.sh[i] = &shardState{
			id:       i,
			outVals:  make([][]float64, p),
			outIDs:   make([][]int32, p),
			fMirror:  make([]float64, g.M()),
			piMirror: make([]float64, g.N()),
			acc:      make([]float64, g.N()),
			mark:     make([]bool, g.N()),
			recvBufs: make([][]float64, p),
		}
	}
	e.edges = g.Edges()
	e.adj = make([][]graph.Arc, g.N())
	for v := 0; v < g.N(); v++ {
		e.adj[v] = g.Adj(v)
	}
	e.allTrees = make([]int, len(trees))
	for k := range e.allTrees {
		e.allTrees[k] = k
	}
	e.buildBoundary()
	e.sched = make([]*sweepSched, len(trees))
	for k, t := range trees {
		e.sched[k] = buildSweepSched(t, part)
		if h := e.sched[k].H; h > e.maxH {
			e.maxH = h
		}
	}
	np := part.VertChunks
	if tp := len(trees) * part.VertChunks; tp > np {
		np = tp
	}
	if part.EdgeChunks > np {
		np = part.EdgeChunks
	}
	e.partials = make([]float64, np)
	for i := 0; i < p; i++ {
		e.wg.Add(1)
		go e.loop(i)
	}
	return e, nil
}

// Shards returns the number of shards.
func (e *Engine) Shards() int { return e.P }

// Partition returns the engine's vertex/edge partition.
func (e *Engine) Partition() *Partition { return e.part }

// Close stops the shard goroutines. The engine must be idle.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		for i := range e.cmd {
			close(e.cmd[i])
		}
		e.wg.Wait()
	})
}

func (e *Engine) loop(id int) {
	defer e.wg.Done()
	for fn := range e.cmd[id] {
		fn(id)
		e.done <- struct{}{}
	}
}

// round runs one superstep on all shards and blocks until every shard
// reaches the barrier. Shard bodies must not panic: an unwound shard
// would strand peers blocked on its messages. The operators validate
// inputs on the runner goroutine before the first round.
func (e *Engine) round(c *Cost, fn func(id int)) {
	for i := 0; i < e.P; i++ {
		e.cmd[i] <- fn
	}
	for i := 0; i < e.P; i++ {
		<-e.done
	}
	c.Rounds++
}

// finishCost folds the per-shard message counters into c and resets
// them. Called by the runner after the final barrier of an operation.
func (e *Engine) finishCost(c *Cost) {
	for _, s := range e.sh {
		c.Messages += s.msgs
		c.Bytes += s.bytes
		s.msgs, s.bytes = 0, 0
	}
}

// send ships shard s's outbox for peer j (no-op for self-delivery,
// which models local memory). Empty payloads are never sent — the
// static schedules tell the receiver exactly who ships.
func (e *Engine) send(s *shardState, j int) {
	if j == s.id {
		return
	}
	e.mesh[s.id][j] <- payload{vals: s.outVals[j], ids: s.outIDs[j]}
	s.msgs++
	s.bytes += int64(8*len(s.outVals[j]) + 4*len(s.outIDs[j]))
}

// recv returns the payload peer j sent to shard s this superstep; for
// j == s.id it returns s's own outbox (local delivery).
func (e *Engine) recv(s *shardState, j int) payload {
	if j == s.id {
		return payload{vals: s.outVals[j], ids: s.outIDs[j]}
	}
	return <-e.mesh[j][s.id]
}

// combineSum folds chunk partials exactly as par.Sum does — including
// the single-chunk shortcut, which returns the partial untouched.
func combineSum(partials []float64) float64 {
	if len(partials) == 1 {
		return partials[0]
	}
	s := 0.0
	for _, p := range partials {
		s += p
	}
	return s
}

// combineMax folds chunk partials exactly as par.Max does.
func combineMax(partials []float64) float64 {
	if len(partials) == 1 {
		return partials[0]
	}
	m := math.Inf(-1)
	for _, p := range partials {
		if p > m {
			m = p
		}
	}
	return m
}

// buildBoundary derives the static exchange lists from the edge list:
// for every edge whose endpoints' owners differ from the edge's owner,
// the edge owner ships the flow value to each vertex owner
// (divergence), and each vertex owner ships the endpoint potential to
// the edge owner (gradient). Lists are built in ascending edge order,
// then the vertex lists are deduplicated — both sides iterate the same
// slices, so positions encode identity and no ids travel.
func (e *Engine) buildBoundary() {
	p := e.P
	e.edgeSend = make([][][]int32, p)
	e.vertSend = make([][][]int32, p)
	for i := 0; i < p; i++ {
		e.edgeSend[i] = make([][]int32, p)
		e.vertSend[i] = make([][]int32, p)
	}
	pt := e.part
	edges := e.g.Edges()
	// vertMark[ow][oe] tracks the last vertex appended to dedup the
	// ascending-order append stream per (vertex owner, edge owner).
	for ei := range edges {
		oe := pt.EdgeOwner(ei)
		u, v := edges[ei].U, edges[ei].V
		ou, ov := pt.VertOwner(u), pt.VertOwner(v)
		if ou != oe {
			e.edgeSend[oe][ou] = appendDedup(e.edgeSend[oe][ou], int32(ei))
			e.vertSend[ou][oe] = append(e.vertSend[ou][oe], int32(u))
		}
		if ov != oe && ov != ou {
			e.edgeSend[oe][ov] = appendDedup(e.edgeSend[oe][ov], int32(ei))
		}
		if ov != oe {
			e.vertSend[ov][oe] = append(e.vertSend[ov][oe], int32(v))
		}
	}
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			e.vertSend[i][j] = sortDedup(e.vertSend[i][j])
		}
	}
}

func appendDedup(s []int32, x int32) []int32 {
	if n := len(s); n > 0 && s[n-1] == x {
		return s
	}
	return append(s, x)
}

// sortDedup sorts ascending and removes duplicates in place.
func sortDedup(s []int32) []int32 {
	if len(s) < 2 {
		return s
	}
	slices.Sort(s)
	out := s[:1]
	for _, x := range s[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
