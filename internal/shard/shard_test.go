package shard

import (
	"math"
	"math/rand"
	"testing"

	"distflow/internal/capprox"
	"distflow/internal/graph"
	"distflow/internal/numutil"
	"distflow/internal/par"
	"distflow/internal/vtree"
)

// shardCounts spans the interesting regimes: P=1 (degenerate, zero
// messages), P in the middle, and P=8 which at the test sizes exceeds
// the vertex chunk count, so leading shards (including the
// coordinator) own no vertices.
var shardCounts = []int{1, 2, 3, 4, 8}

type fixture struct {
	g     *graph.Graph
	trees []*vtree.VTree
	scale [][]float64
	apx   *capprox.Approximator
	rng   *rand.Rand
}

// randTree samples a random attachment tree rooted at 0: each vertex
// attaches to a uniformly random earlier vertex, yielding O(log n)
// height with wide levels — the shape the solver's sampled trees have.
func randTree(t *testing.T, n int, rng *rand.Rand) *vtree.VTree {
	t.Helper()
	parent := make([]int, n)
	capv := make([]float64, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = rng.Intn(v)
		capv[v] = float64(1 + rng.Intn(64))
	}
	vt, err := vtree.New(0, parent, capv)
	if err != nil {
		t.Fatalf("vtree.New: %v", err)
	}
	return vt
}

// pathTree builds a depth-(n−1) chain, the worst case for the
// level-synchronous sweeps (one superstep per vertex).
func pathTree(t *testing.T, n int) *vtree.VTree {
	t.Helper()
	parent := make([]int, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = v - 1
	}
	vt, err := vtree.New(0, parent, nil)
	if err != nil {
		t.Fatalf("vtree.New: %v", err)
	}
	return vt
}

// newFixture builds a connected random graph on n vertices with k
// random trees and positive row scalings (a few zero-scale slots to
// exercise the excluded-row path).
func newFixture(t *testing.T, n, k int, seed int64) *fixture {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.CapUniform(graph.GNPSparse(n, 4/float64(n), rng), 1000, rng)
	g.Finalize()
	fx := &fixture{g: g, rng: rng}
	for i := 0; i < k; i++ {
		fx.trees = append(fx.trees, randTree(t, n, rng))
	}
	for range fx.trees {
		sc := make([]float64, n)
		for v := range sc {
			sc[v] = 0.5 + rng.Float64()
			if rng.Intn(97) == 0 {
				sc[v] = 0
			}
		}
		fx.scale = append(fx.scale, sc)
	}
	fx.apx = &capprox.Approximator{Trees: fx.trees, Scale: fx.scale}
	return fx
}

func (fx *fixture) engine(t *testing.T, p int) *Engine {
	t.Helper()
	e, err := NewEngine(fx.g, fx.trees, fx.scale, p)
	if err != nil {
		t.Fatalf("NewEngine(P=%d): %v", p, err)
	}
	t.Cleanup(e.Close)
	return e
}

func (fx *fixture) randEdgeVec() []float64 {
	f := make([]float64, fx.g.M())
	for i := range f {
		f[i] = fx.rng.NormFloat64() * 3
	}
	return f
}

func (fx *fixture) randVertVec() []float64 {
	b := make([]float64, fx.g.N())
	for i := range b {
		b[i] = fx.rng.NormFloat64()
	}
	return b
}

// poisonMirrors fills every shard's boundary mirrors with NaN. The
// exchange rounds must overwrite every slot an operator reads; a NaN
// leaking into a result proves a read outside the static schedule.
func poisonMirrors(e *Engine) {
	for _, s := range e.sh {
		for i := range s.fMirror {
			s.fMirror[i] = math.NaN()
		}
		for i := range s.piMirror {
			s.piMirror[i] = math.NaN()
		}
	}
}

func sameF64(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("%s: got %v (%#x), want %v (%#x)", what, got,
			math.Float64bits(got), want, math.Float64bits(want))
	}
}

func sameVec(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: [%d] got %v, want %v", what, i, got[i], want[i])
		}
	}
}

func TestPartitionInvariants(t *testing.T) {
	for _, tc := range []struct{ n, m, p int }{
		{5000, 15000, 3}, {5000, 15000, 8}, {100, 40, 8}, {1, 0, 4}, {2048 * 9, 2048 * 5, 5},
	} {
		pt, err := NewPartition(tc.n, tc.m, tc.p)
		if err != nil {
			t.Fatalf("NewPartition(%v): %v", tc, err)
		}
		prevHi := 0
		for k := 0; k < tc.p; k++ {
			if pt.VertLo[k] != prevHi {
				t.Fatalf("%v: shard %d vert range not contiguous", tc, k)
			}
			if pt.VertLo[k]%pt.VertSize != 0 && pt.VertLo[k] != tc.n {
				t.Fatalf("%v: shard %d vert lo %d not chunk aligned", tc, k, pt.VertLo[k])
			}
			prevHi = pt.VertHi[k]
			for v := pt.VertLo[k]; v < pt.VertHi[k]; v++ {
				if pt.VertOwner(v) != k {
					t.Fatalf("%v: VertOwner(%d) = %d, want %d", tc, v, pt.VertOwner(v), k)
				}
			}
			for e := pt.EdgeLo[k]; e < pt.EdgeHi[k]; e++ {
				if pt.EdgeOwner(e) != k {
					t.Fatalf("%v: EdgeOwner(%d) = %d, want %d", tc, e, pt.EdgeOwner(e), k)
				}
			}
		}
		if prevHi != tc.n {
			t.Fatalf("%v: vert ranges cover %d of %d", tc, prevHi, tc.n)
		}
	}
	if _, err := NewPartition(10, 10, 0); err == nil {
		t.Fatal("P=0 accepted")
	}
	if _, err := NewPartition(10, 10, 65); err == nil {
		t.Fatal("P=65 accepted")
	}
}

func TestSoftMaxGradScaledEquivalence(t *testing.T) {
	fx := newFixture(t, 5000, 1, 1)
	f := fx.randEdgeVec()
	sc := make([]float64, fx.g.M())
	for i := range sc {
		sc[i] = 0.1 + fx.rng.Float64()
	}
	wantGrad := make([]float64, fx.g.M())
	want := numutil.SoftMaxGradScaledPar(f, sc, wantGrad)
	for _, p := range shardCounts {
		e := fx.engine(t, p)
		grad := make([]float64, fx.g.M())
		got, cost := e.SoftMaxGradScaled(f, sc, grad)
		sameF64(t, "smax value", got, want)
		sameVec(t, "smax grad", grad, wantGrad)
		if p == 1 && (cost.Messages != 0 || cost.Bytes != 0) {
			t.Errorf("P=1 smax cost %+v, want zero messages", cost)
		}
		if cost.Rounds != 3 {
			t.Errorf("P=%d smax rounds = %d, want 3", p, cost.Rounds)
		}
	}
}

func TestResidualEquivalence(t *testing.T) {
	fx := newFixture(t, 5000, 1, 2)
	f := fx.randEdgeVec()
	bs := fx.randVertVec()
	wantDiv := make([]float64, fx.g.N())
	fx.g.DivergenceInto(f, wantDiv)
	wantR := make([]float64, fx.g.N())
	for v := range wantR {
		wantR[v] = bs[v] - wantDiv[v]
	}
	for _, p := range shardCounts {
		e := fx.engine(t, p)
		poisonMirrors(e)
		div := make([]float64, fx.g.N())
		r := make([]float64, fx.g.N())
		cost := e.Residual(f, bs, div, r)
		sameVec(t, "div", div, wantDiv)
		sameVec(t, "r", r, wantR)
		if p == 1 && cost.Messages != 0 {
			t.Errorf("P=1 residual messages = %d", cost.Messages)
		}
		// Plain divergence (r == nil).
		div2 := make([]float64, fx.g.N())
		e.Residual(f, nil, div2, nil)
		sameVec(t, "div (r=nil)", div2, wantDiv)
	}
}

func TestPotentialRTEquivalence(t *testing.T) {
	fx := newFixture(t, 5000, 3, 3)
	r := fx.randVertVec()
	ws := fx.apx.NewEvalScratch()
	wantPi := make([]float64, fx.g.N())
	want := fx.apx.PotentialRT(r, 0.75, ws, wantPi)
	for _, p := range shardCounts {
		e := fx.engine(t, p)
		sub := make([][]float64, len(fx.trees))
		pt := make([][]float64, len(fx.trees))
		for k := range sub {
			sub[k] = make([]float64, fx.g.N())
			pt[k] = make([]float64, fx.g.N())
		}
		pi := make([]float64, fx.g.N())
		got, cost := e.PotentialRT(r, 0.75, sub, pt, pi)
		sameF64(t, "phi2", got, want)
		sameVec(t, "pi", pi, wantPi)
		if p == 1 && cost.Messages != 0 {
			t.Errorf("P=1 PotentialRT messages = %d", cost.Messages)
		}
		if cost.Rounds < 5 {
			t.Errorf("P=%d PotentialRT rounds = %d, implausibly few", p, cost.Rounds)
		}
	}
}

func TestGradientDeltaEquivalence(t *testing.T) {
	fx := newFixture(t, 5000, 1, 4)
	m := fx.g.M()
	w1 := fx.randEdgeVec()
	invCap := make([]float64, m)
	for i := range invCap {
		invCap[i] = 1 / float64(1+fx.rng.Intn(1000))
	}
	pi := fx.randVertVec()
	const ta = 1.5
	// The baseline is sherman's fused gradient/duality-gap reduction.
	edges := fx.g.Edges()
	wantGrad := make([]float64, m)
	want := par.Sum(m, func(lo, hi int) float64 {
		d := 0.0
		for ei := lo; ei < hi; ei++ {
			ed := edges[ei]
			gr := w1[ei]*invCap[ei] + ta*(pi[ed.V]-pi[ed.U])
			wantGrad[ei] = gr
			d += float64(ed.Cap) * math.Abs(gr)
		}
		return d
	})
	for _, p := range shardCounts {
		e := fx.engine(t, p)
		poisonMirrors(e)
		grad := make([]float64, m)
		got, cost := e.GradientDelta(w1, invCap, ta, pi, grad)
		sameF64(t, "delta", got, want)
		sameVec(t, "grad", grad, wantGrad)
		if p == 1 && cost.Messages != 0 {
			t.Errorf("P=1 GradientDelta messages = %d", cost.Messages)
		}
	}
}

func TestNormRbEquivalence(t *testing.T) {
	fx := newFixture(t, 5000, 3, 5)
	b := fx.randVertVec()
	want := fx.apx.NormRb(b)
	for _, p := range shardCounts {
		e := fx.engine(t, p)
		sub := make([][]float64, len(fx.trees))
		for k := range sub {
			sub[k] = make([]float64, fx.g.N())
		}
		got, _ := e.NormRb(b, sub)
		sameF64(t, "normRb", got, want)
	}
}

func TestTreeFlowEquivalence(t *testing.T) {
	fx := newFixture(t, 5000, 2, 6)
	var pairs []vtree.EdgeEndpoint
	for i := 0; i < 4000; i++ {
		u, v := fx.rng.Intn(fx.g.N()), fx.rng.Intn(fx.g.N())
		if i%97 == 0 {
			v = u // self-pair: must route nowhere
		}
		pairs = append(pairs, vtree.EdgeEndpoint{U: u, V: v, Cap: float64(1 + fx.rng.Intn(1000))})
	}
	for k, tr := range fx.trees {
		want := append([]float64(nil), tr.TreeFlowWS(pairs, &vtree.TreeFlowScratch{})...)
		for _, p := range shardCounts {
			e := fx.engine(t, p)
			out := make([]float64, fx.g.N())
			cost := e.TreeFlow(k, pairs, out)
			sameVec(t, "tree flow", out, want)
			if p == 1 && cost.Messages != 0 {
				t.Errorf("P=1 TreeFlow messages = %d", cost.Messages)
			}
		}
	}
}

func TestPathDeltasEquivalence(t *testing.T) {
	fx := newFixture(t, 5000, 2, 7)
	var edits []vtree.DeltaEdit
	for i := 0; i < 600; i++ {
		u, v := fx.rng.Intn(fx.g.N()), fx.rng.Intn(fx.g.N())
		diff := float64(fx.rng.Intn(21) - 10)
		if i%83 == 0 {
			v = u
		}
		edits = append(edits, vtree.DeltaEdit{U: u, V: v, Diff: diff})
	}
	for k, tr := range fx.trees {
		wantDirty, wantDelta := tr.PathDeltas(edits, &vtree.DeltaScratch{})
		wantSet := make(map[int]float64, len(wantDirty))
		for _, v := range wantDirty {
			wantSet[v] = wantDelta[v]
		}
		for _, p := range shardCounts {
			e := fx.engine(t, p)
			delta := make([]float64, fx.g.N())
			dirty, _ := e.PathDeltas(k, edits, delta)
			if len(dirty) != len(wantDirty) {
				t.Fatalf("P=%d tree %d: %d dirty, want %d", p, k, len(dirty), len(wantDirty))
			}
			for i, v := range dirty {
				if i > 0 && dirty[i-1] >= v {
					t.Fatalf("P=%d tree %d: dirty not sorted ascending at %d", p, k, i)
				}
				wv, ok := wantSet[v]
				if !ok {
					t.Fatalf("P=%d tree %d: spurious dirty vertex %d", p, k, v)
				}
				if math.Float64bits(delta[v]) != math.Float64bits(wv) {
					t.Fatalf("P=%d tree %d: delta[%d] = %v, want %v", p, k, v, delta[v], wv)
				}
			}
		}
	}
}

// TestPathTreeSweeps drives the sweeps through a depth-299 chain — one
// superstep per level, every level a single vertex — across shard
// counts, against the sequential sweeps.
func TestPathTreeSweeps(t *testing.T) {
	const n = 300
	rng := rand.New(rand.NewSource(8))
	g := graph.CapUniform(graph.GNPSparse(n, 4/float64(n), rng), 100, rng)
	g.Finalize()
	tr := pathTree(t, n)
	scale := make([]float64, n)
	for i := range scale {
		scale[i] = 0.5 + rng.Float64()
	}
	apx := &capprox.Approximator{Trees: []*vtree.VTree{tr}, Scale: [][]float64{scale}}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	wantNorm := apx.NormRb(b)
	ws := apx.NewEvalScratch()
	wantPi := make([]float64, n)
	wantPhi := apx.PotentialRT(b, 2, ws, wantPi)
	for _, p := range shardCounts {
		e, err := NewEngine(g, apx.Trees, apx.Scale, p)
		if err != nil {
			t.Fatal(err)
		}
		sub := [][]float64{make([]float64, n)}
		pt := [][]float64{make([]float64, n)}
		gotNorm, _ := e.NormRb(b, sub)
		sameF64(t, "chain normRb", gotNorm, wantNorm)
		pi := make([]float64, n)
		gotPhi, cost := e.PotentialRT(b, 2, sub, pt, pi)
		sameF64(t, "chain phi2", gotPhi, wantPhi)
		sameVec(t, "chain pi", pi, wantPi)
		// 2·(n−1) sweep supersteps plus the five compute/reduce rounds.
		if want := int64(2*(n-1) + 5); cost.Rounds != want {
			t.Errorf("P=%d chain PotentialRT rounds = %d, want %d", p, cost.Rounds, want)
		}
		e.Close()
	}
}

// TestRemoteNeighborhood pins the satellite edge case: a vertex whose
// entire neighborhood lives on another shard. With n > one chunk and
// every edge incident to vertex 0 owned by the last shard, shard 0
// evaluates vertex 0's divergence purely from received mirrors.
func TestRemoteNeighborhood(t *testing.T) {
	const n = 4100 // two vertex chunks
	g := graph.New(n)
	// Edges are added last so their ids land in the top edge chunks,
	// away from vertex 0's shard at P=2.
	rng := rand.New(rand.NewSource(9))
	for v := 1; v < n-1; v++ {
		g.AddEdge(v, v+1, int64(1+rng.Intn(50)))
	}
	for i := 0; i < 8; i++ {
		g.AddEdge(0, n-1-i, int64(1+rng.Intn(50)))
	}
	g.Finalize()
	f := make([]float64, g.M())
	for i := range f {
		f[i] = rng.NormFloat64()
	}
	wantDiv := make([]float64, n)
	g.DivergenceInto(f, wantDiv)
	for _, p := range []int{2, 4, 8} {
		e, err := NewEngine(g, nil, nil, p)
		if err != nil {
			t.Fatal(err)
		}
		if e.Partition().VertOwner(0) == e.Partition().EdgeOwner(g.M()-1) {
			t.Fatalf("P=%d: construction failed to separate vertex 0 from its edges", p)
		}
		poisonMirrors(e)
		div := make([]float64, n)
		e.Residual(f, nil, div, nil)
		sameVec(t, "remote-neighborhood div", div, wantDiv)
		e.Close()
	}
}

// TestMoreShardsThanChunks pins the other satellite edge case: a graph
// small enough that every vertex fits one chunk while P=8 shards spin.
// The trailing shard owns everything; the coordinator (shard 0) owns
// nothing and still folds the reductions.
func TestMoreShardsThanChunks(t *testing.T) {
	fx := newFixture(t, 150, 2, 10)
	const p = 8
	e := fx.engine(t, p)
	if e.Partition().VertCount(0) != 0 {
		t.Fatal("expected an empty coordinator shard")
	}
	f := fx.randEdgeVec()
	sc := make([]float64, fx.g.M())
	for i := range sc {
		sc[i] = 0.1 + fx.rng.Float64()
	}
	wantGrad := make([]float64, fx.g.M())
	want := numutil.SoftMaxGradScaledPar(f, sc, wantGrad)
	grad := make([]float64, fx.g.M())
	got, _ := e.SoftMaxGradScaled(f, sc, grad)
	sameF64(t, "tiny smax", got, want)
	sameVec(t, "tiny smax grad", grad, wantGrad)

	b := fx.randVertVec()
	sub := make([][]float64, len(fx.trees))
	pt := make([][]float64, len(fx.trees))
	for k := range sub {
		sub[k] = make([]float64, fx.g.N())
		pt[k] = make([]float64, fx.g.N())
	}
	ws := fx.apx.NewEvalScratch()
	wantPi := make([]float64, fx.g.N())
	wantPhi := fx.apx.PotentialRT(b, 3, ws, wantPi)
	pi := make([]float64, fx.g.N())
	gotPhi, _ := e.PotentialRT(b, 3, sub, pt, pi)
	sameF64(t, "tiny phi2", gotPhi, wantPhi)
	sameVec(t, "tiny pi", pi, wantPi)

	gotNorm, _ := e.NormRb(b, sub)
	sameF64(t, "tiny normRb", gotNorm, fx.apx.NormRb(b))
}

// TestCostAccounting checks the measured-complexity bookkeeping: at
// P>1 a boundary exchange reports nonzero messages with byte counts
// divisible by the wire sizes, and repeated runs report identical
// costs (the schedule is static).
func TestCostAccounting(t *testing.T) {
	fx := newFixture(t, 5000, 1, 11)
	f := fx.randEdgeVec()
	bs := fx.randVertVec()
	e := fx.engine(t, 4)
	div := make([]float64, fx.g.N())
	r := make([]float64, fx.g.N())
	c1 := e.Residual(f, bs, div, r)
	c2 := e.Residual(f, bs, div, r)
	if c1 != c2 {
		t.Errorf("residual cost not reproducible: %+v then %+v", c1, c2)
	}
	if c1.Messages == 0 || c1.Bytes == 0 {
		t.Errorf("P=4 residual cost %+v, want nonzero traffic", c1)
	}
	if c1.Bytes%8 != 0 {
		t.Errorf("residual bytes %d not a multiple of the float64 wire size", c1.Bytes)
	}
	if c1.Rounds != 1 {
		t.Errorf("residual rounds = %d, want 1", c1.Rounds)
	}
}
