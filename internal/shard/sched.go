package shard

import (
	"distflow/internal/vtree"
)

// The tree sweeps run level-synchronously: one superstep per depth
// level, bottom-up for SubtreeSums (Rᵀ… no — R's subtree aggregation)
// and top-down for RootPathSums. The sequential sweeps add child
// contributions to each parent in descending topological-order
// position; because every child of a depth-d vertex sits at depth d+1,
// processing whole levels preserves exactly that per-parent addition
// order as long as each receiver applies its incoming contributions
// sorted by descending child position — which the static schedule
// below precomputes, so the runtime does no sorting at all.
//
// Self-delivery is uniform: contributions to a parent the shard itself
// owns flow through the shard's own outbox (never shipped, never
// counted), so the apply walk reads every contribution from a buffer
// with one per-source running counter.

// sweepSched is the per-tree schedule; sh[k] is shard k's share.
type sweepSched struct {
	H  int
	sh []*shardSweep
}

// shardSweep is one shard's statically scheduled share of one tree's
// sweeps, concatenated by depth level (level l spans [off[l], off[l+1])
// of the corresponding flat arrays).
type shardSweep struct {
	// verts lists the owned vertices per level in ascending topological
	// position; owner[i] is the owner of verts[i]'s parent. The
	// bottom-up traversal iterates a level's segment in reverse
	// (descending position); the top-down application iterates it
	// forward.
	verts   []int32
	owner   []int8
	vertOff []int32 // len H+2

	// apply lists the bottom-up contributions to owned parents, per
	// level in descending child position — the sequential sweep's
	// per-parent addition order.
	applyParent []int32
	applySrc    []int8
	applyOff    []int32 // len H+2

	// send[j] lists, per level, the parent vertices whose values this
	// shard ships to peer j during the top-down sweep, in j's traversal
	// order; sendOff[j] is its level offset table (nil when no traffic
	// toward j).
	send    [][]int32
	sendOff [][]int32

	// upRecv/dnRecv are per-level bitmasks of peers this shard expects
	// a payload from (bit id = own outbox, checked separately).
	upRecv []uint64
	dnRecv []uint64
}

func buildSweepSched(t *vtree.VTree, pt *Partition) *sweepSched {
	n := t.N()
	H := t.Height()
	order := t.Order()
	P := pt.P
	sc := &sweepSched{H: H, sh: make([]*shardSweep, P)}

	// Counting pass: per (shard, level) traversal and apply entries,
	// per (shard, peer, level) top-down send entries.
	vertCnt := make([][]int32, P)
	applyCnt := make([][]int32, P)
	sendCnt := make([][][]int32, P)
	for k := 0; k < P; k++ {
		vertCnt[k] = make([]int32, H+1)
		applyCnt[k] = make([]int32, H+1)
		sendCnt[k] = make([][]int32, P)
	}
	for i := 1; i < n; i++ {
		v := order[i]
		l := t.Depth[v]
		k := pt.VertOwner(v)
		kp := pt.VertOwner(t.Parent[v])
		vertCnt[k][l]++
		applyCnt[kp][l]++
		if sendCnt[kp][k] == nil {
			sendCnt[kp][k] = make([]int32, H+1)
		}
		sendCnt[kp][k][l]++
	}

	// Allocation + offset tables.
	cur := make([]*shardSweep, P)
	vertPos := make([][]int32, P)
	applyPos := make([][]int32, P)
	sendPos := make([][][]int32, P)
	for k := 0; k < P; k++ {
		ss := &shardSweep{
			vertOff:  make([]int32, H+2),
			applyOff: make([]int32, H+2),
			send:     make([][]int32, P),
			sendOff:  make([][]int32, P),
			upRecv:   make([]uint64, H+1),
			dnRecv:   make([]uint64, H+1),
		}
		var vt, ap int32
		for l := 0; l <= H; l++ {
			ss.vertOff[l] = vt
			ss.applyOff[l] = ap
			vt += vertCnt[k][l]
			ap += applyCnt[k][l]
		}
		ss.vertOff[H+1] = vt
		ss.applyOff[H+1] = ap
		ss.verts = make([]int32, vt)
		ss.owner = make([]int8, vt)
		ss.applyParent = make([]int32, ap)
		ss.applySrc = make([]int8, ap)
		sendPos[k] = make([][]int32, P)
		for j := 0; j < P; j++ {
			cnt := sendCnt[k][j]
			if cnt == nil {
				continue
			}
			off := make([]int32, H+2)
			var tot int32
			for l := 0; l <= H; l++ {
				off[l] = tot
				tot += cnt[l]
			}
			off[H+1] = tot
			ss.sendOff[j] = off
			ss.send[j] = make([]int32, tot)
			sendPos[k][j] = append([]int32(nil), off[:H+1]...)
		}
		sc.sh[k] = ss
		cur[k] = ss
		vertPos[k] = append([]int32(nil), ss.vertOff[:H+1]...)
		applyPos[k] = append([]int32(nil), ss.applyOff[:H+1]...)
	}

	// Fill pass 1 (ascending position): traversal lists and top-down
	// send lists — both keyed to the receiver's ascending order.
	for i := 1; i < n; i++ {
		v := order[i]
		l := t.Depth[v]
		p := t.Parent[v]
		k := pt.VertOwner(v)
		kp := pt.VertOwner(p)
		ss := cur[k]
		pos := vertPos[k][l]
		ss.verts[pos] = int32(v)
		ss.owner[pos] = int8(kp)
		vertPos[k][l]++
		ss.dnRecv[l] |= 1 << uint(kp)
		sp := cur[kp]
		sp.send[k][sendPos[kp][k][l]] = int32(p)
		sendPos[kp][k][l]++
	}
	// Fill pass 2 (descending position): bottom-up apply lists in the
	// sequential sweep's per-parent addition order.
	for i := n - 1; i >= 1; i-- {
		v := order[i]
		l := t.Depth[v]
		p := t.Parent[v]
		k := pt.VertOwner(v)
		kp := pt.VertOwner(p)
		ss := cur[kp]
		pos := applyPos[kp][l]
		ss.applyParent[pos] = int32(p)
		ss.applySrc[pos] = int8(k)
		applyPos[kp][l]++
		ss.upRecv[l] |= 1 << uint(k)
	}
	return sc
}

// sweepUpLevel executes one bottom-up superstep at level lvl for the
// trees ts with accumulators acc (aligned with ts): traverse owned
// vertices at this depth routing each value to its parent's owner,
// ship, then apply received contributions in descending child
// position.
func (e *Engine) sweepUpLevel(id, lvl int, ts []int, acc [][]float64) {
	s := e.sh[id]
	s.resetOut()
	for ti, k := range ts {
		if lvl > e.sched[k].H {
			continue
		}
		ss := e.sched[k].sh[id]
		lo, hi := ss.vertOff[lvl], ss.vertOff[lvl+1]
		a := acc[ti]
		for i := hi - 1; i >= lo; i-- {
			d := ss.owner[i]
			s.outVals[d] = append(s.outVals[d], a[ss.verts[i]])
		}
	}
	for j := 0; j < e.P; j++ {
		if j != id && len(s.outVals[j]) > 0 {
			e.send(s, j)
		}
	}
	bufs := e.recvMasked(s, lvl, ts, true)
	var base, ctr [64]int32
	for ti, k := range ts {
		if lvl > e.sched[k].H {
			continue
		}
		ss := e.sched[k].sh[id]
		lo, hi := ss.applyOff[lvl], ss.applyOff[lvl+1]
		a := acc[ti]
		for i := lo; i < hi; i++ {
			src := ss.applySrc[i]
			a[ss.applyParent[i]] += bufs[src][base[src]+ctr[src]]
			ctr[src]++
		}
		for j := 0; j < e.P; j++ {
			base[j] += ctr[j]
			ctr[j] = 0
		}
	}
}

// sweepDnLevel executes one top-down superstep at level lvl: ship each
// peer the parent values its vertices at this depth need (in the
// peer's traversal order), then add the parent value into each owned
// vertex.
func (e *Engine) sweepDnLevel(id, lvl int, ts []int, acc [][]float64) {
	s := e.sh[id]
	s.resetOut()
	for ti, k := range ts {
		if lvl > e.sched[k].H {
			continue
		}
		ss := e.sched[k].sh[id]
		a := acc[ti]
		for j := 0; j < e.P; j++ {
			off := ss.sendOff[j]
			if off == nil {
				continue
			}
			for _, pv := range ss.send[j][off[lvl]:off[lvl+1]] {
				s.outVals[j] = append(s.outVals[j], a[pv])
			}
		}
	}
	for j := 0; j < e.P; j++ {
		if j != id && len(s.outVals[j]) > 0 {
			e.send(s, j)
		}
	}
	bufs := e.recvMasked(s, lvl, ts, false)
	var base, ctr [64]int32
	for ti, k := range ts {
		if lvl > e.sched[k].H {
			continue
		}
		ss := e.sched[k].sh[id]
		lo, hi := ss.vertOff[lvl], ss.vertOff[lvl+1]
		a := acc[ti]
		for i := lo; i < hi; i++ {
			src := ss.owner[i]
			a[ss.verts[i]] += bufs[src][base[src]+ctr[src]]
			ctr[src]++
		}
		for j := 0; j < e.P; j++ {
			base[j] += ctr[j]
			ctr[j] = 0
		}
	}
}

// recvMasked receives this superstep's expected payloads (union of the
// per-tree level masks) and returns the value buffers indexed by
// source shard; the shard's own outbox stands in for source id.
func (e *Engine) recvMasked(s *shardState, lvl int, ts []int, up bool) [][]float64 {
	var mask uint64
	for _, k := range ts {
		if lvl > e.sched[k].H {
			continue
		}
		ss := e.sched[k].sh[s.id]
		if up {
			mask |= ss.upRecv[lvl]
		} else {
			mask |= ss.dnRecv[lvl]
		}
	}
	bufs := s.recvBufs[:e.P]
	for j := 0; j < e.P; j++ {
		if j == s.id {
			bufs[j] = s.outVals[j]
		} else if mask&(1<<uint(j)) != 0 {
			bufs[j] = e.recv(s, j).vals
		} else {
			bufs[j] = nil
		}
	}
	return bufs
}

// sweepUp runs a full bottom-up sweep (levels maxH…1) over the trees
// ts with accumulators acc.
func (e *Engine) sweepUp(c *Cost, ts []int, acc [][]float64) {
	maxH := 0
	for _, k := range ts {
		if h := e.sched[k].H; h > maxH {
			maxH = h
		}
	}
	for lvl := maxH; lvl >= 1; lvl-- {
		l := lvl
		e.round(c, func(id int) { e.sweepUpLevel(id, l, ts, acc) })
	}
}

// sweepDn runs a full top-down sweep (levels 1…maxH).
func (e *Engine) sweepDn(c *Cost, ts []int, acc [][]float64) {
	maxH := 0
	for _, k := range ts {
		if h := e.sched[k].H; h > maxH {
			maxH = h
		}
	}
	for lvl := 1; lvl <= maxH; lvl++ {
		l := lvl
		e.round(c, func(id int) { e.sweepDnLevel(id, l, ts, acc) })
	}
}
