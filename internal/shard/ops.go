package shard

import (
	"math"
)

// The per-iteration solver operators. Each mirrors one baseline
// routine loop-for-loop; the comments name the reference. All of them
// serialize on engine.mu — results are pure functions of the inputs,
// so serialization cannot affect values, only wall time.

// chunkRange returns the [lo,hi) element range of grid chunk c.
func chunkRange(c, size, n int) (lo, hi int) {
	lo = c * size
	hi = lo + size
	if hi > n {
		hi = n
	}
	return lo, hi
}

func (e *Engine) edgeActive(k int) bool {
	return e.part.EdgeChunkHi[k] > e.part.EdgeChunkLo[k]
}

func (e *Engine) vertActive(k int) bool {
	return e.part.VertChunkHi[k] > e.part.VertChunkLo[k]
}

// bcast ships val from the coordinator to every active peer; callers
// on the receiving side pick it up with recvScalar.
func (e *Engine) bcast(s *shardState, val float64, active func(int) bool) {
	for j := 0; j < e.P; j++ {
		if j == s.id || !active(j) {
			continue
		}
		s.outVals[j] = append(s.outVals[j][:0], val)
		e.send(s, j)
	}
}

// gatherPartials (coordinator only) assembles the per-chunk partials
// shipped by every active shard into e.partials at global chunk
// positions.
func (e *Engine) gatherPartials(s *shardState, chunkLo, chunkHi []int) {
	for j := 0; j < e.P; j++ {
		if chunkHi[j] <= chunkLo[j] {
			continue
		}
		copy(e.partials[chunkLo[j]:chunkHi[j]], e.recv(s, j).vals)
	}
}

// gatherTreePartials assembles per-(tree, chunk) partials: shard j
// ships trees × ownedChunks values grouped by tree; the coordinator
// scatters them to e.partials[t*VertChunks + chunk].
func (e *Engine) gatherTreePartials(s *shardState, trees int) {
	pt := e.part
	for j := 0; j < e.P; j++ {
		cnt := pt.VertChunkHi[j] - pt.VertChunkLo[j]
		if cnt <= 0 {
			continue
		}
		vals := e.recv(s, j).vals
		for t := 0; t < trees; t++ {
			copy(e.partials[t*pt.VertChunks+pt.VertChunkLo[j]:t*pt.VertChunks+pt.VertChunkHi[j]],
				vals[t*cnt:(t+1)*cnt])
		}
	}
}

// SoftMaxGradScaled mirrors numutil.SoftMaxGradScaledPar(f, scale,
// grad): smax of the implicit vector y_i = f_i·scale_i with the
// gradient numerators and 1/sum scaling written into grad. Three
// rounds: max-shift gather, broadcast+exp-sum gather,
// broadcast+gradient scaling. Bit-identical because the per-chunk
// loop bodies are the same code over the same par.Grid chunks and the
// coordinator folds partials exactly as par.Max/par.Sum do.
func (e *Engine) SoftMaxGradScaled(f, scaleVec, grad []float64) (float64, Cost) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var c Cost
	n := len(f)
	if n == 0 {
		return math.Inf(-1), c
	}
	pt := e.part
	e.round(&c, func(id int) {
		s := e.sh[id]
		s.resetOut()
		for ch := pt.EdgeChunkLo[id]; ch < pt.EdgeChunkHi[id]; ch++ {
			lo, hi := chunkRange(ch, pt.EdgeSize, n)
			mm := 0.0
			for i := lo; i < hi; i++ {
				if a := math.Abs(f[i] * scaleVec[i]); a > mm {
					mm = a
				}
			}
			s.outVals[coord] = append(s.outVals[coord], mm)
		}
		if id != coord && len(s.outVals[coord]) > 0 {
			e.send(s, coord)
		}
		if id == coord {
			e.gatherPartials(s, pt.EdgeChunkLo, pt.EdgeChunkHi)
			e.coordVal[0] = combineMax(e.partials[:pt.EdgeChunks])
		}
	})
	m := e.coordVal[0]
	e.round(&c, func(id int) {
		s := e.sh[id]
		s.resetOut()
		mm := 0.0
		switch {
		case id == coord:
			mm = e.coordVal[0]
			e.bcast(s, mm, e.edgeActive)
		case e.edgeActive(id):
			mm = e.recv(s, coord).vals[0]
		}
		for ch := pt.EdgeChunkLo[id]; ch < pt.EdgeChunkHi[id]; ch++ {
			lo, hi := chunkRange(ch, pt.EdgeSize, n)
			ps := 0.0
			for i := lo; i < hi; i++ {
				y := f[i] * scaleVec[i]
				p := math.Exp(y - mm)
				q := math.Exp(-y - mm)
				ps += p + q
				grad[i] = p - q
			}
			s.outVals[coord] = append(s.outVals[coord], ps)
		}
		if id != coord && len(s.outVals[coord]) > 0 {
			e.send(s, coord)
		}
		if id == coord {
			e.gatherPartials(s, pt.EdgeChunkLo, pt.EdgeChunkHi)
			e.coordVal[1] = combineSum(e.partials[:pt.EdgeChunks])
		}
	})
	sum := e.coordVal[1]
	e.round(&c, func(id int) {
		s := e.sh[id]
		s.resetOut()
		sv := 0.0
		switch {
		case id == coord:
			sv = e.coordVal[1]
			e.bcast(s, sv, e.edgeActive)
		case e.edgeActive(id):
			sv = e.recv(s, coord).vals[0]
		}
		inv := 1 / sv
		for i := pt.EdgeLo[id]; i < pt.EdgeHi[id]; i++ {
			grad[i] *= inv
		}
	})
	e.finishCost(&c)
	return m + math.Log(sum), c
}

// Residual mirrors graph.DivergenceInto followed by the element-wise
// r = bs − div: one round ships every boundary flow value to the
// vertex owners that need it, then each shard sweeps its vertices in
// the baseline's per-vertex arc order. Pass r == nil for plain
// divergence.
func (e *Engine) Residual(f, bs, div, r []float64) Cost {
	e.mu.Lock()
	defer e.mu.Unlock()
	var c Cost
	pt := e.part
	e.round(&c, func(id int) {
		s := e.sh[id]
		s.resetOut()
		for j := 0; j < e.P; j++ {
			lst := e.edgeSend[id][j]
			if j == id || len(lst) == 0 {
				continue
			}
			for _, ei := range lst {
				s.outVals[j] = append(s.outVals[j], f[ei])
			}
			e.send(s, j)
		}
		for j := 0; j < e.P; j++ {
			lst := e.edgeSend[j][id]
			if j == id || len(lst) == 0 {
				continue
			}
			vals := e.recv(s, j).vals
			for i, ei := range lst {
				s.fMirror[ei] = vals[i]
			}
		}
		edges := e.edges
		for v := pt.VertLo[id]; v < pt.VertHi[id]; v++ {
			sum := 0.0
			for _, a := range e.adj[v] {
				fv := f[a.E]
				if pt.EdgeOwner(a.E) != id {
					fv = s.fMirror[a.E]
				}
				if edges[a.E].U == v {
					sum += fv
				} else {
					sum -= fv
				}
			}
			div[v] = sum
			if r != nil {
				r[v] = bs[v] - sum
			}
		}
	})
	e.finishCost(&c)
	return c
}

// PotentialRT mirrors capprox.Approximator.PotentialRT: φ₂ = smax(y)
// for y = ta·R·r with node potentials π = Rᵀ·∇smax(y), executed as
// level-synchronous tree sweeps over all trees at once with
// chunk-aligned reductions. sub and pt are the caller's per-tree
// scratch (capprox.EvalScratch.Sub/PT); pi receives the potentials.
func (e *Engine) PotentialRT(r []float64, ta float64, sub, pt [][]float64, pi []float64) (float64, Cost) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var c Cost
	K := len(e.trees)
	part := e.part
	ts := e.allTrees
	// Init: per-tree accumulators start as r on owned slots (the
	// collective equivalent of SubtreeSumsInto's copy).
	e.round(&c, func(id int) {
		lo, hi := part.VertLo[id], part.VertHi[id]
		for k := 0; k < K; k++ {
			copy(sub[k][lo:hi], r[lo:hi])
		}
	})
	e.sweepUp(&c, ts, sub)
	// Pass 1 scaling: y = ta·y/scale with per-tree |y| maxima; maxima
	// gather at the coordinator (max is exact, so any fold grouping
	// reproduces the sequential per-tree max).
	e.round(&c, func(id int) {
		s := e.sh[id]
		s.resetOut()
		lo, hi := part.VertLo[id], part.VertHi[id]
		for k := 0; k < K; k++ {
			t := e.trees[k]
			scale := e.scale[k]
			y := sub[k]
			mm := 0.0
			for v := lo; v < hi; v++ {
				if v == t.Root || scale[v] == 0 {
					y[v] = 0
					continue
				}
				y[v] = ta * y[v] / scale[v]
				if ay := math.Abs(y[v]); ay > mm {
					mm = ay
				}
			}
			s.outVals[coord] = append(s.outVals[coord], mm)
		}
		if id != coord && e.vertActive(id) {
			e.send(s, coord)
		}
		if id == coord {
			tm := e.partials[:K]
			for k := range tm {
				tm[k] = 0
			}
			for j := 0; j < e.P; j++ {
				if !e.vertActive(j) {
					continue
				}
				vals := e.recv(s, j).vals
				for k := 0; k < K; k++ {
					if vals[k] > tm[k] {
						tm[k] = vals[k]
					}
				}
			}
			m := 0.0
			for _, v := range tm {
				if v > m {
					m = v
				}
			}
			e.coordVal[0] = m
		}
	})
	m := e.coordVal[0]
	// Pass 2: shifted exponential sums per (tree, chunk); the
	// coordinator folds chunk partials in chunk order per tree, then
	// trees in tree order — the canonical baseline expression.
	e.round(&c, func(id int) {
		s := e.sh[id]
		s.resetOut()
		mm := 0.0
		switch {
		case id == coord:
			mm = e.coordVal[0]
			e.bcast(s, mm, e.vertActive)
		case e.vertActive(id):
			mm = e.recv(s, coord).vals[0]
		}
		for k := 0; k < K; k++ {
			t := e.trees[k]
			y := sub[k]
			for ch := part.VertChunkLo[id]; ch < part.VertChunkHi[id]; ch++ {
				lo, hi := chunkRange(ch, part.VertSize, part.N)
				ps := 0.0
				for v := lo; v < hi; v++ {
					if v == t.Root {
						y[v] = 0
						continue
					}
					p := math.Exp(y[v] - mm)
					q := math.Exp(-y[v] - mm)
					ps += p + q
					y[v] = p - q
				}
				s.outVals[coord] = append(s.outVals[coord], ps)
			}
		}
		if id != coord && e.vertActive(id) {
			e.send(s, coord)
		}
		if id == coord {
			e.gatherTreePartials(s, K)
			total := 0.0
			for k := 0; k < K; k++ {
				tsum := 0.0
				for ch := 0; ch < part.VertChunks; ch++ {
					tsum += e.partials[k*part.VertChunks+ch]
				}
				total += tsum
			}
			e.coordVal[1] = total
		}
	})
	sum := e.coordVal[1]
	// Pass 3 prep: pt[k][v] = y·inv/scale on owned slots, zero at
	// roots and zero-scale slots; then the top-down sweeps and the
	// per-vertex cross-tree accumulation in tree order.
	e.round(&c, func(id int) {
		s := e.sh[id]
		s.resetOut()
		sv := 0.0
		switch {
		case id == coord:
			sv = e.coordVal[1]
			e.bcast(s, sv, e.vertActive)
		case e.vertActive(id):
			sv = e.recv(s, coord).vals[0]
		}
		inv := 1 / sv
		lo, hi := part.VertLo[id], part.VertHi[id]
		for k := 0; k < K; k++ {
			t := e.trees[k]
			scale := e.scale[k]
			y := sub[k]
			buf := pt[k]
			for v := lo; v < hi; v++ {
				if v == t.Root || scale[v] == 0 {
					buf[v] = 0
					continue
				}
				buf[v] = y[v] * inv / scale[v]
			}
		}
	})
	e.sweepDn(&c, ts, pt)
	e.round(&c, func(id int) {
		lo, hi := part.VertLo[id], part.VertHi[id]
		for v := lo; v < hi; v++ {
			acc := 0.0
			for k := 0; k < K; k++ {
				acc += pt[k][v]
			}
			pi[v] = acc
		}
	})
	e.finishCost(&c)
	return m + math.Log(sum), c
}

// GradientDelta mirrors sherman's gradient/duality-gap reduction: one
// round ships boundary potentials to edge owners, one computes
// grad[e] = w1[e]·invCap[e] + ta·(π_V − π_U) per owned edge with the
// chunked Σ cap·|grad| partials gathered at the coordinator.
func (e *Engine) GradientDelta(w1, invCap []float64, ta float64, pi, grad []float64) (float64, Cost) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var c Cost
	pt := e.part
	e.round(&c, func(id int) {
		s := e.sh[id]
		s.resetOut()
		for j := 0; j < e.P; j++ {
			lst := e.vertSend[id][j]
			if j == id || len(lst) == 0 {
				continue
			}
			for _, v := range lst {
				s.outVals[j] = append(s.outVals[j], pi[v])
			}
			e.send(s, j)
		}
		for j := 0; j < e.P; j++ {
			lst := e.vertSend[j][id]
			if j == id || len(lst) == 0 {
				continue
			}
			vals := e.recv(s, j).vals
			for i, v := range lst {
				s.piMirror[v] = vals[i]
			}
		}
	})
	e.round(&c, func(id int) {
		s := e.sh[id]
		s.resetOut()
		edges := e.edges
		for ch := pt.EdgeChunkLo[id]; ch < pt.EdgeChunkHi[id]; ch++ {
			lo, hi := chunkRange(ch, pt.EdgeSize, pt.M)
			d := 0.0
			for ei := lo; ei < hi; ei++ {
				ed := edges[ei]
				pu, pv := pi[ed.U], pi[ed.V]
				if pt.VertOwner(ed.U) != id {
					pu = s.piMirror[ed.U]
				}
				if pt.VertOwner(ed.V) != id {
					pv = s.piMirror[ed.V]
				}
				gr := w1[ei]*invCap[ei] + ta*(pv-pu)
				grad[ei] = gr
				d += float64(ed.Cap) * math.Abs(gr)
			}
			s.outVals[coord] = append(s.outVals[coord], d)
		}
		if id != coord && len(s.outVals[coord]) > 0 {
			e.send(s, coord)
		}
		if id == coord {
			e.gatherPartials(s, pt.EdgeChunkLo, pt.EdgeChunkHi)
			e.coordVal[0] = combineSum(e.partials[:pt.EdgeChunks])
		}
	})
	delta := e.coordVal[0]
	e.finishCost(&c)
	return delta, c
}

// NormRb mirrors capprox.Approximator.NormRb: ‖R·b‖∞ via a bottom-up
// sweep of every tree, the row scaling, and an exact max fold. sub is
// per-tree scratch (len trees × N), typically the caller's
// EvalScratch.Sub between evaluations.
func (e *Engine) NormRb(b []float64, sub [][]float64) (float64, Cost) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var c Cost
	K := len(e.trees)
	part := e.part
	e.round(&c, func(id int) {
		lo, hi := part.VertLo[id], part.VertHi[id]
		for k := 0; k < K; k++ {
			copy(sub[k][lo:hi], b[lo:hi])
		}
	})
	e.sweepUp(&c, e.allTrees, sub)
	e.round(&c, func(id int) {
		s := e.sh[id]
		s.resetOut()
		lo, hi := part.VertLo[id], part.VertHi[id]
		mm := 0.0
		for k := 0; k < K; k++ {
			t := e.trees[k]
			scale := e.scale[k]
			y := sub[k]
			for v := lo; v < hi; v++ {
				if v == t.Root || scale[v] == 0 {
					continue
				}
				if a := math.Abs(y[v] / scale[v]); a > mm {
					mm = a
				}
			}
		}
		s.outVals[coord] = append(s.outVals[coord], mm)
		if id != coord && e.vertActive(id) {
			e.send(s, coord)
		}
		if id == coord {
			m := 0.0
			for j := 0; j < e.P; j++ {
				if !e.vertActive(j) {
					continue
				}
				if v := e.recv(s, j).vals[0]; v > m {
					m = v
				}
			}
			e.coordVal[0] = m
		}
	})
	norm := e.coordVal[0]
	e.finishCost(&c)
	return norm, c
}
