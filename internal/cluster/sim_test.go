package cluster

import (
	"testing"

	"distflow/internal/congest"
	"distflow/internal/graph"
)

// tilePartition splits a w×h grid into 2x-wide vertical stripes.
func tilePartition(t *testing.T, w, h, stripe int) (*graph.Graph, *Partition) {
	t.Helper()
	g := graph.Grid(w, h)
	of := make([]int, g.N())
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			of[y*w+x] = x / stripe
		}
	}
	p, err := PartitionFromAssignment(g, of)
	if err != nil {
		t.Fatal(err)
	}
	return g, p
}

func TestPartitionFromAssignment(t *testing.T) {
	g, p := tilePartition(t, 8, 4, 2)
	if p.NumClusters() != 4 {
		t.Fatalf("clusters = %d, want 4", p.NumClusters())
	}
	total := 0
	for c, members := range p.Members {
		total += len(members)
		if p.Leader[c] != members[0] {
			t.Errorf("cluster %d leader %d, want min member %d", c, p.Leader[c], members[0])
		}
	}
	if total != g.N() {
		t.Errorf("members cover %d of %d", total, g.N())
	}
	// Intra trees: parent in same cluster, depth consistent.
	for v := 0; v < g.N(); v++ {
		if pv := p.Parent[v]; pv >= 0 {
			if p.Of[pv] != p.Of[v] {
				t.Fatalf("vertex %d parent in different cluster", v)
			}
			if p.DepthIn[v] != p.DepthIn[pv]+1 {
				t.Fatalf("vertex %d depth inconsistent", v)
			}
		}
	}
	// ψ-edges exist for adjacent stripes only.
	if len(p.Psi) != 3 {
		t.Errorf("psi pairs = %d, want 3", len(p.Psi))
	}
}

func TestPartitionRejectsDisconnectedCluster(t *testing.T) {
	g := graph.Path(4)
	// Cluster 0 = {0, 2}: not connected within the cluster.
	if _, err := PartitionFromAssignment(g, []int{0, 1, 0, 1}); err == nil {
		t.Error("disconnected cluster accepted")
	}
}

func TestSimulateFloodMin(t *testing.T) {
	g, p := tilePartition(t, 8, 4, 2)
	values := []int64{40, 30, 20, 10}
	nw := congest.NewNetwork(g, congest.WithSeed(3))
	// Flood needs at most #clusters cluster-rounds.
	out, stats, err := SimulateFloodMin(nw, p, values, p.NumClusters())
	if err != nil {
		t.Fatal(err)
	}
	for c, v := range out {
		if v != 10 {
			t.Errorf("cluster %d = %d, want 10 (global min)", c, v)
		}
	}
	// Lemma 5.1 shape: measured rounds per cluster-round stay within the
	// charged schedule (which uses D+sqrt(n); here depth ≪ both).
	perRound := float64(stats.Rounds) / float64(p.NumClusters())
	charge := float64(p.clusterGraphForCharge(g).SimulationRounds(1, g.Diameter(), g.N()))
	if perRound > charge {
		t.Errorf("measured %.1f rounds per cluster-round exceeds charge %.1f", perRound, charge)
	}
	t.Logf("measured per cluster-round: %.1f, charged: %.1f", perRound, charge)
}

// clusterGraphForCharge converts a Partition into the Graph bookkeeping
// form used by SimulationRounds.
func (p *Partition) clusterGraphForCharge(g *graph.Graph) *Graph {
	cg := &Graph{
		N:     p.NumClusters(),
		Rep:   append([]int(nil), p.Leader...),
		Size:  make([]float64, p.NumClusters()),
		Depth: make([]int, p.NumClusters()),
	}
	for c, members := range p.Members {
		cg.Size[c] = float64(len(members))
		for _, v := range members {
			if p.DepthIn[v] > cg.Depth[c] {
				cg.Depth[c] = p.DepthIn[v]
			}
		}
	}
	for pair, e := range p.Psi {
		cg.Edges = append(cg.Edges, Edge{A: pair[0], B: pair[1], Cap: 1, Phys: e})
	}
	return cg
}

func TestSimulateFloodMinSingleCluster(t *testing.T) {
	g, p := tilePartition(t, 4, 4, 4)
	if p.NumClusters() != 1 {
		t.Fatal("expected one cluster")
	}
	out, _, err := SimulateFloodMin(congest.NewNetwork(g, congest.WithSeed(5)), p, []int64{7}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 7 {
		t.Errorf("value = %d", out[0])
	}
}

func TestSimulateFloodMinBadInput(t *testing.T) {
	g, p := tilePartition(t, 8, 4, 2)
	if _, _, err := SimulateFloodMin(congest.NewNetwork(g), p, []int64{1}, 2); err == nil {
		t.Error("short values accepted")
	}
}
