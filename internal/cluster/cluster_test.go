package cluster

import (
	"testing"

	"distflow/internal/graph"
)

func TestFromGraph(t *testing.T) {
	g := graph.Grid(3, 3)
	cg := FromGraph(g)
	if cg.N != 9 || len(cg.Edges) != g.M() {
		t.Fatalf("size wrong: N=%d edges=%d", cg.N, len(cg.Edges))
	}
	if err := cg.Validate(); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < cg.N; c++ {
		if cg.Rep[c] != c || cg.Size[c] != 1 || cg.Depth[c] != 0 {
			t.Fatalf("cluster %d bookkeeping wrong", c)
		}
	}
	if cg.TotalSize() != 9 {
		t.Errorf("TotalSize = %v", cg.TotalSize())
	}
	if !cg.Connected() {
		t.Error("grid cluster graph must be connected")
	}
}

func TestValidateCatches(t *testing.T) {
	g := graph.Path(3)
	cases := []func(*Graph){
		func(cg *Graph) { cg.Edges[0].A = 9 },
		func(cg *Graph) { cg.Edges[0].B = cg.Edges[0].A },
		func(cg *Graph) { cg.Edges[0].Cap = 0 },
		func(cg *Graph) { cg.Size[1] = 0 },
		func(cg *Graph) { cg.Depth[1] = -1 },
		func(cg *Graph) { cg.Rep = cg.Rep[:1] },
	}
	for i, corrupt := range cases {
		cg := FromGraph(g)
		corrupt(cg)
		if err := cg.Validate(); err == nil {
			t.Errorf("case %d: corruption not detected", i)
		}
	}
}

func TestConnected(t *testing.T) {
	cg := &Graph{N: 3, Rep: []int{0, 1, 2}, Size: []float64{1, 1, 1}, Depth: []int{0, 0, 0}}
	if cg.Connected() {
		t.Error("edgeless 3-cluster graph reported connected")
	}
	cg.Edges = []Edge{{A: 0, B: 1, Cap: 1}, {A: 1, B: 2, Cap: 1}}
	if !cg.Connected() {
		t.Error("path reported disconnected")
	}
}

func TestMaxDepthAndSimulationRounds(t *testing.T) {
	g := graph.Path(4)
	cg := FromGraph(g)
	cg.Depth[2] = 5
	if cg.MaxDepth() != 5 {
		t.Errorf("MaxDepth = %d", cg.MaxDepth())
	}
	r1 := cg.SimulationRounds(1, 3, 16)
	r10 := cg.SimulationRounds(10, 3, 16)
	if r10 != 10*r1 {
		t.Errorf("SimulationRounds not linear in t: %d vs %d", r10, r1)
	}
	if r1 <= 0 {
		t.Errorf("SimulationRounds = %d", r1)
	}
	// Depth is clamped by √n in the charge.
	cg.Depth[2] = 1000
	if cg.SimulationRounds(1, 3, 16) > r1+int64(1000) {
		// must clamp at √16=4, so the charge barely moves
		t.Errorf("depth not clamped: %d", cg.SimulationRounds(1, 3, 16))
	}
}
