package cluster

import (
	"fmt"

	"distflow/internal/congest"
	"distflow/internal/graph"
)

// Executable Lemma 5.1: a cluster-graph algorithm simulated on the
// network graph by genuine message passing. A Partition realizes
// Definition 5.1 concretely (members, leaders, intra-cluster spanning
// trees, ψ-edges); SimulateFloodMin runs a B-bounded-space cluster-level
// algorithm (flood-min over the cluster multigraph) with each
// cluster-round implemented as broadcast → ψ-exchange → convergecast on
// the underlying graph, and returns the exact measured rounds, which
// experiment E9 compares against the SimulationRounds charge.

// Partition is a concrete Definition 5.1 cluster graph over a network
// graph: every cluster is connected, has the minimum-ID member as
// leader, and a rooted intra-cluster spanning tree.
type Partition struct {
	// Of maps vertex -> cluster index.
	Of []int
	// Members lists vertices per cluster.
	Members [][]int
	// Leader is the root of each cluster's spanning tree.
	Leader []int
	// Parent / ParentEdge / DepthIn describe the intra-cluster trees
	// (parent vertex, connecting edge, depth; -1/-1/0 at leaders).
	Parent     []int
	ParentEdge []int
	DepthIn    []int
	// Psi maps each unordered adjacent cluster pair to the physical
	// edge realizing it (condition IV of Definition 5.1).
	Psi map[[2]int]int
	// MaxDepth is the deepest intra-cluster tree.
	MaxDepth int
}

// PartitionFromAssignment builds a Partition from a vertex->cluster
// assignment. Every cluster must induce a connected subgraph.
func PartitionFromAssignment(g *graph.Graph, of []int) (*Partition, error) {
	n := g.N()
	if len(of) != n {
		return nil, fmt.Errorf("cluster: assignment length %d, want %d", len(of), n)
	}
	nc := 0
	for _, c := range of {
		if c < 0 {
			return nil, fmt.Errorf("cluster: negative cluster id")
		}
		if c+1 > nc {
			nc = c + 1
		}
	}
	p := &Partition{
		Of:         append([]int(nil), of...),
		Members:    make([][]int, nc),
		Leader:     make([]int, nc),
		Parent:     make([]int, n),
		ParentEdge: make([]int, n),
		DepthIn:    make([]int, n),
		Psi:        make(map[[2]int]int),
	}
	for v, c := range of {
		p.Members[c] = append(p.Members[c], v)
	}
	for c, members := range p.Members {
		if len(members) == 0 {
			return nil, fmt.Errorf("cluster: cluster %d empty", c)
		}
		p.Leader[c] = members[0] // ascending vertex order: min ID
	}
	for v := range p.Parent {
		p.Parent[v] = -1
		p.ParentEdge[v] = -1
	}
	// Intra-cluster BFS trees from the leaders.
	for c, members := range p.Members {
		root := p.Leader[c]
		seen := map[int]bool{root: true}
		queue := []int{root}
		count := 1
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, a := range g.Adj(v) {
				if of[a.To] != c || seen[a.To] {
					continue
				}
				seen[a.To] = true
				p.Parent[a.To] = v
				p.ParentEdge[a.To] = a.E
				p.DepthIn[a.To] = p.DepthIn[v] + 1
				if p.DepthIn[a.To] > p.MaxDepth {
					p.MaxDepth = p.DepthIn[a.To]
				}
				queue = append(queue, a.To)
				count++
			}
		}
		if count != len(members) {
			return nil, fmt.Errorf("cluster: cluster %d not connected", c)
		}
	}
	// ψ-edges: the smallest-index edge between each adjacent pair.
	for e, ed := range g.Edges() {
		a, b := of[ed.U], of[ed.V]
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		key := [2]int{a, b}
		if _, ok := p.Psi[key]; !ok {
			p.Psi[key] = e
		}
	}
	return p, nil
}

// NumClusters returns the number of clusters.
func (p *Partition) NumClusters() int { return len(p.Members) }

// --- Simulated cluster-level flood-min ---

// simNode simulates one network node's role across the repeating
// cluster-round cycle: phase A (maxD+1 rounds) broadcasts the leader's
// current value down the intra-cluster tree; phase B (1 round) exchanges
// values over ψ-edges; phase C (maxD+1 rounds) convergecasts the minimum
// back to the leader.
type simNode struct {
	cluster   int
	leader    bool
	parentArc int   // intra-tree arc index; -1 at leader
	childArcs []int // intra-tree child arc indices
	psiArcs   []int // arcs realizing ψ-edges at this node
	cycleLen  int
	aLen      int
	cycles    int

	value   int64 // cluster value (authoritative at the leader)
	cur     int64 // value being broadcast this cycle
	haveCur bool
	pending int   // children yet to report in phase C
	best    int64 // running min for phase C
	sentUp  bool
}

func (s *simNode) Step(ctx *congest.Context, in []congest.Incoming) ([]congest.Outgoing, bool) {
	round := ctx.Round - 1 // 0-based
	cycle := round / s.cycleLen
	if cycle >= s.cycles {
		return nil, true
	}
	pos := round % s.cycleLen
	var outs []congest.Outgoing

	// Deliveries are processed relative to the phase they belong to.
	for _, m := range in {
		msg, ok := m.Msg.(congest.IntMsg)
		if !ok {
			continue
		}
		switch msg.Tag {
		case 1: // broadcast value travelling down
			if !s.haveCur {
				s.cur = msg.Value
				s.haveCur = true
			}
		case 2: // ψ-exchange arrival
			if msg.Value < s.best {
				s.best = msg.Value
			}
		case 3: // convergecast partial minimum
			if msg.Value < s.best {
				s.best = msg.Value
			}
			s.pending--
		}
	}

	switch {
	case pos == 0:
		// Cycle start: leader seeds the broadcast; everyone resets
		// phase-C state.
		s.best = int64(1) << 62
		s.pending = len(s.childArcs)
		s.sentUp = false
		s.haveCur = false
		if s.leader {
			s.cur = s.value
			s.haveCur = true
		}
		fallthrough
	case pos < s.aLen:
		// Phase A: forward the value down once received.
		if s.haveCur && (pos == 0 || len(in) > 0) {
			for _, i := range s.childArcs {
				outs = append(outs, congest.Outgoing{Edge: ctx.Arc(i).E, Msg: congest.IntMsg{Tag: 1, Value: s.cur}})
			}
		}
	case pos == s.aLen:
		// Phase B: ψ endpoints exchange the cluster value.
		if s.best > s.cur && s.haveCur {
			s.best = s.cur
		}
		for _, i := range s.psiArcs {
			outs = append(outs, congest.Outgoing{Edge: ctx.Arc(i).E, Msg: congest.IntMsg{Tag: 2, Value: s.cur}})
		}
	default:
		// Phase C: convergecast the minimum; leaves fire immediately,
		// inner nodes once all children reported.
		if s.haveCur && s.cur < s.best {
			s.best = s.cur
		}
		if !s.sentUp && s.pending == 0 {
			s.sentUp = true
			if s.leader {
				s.value = min64(s.value, s.best)
			} else {
				outs = append(outs, congest.Outgoing{Edge: ctx.Arc(s.parentArc).E, Msg: congest.IntMsg{Tag: 3, Value: s.best}})
			}
		}
	}
	return outs, false
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// SimulateFloodMin runs flood-min over the cluster graph (every cluster
// ends with the global minimum of the leaders' initial values) by
// Lemma 5.1-style simulation on the network, executing `cycles`
// cluster-rounds. It returns the final per-cluster values and the
// measured network cost.
func SimulateFloodMin(nw *congest.Network, p *Partition, values []int64, cycles int) ([]int64, congest.Stats, error) {
	g := nw.Graph()
	if len(values) != p.NumClusters() {
		return nil, congest.Stats{}, fmt.Errorf("cluster: values length %d, want %d", len(values), p.NumClusters())
	}
	aLen := p.MaxDepth + 1
	cycleLen := aLen + 1 + p.MaxDepth + 2
	nodes := make([]*simNode, g.N())
	// Precompute arc roles.
	psiAt := make(map[int][]int) // vertex -> psi arc indices
	for _, e := range p.Psi {
		ed := g.Edge(e)
		for _, v := range []int{ed.U, ed.V} {
			for i, a := range g.Adj(v) {
				if a.E == e {
					psiAt[v] = append(psiAt[v], i)
					break
				}
			}
		}
	}
	stats, err := nw.Run(func(v int, ctx *congest.Context) congest.Program {
		s := &simNode{
			cluster:   p.Of[v],
			leader:    p.Leader[p.Of[v]] == v,
			parentArc: -1,
			cycleLen:  cycleLen,
			aLen:      aLen,
			cycles:    cycles,
			value:     values[p.Of[v]],
			psiArcs:   psiAt[v],
		}
		for i, a := range g.Adj(v) {
			if p.ParentEdge[v] == a.E && p.Parent[v] == a.To {
				s.parentArc = i
			}
			if p.Of[a.To] == p.Of[v] && p.Parent[a.To] == v && p.ParentEdge[a.To] == a.E {
				s.childArcs = append(s.childArcs, i)
			}
		}
		nodes[v] = s
		return s
	}, cycles*cycleLen+8)
	if err != nil {
		return nil, stats, fmt.Errorf("cluster: simulate: %w", err)
	}
	out := make([]int64, p.NumClusters())
	for c := range out {
		out[c] = nodes[p.Leader[c]].value
	}
	return out, stats, nil
}
